package repro

import (
	"math"
	"strings"
	"testing"

	"repro/internal/capacity"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestBenchSmoke runs each figure benchmark body once with real
// assertions, so `go test .` exercises the whole harness instead of
// reporting "no tests to run". The benchmarks themselves only report
// metrics; this is where their outputs are checked.
func TestBenchSmoke(t *testing.T) {
	eng := sim.NewEngine(benchSim())
	scratch := sim.NewScratch()

	// Fig. 7: capacity bounds and the ~8 dB crossover.
	pts := capacity.Sweep(0, 55, 1)
	if len(pts) == 0 {
		t.Fatal("fig7: empty capacity sweep")
	}
	if last := pts[len(pts)-1]; !(last.Gain > 1) {
		t.Errorf("fig7: ANC does not overtake routing at 55 dB (gain %v)", last.Gain)
	}
	if x := capacity.CrossoverDB(0, 55); math.IsNaN(x) || x < 2 || x > 20 {
		t.Errorf("fig7: crossover %v dB, want ≈ 8", x)
	}

	// Figs. 9a, 10a, 12a: one paired gain iteration each.
	for _, fig := range []struct {
		name string
		sc   sim.Scenario
	}{
		{"fig9a", sim.AliceBob()},
		{"fig10a", sim.XTopo()},
		{"fig12a", sim.Chain()},
	} {
		a, tr, c := figureIteration(eng, scratch, fig.sc, 1000)
		if a.TimeSamples <= 0 || tr.TimeSamples <= 0 {
			t.Fatalf("%s: degenerate run", fig.name)
		}
		if g := a.Throughput() / tr.Throughput(); g <= 1 {
			t.Errorf("%s: ANC gain over routing %.3f ≤ 1", fig.name, g)
		}
		if sim.HasScheme(fig.sc, sim.SchemeCOPE) && c.TimeSamples <= 0 {
			t.Errorf("%s: degenerate COPE run", fig.name)
		}
	}

	// Figs. 9b, 10b, 12b: one BER iteration each.
	for _, fig := range []struct {
		name string
		sc   sim.Scenario
	}{
		{"fig9b", sim.AliceBob()},
		{"fig10b", sim.XTopo()},
		{"fig12b", sim.Chain()},
	} {
		ber := stats.NewSample(nil)
		berIteration(eng, scratch, fig.sc, 2000, ber)
		if ber.Len() == 0 {
			t.Errorf("%s: no BER samples", fig.name)
		}
		if ber.Mean() < 0 || ber.Mean() > 0.2 || math.IsNaN(ber.Mean()) {
			t.Errorf("%s: implausible mean BER %v", fig.name, ber.Mean())
		}
	}

	// Fig. 13: one SIR sweep.
	sweep := sim.SIRSweep(sim.Config{Packets: 4}, 5000, -3, 4, 1)
	if len(sweep) != 8 {
		t.Fatalf("fig13: %d points, want 8", len(sweep))
	}
	for _, p := range sweep {
		if math.IsNaN(p.MeanBER) {
			t.Errorf("fig13: NaN BER at %v dB", p.SIRdB)
		}
	}

	// Summary table text.
	smallOpts := experiments.Options{Runs: 2, Sim: sim.Config{Packets: 4}, Seed: 7}
	if out := experiments.Summary(smallOpts); !strings.Contains(out, "alice-bob") {
		t.Errorf("summary output missing topology row:\n%s", out)
	}

	// Ablation tables render and are non-trivial.
	for name, out := range map[string]string{
		"matcher":     experiments.AblationMatcher(experiments.Options{Runs: 1, Sim: sim.Config{Packets: 2}, Seed: 5}),
		"subtraction": experiments.AblationSubtraction(3),
		"estimator":   experiments.AblationEstimator(4),
	} {
		if strings.Count(out, "\n") < 4 {
			t.Errorf("ablation %s output too short:\n%s", name, out)
		}
	}
}
