// FEC-protected ANC: the full coded pipeline. ANC decodes interfered
// packets with a small residual bit error rate (the paper measures 2–4%
// and pays ~8% redundancy to fix it, §11.4). This example protects the
// payload with interleaved Hamming(7,4) before transmission and corrects
// the residual errors after the interference decode — exact data out,
// despite the frame CRC failing on the raw decode.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/anc"
)

const noiseFloor = 1.5e-3

func main() {
	modem := anc.NewModem()

	message := []byte("analog network coding: forward signals, not packets.")
	fmt.Printf("message (%d bytes): %q\n", len(message), message)

	// Encode: bits → Hamming(7,4) → depth-7 interleaver → payload bytes.
	const depth = 7
	coded := anc.Interleave(anc.FECEncode(anc.BitsFromBytes(message)), depth)
	for len(coded)%8 != 0 {
		coded = append(coded, 0)
	}
	payload, err := anc.BitsToBytes(coded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FEC-coded payload: %d bytes (overhead %.0f%%)\n\n",
		len(payload), (anc.FECOverhead-1)*100)

	// Fixed-MTU nodes: even a header hit by residual errors leaves a
	// correctly sized, forward-oriented bit stream for FEC to repair.
	alice := anc.NewNode(1, modem, 2*noiseFloor, anc.WithFixedFrameSize(len(payload)))
	bob := anc.NewNode(2, modem, 2*noiseFloor, anc.WithFixedFrameSize(len(payload)))

	// Bob's counterpart traffic, so there is something to collide with.
	rng := rand.New(rand.NewSource(3))
	other := make([]byte, len(payload))
	rng.Read(other)

	recA := alice.BuildFrame(anc.NewPacket(1, 2, 1, other))
	recB := bob.BuildFrame(anc.NewPacket(2, 1, 1, payload))

	// The usual two-slot exchange.
	routerRx := anc.Receive(anc.NewNoiseSource(noiseFloor, 4), 400,
		anc.Transmission{Signal: recA.Samples, Link: anc.Link{Gain: 0.8, Phase: 0.3, FreqOffset: 0.006}},
		anc.Transmission{Signal: recB.Samples, Link: anc.Link{Gain: 0.74, Phase: -0.7, FreqOffset: -0.008}, Delay: 1300},
	)
	relayed := anc.AmplifyForward(routerRx, 1)
	rxA := anc.Receive(anc.NewNoiseSource(noiseFloor, 5), 400,
		anc.Transmission{Signal: relayed, Link: anc.Link{Gain: 0.7, Phase: 1.4}})

	res, err := alice.Receive(rxA)
	if err != nil {
		log.Fatalf("decode: %v", err)
	}
	fmt.Printf("ANC decode: header=%v  raw frame CRC ok: %v\n", res.Packet.Header, res.BodyOK)

	// Reach the raw payload bits (CRC gate bypassed), de-interleave,
	// correct.
	rawBits, err := anc.ExtractPayloadBits(res.WantedBits, len(payload))
	if err != nil {
		log.Fatalf("extract: %v", err)
	}
	codedRx := anc.Deinterleave(rawBits, depth, len(coded))
	dataBits, corrections, err := anc.FECDecode(codedRx)
	if err != nil {
		log.Fatalf("fec: %v", err)
	}
	packed, err := anc.BitsToBytes(dataBits[:len(message)*8])
	if err != nil {
		log.Fatalf("pack: %v", err)
	}
	fmt.Printf("FEC corrected %d block(s)\n", corrections)
	fmt.Printf("recovered: %q\n", packed)
	if string(packed) == string(message) {
		fmt.Println("exact recovery ✓")
	} else {
		fmt.Println("MISMATCH — residual errors exceeded the code's strength")
	}
}
