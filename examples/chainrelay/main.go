// Chain relay: the unidirectional scenario of Fig. 2, where digital
// network coding cannot help but ANC can. N2 forwards packet p_i to N3;
// in the next slot N1 sends the fresh p_{i+1} while N3 simultaneously
// forwards p_i onward — a collision at N2. N2 knows p_i (it forwarded it)
// and cancels it, recovering p_{i+1} directly from the interfered signal:
// the hidden terminal becomes harmless.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/anc"
)

const noiseFloor = 1e-3

func main() {
	modem := anc.NewModem()
	n2 := anc.NewNode(2, modem, noiseFloor)
	n4 := anc.NewNode(4, modem, noiseFloor)

	rng := rand.New(rand.NewSource(5))
	oldPayload := make([]byte, 64)
	newPayload := make([]byte, 64)
	rng.Read(oldPayload)
	rng.Read(newPayload)

	// p_i: the packet N2 already relayed — it knows every bit of it.
	pktOld := anc.NewPacket(1, 4, 100, oldPayload)
	recOld := anc.SentRecord{Packet: pktOld, Bits: anc.Marshal(pktOld)}
	recOld.Samples = modem.Modulate(recOld.Bits)
	n2.Remember(recOld)

	// p_{i+1}: N1's fresh packet, unknown to everyone downstream.
	pktNew := anc.NewPacket(1, 4, 101, newPayload)
	newSamples := modem.Modulate(anc.Marshal(pktNew))

	// The collision slot: N1→N2 and N3→N4 transmit together. N2 hears
	// both (N3 is its neighbor); N4 is out of N1's radio range and hears
	// only N3.
	rxN2 := anc.Receive(anc.NewNoiseSource(noiseFloor, 6), 400,
		anc.Transmission{Signal: newSamples, Link: anc.Link{Gain: 0.75, Phase: 0.4, FreqOffset: 0.005}},
		anc.Transmission{Signal: recOld.Samples, Link: anc.Link{Gain: 0.7, Phase: -1.2, FreqOffset: -0.008}, Delay: 1150},
	)
	rxN4 := anc.Receive(anc.NewNoiseSource(noiseFloor, 7), 400,
		anc.Transmission{Signal: recOld.Samples, Link: anc.Link{Gain: 0.72, Phase: 0.9}, Delay: 1150})

	resN2, err := n2.Receive(rxN2)
	if err != nil {
		log.Fatalf("N2: %v", err)
	}
	fmt.Printf("N2 cancelled %v and recovered %v (crc=%v)\n",
		resN2.KnownHeader, resN2.Packet.Header, resN2.BodyOK)

	resN4, err := n4.Receive(rxN4)
	if err != nil {
		log.Fatalf("N4: %v", err)
	}
	fmt.Printf("N4 received %v cleanly (crc=%v) — it never heard N1\n",
		resN4.Packet.Header, resN4.BodyOK)

	fmt.Println("\nPer delivered packet: 2 slots with ANC vs 3 with routing — a 1.5× bound (§2b).")
}
