// X topology: two flows crossing at a router (Fig. 11). Unlike Alice and
// Bob — who know the interfering packet because they sent it — the
// destinations here learn it by OVERHEARING: N2 snoops N1's uplink while
// N3 transmits concurrently, then uses the overheard bits to cancel N1's
// component out of the router's amplified broadcast and recover N3's
// packet.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/anc"
)

const noiseFloor = 1e-3

func main() {
	modem := anc.NewModem()
	n2 := anc.NewNode(2, modem, 2*noiseFloor)

	rng := rand.New(rand.NewSource(21))
	payload1 := make([]byte, 64)
	payload3 := make([]byte, 64)
	rng.Read(payload1)
	rng.Read(payload3)

	pkt1 := anc.NewPacket(1, 4, 1, payload1) // N1 → N4
	pkt3 := anc.NewPacket(3, 2, 1, payload3) // N3 → N2 (what N2 wants)
	sig1 := modem.Modulate(anc.Marshal(pkt1))
	sig3 := modem.Modulate(anc.Marshal(pkt3))

	// Slot 1 — N1 and N3 transmit simultaneously.
	// At the router: a strong collision of both.
	routerRx := anc.Receive(anc.NewNoiseSource(noiseFloor, 1), 400,
		anc.Transmission{Signal: sig1, Link: anc.Link{Gain: 0.8, Phase: 0.2, FreqOffset: 0.007}},
		anc.Transmission{Signal: sig3, Link: anc.Link{Gain: 0.77, Phase: -0.5, FreqOffset: -0.005}, Delay: 1150},
	)
	// At N2: N1 comes in strong (the overhearing link), N3 weakly (the
	// cross path) — snooping works, but not always perfectly (§11.5).
	snoop := anc.Receive(anc.NewNoiseSource(noiseFloor, 2), 400,
		anc.Transmission{Signal: sig1, Link: anc.Link{Gain: 0.5, Phase: 1.1, FreqOffset: 0.007}},
		anc.Transmission{Signal: sig3, Link: anc.Link{Gain: 0.02, Phase: 0.7, FreqOffset: -0.005}, Delay: 1150},
	)
	over, err := n2.Overhear(snoop)
	if err != nil {
		log.Fatalf("overhear: %v", err)
	}
	fmt.Printf("N2 overheard %v (crc=%v) and remembered it\n", over.Packet.Header, over.BodyOK)

	// Slot 2 — the router amplifies and broadcasts the collision.
	relayed := anc.AmplifyForward(routerRx, 1)
	rx := anc.Receive(anc.NewNoiseSource(noiseFloor, 3), 400,
		anc.Transmission{Signal: relayed, Link: anc.Link{Gain: 0.7, Phase: -1.6}})

	res, err := n2.Receive(rx)
	if err != nil {
		log.Fatalf("decode: %v", err)
	}
	fmt.Printf("N2 cancelled the overheard %v and recovered %v (crc=%v)\n",
		res.KnownHeader, res.Packet.Header, res.BodyOK)
	if res.BodyOK {
		fmt.Printf("payload matches N3's: %v\n", string(res.Packet.Payload) == string(payload3))
	}
	fmt.Println("\nOverhearing replaces 'I sent it myself' — the same decoder, new knowledge source.")
}
