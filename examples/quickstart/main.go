// Quickstart: modulate a packet with MSK, pass it through a noisy fading
// channel, and demodulate it — the single-signal foundation (§5) that
// analog network coding builds on. Also prints the Fig. 3 phase staircase
// for the paper's example bit pattern.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/anc"
)

func main() {
	modem := anc.NewModem()

	// Fig. 3: MSK represents 1 as +π/2 over a symbol, 0 as −π/2.
	pattern := []byte{1, 0, 1, 0, 1, 1, 1, 0, 0, 0}
	fmt.Println("Fig. 3 — phase trajectory of 1010111000 (units of π/2):")
	for i, ph := range modem.PhaseTrajectory(pattern) {
		steps := int(math.Round(ph / (math.Pi / 2)))
		fmt.Printf("  after bit %2d: %+d\n", i, steps)
	}

	// A real packet through a realistic channel.
	pkt := anc.NewPacket(1, 2, 1, []byte("hello, interference!"))
	tx := modem.Modulate(anc.Marshal(pkt))
	fmt.Printf("\npacket %v → %d on-air samples\n", pkt.Header, len(tx))

	const noiseFloor = 1e-3 // ≈27 dB below the received power used below
	rx := anc.Receive(anc.NewNoiseSource(noiseFloor, 42), 400,
		anc.Transmission{
			Signal: tx,
			Link:   anc.Link{Gain: 0.7, Phase: 1.3, FreqOffset: 0.004},
			Delay:  250,
		})

	node := anc.NewNode(2, modem, noiseFloor)
	res, err := node.Receive(rx)
	if err != nil {
		log.Fatalf("receive: %v", err)
	}
	fmt.Printf("decoded clean=%v header=%v crc=%v\n", res.Clean, res.Packet.Header, res.BodyOK)
	fmt.Printf("payload: %q\n", res.Packet.Payload)
}
