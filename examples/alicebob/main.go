// Alice–Bob: the paper's headline scenario (Fig. 1d). Alice and Bob
// exchange packets through a relay in TWO slots instead of four: they
// transmit simultaneously, the router amplifies and forwards the collision
// without decoding it, and each endpoint subtracts what it knows — its own
// packet — to recover the other's.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/anc"
)

const noiseFloor = 1e-3

func main() {
	modem := anc.NewModem()
	alice := anc.NewNode(1, modem, 2*noiseFloor)
	bob := anc.NewNode(2, modem, 2*noiseFloor)

	rng := rand.New(rand.NewSource(11))
	payloadA := make([]byte, 64)
	payloadB := make([]byte, 64)
	rng.Read(payloadA)
	rng.Read(payloadB)

	// Building a frame also stores it in the node's sent-packet buffer —
	// the knowledge that later cancels the interference (§7.3).
	recA := alice.BuildFrame(anc.NewPacket(1, 2, 1, payloadA))
	recB := bob.BuildFrame(anc.NewPacket(2, 1, 1, payloadB))

	// SLOT 1 — both transmit; the router hears the sum. Bob starts ~1100
	// samples late (the §7.2 random delay), which keeps the pilots at the
	// packet edges interference free.
	routerRx := anc.Receive(anc.NewNoiseSource(noiseFloor, 1), 400,
		anc.Transmission{Signal: recA.Samples, Link: anc.Link{Gain: 0.8, Phase: 0.6, FreqOffset: 0.006}},
		anc.Transmission{Signal: recB.Samples, Link: anc.Link{Gain: 0.76, Phase: -0.8, FreqOffset: -0.007}, Delay: 1100},
	)

	// SLOT 2 — amplify-and-forward. The router never decodes.
	relayed := anc.AmplifyForward(routerRx, 1)

	for _, end := range []struct {
		name string
		node *anc.Node
		want []byte
		gain float64
		seed int64
	}{
		{"Alice", alice, payloadB, 0.7, 2},
		{"Bob", bob, payloadA, 0.72, 3},
	} {
		rx := anc.Receive(anc.NewNoiseSource(noiseFloor, end.seed), 400,
			anc.Transmission{Signal: relayed, Link: anc.Link{Gain: end.gain, Phase: 1.0}})
		res, err := end.node.Receive(rx)
		if err != nil {
			log.Fatalf("%s: %v", end.name, err)
		}
		dir := "forward"
		if res.Backward {
			dir = "backward"
		}
		fmt.Printf("%s decoded %s: header=%v A=%.2f B=%.2f crc=%v\n",
			end.name, dir, res.Packet.Header, res.Amplitudes.A, res.Amplitudes.B, res.BodyOK)
		if res.BodyOK {
			match := string(res.Packet.Payload) == string(end.want)
			fmt.Printf("  payload matches counterpart: %v\n", match)
		} else {
			// The paper's system sees the same thing: a small residual
			// BER, corrected by FEC (see examples/fecprotect).
			truth := anc.Marshal(anc.NewPacket(res.Packet.Header.Src, res.Packet.Header.Dst, res.Packet.Header.Seq, end.want))
			fmt.Printf("  residual frame BER %.4f — FEC territory (§11.4)\n", frameBER(truth, res.WantedBits))
		}
	}
	fmt.Println("\n2 slots used; traditional routing needs 4, COPE needs 3 (Fig. 1).")
}

func frameBER(sent, got []byte) float64 {
	if len(sent) == 0 {
		return 0
	}
	n := len(got)
	if n > len(sent) {
		n = len(sent)
	}
	errs := len(sent) - n
	for i := 0; i < n; i++ {
		if sent[i] != got[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(sent))
}
