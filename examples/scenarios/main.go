// Scenario engine: the evaluation as a pluggable workload library. The
// other examples hand-schedule one topology each; here the engine owns
// the shared machinery (seeding, channel realizations, node lifecycle,
// reception buffers, the campaign worker pool) and a Scenario contributes
// only its topology and per-slot schedules. The same seed always yields
// the same channel realization for every compared scheme, which is what
// makes the gain ratios trustworthy.
//
// The second half registers a scenario of its own — an asymmetric
// Alice–Bob where Bob sits behind a much weaker uplink — to show the
// engine runs workloads the paper never measured. (A milder cousin of
// this sketch ships registered as "near-far"; this one keeps a steeper
// 3 dB handicap on the uplink only, and stays an example of out-of-tree
// registration.) The custom Build also attaches a Mobility model to
// Bob's uplink, so the handicapped edge drifts over the run — the
// time-varying channel subsystem working on a hand-built edge.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/anc"
)

func main() {
	// Part 1: every registered scenario, ANC versus traditional routing
	// on identical channel realizations.
	eng := anc.NewEngine(anc.SimConfig{Packets: 4})
	fmt.Println("registered scenarios (seed 7, 4 packets/run):")
	for _, sc := range anc.Scenarios() {
		a, err := eng.Run(sc, anc.SchemeANC, 7)
		if err != nil {
			log.Fatal(err)
		}
		r, err := eng.Run(sc, anc.SchemeRouting, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s ANC/routing throughput gain: %.2fx  (mean ANC BER %.4f)\n",
			sc.Name(), a.Throughput()/r.Throughput(), a.MeanBER())
	}

	// Part 2: plug in a workload of our own.
	anc.RegisterScenario(asymmetric{})
	sc, _ := anc.LookupScenario("asymmetric")
	m, err := eng.Run(sc, anc.SchemeANC, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncustom %q scenario: delivered %d, lost %d, mean BER %.4f\n",
		sc.Name(), m.Delivered, m.Lost, m.MeanBER())
	fmt.Println("(Bob's weak uplink raises the BER above the symmetric Fig. 9 numbers —")
	fmt.Println(" the amplitude gap is what the Lemma 6.1 phase solver feeds on.)")
}

// asymmetric is an Alice–Bob relay where Bob's uplink carries half
// of Alice's power — the near/far situation of a client at the cell edge.
type asymmetric struct{}

func (asymmetric) Name() string        { return "asymmetric" }
func (asymmetric) Description() string { return "Alice–Bob with Bob behind a 3 dB weaker uplink" }
func (asymmetric) Schemes() []anc.Scheme {
	return []anc.Scheme{anc.SchemeANC}
}

// Build lays out alice(0) — router(1) — bob(2) with the asymmetric
// gains, then replaces Bob's uplink with a mobility trace: Bob walks
// toward and away from the router, swinging the weak edge ±3 dB while
// its carrier phase drifts.
func (asymmetric) Build(cfg anc.TopologyConfig, rng *rand.Rand) *anc.Topology {
	g := anc.NewTopology(3, []string{"alice", "router", "bob"}, cfg, rng)
	g.ConnectBoth(0, 1, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
	g.ConnectBoth(2, 1, cfg.MeanPowerGain/2, cfg.GainJitterDB, rng)
	base := anc.RandomLink(rng, cfg.MeanPowerGain/2, cfg.GainJitterDB)
	g.ConnectModel(2, 1, anc.Mobility{
		Base:        base,
		PeriodSlots: 8,
		SwingDB:     6,
		DopplerRad:  0.02,
	})
	return g
}

// Start returns the Fig. 1(d) schedule written against the engine's
// public vocabulary.
func (asymmetric) Start(e *anc.Env, scheme anc.Scheme) (anc.Stepper, error) {
	if scheme != anc.SchemeANC {
		return nil, fmt.Errorf("asymmetric: unsupported scheme %q", scheme)
	}
	alice, bob := e.Node(0), e.Node(2)
	return anc.StepFunc(func(i int, r anc.Recorder) {
		recA := alice.BuildFrame(anc.NewPacket(alice.ID, bob.ID, alice.NextSeq(), e.Payload()))
		recB := bob.BuildFrame(anc.NewPacket(bob.ID, alice.ID, bob.NextSeq(), e.Payload()))

		// Slot 1: both transmit; Bob starts after the §7.2 delay.
		delta := e.DrawDelay()
		upA, _ := e.Graph().Link(0, 1)
		upB, _ := e.Graph().Link(2, 1)
		routerRx := e.Receive(
			anc.Transmission{Signal: recA.Samples, Link: upA},
			anc.Transmission{Signal: recB.Samples, Link: upB, Delay: delta},
		)

		// Slot 2: amplify-and-forward; each endpoint cancels its own.
		relayed := anc.AmplifyForward(routerRx, 1)
		e.Release(routerRx)
		downA, _ := e.Graph().Link(1, 0)
		downB, _ := e.Graph().Link(1, 2)
		rxA := e.Receive(anc.Transmission{Signal: relayed, Link: downA})
		rxB := e.Receive(anc.Transmission{Signal: relayed, Link: downB})
		e.AccountANCDecode(r, alice, rxA, recB)
		e.AccountANCDecode(r, bob, rxB, recA)
		e.Release(rxA)
		e.Release(rxB)

		e.RecordOverlap(r, delta)
		e.ChargeCollisionSlots(r, 2, delta)
	}), nil
}
