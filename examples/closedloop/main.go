// Closed loop: the Alice–Bob network run by its own protocol machinery.
// The other examples orchestrate who transmits when; here the §7.6
// trigger protocol does the scheduling and the router makes its §7.5
// decision — amplify-and-forward, decode, or drop — by peeking at the
// headers it can reach in the interfered signal, with no outside help.
package main

import (
	"fmt"
	"math/rand"

	"repro/anc"
)

func main() {
	session := anc.NewMeshSession(anc.MeshConfig{Cycles: 8, Seed: 42})

	rng := rand.New(rand.NewSource(7))
	mk := func(n int) [][]byte {
		out := make([][]byte, n)
		for i := range out {
			out[i] = make([]byte, 96)
			rng.Read(out[i])
		}
		return out
	}
	// Eight packets in each direction.
	session.Enqueue(mk(8), mk(8))

	stats := session.Run()
	fmt.Println("closed-loop Alice–Bob session:")
	fmt.Printf("  trigger rounds with both endpoints responding: %d\n", stats.Triggered)
	fmt.Printf("  router chose amplify-and-forward (§7.5):        %d\n", stats.RouterForwards)
	fmt.Printf("  router drops:                                   %d\n", stats.RouterDrops)
	fmt.Printf("  packets delivered / lost:                       %d / %d\n", stats.Delivered, stats.Lost)
	fmt.Printf("  mean BER of delivered packets:                  %.4f\n", stats.MeanBER())
	fmt.Println("\nEvery forwarding decision above was made from the received signal alone.")
}
