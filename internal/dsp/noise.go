package dsp

import (
	"math"
	"math/rand"
)

// NoiseSource generates circularly-symmetric complex additive white
// Gaussian noise, the channel model both Theorem 8.1 and the evaluation
// assume. Each complex sample has total power equal to the configured
// variance (variance/2 per real dimension).
//
// A NoiseSource owns its *rand.Rand and is not safe for concurrent use;
// the simulator gives each receiver its own source so experiment runs are
// reproducible regardless of goroutine scheduling.
type NoiseSource struct {
	rng   *rand.Rand
	power float64
	sigma float64 // per-dimension standard deviation
}

// NewNoiseSource returns a source producing samples with average power
// `power` (linear), seeded deterministically.
func NewNoiseSource(power float64, seed int64) *NoiseSource {
	if power < 0 {
		panic("dsp: negative noise power")
	}
	return &NoiseSource{
		rng:   rand.New(rand.NewSource(seed)),
		power: power,
		sigma: math.Sqrt(power / 2),
	}
}

// Power returns the configured average noise power.
func (ns *NoiseSource) Power() float64 { return ns.power }

// Sample returns one noise sample.
func (ns *NoiseSource) Sample() complex128 {
	return complex(ns.rng.NormFloat64()*ns.sigma, ns.rng.NormFloat64()*ns.sigma)
}

// Samples returns n noise samples.
func (ns *NoiseSource) Samples(n int) Signal {
	out := make(Signal, n)
	for i := range out {
		out[i] = ns.Sample()
	}
	return out
}

// AddTo returns s plus fresh noise of the configured power, sample for
// sample. Zero-power sources return a copy of s unchanged, so "noiseless"
// experiment configurations cost nothing extra.
func (ns *NoiseSource) AddTo(s Signal) Signal {
	if ns.power == 0 {
		return s.Clone()
	}
	out := make(Signal, len(s))
	for i, v := range s {
		out[i] = v + ns.Sample()
	}
	return out
}

// AddInPlace adds fresh noise to s sample for sample, drawing the exact
// same stream AddTo would. The allocation-free variant the simulator's
// reusable reception buffers rely on.
func (ns *NoiseSource) AddInPlace(s Signal) {
	if ns.power == 0 {
		return
	}
	for i := range s {
		s[i] += ns.Sample()
	}
}

// Reseed rewinds the source onto a new deterministic stream without
// reallocating its generator state. A source reseeded with some seed
// produces the same samples as a fresh NewNoiseSource with that seed.
func (ns *NoiseSource) Reseed(seed int64) {
	ns.rng.Seed(seed)
}

// SetPower reconfigures the source's average sample power, letting a
// pooled source be retargeted across runs without reallocating its
// generator. Combined with Reseed it is behaviorally identical to a
// fresh NewNoiseSource(power, seed).
func (ns *NoiseSource) SetPower(power float64) {
	if power < 0 {
		panic("dsp: negative noise power")
	}
	ns.power = power
	ns.sigma = math.Sqrt(power / 2)
}
