package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CrossCorrelate returns the magnitude of the complex cross-correlation of
// haystack with needle at every lag where the needle fits entirely:
// out[k] = |Σ_n haystack[k+n]·conj(needle[n])|. The pilot aligner uses the
// decoded-bit matcher of §7.2 as its primary mechanism, but sample-level
// correlation is exposed for diagnostics and the alignment ablation.
func CrossCorrelate(haystack, needle Signal) []float64 {
	if len(needle) == 0 || len(needle) > len(haystack) {
		return nil
	}
	out := make([]float64, len(haystack)-len(needle)+1)
	for k := range out {
		var acc complex128
		for n, w := range needle {
			acc += haystack[k+n] * cmplx.Conj(w)
		}
		out[k] = cmplx.Abs(acc)
	}
	return out
}

// ArgMax returns the index of the largest element of xs, or -1 for empty
// input. Ties resolve to the earliest index, which for correlation peaks
// means the earliest alignment.
func ArgMax(xs []float64) int {
	best := -1
	bestV := math.Inf(-1)
	for i, x := range xs {
		if x > bestV {
			best, bestV = i, x
		}
	}
	return best
}

// FIR is a finite-impulse-response filter with fixed real taps. The modem
// uses a short boxcar FIR as a matched filter when SamplesPerSymbol > 1:
// averaging the samples of one symbol interval before taking phase
// differences buys an SNR gain of the oversampling factor.
type FIR struct {
	taps []float64
}

// NewFIR returns a filter with the given taps. At least one tap is
// required.
func NewFIR(taps []float64) *FIR {
	if len(taps) == 0 {
		panic("dsp: FIR with no taps")
	}
	out := make([]float64, len(taps))
	copy(out, taps)
	return &FIR{taps: out}
}

// Boxcar returns an n-tap moving-average filter with unit DC gain.
func Boxcar(n int) *FIR {
	if n <= 0 {
		panic(fmt.Sprintf("dsp: boxcar length %d", n))
	}
	taps := make([]float64, n)
	for i := range taps {
		taps[i] = 1 / float64(n)
	}
	return &FIR{taps: taps}
}

// Apply convolves s with the filter taps, returning a signal of the same
// length (the leading edge uses the partial overlap, i.e. zero-padded
// history). out[n] = Σ_k taps[k]·s[n−k].
func (f *FIR) Apply(s Signal) Signal {
	out := make(Signal, len(s))
	for n := range s {
		var acc complex128
		for k, t := range f.taps {
			if n-k < 0 {
				break
			}
			acc += complex(t, 0) * s[n-k]
		}
		out[n] = acc
	}
	return out
}

// Downsample keeps every factor-th sample of s starting at offset.
func Downsample(s Signal, factor, offset int) Signal {
	if factor <= 0 {
		panic(fmt.Sprintf("dsp: downsample factor %d", factor))
	}
	if offset < 0 {
		panic(fmt.Sprintf("dsp: downsample offset %d", offset))
	}
	var out Signal
	for i := offset; i < len(s); i += factor {
		out = append(out, s[i])
	}
	return out
}

// Upsample inserts factor−1 zeros after every sample of s. Together with a
// smoothing FIR this is the textbook interpolator the transmitter front end
// (§5.1, "the wireless transmitter interpolates the samples") corresponds
// to; the modem uses phase-continuous generation instead but the primitive
// is exposed for completeness and tests.
func Upsample(s Signal, factor int) Signal {
	if factor <= 0 {
		panic(fmt.Sprintf("dsp: upsample factor %d", factor))
	}
	out := make(Signal, len(s)*factor)
	for i, v := range s {
		out[i*factor] = v
	}
	return out
}
