package dsp

import "math"

// MovingStats computes mean and variance of per-sample energy |y[n]|² over
// a sliding window. The packet detector and the interference detector of
// §7.1 are both built on it: a packet begins where windowed energy rises
// well above the noise floor, and interference is declared where the
// windowed energy *variance* is large (a clean MSK signal has nearly
// constant energy; a sum of two MSK signals does not).
type MovingStats struct {
	window  int
	samples []float64 // ring buffer of |y|² values
	head    int
	count   int
	sum     float64
	sumSq   float64
}

// NewMovingStats returns a detector with the given window length in
// samples. Window must be positive.
func NewMovingStats(window int) *MovingStats {
	if window <= 0 {
		panic("dsp: non-positive window")
	}
	return &MovingStats{window: window, samples: make([]float64, window)}
}

// Push adds a sample's energy to the window, evicting the oldest if full.
func (m *MovingStats) Push(v complex128) {
	e := real(v)*real(v) + imag(v)*imag(v)
	if m.count == m.window {
		old := m.samples[m.head]
		m.sum -= old
		m.sumSq -= old * old
	} else {
		m.count++
	}
	m.samples[m.head] = e
	m.sum += e
	m.sumSq += e * e
	m.head = (m.head + 1) % m.window
}

// Full reports whether the window has seen at least window samples.
func (m *MovingStats) Full() bool { return m.count == m.window }

// Window returns the configured window length. A caller re-using one
// detector across receptions can skip Rewindow (and just Reset) when the
// length is unchanged.
func (m *MovingStats) Window() int { return m.window }

// Mean returns the windowed mean energy. Zero before any sample.
func (m *MovingStats) Mean() float64 {
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Variance returns the windowed population variance of the energy.
func (m *MovingStats) Variance() float64 {
	if m.count == 0 {
		return 0
	}
	n := float64(m.count)
	mean := m.sum / n
	v := m.sumSq/n - mean*mean
	if v < 0 { // floating-point cancellation guard
		v = 0
	}
	return v
}

// Reset clears the window.
func (m *MovingStats) Reset() {
	m.head, m.count, m.sum, m.sumSq = 0, 0, 0, 0
}

// Rewindow resets the detector to a (possibly different) window length,
// reusing the ring buffer when its capacity allows. After Rewindow the
// detector behaves exactly like NewMovingStats(window).
func (m *MovingStats) Rewindow(window int) {
	if window <= 0 {
		panic("dsp: non-positive window")
	}
	if cap(m.samples) < window {
		m.samples = make([]float64, window)
	} else {
		m.samples = m.samples[:window]
	}
	m.window = window
	m.Reset()
}

// EnergyProfile returns the windowed mean energy at every sample position
// of s (the window trails the position). Positions before the window fills
// use the partial window. Detectors scan this profile for thresholds.
func EnergyProfile(s Signal, window int) []float64 {
	m := NewMovingStats(window)
	out := make([]float64, len(s))
	for i, v := range s {
		m.Push(v)
		out[i] = m.Mean()
	}
	return out
}

// VarianceProfile returns the windowed energy variance at every position.
func VarianceProfile(s Signal, window int) []float64 {
	m := NewMovingStats(window)
	out := make([]float64, len(s))
	for i, v := range s {
		m.Push(v)
		out[i] = m.Variance()
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for empty input).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }
