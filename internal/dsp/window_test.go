package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestMovingStatsConstantSignal(t *testing.T) {
	m := NewMovingStats(8)
	for i := 0; i < 100; i++ {
		m.Push(complex(2, 0)) // energy 4
	}
	if got := m.Mean(); !approx(got, 4, 1e-12) {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := m.Variance(); !approx(got, 0, 1e-9) {
		t.Errorf("Variance = %v, want 0", got)
	}
}

func TestMovingStatsEviction(t *testing.T) {
	m := NewMovingStats(2)
	m.Push(1) // energy 1
	m.Push(1)
	m.Push(complex(0, 3)) // energy 9; window now {1, 9}
	if got := m.Mean(); !approx(got, 5, 1e-12) {
		t.Errorf("Mean after eviction = %v, want 5", got)
	}
	if got := m.Variance(); !approx(got, 16, 1e-9) {
		t.Errorf("Variance = %v, want 16", got)
	}
}

func TestMovingStatsMatchesBatch(t *testing.T) {
	// The incremental window must agree with a direct computation.
	f := func(vals []float64) bool {
		const w = 5
		m := NewMovingStats(w)
		for i, v := range vals {
			if math.Abs(v) > 1e3 {
				v = math.Mod(v, 1e3)
			}
			m.Push(complex(v, 0))
			lo := i + 1 - w
			if lo < 0 {
				lo = 0
			}
			var window []float64
			for j := lo; j <= i; j++ {
				x := vals[j]
				if math.Abs(x) > 1e3 {
					x = math.Mod(x, 1e3)
				}
				window = append(window, x*x)
			}
			scale := 1 + Mean(window)
			if math.Abs(m.Mean()-Mean(window)) > 1e-6*scale {
				return false
			}
			if math.Abs(m.Variance()-Variance(window)) > 1e-4*scale*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingStatsReset(t *testing.T) {
	m := NewMovingStats(4)
	m.Push(5)
	m.Reset()
	if m.Mean() != 0 || m.Variance() != 0 || m.Full() {
		t.Error("Reset did not clear state")
	}
}

func TestMovingStatsFull(t *testing.T) {
	m := NewMovingStats(3)
	m.Push(1)
	m.Push(1)
	if m.Full() {
		t.Error("Full before window filled")
	}
	m.Push(1)
	if !m.Full() {
		t.Error("not Full after window filled")
	}
}

func TestEnergyProfileDetectsPacketEdge(t *testing.T) {
	// 100 near-zero samples then 100 unit-power samples: the profile must
	// rise sharply after the edge.
	s := make(Signal, 200)
	for i := 100; i < 200; i++ {
		s[i] = 1
	}
	prof := EnergyProfile(s, 16)
	if prof[50] > 0.01 {
		t.Errorf("profile before edge = %v", prof[50])
	}
	if prof[150] < 0.9 {
		t.Errorf("profile after edge = %v", prof[150])
	}
}

func TestVarianceProfileSeparatesCleanFromInterfered(t *testing.T) {
	// Clean MSK-like signal: constant magnitude, rotating phase → ~zero
	// energy variance. Sum of two such signals at an offset frequency →
	// large variance. This is exactly the §7.1 discriminator.
	n := 512
	clean := make(Signal, n)
	mixed := make(Signal, n)
	for i := 0; i < n; i++ {
		a := cmplx.Exp(complex(0, 0.3*float64(i)))
		b := cmplx.Exp(complex(0, -0.4*float64(i)+1))
		clean[i] = a
		mixed[i] = a + b
	}
	vClean := Mean(VarianceProfile(clean, 32)[32:])
	vMixed := Mean(VarianceProfile(mixed, 32)[32:])
	if vClean > 1e-9 {
		t.Errorf("clean MSK variance = %v, want ~0", vClean)
	}
	if vMixed < 100*vClean+0.5 {
		t.Errorf("interfered variance = %v, not clearly above clean %v", vMixed, vClean)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !approx(got, 5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); !approx(got, 4, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); !approx(got, 2, 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-input stats not zero")
	}
}

func TestNewMovingStatsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero window did not panic")
		}
	}()
	NewMovingStats(0)
}
