package dsp

import (
	"math"
	"testing"
)

func TestNoisePowerMatchesConfiguration(t *testing.T) {
	for _, p := range []float64{0.01, 0.5, 1, 4} {
		ns := NewNoiseSource(p, 1)
		got := ns.Samples(200000).Power()
		if math.Abs(got-p)/p > 0.05 {
			t.Errorf("noise power = %v, want %v", got, p)
		}
	}
}

func TestNoiseZeroMean(t *testing.T) {
	ns := NewNoiseSource(1, 2)
	var sum complex128
	const n = 100000
	for i := 0; i < n; i++ {
		sum += ns.Sample()
	}
	mean := sum / complex(n, 0)
	if math.Abs(real(mean)) > 0.02 || math.Abs(imag(mean)) > 0.02 {
		t.Errorf("noise mean = %v, want ~0", mean)
	}
}

func TestNoiseCircularSymmetry(t *testing.T) {
	// Real and imaginary parts carry equal power.
	ns := NewNoiseSource(2, 3)
	var re, im float64
	const n = 100000
	for i := 0; i < n; i++ {
		s := ns.Sample()
		re += real(s) * real(s)
		im += imag(s) * imag(s)
	}
	if math.Abs(re-im)/re > 0.05 {
		t.Errorf("dimension powers %v vs %v not balanced", re/n, im/n)
	}
}

func TestNoiseDeterministicBySeed(t *testing.T) {
	a := NewNoiseSource(1, 7).Samples(64)
	b := NewNoiseSource(1, 7).Samples(64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different noise")
		}
	}
	c := NewNoiseSource(1, 8).Samples(64)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestAddToZeroPower(t *testing.T) {
	ns := NewNoiseSource(0, 1)
	s := Signal{1, 2i}
	got := ns.AddTo(s)
	for i := range s {
		if got[i] != s[i] {
			t.Error("zero-power AddTo modified signal")
		}
	}
	got[0] = 99
	if s[0] == 99 {
		t.Error("AddTo aliases input")
	}
}

func TestAddToRaisesPower(t *testing.T) {
	ns := NewNoiseSource(1, 4)
	s := make(Signal, 100000)
	for i := range s {
		s[i] = 1 // unit-power carrier
	}
	got := ns.AddTo(s).Power()
	if math.Abs(got-2) > 0.1 {
		t.Errorf("signal+noise power = %v, want ~2", got)
	}
}

func TestNegativeNoisePowerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative power did not panic")
		}
	}()
	NewNoiseSource(-1, 1)
}
