package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEnergyAndPower(t *testing.T) {
	s := Signal{1, 1i, complex(3, 4)}
	if got := s.Energy(); !approx(got, 1+1+25, 1e-12) {
		t.Errorf("Energy = %v, want 27", got)
	}
	if got := s.Power(); !approx(got, 9, 1e-12) {
		t.Errorf("Power = %v, want 9", got)
	}
	if got := (Signal{}).Power(); got != 0 {
		t.Errorf("empty Power = %v, want 0", got)
	}
}

func TestScaleTo(t *testing.T) {
	s := Signal{complex(2, 0), complex(0, 2)}
	scaled := s.ScaleTo(1)
	if got := scaled.Power(); !approx(got, 1, 1e-12) {
		t.Errorf("ScaleTo(1) power = %v", got)
	}
	// Phase must be preserved by power normalization.
	for i := range s {
		if !approx(cmplx.Phase(s[i]), cmplx.Phase(scaled[i]), 1e-12) {
			t.Errorf("ScaleTo changed phase at %d", i)
		}
	}
	zero := Signal{0, 0}
	if got := zero.ScaleTo(5); got.Power() != 0 {
		t.Errorf("ScaleTo on zero signal = %v", got)
	}
}

func TestAddUnequalLengths(t *testing.T) {
	a := Signal{1, 1}
	b := Signal{1i, 1i, 1i}
	sum := a.Add(b)
	if len(sum) != 3 {
		t.Fatalf("len = %d, want 3", len(sum))
	}
	if sum[0] != 1+1i || sum[2] != 1i {
		t.Errorf("Add = %v", sum)
	}
	// Commutativity with zero padding.
	sum2 := b.Add(a)
	for i := range sum {
		if sum[i] != sum2[i] {
			t.Errorf("Add not commutative at %d", i)
		}
	}
}

func TestDelay(t *testing.T) {
	s := Signal{1, 2}
	d := s.Delay(3)
	if len(d) != 5 || d[0] != 0 || d[3] != 1 || d[4] != 2 {
		t.Errorf("Delay = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	s.Delay(-1)
}

func TestDelayPreservesEnergy(t *testing.T) {
	f := func(re, im []float64) bool {
		n := len(re)
		if len(im) < n {
			n = len(im)
		}
		s := make(Signal, n)
		for i := 0; i < n; i++ {
			// Clamp quick's extreme float64 draws so energy stays finite.
			s[i] = complex(math.Mod(re[i], 1e3), math.Mod(im[i], 1e3))
		}
		return approx(s.Energy(), s.Delay(7).Energy(), 1e-9*(1+s.Energy()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPadTo(t *testing.T) {
	s := Signal{1, 2}
	if got := s.PadTo(4); len(got) != 4 || got[3] != 0 {
		t.Errorf("PadTo(4) = %v", got)
	}
	if got := s.PadTo(1); len(got) != 2 {
		t.Errorf("PadTo(1) shortened: %v", got)
	}
}

func TestReverseInvolution(t *testing.T) {
	s := Signal{1, 2i, 3, 4i}
	r := s.Reverse()
	if r[0] != 4i || r[3] != 1 {
		t.Errorf("Reverse = %v", r)
	}
	rr := r.Reverse()
	for i := range s {
		if s[i] != rr[i] {
			t.Error("Reverse not an involution")
		}
	}
}

func TestSliceClamps(t *testing.T) {
	s := Signal{1, 2, 3}
	if got := s.Slice(-5, 2); len(got) != 2 {
		t.Errorf("Slice(-5,2) = %v", got)
	}
	if got := s.Slice(1, 99); len(got) != 2 {
		t.Errorf("Slice(1,99) = %v", got)
	}
	if got := s.Slice(2, 1); len(got) != 0 {
		t.Errorf("Slice(2,1) = %v", got)
	}
}

func TestSliceIsACopy(t *testing.T) {
	s := Signal{1, 2, 3}
	sl := s.Slice(0, 2)
	sl[0] = 99
	if s[0] == 99 {
		t.Error("Slice aliases the source")
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi / 2, math.Pi / 2},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi}, // (−π, π] convention
		{3 * math.Pi / 2, -math.Pi / 2},
		{-3 * math.Pi / 2, math.Pi / 2},
		{5 * math.Pi, math.Pi},
		{-5 * math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := WrapPhase(c.in); !approx(got, c.want, 1e-9) {
			t.Errorf("WrapPhase(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapPhaseRange(t *testing.T) {
	f := func(p float64) bool {
		if math.IsNaN(p) || math.Abs(p) > 1e6 {
			return true // skip absurd magnitudes: loop would be slow
		}
		w := WrapPhase(p)
		return w > -math.Pi-1e-9 && w <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhaseDiff(t *testing.T) {
	a := cmplx.Exp(complex(0, 0.3))
	b := cmplx.Exp(complex(0, 0.3+math.Pi/2))
	if got := PhaseDiff(a, b); !approx(got, math.Pi/2, 1e-9) {
		t.Errorf("PhaseDiff = %v, want π/2", got)
	}
	// Invariance to common attenuation and phase (the Eq. 1 property).
	g := complex(0.37, 0) * cmplx.Exp(complex(0, 1.1))
	if got := PhaseDiff(a*g, b*g); !approx(got, math.Pi/2, 1e-9) {
		t.Errorf("PhaseDiff under channel = %v, want π/2", got)
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-20, -3, 0, 3, 10, 25, 40} {
		if got := DB(FromDB(db)); !approx(got, db, 1e-9) {
			t.Errorf("DB(FromDB(%v)) = %v", db, got)
		}
	}
	if !approx(FromDB(3), 1.9953, 1e-3) {
		t.Errorf("FromDB(3) = %v", FromDB(3))
	}
}

func TestPhasesMagnitudes(t *testing.T) {
	s := Signal{complex(0, 2), complex(-3, 0)}
	ph := s.Phases()
	if !approx(ph[0], math.Pi/2, 1e-12) || !approx(ph[1], math.Pi, 1e-12) {
		t.Errorf("Phases = %v", ph)
	}
	mg := s.Magnitudes()
	if !approx(mg[0], 2, 1e-12) || !approx(mg[1], 3, 1e-12) {
		t.Errorf("Magnitudes = %v", mg)
	}
}
