package dsp

import "math"

// This file holds the batched kernels of the burst decode path: the
// detector's profile filter, the pilot correlation scans, and the shared
// symbol matched filter / Viterbi stages of the oversampled demodulators.
// Each kernel evaluates a whole block of work (a signal, a batch of
// candidate offsets) per call, so the decode pipeline's inner loops live
// here rather than being re-expressed at every call site.

// ProfileInto fills energy[i] and variance[i] with the windowed mean and
// population variance of per-sample energy after pushing s[i] — the
// one-pass filter sweep the §7.1 detectors scan. The window state is
// Reset first, so consecutive calls on one MovingStats are independent
// and a batch of signals can share a single re-wound window. energy and
// variance must be at least len(s) long.
//
//anc:hotpath
func (m *MovingStats) ProfileInto(energy, variance []float64, s Signal) {
	m.Reset()
	for i, v := range s {
		m.Push(v)
		energy[i] = m.Mean()
		variance[i] = m.Variance()
	}
}

// CorrelatePhaseDiffs returns Σ cos(diffs[k] − expected[k]) over the
// expected profile — the soft pilot-correlation score of one candidate
// alignment in a recovered ∆φ stream (§7.2 refinement). diffs must be at
// least len(expected) long.
//
//anc:hotpath
func CorrelatePhaseDiffs(diffs, expected []float64) float64 {
	var score float64
	for k, e := range expected {
		score += math.Cos(diffs[k] - e)
	}
	return score
}

// CorrelateSignalDiffs returns Σ cos(∆θ[k] − expected[k]) where ∆θ[k] is
// the observed phase difference from s[k] to s[k+1] — the signal-domain
// form of CorrelatePhaseDiffs. s must have at least len(expected)+1
// samples.
//
//anc:hotpath
func CorrelateSignalDiffs(s Signal, expected []float64) float64 {
	var score float64
	for k, e := range expected {
		score += math.Cos(PhaseDiff(s[k], s[k+1]) - e)
	}
	return score
}

// BestDiffsCorrelation scans the batch of candidate offsets [lo, hi) of a
// ∆φ stream and returns the one whose window diffs[o:o+len(expected)]
// maximizes CorrelatePhaseDiffs, skipping offsets that would read out of
// bounds. Ties keep the earliest offset; when no offset is valid the
// fallback is returned with a −Inf score.
//
//anc:hotpath
func BestDiffsCorrelation(diffs, expected []float64, lo, hi, fallback int) (int, float64) {
	best, bestScore := fallback, math.Inf(-1)
	for o := lo; o < hi; o++ {
		if o < 0 || o+len(expected) > len(diffs) {
			continue
		}
		if score := CorrelatePhaseDiffs(diffs[o:], expected); score > bestScore {
			best, bestScore = o, score
		}
	}
	return best, bestScore
}

// BestSignalCorrelation is BestDiffsCorrelation in the signal domain: it
// scans candidate start samples [lo, hi) and returns the one maximizing
// CorrelateSignalDiffs over the expected profile, skipping starts whose
// window would read at or past limit. Ties keep the earliest start; when
// no start is valid the fallback is returned with a −Inf score.
//
//anc:hotpath
func BestSignalCorrelation(s Signal, expected []float64, lo, hi, limit, fallback int) (int, float64) {
	best, bestScore := fallback, math.Inf(-1)
	for r := lo; r < hi; r++ {
		if r < 0 || r+len(expected)+1 > limit {
			continue
		}
		if score := CorrelateSignalDiffs(s[r:], expected); score > bestScore {
			best, bestScore = r, score
		}
	}
	return best, bestScore
}

// BoxcarSymbolsInto fills g[i] with the sum of symbol i's sps samples
// (s[1+i·sps] .. s[(i+1)·sps], past the leading reference sample) — the
// symbol-length matched filter every constant-envelope oversampled
// receiver here shares. The symbol count is len(g).
//
//anc:hotpath
func BoxcarSymbolsInto(g []complex128, s Signal, sps int) []complex128 {
	for i := range g {
		var acc complex128
		base := 1 + i*sps
		for k := 0; k < sps; k++ {
			acc += s[base+k]
		}
		g[i] = acc
	}
	return g
}

// ViterbiHalfStep runs the two-state maximum-likelihood sequence detector
// over a matched-filtered symbol stream g with partial-response binary
// phase transitions: the observation at symbol i is the phase difference
// from g[i−1] to g[i] (for i = 0, from the phase reference ref to g[0]),
// state b ∈ {0, 1} is the previous bit, the hypothesized observation for
// a (prev p, next b) transition is (steps[b]+steps[p])/2, and the first
// observation hypothesizes steps[b]/2. The branch metric is the squared
// wrapped phase error. Observations are derived from g on the fly — no
// materialized observation stream — so the kernel's only storage is the
// caller's: dst receives the len(g) decided bits; back is the
// back-pointer scratch and must hold at least 2·len(g) bytes.
//
//anc:hotpath
func ViterbiHalfStep(back []byte, dst []byte, ref complex128, g []complex128, steps [2]float64) []byte {
	n := len(g)
	metric := [2]float64{}
	obs := PhaseDiff(ref, g[0])
	for b := 0; b < 2; b++ {
		e := WrapPhase(obs - steps[b]/2)
		metric[b] = e * e
	}
	for i := 1; i < n; i++ {
		obs = PhaseDiff(g[i-1], g[i])
		var next [2]float64
		for b := 0; b < 2; b++ {
			best := math.Inf(1)
			var bestPrev uint8
			for p := 0; p < 2; p++ {
				e := WrapPhase(obs - (steps[b]+steps[p])/2)
				c := metric[p] + e*e
				if c < best {
					best, bestPrev = c, uint8(p)
				}
			}
			next[b] = best
			back[2*i+b] = bestPrev
		}
		metric = next
	}
	state := uint8(0)
	if metric[1] < metric[0] {
		state = 1
	}
	for i := n - 1; i >= 0; i-- {
		dst[i] = state
		if i > 0 {
			state = back[2*i+int(state)]
		}
	}
	return dst
}

// GrowByteSlices returns dst resized to n slots, preserving the retained
// per-slot buffers so a reusing caller keeps every slot's storage — the
// slice-of-slices form of GrowBytes the batch demodulators use.
func GrowByteSlices(dst [][]byte, n int) [][]byte {
	if cap(dst) < n {
		grown := make([][]byte, n)
		copy(grown, dst)
		return grown
	}
	return dst[:n]
}

// GrowSignals is GrowByteSlices for slices of signal views.
func GrowSignals(dst []Signal, n int) []Signal {
	if cap(dst) < n {
		grown := make([]Signal, n)
		copy(grown, dst)
		return grown
	}
	return dst[:n]
}
