package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestCrossCorrelatePeakAtTrueOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	needle := make(Signal, 32)
	for i := range needle {
		needle[i] = cmplx.Exp(complex(0, rng.Float64()*2*math.Pi))
	}
	const offset = 77
	haystack := make(Signal, 256)
	for i := range haystack {
		haystack[i] = complex(rng.NormFloat64()*0.1, rng.NormFloat64()*0.1)
	}
	for i, v := range needle {
		haystack[offset+i] += v
	}
	corr := CrossCorrelate(haystack, needle)
	if got := ArgMax(corr); got != offset {
		t.Errorf("correlation peak at %d, want %d", got, offset)
	}
}

func TestCrossCorrelatePhaseInvariance(t *testing.T) {
	// A channel rotation of the haystack must not move the peak.
	needle := make(Signal, 16)
	for i := range needle {
		needle[i] = cmplx.Exp(complex(0, 0.7*float64(i)))
	}
	haystack := needle.Delay(40).PadTo(100)
	rotated := haystack.Scale(cmplx.Exp(complex(0, 1.234)))
	if got := ArgMax(CrossCorrelate(rotated, needle)); got != 40 {
		t.Errorf("peak under rotation at %d, want 40", got)
	}
}

func TestCrossCorrelateDegenerate(t *testing.T) {
	if got := CrossCorrelate(Signal{1, 2}, Signal{}); got != nil {
		t.Errorf("empty needle = %v", got)
	}
	if got := CrossCorrelate(Signal{1}, Signal{1, 2}); got != nil {
		t.Errorf("needle longer than haystack = %v", got)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d", got)
	}
	if got := ArgMax([]float64{1, 3, 3, 2}); got != 1 {
		t.Errorf("ArgMax tie = %d, want earliest (1)", got)
	}
}

func TestBoxcarDCGain(t *testing.T) {
	f := Boxcar(4)
	s := make(Signal, 16)
	for i := range s {
		s[i] = complex(2, -1)
	}
	out := f.Apply(s)
	// After the filter fills, output equals input for a constant signal.
	for i := 4; i < len(out); i++ {
		if cmplx.Abs(out[i]-complex(2, -1)) > 1e-12 {
			t.Fatalf("boxcar steady state out[%d] = %v", i, out[i])
		}
	}
}

func TestFIRReducesNoise(t *testing.T) {
	// A boxcar over white noise cuts power by roughly its length.
	ns := NewNoiseSource(1, 5)
	noise := ns.Samples(50000)
	filtered := Boxcar(8).Apply(noise)
	ratio := noise.Power() / filtered.Slice(8, len(filtered)).Power()
	if ratio < 6 || ratio > 10 {
		t.Errorf("noise suppression = %vx, want ~8x", ratio)
	}
}

func TestFIRImpulseResponse(t *testing.T) {
	f := NewFIR([]float64{0.5, 0.25, 0.125})
	s := Signal{1, 0, 0, 0}
	out := f.Apply(s)
	want := []float64{0.5, 0.25, 0.125, 0}
	for i, w := range want {
		if math.Abs(real(out[i])-w) > 1e-12 || imag(out[i]) != 0 {
			t.Errorf("impulse response[%d] = %v, want %v", i, out[i], w)
		}
	}
}

func TestUpsampleDownsampleRoundTrip(t *testing.T) {
	s := Signal{1, 2i, 3, 4i}
	up := Upsample(s, 3)
	if len(up) != 12 || up[0] != 1 || up[1] != 0 || up[3] != 2i {
		t.Errorf("Upsample = %v", up)
	}
	down := Downsample(up, 3, 0)
	for i := range s {
		if down[i] != s[i] {
			t.Error("up/down round trip failed")
		}
	}
}

func TestDownsampleOffset(t *testing.T) {
	s := Signal{0, 1, 2, 3, 4, 5}
	got := Downsample(s, 2, 1)
	if len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("Downsample offset = %v", got)
	}
}

func TestFilterPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty FIR":          func() { NewFIR(nil) },
		"boxcar 0":           func() { Boxcar(0) },
		"downsample 0":       func() { Downsample(Signal{1}, 0, 0) },
		"downsample neg off": func() { Downsample(Signal{1}, 1, -1) },
		"upsample 0":         func() { Upsample(Signal{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
