// Package dsp provides the complex-baseband signal primitives the ANC stack
// is built on: signals as slices of complex samples, energy and power
// measurements, moving-window detectors, phase arithmetic, correlation, and
// additive white Gaussian noise generation.
//
// The paper's receiver (§5.3) sees a stream of complex samples
// y[n] = h·A·e^{i(θ[n]+γ)} and all downstream algorithms — MSK demodulation,
// interference detection, amplitude estimation, the Lemma 6.1 phase solver —
// are expressed over such streams. This package is the shared vocabulary.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Signal is a stream of complex baseband samples. The zero value is an
// empty signal ready to append to.
type Signal []complex128

// Clone returns an independent copy of s.
func (s Signal) Clone() Signal {
	out := make(Signal, len(s))
	copy(out, s)
	return out
}

// Energy returns the total energy Σ|s[n]|².
func (s Signal) Energy() float64 {
	var e float64
	for _, v := range s {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// Power returns the average per-sample power Energy/len. Empty signals have
// zero power.
func (s Signal) Power() float64 {
	if len(s) == 0 {
		return 0
	}
	return s.Energy() / float64(len(s))
}

// Scale returns s multiplied element-wise by the complex gain g.
func (s Signal) Scale(g complex128) Signal {
	out := make(Signal, len(s))
	for i, v := range s {
		out[i] = v * g
	}
	return out
}

// ScaleInPlace multiplies s element-wise by the complex gain g, overwriting
// s, and returns it. The sample values equal Scale's.
func (s Signal) ScaleInPlace(g complex128) Signal {
	for i, v := range s {
		s[i] = v * g
	}
	return s
}

// ScaleTo returns s rescaled so its average power equals p. A zero signal
// is returned unchanged (there is nothing to normalize).
func (s Signal) ScaleTo(p float64) Signal {
	cur := s.Power()
	if cur == 0 {
		return s.Clone()
	}
	return s.Scale(complex(math.Sqrt(p/cur), 0))
}

// Add returns the element-wise sum of s and other. The result has the
// length of the longer operand; the shorter one is treated as zero-padded,
// which models a shorter transmission overlapping a longer one.
func (s Signal) Add(other Signal) Signal {
	n := len(s)
	if len(other) > n {
		n = len(other)
	}
	out := make(Signal, n)
	copy(out, s)
	for i, v := range other {
		out[i] += v
	}
	return out
}

// Delay returns s preceded by d zero samples. Negative delays are rejected;
// the medium expresses early arrivals by delaying the other signal.
func (s Signal) Delay(d int) Signal {
	if d < 0 {
		panic(fmt.Sprintf("dsp: negative delay %d", d))
	}
	out := make(Signal, d+len(s))
	copy(out[d:], s)
	return out
}

// PadTo returns s extended with zero samples to at least length n.
func (s Signal) PadTo(n int) Signal {
	if len(s) >= n {
		return s.Clone()
	}
	out := make(Signal, n)
	copy(out, s)
	return out
}

// Reverse returns the samples of s in reverse order. Bob's backward
// decoding (§7.4) runs the receiver pipeline over the time-reversed stream.
func (s Signal) Reverse() Signal {
	out := make(Signal, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

// Slice returns s[from:to] clamped to the valid range, as a copy. It never
// panics: detectors routinely probe windows near the stream boundaries.
func (s Signal) Slice(from, to int) Signal {
	if from < 0 {
		from = 0
	}
	if to > len(s) {
		to = len(s)
	}
	if from >= to {
		return Signal{}
	}
	return s[from:to].Clone()
}

// View is Slice without the copy: it returns s[from:to] clamped to the
// valid range as a view sharing s's storage. Use it for read-only
// measurements (Power, Energy) on the decode hot path; use Slice when the
// result must outlive mutations of s.
func (s Signal) View(from, to int) Signal {
	if from < 0 {
		from = 0
	}
	if to > len(s) {
		to = len(s)
	}
	if from >= to {
		return Signal{}
	}
	return s[from:to]
}

// Phases returns arg(s[n]) for every sample.
func (s Signal) Phases() []float64 {
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = cmplx.Phase(v)
	}
	return out
}

// Magnitudes returns |s[n]| for every sample.
func (s Signal) Magnitudes() []float64 {
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// WrapPhase maps an angle to the interval (−π, π]. Every phase comparison
// in the decoder wraps first; forgetting to do so turns a −π/2 symbol into
// a 3π/2 "error" and flips the decision.
func WrapPhase(p float64) float64 {
	for p > math.Pi {
		p -= 2 * math.Pi
	}
	for p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

// PhaseDiff returns the wrapped difference arg(b) − arg(a). For unit-ish
// magnitude samples this is the MSK demodulation quantity of Eq. 1:
// arg(b/a).
func PhaseDiff(a, b complex128) float64 {
	return cmplx.Phase(b * cmplx.Conj(a))
}

// DB converts a linear power ratio to decibels.
func DB(ratio float64) float64 {
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}
