package dsp

// Scratch is a small arena of reusable numeric buffers for the internal
// working storage of hot-path algorithms (the MLSE demodulator's matched
// filter and Viterbi back-pointers, soft-decision accumulators). Borrowing
// a buffer never zeroes it — callers overwrite every element they read —
// and only the most recent borrow of each type is valid: a second call to
// the same method hands out the same storage again.
//
// A Scratch is not safe for concurrent use. The zero value is ready to
// use; buffers grow on demand and are retained for the next borrow.
type Scratch struct {
	c128 []complex128
	b    []byte
	f64  []float64
}

// Complex128s borrows a []complex128 of length n (contents undefined).
func (s *Scratch) Complex128s(n int) []complex128 {
	if cap(s.c128) < n {
		s.c128 = make([]complex128, n)
	}
	s.c128 = s.c128[:n]
	return s.c128
}

// Bytes borrows a []byte of length n (contents undefined).
func (s *Scratch) Bytes(n int) []byte {
	if cap(s.b) < n {
		s.b = make([]byte, n)
	}
	s.b = s.b[:n]
	return s.b
}

// Float64s borrows a []float64 of length n (contents undefined).
func (s *Scratch) Float64s(n int) []float64 {
	if cap(s.f64) < n {
		s.f64 = make([]float64, n)
	}
	s.f64 = s.f64[:n]
	return s.f64
}

// GrowBytes returns dst resized to n bytes (contents undefined),
// reallocating only when its capacity is too small — the caller-owned-dst
// half of the Into-variant buffer contract the modems share.
func GrowBytes(dst []byte, n int) []byte {
	if cap(dst) < n {
		return make([]byte, n)
	}
	return dst[:n]
}

// GrowFloats is GrowBytes for float64 buffers.
func GrowFloats(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}
