package dsp

// Arena is a bump allocator over contiguous backing arrays, one per
// element type. The burst decode path carves every per-reception scratch
// buffer of a batch from one Arena so the buffers a decode touches
// together sit together in memory — the cache-locality half of the
// ndn-dpdk "bursts plus preallocated arenas" idiom (the other half, the
// free-list of reception sample buffers, lives in the simulator's
// Scratch).
//
// Usage: Reserve the batch's total element counts once, then carve blocks
// with Floats/Bytes/Complex128s. Blocks carved from one Reserve are
// adjacent in memory and have their capacity clamped to the block
// (three-index slicing), so a later append or Grow* on one block can
// never bleed into its neighbor. A carve that exceeds the reservation
// falls back to a dedicated allocation — correct, just not contiguous.
//
// An Arena is not safe for concurrent use.
type Arena struct {
	f64  []float64
	b    []byte
	c128 []complex128

	fOff, bOff, cOff int
}

// Reserve ensures backing capacity for at least the given element counts
// and resets the carve offsets, invalidating previously carved blocks.
// Reserving within the existing capacity reuses the backing arrays, so a
// steady-state caller re-reserving per batch allocates nothing.
func (a *Arena) Reserve(floats, bytes, complexes int) {
	if cap(a.f64) < floats {
		a.f64 = make([]float64, floats)
	}
	if cap(a.b) < bytes {
		a.b = make([]byte, bytes)
	}
	if cap(a.c128) < complexes {
		a.c128 = make([]complex128, complexes)
	}
	a.Reset()
}

// Reset makes the entire reserved capacity available for carving again.
// Previously carved blocks still point at valid memory but may alias
// blocks carved after the Reset.
func (a *Arena) Reset() { a.fOff, a.bOff, a.cOff = 0, 0, 0 }

// Floats carves an n-element float64 block (contents undefined).
func (a *Arena) Floats(n int) []float64 {
	if a.fOff+n > cap(a.f64) {
		return make([]float64, n)
	}
	blk := a.f64[a.fOff : a.fOff+n : a.fOff+n]
	a.fOff += n
	return blk
}

// Bytes carves an n-element byte block (contents undefined).
func (a *Arena) Bytes(n int) []byte {
	if a.bOff+n > cap(a.b) {
		return make([]byte, n)
	}
	blk := a.b[a.bOff : a.bOff+n : a.bOff+n]
	a.bOff += n
	return blk
}

// Complex128s carves an n-element complex128 block (contents undefined).
func (a *Arena) Complex128s(n int) []complex128 {
	if a.cOff+n > cap(a.c128) {
		return make([]complex128, n)
	}
	blk := a.c128[a.cOff : a.cOff+n : a.cOff+n]
	a.cOff += n
	return blk
}

// Signal carves an n-sample Signal block (contents undefined).
func (a *Arena) Signal(n int) Signal { return Signal(a.Complex128s(n)) }
