package cope

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/frame"
)

func mkPacket(src, dst uint16, seq uint32, n int, rng *rand.Rand) frame.Packet {
	p := make([]byte, n)
	rng.Read(p)
	return frame.NewPacket(src, dst, seq, p)
}

func TestEncodeDecodeBothDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := mkPacket(1, 2, 10, 64, rng) // Alice → Bob
	b := mkPacket(2, 1, 20, 64, rng) // Bob → Alice
	coded, err := Encode(9, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if coded.Header.Flags&CodedFlag == 0 {
		t.Error("coded flag missing")
	}
	// Alice XORs with her own payload to get Bob's.
	gotB, err := Decode(coded, a.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotB) != string(b.Payload) {
		t.Error("Alice failed to recover Bob's payload")
	}
	// Bob symmetric.
	gotA, err := Decode(coded, b.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotA) != string(a.Payload) {
		t.Error("Bob failed to recover Alice's payload")
	}
}

func TestEncodeLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := mkPacket(1, 2, 1, 64, rng)
	b := mkPacket(2, 1, 2, 32, rng)
	if _, err := Encode(9, 1, a, b); err == nil {
		t.Error("mismatched payload lengths accepted")
	}
}

func TestDecodeRejectsUncoded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	native := mkPacket(1, 2, 1, 16, rng)
	if _, err := Decode(native, native.Payload); !errors.Is(err, ErrNotCoded) {
		t.Errorf("err = %v, want ErrNotCoded", err)
	}
}

func TestDecodeLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := mkPacket(1, 2, 1, 16, rng)
	b := mkPacket(2, 1, 2, 16, rng)
	coded, _ := Encode(9, 1, a, b)
	if _, err := Decode(coded, a.Payload[:8]); err == nil {
		t.Error("short known payload accepted")
	}
}

func TestPoolPairing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPool()
	if _, _, ok := p.TakePair(1, 2, 2, 1); ok {
		t.Error("pair from empty pool")
	}
	p.Put(mkPacket(1, 2, 1, 8, rng))
	if _, _, ok := p.TakePair(1, 2, 2, 1); ok {
		t.Error("pair with only one flow queued")
	}
	p.Put(mkPacket(2, 1, 7, 8, rng))
	a, b, ok := p.TakePair(1, 2, 2, 1)
	if !ok {
		t.Fatal("coding opportunity missed")
	}
	if a.Header.Seq != 1 || b.Header.Seq != 7 {
		t.Errorf("wrong packets paired: %v, %v", a.Header, b.Header)
	}
	if p.Pending(1, 2) != 0 || p.Pending(2, 1) != 0 {
		t.Error("pool not drained")
	}
}

func TestPoolFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewPool()
	p.Put(mkPacket(1, 2, 1, 8, rng))
	p.Put(mkPacket(1, 2, 2, 8, rng))
	p.Put(mkPacket(2, 1, 9, 8, rng))
	p.Put(mkPacket(2, 1, 10, 8, rng))
	a, b, _ := p.TakePair(1, 2, 2, 1)
	if a.Header.Seq != 1 || b.Header.Seq != 9 {
		t.Error("pool is not FIFO")
	}
	a, b, _ = p.TakePair(1, 2, 2, 1)
	if a.Header.Seq != 2 || b.Header.Seq != 10 {
		t.Error("second pair wrong")
	}
}

func TestVerifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := mkPacket(1, 2, 1, 128, rng)
	b := mkPacket(2, 1, 2, 128, rng)
	if err := VerifyRoundTrip(9, a, b); err != nil {
		t.Error(err)
	}
}
