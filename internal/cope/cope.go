// Package cope implements the digital network coding baseline the paper
// compares against (§11.1): the COPE protocol of Katti et al. [17],
// scoped to the evaluated topologies. The router stores the packets of
// the two crossing flows, XORs their payloads, and broadcasts the coded
// packet once; each destination XORs again with the packet it knows
// (its own, or one it overheard) to recover the packet it wants.
//
// As in the paper, COPE here runs over an optimal MAC (no collisions or
// backoff) and uses sequential — never interfering — transmissions: its
// gain over routing comes purely from saving the fourth slot.
package cope

import (
	"errors"
	"fmt"

	"repro/internal/bits"
	"repro/internal/frame"
)

// CodedFlag marks a packet whose payload is the XOR of two native
// packets. Carried in the header flags.
const CodedFlag = 1 << 1

// Encode XORs two native packets into one coded broadcast packet. The
// payloads must have equal length (the canonical topologies exchange
// equal-sized packets; general COPE pads, which we reject explicitly to
// keep accounting honest). The coded header records the router as source;
// the destination field is unused (broadcast).
func Encode(router uint16, seq uint32, a, b frame.Packet) (frame.Packet, error) {
	if len(a.Payload) != len(b.Payload) {
		return frame.Packet{}, fmt.Errorf("cope: payload lengths differ (%d vs %d)", len(a.Payload), len(b.Payload))
	}
	xo := make([]byte, len(a.Payload))
	for i := range xo {
		xo[i] = a.Payload[i] ^ b.Payload[i]
	}
	pkt := frame.NewPacket(router, 0xFFFF, seq, xo)
	pkt.Header.Flags |= CodedFlag
	return pkt, nil
}

// ErrNotCoded is returned when decoding a packet without the coded flag.
var ErrNotCoded = errors.New("cope: packet is not coded")

// Decode recovers the unknown payload from a coded packet using the known
// native payload: XOR-ing the coded payload with the known one.
func Decode(coded frame.Packet, known []byte) ([]byte, error) {
	if coded.Header.Flags&CodedFlag == 0 {
		return nil, ErrNotCoded
	}
	if len(coded.Payload) != len(known) {
		return nil, fmt.Errorf("cope: known payload %d bytes, coded %d", len(known), len(coded.Payload))
	}
	out := make([]byte, len(known))
	for i := range out {
		out[i] = coded.Payload[i] ^ known[i]
	}
	return out, nil
}

// Pool is the router's store of native packets awaiting coding
// opportunities, keyed by flow (src, dst).
type Pool struct {
	byFlow map[[2]uint16][]frame.Packet
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{byFlow: make(map[[2]uint16][]frame.Packet)}
}

// Put queues a native packet.
func (p *Pool) Put(pkt frame.Packet) {
	k := [2]uint16{pkt.Header.Src, pkt.Header.Dst}
	p.byFlow[k] = append(p.byFlow[k], pkt)
}

// TakePair removes and returns the oldest packet of each of two flows, if
// both have one queued — a coding opportunity.
func (p *Pool) TakePair(srcA, dstA, srcB, dstB uint16) (frame.Packet, frame.Packet, bool) {
	ka := [2]uint16{srcA, dstA}
	kb := [2]uint16{srcB, dstB}
	qa, qb := p.byFlow[ka], p.byFlow[kb]
	if len(qa) == 0 || len(qb) == 0 {
		return frame.Packet{}, frame.Packet{}, false
	}
	a, b := qa[0], qb[0]
	p.byFlow[ka] = qa[1:]
	p.byFlow[kb] = qb[1:]
	return a, b, true
}

// Pending returns how many packets a flow has queued.
func (p *Pool) Pending(src, dst uint16) int {
	return len(p.byFlow[[2]uint16{src, dst}])
}

// VerifyRoundTrip is a convenience used by tests and examples: it checks
// that b's payload XORed into a coded packet and decoded with a's payload
// yields b again.
func VerifyRoundTrip(router uint16, a, b frame.Packet) error {
	coded, err := Encode(router, 1, a, b)
	if err != nil {
		return err
	}
	got, err := Decode(coded, a.Payload)
	if err != nil {
		return err
	}
	if !bits.Equal(got, b.Payload) {
		return errors.New("cope: round trip mismatch")
	}
	return nil
}
