package experiments

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"strings"

	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/mac"
	"repro/internal/msk"
	"repro/internal/sim"
)

// This file holds the ablation studies DESIGN.md commits to: they
// quantify the design choices the reproduction makes beyond the paper's
// letter — the matcher refinements, the amplitude estimator, the
// subtraction strawman §6 rejects, and the overlap/throughput trade-off.

// runTally is the ablations' Recorder: streaming aggregates only — BER
// sum/count, goodput, air time, losses — with none of the per-packet
// pools Metrics retains, so an ablation sweep's memory is O(1) however
// many runs it spans. It is also the minimal example of the Recorder
// contract: consume the typed observations, keep only what the analysis
// needs.
type runTally struct {
	deliveredBits float64
	timeSamples   float64
	berSum        float64
	berN          int
	lost          int
}

func (t *runTally) RecordDelivered(bits float64)           { t.deliveredBits += bits }
func (t *runTally) RecordLost(n int)                       { t.lost += n }
func (t *runTally) RecordANCDecode(ber float64)            { t.berSum += ber; t.berN++ }
func (t *runTally) RecordCollision(float64)                {}
func (t *runTally) RecordAirTime(samples float64)          { t.timeSamples += samples }
func (t *runTally) RecordLinkState(int, int, int, float64) {}

func (t *runTally) throughput() float64 {
	if t.timeSamples == 0 {
		return 0
	}
	return t.deliveredBits / t.timeSamples
}

func (t *runTally) meanBER() float64 {
	if t.berN == 0 {
		return 0
	}
	return t.berSum / float64(t.berN)
}

// AblationMatcher measures the Alice–Bob BER with each matcher refinement
// disabled in turn, against the full decoder. The refinements are this
// implementation's additions on top of the paper's per-sample matching:
// conditioning weights, the MSK step prior, and branch continuity.
func AblationMatcher(opts Options) string {
	opts = opts.withDefaults()
	variants := []struct {
		name  string
		tweak func(*core.Config)
	}{
		{"full decoder", nil},
		{"no conditioning weights", func(c *core.Config) { c.NoConditioningWeights = true }},
		{"no MSK prior", func(c *core.Config) { c.NoMSKPrior = true }},
		{"no branch continuity", func(c *core.Config) { c.NoBranchContinuity = true }},
		{"paper-literal matcher", func(c *core.Config) {
			c.NoConditioningWeights = true
			c.NoMSKPrior = true
			c.NoBranchContinuity = true
		}},
	}
	var b strings.Builder
	b.WriteString("== Ablation: interference matcher refinements (Alice–Bob BER) ==\n")
	fmt.Fprintf(&b, "# %-26s %-12s %s\n", "variant", "mean BER", "lost")
	scratch := sim.NewScratch()
	for _, v := range variants {
		cfg := opts.Sim
		cfg.DecoderTweak = v.tweak
		eng := sim.NewEngine(cfg)
		var tally runTally
		for run := 0; run < opts.Runs; run++ {
			if err := eng.RunRecording(sim.AliceBob(), sim.SchemeANC, opts.Seed+int64(run)*127, &tally, scratch); err != nil {
				panic(err)
			}
		}
		fmt.Fprintf(&b, "%-28s %-12.5f %d\n", v.name, tally.meanBER(), tally.lost)
	}
	return b.String()
}

// subtractDecode is the strawman §6 rejects: reconstruct the known
// signal's received version from a channel estimate and subtract it, then
// demodulate the residual with standard MSK. The estimate ĥ is the true
// complex gain at the packet start — the best any head-based estimator
// could do — but it cannot track the residual carrier drift across the
// packet, which is exactly the fragility the paper calls out.
func subtractDecode(m *msk.Modem, rx dsp.Signal, known dsp.Signal, h complex128) []byte {
	residual := make(dsp.Signal, len(rx))
	for i := range rx {
		if i < len(known) {
			residual[i] = rx[i] - h*known[i]
		} else {
			residual[i] = rx[i]
		}
	}
	return m.Demodulate(residual)
}

// pairDecode runs the paper's phase-pair algorithm on the same synthetic
// mixture, with ground-truth alignment and amplitudes supplied, so the
// comparison isolates the decoding rule itself.
func pairDecode(m *msk.Modem, rx dsp.Signal, knownDiffs []float64, a, bAmp float64) []byte {
	sps := m.SamplesPerSymbol()
	n := len(knownDiffs)
	diffs := make([]float64, n)
	prev := core.SolvePhases(rx[0], a, bAmp)
	for i := 0; i < n && i+1 < len(rx); i++ {
		cur := core.SolvePhases(rx[i+1], a, bAmp)
		bestErr := math.Inf(1)
		for x := 0; x < 2; x++ {
			for y := 0; y < 2; y++ {
				e := math.Abs(dsp.WrapPhase(cur[x].Theta - prev[y].Theta - knownDiffs[i]))
				if e < bestErr {
					bestErr = e
					diffs[i] = dsp.WrapPhase(cur[x].Phi - prev[y].Phi)
				}
			}
		}
		prev = cur
	}
	out := make([]byte, n/sps)
	for j := range out {
		var acc float64
		for k := 0; k < sps; k++ {
			acc += diffs[j*sps+k]
		}
		if acc >= 0 {
			out[j] = 1
		}
	}
	return out
}

// AblationSubtraction compares the phase-pair decoder against naive
// channel-estimate-and-subtract across residual carrier offsets. At zero
// offset subtraction is exact; with realistic oscillator drift it falls
// apart while the differential method barely notices — the §6 robustness
// argument, measured.
func AblationSubtraction(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	m := msk.New()
	const nbits = 1500
	var b strings.Builder
	b.WriteString("== Ablation: phase-pair decoding vs naive subtraction (§6) ==\n")
	fmt.Fprintf(&b, "# %-22s %-16s %s\n", "CFO (rad/sample)", "subtraction BER", "phase-pair BER")
	for _, cfo := range []float64{0, 0.0005, 0.002, 0.005, 0.02} {
		var subErr, pairErr float64
		const trials = 5
		for trial := 0; trial < trials; trial++ {
			knownBits := randBits(rng, nbits)
			wantedBits := randBits(rng, nbits)
			known := m.Modulate(knownBits)
			wanted := m.Modulate(wantedBits)
			// The known component drifts by a CFO the subtraction method
			// cannot see; the wanted one has its own offset. Both signals
			// fully overlap.
			phase := rng.Float64() * 2 * math.Pi
			drift := channel.Link{Gain: 1, Phase: phase, FreqOffset: cfo}
			other := channel.Link{Gain: 0.9, Phase: rng.Float64() * 2 * math.Pi, FreqOffset: -0.004}
			rx := dsp.NewNoiseSource(1e-3, seed+int64(trial)).
				AddTo(drift.Apply(known).Add(other.Apply(wanted)))

			// Oracle start-of-packet channel estimate — better than any
			// real head-based estimator could produce.
			h := cmplx.Exp(complex(0, phase))
			subErr += bits.BER(wantedBits, subtractDecode(m, rx, known, h))
			pairErr += bits.BER(wantedBits, pairDecode(m, rx, m.PhaseDiffs(knownBits), 1, 0.9))
		}
		fmt.Fprintf(&b, "%-24.4f %-16.5f %.5f\n", cfo, subErr/trials, pairErr/trials)
	}
	return b.String()
}

// AblationOverlap sweeps the mean packet overlap and reports the Alice–Bob
// throughput gain — the §11.4 explanation ("practical gains are lower
// because packets only overlap 80% on average"), measured.
func AblationOverlap(opts Options) string {
	opts = opts.withDefaults()
	base := opts.Sim.WithDefaults()
	L := base.FrameSamples()
	var b strings.Builder
	b.WriteString("== Ablation: throughput gain vs mean packet overlap ==\n")
	fmt.Fprintf(&b, "# %-12s %-14s %s\n", "overlap", "gain/routing", "mean BER")
	for _, target := range []float64{0.95, 0.9, 0.85, 0.8, 0.7, 0.6, 0.5} {
		cfg := opts.Sim
		// Mean delay = (1−overlap)·L, split between the enforced minimum
		// and the slotted random part. Very high overlap targets force
		// the minimum separation below the pilot+header safety margin;
		// the resulting decode losses are part of what this ablation
		// shows (the paper's protocol *enforces* incomplete overlap for
		// this reason, §7.2).
		meanDelay := (1 - target) * float64(L)
		minSep := base.Delay.MinSeparation
		if float64(minSep) > meanDelay*0.8 {
			minSep = int(meanDelay * 0.8)
		}
		slotPart := meanDelay - float64(minSep)
		if slotPart < 0 {
			slotPart = 0
		}
		slot := int(slotPart * 2 / 31)
		cfg.Delay = mac.DelayConfig{MinSeparation: minSep, Slots: 32, SlotSamples: slot}
		eng := sim.NewEngine(cfg)
		scratch := sim.NewScratch()
		var gain, ber float64
		for run := 0; run < opts.Runs; run++ {
			seed := opts.Seed + int64(run)*31
			var a, t runTally
			if err := eng.RunRecording(sim.AliceBob(), sim.SchemeANC, seed, &a, scratch); err != nil {
				panic(err)
			}
			if err := eng.RunRecording(sim.AliceBob(), sim.SchemeRouting, seed, &t, scratch); err != nil {
				panic(err)
			}
			gain += a.throughput() / t.throughput()
			ber += a.meanBER()
		}
		fmt.Fprintf(&b, "%-14.2f %-14.3f %.5f\n", target, gain/float64(opts.Runs), ber/float64(opts.Runs))
	}
	return b.String()
}

// AblationEstimator compares the paper's moment-based amplitude estimator
// (Eqs. 5/6) against the envelope-quantile estimator across relative
// carrier offsets, reporting mean relative amplitude error. It shows why
// the implementation keeps both: the moments need the inter-signal phase
// to sweep (CFO > 0), the envelope method does not.
func AblationEstimator(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	m := msk.New()
	var b strings.Builder
	b.WriteString("== Ablation: amplitude estimators vs relative carrier offset ==\n")
	fmt.Fprintf(&b, "# %-22s %-18s %s\n", "rel CFO (rad/sample)", "moments err", "envelope err")
	const trueA, trueB = 1.0, 0.6
	for _, cfo := range []float64{0, 0.001, 0.003, 0.01, 0.03} {
		var momErr, envErr float64
		const trials = 8
		for trial := 0; trial < trials; trial++ {
			sa := m.Modulate(randBits(rng, 2500))
			sb := msk.New(msk.WithAmplitude(trueB)).Modulate(randBits(rng, 2500))
			rot := channel.Link{Gain: 1, Phase: rng.Float64() * 2 * math.Pi, FreqOffset: cfo}
			mix := sa.Add(rot.Apply(sb))
			if est, err := core.EstimateAmplitudes(mix); err == nil {
				momErr += (math.Abs(est.A-trueA)/trueA + math.Abs(est.B-trueB)/trueB) / 2
			} else {
				momErr += 1
			}
			if est, err := core.EstimateAmplitudesEnvelope(mix); err == nil {
				envErr += (math.Abs(est.A-trueA)/trueA + math.Abs(est.B-trueB)/trueB) / 2
			} else {
				envErr += 1
			}
		}
		fmt.Fprintf(&b, "%-24.4f %-18.4f %.4f\n", cfo, momErr/trials, envErr/trials)
	}
	return b.String()
}

func randBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}
