package experiments

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

// The golden-regression suite renders each Fig* campaign at a small fixed
// run count and seed and compares the full series against checked-in
// golden files. The campaigns are deterministic, so any drift means a
// behavioral change in the decoder, the channel model or the accounting —
// exactly what must not happen silently during a refactor. Regenerate
// with:
//
//	go test ./internal/experiments -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden files")

// goldenOpts pins the campaign size the goldens were rendered at.
func goldenOpts() Options {
	return Options{Runs: 4, Sim: sim.Config{Packets: 5}, Seed: 3}
}

// goldenTol is the relative tolerance for numeric fields. The campaigns
// are bit-deterministic on a given toolchain; the tolerance only absorbs
// last-digit formatting and cross-architecture libm drift.
const goldenTol = 1e-6

// compareGolden checks got against the named golden file, comparing
// numeric tokens within tolerance and everything else exactly.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	want := string(wantBytes)
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(want, "\n")
	if len(gotLines) != len(wantLines) {
		t.Fatalf("%s: %d lines, golden has %d\ngot:\n%s", name, len(gotLines), len(wantLines), got)
	}
	for li := range wantLines {
		gotFields := strings.Fields(gotLines[li])
		wantFields := strings.Fields(wantLines[li])
		if len(gotFields) != len(wantFields) {
			t.Errorf("%s line %d: %q != golden %q", name, li+1, gotLines[li], wantLines[li])
			continue
		}
		for fi := range wantFields {
			if fieldsMatch(gotFields[fi], wantFields[fi]) {
				continue
			}
			t.Errorf("%s line %d field %d: %q != golden %q", name, li+1, fi+1, gotFields[fi], wantFields[fi])
		}
	}
}

// fieldsMatch compares one whitespace-delimited token: numerically within
// goldenTol when both parse as floats, byte-exact otherwise.
func fieldsMatch(got, want string) bool {
	if got == want {
		return true
	}
	g, errG := strconv.ParseFloat(got, 64)
	w, errW := strconv.ParseFloat(want, 64)
	if errG != nil || errW != nil {
		return false
	}
	if g == w {
		return true
	}
	return math.Abs(g-w) <= goldenTol*math.Max(math.Abs(g), math.Abs(w))
}

// gainSeries renders the full campaign output the figures plot, plus a
// delivery tail so packet-loss accounting is pinned too.
func gainSeries(res *GainResult) string {
	var b strings.Builder
	b.WriteString(res.FormatGain(0))
	b.WriteString(res.FormatBER(0))
	fmt.Fprintf(&b, "# overlap mean=%.6f n=%d\n", res.Overlap.Mean(), res.Overlap.Len())
	return b.String()
}

func TestGoldenFig9(t *testing.T) {
	compareGolden(t, "fig9.golden", gainSeries(Fig9(goldenOpts())))
}

func TestGoldenFig10(t *testing.T) {
	compareGolden(t, "fig10.golden", gainSeries(Fig10(goldenOpts())))
}

func TestGoldenFig12(t *testing.T) {
	compareGolden(t, "fig12.golden", gainSeries(Fig12(goldenOpts())))
}

func TestGoldenFig7(t *testing.T) {
	compareGolden(t, "fig7.golden", Fig7(0, 55, 5))
}

func TestGoldenFig13(t *testing.T) {
	compareGolden(t, "fig13.golden", Fig13(goldenOpts(), -3, 4, 1))
}

func TestGoldenSummary(t *testing.T) {
	compareGolden(t, "summary.golden", Summary(goldenOpts()))
}

// TestGoldenNewScenarios pins the engine-unlocked scenarios the same
// way, so they are as regression-protected as the paper's. The list
// includes the channel-dynamics scenarios: their fading and mobility
// traces are seeded from the run RNG, so the rendered series are as
// deterministic as the static ones.
func TestGoldenNewScenarios(t *testing.T) {
	for _, name := range []string{"pairs", "x-cross", "near-far", "fading", "chain-5", "dqpsk"} {
		res, err := ScenarioCampaign(goldenOpts(), name)
		if err != nil {
			t.Fatal(err)
		}
		compareGolden(t, name+".golden", gainSeries(res))
	}
}

// TestGoldenDQPSKDimension pins the modem axis: the paper scenarios that
// exercise every decode path — the triggered exchange (alice-bob), the
// overhearing X with cross traffic (x-cross) and the pipelined chain
// (chain-5) — rendered under the π/4-DQPSK modem. With the symbol-wise
// frame mirror both endpoints of every exchange decode (one forward,
// one off the conjugate time-reversed stream), so the gains sit in the
// same ≈1.5–1.8× band as the MSK series; any slip back toward the old
// one-sided ≈0.75 regime means the multi-bit backward path regressed.
func TestGoldenDQPSKDimension(t *testing.T) {
	for _, name := range []string{"alice-bob", "x-cross", "chain-5"} {
		opts := goldenOpts()
		opts.Sim.Modem = "dqpsk"
		res, err := ScenarioCampaign(opts, name)
		if err != nil {
			t.Fatal(err)
		}
		compareGolden(t, name+".dqpsk.golden", gainSeries(res))
	}
}
