package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

// runShards runs the campaign as k NDJSON workers and returns each
// worker's output stream.
func runShards(t *testing.T, opts StreamOptions, name string, k int) [][]byte {
	t.Helper()
	outs := make([][]byte, k)
	for i := 1; i <= k; i++ {
		var b bytes.Buffer
		if err := WriteCampaignNDJSON(&b, opts, name, i, k); err != nil {
			t.Fatalf("shard %d/%d: %v", i, k, err)
		}
		outs[i-1] = b.Bytes()
	}
	return outs
}

func mergeShards(t *testing.T, outs [][]byte, reverse bool) []byte {
	t.Helper()
	readers := make([]io.Reader, len(outs))
	for i, b := range outs {
		if reverse {
			readers[len(outs)-1-i] = bytes.NewReader(b)
		} else {
			readers[i] = bytes.NewReader(b)
		}
	}
	var got bytes.Buffer
	if err := MergeSummaries(&got, readers...); err != nil {
		t.Fatalf("merge (reverse=%v): %v", reverse, err)
	}
	return got.Bytes()
}

// TestShardMergeEquivalence is the headline guarantee of the sharded
// campaign surface, proven over the full scenario × scheme × modem
// matrix: splitting any campaign across 1, 2 or 7 workers and merging
// their NDJSON outputs — in either order — reproduces the unsharded
// WriteCampaignJSON document byte for byte. Each cell runs the
// scenario's complete scheme set, so the scheme axis rides inside every
// campaign.
func TestShardMergeEquivalence(t *testing.T) {
	for _, modem := range phy.Names() {
		for _, sc := range sim.Scenarios() {
			modem, sc := modem, sc
			t.Run(modem+"/"+sc.Name(), func(t *testing.T) {
				t.Parallel()
				opts := StreamOptions{Options: Options{
					Runs:    7,
					Sim:     sim.Config{Packets: 2, Modem: modem},
					Seed:    3,
					Schemes: sc.Schemes(),
				}}
				var want bytes.Buffer
				if err := WriteCampaignJSON(&want, opts, sc.Name()); err != nil {
					t.Fatalf("unsharded: %v", err)
				}
				for _, k := range []int{1, 2, 7} {
					k := k
					t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
						outs := runShards(t, opts, sc.Name(), k)
						if got := mergeShards(t, outs, false); !bytes.Equal(got, want.Bytes()) {
							t.Errorf("merged %d-shard document differs from unsharded:\n--- merged ---\n%s\n--- unsharded ---\n%s", k, got, want.Bytes())
						}
						if got := mergeShards(t, outs, true); !bytes.Equal(got, want.Bytes()) {
							t.Errorf("reverse-order merge of %d shards differs from unsharded", k)
						}
					})
				}
			})
		}
	}
}

// TestShardMergeEquivalenceTraced covers the heavyweight row shape: a
// traced campaign's per-link statistics ride in the rows, and the
// sharded document must still reassemble byte-identically.
func TestShardMergeEquivalenceTraced(t *testing.T) {
	opts := StreamOptions{Options: Options{Runs: 5, Sim: sim.Config{Packets: 2}, Seed: 3}, Trace: true}
	var want bytes.Buffer
	if err := WriteCampaignJSON(&want, opts, "alice-bob"); err != nil {
		t.Fatal(err)
	}
	outs := runShards(t, opts, "alice-bob", 2)
	if got := mergeShards(t, outs, false); !bytes.Equal(got, want.Bytes()) {
		t.Errorf("traced 2-shard merge differs from unsharded:\n%s\nvs\n%s", got, want.Bytes())
	}
}

// TestWriteCampaignNDJSONShape pins the worker wire format: one
// CampaignRow object per line with the global run index, then exactly
// one trailing summary record carrying the shard coordinates and
// serialized sketches.
func TestWriteCampaignNDJSONShape(t *testing.T) {
	opts := StreamOptions{Options: Options{Runs: 5, Sim: sim.Config{Packets: 2}, Seed: 3}}
	var b bytes.Buffer
	if err := WriteCampaignNDJSON(&b, opts, "alice-bob", 2, 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	// SplitSeeds(5, 2) gives shard 2 the range [2, 5): 3 rows + summary.
	if len(lines) != 4 {
		t.Fatalf("worker stream has %d lines, want 4:\n%s", len(lines), b.String())
	}
	for i, line := range lines[:3] {
		var row CampaignRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row line %d: %v", i, err)
		}
		if row.Run != 2+i {
			t.Errorf("row line %d has run %d, want global index %d", i, row.Run, 2+i)
		}
		if len(row.Schemes) == 0 {
			t.Errorf("row line %d has no scheme results", i)
		}
	}
	var rec shardSummary
	if err := json.Unmarshal([]byte(lines[3]), &rec); err != nil {
		t.Fatalf("summary record: %v", err)
	}
	if rec.Record != "summary" {
		t.Errorf("trailing record type %q, want summary", rec.Record)
	}
	if rec.Shard != (shardInfo{Index: 2, Shards: 2, RowLo: 2, RowHi: 5}) {
		t.Errorf("shard coordinates %+v", rec.Shard)
	}
	if rec.Header.Runs != 5 || rec.Header.Scenario != "alice-bob" {
		t.Errorf("summary header %+v describes the wrong campaign", rec.Header)
	}
	if rec.Sketches.BER == "" || rec.Sketches.GainOverRouting == "" {
		t.Error("summary record is missing pool sketches")
	}
	if _, err := decodeSketchSet(rec.Sketches); err != nil {
		t.Errorf("pool sketches do not round-trip: %v", err)
	}
}

func TestWriteCampaignNDJSONValidation(t *testing.T) {
	opts := StreamOptions{Options: Options{Runs: 3, Sim: sim.Config{Packets: 1}, Seed: 3}}
	var b bytes.Buffer
	for _, tc := range []struct {
		name          string
		shard, shards int
	}{
		{"zero shard", 0, 2}, {"shard beyond count", 3, 2}, {"zero shards", 1, 0}, {"negative", -1, -1},
	} {
		if err := WriteCampaignNDJSON(&b, opts, "alice-bob", tc.shard, tc.shards); err == nil {
			t.Errorf("%s (%d/%d) accepted", tc.name, tc.shard, tc.shards)
		}
	}
	if err := WriteCampaignNDJSON(&b, opts, "no-such", 1, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestMergeSummariesRejectsBadInputs drives every validation path of the
// merge: the coordinator must refuse anything that is not a complete,
// consistent partition of one campaign rather than emit a wrong document.
func TestMergeSummariesRejectsBadInputs(t *testing.T) {
	opts := StreamOptions{Options: Options{Runs: 4, Sim: sim.Config{Packets: 1}, Seed: 3}}
	outs := runShards(t, opts, "alice-bob", 2)
	var w bytes.Buffer
	expectErr := func(name, wantSub string, readers ...io.Reader) {
		t.Helper()
		w.Reset()
		err := MergeSummaries(&w, readers...)
		if err == nil {
			t.Errorf("%s: merge succeeded", name)
		} else if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}

	expectErr("no inputs", "no shard streams")
	expectErr("missing shard", "declares 2 shards", bytes.NewReader(outs[0]))
	expectErr("duplicate shard", "missing or duplicate",
		bytes.NewReader(outs[0]), bytes.NewReader(outs[0]))

	other := StreamOptions{Options: Options{Runs: 4, Sim: sim.Config{Packets: 1}, Seed: 4}}
	foreign := runShards(t, other, "alice-bob", 2)
	expectErr("header mismatch", "different campaign",
		bytes.NewReader(outs[0]), bytes.NewReader(foreign[1]))

	trimmed := bytes.TrimSuffix(outs[1], []byte("\n"))
	noSummary := trimmed[:bytes.LastIndexByte(trimmed, '\n')+1]
	expectErr("stream without summary", "no summary record",
		bytes.NewReader(outs[0]), bytes.NewReader(noSummary))

	withTrailer := append(append([]byte(nil), outs[1]...), outs[1][:bytes.IndexByte(outs[1], '\n')+1]...)
	expectErr("rows after summary", "continues after",
		bytes.NewReader(outs[0]), bytes.NewReader(withTrailer))

	expectErr("garbage line", "", bytes.NewReader(outs[0]),
		io.MultiReader(strings.NewReader("not json\n"), bytes.NewReader(outs[1])))

	// A lone single-shard stream of the same campaign still merges fine —
	// the validations above must not reject the trivial partition.
	w.Reset()
	solo := runShards(t, opts, "alice-bob", 1)
	if err := MergeSummaries(&w, bytes.NewReader(solo[0])); err != nil {
		t.Errorf("single-shard merge failed: %v", err)
	}
}
