package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/channel"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file is the machine-readable campaign surface: any registered
// scenario's ANC-versus-baselines campaign streamed as a single JSON
// document or a CSV table, one row per seed, written as rows arrive from
// sim.CampaignStream — the campaign itself holds O(workers) rows however
// many runs it spans. The JSON schema is documented in the README
// ("Results & output formats") and pinned by cmd/ancsim's golden test.

// DefaultOutageThresholdDB is the outage threshold the trace statistics
// use: a slot is in outage when its power gain falls more than this many
// dB below the link's observed mean — equivalently, when the
// instantaneous SNR drops that far below the configured budget.
const DefaultOutageThresholdDB = 10.0

// StreamOptions configures a machine-readable campaign.
type StreamOptions struct {
	Options
	// Trace runs every scheme under a sim.TraceRecorder and attaches
	// per-link outage statistics (JSON only).
	Trace bool
	// OutageThresholdDB overrides DefaultOutageThresholdDB when positive.
	OutageThresholdDB float64
}

func (o StreamOptions) outageDB() float64 {
	if o.OutageThresholdDB > 0 {
		return o.OutageThresholdDB
	}
	return DefaultOutageThresholdDB
}

// campaignHeader is the metadata block opening the JSON document.
type campaignHeader struct {
	Scenario          string   `json:"scenario"`
	Modem             string   `json:"modem"`
	Schemes           []string `json:"schemes"`
	Runs              int      `json:"runs"`
	PacketsPerRun     int      `json:"packets_per_run"`
	Seed              int64    `json:"seed"`
	SNRdB             float64  `json:"snr_db"`
	Fading            string   `json:"fading"`
	OutageThresholdDB float64  `json:"outage_threshold_db,omitempty"`
}

// SchemeResult is one scheme's metrics of one run.
type SchemeResult struct {
	Scheme         string    `json:"scheme"`
	Throughput     float64   `json:"throughput"`
	DeliveredBits  float64   `json:"delivered_bits"`
	AirTimeSamples float64   `json:"air_time_samples"`
	Delivered      int       `json:"delivered"`
	Lost           int       `json:"lost"`
	BERs           []float64 `json:"bers,omitempty"`
	Overlaps       []float64 `json:"overlaps,omitempty"`
}

// LinkStats is one directed edge's per-slot channel statistics of one
// run, computed from its TraceRecorder gain trace.
type LinkStats struct {
	From           int     `json:"from"`
	To             int     `json:"to"`
	Slots          int     `json:"slots"`
	MeanPowerGain  float64 `json:"mean_power_gain"`
	MinPowerGain   float64 `json:"min_power_gain"`
	OutageProb     float64 `json:"outage_prob"`
	FadeMarginP5DB float64 `json:"fade_margin_p5_db"`
}

// CampaignRow is one seed's campaign outcome rendered for machine
// consumption: the paired-scheme metrics, the throughput gains the
// pairing exists for, and (under Trace) the per-link channel statistics.
// The gain fields are omitted when the scheme filter removed the schemes
// a pairing needs.
type CampaignRow struct {
	Run             int            `json:"run"`
	Seed            int64          `json:"seed"`
	Modem           string         `json:"modem"`
	GainOverRouting *float64       `json:"gain_over_routing,omitempty"`
	GainOverCOPE    *float64       `json:"gain_over_cope,omitempty"`
	Schemes         []SchemeResult `json:"schemes"`
	Links           []LinkStats    `json:"links,omitempty"`
}

// distSummary summarizes one streamed distribution.
type distSummary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

func summarize(s *stats.Sample) distSummary {
	return distSummary{
		N: s.Len(), Mean: s.Mean(), Median: s.Median(),
		P90: s.Quantile(0.9), Min: s.Min(), Max: s.Max(),
	}
}

// campaignSummary closes the JSON document with the campaign-wide
// distributions (the data behind the Fig. 9/10/12-style CDFs). Fields
// are omitted when the scheme filter removed the schemes they need.
type campaignSummary struct {
	GainOverRouting *distSummary `json:"gain_over_routing,omitempty"`
	GainOverCOPE    *distSummary `json:"gain_over_cope,omitempty"`
	BER             *distSummary `json:"ber,omitempty"`
	Overlap         *distSummary `json:"overlap,omitempty"`
}

// effectiveFadingKind reports the channel model the campaign actually
// runs, not merely the configured one: scenarios may install their own
// models at build time (the fading scenario defaults to Rician when the
// config is static; custom builders attach per-edge models), so the
// header probes a throwaway build and classifies its edges. Mixed edge
// models report "mixed".
func effectiveFadingKind(sc sim.Scenario, cfg sim.Config) string {
	g := sc.Build(cfg.Topology, rand.New(rand.NewSource(1)))
	kinds := make(map[string]bool)
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			m, ok := g.Model(i, j)
			if !ok {
				continue
			}
			switch m := m.(type) {
			case channel.Static:
				kinds["static"] = true
			case channel.BlockFading:
				if m.K == 0 {
					kinds["rayleigh"] = true
				} else {
					kinds["rician"] = true
				}
			case channel.Mobility:
				kinds["mobility"] = true
			default:
				kinds["custom"] = true
			}
		}
	}
	if len(kinds) == 1 {
		for k := range kinds {
			return k
		}
	}
	if len(kinds) > 1 {
		return "mixed"
	}
	return cfg.Topology.Fading.Kind.String()
}

// campaignContext is the resolved machinery one streamed campaign shares
// between its formats.
type campaignContext struct {
	sc     sim.Scenario
	plan   campaignPlan
	seeds  []int64
	eng    *sim.Engine
	header campaignHeader
}

func newCampaignContext(opts StreamOptions, name string) (*campaignContext, error) {
	opts.Options = opts.Options.withDefaults()
	sc, ok := sim.LookupScenario(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scenario %q", name)
	}
	plan, err := planSchemes(sc, opts.Schemes)
	if err != nil {
		return nil, err
	}
	simCfg := opts.Sim.WithDefaults()
	names := make([]string, len(plan.schemes))
	for i, s := range plan.schemes {
		names[i] = string(s)
	}
	hdr := campaignHeader{
		Scenario:      sc.Name(),
		Modem:         sim.EffectiveModemName(sc, opts.Sim),
		Schemes:       names,
		Runs:          opts.Runs,
		PacketsPerRun: simCfg.Packets,
		Seed:          opts.Seed,
		SNRdB:         *simCfg.SNRdB,
		Fading:        effectiveFadingKind(sc, simCfg),
	}
	if opts.Trace {
		hdr.OutageThresholdDB = opts.outageDB()
	}
	return &campaignContext{
		sc:     sc,
		plan:   plan,
		seeds:  campaignSeeds(opts.Options),
		eng:    sim.NewEngine(opts.Sim),
		header: hdr,
	}, nil
}

// renderRow converts one streamed sim.Row into its machine-readable form.
func (c *campaignContext) renderRow(opts StreamOptions, row sim.Row) CampaignRow {
	out := CampaignRow{
		Run:     row.Index,
		Seed:    row.Seed,
		Modem:   c.header.Modem,
		Schemes: make([]SchemeResult, len(row.Metrics)),
	}
	if c.plan.anc >= 0 {
		a := row.Metrics[c.plan.anc]
		if c.plan.routing >= 0 {
			g := stats.GainRatio(a.Throughput(), row.Metrics[c.plan.routing].Throughput())
			out.GainOverRouting = &g
		}
		if c.plan.cope >= 0 {
			g := stats.GainRatio(a.Throughput(), row.Metrics[c.plan.cope].Throughput())
			out.GainOverCOPE = &g
		}
	}
	for j, m := range row.Metrics {
		out.Schemes[j] = SchemeResult{
			Scheme:         string(c.plan.schemes[j]),
			Throughput:     m.Throughput(),
			DeliveredBits:  m.DeliveredBits,
			AirTimeSamples: m.TimeSamples,
			Delivered:      m.Delivered,
			Lost:           m.Lost,
			BERs:           m.BERs,
			Overlaps:       m.Overlaps,
		}
	}
	if row.Traces != nil {
		// Every scheme of a seed shares the channel realization, so the
		// first scheme's trace stands for the row.
		thresh := math.Pow(10, -opts.outageDB()/10)
		for _, tr := range row.Traces[0].Traces() {
			s := tr.GainSample()
			mean := s.Mean()
			out.Links = append(out.Links, LinkStats{
				From:           tr.From,
				To:             tr.To,
				Slots:          s.Len(),
				MeanPowerGain:  mean,
				MinPowerGain:   s.Min(),
				OutageProb:     s.OutageBelow(mean * thresh),
				FadeMarginP5DB: s.FadeMarginDB(0.05),
			})
		}
	}
	return out
}

// streamOpts returns the CampaignStream options the context needs.
func streamOpts(trace bool) []sim.StreamOption {
	if trace {
		return []sim.StreamOption{sim.WithLinkTraces()}
	}
	return nil
}

// WriteCampaignJSON streams a registered scenario's campaign as one JSON
// document: a metadata header, a "rows" array with one entry per seed
// (written as rows arrive — the campaign is never materialized), and a
// closing "summary" with the campaign-wide distributions.
func WriteCampaignJSON(w io.Writer, opts StreamOptions, name string) error {
	c, err := newCampaignContext(opts, name)
	if err != nil {
		return err
	}
	hdr, err := json.Marshal(c.header)
	if err != nil {
		return err
	}
	// Reopen the marshaled header object so the rows stream into the
	// same document. The header is a struct, so the trailing byte is
	// always the closing brace.
	if _, err := w.Write(hdr[:len(hdr)-1]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, `,"rows":[`); err != nil {
		return err
	}

	gainTrad := stats.NewSample(nil)
	gainCope := stats.NewSample(nil)
	berPool := stats.NewSample(nil)
	overlapPool := stats.NewSample(nil)
	first := true
	sink := sim.SinkFunc(func(row sim.Row) error {
		r := c.renderRow(opts, row)
		if r.GainOverRouting != nil {
			gainTrad.Add(*r.GainOverRouting)
		}
		if r.GainOverCOPE != nil {
			gainCope.Add(*r.GainOverCOPE)
		}
		if c.plan.anc >= 0 {
			for _, b := range row.Metrics[c.plan.anc].BERs {
				berPool.Add(b)
			}
			for _, ov := range row.Metrics[c.plan.anc].Overlaps {
				overlapPool.Add(ov)
			}
		}
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	})
	if err := c.eng.CampaignStream(c.sc, c.plan.schemes, c.seeds, sink, streamOpts(opts.Trace)...); err != nil {
		return err
	}

	var summary campaignSummary
	if c.plan.anc >= 0 {
		b, o := summarize(berPool), summarize(overlapPool)
		summary.BER, summary.Overlap = &b, &o
		if c.plan.routing >= 0 {
			s := summarize(gainTrad)
			summary.GainOverRouting = &s
		}
		if c.plan.cope >= 0 {
			s := summarize(gainCope)
			summary.GainOverCOPE = &s
		}
	}
	sb, err := json.Marshal(summary)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n],\"summary\":"); err != nil {
		return err
	}
	if _, err := w.Write(sb); err != nil {
		return err
	}
	_, err = io.WriteString(w, "}\n")
	return err
}

// WriteCampaignCSV streams a registered scenario's campaign as a CSV
// table, one row per seed: the per-scheme aggregates plus the paired
// gains. Pools and traces do not fit a flat table; use JSON for those.
func WriteCampaignCSV(w io.Writer, opts StreamOptions, name string) error {
	c, err := newCampaignContext(opts, name)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{"run", "seed", "gain_over_routing", "gain_over_cope", "modem"}
	for _, s := range c.plan.schemes {
		header = append(header,
			string(s)+"_throughput", string(s)+"_delivered", string(s)+"_lost")
	}
	header = append(header, "anc_mean_ber", "anc_mean_overlap")
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	optF := func(v *float64) string {
		if v == nil {
			return ""
		}
		return f(*v)
	}
	sink := sim.SinkFunc(func(row sim.Row) error {
		r := c.renderRow(opts, row)
		rec := []string{
			strconv.Itoa(r.Run),
			strconv.FormatInt(r.Seed, 10),
			optF(r.GainOverRouting),
			optF(r.GainOverCOPE),
			r.Modem,
		}
		for _, sr := range r.Schemes {
			rec = append(rec, f(sr.Throughput), strconv.Itoa(sr.Delivered), strconv.Itoa(sr.Lost))
		}
		if c.plan.anc >= 0 {
			a := row.Metrics[c.plan.anc]
			rec = append(rec, f(a.MeanBER()), f(a.MeanOverlap()))
		} else {
			rec = append(rec, "", "")
		}
		return cw.Write(rec)
	})
	if err := c.eng.CampaignStream(c.sc, c.plan.schemes, c.seeds, sink); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
