package experiments

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/channel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stats/sketch"
)

// This file is the machine-readable campaign surface: any registered
// scenario's ANC-versus-baselines campaign streamed as a single JSON
// document or a CSV table, one row per seed, written as rows arrive from
// sim.CampaignStream — the campaign itself holds O(workers) rows however
// many runs it spans. The JSON schema is documented in the README
// ("Results & output formats") and pinned by cmd/ancsim's golden test.

// DefaultOutageThresholdDB is the outage threshold the trace statistics
// use: a slot is in outage when its power gain falls more than this many
// dB below the link's observed mean — equivalently, when the
// instantaneous SNR drops that far below the configured budget.
const DefaultOutageThresholdDB = 10.0

// StreamOptions configures a machine-readable campaign.
type StreamOptions struct {
	Options
	// Trace runs every scheme under a sim.TraceRecorder and attaches
	// per-link outage statistics (JSON only).
	Trace bool
	// OutageThresholdDB overrides DefaultOutageThresholdDB when positive.
	OutageThresholdDB float64
}

func (o StreamOptions) outageDB() float64 {
	if o.OutageThresholdDB > 0 {
		return o.OutageThresholdDB
	}
	return DefaultOutageThresholdDB
}

// campaignHeader is the metadata block opening the JSON document.
type campaignHeader struct {
	Scenario          string   `json:"scenario"`
	Modem             string   `json:"modem"`
	Schemes           []string `json:"schemes"`
	Runs              int      `json:"runs"`
	PacketsPerRun     int      `json:"packets_per_run"`
	Seed              int64    `json:"seed"`
	SNRdB             float64  `json:"snr_db"`
	Fading            string   `json:"fading"`
	OutageThresholdDB float64  `json:"outage_threshold_db,omitempty"`
}

// SchemeResult is one scheme's metrics of one run.
type SchemeResult struct {
	Scheme         string    `json:"scheme"`
	Throughput     float64   `json:"throughput"`
	DeliveredBits  float64   `json:"delivered_bits"`
	AirTimeSamples float64   `json:"air_time_samples"`
	Delivered      int       `json:"delivered"`
	Lost           int       `json:"lost"`
	BERs           []float64 `json:"bers,omitempty"`
	Overlaps       []float64 `json:"overlaps,omitempty"`
}

// LinkStats is one directed edge's per-slot channel statistics of one
// run, computed from its TraceRecorder gain trace.
type LinkStats struct {
	From           int     `json:"from"`
	To             int     `json:"to"`
	Slots          int     `json:"slots"`
	MeanPowerGain  float64 `json:"mean_power_gain"`
	MinPowerGain   float64 `json:"min_power_gain"`
	OutageProb     float64 `json:"outage_prob"`
	FadeMarginP5DB float64 `json:"fade_margin_p5_db"`
}

// CampaignRow is one seed's campaign outcome rendered for machine
// consumption: the paired-scheme metrics, the throughput gains the
// pairing exists for, and (under Trace) the per-link channel statistics.
// The gain fields are omitted when the scheme filter removed the schemes
// a pairing needs.
type CampaignRow struct {
	Run             int            `json:"run"`
	Seed            int64          `json:"seed"`
	Modem           string         `json:"modem"`
	GainOverRouting *float64       `json:"gain_over_routing,omitempty"`
	GainOverCOPE    *float64       `json:"gain_over_cope,omitempty"`
	Schemes         []SchemeResult `json:"schemes"`
	Links           []LinkStats    `json:"links,omitempty"`
}

// distSummary summarizes one streamed distribution.
type distSummary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

func summarize(s *sketch.Sketch) distSummary {
	return distSummary{
		N: s.Len(), Mean: s.Mean(), Median: s.Median(),
		P90: s.Quantile(0.9), Min: s.Min(), Max: s.Max(),
	}
}

// campaignSummary closes the JSON document with the campaign-wide
// distributions (the data behind the Fig. 9/10/12-style CDFs). Fields
// are omitted when the scheme filter removed the schemes they need.
type campaignSummary struct {
	GainOverRouting *distSummary `json:"gain_over_routing,omitempty"`
	GainOverCOPE    *distSummary `json:"gain_over_cope,omitempty"`
	BER             *distSummary `json:"ber,omitempty"`
	Overlap         *distSummary `json:"overlap,omitempty"`
}

// campaignPools holds the campaign-wide distribution pools behind the
// summary block. They are mergeable quantile sketches, not observation
// buffers, for two reasons: the pools stay O(sketch) however many runs
// the campaign spans, and sketch merges are bit-exact — a sharded
// campaign's merged pools are byte-identical to the unsharded pools
// (see internal/stats/sketch and MergeSummaries). A pool is nil when
// the scheme filter removed the schemes it needs, mirroring the
// summary's omitted fields.
type campaignPools struct {
	gainRouting *sketch.Sketch
	gainCOPE    *sketch.Sketch
	ber         *sketch.Sketch
	overlap     *sketch.Sketch
}

func newCampaignPools(plan campaignPlan) *campaignPools {
	p := &campaignPools{}
	if plan.anc >= 0 {
		p.ber = sketch.NewDefault()
		p.overlap = sketch.NewDefault()
		if plan.routing >= 0 {
			p.gainRouting = sketch.NewDefault()
		}
		if plan.cope >= 0 {
			p.gainCOPE = sketch.NewDefault()
		}
	}
	return p
}

// observe feeds one rendered row into the pools.
func (p *campaignPools) observe(plan campaignPlan, row sim.Row, r CampaignRow) {
	if p.gainRouting != nil && r.GainOverRouting != nil {
		p.gainRouting.Add(*r.GainOverRouting)
	}
	if p.gainCOPE != nil && r.GainOverCOPE != nil {
		p.gainCOPE.Add(*r.GainOverCOPE)
	}
	if plan.anc >= 0 {
		for _, b := range row.Metrics[plan.anc].BERs {
			p.ber.Add(b)
		}
		for _, ov := range row.Metrics[plan.anc].Overlaps {
			p.overlap.Add(ov)
		}
	}
}

// summary renders the pools as the document's closing summary block.
func (p *campaignPools) summary() campaignSummary {
	var out campaignSummary
	set := func(dst **distSummary, s *sketch.Sketch) {
		if s != nil {
			d := summarize(s)
			*dst = &d
		}
	}
	set(&out.GainOverRouting, p.gainRouting)
	set(&out.GainOverCOPE, p.gainCOPE)
	set(&out.BER, p.ber)
	set(&out.Overlap, p.overlap)
	return out
}

// effectiveFadingKind reports the channel model the campaign actually
// runs, not merely the configured one: scenarios may install their own
// models at build time (the fading scenario defaults to Rician when the
// config is static; custom builders attach per-edge models), so the
// header probes a throwaway build and classifies its edges. Mixed edge
// models report "mixed".
func effectiveFadingKind(sc sim.Scenario, cfg sim.Config) string {
	g := sc.Build(cfg.Topology, rand.New(rand.NewSource(1)))
	kinds := make(map[string]bool)
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			m, ok := g.Model(i, j)
			if !ok {
				continue
			}
			switch m := m.(type) {
			case channel.Static:
				kinds["static"] = true
			case channel.BlockFading:
				if m.K == 0 {
					kinds["rayleigh"] = true
				} else {
					kinds["rician"] = true
				}
			case channel.Mobility:
				kinds["mobility"] = true
			default:
				kinds["custom"] = true
			}
		}
	}
	if len(kinds) == 1 {
		for k := range kinds {
			return k
		}
	}
	if len(kinds) > 1 {
		return "mixed"
	}
	return cfg.Topology.Fading.Kind.String()
}

// campaignContext is the resolved machinery one streamed campaign shares
// between its formats.
type campaignContext struct {
	sc     sim.Scenario
	plan   campaignPlan
	seeds  []int64
	eng    *sim.Engine
	header campaignHeader
}

func newCampaignContext(opts StreamOptions, name string) (*campaignContext, error) {
	opts.Options = opts.Options.withDefaults()
	sc, ok := sim.LookupScenario(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scenario %q", name)
	}
	plan, err := planSchemes(sc, opts.Schemes)
	if err != nil {
		return nil, err
	}
	simCfg := opts.Sim.WithDefaults()
	names := make([]string, len(plan.schemes))
	for i, s := range plan.schemes {
		names[i] = string(s)
	}
	hdr := campaignHeader{
		Scenario:      sc.Name(),
		Modem:         sim.EffectiveModemName(sc, opts.Sim),
		Schemes:       names,
		Runs:          opts.Runs,
		PacketsPerRun: simCfg.Packets,
		Seed:          opts.Seed,
		SNRdB:         *simCfg.SNRdB,
		Fading:        effectiveFadingKind(sc, simCfg),
	}
	if opts.Trace {
		hdr.OutageThresholdDB = opts.outageDB()
	}
	return &campaignContext{
		sc:     sc,
		plan:   plan,
		seeds:  campaignSeeds(opts.Options),
		eng:    sim.NewEngine(opts.Sim),
		header: hdr,
	}, nil
}

// renderRow converts one streamed sim.Row into its machine-readable form.
func (c *campaignContext) renderRow(opts StreamOptions, row sim.Row) CampaignRow {
	out := CampaignRow{
		Run:     row.Index,
		Seed:    row.Seed,
		Modem:   c.header.Modem,
		Schemes: make([]SchemeResult, len(row.Metrics)),
	}
	if c.plan.anc >= 0 {
		a := row.Metrics[c.plan.anc]
		if c.plan.routing >= 0 {
			g := stats.GainRatio(a.Throughput(), row.Metrics[c.plan.routing].Throughput())
			out.GainOverRouting = &g
		}
		if c.plan.cope >= 0 {
			g := stats.GainRatio(a.Throughput(), row.Metrics[c.plan.cope].Throughput())
			out.GainOverCOPE = &g
		}
	}
	for j, m := range row.Metrics {
		out.Schemes[j] = SchemeResult{
			Scheme:         string(c.plan.schemes[j]),
			Throughput:     m.Throughput(),
			DeliveredBits:  m.DeliveredBits,
			AirTimeSamples: m.TimeSamples,
			Delivered:      m.Delivered,
			Lost:           m.Lost,
			BERs:           m.BERs,
			Overlaps:       m.Overlaps,
		}
	}
	if row.Traces != nil {
		// Every scheme of a seed shares the channel realization, so the
		// first scheme's trace stands for the row.
		thresh := math.Pow(10, -opts.outageDB()/10)
		for _, tr := range row.Traces[0].Traces() {
			s := tr.GainSample()
			mean := s.Mean()
			out.Links = append(out.Links, LinkStats{
				From:           tr.From,
				To:             tr.To,
				Slots:          s.Len(),
				MeanPowerGain:  mean,
				MinPowerGain:   s.Min(),
				OutageProb:     s.OutageBelow(mean * thresh),
				FadeMarginP5DB: s.FadeMarginDB(0.05),
			})
		}
	}
	return out
}

// streamOpts returns the CampaignStream options the context needs. A
// nil ctx streams without cancellation.
func streamOpts(ctx context.Context, trace bool, workers int) []sim.StreamOption {
	var out []sim.StreamOption
	if ctx != nil {
		out = append(out, sim.WithContext(ctx))
	}
	if trace {
		out = append(out, sim.WithLinkTraces())
	}
	if workers > 0 {
		out = append(out, sim.WithWorkers(workers))
	}
	return out
}

// docWriter emits the campaign JSON document layout. It is the single
// source of the document's byte layout: WriteCampaignJSON streams rows
// into it directly, and MergeSummaries replays shard rows through the
// identical writer — which is what makes a merged sharded campaign
// byte-for-byte equal to the unsharded document.
type docWriter struct {
	w     io.Writer
	first bool
}

// open writes the metadata header and opens the rows array.
func (d *docWriter) open(hdr campaignHeader) error {
	b, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	// Reopen the marshaled header object so the rows stream into the
	// same document. The header is a struct, so the trailing byte is
	// always the closing brace.
	if _, err := d.w.Write(b[:len(b)-1]); err != nil {
		return err
	}
	_, err = io.WriteString(d.w, `,"rows":[`)
	d.first = true
	return err
}

// row appends one already-marshaled row object.
func (d *docWriter) row(rowJSON []byte) error {
	if !d.first {
		if _, err := io.WriteString(d.w, ","); err != nil {
			return err
		}
	}
	d.first = false
	if _, err := io.WriteString(d.w, "\n"); err != nil {
		return err
	}
	_, err := d.w.Write(rowJSON)
	return err
}

// close ends the rows array and writes the summary block.
func (d *docWriter) close(summary campaignSummary) error {
	sb, err := json.Marshal(summary)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(d.w, "\n],\"summary\":"); err != nil {
		return err
	}
	if _, err := d.w.Write(sb); err != nil {
		return err
	}
	_, err = io.WriteString(d.w, "}\n")
	return err
}

// WriteCampaignJSON streams a registered scenario's campaign as one JSON
// document: a metadata header, a "rows" array with one entry per seed
// (written as rows arrive — the campaign is never materialized), and a
// closing "summary" with the campaign-wide distributions, pooled in
// mergeable sketches (summary statistics carry the sketch's α = 0.5%
// relative accuracy; counts and extremes are exact).
func WriteCampaignJSON(w io.Writer, opts StreamOptions, name string) error {
	c, err := newCampaignContext(opts, name)
	if err != nil {
		return err
	}
	doc := &docWriter{w: w}
	if err := doc.open(c.header); err != nil {
		return err
	}
	pools := newCampaignPools(c.plan)
	sink := sim.SinkFunc(func(row sim.Row) error {
		r := c.renderRow(opts, row)
		pools.observe(c.plan, row, r)
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		return doc.row(b)
	})
	if err := c.eng.CampaignStream(c.sc, c.plan.schemes, c.seeds, sink, streamOpts(nil, opts.Trace, opts.Workers)...); err != nil {
		return err
	}
	return doc.close(pools.summary())
}

// WriteCampaignCSV streams a registered scenario's campaign as a CSV
// table, one row per seed: the per-scheme aggregates plus the paired
// gains. Pools and traces do not fit a flat table; use JSON for those.
func WriteCampaignCSV(w io.Writer, opts StreamOptions, name string) error {
	c, err := newCampaignContext(opts, name)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{"run", "seed", "gain_over_routing", "gain_over_cope", "modem"}
	for _, s := range c.plan.schemes {
		header = append(header,
			string(s)+"_throughput", string(s)+"_delivered", string(s)+"_lost")
	}
	header = append(header, "anc_mean_ber", "anc_mean_overlap")
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	optF := func(v *float64) string {
		if v == nil {
			return ""
		}
		return f(*v)
	}
	sink := sim.SinkFunc(func(row sim.Row) error {
		r := c.renderRow(opts, row)
		rec := []string{
			strconv.Itoa(r.Run),
			strconv.FormatInt(r.Seed, 10),
			optF(r.GainOverRouting),
			optF(r.GainOverCOPE),
			r.Modem,
		}
		for _, sr := range r.Schemes {
			rec = append(rec, f(sr.Throughput), strconv.Itoa(sr.Delivered), strconv.Itoa(sr.Lost))
		}
		if c.plan.anc >= 0 {
			a := row.Metrics[c.plan.anc]
			rec = append(rec, f(a.MeanBER()), f(a.MeanOverlap()))
		} else {
			rec = append(rec, "", "")
		}
		return cw.Write(rec)
	})
	if err := c.eng.CampaignStream(c.sc, c.plan.schemes, c.seeds, sink, streamOpts(nil, false, opts.Workers)...); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
