package experiments

import (
	"context"
	"encoding/json"

	"repro/internal/sim"
)

// Streamer is one resolved campaign exposed line by line: the seam the
// ancserve daemon (internal/serve) shares with the CLI writers, so a
// campaign served over HTTP/WebSocket is byte-for-byte the stream
// `ancsim -format ndjson` writes for the same request. Each line is a
// marshaled CampaignRow, then exactly one trailing summary record (the
// shard wire format of WriteCampaignNDJSON); the Streamer never frames
// lines with newlines — transports add their own framing.
//
// A Streamer is single-use: Stream runs the campaign once. Construction
// resolves and validates the whole request (scenario, schemes, modem,
// shard coordinates), so an invalid campaign fails before any run
// starts — the admission-control property a job queue needs.
type Streamer struct {
	opts   StreamOptions
	c      *campaignContext
	shard  int
	shards int
	r      sim.SeedRange
}

// NewStreamer resolves shard `shard` of `shards` (1-based; 1/1 is the
// whole campaign) of the named scenario's campaign. Every validation
// error a run could produce up front is produced here instead.
func NewStreamer(opts StreamOptions, name string, shard, shards int) (*Streamer, error) {
	if shards < 1 {
		return nil, errShardCount(shards)
	}
	if shard < 1 || shard > shards {
		return nil, errShardIndex(shard, shards)
	}
	c, err := newCampaignContext(opts, name)
	if err != nil {
		return nil, err
	}
	return &Streamer{
		opts:   opts,
		c:      c,
		shard:  shard,
		shards: shards,
		r:      sim.SplitSeeds(len(c.seeds), shards)[shard-1],
	}, nil
}

// Rows returns the number of row lines this stream will emit (the
// trailing summary record is one more line).
func (s *Streamer) Rows() int { return s.r.Hi - s.r.Lo }

// Runs returns the whole campaign's run count, across all shards.
func (s *Streamer) Runs() int { return s.c.header.Runs }

// Schemes returns the resolved scheme rows of the campaign, in row
// order — the order SchemeResult entries appear within each row.
func (s *Streamer) Schemes() []sim.Scheme {
	return append([]sim.Scheme(nil), s.c.plan.schemes...)
}

// Modem returns the effective PHY name the campaign runs under.
func (s *Streamer) Modem() string { return s.c.header.Modem }

// Stream executes the campaign, invoking emit once per NDJSON line —
// every CampaignRow, in global run order, then the one summary record.
// Each line is freshly allocated and owned by the receiver; emit may
// retain it. An emit error stops the campaign and is returned. A nil
// ctx streams without cancellation; a canceled ctx stops the campaign
// cleanly with ctx.Err() (see sim.WithContext).
func (s *Streamer) Stream(ctx context.Context, emit func(line []byte) error) error {
	pools := newCampaignPools(s.c.plan)
	sink := sim.SinkFunc(func(row sim.Row) error {
		out := s.c.renderRow(s.opts, row)
		// renderRow numbers from the slice start; lift to the global index.
		out.Run = s.r.Lo + row.Index
		pools.observe(s.c.plan, row, out)
		b, err := json.Marshal(out)
		if err != nil {
			return err
		}
		return emit(b)
	})
	err := s.c.eng.CampaignStream(s.c.sc, s.c.plan.schemes, s.c.seeds[s.r.Lo:s.r.Hi], sink,
		streamOpts(ctx, s.opts.Trace, s.opts.Workers)...)
	if err != nil {
		return err
	}
	rec := shardSummary{
		Record:   "summary",
		Header:   s.c.header,
		Shard:    shardInfo{Index: s.shard, Shards: s.shards, RowLo: s.r.Lo, RowHi: s.r.Hi},
		Sketches: encodeSketchSet(pools),
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return emit(b)
}
