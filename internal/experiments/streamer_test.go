package experiments

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// TestStreamerMatchesNDJSONWriter pins the seam the campaign server
// rides on: a Streamer's emitted lines, newline-framed, are byte-for-
// byte the stream WriteCampaignNDJSON writes for the same request.
func TestStreamerMatchesNDJSONWriter(t *testing.T) {
	opts := StreamOptions{Options: Options{Runs: 3, Seed: 1}}
	opts.Sim.Packets = 2

	var direct bytes.Buffer
	if err := WriteCampaignNDJSON(&direct, opts, "alice-bob", 1, 1); err != nil {
		t.Fatal(err)
	}

	s, err := NewStreamer(opts, "alice-bob", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 3 || s.Runs() != 3 {
		t.Fatalf("Rows()=%d Runs()=%d, want 3/3", s.Rows(), s.Runs())
	}
	var streamed bytes.Buffer
	lines := 0
	if err := s.Stream(context.Background(), func(line []byte) error {
		lines++
		streamed.Write(line)
		return streamed.WriteByte('\n')
	}); err != nil {
		t.Fatal(err)
	}
	if lines != 4 { // 3 rows + 1 summary record
		t.Fatalf("emitted %d lines, want 4", lines)
	}
	if !bytes.Equal(direct.Bytes(), streamed.Bytes()) {
		t.Errorf("streamer bytes diverge from WriteCampaignNDJSON:\ndirect:   %s\nstreamed: %s",
			direct.Bytes(), streamed.Bytes())
	}
}

// TestStreamerCancel cancels the context from the emit callback: the
// campaign must stop with context.Canceled and emit no further lines.
func TestStreamerCancel(t *testing.T) {
	opts := StreamOptions{Options: Options{Runs: 64, Seed: 1}}
	opts.Sim.Packets = 1
	s, err := NewStreamer(opts, "alice-bob", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lines := 0
	err = s.Stream(ctx, func(line []byte) error {
		lines++
		if lines == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream error = %v, want context.Canceled", err)
	}
	if lines < 2 || lines >= 64 {
		t.Errorf("emitted %d lines; want ≥ 2 (cancel point) and < 64 (full campaign)", lines)
	}
}

// TestStreamerValidatesUpFront pins the admission-control property: an
// invalid request fails at construction, before any run starts.
func TestStreamerValidatesUpFront(t *testing.T) {
	opts := StreamOptions{Options: Options{Runs: 2, Seed: 1}}
	if _, err := NewStreamer(opts, "no-such-scenario", 1, 1); err == nil {
		t.Error("NewStreamer accepted an unknown scenario")
	}
	if _, err := NewStreamer(opts, "alice-bob", 0, 1); err == nil {
		t.Error("NewStreamer accepted shard index 0")
	}
	if _, err := NewStreamer(opts, "alice-bob", 3, 2); err == nil {
		t.Error("NewStreamer accepted shard 3/2")
	}
	if _, err := NewStreamer(opts, "alice-bob", 1, 0); err == nil {
		t.Error("NewStreamer accepted shard count 0")
	}
}
