package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// smallOpts keeps campaign tests quick.
func smallOpts() Options {
	return Options{Runs: 4, Sim: sim.Config{Packets: 5}, Seed: 3}
}

func TestFig9Shape(t *testing.T) {
	res := Fig9(smallOpts())
	if res.GainOverTrad.Len() != 4 || res.GainOverCOPE.Len() != 4 {
		t.Fatalf("gain samples %d/%d, want 4/4", res.GainOverTrad.Len(), res.GainOverCOPE.Len())
	}
	if g := res.GainOverTrad.Mean(); g < 1.3 || g > 1.9 {
		t.Errorf("mean gain over routing = %.3f", g)
	}
	if g := res.GainOverCOPE.Mean(); g < 1.0 || g > 1.5 {
		t.Errorf("mean gain over COPE = %.3f", g)
	}
	if res.BER.Len() == 0 {
		t.Error("no BER samples collected")
	}
	if ovl := res.Overlap.Mean(); ovl < 0.7 || ovl > 0.9 {
		t.Errorf("mean overlap = %.3f", ovl)
	}
}

func TestFig12NoCOPE(t *testing.T) {
	res := Fig12(smallOpts())
	if res.GainOverCOPE != nil {
		t.Error("chain campaign has a COPE column; COPE does not apply (§2b)")
	}
	if g := res.GainOverTrad.Mean(); g < 1.1 || g > 1.55 {
		t.Errorf("chain mean gain = %.3f", g)
	}
}

func TestFormatters(t *testing.T) {
	res := Fig9(smallOpts())
	gain := res.FormatGain(10)
	if !strings.Contains(gain, "gain over traditional") || !strings.Contains(gain, "gain over COPE") {
		t.Errorf("gain text missing series:\n%s", gain)
	}
	ber := res.FormatBER(10)
	if !strings.Contains(ber, "ANC packet BER") {
		t.Errorf("BER text missing series:\n%s", ber)
	}
}

func TestFig7Text(t *testing.T) {
	out := Fig7(0, 55, 5)
	if !strings.Contains(out, "crossover") {
		t.Errorf("Fig 7 output missing crossover line:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got < 14 {
		t.Errorf("Fig 7 output too short (%d lines)", got)
	}
}

func TestFig13Text(t *testing.T) {
	out := Fig13(Options{Runs: 1, Sim: sim.Config{Packets: 3}, Seed: 5}, -3, 4, 1)
	if strings.Count(out, "\n") < 10 {
		t.Errorf("Fig 13 output too short:\n%s", out)
	}
	if !strings.Contains(out, "SIR") {
		t.Error("Fig 13 header missing")
	}
}

func TestSummaryText(t *testing.T) {
	out := Summary(smallOpts())
	for _, want := range []string{"alice-bob", "x", "chain", "n/a", "paper:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestDeterministicCampaign(t *testing.T) {
	a := Fig9(smallOpts())
	b := Fig9(smallOpts())
	if a.GainOverTrad.Mean() != b.GainOverTrad.Mean() {
		t.Error("same options produced different campaign results")
	}
}
