// Package experiments regenerates every table and figure of the paper's
// evaluation (§11) plus the capacity analysis figure (§8). Each Fig*
// function runs the corresponding simulation campaign — many independent
// runs, each pairing ANC against its baselines on identical channel
// realizations — and renders the same series the paper plots.
//
// The experiment index lives in DESIGN.md; measured-versus-paper numbers
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/capacity"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options configures an experiment campaign.
type Options struct {
	// Runs is the number of independent runs (the paper repeats each
	// experiment 40 times).
	Runs int
	// Sim parameterizes each run.
	Sim sim.Config
	// Seed derives all per-run seeds.
	Seed int64
}

// DefaultOptions mirrors the paper's campaign sizes scaled to simulation:
// 40 runs; per-run packet counts come from sim.DefaultConfig.
func DefaultOptions() Options {
	return Options{Runs: 40, Sim: sim.DefaultConfig(), Seed: 1}
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 40
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// forEachRun executes fn for every run index in parallel (runs are
// independent and seeded deterministically, so the result set is
// reproducible regardless of scheduling).
func forEachRun(runs int, fn func(run int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > runs {
		workers = runs
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range next {
				fn(run)
			}
		}()
	}
	for run := 0; run < runs; run++ {
		next <- run
	}
	close(next)
	wg.Wait()
}

// GainResult holds one topology's throughput-gain campaign: per-run gains
// of ANC over each baseline plus the per-packet BER pool.
type GainResult struct {
	Topology     string
	GainOverTrad *stats.Sample
	GainOverCOPE *stats.Sample // nil when COPE does not apply (chain)
	BER          *stats.Sample
	Overlap      *stats.Sample
}

// runCampaign pairs ANC runs against baselines on identical seeds.
func runCampaign(opts Options, topo string,
	anc func(sim.Config, int64) sim.Metrics,
	trad func(sim.Config, int64) sim.Metrics,
	cope func(sim.Config, int64) sim.Metrics) *GainResult {

	opts = opts.withDefaults()
	type runOut struct {
		gTrad, gCope float64
		bers         []float64
		overlaps     []float64
	}
	outs := make([]runOut, opts.Runs)
	forEachRun(opts.Runs, func(run int) {
		seed := opts.Seed + int64(run)*7919
		a := anc(opts.Sim, seed)
		t := trad(opts.Sim, seed)
		o := runOut{
			gTrad:    stats.GainRatio(a.Throughput(), t.Throughput()),
			bers:     a.BERs,
			overlaps: a.Overlaps,
		}
		if cope != nil {
			c := cope(opts.Sim, seed)
			o.gCope = stats.GainRatio(a.Throughput(), c.Throughput())
		}
		outs[run] = o
	})

	res := &GainResult{
		Topology:     topo,
		GainOverTrad: stats.NewSample(nil),
		BER:          stats.NewSample(nil),
		Overlap:      stats.NewSample(nil),
	}
	if cope != nil {
		res.GainOverCOPE = stats.NewSample(nil)
	}
	for _, o := range outs {
		res.GainOverTrad.Add(o.gTrad)
		if res.GainOverCOPE != nil {
			res.GainOverCOPE.Add(o.gCope)
		}
		for _, b := range o.bers {
			res.BER.Add(b)
		}
		for _, ov := range o.overlaps {
			res.Overlap.Add(ov)
		}
	}
	return res
}

// Fig9 reproduces the Alice–Bob campaign: Fig. 9(a) (CDF of throughput
// gain over traditional routing and over COPE) and Fig. 9(b) (CDF of BER).
func Fig9(opts Options) *GainResult {
	return runCampaign(opts, "alice-bob",
		sim.RunAliceBobANC, sim.RunAliceBobTraditional, sim.RunAliceBobCOPE)
}

// Fig10 reproduces the "X" topology campaign (Fig. 10a, 10b).
func Fig10(opts Options) *GainResult {
	return runCampaign(opts, "x",
		sim.RunXANC, sim.RunXTraditional, sim.RunXCOPE)
}

// Fig12 reproduces the chain campaign (Fig. 12a, 12b). COPE does not
// apply to unidirectional flows.
func Fig12(opts Options) *GainResult {
	return runCampaign(opts, "chain",
		sim.RunChainANC, sim.RunChainTraditional, nil)
}

// FormatGain renders the Fig. 9a/10a/12a CDF series.
func (g *GainResult) FormatGain(maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: CDF of throughput gain ==\n", g.Topology)
	b.WriteString(g.GainOverTrad.FormatCDF("gain over traditional", maxRows))
	if g.GainOverCOPE != nil {
		b.WriteString(g.GainOverCOPE.FormatCDF("gain over COPE", maxRows))
	}
	return b.String()
}

// FormatBER renders the Fig. 9b/10b/12b CDF series.
func (g *GainResult) FormatBER(maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: CDF of bit error rate ==\n", g.Topology)
	b.WriteString(g.BER.FormatCDF("ANC packet BER", maxRows))
	return b.String()
}

// Fig7 renders the capacity bounds of Fig. 7 over an SNR sweep.
func Fig7(fromDB, toDB, stepDB float64) string {
	var b strings.Builder
	b.WriteString("== Fig 7: capacity bounds, half-duplex 2-way relay ==\n")
	fmt.Fprintf(&b, "# %-8s %-14s %-14s %s\n", "SNR(dB)", "routing-upper", "ANC-lower", "ratio")
	for _, p := range capacity.Sweep(fromDB, toDB, stepDB) {
		fmt.Fprintf(&b, "%-10.1f %-14.4f %-14.4f %.4f\n", p.SNRdB, p.Traditional, p.ANC, p.Gain)
	}
	if x := capacity.CrossoverDB(0, toDB); x == x { // not NaN
		fmt.Fprintf(&b, "# crossover (ANC overtakes routing): %.2f dB (paper: ~8 dB)\n", x)
	}
	return b.String()
}

// Fig13 runs the SIR sweep of Fig. 13 and renders its series.
func Fig13(opts Options, fromDB, toDB, stepDB float64) string {
	opts = opts.withDefaults()
	pts := sim.SIRSweep(opts.Sim, opts.Seed, fromDB, toDB, stepDB)
	var b strings.Builder
	b.WriteString("== Fig 13: BER vs signal-to-interference ratio at Alice ==\n")
	fmt.Fprintf(&b, "# %-10s %-10s %-9s %s\n", "SIR(dB)", "mean BER", "decoded", "lost")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12.1f %-10.5f %-9d %d\n", p.SIRdB, p.MeanBER, p.Decoded, p.Lost)
	}
	return b.String()
}

// Summary reproduces the §11.3 headline table across all topologies.
func Summary(opts Options) string {
	ab := Fig9(opts)
	x := Fig10(opts)
	chain := Fig12(opts)
	var b strings.Builder
	b.WriteString("== Summary (paper §11.3) ==\n")
	fmt.Fprintf(&b, "# %-10s %-16s %-13s %-11s %s\n", "topology", "gain vs routing", "gain vs COPE", "mean BER", "mean overlap")
	row := func(g *GainResult) {
		copeStr := "n/a"
		if g.GainOverCOPE != nil {
			copeStr = fmt.Sprintf("%.3f", g.GainOverCOPE.Mean())
		}
		fmt.Fprintf(&b, "%-12s %-16.3f %-13s %-11.4f %.3f\n",
			g.Topology, g.GainOverTrad.Mean(), copeStr, g.BER.Mean(), g.Overlap.Mean())
	}
	row(ab)
	row(x)
	row(chain)
	b.WriteString("# paper:    alice-bob 1.70 / 1.30, x 1.65 / 1.28, chain 1.36 / n-a; BER 2-4%; overlap 0.80\n")
	return b.String()
}
