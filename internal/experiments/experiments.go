// Package experiments regenerates every table and figure of the paper's
// evaluation (§11) plus the capacity analysis figure (§8). Each Fig*
// function runs the corresponding simulation campaign — many independent
// runs, each pairing ANC against its baselines on identical channel
// realizations — and renders the same series the paper plots.
//
// The experiment index lives in DESIGN.md; measured-versus-paper numbers
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/capacity"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options configures an experiment campaign.
type Options struct {
	// Runs is the number of independent runs (the paper repeats each
	// experiment 40 times).
	Runs int
	// Sim parameterizes each run (including Sim.Modem, the PHY axis).
	Sim sim.Config
	// Seed derives all per-run seeds.
	Seed int64
	// Schemes, when non-empty, restricts the campaign to a subset of the
	// scenario's schemes (ancsim -scheme). Every named scheme must be
	// supported by the scenario. Empty keeps the default gain framing:
	// ANC and routing required, COPE when the scenario supports it.
	Schemes []sim.Scheme
	// Workers is the campaign worker-goroutine count (ancsim -workers);
	// ≤ 0 means GOMAXPROCS. Results are bit-identical at any count.
	Workers int
}

// DefaultOptions mirrors the paper's campaign sizes scaled to simulation:
// 40 runs; per-run packet counts come from sim.DefaultConfig.
func DefaultOptions() Options {
	return Options{Runs: 40, Sim: sim.DefaultConfig(), Seed: 1}
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 40
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// GainResult holds one scenario's throughput-gain campaign: per-run gains
// of ANC over each baseline plus the per-packet BER pool. Under a scheme
// filter (Options.Schemes) a pairing or pool is nil when the schemes it
// needs were filtered out; Throughput is always populated, one
// distribution per ran scheme.
type GainResult struct {
	Topology string
	// Modem is the effective PHY the campaign ran under.
	Modem string
	// Schemes lists the schemes the campaign ran, in row order.
	Schemes []sim.Scheme
	// Throughput holds one per-run throughput distribution per scheme,
	// parallel to Schemes.
	Throughput   []*stats.Sample
	GainOverTrad *stats.Sample // nil when ANC or routing was filtered out
	GainOverCOPE *stats.Sample // nil when COPE does not apply (chain) or was filtered out
	BER          *stats.Sample // nil when ANC was filtered out
	Overlap      *stats.Sample // nil when ANC was filtered out
}

// campaignPlan is a resolved scheme set: the schemes to run plus the
// row indices the gain pairings and pools read from (-1 = not running).
type campaignPlan struct {
	schemes []sim.Scheme
	anc     int
	routing int
	cope    int
}

func (p campaignPlan) index(s sim.Scheme) int {
	for i, have := range p.schemes {
		if have == s {
			return i
		}
	}
	return -1
}

// planSchemes resolves the scheme set of a campaign. With no filter, ANC
// and routing are required (the gain-over-routing framing) and COPE
// rides along when the scenario supports it. A filter restricts the
// campaign to exactly the named schemes; naming one the scenario does
// not support fails with the supported set enumerated, so the fix is in
// the error message.
func planSchemes(sc sim.Scenario, filter []sim.Scheme) (campaignPlan, error) {
	var schemes []sim.Scheme
	if len(filter) == 0 {
		schemes = []sim.Scheme{sim.SchemeANC, sim.SchemeRouting}
		for _, s := range schemes {
			if !sim.HasScheme(sc, s) {
				return campaignPlan{}, fmt.Errorf("experiments: scenario %q does not support scheme %q, required for gain campaigns", sc.Name(), s)
			}
		}
		if sim.HasScheme(sc, sim.SchemeCOPE) {
			schemes = append(schemes, sim.SchemeCOPE)
		}
	} else {
		seen := make(map[sim.Scheme]bool, len(filter))
		for _, s := range filter {
			if seen[s] {
				continue
			}
			seen[s] = true
			if !sim.HasScheme(sc, s) {
				supported := make([]string, 0, 3)
				for _, have := range sc.Schemes() {
					supported = append(supported, string(have))
				}
				return campaignPlan{}, fmt.Errorf("experiments: scenario %q does not support scheme %q (supported: %s)",
					sc.Name(), s, strings.Join(supported, ", "))
			}
			schemes = append(schemes, s)
		}
	}
	p := campaignPlan{schemes: schemes}
	p.anc = p.index(sim.SchemeANC)
	p.routing = p.index(sim.SchemeRouting)
	p.cope = p.index(sim.SchemeCOPE)
	return p, nil
}

// CampaignSchemes resolves the scheme rows a campaign of the named
// scenario runs under the given filter — the exact planSchemes rules
// every campaign writer applies (empty filter: ANC and routing
// required, COPE when supported; a filter restricts to exactly the
// named schemes). Exported so request canonicalization (the ancserve
// content-addressed cache key) hashes the schemes the campaign will
// actually run, not the unresolved request field.
func CampaignSchemes(name string, filter []sim.Scheme) ([]sim.Scheme, error) {
	sc, ok := sim.LookupScenario(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scenario %q", name)
	}
	plan, err := planSchemes(sc, filter)
	if err != nil {
		return nil, err
	}
	return append([]sim.Scheme(nil), plan.schemes...), nil
}

// campaignSeeds derives the per-run seeds of a campaign.
func campaignSeeds(opts Options) []int64 {
	seeds := make([]int64, opts.Runs)
	for run := range seeds {
		seeds[run] = opts.Seed + int64(run)*7919
	}
	return seeds
}

// runCampaign pairs ANC runs against the scenario's baselines on
// identical seeds (identical channel realizations) through the scenario
// engine's streaming worker pool: rows feed the gain/BER/overlap pools
// as they arrive, so the campaign holds O(workers) rows however many
// runs it spans. The gain-over-routing framing requires the scenario to
// support at least ANC and routing.
func runCampaign(opts Options, sc sim.Scenario) (*GainResult, error) {
	opts = opts.withDefaults()
	plan, err := planSchemes(sc, opts.Schemes)
	if err != nil {
		return nil, err
	}
	res := &GainResult{
		Topology:   sc.Name(),
		Modem:      sim.EffectiveModemName(sc, opts.Sim),
		Schemes:    plan.schemes,
		Throughput: make([]*stats.Sample, len(plan.schemes)),
	}
	for i := range res.Throughput {
		res.Throughput[i] = stats.NewSample(nil)
	}
	if plan.anc >= 0 {
		res.BER = stats.NewSample(nil)
		res.Overlap = stats.NewSample(nil)
		if plan.routing >= 0 {
			res.GainOverTrad = stats.NewSample(nil)
		}
		if plan.cope >= 0 {
			res.GainOverCOPE = stats.NewSample(nil)
		}
	}
	sink := sim.SinkFunc(func(row sim.Row) error {
		for j, m := range row.Metrics {
			res.Throughput[j].Add(m.Throughput())
		}
		if plan.anc < 0 {
			return nil
		}
		a := row.Metrics[plan.anc]
		if res.GainOverTrad != nil {
			res.GainOverTrad.Add(stats.GainRatio(a.Throughput(), row.Metrics[plan.routing].Throughput()))
		}
		if res.GainOverCOPE != nil {
			res.GainOverCOPE.Add(stats.GainRatio(a.Throughput(), row.Metrics[plan.cope].Throughput()))
		}
		for _, b := range a.BERs {
			res.BER.Add(b)
		}
		for _, ov := range a.Overlaps {
			res.Overlap.Add(ov)
		}
		return nil
	})
	if err := sim.NewEngine(opts.Sim).CampaignStream(sc, plan.schemes, campaignSeeds(opts), sink, streamOpts(nil, false, opts.Workers)...); err != nil {
		return nil, err
	}
	return res, nil
}

// mustCampaign backs the fixed Fig* campaigns, whose paper scenarios
// statically support ANC and routing.
func mustCampaign(opts Options, sc sim.Scenario) *GainResult {
	res, err := runCampaign(opts, sc)
	if err != nil {
		panic(err)
	}
	return res
}

// ScenarioCampaign runs the ANC-versus-baselines campaign for any
// registered scenario (ancsim -scenario=<name>).
func ScenarioCampaign(opts Options, name string) (*GainResult, error) {
	sc, ok := sim.LookupScenario(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scenario %q", name)
	}
	return runCampaign(opts, sc)
}

// Fig9 reproduces the Alice–Bob campaign: Fig. 9(a) (CDF of throughput
// gain over traditional routing and over COPE) and Fig. 9(b) (CDF of BER).
func Fig9(opts Options) *GainResult {
	return mustCampaign(opts, sim.AliceBob())
}

// Fig10 reproduces the "X" topology campaign (Fig. 10a, 10b).
func Fig10(opts Options) *GainResult {
	return mustCampaign(opts, sim.XTopo())
}

// Fig12 reproduces the chain campaign (Fig. 12a, 12b). COPE does not
// apply to unidirectional flows.
func Fig12(opts Options) *GainResult {
	return mustCampaign(opts, sim.Chain())
}

// FormatGain renders the Fig. 9a/10a/12a CDF series. When the scheme
// filter removed the routing baseline it falls back to a per-scheme
// throughput summary, still rendering whichever gain pairings were
// computed (ANC vs COPE survives an anc,cope filter).
func (g *GainResult) FormatGain(maxRows int) string {
	var b strings.Builder
	if g.GainOverTrad == nil {
		fmt.Fprintf(&b, "== %s: per-scheme throughput (no routing baseline in scheme set) ==\n", g.Topology)
		for i, s := range g.Schemes {
			fmt.Fprintf(&b, "%-8s mean throughput %.6f  n=%d\n", s, g.Throughput[i].Mean(), g.Throughput[i].Len())
		}
		if g.GainOverCOPE != nil {
			b.WriteString(g.GainOverCOPE.FormatCDF("gain over COPE", maxRows))
		}
		return b.String()
	}
	fmt.Fprintf(&b, "== %s: CDF of throughput gain ==\n", g.Topology)
	b.WriteString(g.GainOverTrad.FormatCDF("gain over traditional", maxRows))
	if g.GainOverCOPE != nil {
		b.WriteString(g.GainOverCOPE.FormatCDF("gain over COPE", maxRows))
	}
	return b.String()
}

// FormatBER renders the Fig. 9b/10b/12b CDF series. Empty when the
// scheme filter removed ANC — the BER pool is an ANC observation.
func (g *GainResult) FormatBER(maxRows int) string {
	if g.BER == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: CDF of bit error rate ==\n", g.Topology)
	b.WriteString(g.BER.FormatCDF("ANC packet BER", maxRows))
	return b.String()
}

// Fig7 renders the capacity bounds of Fig. 7 over an SNR sweep.
func Fig7(fromDB, toDB, stepDB float64) string {
	var b strings.Builder
	b.WriteString("== Fig 7: capacity bounds, half-duplex 2-way relay ==\n")
	fmt.Fprintf(&b, "# %-8s %-14s %-14s %s\n", "SNR(dB)", "routing-upper", "ANC-lower", "ratio")
	for _, p := range capacity.Sweep(fromDB, toDB, stepDB) {
		fmt.Fprintf(&b, "%-10.1f %-14.4f %-14.4f %.4f\n", p.SNRdB, p.Traditional, p.ANC, p.Gain)
	}
	if x := capacity.CrossoverDB(0, toDB); x == x { // not NaN
		fmt.Fprintf(&b, "# crossover (ANC overtakes routing): %.2f dB (paper: ~8 dB)\n", x)
	}
	return b.String()
}

// Fig13 runs the SIR sweep of Fig. 13 and renders its series.
func Fig13(opts Options, fromDB, toDB, stepDB float64) string {
	opts = opts.withDefaults()
	pts := sim.SIRSweep(opts.Sim, opts.Seed, fromDB, toDB, stepDB)
	var b strings.Builder
	b.WriteString("== Fig 13: BER vs signal-to-interference ratio at Alice ==\n")
	fmt.Fprintf(&b, "# %-10s %-10s %-9s %s\n", "SIR(dB)", "mean BER", "decoded", "lost")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12.1f %-10.5f %-9d %d\n", p.SIRdB, p.MeanBER, p.Decoded, p.Lost)
	}
	return b.String()
}

// Summary reproduces the §11.3 headline table across all topologies.
func Summary(opts Options) string {
	ab := Fig9(opts)
	x := Fig10(opts)
	chain := Fig12(opts)
	var b strings.Builder
	b.WriteString("== Summary (paper §11.3) ==\n")
	fmt.Fprintf(&b, "# %-10s %-16s %-13s %-11s %s\n", "topology", "gain vs routing", "gain vs COPE", "mean BER", "mean overlap")
	row := func(g *GainResult) {
		copeStr := "n/a"
		if g.GainOverCOPE != nil {
			copeStr = fmt.Sprintf("%.3f", g.GainOverCOPE.Mean())
		}
		fmt.Fprintf(&b, "%-12s %-16.3f %-13s %-11.4f %.3f\n",
			g.Topology, g.GainOverTrad.Mean(), copeStr, g.BER.Mean(), g.Overlap.Mean())
	}
	row(ab)
	row(x)
	row(chain)
	b.WriteString("# paper:    alice-bob 1.70 / 1.30, x 1.65 / 1.28, chain 1.36 / n-a; BER 2-4%; overlap 0.80\n")
	return b.String()
}
