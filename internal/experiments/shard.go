package experiments

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/stats/sketch"
)

// This file is the sharded-campaign surface: a campaign's seed range is
// partitioned across workers (sim.SplitSeeds), each worker streams its
// rows as NDJSON plus a trailing summary record carrying its distribution
// pools as serialized sketches, and MergeSummaries folds the worker
// outputs back into the one JSON document WriteCampaignJSON would have
// produced unsharded — byte for byte, whatever the shard count or merge
// order. The equivalence is proven end to end by TestShardMergeEquivalence.

// sketchSet carries a worker's distribution pools on the wire: each
// field is the base64 (standard) encoding of the pool sketch's canonical
// binary form, omitted when the scheme filter removed the pool.
type sketchSet struct {
	GainOverRouting string `json:"gain_over_routing,omitempty"`
	GainOverCOPE    string `json:"gain_over_cope,omitempty"`
	BER             string `json:"ber,omitempty"`
	Overlap         string `json:"overlap,omitempty"`
}

func encodeSketchSet(p *campaignPools) sketchSet {
	enc := func(s *sketch.Sketch) string {
		if s == nil {
			return ""
		}
		return base64.StdEncoding.EncodeToString(s.Encode())
	}
	return sketchSet{
		GainOverRouting: enc(p.gainRouting),
		GainOverCOPE:    enc(p.gainCOPE),
		BER:             enc(p.ber),
		Overlap:         enc(p.overlap),
	}
}

func decodeSketchSet(ss sketchSet) (*campaignPools, error) {
	dec := func(field, s string) (*sketch.Sketch, error) {
		if s == "" {
			return nil, nil
		}
		raw, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: sketch %q: %v", field, err)
		}
		sk, err := sketch.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("experiments: sketch %q: %v", field, err)
		}
		return sk, nil
	}
	p := &campaignPools{}
	var err error
	if p.gainRouting, err = dec("gain_over_routing", ss.GainOverRouting); err != nil {
		return nil, err
	}
	if p.gainCOPE, err = dec("gain_over_cope", ss.GainOverCOPE); err != nil {
		return nil, err
	}
	if p.ber, err = dec("ber", ss.BER); err != nil {
		return nil, err
	}
	if p.overlap, err = dec("overlap", ss.Overlap); err != nil {
		return nil, err
	}
	return p, nil
}

// merge folds another worker's pools into p. The pools must agree on
// which distributions exist: a presence mismatch means the shards ran
// different scheme filters, which can never merge into one campaign.
func (p *campaignPools) merge(o *campaignPools) error {
	one := func(name string, dst, src *sketch.Sketch) error {
		if (dst == nil) != (src == nil) {
			return fmt.Errorf("experiments: shards disagree on %s pool presence", name)
		}
		if dst == nil {
			return nil
		}
		if err := dst.Merge(src); err != nil {
			return fmt.Errorf("experiments: merging %s pool: %v", name, err)
		}
		return nil
	}
	if err := one("gain_over_routing", p.gainRouting, o.gainRouting); err != nil {
		return err
	}
	if err := one("gain_over_cope", p.gainCOPE, o.gainCOPE); err != nil {
		return err
	}
	if err := one("ber", p.ber, o.ber); err != nil {
		return err
	}
	return one("overlap", p.overlap, o.overlap)
}

// shardInfo identifies one worker's slice of the campaign.
type shardInfo struct {
	// Index is the 1-based shard number; Shards is the total count.
	Index  int `json:"index"`
	Shards int `json:"shards"`
	// RowLo and RowHi delimit the half-open global run-index range
	// [RowLo, RowHi) this worker produced — sim.SplitSeeds(runs, Shards)
	// evaluated at Index-1.
	RowLo int `json:"row_lo"`
	RowHi int `json:"row_hi"`
}

// shardSummary is the trailing NDJSON record of a worker stream: the
// campaign header (identical across workers — it describes the whole
// campaign, not the slice), the worker's shard coordinates, and its
// distribution pools as serialized sketches.
type shardSummary struct {
	Record   string         `json:"record"` // always "summary"
	Header   campaignHeader `json:"header"`
	Shard    shardInfo      `json:"shard"`
	Sketches sketchSet      `json:"sketches"`
}

func errShardCount(shards int) error {
	return fmt.Errorf("experiments: shard count %d < 1", shards)
}

func errShardIndex(shard, shards int) error {
	return fmt.Errorf("experiments: shard %d outside 1..%d", shard, shards)
}

// WriteCampaignNDJSON runs shard `shard` of `shards` (1-based) of a
// registered scenario's campaign and streams it as NDJSON: one
// CampaignRow object per line — with the global run index, so rows from
// different workers never collide — then one trailing summary record
// (shardSummary) carrying the worker's pools as mergeable sketches.
// Feed the worker outputs to MergeSummaries to reassemble the exact
// document WriteCampaignJSON would have produced unsharded. It is a
// thin framing wrapper over Streamer — the seam ancserve streams the
// identical bytes through.
func WriteCampaignNDJSON(w io.Writer, opts StreamOptions, name string, shard, shards int) error {
	s, err := NewStreamer(opts, name, shard, shards)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if err := s.Stream(nil, func(line []byte) error {
		if _, err := bw.Write(line); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// shardStream is one parsed worker output.
type shardStream struct {
	rows    [][]byte // marshaled CampaignRow lines, in stream order
	summary shardSummary
}

// parseShardStream reads one worker's NDJSON output: zero or more row
// lines followed by exactly one summary record as the final line.
func parseShardStream(r io.Reader) (*shardStream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<26)
	out := &shardStream{}
	sawSummary := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if sawSummary {
			return nil, fmt.Errorf("experiments: shard stream continues after its summary record")
		}
		var probe struct {
			Record string `json:"record"`
			Run    *int   `json:"run"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("experiments: shard stream line %d: %v", len(out.rows)+1, err)
		}
		if probe.Record == "summary" {
			if err := json.Unmarshal(line, &out.summary); err != nil {
				return nil, fmt.Errorf("experiments: shard summary record: %v", err)
			}
			sawSummary = true
			continue
		}
		if probe.Run == nil {
			return nil, fmt.Errorf("experiments: shard stream line %d is neither a row nor a summary record", len(out.rows)+1)
		}
		out.rows = append(out.rows, append([]byte(nil), line...))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawSummary {
		return nil, fmt.Errorf("experiments: shard stream has no summary record")
	}
	return out, nil
}

// MergeSummaries reassembles a sharded campaign: given every worker's
// NDJSON output (in any order), it validates that the shards form a
// complete, consistent partition of one campaign and writes the single
// JSON document an unsharded WriteCampaignJSON run would have produced —
// byte for byte. Rows pass through untouched in global run order; the
// summary is recomputed from the merged sketches, whose merge is exact,
// so the summary bits do not depend on how the campaign was sharded.
func MergeSummaries(w io.Writer, shards ...io.Reader) error {
	if len(shards) == 0 {
		return fmt.Errorf("experiments: no shard streams to merge")
	}
	parsed := make([]*shardStream, len(shards))
	for i, r := range shards {
		s, err := parseShardStream(r)
		if err != nil {
			return fmt.Errorf("experiments: shard input %d: %v", i+1, err)
		}
		parsed[i] = s
	}
	sort.Slice(parsed, func(i, j int) bool {
		return parsed[i].summary.Shard.Index < parsed[j].summary.Shard.Index
	})

	k := len(parsed)
	header := parsed[0].summary.Header
	wantHdr, err := json.Marshal(header)
	if err != nil {
		return err
	}
	next := 0
	for i, s := range parsed {
		sh := s.summary.Shard
		if sh.Shards != k {
			return fmt.Errorf("experiments: shard %d declares %d shards, %d streams given", sh.Index, sh.Shards, k)
		}
		if sh.Index != i+1 {
			return fmt.Errorf("experiments: shard indices are not exactly 1..%d (missing or duplicate shard %d)", k, i+1)
		}
		hdr, err := json.Marshal(s.summary.Header)
		if err != nil {
			return err
		}
		if !bytes.Equal(hdr, wantHdr) {
			return fmt.Errorf("experiments: shard %d ran a different campaign (header mismatch)", sh.Index)
		}
		if sh.RowLo != next || sh.RowHi < sh.RowLo {
			return fmt.Errorf("experiments: shard %d covers rows [%d,%d), want to continue at %d", sh.Index, sh.RowLo, sh.RowHi, next)
		}
		next = sh.RowHi
		if got := len(s.rows); got != sh.RowHi-sh.RowLo {
			return fmt.Errorf("experiments: shard %d has %d rows for range [%d,%d)", sh.Index, got, sh.RowLo, sh.RowHi)
		}
		for j, row := range s.rows {
			var probe struct {
				Run int `json:"run"`
			}
			if err := json.Unmarshal(row, &probe); err != nil {
				return err
			}
			if probe.Run != sh.RowLo+j {
				return fmt.Errorf("experiments: shard %d row %d has run index %d, want %d", sh.Index, j, probe.Run, sh.RowLo+j)
			}
		}
	}
	if next != header.Runs {
		return fmt.Errorf("experiments: shards cover %d rows, campaign has %d runs", next, header.Runs)
	}

	pools, err := decodeSketchSet(parsed[0].summary.Sketches)
	if err != nil {
		return fmt.Errorf("experiments: shard 1: %v", err)
	}
	for _, s := range parsed[1:] {
		p, err := decodeSketchSet(s.summary.Sketches)
		if err != nil {
			return fmt.Errorf("experiments: shard %d: %v", s.summary.Shard.Index, err)
		}
		if err := pools.merge(p); err != nil {
			return err
		}
	}

	doc := &docWriter{w: w}
	if err := doc.open(header); err != nil {
		return err
	}
	for _, s := range parsed {
		for _, row := range s.rows {
			if err := doc.row(row); err != nil {
				return err
			}
		}
	}
	return doc.close(pools.summary())
}
