package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

func ablOpts() Options {
	return Options{Runs: 3, Sim: sim.Config{Packets: 8}, Seed: 2}
}

func TestAblationMatcherOrdering(t *testing.T) {
	out := AblationMatcher(ablOpts())
	full := extractFloat(t, out, "full decoder")
	literal := extractFloat(t, out, "paper-literal matcher")
	if literal <= full*2 {
		t.Errorf("paper-literal BER %.5f not clearly above full decoder %.5f", literal, full)
	}
	noCond := extractFloat(t, out, "no conditioning weights")
	if noCond <= full {
		t.Errorf("conditioning weights show no benefit: %.5f vs %.5f", noCond, full)
	}
}

func TestAblationSubtractionFragility(t *testing.T) {
	out := AblationSubtraction(3)
	lines := dataLines(out)
	if len(lines) < 5 {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// First row: zero CFO — subtraction (column 2) is essentially exact.
	var cfo, sub, pair float64
	parseRow(t, lines[0], &cfo, &sub, &pair)
	if sub > 0.001 {
		t.Errorf("subtraction at zero CFO BER %.5f, want ~0", sub)
	}
	// Any later row: subtraction collapses, phase-pair persists — the §6
	// robustness claim.
	parseRow(t, lines[2], &cfo, &sub, &pair)
	if sub < 0.1 {
		t.Errorf("subtraction under CFO %.4f BER %.5f, expected collapse", cfo, sub)
	}
	if pair > 0.05 {
		t.Errorf("phase-pair under CFO %.4f BER %.5f, expected robustness", cfo, pair)
	}
}

func TestAblationEstimatorText(t *testing.T) {
	out := AblationEstimator(4)
	lines := dataLines(out)
	if len(lines) != 5 {
		t.Fatalf("want 5 CFO rows:\n%s", out)
	}
	// With a healthy CFO both estimators are accurate (≤10% error).
	var cfo, mom, env float64
	parseRow(t, lines[3], &cfo, &mom, &env)
	if mom > 0.1 || env > 0.1 {
		t.Errorf("estimator errors at CFO %.4f: moments %.4f envelope %.4f", cfo, mom, env)
	}
}

func TestAblationOverlapPeak(t *testing.T) {
	out := AblationOverlap(Options{Runs: 2, Sim: sim.Config{Packets: 6}, Seed: 5})
	lines := dataLines(out)
	var rows [][3]float64
	for _, l := range lines {
		var o, g, b float64
		parseRow(t, l, &o, &g, &b)
		rows = append(rows, [3]float64{o, g, b})
	}
	// Gains near the paper's 0.80 operating point beat the low-overlap
	// tail, and over-aggressive overlap (≥0.90, which squeezes the pilot
	// protection) collapses.
	var at80, at50, at95 float64
	for _, r := range rows {
		switch r[0] {
		case 0.8:
			at80 = r[1]
		case 0.5:
			at50 = r[1]
		case 0.95:
			at95 = r[1]
		}
	}
	if at80 <= at50 {
		t.Errorf("gain at 80%% overlap (%.3f) not above 50%% overlap (%.3f)", at80, at50)
	}
	if at95 > at80/2 {
		t.Errorf("over-aggressive overlap should collapse: %.3f at 95%%", at95)
	}
}

// dataLines returns non-header lines of an ablation table.
func dataLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if l == "" || strings.HasPrefix(l, "==") || strings.HasPrefix(l, "#") {
			continue
		}
		lines = append(lines, l)
	}
	return lines
}

// parseRow scans the trailing float fields of a table row.
func parseRow(t *testing.T, line string, dst ...*float64) {
	t.Helper()
	fields := strings.Fields(line)
	if len(fields) < len(dst) {
		t.Fatalf("row %q has %d fields, want ≥ %d", line, len(fields), len(dst))
	}
	// Numeric fields are the last len(dst) ones.
	start := len(fields) - len(dst)
	for i, d := range dst {
		if _, err := fmt.Sscan(fields[start+i], d); err != nil {
			t.Fatalf("row %q field %q: %v", line, fields[start+i], err)
		}
	}
}

func extractFloat(t *testing.T, out, label string) float64 {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, label) {
			fields := strings.Fields(strings.TrimPrefix(l, label))
			var v float64
			if _, err := fmt.Sscan(fields[0], &v); err != nil {
				t.Fatalf("line %q: %v", l, err)
			}
			return v
		}
	}
	t.Fatalf("label %q not found in:\n%s", label, out)
	return 0
}
