package experiments

import (
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats/sketch"
)

func streamOptsForTest() StreamOptions {
	return StreamOptions{Options: Options{Runs: 2, Sim: sim.Config{Packets: 2}, Seed: 3}}
}

// TestWriteCampaignJSONShape unmarshals the streamed document and checks
// the contract the README documents: header, one row per run in order,
// closing summary.
func TestWriteCampaignJSONShape(t *testing.T) {
	var b strings.Builder
	opts := streamOptsForTest()
	opts.Trace = true
	if err := WriteCampaignJSON(&b, opts, "pairs"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Scenario      string `json:"scenario"`
		Schemes       []string
		PacketsPerRun int `json:"packets_per_run"`
		Rows          []struct {
			Run   int `json:"run"`
			Links []struct {
				From  int `json:"from"`
				To    int `json:"to"`
				Slots int `json:"slots"`
			} `json:"links"`
		} `json:"rows"`
		Summary struct {
			BER struct {
				N int `json:"n"`
			} `json:"ber"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if doc.Scenario != "pairs" || doc.PacketsPerRun != 2 || len(doc.Rows) != 2 {
		t.Fatalf("document shape: %+v", doc)
	}
	for i, row := range doc.Rows {
		if row.Run != i {
			t.Errorf("row %d has run %d (order broken)", i, row.Run)
		}
		// pairs: 2 disjoint Alice–Bob cells → 8 directed edges.
		if len(row.Links) != 8 {
			t.Errorf("row %d has %d links, want 8", i, len(row.Links))
		}
	}
	if doc.Summary.BER.N == 0 {
		t.Error("summary BER pool empty")
	}
}

// TestWriteCampaignJSONMatchesGainResult pins the streamed summary to
// the text-surface campaign: same runs, same observations, different
// format. The streamed summary pools through mergeable sketches (so
// sharded campaigns merge bit-identically), so its statistics carry the
// sketch's relative accuracy α against the exact Sample pools; counts
// and extremes stay exact.
func TestWriteCampaignJSONMatchesGainResult(t *testing.T) {
	opts := streamOptsForTest()
	var b strings.Builder
	if err := WriteCampaignJSON(&b, opts, "alice-bob"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Summary struct {
			GainOverRouting struct {
				Mean float64 `json:"mean"`
				N    int     `json:"n"`
				Min  float64 `json:"min"`
				Max  float64 `json:"max"`
			} `json:"gain_over_routing"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	res, err := ScenarioCampaign(opts.Options, "alice-bob")
	if err != nil {
		t.Fatal(err)
	}
	got, want := doc.Summary.GainOverRouting, res.GainOverTrad
	if tol := sketch.DefaultAlpha * math.Abs(want.Mean()); math.Abs(got.Mean-want.Mean()) > tol {
		t.Errorf("streamed mean gain %v not within sketch accuracy of campaign %v", got.Mean, want.Mean())
	}
	if got.Min != want.Min() || got.Max != want.Max() {
		t.Errorf("streamed extremes [%v,%v] != exact [%v,%v]", got.Min, got.Max, want.Min(), want.Max())
	}
	if got.N != want.Len() {
		t.Errorf("streamed n %d != campaign %d", got.N, want.Len())
	}
}

func TestWriteCampaignCSVShape(t *testing.T) {
	var b strings.Builder
	if err := WriteCampaignCSV(&b, streamOptsForTest(), "alice-bob"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v\n%s", err, b.String())
	}
	// header + 2 runs; alice-bob has 3 schemes → 5 + 3*3 + 2 columns.
	if len(recs) != 3 || len(recs[0]) != 16 {
		t.Fatalf("CSV shape %dx%d, want 3x16", len(recs), len(recs[0]))
	}
	if recs[0][4] != "modem" || recs[1][4] != "msk" {
		t.Errorf("modem column missing or wrong: header %q, row %q", recs[0][4], recs[1][4])
	}
}

// TestStreamSchemeFilter pins the -scheme surface: a filtered campaign
// runs exactly the named schemes, carries the modem per row, and omits
// the gain pairings (and their summaries) that lost their baseline.
func TestStreamSchemeFilter(t *testing.T) {
	opts := streamOptsForTest()
	opts.Schemes = []sim.Scheme{sim.SchemeANC}
	opts.Sim.Modem = "dqpsk"
	var b strings.Builder
	if err := WriteCampaignJSON(&b, opts, "alice-bob"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Modem   string   `json:"modem"`
		Schemes []string `json:"schemes"`
		Rows    []struct {
			Modem           string                    `json:"modem"`
			GainOverRouting *float64                  `json:"gain_over_routing"`
			Schemes         []struct{ Scheme string } `json:"schemes"`
		} `json:"rows"`
		Summary map[string]json.RawMessage `json:"summary"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if doc.Modem != "dqpsk" {
		t.Errorf("header modem = %q, want dqpsk", doc.Modem)
	}
	if len(doc.Schemes) != 1 || doc.Schemes[0] != "anc" {
		t.Errorf("filtered schemes = %v, want [anc]", doc.Schemes)
	}
	for _, row := range doc.Rows {
		if row.Modem != "dqpsk" {
			t.Errorf("row modem = %q, want dqpsk", row.Modem)
		}
		if row.GainOverRouting != nil {
			t.Error("gain_over_routing present without a routing baseline")
		}
		if len(row.Schemes) != 1 {
			t.Errorf("row ran %d schemes, want 1", len(row.Schemes))
		}
	}
	if _, ok := doc.Summary["gain_over_routing"]; ok {
		t.Error("summary gain_over_routing present without a routing baseline")
	}
	if _, ok := doc.Summary["ber"]; !ok {
		t.Error("summary BER pool missing for an ANC-only campaign")
	}

	// An unsupported scheme fails with the supported set enumerated.
	bad := streamOptsForTest()
	bad.Schemes = []sim.Scheme{sim.SchemeCOPE}
	if err := WriteCampaignJSON(&b, bad, "chain"); err == nil {
		t.Error("chain accepted a COPE filter")
	} else if !strings.Contains(err.Error(), "anc") || !strings.Contains(err.Error(), "routing") {
		t.Errorf("error does not enumerate supported schemes: %v", err)
	}
}

func TestWriteCampaignUnknownScenario(t *testing.T) {
	var b strings.Builder
	if err := WriteCampaignJSON(&b, streamOptsForTest(), "no-such"); err == nil {
		t.Error("JSON writer accepted an unknown scenario")
	}
	if err := WriteCampaignCSV(&b, streamOptsForTest(), "no-such"); err == nil {
		t.Error("CSV writer accepted an unknown scenario")
	}
	if err := WriteCampaignJSON(&b, streamOptsForTest(), "chain-5"); err != nil {
		t.Errorf("chain-5 (no COPE) must stream fine: %v", err)
	}
}
