// Package intoownership machine-checks the README's buffer-ownership
// contract for `*Into` / `*InPlace` functions: the destination buffer
// belongs to the caller. The function writes into the destination's
// storage, may grow it only through the cap-guarded grow idiom (a
// `Grow*` helper, or `if cap(dst) < n { dst = make(...) }`), returns the
// same storage (resliced at most), and must not retain it.
//
// Concretely, for the destination parameter (the first slice-typed
// parameter, or the receiver of a slice-shaped type when no parameter is
// slice-typed) the analyzer flags:
//
//   - append to the destination: `append(dst, ...)` reallocates with
//     amortized doubling behind the caller's back, silently splitting
//     the caller's retained buffer from the written-to storage — the
//     aliasing bug class the zero-allocation pipeline cannot tolerate.
//   - reassignment of the destination from anything but a slice
//     expression of itself or a Grow helper (`dst = dsp.GrowBytes(dst,
//     n)`, `dst = growSignal(&dst, n)`), unless cap-guarded.
//   - returning fresh storage (`return nil`, `return make(...)`,
//     `return append(...)`, a composite literal) where a slice result is
//     expected: callers stash the return back into their reuse slot, so
//     a nil return leaks the retained buffer and fresh storage breaks
//     the ownership transfer. Empty results must be `dst[:0]`.
//   - storing the destination into a struct field: the contract says
//     results are valid until the next call that reuses dst; a retained
//     alias outlives that window.
//
// Multi-destination functions (e.g. ProfileInto(energy, variance, s))
// have only their first destination checked; the analyzer is a contract
// guard, not an alias prover.
package intoownership

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "intoownership",
	Doc:  "enforce the *Into/*InPlace destination-ownership contract (no append/realloc/replacement/retention of the destination buffer)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !strings.HasSuffix(fn.Name.Name, "Into") && !strings.HasSuffix(fn.Name.Name, "InPlace") {
				continue
			}
			dest := destParam(pass, fn)
			if dest == nil {
				continue
			}
			check(pass, fn, dest)
		}
	}
	return nil
}

// destParam picks the destination: the first slice-typed parameter, or
// the receiver when it is slice-shaped and no parameter is.
func destParam(pass *analysis.Pass, fn *ast.FuncDecl) *types.Var {
	for _, field := range fn.Type.Params.List {
		if !analysis.IsSliceType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				return v
			}
		}
		return nil // unnamed destination: nothing to track
	}
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		name := fn.Recv.List[0].Names[0]
		if name.Name != "_" && analysis.IsSliceType(pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)) {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				return v
			}
		}
	}
	return nil
}

func check(pass *analysis.Pass, fn *ast.FuncDecl, dest *types.Var) {
	info := pass.TypesInfo
	// sliceResult[i] reports whether the i-th result is slice-typed, so
	// return statements are checked positionally (a `return out, nil`
	// whose nil is the trailing error must not be flagged).
	var sliceResult []bool
	if fn.Type.Results != nil {
		for _, r := range fn.Type.Results.List {
			n := len(r.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				sliceResult = append(sliceResult, analysis.IsSliceType(info.TypeOf(r.Type)))
			}
		}
	}
	analysis.WalkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if analysis.IsBuiltin(info, n, "append") && len(n.Args) > 0 && refersTo(info, n.Args[0], dest) {
				pass.Reportf(n.Pos(), "intoownership: %s appends to its destination %q; append reallocates behind the caller — write in place and grow only via the cap-guarded Grow idiom", fn.Name.Name, dest.Name())
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				switch lhs := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if info.Uses[lhs] != dest {
						continue
					}
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if !sanctionedReassign(pass, rhs, dest, stack) {
						pass.Reportf(n.Pos(), "intoownership: %s reassigns its destination %q; the caller keeps the original storage — use dst = Grow*(dst, n) or a cap-guarded make", fn.Name.Name, dest.Name())
					}
				case *ast.SelectorExpr:
					// x.f = ...dest... — retention in a struct field.
					if sel, ok := info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
						var rhs ast.Expr
						if len(n.Rhs) == len(n.Lhs) {
							rhs = n.Rhs[i]
						}
						if rhs != nil && refersTo(info, rhs, dest) {
							pass.Reportf(n.Pos(), "intoownership: %s stores its destination %q in a struct field; results are only valid until the next call that reuses the buffer", fn.Name.Name, dest.Name())
						}
					}
				}
			}
		case *ast.ReturnStmt:
			if len(sliceResult) == 0 || len(n.Results) != len(sliceResult) {
				// No slice results, or a bare/single-call return form we
				// cannot attribute positionally.
				return true
			}
			for i, res := range n.Results {
				if !sliceResult[i] {
					continue
				}
				switch res := ast.Unparen(res).(type) {
				case *ast.Ident:
					if res.Name == "nil" && info.Types[res].IsNil() {
						pass.Reportf(res.Pos(), "intoownership: %s returns nil instead of %s[:0]; a nil return leaks the caller's retained reuse buffer", fn.Name.Name, dest.Name())
					}
				case *ast.CallExpr:
					if analysis.IsBuiltin(info, res, "make") || analysis.IsBuiltin(info, res, "append") {
						pass.Reportf(res.Pos(), "intoownership: %s returns fresh storage instead of its destination %q; the caller owns the buffer", fn.Name.Name, dest.Name())
					}
				case *ast.CompositeLit:
					if analysis.IsSliceType(info.TypeOf(res)) {
						pass.Reportf(res.Pos(), "intoownership: %s returns a slice literal instead of its destination %q; the caller owns the buffer", fn.Name.Name, dest.Name())
					}
				}
			}
		case *ast.FuncLit:
			// Closures get their own (unchecked) scope; the destination
			// rules still apply to direct uses inside them, so descend.
			return true
		}
		return true
	})
}

// sanctionedReassign reports whether `dest = rhs` keeps the ownership
// contract: a reslice of dest, dest itself, a Grow-helper call with dest
// (or &dest) as first argument, or a cap/len-guarded fresh allocation
// (the grow-on-demand idiom).
func sanctionedReassign(pass *analysis.Pass, rhs ast.Expr, dest *types.Var, stack []ast.Node) bool {
	if rhs == nil {
		// Multi-value assignment from a call: can't attribute, let it go.
		return true
	}
	info := pass.TypesInfo
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		return info.Uses[rhs] == dest
	case *ast.SliceExpr:
		return refersTo(info, rhs.X, dest)
	case *ast.CallExpr:
		if analysis.IsBuiltin(info, rhs, "make") || analysis.IsBuiltin(info, rhs, "new") {
			return analysis.CapGuarded(info, stack)
		}
		if analysis.IsBuiltin(info, rhs, "append") && len(rhs.Args) > 0 && refersTo(info, rhs.Args[0], dest) {
			// Already reported by the append check; one diagnostic per sin.
			return true
		}
		callee := analysis.CalleeOf(info, rhs)
		if callee != nil && strings.HasPrefix(strings.ToLower(callee.Name()), "grow") {
			return len(rhs.Args) > 0 && refersTo(info, rhs.Args[0], dest)
		}
	}
	return false
}

// refersTo reports whether expr is dest, a reslice/unary-& of dest, or
// otherwise mentions dest anywhere inside it.
func refersTo(info *types.Info, expr ast.Expr, dest *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == dest {
			found = true
			return false
		}
		return !found
	})
	return found
}
