// Package buffers is an intoownership-analyzer fixture: every way an
// *Into/*InPlace function can break the destination-ownership contract,
// next to every sanctioned growth idiom.
package buffers

// Signal mirrors dsp.Signal: a named slice type whose methods use the
// receiver as the destination.
type Signal []complex128

// GrowBytes mirrors dsp.GrowBytes — the sanctioned growth helper.
// (Not itself checked: its name does not end in Into/InPlace.)
func GrowBytes(dst []byte, n int) []byte {
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	return dst[:n]
}

// --- violations ---

func AppendCopyInto(dst, src []byte) []byte {
	dst = append(dst, src...) // want "appends to its destination"
	return dst
}

func ReallocInto(dst []byte, n int) []byte {
	dst = make([]byte, n) // want "reassigns its destination"
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

func SwapInto(dst, src []byte) []byte {
	dst = src // want "reassigns its destination"
	return dst
}

func NilOnEmptyInto(dst, src []byte) []byte {
	if len(src) == 0 {
		return nil // want "returns nil instead of dst"
	}
	dst = GrowBytes(dst, len(src))
	copy(dst, src)
	return dst
}

func FreshInto(dst []byte, n int) []byte {
	return make([]byte, n) // want "returns fresh storage"
}

func AppendReturnInto(dst, src []byte) []byte {
	return append(dst, src...) // want "appends to its destination" "returns fresh storage"
}

func LiteralInto(dst []byte) []byte {
	return []byte{0} // want "returns a slice literal"
}

type retainer struct {
	buf []byte
}

func (r *retainer) RetainInto(dst []byte) []byte {
	r.buf = dst // want "stores its destination"
	return dst
}

func (r *retainer) RetainSliceInto(dst []byte, n int) []byte {
	r.buf = dst[:n] // want "stores its destination"
	return dst[:n]
}

// --- sanctioned ---

// HelperGrowInto grows through a Grow* helper: the caller's storage is
// reused whenever capacity suffices.
func HelperGrowInto(dst, src []byte) []byte {
	dst = GrowBytes(dst, len(src))
	copy(dst, src)
	return dst
}

// CapGuardedInto inlines the grow idiom.
func CapGuardedInto(dst []byte, n int) []byte {
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 1
	}
	return dst
}

// EmptyInto returns the contract's empty form, never nil.
func EmptyInto(dst []byte) []byte {
	return dst[:0]
}

// ScaleInPlace uses its slice receiver as the destination.
func ScaleInPlace(s Signal) Signal {
	for i := range s {
		s[i] *= 2
	}
	return s
}

// ReceiverInPlace exercises the receiver-as-destination path.
type buf []byte

func (b buf) ZeroInPlace() buf {
	for i := range b {
		b[i] = 0
	}
	return b
}

// PositionalInto returns (result, error): a trailing nil error must not
// be mistaken for a nil destination return.
func PositionalInto(dst, src []byte) ([]byte, error) {
	dst = GrowBytes(dst, len(src))
	copy(dst, src)
	return dst, nil
}

// WriteThroughInto writes element-wise and via an index assignment —
// both are in-place writes, not reassignments.
func WriteThroughInto(dst []byte, v byte) []byte {
	if len(dst) > 0 {
		dst[0] = v
	}
	return dst
}
