package intoownership_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/intoownership"
)

func TestIntoOwnership(t *testing.T) {
	analysistest.Run(t, "testdata", intoownership.Analyzer, "buffers")
}
