// Package analysis is a self-contained static-analysis framework in the
// shape of golang.org/x/tools/go/analysis, built only on the standard
// library's go/ast, go/types and go/importer (the module deliberately has
// no external dependencies; stdlib export data is obtained through
// `go list -export`, see load.go).
//
// It exists to make the simulator's runtime contracts — deterministic
// seeded randomness, byte-identical encoder output, *Into buffer
// ownership, the zero-allocation hot path, Recorder-mediated metrics —
// properties the toolchain proves on every build rather than properties
// the test matrix happens to exercise. The analyzers themselves live in
// the subpackages (determinism, maporder, intoownership, hotalloc,
// recorderdiscipline); cmd/anclint is the multichecker driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and drivers.
	Name string
	// Doc is the analyzer's one-paragraph documentation.
	Doc string
	// Run applies the analyzer to a package, reporting findings through
	// pass.Reportf.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass is one (analyzer, package) unit of work, carrying the syntax and
// type information the analyzer inspects.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diagnostics, func(i, j int) bool {
		return p.diagnostics[i].Pos < p.diagnostics[j].Pos
	})
	return p.diagnostics
}

// Run applies a single analyzer to one loaded package and returns its
// findings sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	return pass.Diagnostics(), nil
}

// WalkStack traverses the file preorder, invoking fn with each node and
// the stack of its ancestors (outermost first, not including the node
// itself). Returning false prunes the node's subtree.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// --- suppression and annotation comments ---

// CommentDirectives returns, for one file, the set of lines carrying a
// comment that contains the directive text (e.g. "anclint:sorted"). A
// directive applies to code on its own line (a trailing comment) and to
// the line immediately below it (a preceding comment line), so both
// placements are honored by Suppressed.
func CommentDirectives(file *ast.File, fset *token.FileSet, directive string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, directive) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// Suppressed reports whether a node at pos is suppressed by a directive
// comment on the same line or on the line immediately above.
func Suppressed(lines map[int]bool, fset *token.FileSet, pos token.Pos) bool {
	l := fset.Position(pos).Line
	return lines[l] || lines[l-1]
}

// HasDirective reports whether the doc comment group contains the given
// directive (as a dedicated comment line).
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, directive) {
			return true
		}
	}
	return false
}

// --- shared type/AST helpers the analyzers use ---

// PkgFuncOf returns the import path and name of the package-level
// function or variable a selector expression like rand.Intn or
// rand.Reader refers to, or ("", "") if e is not a qualified reference
// to another package.
func PkgFuncOf(info *types.Info, e ast.Expr) (pkgPath, name string) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// CalleeOf returns the object called by e, unwrapping parens, or nil for
// calls through non-identifier expressions (function values, conversions).
func CalleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsBuiltin reports whether the call invokes the named builtin
// (append, make, new, cap, len, ...).
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// CapGuarded reports whether the node sits inside an if statement whose
// condition inspects a buffer's capacity or length (a call to cap or
// len) — the sanctioned grow-on-demand idiom:
//
//	if cap(buf) < n { buf = make(T, n) }
//
// Such a reallocation happens only while the buffer is still growing and
// is amortized away in steady state, which is exactly the contract of
// the dsp.Grow* helpers.
func CapGuarded(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if IsBuiltin(info, call, "cap") || IsBuiltin(info, call, "len") {
					guarded = true
					return false
				}
			}
			return true
		})
		if guarded {
			return true
		}
	}
	return false
}

// IsSliceType reports whether t's underlying type is a slice.
func IsSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// Deref returns the pointee type if t is a pointer, else t.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// PathHasSegment reports whether any "/"-separated segment of an import
// path equals one of the names.
func PathHasSegment(path string, names map[string]bool) bool {
	for _, seg := range strings.Split(path, "/") {
		if names[seg] {
			return true
		}
	}
	return false
}
