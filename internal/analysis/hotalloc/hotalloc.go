// Package hotalloc statically audits the zero-allocation decode path.
// Functions annotated with an `//anc:hotpath` directive in their doc
// comment — Decoder.Decode, core.DecodeBatch, both modems'
// demodulators, the dsp batch kernels, the Recorder methods — must not
// contain the allocation sources the runtime AllocsPerRun pins can only
// catch on the configurations the tests happen to run:
//
//   - make / new, unless cap/len-guarded (the grow-on-demand idiom the
//     dsp.Grow* helpers implement: a reallocation that amortizes to
//     zero) or explicitly waived with an `//anclint:coldstart` comment
//     on the statement's line (a documented one-time cold-start
//     fallback).
//   - slice or map composite literals, and &T{...} (escaping composite
//     pointers) — same waivers as make/new.
//   - function literals: a closure that captures variables allocates
//     its capture block per call.
//   - conversions that box a non-pointer-shaped value into an
//     interface (call arguments, assignments, returns): each boxing is
//     a hidden heap allocation. Pointer, channel, map, func and
//     interface values are pointer-shaped and exempt; nil is exempt.
//   - any fmt call (fmt boxes every operand and allocates internally).
//   - string concatenation (+ / +=) — builds a new string per
//     evaluation.
//   - go and defer statements (closure + frame bookkeeping).
//
// Calls to other functions are deliberately not followed: the analyzer
// is intraprocedural, and helpers like dsp.GrowBytes are the sanctioned
// amortization points. append is allowed for the same reason — the
// pools that grow through it (Metrics.BERs) are amortized by doubling
// and owned by the hot structure itself.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Directive marks a function as part of the zero-allocation hot path.
const Directive = "anc:hotpath"

// ColdStart waives one make/new/composite-literal line inside a hotpath
// function as a documented cold-start fallback.
const ColdStart = "anclint:coldstart"

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation sources (make/new, closures, interface boxing, fmt, string concat) in //anc:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		waived := analysis.CommentDirectives(file, pass.Fset, ColdStart)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.HasDirective(fn.Doc, Directive) {
				continue
			}
			checkFunc(pass, fn, waived)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, waived map[int]bool) {
	info := pass.TypesInfo
	name := fn.Name.Name
	report := func(pos token.Pos, format string, args ...any) {
		if analysis.Suppressed(waived, pass.Fset, pos) {
			return
		}
		args = append([]any{name}, args...)
		pass.Reportf(pos, "hotalloc: %s: "+format, args...)
	}
	// Result types for positional checking of return-statement boxing.
	var results []types.Type
	if fn.Type.Results != nil {
		for _, r := range fn.Type.Results.List {
			n := len(r.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				results = append(results, info.TypeOf(r.Type))
			}
		}
	}

	analysis.WalkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure literal allocates its capture block; hoist the function or pass state explicitly")
			return false // the literal's body is the closure's problem
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine; the hot path is single-threaded per worker")
		case *ast.DeferStmt:
			report(n.Pos(), "defer in a hot function adds per-call bookkeeping; restructure with explicit cleanup")
		case *ast.CallExpr:
			checkCall(pass, n, stack, report)
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			// Struct and array value literals live on the stack; only
			// slice and map literals (reference types) allocate.
			switch t.Underlying().(type) {
			case *types.Slice:
				if !analysis.CapGuarded(info, stack) {
					report(n.Pos(), "slice literal allocates; carve from the workspace or grow a retained buffer")
				}
			case *types.Map:
				if !analysis.CapGuarded(info, stack) {
					report(n.Pos(), "map literal allocates; hoist the map to init-time state")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && !analysis.CapGuarded(info, stack) {
					report(n.Pos(), "&composite literal escapes to the heap; reuse a retained value")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				report(n.Pos(), "string concatenation allocates; hot paths carry bytes, not strings")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string concatenation allocates; hot paths carry bytes, not strings")
			}
			checkAssignBoxing(pass, n, report)
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if i < len(n.Names) {
					checkBoxing(pass, info.TypeOf(n.Names[i]), v, report)
				}
			}
		case *ast.ReturnStmt:
			if len(n.Results) == len(results) {
				for i, res := range n.Results {
					checkBoxing(pass, results[i], res, report)
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	if analysis.IsBuiltin(info, call, "make") || analysis.IsBuiltin(info, call, "new") {
		if !analysis.CapGuarded(info, stack) {
			report(call.Pos(), "unguarded %s allocates on every call; guard with a cap/len check (the Grow idiom) or annotate //anclint:coldstart", ast.Unparen(call.Fun).(*ast.Ident).Name)
		}
		return
	}
	if pkgPath, fname := analysis.PkgFuncOf(info, call.Fun); pkgPath == "fmt" {
		report(call.Pos(), "fmt.%s boxes every operand and allocates internally; hot paths must not format", fname)
		return
	}
	// Conversion to an interface type: T(x) where T is an interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBoxing(pass, tv.Type, call.Args[0], report)
		}
		return
	}
	// Interface-typed parameters receiving concrete arguments.
	sig, ok := typeOfCallee(info, call).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				if i == params.Len()-1 {
					pt = params.At(params.Len() - 1).Type()
				}
			} else if s, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(pass, pt, arg, report)
	}
}

func typeOfCallee(info *types.Info, call *ast.CallExpr) types.Type {
	if t := info.TypeOf(call.Fun); t != nil {
		return t.Underlying()
	}
	return nil
}

func checkAssignBoxing(pass *analysis.Pass, n *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	if len(n.Lhs) != len(n.Rhs) {
		return // multi-value call assignment: tuple elements keep their types
	}
	for i := range n.Lhs {
		checkBoxing(pass, info.TypeOf(n.Lhs[i]), n.Rhs[i], report)
	}
}

// checkBoxing reports when expr, of some concrete non-pointer-shaped
// type, is implicitly converted to the interface type target.
func checkBoxing(pass *analysis.Pass, target types.Type, expr ast.Expr, report func(token.Pos, string, ...any)) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	info := pass.TypesInfo
	tv, ok := info.Types[expr]
	if !ok || tv.IsNil() {
		return
	}
	src := tv.Type
	if src == nil || types.IsInterface(src) {
		return
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: stored directly in the interface word
	}
	report(expr.Pos(), "boxing %s into %s allocates; keep hot-path data concrete", src.String(), target.String())
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
