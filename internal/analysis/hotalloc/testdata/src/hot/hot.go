// Package hot is a hotalloc-analyzer fixture: every allocation source
// the analyzer forbids inside //anc:hotpath functions, next to the
// sanctioned grow idiom, the //anclint:coldstart waiver, and an
// unannotated function that allocates freely.
package hot

import "fmt"

type scratch struct {
	buf []byte
}

// allocEverything trips every rule.
//
//anc:hotpath
func allocEverything(n int, w interface{ Write([]byte) }) interface{} {
	b := make([]byte, n) // want "unguarded make allocates on every call"
	p := new(scratch)    // want "unguarded new allocates on every call"
	_ = p

	f := func() int { return n } // want "closure literal allocates its capture block"
	_ = f

	go func() {}()          // want "go statement allocates a goroutine" "closure literal"
	defer fmt.Println(done) // want "defer in a hot function" "fmt.Println boxes every operand"

	s := []int{1, 2, 3}         // want "slice literal allocates"
	m := map[string]int{"a": 1} // want "map literal allocates"
	q := &scratch{buf: b}       // want "&composite literal escapes to the heap"
	_, _, _ = s, m, q

	msg := "a" + string(b) // want "string concatenation allocates"
	msg += "!"             // want "string concatenation allocates"
	_ = msg

	var boxed interface{} = n // want "boxing int into interface"
	_ = boxed
	boxed = n // want "boxing int into interface"

	fmt.Printf("%d", n) // want "fmt.Printf boxes every operand"

	return n // want "boxing int into interface"
}

const done = "done"

// growGuarded is the sanctioned amortized-growth idiom: the make only
// runs when capacity is insufficient.
//
//anc:hotpath
func growGuarded(s *scratch, n int) {
	if cap(s.buf) < n {
		s.buf = make([]byte, n)
	}
	s.buf = s.buf[:n]
	for i := range s.buf {
		s.buf[i] = 0
	}
}

// coldFallback documents its one-time allocation with the waiver.
//
//anc:hotpath
func coldFallback(s *scratch, n int) {
	if s == nil {
		s = &scratch{} //anclint:coldstart — one-shot arena for scratchless callers
	}
	growGuarded(s, n)
}

// pointerShaped passes only pointer-shaped values through interfaces:
// no boxing allocation.
//
//anc:hotpath
func pointerShaped(s *scratch) interface{} {
	var i interface{} = s
	i = error(nil)
	_ = i
	return s
}

// appendAllowed: append is the sanctioned amortization point for pools
// owned by the hot structure itself.
//
//anc:hotpath
func appendAllowed(s *scratch, b byte) {
	s.buf = append(s.buf, b)
}

// coldSetup has no annotation: it may allocate, format, and close over
// whatever it likes.
func coldSetup(n int) func() []byte {
	buf := make([]byte, n)
	fmt.Println("cold", n)
	return func() []byte { return buf }
}
