package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Root       bool // named by the load patterns (vs. pulled in as a dependency)

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (with the go tool, run in
// dir), parses and type-checks every non-standard-library package from
// source, and resolves standard-library imports through the compiler
// export data `go list -export` materializes in the build cache. The
// result contains only the source-loaded packages, dependencies first;
// packages named by the patterns have Root set.
//
// Only each package's GoFiles (no _test.go files) are analyzed — the
// invariants anclint enforces are properties of shipped simulator code.
// The loader needs the go tool on PATH but no network and no module
// downloads: the repository has no external dependencies by design.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exports := make(map[string]string)
	imp := &loadImporter{
		fset:    fset,
		source:  make(map[string]*types.Package),
		exports: exports,
	}
	imp.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	// `go list -deps` emits dependencies before dependents, so a single
	// in-order pass type-checks every import before its importers.
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Standard {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
			continue
		}
		pkg, err := checkFromSource(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.Root = !lp.DepOnly
		imp.source[lp.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// GoListExport materializes compiler export data for the named packages
// and their whole dependency cone, returning import path -> export file.
// The analysistest harness uses it to give fixture packages real stdlib
// type information without loading the standard library from source.
func GoListExport(dir string, paths []string) (map[string]string, error) {
	listed, err := goList(dir, paths)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			out[lp.ImportPath] = lp.Export
		}
	}
	return out, nil
}

// goList runs `go list -export -deps -json` over the patterns.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// checkFromSource parses and type-checks one package.
func checkFromSource(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// loadImporter resolves imports during type-checking: module packages
// from the already-checked source map, the standard library from gc
// export data.
type loadImporter struct {
	fset    *token.FileSet
	source  map[string]*types.Package
	exports map[string]string
	gc      types.Importer
}

func (imp *loadImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := imp.source[path]; ok {
		return p, nil
	}
	return imp.gc.Import(path)
}
