// Package steppers is the cross-package half of the recorderdiscipline
// fixture: a schedule-stepper package importing the sim recorder
// vocabulary. Its own counters are fair game; sim.Metrics fields are
// not, whether reached directly or through an embedding recorder.
package steppers

import "sim"

// stats is a local aggregate, unrelated to sim.Metrics; writing its
// fields is the stepper's own business.
type stats struct {
	Delivered int
}

// hybrid embeds sim.Metrics one package away from its declaration.
type hybrid struct {
	sim.Metrics
	local int
}

func step(m *sim.Metrics, h *hybrid, s *stats) {
	m.Delivered++    // want "direct write to sim.Metrics field Delivered"
	m.Collisions = 3 // want "direct write to sim.Metrics field Collisions"
	h.Delivered += 1 // want "direct write to sim.Metrics field Delivered"

	// Sanctioned: accessor calls, local-aggregate writes, embedding
	// struct's own fields, and reading Metrics fields.
	m.RecordDelivered()
	h.RecordCollision()
	s.Delivered++
	h.local = s.Delivered + m.Delivered
}
