// Package sim is a recorderdiscipline fixture mirroring the real
// internal/sim recorder vocabulary. This file is named metrics.go, so
// everything in it — including the Record* accessor bodies — is exempt.
package sim

// Metrics is the default aggregate Recorder implementation.
type Metrics struct {
	Delivered  int
	Collisions int
	BERs       []float64
}

// RecordDelivered is the sanctioned write path.
func (m *Metrics) RecordDelivered() {
	m.Delivered++
}

// RecordCollision is the sanctioned write path.
func (m *Metrics) RecordCollision() {
	m.Collisions++
}

// Reset zeroes the aggregate; whole-value resets are ownership, not
// accounting, and stay legal everywhere.
func (m *Metrics) Reset() {
	*m = Metrics{BERs: m.BERs[:0]}
}

// TraceRecorder embeds Metrics; writes that reach Metrics fields through
// the embedding are still Metrics writes.
type TraceRecorder struct {
	Metrics
	Events []string
}
