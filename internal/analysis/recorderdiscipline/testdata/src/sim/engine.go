package sim

// step lives in the sim package but outside recorder.go/metrics.go and
// outside any Metrics method: the discipline applies to it.
func step(m *Metrics, tr *TraceRecorder) {
	m.Delivered++          // want "direct write to sim.Metrics field Delivered"
	m.Collisions += 2      // want "direct write to sim.Metrics field Collisions"
	tr.Delivered = 7       // want "direct write to sim.Metrics field Delivered"
	tr.Metrics.Delivered-- // want "direct write to sim.Metrics field Delivered"

	// Sanctioned: accessor calls, embedded non-Metrics fields, and
	// whole-value resets.
	m.RecordDelivered()
	tr.RecordCollision()
	tr.Events = tr.Events[:0]
	*m = Metrics{}
}
