package recorderdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/recorderdiscipline"
)

func TestRecorderDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", recorderdiscipline.Analyzer, "sim", "steppers")
}
