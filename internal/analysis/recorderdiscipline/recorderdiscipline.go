// Package recorderdiscipline machine-checks the PR 4 results contract:
// schedule steppers and engine code report observations through the
// sim.Recorder interface (RecordDelivered, RecordANCDecode, ...) and
// never poke Metrics result fields directly. Direct field writes bypass
// every alternative Recorder (TraceRecorder, SketchRecorder, streaming
// sinks), so an aggregate that only ever ran under the default Metrics
// recorder would silently diverge the moment a campaign streams.
//
// The analyzer flags any assignment, compound assignment or ++/--
// whose target is a field of the Metrics struct declared in a package
// named "sim" — including writes that reach a Metrics field through an
// embedding recorder (TraceRecorder.Delivered++ is still a Metrics
// write). Exempt are
//
//   - methods declared on Metrics itself (the accessor implementations
//     are where the fields must be written), and
//   - files named recorder.go or metrics.go (the recorder vocabulary).
//
// Whole-value resets (*m = Metrics{}) are not field writes and stay
// legal: zeroing a recorder is ownership, not accounting.
package recorderdiscipline

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "recorderdiscipline",
	Doc:  "forbid direct writes to sim.Metrics fields outside recorder/metrics code; observations go through the Recorder interface",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if base == "recorder.go" || base == "metrics.go" {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if isMetricsMethod(pass, fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkWrite(pass, lhs)
					}
				case *ast.IncDecStmt:
					checkWrite(pass, n.X)
				}
				return true
			})
		}
	}
	return nil
}

// isMetricsMethod reports whether fn is declared on (a pointer to) the
// sim Metrics type.
func isMetricsMethod(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return false
	}
	return isSimMetrics(analysis.Deref(t))
}

// checkWrite flags lhs when it denotes a field belonging to the
// sim.Metrics struct, directly or through embedded fields.
func checkWrite(pass *analysis.Pass, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	owner, field := fieldOwner(selection)
	if owner == nil || !isSimMetrics(owner) {
		return
	}
	pass.Reportf(lhs.Pos(), "recorderdiscipline: direct write to sim.Metrics field %s; emit the observation through the Recorder interface instead", field)
}

// fieldOwner walks the selection's embedding path and returns the named
// type that declares the final field, with the field name.
func fieldOwner(sel *types.Selection) (types.Type, string) {
	t := analysis.Deref(sel.Recv())
	index := sel.Index()
	for i, idx := range index {
		s, ok := analysis.Deref(t).Underlying().(*types.Struct)
		if !ok || idx >= s.NumFields() {
			return nil, ""
		}
		f := s.Field(idx)
		if i == len(index)-1 {
			return analysis.Deref(t), f.Name()
		}
		t = f.Type()
	}
	return nil, ""
}

// isSimMetrics reports whether t is a named type Metrics declared in a
// package whose path ends in "sim".
func isSimMetrics(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Metrics" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "sim" || filepath.Base(path) == "sim"
}
