// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixtures —
// the stdlib-only equivalent of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture layout mirrors x/tools: <testdata>/src/<pkg>/... holds one
// package per directory. Fixture packages may import each other by
// directory name ("sim") and the standard library; stdlib type
// information is resolved through the compiler export data `go list
// -export` materializes, so the harness needs no network and no module
// downloads.
//
// Expectations are `// want` comments on the offending line:
//
//	_ = rand.Intn(4) // want "math/rand"
//	for k := range m { // want "maporder" "randomized"
//
// Each double-quoted string is a regular expression that must match a
// diagnostic reported on that line; every diagnostic must be matched by
// some expectation on its line. Unmatched expectations and unexpected
// diagnostics both fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the named fixture packages from testdata/src, applies the
// analyzer to each, and reports expectation mismatches on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := &loader{
		src:     filepath.Join(testdata, "src"),
		fset:    token.NewFileSet(),
		parsed:  make(map[string][]*ast.File),
		checked: make(map[string]*analysis.Package),
		exports: make(map[string]string),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	// Parse every reachable fixture package first so one `go list` call
	// resolves all external imports.
	for _, p := range pkgs {
		if err := l.parse(p); err != nil {
			t.Fatalf("parsing fixture %s: %v", p, err)
		}
	}
	if err := l.resolveExternal(); err != nil {
		t.Fatalf("resolving stdlib imports: %v", err)
	}
	for _, p := range pkgs {
		pkg, err := l.check(p)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", p, err)
		}
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Fatalf("running %s on fixture %s: %v", a.Name, p, err)
		}
		compare(t, l.fset, pkg.Files, diags)
	}
}

type loader struct {
	src     string
	fset    *token.FileSet
	parsed  map[string][]*ast.File
	checked map[string]*analysis.Package
	exports map[string]string
	gc      types.Importer
}

func (l *loader) fixtureDir(path string) (string, bool) {
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	st, err := os.Stat(dir)
	return dir, err == nil && st.IsDir()
}

// parse loads the package's files and, recursively, every fixture
// package it imports; external imports are only collected.
func (l *loader) parse(path string) error {
	if _, ok := l.parsed[path]; ok {
		return nil
	}
	dir, ok := l.fixtureDir(path)
	if !ok {
		return fmt.Errorf("fixture package %q not found under %s", path, l.src)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return fmt.Errorf("fixture package %q has no Go files", path)
	}
	l.parsed[path] = files
	for _, f := range files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, ok := l.fixtureDir(ip); ok {
				if err := l.parse(ip); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// resolveExternal collects every import of a parsed fixture that is not
// itself a fixture and materializes export data for the whole dependency
// cone with one `go list -export` run.
func (l *loader) resolveExternal() error {
	external := make(map[string]bool)
	for _, files := range l.parsed {
		for _, f := range files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil || ip == "unsafe" {
					continue
				}
				if _, ok := l.fixtureDir(ip); !ok {
					external[ip] = true
				}
			}
		}
	}
	if len(external) == 0 {
		return nil
	}
	paths := make([]string, 0, len(external))
	for p := range external {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	listed, err := analysis.GoListExport(".", paths)
	if err != nil {
		return err
	}
	for p, export := range listed {
		l.exports[p] = export
	}
	return nil
}

func (l *loader) check(path string) (*analysis.Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	files := l.parsed[path]
	info := analysis.NewTypesInfo()
	conf := types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			if ip == "unsafe" {
				return types.Unsafe, nil
			}
			if _, ok := l.fixtureDir(ip); ok {
				pkg, err := l.check(ip)
				if err != nil {
					return nil, err
				}
				return pkg.Types, nil
			}
			return l.gc.Import(ip)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &analysis.Package{
		ImportPath: path,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	l.checked[path] = pkg
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// --- expectation matching ---

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// compare checks the diagnostics against the fixtures' want comments.
func compare(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					pat, err := strconv.Unquote(`"` + q[1] + `"`)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", key, q[0], err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, pat, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: pat})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.raw)
			}
		}
	}
}
