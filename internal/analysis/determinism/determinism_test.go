package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	// dsp and sim are scoped packages: every fixture violation must be
	// reported. serve is a sanctioned service-layer package: the same
	// wall-clock and environment reads must produce zero diagnostics.
	analysistest.Run(t, "testdata", determinism.Analyzer, "dsp", "sim", "serve")
}

func TestInScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/sim", true},
		{"repro/internal/experiments", true},
		{"repro/internal/phy/msk", true},
		{"repro/internal/serve", false},
		{"repro/cmd/ancserve", false},
		{"repro/cmd/anclint", false},
		{"repro/internal/analysis", false},
		// Sanctioning wins even when a scoped segment shares the path.
		{"repro/internal/serve/sim", false},
	}
	for _, c := range cases {
		if got := determinism.InScope(c.path); got != c.want {
			t.Errorf("InScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
