// Package determinism forbids the ambient-entropy escape hatches that
// would silently break the simulator's reproducibility contract: every
// run is a pure function of (scenario, config, seed), goldens are
// byte-identical across machines, and shard merges reproduce the
// unsharded document bit for bit. One stray time.Now or global
// math/rand call anywhere in the simulation core voids all of that.
//
// Within its scope (the simulation packages: any import path with a
// segment in core, sim, dsp, channel, frame, topology, phy, msk, dqpsk,
// stats, experiments — see InScope) the analyzer flags
//
//   - global math/rand (and math/rand/v2) functions — rand.Intn,
//     rand.Float64, rand.Shuffle, rand.Seed, ... — whose hidden global
//     state escapes seeding. Constructor functions (rand.New,
//     rand.NewSource, rand.NewZipf, ...) are the sanctioned idiom:
//     explicitly seeded generators threaded through the call graph.
//   - wall-clock reads: time.Now, time.Since, time.Until. Simulated
//     time is the only clock a run may observe.
//   - crypto/rand in any form (unseedable entropy by construction).
//   - environment reads: os.Getenv, os.LookupEnv, os.Environ,
//     os.ExpandEnv. Configuration reaches a run through Config values,
//     never ambiently.
//
// There is deliberately no suppression comment: a scoped package with a
// legitimate need for any of these does not exist by definition of the
// reproducibility contract. What does exist is a second kind of package
// entirely: service-layer code (the ancserve daemon and its internal/serve
// subsystem) that legitimately reads wall clocks for job latency metrics
// and write deadlines. Those packages are *sanctioned* — named in
// sanctionedSegments and exempt even when a scoped segment also appears
// in their path — because nothing a simulation row contains may flow
// from them: they sit strictly downstream of the engine, consuming its
// byte streams.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid ambient entropy (global math/rand, wall clock, crypto/rand, environment reads) in simulation packages",
	Run:  run,
}

// scopedSegments are the path segments naming packages under the
// reproducibility contract: everything a simulation run's output can
// depend on. A package is in scope when any "/"-separated segment of
// its import path matches.
var scopedSegments = map[string]bool{
	"core": true, "sim": true, "dsp": true, "channel": true,
	"frame": true, "topology": true, "phy": true, "msk": true,
	"dqpsk": true, "stats": true, "experiments": true,
}

// sanctionedSegments name the service-layer packages exempt from the
// contract: they may observe wall clocks and environment because no
// simulation output depends on them — they only transport engine bytes.
// Sanctioning takes precedence over scoping, so a path like
// internal/serve stays exempt even if a scoped segment ever appears
// alongside it.
var sanctionedSegments = map[string]bool{
	"serve": true, "ancserve": true,
}

// InScope reports whether the analyzer applies to the package at the
// given import path: any scoped segment present and no sanctioned one.
// The driver (cmd/anclint) uses this as its package filter, and run
// itself re-checks it, so the answer is authoritative regardless of how
// the analyzer is invoked.
func InScope(importPath string) bool {
	if analysis.PathHasSegment(importPath, sanctionedSegments) {
		return false
	}
	return analysis.PathHasSegment(importPath, scopedSegments)
}

// forbidden maps package path -> referenced name -> explanation.
// An empty name key applies to every reference from that package.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read; runs must observe simulated time only",
		"Since": "wall-clock read; runs must observe simulated time only",
		"Until": "wall-clock read; runs must observe simulated time only",
	},
	"crypto/rand": {
		"": "unseedable entropy; use a seeded rand.New(rand.NewSource(seed))",
	},
	"os": {
		"Getenv":    "environment read; thread configuration through Config values",
		"LookupEnv": "environment read; thread configuration through Config values",
		"Environ":   "environment read; thread configuration through Config values",
		"ExpandEnv": "environment read; thread configuration through Config values",
	},
}

func run(pass *analysis.Pass) error {
	if !InScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name := analysis.PkgFuncOf(pass.TypesInfo, sel)
			if pkgPath == "" {
				return true
			}
			if _, isType := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); isType {
				// Type references (*rand.Rand, time.Duration) carry no
				// entropy; only functions and variables do.
				return true
			}
			if pkgPath == "math/rand" || pkgPath == "math/rand/v2" {
				// Only the global-state functions are forbidden; the New*
				// constructors are the sanctioned way to build a seeded
				// generator, and everything else reached through a *Rand
				// value is a method, not a package-level reference.
				if !strings.HasPrefix(name, "New") {
					pass.Reportf(n.Pos(), "determinism: %s.%s uses the global generator; use a seeded rand.New(rand.NewSource(seed)) instead", pkgPath, name)
				}
				return true
			}
			if byName, ok := forbidden[pkgPath]; ok {
				if why, ok := byName[name]; ok {
					pass.Reportf(n.Pos(), "determinism: %s.%s: %s", pkgPath, name, why)
				} else if why, ok := byName[""]; ok {
					pass.Reportf(n.Pos(), "determinism: %s.%s: %s", pkgPath, name, why)
				}
			}
			return true
		})
	}
	return nil
}
