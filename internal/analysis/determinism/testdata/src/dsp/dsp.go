// Package dsp is a determinism-analyzer fixture: it exercises every
// forbidden ambient-entropy source and every sanctioned idiom.
package dsp

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

var t0 time.Time

func violations() {
	_ = rand.Intn(4)                   // want "math/rand.Intn uses the global generator"
	_ = rand.Float64()                 // want "math/rand.Float64 uses the global generator"
	rand.Seed(7)                       // want "math/rand.Seed uses the global generator"
	rand.Shuffle(1, func(i, j int) {}) // want "math/rand.Shuffle uses the global generator"

	_ = time.Now()     // want "time.Now: wall-clock read"
	_ = time.Since(t0) // want "time.Since: wall-clock read"
	_ = time.Until(t0) // want "time.Until: wall-clock read"

	var b [8]byte
	_, _ = crand.Read(b[:]) // want "crypto/rand.Read: unseedable entropy"
	_ = crand.Reader        // want "crypto/rand.Reader: unseedable entropy"

	_ = os.Getenv("SEED")       // want "os.Getenv: environment read"
	_, _ = os.LookupEnv("SEED") // want "os.LookupEnv: environment read"
	_ = os.Environ()            // want "os.Environ: environment read"
}

func sanctioned() {
	// The one sanctioned RNG construction: an explicitly seeded
	// generator threaded through the call graph.
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(4)
	_ = r.Float64()
	_ = rand.NewZipf(r, 1.1, 1, 10)

	// Durations and type references carry no entropy.
	var d time.Duration = 3 * time.Second
	_ = d
	var rr *rand.Rand
	_ = rr

	// Non-environment os use is out of scope for this analyzer.
	_ = os.Args
}
