// Package serve is a determinism-analyzer fixture for the sanctioned
// service layer: it commits every ambient-entropy sin the simulation
// packages are forbidden — wall-clock reads for job latency, environment
// reads for listener configuration — and must produce zero diagnostics,
// because "serve" is a sanctioned segment (see determinism.InScope).
// There are deliberately no want comments in this file.
package serve

import (
	"os"
	"time"
)

var started time.Time

func jobLatency() time.Duration {
	// Metrics legitimately observe the wall clock: job latency is a
	// property of the service, not of any simulation output.
	return time.Since(started)
}

func now() time.Time { return time.Now() }

func listenAddr() string {
	if addr, ok := os.LookupEnv("ANCSERVE_ADDR"); ok {
		return addr
	}
	return os.Getenv("ADDR")
}
