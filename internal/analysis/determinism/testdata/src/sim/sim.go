// Package sim is a determinism-analyzer fixture proving the sanctioned
// service layer is an exemption, not a hole: the same ambient-entropy
// reads the serve fixture gets away with still trip in a simulation
// package, because "sim" is a scoped segment (see determinism.InScope).
package sim

import (
	"math/rand"
	"time"
)

func stillForbidden() {
	_ = time.Now()   // want "time.Now: wall-clock read"
	_ = rand.Intn(4) // want "math/rand.Intn uses the global generator"
}
