// Package writers is a maporder-analyzer fixture: map-ordered emission
// in every form the analyzer catches, next to the sanctioned
// collect-then-sort idiom and the //anclint:sorted waiver.
package writers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

func fprint(w io.Writer, m map[string]int) {
	for k, v := range m { // want "maporder: map iteration emits output .fmt.Fprintf."
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func builder(m map[string]int) string {
	var buf bytes.Buffer
	for k := range m { // want "maporder: map iteration emits output .method WriteString."
		buf.WriteString(k)
	}
	return buf.String()
}

func encoder(w io.Writer, m map[string]int) error {
	enc := json.NewEncoder(w)
	for k := range m { // want "maporder: map iteration emits output .method Encode."
		if err := enc.Encode(k); err != nil {
			return err
		}
	}
	return nil
}

func appendBytes(m map[string]int) []byte {
	var out []byte
	for k := range m { // want "maporder: map iteration emits output .append to ..byte encoding buffer."
		out = append(out, k...)
	}
	return out
}

// collectThenSort is the sanctioned idiom: the map range only gathers
// keys (a non-byte append), and the emitting loop ranges over a sorted
// slice.
func collectThenSort(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k, m[k])
	}
}

// tally neither writes nor encodes: pure aggregation over a map is
// order-independent by construction.
func tally(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// waived demonstrates the escape hatch for emission that is genuinely
// order-independent (here: fixed bytes per iteration, count only).
func waived(w io.Writer, m map[string]int) {
	//anclint:sorted
	for range m {
		_, _ = w.Write([]byte("."))
	}
	for range m { //anclint:sorted
		fmt.Fprint(w, ".")
	}
}
