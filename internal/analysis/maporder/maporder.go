// Package maporder flags iteration over a map whose loop body emits
// output — writes to an io.Writer, fmt.Fprint* calls, encoder calls, or
// appends to a byte buffer. Go's map iteration order is deliberately
// randomized, so such a loop produces a different byte stream on every
// run: exactly the failure mode that would corrupt the byte-identical
// NDJSON shard/merge equivalence, the golden fingerprints, and the
// canonical sketch wire format.
//
// The sanctioned idiom is collect-keys-then-sort:
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Slice(keys, ...)
//	for _, k := range keys {
//		fmt.Fprintf(w, ...)
//	}
//
// (the first loop only appends to a non-byte slice and is not flagged;
// the second ranges over a slice). Where a map-ordered write really is
// order-independent, annotate the range statement with an
// `//anclint:sorted` comment on the same line or the line above.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Directive is the suppression annotation for a map range whose emitted
// output is genuinely order-independent.
const Directive = "anclint:sorted"

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body writes to an output stream or encoding buffer (randomized order corrupts byte-identical output)",
	Run:  run,
}

// writerMethods are method names that emit bytes into a stream or
// builder: io.Writer and friends, plus stream encoders.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"Encode":      true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		suppressed := analysis.CommentDirectives(file, pass.Fset, Directive)
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if analysis.Suppressed(suppressed, pass.Fset, rng.Pos()) {
				return true
			}
			if pos, what := findEmit(pass, rng.Body); pos.IsValid() {
				pass.Reportf(rng.Pos(), "maporder: map iteration emits output (%s) in randomized order; collect and sort the keys first, or annotate //anclint:sorted if order-independent", what)
			}
			return true
		})
	}
	return nil
}

// findEmit returns the position and description of the first
// output-emitting operation in the loop body, or (NoPos, "").
func findEmit(pass *analysis.Pass, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if p, w := emittingCall(pass, n); p.IsValid() {
				pos, what = p, w
				return false
			}
		case *ast.AssignStmt:
			// buf = append(buf, ...) growing a byte slice: an encoding
			// buffer assembled in map order.
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !analysis.IsBuiltin(pass.TypesInfo, call, "append") {
					continue
				}
				if isByteSlice(pass.TypesInfo.TypeOf(call)) {
					pos, what = call.Pos(), "append to []byte encoding buffer"
					return false
				}
			}
		}
		return true
	})
	return pos, what
}

// emittingCall classifies one call as output-emitting or not.
func emittingCall(pass *analysis.Pass, call *ast.CallExpr) (token.Pos, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return token.NoPos, ""
	}
	if pkgPath, name := analysis.PkgFuncOf(pass.TypesInfo, sel); pkgPath == "fmt" {
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return call.Pos(), "fmt." + name
		}
		return token.NoPos, ""
	}
	// A method call: only writer-shaped names count, and only when the
	// receiver is a real value (not a package qualifier, handled above).
	if writerMethods[sel.Sel.Name] {
		if selInfo, ok := pass.TypesInfo.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			return call.Pos(), "method " + sel.Sel.Name
		}
	}
	return token.NoPos, ""
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
