package msk

import (
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

// The Into variants must be bit-identical to their allocating twins and,
// once dst and scratch have grown, allocation free — that is the contract
// the zero-allocation decode pipeline rests on.

func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, sps := range []int{1, 2, 4, 7} {
		m := New(WithSamplesPerSymbol(sps))
		in := randomBits(rng, 301)
		sig := m.Modulate(in)
		// Perturb the signal so MLSE decisions are non-trivial.
		noisy := dsp.NewNoiseSource(1e-2, int64(sps)).AddTo(sig)

		var scratch dsp.Scratch
		got := m.DemodulateInto(&scratch, nil, noisy)
		want := m.Demodulate(noisy)
		if len(got) != len(want) {
			t.Fatalf("sps=%d: DemodulateInto returned %d bits, Demodulate %d", sps, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sps=%d: DemodulateInto bit %d = %d, Demodulate %d", sps, i, got[i], want[i])
			}
		}

		diffs := m.PhaseDiffs(in)
		diffsInto := m.PhaseDiffsInto(make([]float64, 0, 8), in)
		if len(diffs) != len(diffsInto) {
			t.Fatalf("sps=%d: PhaseDiffsInto length %d != %d", sps, len(diffsInto), len(diffs))
		}
		for i := range diffs {
			if diffs[i] != diffsInto[i] {
				t.Fatalf("sps=%d: PhaseDiffsInto[%d] = %v != %v", sps, i, diffsInto[i], diffs[i])
			}
		}

		weights := make([]float64, len(diffs))
		for i := range weights {
			weights[i] = rng.Float64()
		}
		dec := m.DecideDiffs(diffs, weights)
		decInto := m.DecideDiffsInto(make([]byte, 1), diffs, weights)
		if len(dec) != len(decInto) {
			t.Fatalf("sps=%d: DecideDiffsInto length %d != %d", sps, len(decInto), len(dec))
		}
		for i := range dec {
			if dec[i] != decInto[i] {
				t.Fatalf("sps=%d: DecideDiffsInto[%d] = %d != %d", sps, i, decInto[i], dec[i])
			}
		}
	}
}

func TestIntoVariantsSteadyStateAllocFree(t *testing.T) {
	for _, sps := range []int{1, 4} {
		m := New(WithSamplesPerSymbol(sps))
		in := randomBits(rand.New(rand.NewSource(8)), 512)
		sig := m.Modulate(in)

		var scratch dsp.Scratch
		dst := m.DemodulateInto(&scratch, nil, sig) // grow dst and scratch
		if allocs := testing.AllocsPerRun(20, func() {
			dst = m.DemodulateInto(&scratch, dst, sig)
		}); allocs != 0 {
			t.Errorf("sps=%d: DemodulateInto allocates %.1f objects/op after warmup", sps, allocs)
		}

		diffs := m.PhaseDiffsInto(nil, in)
		if allocs := testing.AllocsPerRun(20, func() {
			diffs = m.PhaseDiffsInto(diffs, in)
		}); allocs != 0 {
			t.Errorf("sps=%d: PhaseDiffsInto allocates %.1f objects/op after warmup", sps, allocs)
		}

		bitsOut := m.DecideDiffsInto(nil, diffs, nil)
		if allocs := testing.AllocsPerRun(20, func() {
			bitsOut = m.DecideDiffsInto(bitsOut, diffs, nil)
		}); allocs != 0 {
			t.Errorf("sps=%d: DecideDiffsInto allocates %.1f objects/op after warmup", sps, allocs)
		}
	}
}
