package msk

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/dsp"
)

func randomBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

func TestModulateDemodulateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sps := range []int{1, 2, 4, 8} {
		m := New(WithSamplesPerSymbol(sps))
		for trial := 0; trial < 20; trial++ {
			in := randomBits(rng, 1+rng.Intn(500))
			got := m.Demodulate(m.Modulate(in))
			if !bits.Equal(in, got) {
				t.Fatalf("sps=%d trial=%d: round trip failed", sps, trial)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	m := New()
	f := func(data []byte) bool {
		in := make([]byte, len(data))
		for i, d := range data {
			in[i] = d & 1
		}
		return bits.Equal(in, m.Demodulate(m.Modulate(in)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstantEnvelope(t *testing.T) {
	// §5.2: the amplitude of the transmitted MSK signal is constant. This
	// property is what the §7.1 interference detector depends on.
	m := New(WithAmplitude(2.5))
	s := m.Modulate(randomBits(rand.New(rand.NewSource(2)), 300))
	for i, v := range s {
		if math.Abs(cmplx.Abs(v)-2.5) > 1e-9 {
			t.Fatalf("sample %d magnitude %v, want 2.5", i, cmplx.Abs(v))
		}
	}
}

func TestChannelInvariance(t *testing.T) {
	// Eq. 1: demodulation is invariant to attenuation h and phase shift γ.
	m := New()
	in := randomBits(rand.New(rand.NewSource(3)), 256)
	tx := m.Modulate(in)
	h := complex(0.173, 0) * cmplx.Exp(complex(0, 2.4))
	rx := tx.Scale(h)
	if !bits.Equal(in, m.Demodulate(rx)) {
		t.Error("demodulation not invariant to channel gain/phase")
	}
}

func TestDemodulateUnderNoise(t *testing.T) {
	// At 15 dB SNR (well below the 20–40 dB the paper says practical
	// systems use) a clean MSK link should be essentially error free.
	m := New()
	in := randomBits(rand.New(rand.NewSource(4)), 2000)
	tx := m.Modulate(in)
	ns := dsp.NewNoiseSource(dsp.FromDB(-15), 5) // signal power 1
	got := m.Demodulate(ns.AddTo(tx))
	if ber := bits.BER(in, got); ber > 0.001 {
		t.Errorf("BER at 15 dB = %v, want ~0", ber)
	}
}

func TestOversamplingSNRGain(t *testing.T) {
	// At a bruising 0 dB per-sample SNR, sps=8 must beat sps=1 clearly.
	rng := rand.New(rand.NewSource(6))
	in := randomBits(rng, 4000)
	berFor := func(sps int, seed int64) float64 {
		m := New(WithSamplesPerSymbol(sps))
		tx := m.Modulate(in)
		ns := dsp.NewNoiseSource(1, seed)
		return bits.BER(in, m.Demodulate(ns.AddTo(tx)))
	}
	b1 := berFor(1, 7)
	b8 := berFor(8, 8)
	if b8 >= b1/2 {
		t.Errorf("oversampling gain missing: sps=1 BER %v, sps=8 BER %v", b1, b8)
	}
}

func TestPhaseTrajectoryFig3(t *testing.T) {
	// Fig. 3: data 1010111000 produces the staircase
	// 0, π/2, 0, π/2, 0, π/2, π, 3π/2, π, π/2, 0.
	m := New()
	data := []byte{1, 0, 1, 0, 1, 1, 1, 0, 0, 0}
	want := []float64{0, 1, 0, 1, 0, 1, 2, 3, 2, 1, 0} // units of π/2
	got := m.PhaseTrajectory(data)
	if len(got) != len(want) {
		t.Fatalf("trajectory length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]*math.Pi/2) > 1e-12 {
			t.Errorf("trajectory[%d] = %v, want %vπ/2", i, got[i], want[i])
		}
	}
}

func TestModulatedPhaseMatchesTrajectory(t *testing.T) {
	// The actual signal's phase at symbol boundaries must equal the
	// trajectory (mod 2π).
	m := New(WithSamplesPerSymbol(3))
	data := []byte{1, 1, 0, 1, 0, 0}
	s := m.Modulate(data)
	traj := m.PhaseTrajectory(data)
	for i := range traj {
		samplePhase := cmplx.Phase(s[i*3])
		if math.Abs(dsp.WrapPhase(samplePhase-traj[i])) > 1e-9 {
			t.Errorf("boundary %d: signal phase %v, trajectory %v", i, samplePhase, traj[i])
		}
	}
}

func TestNumSamplesNumBits(t *testing.T) {
	m := New(WithSamplesPerSymbol(4))
	if got := m.NumSamples(10); got != 41 {
		t.Errorf("NumSamples(10) = %d, want 41", got)
	}
	if got := m.NumBits(41); got != 10 {
		t.Errorf("NumBits(41) = %d, want 10", got)
	}
	if got := m.NumBits(0); got != 0 {
		t.Errorf("NumBits(0) = %d", got)
	}
	if got := m.NumBits(1); got != 0 {
		t.Errorf("NumBits(1) = %d", got)
	}
	// Partial trailing symbol is not decoded.
	if got := m.NumBits(44); got != 10 {
		t.Errorf("NumBits(44) = %d, want 10", got)
	}
}

func TestSoftDemodulateMagnitude(t *testing.T) {
	// Noise-free soft outputs are exactly ±π/2.
	m := New()
	in := []byte{1, 0, 1}
	soft := m.SoftDemodulate(m.Modulate(in))
	want := []float64{math.Pi / 2, -math.Pi / 2, math.Pi / 2}
	for i := range want {
		if math.Abs(soft[i]-want[i]) > 1e-9 {
			t.Errorf("soft[%d] = %v, want %v", i, soft[i], want[i])
		}
	}
}

func TestPhaseDiffsSumPerSymbol(t *testing.T) {
	m := New(WithSamplesPerSymbol(5))
	in := []byte{1, 0}
	diffs := m.PhaseDiffs(in)
	if len(diffs) != 10 {
		t.Fatalf("len = %d, want 10", len(diffs))
	}
	var sum1, sum0 float64
	for _, d := range diffs[:5] {
		sum1 += d
	}
	for _, d := range diffs[5:] {
		sum0 += d
	}
	if math.Abs(sum1-math.Pi/2) > 1e-12 || math.Abs(sum0+math.Pi/2) > 1e-12 {
		t.Errorf("per-symbol sums %v, %v, want ±π/2", sum1, sum0)
	}
}

func TestModulateEmpty(t *testing.T) {
	m := New()
	s := m.Modulate(nil)
	if len(s) != 1 {
		t.Errorf("empty modulation length %d, want 1 (reference sample)", len(s))
	}
	if got := m.Demodulate(s); len(got) != 0 {
		t.Errorf("demodulated empty = %v", got)
	}
}

func TestNewValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"sps 0":        func() { New(WithSamplesPerSymbol(0)) },
		"amplitude 0":  func() { New(WithAmplitude(0)) },
		"amplitude <0": func() { New(WithAmplitude(-1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSignalPowerEqualsAmplitudeSquared(t *testing.T) {
	m := New(WithAmplitude(3))
	s := m.Modulate(randomBits(rand.New(rand.NewSource(9)), 100))
	if math.Abs(s.Power()-9) > 1e-9 {
		t.Errorf("power = %v, want 9", s.Power())
	}
}

func TestDecideDiffsMatchesDemodulation(t *testing.T) {
	// On clean per-sample diffs, DecideDiffs must reproduce the bits.
	m := New()
	in := randomBits(rand.New(rand.NewSource(20)), 300)
	got := m.DecideDiffs(m.PhaseDiffs(in), nil)
	if !bits.Equal(in, got) {
		t.Error("DecideDiffs on clean diffs failed")
	}
}

func TestDecideDiffsWeights(t *testing.T) {
	// A corrupted sample with near-zero weight must not flip the symbol.
	m := New(WithSamplesPerSymbol(4))
	in := []byte{1}
	diffs := m.PhaseDiffs(in)
	weights := []float64{1, 1, 1, 1}
	diffs[2] = -math.Pi // corrupted estimate
	weights[2] = 0.01   // ...flagged as ill-conditioned
	if got := m.DecideDiffs(diffs, weights); got[0] != 1 {
		t.Error("down-weighted corruption flipped the symbol")
	}
	// Unweighted, the same corruption wins.
	if got := m.DecideDiffs(diffs, nil); got[0] != 0 {
		t.Skip("corruption magnitude insufficient for the control case")
	}
}

func TestStepPrior(t *testing.T) {
	m := New(WithSamplesPerSymbol(4))
	step := math.Pi / 8
	if got := m.StepPrior(step); got > 1e-12 {
		t.Errorf("StepPrior(+step) = %v", got)
	}
	if got := m.StepPrior(-step); got > 1e-12 {
		t.Errorf("StepPrior(−step) = %v", got)
	}
	if got := m.StepPrior(0); math.Abs(got-step) > 1e-12 {
		t.Errorf("StepPrior(0) = %v, want %v", got, step)
	}
	// Symmetric under sign change — must not bias bit decisions.
	for _, d := range []float64{0.3, 1.1, 2.9} {
		if math.Abs(m.StepPrior(d)-m.StepPrior(-d)) > 1e-12 {
			t.Errorf("StepPrior asymmetric at %v", d)
		}
	}
}

func TestBitsPerSymbol(t *testing.T) {
	if New().BitsPerSymbol() != 1 {
		t.Error("MSK carries one bit per symbol")
	}
}
