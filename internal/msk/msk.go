// Package msk implements the Minimum Shift Keying modem the paper builds
// ANC on (§4–§5). MSK is differential phase modulation: a "1" advances the
// carrier phase by +π/2 over one symbol interval T, a "0" retards it by
// π/2 (Fig. 3). The amplitude is constant; all information lives in phase
// differences, which is what makes both standard demodulation (Eq. 1) and
// the interference decoder robust to channel attenuation and phase shift.
//
// The modem supports oversampling: with S samples per symbol the phase
// advances ±π/(2S) per sample, so phase is continuous (true MSK) and the
// receiver compares samples S apart. The paper's exposition is the S=1
// special case.
package msk

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dsp"
)

// DefaultSamplesPerSymbol is the oversampling factor used throughout the
// repository unless an experiment overrides it.
const DefaultSamplesPerSymbol = 4

// PhaseStep is the per-symbol phase change magnitude (π/2).
const PhaseStep = math.Pi / 2

// Modem modulates bit slices into complex baseband signals and back.
// A Modem is stateless and safe for concurrent use.
type Modem struct {
	sps       int     // samples per symbol
	amplitude float64 // transmit amplitude As (§5.2: constant)
}

// Option configures a Modem.
type Option func(*Modem)

// WithSamplesPerSymbol sets the oversampling factor (must be ≥ 1).
func WithSamplesPerSymbol(s int) Option {
	return func(m *Modem) { m.sps = s }
}

// WithAmplitude sets the constant transmit amplitude As. The default is 1,
// i.e. unit transmit power.
func WithAmplitude(a float64) Option {
	return func(m *Modem) { m.amplitude = a }
}

// New returns a Modem with the given options applied over the defaults
// (4 samples/symbol, unit amplitude).
func New(opts ...Option) *Modem {
	m := &Modem{sps: DefaultSamplesPerSymbol, amplitude: 1}
	for _, o := range opts {
		o(m)
	}
	if m.sps < 1 {
		panic(fmt.Sprintf("msk: samples per symbol %d < 1", m.sps))
	}
	if m.amplitude <= 0 {
		panic(fmt.Sprintf("msk: non-positive amplitude %v", m.amplitude))
	}
	return m
}

// SamplesPerSymbol returns the oversampling factor.
func (m *Modem) SamplesPerSymbol() int { return m.sps }

// Amplitude returns the constant transmit amplitude.
func (m *Modem) Amplitude() float64 { return m.amplitude }

// NumSamples returns the signal length Modulate produces for n bits:
// one leading reference sample plus n·S samples of phase trajectory.
func (m *Modem) NumSamples(nbits int) int { return 1 + nbits*m.sps }

// NumBits returns how many whole symbols fit in a signal of n samples.
func (m *Modem) NumBits(nsamples int) int {
	if nsamples <= 1 {
		return 0
	}
	return (nsamples - 1) / m.sps
}

// Modulate maps a bit slice to its MSK baseband signal. The first sample
// is the phase reference As·e^{i0}; each subsequent bit contributes S
// samples whose phase advances by +π/(2S) per sample for a 1 and −π/(2S)
// for a 0 (continuous phase, Fig. 3).
func (m *Modem) Modulate(bs []byte) dsp.Signal {
	out := make(dsp.Signal, 0, m.NumSamples(len(bs)))
	phase := 0.0
	out = append(out, complex(m.amplitude, 0))
	step := PhaseStep / float64(m.sps)
	for _, b := range bs {
		d := -step
		if b&1 == 1 {
			d = step
		}
		for k := 0; k < m.sps; k++ {
			phase = dsp.WrapPhase(phase + d)
			out = append(out, complex(m.amplitude, 0)*cmplx.Exp(complex(0, phase)))
		}
	}
	return out
}

// PhaseTrajectory returns the cumulative phase (unwrapped, in radians) at
// each symbol boundary for the given bits, starting at 0. This is the
// staircase of Fig. 3 and exists mainly for examples and tests.
func (m *Modem) PhaseTrajectory(bs []byte) []float64 {
	out := make([]float64, len(bs)+1)
	for i, b := range bs {
		d := -PhaseStep
		if b&1 == 1 {
			d = PhaseStep
		}
		out[i+1] = out[i] + d
	}
	return out
}

// Demodulate recovers bits from a received signal. The decision rule is
// the differential rule of §5.3: the ratio of samples one symbol apart has
// angle θ[n+S]−θ[n]; positive means 1, negative means 0 (Eq. 1). The
// computation is invariant to the channel's attenuation h and phase shift γ.
//
// At one sample per symbol this is exactly the paper's demodulator. When
// oversampled (S > 1) Demodulate uses the textbook receiver for continuous
// phase modulation: a symbol-length matched filter (boxcar over each symbol
// interval) followed by maximum-likelihood sequence detection over the
// resulting partial-response phase differences, which recovers the
// oversampling SNR gain a naive per-sample detector forfeits.
func (m *Modem) Demodulate(s dsp.Signal) []byte {
	return m.DemodulateInto(nil, nil, s)
}

// DemodulateInto is Demodulate writing the recovered bits into dst's
// storage (grown when too small) and drawing internal working buffers —
// the matched-filter outputs and Viterbi back-pointers — from scratch, so
// a caller reusing both performs no allocation in steady state. A nil
// scratch uses a private one-shot arena. The returned slice is valid until
// the next call that reuses dst or scratch; the bit values are identical
// to Demodulate's.
//
//anc:hotpath
func (m *Modem) DemodulateInto(scratch *dsp.Scratch, dst []byte, s dsp.Signal) []byte {
	if scratch == nil {
		// One-shot arena for scratchless callers; the engine always
		// supplies a reused workspace scratch.
		scratch = &dsp.Scratch{} //anclint:coldstart
	}
	if m.sps == 1 {
		n := m.NumBits(len(s))
		out := dsp.GrowBytes(dst, n)
		soft := m.softDemodulateInto(scratch.Float64s(n), s)
		for i, d := range soft {
			if d >= 0 {
				out[i] = 1
			} else {
				out[i] = 0
			}
		}
		return out
	}
	return m.demodulateMLSE(scratch, dst, s)
}

// SoftDemodulate returns the per-symbol accumulated phase difference (in
// radians, nominally ±π/2). Values near 0 indicate low-confidence symbols.
// The per-sample differences telescope, so this carries no oversampling
// averaging gain; it exists for diagnostics and as the S=1 demodulator.
// Demodulate's MLSE path is the production detector for S > 1.
func (m *Modem) SoftDemodulate(s dsp.Signal) []float64 {
	return m.softDemodulateInto(make([]float64, m.NumBits(len(s))), s)
}

// softDemodulateInto fills out (whose length sets the symbol count) with
// the per-symbol accumulated phase differences.
//
//anc:hotpath
func (m *Modem) softDemodulateInto(out []float64, s dsp.Signal) []float64 {
	for i := range out {
		base := 1 + i*m.sps
		var acc float64
		for k := 0; k < m.sps; k++ {
			acc += dsp.PhaseDiff(s[base+k-1], s[base+k])
		}
		out[i] = acc
	}
	return out
}

// demodulateMLSE implements matched filtering plus 2-state Viterbi
// detection for oversampled MSK.
//
// Averaging the S samples of symbol i yields a point with phase
// traj(i) + d_i/2 (the mid-ramp phase), where d_i = ±π/2 is symbol i's
// phase step. Consecutive averaged points therefore differ in phase by
// (d_i + d_{i−1})/2 ∈ {−π/2, 0, +π/2}: full-symbol averaging turns MSK
// into a 3-level partial-response signal. A two-state Viterbi detector
// (state = previous bit) resolves it optimally; the branch metric is the
// squared wrapped distance between the observed and hypothesized phase
// difference.
//
//anc:hotpath
func (m *Modem) demodulateMLSE(scratch *dsp.Scratch, dst []byte, s dsp.Signal) []byte {
	n := m.NumBits(len(s))
	if n == 0 {
		// Empty result, but keep dst's storage: callers stash the return
		// back into their reuse slot, and a nil here would leak the
		// retained buffer and re-allocate on the next full-size call.
		return dst[:0]
	}
	// g[i] = sum of symbol i's samples (indices i·S+1 .. (i+1)·S).
	g := dsp.BoxcarSymbolsInto(scratch.Complex128s(n), s, m.sps)
	steps := [2]float64{-PhaseStep, PhaseStep}

	// The detector derives its observations from g on the fly: the first
	// is measured against the reference sample s[0] (phase traj(0)), so
	// it hypothesizes d_0/2 = ±π/4; later ones are inter-symbol
	// differences hypothesizing (d_i + d_{i−1})/2.
	// back[2i+b] is the surviving predecessor state of state b at symbol i.
	back := scratch.Bytes(2 * n)
	return dsp.ViterbiHalfStep(back, dsp.GrowBytes(dst, n), s[0], g, steps)
}

// DemodulateBatchInto demodulates a batch of signal views in one call,
// writing view i's recovered bits into dsts[i]'s storage (the slot slice
// is grown to len(sigs), retained slot buffers are reused). All views
// share scratch's internal buffers — sized once for the largest view —
// while every dst slot keeps its own storage, so the whole batch of
// results remains valid simultaneously; that is the property the
// decoder's clean-head sub-symbol search relies on. Bit values are
// identical to per-view DemodulateInto calls.
//
//anc:hotpath
func (m *Modem) DemodulateBatchInto(scratch *dsp.Scratch, dsts [][]byte, sigs []dsp.Signal) [][]byte {
	dsts = dsp.GrowByteSlices(dsts, len(sigs))
	if scratch != nil {
		// Pre-size the shared working buffers to the largest view so the
		// per-view borrows below never re-check capacity mid-batch.
		maxN := 0
		for _, s := range sigs {
			if n := m.NumBits(len(s)); n > maxN {
				maxN = n
			}
		}
		scratch.Complex128s(maxN)
		scratch.Bytes(2 * maxN)
	}
	for i, s := range sigs {
		dsts[i] = m.DemodulateInto(scratch, dsts[i], s)
	}
	return dsts
}

// PhaseDiffs returns the transmitted per-sample phase differences
// ∆θs[n] = θs[n+1]−θs[n] for a bit slice: +π/(2S) for each sample of a 1
// symbol, −π/(2S) for a 0. The interference decoder matches these known
// differences against its four candidates (Eq. 8). The slice has one entry
// per generated sample transition, i.e. len(bs)·S entries.
func (m *Modem) PhaseDiffs(bs []byte) []float64 {
	return m.PhaseDiffsInto(nil, bs)
}

// PhaseDiffsInto is PhaseDiffs writing into dst's storage (grown when too
// small).
//
//anc:hotpath
func (m *Modem) PhaseDiffsInto(dst []float64, bs []byte) []float64 {
	dst = dsp.GrowFloats(dst, len(bs)*m.sps)
	step := PhaseStep / float64(m.sps)
	i := 0
	for _, b := range bs {
		d := -step
		if b&1 == 1 {
			d = step
		}
		for k := 0; k < m.sps; k++ {
			dst[i] = d
			i++
		}
	}
	return dst
}

// BitsPerSymbol returns 1: MSK carries one bit per symbol interval.
func (m *Modem) BitsPerSymbol() int { return 1 }

// DecideDiffs maps recovered per-sample phase-difference estimates back
// to bits (§6.4): each symbol's S estimates are summed, weighted by their
// confidence, and the sign decides. Entry 0 of diffs corresponds to the
// frame's first sample transition.
func (m *Modem) DecideDiffs(diffs, weights []float64) []byte {
	return m.DecideDiffsInto(nil, diffs, weights)
}

// DecideDiffsInto is DecideDiffs writing into dst's storage (grown when
// too small). The decoder's pilot-alignment search calls it once per
// candidate offset, so buffer reuse here is what makes alignment
// allocation free.
//
//anc:hotpath
func (m *Modem) DecideDiffsInto(dst []byte, diffs, weights []float64) []byte {
	n := len(diffs) / m.sps
	out := dsp.GrowBytes(dst, n)
	for j := 0; j < n; j++ {
		var acc float64
		base := j * m.sps
		for k := 0; k < m.sps; k++ {
			w := 1.0
			if weights != nil {
				w = weights[base+k]
			}
			acc += w * diffs[base+k]
		}
		if acc >= 0 {
			out[j] = 1
		} else {
			out[j] = 0
		}
	}
	return out
}

// BackwardRefOffset returns 0: MSK phase is continuous, so the reference
// the demodulator locks onto in a conjugate time-reversed stream
// coincides with the origin of the reversed difference sequence (§7.4).
func (m *Modem) BackwardRefOffset() int { return 0 }

// StepPrior returns the wrapped distance from dphi to the nearest legal
// MSK per-sample step (±π/(2S)).
func (m *Modem) StepPrior(dphi float64) float64 {
	step := PhaseStep / float64(m.sps)
	a := math.Abs(dsp.WrapPhase(dphi - step))
	b := math.Abs(dsp.WrapPhase(dphi + step))
	if a < b {
		return a
	}
	return b
}
