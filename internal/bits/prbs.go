package bits

// PRBS is a pseudo-random binary sequence generator built on a Fibonacci
// linear-feedback shift register. The ANC stack uses it in two places:
//
//   - Whitening (§6.2): payload bits are XORed with a PRBS at the sender and
//     again at the receiver so that E[cos(θ−φ)] ≈ 0 holds even for
//     pathological payloads (long runs of equal bits), which the amplitude
//     estimator depends on.
//   - Pilot generation (§7.2): the 64-bit pilot attached to both ends of
//     every frame is a fixed pseudo-random sequence known network-wide.
//
// The polynomial is x^31 + x^28 + 1 (PRBS-31), full period 2^31−1.
type PRBS struct {
	state uint32
}

// NewPRBS returns a generator seeded with the given value. A zero seed is
// replaced with 1 because the all-zero LFSR state is absorbing.
func NewPRBS(seed uint32) *PRBS {
	if seed == 0 {
		seed = 1
	}
	return &PRBS{state: seed & 0x7FFFFFFF}
}

// Next returns the next bit (0 or 1) of the sequence.
func (p *PRBS) Next() byte {
	// Taps at bits 31 and 28 (1-indexed), i.e. indices 30 and 27.
	newBit := ((p.state >> 30) ^ (p.state >> 27)) & 1
	p.state = ((p.state << 1) | newBit) & 0x7FFFFFFF
	return byte(newBit)
}

// Bits returns the next n bits of the sequence.
func (p *PRBS) Bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = p.Next()
	}
	return out
}

// WhitenSeed is the network-wide seed both ends of a link use for payload
// whitening. Any nonzero value works; it is a protocol constant, not a
// secret.
const WhitenSeed uint32 = 0x1ACFFC1D

// Whiten XORs bs with the PRBS stream from seed and returns the result.
// Whitening is an involution: Whiten(Whiten(x, s), s) == x.
func Whiten(bs []byte, seed uint32) []byte {
	p := NewPRBS(seed)
	out := make([]byte, len(bs))
	for i, b := range bs {
		out[i] = (b ^ p.Next()) & 1
	}
	return out
}

// PilotSeed seeds the 64-bit pilot sequence of §7.2. Like WhitenSeed it is
// a protocol constant shared by every node.
const PilotSeed uint32 = 0x2545F491

// PilotLength is the pilot length in bits used by the paper (§7.2).
const PilotLength = 64

// Pilot returns the n-bit network-wide pilot sequence.
func Pilot(n int) []byte {
	return NewPRBS(PilotSeed).Bits(n)
}
