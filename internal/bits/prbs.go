package bits

// PRBS is a pseudo-random binary sequence generator built on a Fibonacci
// linear-feedback shift register. The ANC stack uses it in two places:
//
//   - Whitening (§6.2): payload bits are XORed with a PRBS at the sender and
//     again at the receiver so that E[cos(θ−φ)] ≈ 0 holds even for
//     pathological payloads (long runs of equal bits), which the amplitude
//     estimator depends on.
//   - Pilot generation (§7.2): the 64-bit pilot attached to both ends of
//     every frame is a fixed pseudo-random sequence known network-wide.
//
// The polynomial is x^31 + x^28 + 1 (PRBS-31), full period 2^31−1.
type PRBS struct {
	state uint32
}

// NewPRBS returns a generator seeded with the given value. A zero seed is
// replaced with 1 because the all-zero LFSR state is absorbing.
func NewPRBS(seed uint32) *PRBS {
	return &PRBS{state: seedState(seed)}
}

// Next returns the next bit (0 or 1) of the sequence.
func (p *PRBS) Next() byte {
	// Taps at bits 31 and 28 (1-indexed), i.e. indices 30 and 27.
	newBit := ((p.state >> 30) ^ (p.state >> 27)) & 1
	p.state = ((p.state << 1) | newBit) & 0x7FFFFFFF
	return byte(newBit)
}

// Bits returns the next n bits of the sequence.
func (p *PRBS) Bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = p.Next()
	}
	return out
}

// WhitenSeed is the network-wide seed both ends of a link use for payload
// whitening. Any nonzero value works; it is a protocol constant, not a
// secret.
const WhitenSeed uint32 = 0x1ACFFC1D

// Whiten XORs bs with the PRBS stream from seed and returns the result.
// Whitening is an involution: Whiten(Whiten(x, s), s) == x.
func Whiten(bs []byte, seed uint32) []byte {
	return WhitenTo(make([]byte, len(bs)), bs, seed)
}

// WhitenTo is Whiten writing into dst, which must hold at least len(bs)
// entries; it returns dst trimmed to the output. dst may alias bs, so
// WhitenTo(bs, bs, seed) whitens in place.
func WhitenTo(dst, bs []byte, seed uint32) []byte {
	p := PRBS{state: seedState(seed)}
	for i, b := range bs {
		dst[i] = (b ^ p.Next()) & 1
	}
	return dst[:len(bs)]
}

// seedState maps a seed to the LFSR state NewPRBS would start from.
func seedState(seed uint32) uint32 {
	if seed == 0 {
		seed = 1
	}
	return seed & 0x7FFFFFFF
}

// PilotSeed seeds the 64-bit pilot sequence of §7.2. Like WhitenSeed it is
// a protocol constant shared by every node.
const PilotSeed uint32 = 0x2545F491

// PilotLength is the pilot length in bits used by the paper (§7.2).
const PilotLength = 64

// Pilot returns the n-bit network-wide pilot sequence.
func Pilot(n int) []byte {
	return NewPRBS(PilotSeed).Bits(n)
}
