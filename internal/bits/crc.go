package bits

// CRC16 computes the CRC-16/CCITT-FALSE checksum of a bit slice, processing
// one bit at a time. Frames carry this checksum over the header and payload
// so the deframer can reject packets the demodulator got wrong; the BER
// experiments intentionally bypass it (they measure raw errors).
//
// Polynomial x^16 + x^12 + x^5 + 1 (0x1021), initial value 0xFFFF.
func CRC16(bs []byte) uint16 {
	var crc uint16 = 0xFFFF
	for _, b := range bs {
		in := uint16(b&1) << 15
		if (crc^in)&0x8000 != 0 {
			crc = crc<<1 ^ 0x1021
		} else {
			crc <<= 1
		}
	}
	return crc
}

// CheckCRC16 verifies that bs ends with the CRC16 of its prefix. It returns
// the prefix (payload without the 16 checksum bits) and whether the check
// passed. Slices shorter than 16 bits always fail.
func CheckCRC16(bs []byte) ([]byte, bool) {
	if len(bs) < 16 {
		return nil, false
	}
	body := bs[:len(bs)-16]
	want := ToUint16(bs[len(bs)-16:])
	return body, CRC16(body) == want
}

// AppendCRC16 returns bs followed by its 16-bit checksum.
func AppendCRC16(bs []byte) []byte {
	out := make([]byte, 0, len(bs)+16)
	out = append(out, bs...)
	return append(out, FromUint16(CRC16(bs))...)
}
