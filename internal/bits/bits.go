// Package bits provides bit-slice utilities shared by the ANC stack:
// packing and unpacking between bytes and bit slices, pseudo-random bit
// sequences (whitening per §6.2 of the paper and pilot generation per §7.2),
// CRC-16 integrity checks, and bit-error accounting.
//
// Throughout the module a "bit slice" is a []byte whose elements are 0 or 1,
// one bit per element. This representation trades memory for clarity: the
// modem and the interference decoder operate bit-by-bit, and profiling shows
// the per-sample complex arithmetic dominates end to end.
package bits

import "fmt"

// FromBytes expands packed bytes into a bit slice, most significant bit
// first. The result has len(data)*8 elements, each 0 or 1.
func FromBytes(data []byte) []byte {
	out := make([]byte, len(data)*8)
	PutBytes(out, data)
	return out
}

// PutBytes writes the bits of data MSB-first into dst, which must hold at
// least len(data)*8 entries.
func PutBytes(dst []byte, data []byte) {
	for j, b := range data {
		for i := 0; i < 8; i++ {
			dst[j*8+i] = (b >> uint(7-i)) & 1
		}
	}
}

// ToBytes packs a bit slice (MSB first) into bytes. The bit slice length
// must be a multiple of 8; ToBytes returns an error otherwise so framing
// bugs surface at the call site rather than as silent truncation.
func ToBytes(bs []byte) ([]byte, error) {
	if len(bs)%8 != 0 {
		return nil, fmt.Errorf("bits: length %d is not a multiple of 8", len(bs))
	}
	out := make([]byte, len(bs)/8)
	for i, b := range bs {
		if b > 1 {
			return nil, fmt.Errorf("bits: element %d has non-binary value %d", i, b)
		}
		out[i/8] |= b << uint(7-i%8)
	}
	return out, nil
}

// MustToBytes is ToBytes for callers that construct the slice themselves
// and can guarantee its shape; it panics on malformed input.
func MustToBytes(bs []byte) []byte {
	out, err := ToBytes(bs)
	if err != nil {
		panic(err)
	}
	return out
}

// FromUint16 returns the 16 bits of v, MSB first.
func FromUint16(v uint16) []byte {
	out := make([]byte, 16)
	PutUint16(out, v)
	return out
}

// PutUint16 writes v's 16 bits MSB-first into dst.
func PutUint16(dst []byte, v uint16) {
	for i := 0; i < 16; i++ {
		dst[i] = byte(v>>uint(15-i)) & 1
	}
}

// ToUint16 interprets the first 16 elements of bs (MSB first) as a uint16.
// It panics if bs has fewer than 16 elements.
func ToUint16(bs []byte) uint16 {
	var v uint16
	for i := 0; i < 16; i++ {
		v = v<<1 | uint16(bs[i]&1)
	}
	return v
}

// FromUint32 returns the 32 bits of v, MSB first.
func FromUint32(v uint32) []byte {
	out := make([]byte, 32)
	PutUint32(out, v)
	return out
}

// PutUint32 writes v's 32 bits MSB-first into dst.
func PutUint32(dst []byte, v uint32) {
	for i := 0; i < 32; i++ {
		dst[i] = byte(v>>uint(31-i)) & 1
	}
}

// ToUint32 interprets the first 32 elements of bs (MSB first) as a uint32.
// It panics if bs has fewer than 32 elements.
func ToUint32(bs []byte) uint32 {
	var v uint32
	for i := 0; i < 32; i++ {
		v = v<<1 | uint32(bs[i]&1)
	}
	return v
}

// Xor returns the element-wise XOR of equal-length bit slices a and b.
// It panics if the lengths differ: XOR-combining packets of different sizes
// is a framing error in the COPE baseline, never a recoverable condition.
func Xor(a, b []byte) []byte {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bits: xor length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = (a[i] ^ b[i]) & 1
	}
	return out
}

// Reverse returns a new bit slice with the elements of bs in reverse order.
// Bob's backward decoding (§7.4) reverses both samples and recovered bits.
func Reverse(bs []byte) []byte {
	out := make([]byte, len(bs))
	for i, b := range bs {
		out[len(bs)-1-i] = b
	}
	return out
}

// ReverseInPlace reverses bs in place and returns it.
func ReverseInPlace(bs []byte) []byte {
	for i, j := 0, len(bs)-1; i < j; i, j = i+1, j-1 {
		bs[i], bs[j] = bs[j], bs[i]
	}
	return bs
}

// ReverseGroupsInPlace reverses bs in units of group consecutive elements,
// preserving the order within each group, and returns bs. With group = 1
// it is ReverseInPlace. This is the bit-domain image of reading a frame
// off a time-reversed signal with a multi-bit-per-symbol modem: symbols
// come back in reverse order, but each symbol still decodes to its bits
// in transmit order (§7.4 generalized beyond 1 bit/symbol).
//
// The length must be a multiple of group; a remainder is a framing bug
// and panics rather than silently mis-splitting symbols.
func ReverseGroupsInPlace(bs []byte, group int) []byte {
	if group <= 1 {
		return ReverseInPlace(bs)
	}
	if len(bs)%group != 0 {
		panic(fmt.Sprintf("bits: length %d is not a multiple of group %d", len(bs), group))
	}
	for i, j := 0, len(bs)-group; i < j; i, j = i+group, j-group {
		for k := 0; k < group; k++ {
			bs[i+k], bs[j+k] = bs[j+k], bs[i+k]
		}
	}
	return bs
}

// Equal reports whether two bit slices are identical in length and content.
func Equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HammingDistance counts positions where a and b differ. Slices must have
// equal length.
func HammingDistance(a, b []byte) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bits: hamming distance length mismatch %d != %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// BER returns the bit error rate between a transmitted and received bit
// slice: HammingDistance / length. If the received slice is shorter (e.g. a
// truncated decode) the missing tail counts as errors, matching how the
// paper's evaluation charges undelivered bits.
func BER(sent, got []byte) float64 {
	if len(sent) == 0 {
		return 0
	}
	n := len(got)
	if n > len(sent) {
		n = len(sent)
	}
	errs := len(sent) - n // missing bits count as errors
	for i := 0; i < n; i++ {
		if sent[i] != got[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(sent))
}

// OnesCount returns the number of 1 bits in bs.
func OnesCount(bs []byte) int {
	n := 0
	for _, b := range bs {
		if b&1 == 1 {
			n++
		}
	}
	return n
}
