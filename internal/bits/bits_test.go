package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromBytesToBytesRoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		{0x00},
		{0xFF},
		{0xA5, 0x5A},
		{0x01, 0x80, 0x7F, 0xFE},
	}
	for _, c := range cases {
		got, err := ToBytes(FromBytes(c))
		if err != nil {
			t.Fatalf("ToBytes(FromBytes(%x)): %v", c, err)
		}
		if string(got) != string(c) {
			t.Errorf("round trip %x -> %x", c, got)
		}
	}
}

func TestFromBytesMSBFirst(t *testing.T) {
	got := FromBytes([]byte{0x80})
	want := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	if !Equal(got, want) {
		t.Errorf("FromBytes(0x80) = %v, want %v", got, want)
	}
	got = FromBytes([]byte{0x01})
	want = []byte{0, 0, 0, 0, 0, 0, 0, 1}
	if !Equal(got, want) {
		t.Errorf("FromBytes(0x01) = %v, want %v", got, want)
	}
}

func TestToBytesRejectsBadLength(t *testing.T) {
	if _, err := ToBytes([]byte{1, 0, 1}); err == nil {
		t.Error("ToBytes accepted length 3")
	}
}

func TestToBytesRejectsNonBinary(t *testing.T) {
	if _, err := ToBytes([]byte{1, 0, 1, 0, 1, 0, 1, 2}); err == nil {
		t.Error("ToBytes accepted element value 2")
	}
}

func TestMustToBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustToBytes did not panic on bad length")
		}
	}()
	MustToBytes([]byte{1})
}

func TestUint16RoundTrip(t *testing.T) {
	f := func(v uint16) bool { return ToUint16(FromUint16(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool { return ToUint32(FromUint32(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomBits(rng, 257)
	b := randomBits(rng, 257)
	if !Equal(Xor(Xor(a, b), b), a) {
		t.Error("xor(xor(a,b),b) != a")
	}
}

func TestXorPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Xor did not panic on mismatched lengths")
		}
	}()
	Xor([]byte{1}, []byte{1, 0})
}

func TestReverse(t *testing.T) {
	in := []byte{1, 1, 0, 1, 0}
	want := []byte{0, 1, 0, 1, 1}
	if got := Reverse(in); !Equal(got, want) {
		t.Errorf("Reverse(%v) = %v, want %v", in, got, want)
	}
	if !Equal(Reverse(Reverse(in)), in) {
		t.Error("Reverse is not an involution")
	}
	if got := Reverse(nil); len(got) != 0 {
		t.Errorf("Reverse(nil) = %v, want empty", got)
	}
}

func TestReverseGroupsInPlace(t *testing.T) {
	// Pairs swap as units, order inside each pair preserved.
	in := []byte{1, 1, 0, 1, 0, 0}
	want := []byte{0, 0, 0, 1, 1, 1}
	if got := ReverseGroupsInPlace(append([]byte(nil), in...), 2); !Equal(got, want) {
		t.Errorf("ReverseGroupsInPlace(%v, 2) = %v, want %v", in, got, want)
	}
	// Group 1 is plain reversal.
	if got := ReverseGroupsInPlace(append([]byte(nil), in...), 1); !Equal(got, Reverse(in)) {
		t.Errorf("group 1 = %v, want %v", got, Reverse(in))
	}
	// Involution at any group size.
	for _, g := range []int{1, 2, 3, 6} {
		twice := ReverseGroupsInPlace(ReverseGroupsInPlace(append([]byte(nil), in...), g), g)
		if !Equal(twice, in) {
			t.Errorf("group %d: double reverse = %v, want %v", g, twice, in)
		}
	}
	// A single whole group is a no-op.
	if got := ReverseGroupsInPlace(append([]byte(nil), in...), 6); !Equal(got, in) {
		t.Errorf("whole-slice group changed order: %v", got)
	}
}

func TestReverseGroupsInPlacePanicsOnRemainder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length 5 with group 2 did not panic")
		}
	}()
	ReverseGroupsInPlace(make([]byte, 5), 2)
}

func TestHammingDistance(t *testing.T) {
	a := []byte{1, 0, 1, 0}
	b := []byte{1, 1, 1, 1}
	if d := HammingDistance(a, b); d != 2 {
		t.Errorf("HammingDistance = %d, want 2", d)
	}
	if d := HammingDistance(a, a); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
}

func TestBER(t *testing.T) {
	sent := []byte{1, 0, 1, 0}
	if got := BER(sent, sent); got != 0 {
		t.Errorf("BER identical = %v, want 0", got)
	}
	if got := BER(sent, []byte{0, 1, 0, 1}); got != 1 {
		t.Errorf("BER inverted = %v, want 1", got)
	}
	// Truncated decode: missing bits count as errors.
	if got := BER(sent, []byte{1, 0}); got != 0.5 {
		t.Errorf("BER truncated = %v, want 0.5", got)
	}
	// Longer decode than sent: extra bits ignored.
	if got := BER(sent, []byte{1, 0, 1, 0, 1, 1}); got != 0 {
		t.Errorf("BER overlong = %v, want 0", got)
	}
	if got := BER(nil, nil); got != 0 {
		t.Errorf("BER empty = %v, want 0", got)
	}
}

func TestOnesCount(t *testing.T) {
	if n := OnesCount([]byte{1, 0, 1, 1, 0}); n != 3 {
		t.Errorf("OnesCount = %d, want 3", n)
	}
}

func TestPRBSBalance(t *testing.T) {
	// A maximal-length LFSR output is balanced to within 1 bit over its
	// period; over 10k bits we expect ones fraction near 0.5.
	p := NewPRBS(42)
	bs := p.Bits(10000)
	frac := float64(OnesCount(bs)) / float64(len(bs))
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("PRBS ones fraction = %v, want ~0.5", frac)
	}
}

func TestPRBSDeterministic(t *testing.T) {
	a := NewPRBS(7).Bits(128)
	b := NewPRBS(7).Bits(128)
	if !Equal(a, b) {
		t.Error("PRBS with same seed produced different streams")
	}
	c := NewPRBS(8).Bits(128)
	if Equal(a, c) {
		t.Error("PRBS with different seeds produced identical streams")
	}
}

func TestPRBSZeroSeed(t *testing.T) {
	p := NewPRBS(0)
	bs := p.Bits(64)
	if OnesCount(bs) == 0 {
		t.Error("zero-seeded PRBS is stuck at zero")
	}
}

func TestPRBSNoShortCycle(t *testing.T) {
	// The state must not revisit its start within a modest horizon.
	p := NewPRBS(3)
	start := p.state
	for i := 0; i < 100000; i++ {
		p.Next()
		if p.state == start {
			t.Fatalf("PRBS cycled after %d steps", i+1)
		}
	}
}

func TestWhitenInvolution(t *testing.T) {
	f := func(data []byte, seed uint32) bool {
		bs := make([]byte, len(data))
		for i, d := range data {
			bs[i] = d & 1
		}
		return Equal(Whiten(Whiten(bs, seed), seed), bs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWhitenBreaksRuns(t *testing.T) {
	// All-zero payloads are the worst case for the amplitude estimator;
	// whitening must produce a near-balanced stream from them.
	zeros := make([]byte, 4096)
	w := Whiten(zeros, WhitenSeed)
	frac := float64(OnesCount(w)) / float64(len(w))
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("whitened zeros ones fraction = %v, want ~0.5", frac)
	}
}

func TestPilotStableAndBalanced(t *testing.T) {
	p1 := Pilot(PilotLength)
	p2 := Pilot(PilotLength)
	if !Equal(p1, p2) {
		t.Error("Pilot is not deterministic")
	}
	ones := OnesCount(p1)
	if ones < 20 || ones > 44 {
		t.Errorf("pilot ones = %d of %d, suspiciously unbalanced", ones, len(p1))
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	data := FromBytes([]byte("123456789"))
	if got := CRC16(data); got != 0x29B1 {
		t.Errorf("CRC16 = %#04x, want 0x29B1", got)
	}
}

func TestCRCAppendCheckRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		body := randomBits(rng, 1+rng.Intn(300))
		framed := AppendCRC16(body)
		got, ok := CheckCRC16(framed)
		if !ok {
			t.Fatalf("trial %d: valid CRC rejected", trial)
		}
		if !Equal(got, body) {
			t.Fatalf("trial %d: body mismatch", trial)
		}
	}
}

func TestCRCDetectsSingleBitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	body := randomBits(rng, 200)
	framed := AppendCRC16(body)
	for i := range framed {
		corrupt := append([]byte(nil), framed...)
		corrupt[i] ^= 1
		if _, ok := CheckCRC16(corrupt); ok {
			t.Fatalf("single-bit error at %d went undetected", i)
		}
	}
}

func TestCheckCRC16Short(t *testing.T) {
	if _, ok := CheckCRC16([]byte{1, 0, 1}); ok {
		t.Error("CheckCRC16 accepted a slice shorter than the checksum")
	}
}

func randomBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}
