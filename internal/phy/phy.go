// Package phy is the pluggable PHY layer: the modem contract the whole
// stack (de)modulates through, plus a registry that makes modems
// selectable by name — the same move the scenario registry made for
// workloads and channel.Model made for channel dynamics. §4 of the paper
// argues the interference decoder applies to any phase-shift-keying
// modulation; the registry is where that claim becomes an experiment
// axis: every registered scenario runs as a topology × scheme × modem
// cell (ancsim -modem msk|dqpsk).
//
// The package ships two modems:
//
//   - "msk" (internal/msk) — the paper's choice, and the default. One
//     bit per symbol.
//   - "dqpsk" (internal/dqpsk) — the §7.2 generality demonstration:
//     π/4 differential QPSK, two bits per symbol.
//
// Every registered modem decodes both forward and backward (conjugate
// time reversal, §7.4): frames are mirrored in symbol units
// (frame.MarshalFor), so the reversed stream presents a valid
// pilot+header for any bits-per-symbol width that divides the mirror
// region — an invariant Register enforces.
//
// Register your own with Register; the engine, the CLI and the campaign
// headers pick it up by name.
package phy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/frame"
)

// Default is the registry name of the default modem.
const Default = "msk"

// Modem is the pluggable PHY contract: everything the interference
// decoder needs (core.PhyModem — Modulate/Demodulate, the *Into
// workspace variants, PhaseDiffs/DecideDiffs, StepPrior,
// SamplesPerSymbol, BitsPerSymbol) plus the registry identity.
//
// Implementations must keep the core.PhyModem ownership rules: the
// *Into variants write into the caller's dst storage (grown when too
// small) and draw internal working buffers only from the caller's
// scratch, so a decode pipeline that reuses both performs no
// steady-state allocation. A Modem must be stateless and safe for
// concurrent use — one instance serves every node of a run.
type Modem interface {
	core.PhyModem
	// Name is the registry key the modem was built under ("msk",
	// "dqpsk"); campaign rows and output headers carry it.
	Name() string
}

// Factory builds a modem instance at the given oversampling factor.
type Factory func(samplesPerSymbol int) Modem

type entry struct {
	factory Factory
	desc    string
}

var (
	mu       sync.RWMutex
	registry = make(map[string]entry)
)

// Register adds a modem factory under a name. Registering a duplicate
// name panics: modem names are CLI-facing identifiers (ancsim
// -modem=<name>) and a silent overwrite would make them ambiguous.
// Registration also enforces the frame-mirror invariant: the modem's
// bits-per-symbol width must divide frame.MirrorBits, or the symbol-wise
// tail mirror would split a symbol across the fold and backward decoding
// (§7.4) could never lock.
func Register(name, description string, f Factory) {
	mu.Lock()
	defer mu.Unlock()
	if name == "" {
		panic("phy: modem with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("phy: modem %q with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("phy: duplicate modem %q", name))
	}
	if bps := f(1).BitsPerSymbol(); bps < 1 || frame.MirrorBits%bps != 0 {
		panic(fmt.Sprintf("phy: modem %q carries %d bits/symbol, which does not divide the %d-bit frame mirror region", name, bps, frame.MirrorBits))
	}
	registry[name] = entry{factory: f, desc: description}
}

// Get returns the registered factory for a name.
func Get(name string) (Factory, bool) {
	mu.RLock()
	defer mu.RUnlock()
	e, ok := registry[name]
	return e.factory, ok
}

// New builds a registered modem at the given oversampling factor. An
// unknown name returns an error that enumerates the registry, so the
// valid spellings travel with the failure.
func New(name string, samplesPerSymbol int) (Modem, error) {
	f, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("phy: unknown modem %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	return f(samplesPerSymbol), nil
}

// MustNew is New for names known to be registered; it panics otherwise.
func MustNew(name string, samplesPerSymbol int) Modem {
	m, err := New(name, samplesPerSymbol)
	if err != nil {
		panic(err)
	}
	return m
}

// Names returns every registered modem name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Description returns the one-line summary a modem was registered with.
func Description(name string) string {
	mu.RLock()
	defer mu.RUnlock()
	return registry[name].desc
}
