package phy

import (
	"repro/internal/dqpsk"
	"repro/internal/msk"
)

// The built-in adapters wrap the concrete modems with their registry
// identity. Each wrapper is a single-pointer struct, so storing one in a
// Modem (or core.PhyModem) interface value is a direct store — no
// per-value boxing allocation, and therefore nothing new on the decode
// hot path, which already calls through the interface.

type mskModem struct{ *msk.Modem }

// Name implements Modem.
func (mskModem) Name() string { return "msk" }

type dqpskModem struct{ *dqpsk.Modem }

// Name implements Modem.
func (dqpskModem) Name() string { return "dqpsk" }

func init() {
	Register("msk", "Minimum Shift Keying (§5, the paper's modem): 1 bit/symbol",
		func(sps int) Modem { return mskModem{msk.New(msk.WithSamplesPerSymbol(sps))} })
	Register("dqpsk", "π/4 differential QPSK (§7.2): 2 bits/symbol",
		func(sps int) Modem { return dqpskModem{dqpsk.New(dqpsk.WithSamplesPerSymbol(sps))} })
}
