package phy

import (
	"strings"
	"testing"

	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/frame"
)

func TestBuiltinsRegistered(t *testing.T) {
	names := Names()
	for _, want := range []string{"msk", "dqpsk"} {
		if _, ok := Get(want); !ok {
			t.Errorf("builtin modem %q not registered", want)
		}
		if Description(want) == "" {
			t.Errorf("modem %q has no description", want)
		}
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() missing %q: %v", want, names)
		}
	}
	if _, ok := Get("no-such"); ok {
		t.Error("Get of unknown modem succeeded")
	}
}

func TestNewBuildsAtRequestedOversampling(t *testing.T) {
	for _, name := range Names() {
		for _, sps := range []int{1, 4, 8} {
			if name == "dqpsk" && sps == 1 {
				sps = 2 // π/4-DQPSK needs ≥1 too, but keep symbol sums meaningful
			}
			m, err := New(name, sps)
			if err != nil {
				t.Fatalf("New(%q, %d): %v", name, sps, err)
			}
			if m.Name() != name {
				t.Errorf("New(%q).Name() = %q", name, m.Name())
			}
			if m.SamplesPerSymbol() != sps {
				t.Errorf("%s: SamplesPerSymbol = %d, want %d", name, m.SamplesPerSymbol(), sps)
			}
			// The full core contract must be reachable through the adapter.
			var _ core.PhyModem = m
		}
	}
}

func TestNewUnknownEnumeratesRegistry(t *testing.T) {
	_, err := New("warp", 4)
	if err == nil {
		t.Fatal("New of unknown modem succeeded")
	}
	for _, name := range []string{"msk", "dqpsk"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not enumerate %q: %v", name, err)
		}
	}
}

// TestBackwardDecodeEveryModem is the §7.4 mirror invariant as a
// registry-wide property: for every registered modem, a frame marshalled
// at the modem's symbol width decodes off the conjugate time-reversed
// stream, recovering the same bits the forward path does. This replaces
// the retired SupportsBackward capability gate — symbol-wise mirroring
// (frame.MarshalFor) makes backward decoding universal.
func TestBackwardDecodeEveryModem(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, 4)
			payload := []byte("backward mirror round-trip payload for " + name)
			pkt := frame.NewPacket(1, 2, 7, payload)
			sig := m.Modulate(frame.MarshalFor(pkt, m.BitsPerSymbol()))
			floor := 1e-4
			rx := channel.Receive(dsp.NewNoiseSource(floor, 11), 200,
				channel.Transmission{Signal: sig, Link: channel.Link{Gain: 0.8, Phase: 1.1}, Delay: 150})
			dec := core.NewDecoder(core.DefaultConfig(m, floor))
			fwd, err := dec.TryClean(rx)
			if err != nil || !fwd.BodyOK {
				t.Fatalf("forward clean decode: err=%v", err)
			}
			bwd, err := dec.TryCleanBackward(rx)
			if err != nil {
				t.Fatalf("backward clean decode: %v", err)
			}
			if !bwd.Backward || !bwd.BodyOK {
				t.Fatalf("backward=%v bodyOK=%v", bwd.Backward, bwd.BodyOK)
			}
			if string(bwd.Packet.Payload) != string(payload) {
				t.Error("backward payload mismatch")
			}
			if !bits.Equal(fwd.WantedBits, bwd.WantedBits) {
				t.Error("forward and backward decodes disagree on the frame bits")
			}
		})
	}
}

// TestAdapterInterfaceStoreDoesNotAllocate pins the no-boxing property
// the decode hot path relies on: the adapters are pointer-shaped, so
// storing one in an interface value is a direct store.
func TestAdapterInterfaceStoreDoesNotAllocate(t *testing.T) {
	for _, name := range Names() {
		m := MustNew(name, 4)
		var sink core.PhyModem
		allocs := testing.AllocsPerRun(100, func() {
			sink = m
		})
		if allocs != 0 {
			t.Errorf("%s: storing the adapter in an interface allocates %.1f objects", name, allocs)
		}
		_ = sink
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("msk", "dup", func(sps int) Modem { return MustNew("dqpsk", sps) })
}
