package topology

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/channel"
)

func TestAliceBobConnectivity(t *testing.T) {
	g := AliceBob(DefaultConfig(), rand.New(rand.NewSource(1)))
	if g.N != 3 {
		t.Fatalf("N = %d", g.N)
	}
	for _, pair := range [][2]int{{Alice, Router}, {Router, Alice}, {Bob, Router}, {Router, Bob}} {
		if !g.InRange(pair[0], pair[1]) {
			t.Errorf("%s → %s missing", g.Name(pair[0]), g.Name(pair[1]))
		}
	}
	// The defining constraint: Alice and Bob cannot hear each other.
	if g.InRange(Alice, Bob) || g.InRange(Bob, Alice) {
		t.Error("Alice and Bob are in range — not the Fig. 1 topology")
	}
}

func TestChainConnectivity(t *testing.T) {
	g := Chain(DefaultConfig(), rand.New(rand.NewSource(2)))
	if !g.InRange(ChainN1, ChainN2) || !g.InRange(ChainN2, ChainN3) || !g.InRange(ChainN3, ChainN4) {
		t.Error("adjacent chain links missing")
	}
	// N3 and N2 are adjacent: N3's forwarding interferes at N2. N1 and
	// N4 are 3 hops apart and out of range (the hidden-terminal setup).
	if !g.InRange(ChainN3, ChainN2) {
		t.Error("N3 → N2 missing")
	}
	if g.InRange(ChainN1, ChainN4) || g.InRange(ChainN1, ChainN3) {
		t.Error("distant chain nodes should be out of range")
	}
}

func TestXConnectivity(t *testing.T) {
	g := X(DefaultConfig(), rand.New(rand.NewSource(3)))
	for _, edge := range []int{X1, X2, X3, X4} {
		if !g.InRange(edge, XRouter) || !g.InRange(XRouter, edge) {
			t.Errorf("edge %s not connected to router", g.Name(edge))
		}
	}
	if !g.InRange(X1, X2) || !g.InRange(X3, X4) {
		t.Error("overhearing links missing")
	}
	if !g.InRange(X3, X2) || !g.InRange(X1, X4) {
		t.Error("weak cross-interference links missing")
	}
	if g.InRange(X2, X1) {
		t.Error("overhearing should be directional (X1→X2 only)")
	}
}

func TestLinkCFOIsRelative(t *testing.T) {
	g := AliceBob(DefaultConfig(), rand.New(rand.NewSource(4)))
	up, _ := g.Link(Alice, Router)
	down, _ := g.Link(Router, Alice)
	// cfo(i→j) = cfo_i − cfo_j, so the two directions are negatives.
	if math.Abs(up.FreqOffset+down.FreqOffset) > 1e-15 {
		t.Errorf("CFOs not antisymmetric: %v vs %v", up.FreqOffset, down.FreqOffset)
	}
	// Two concurrent senders have distinct CFOs at a common receiver.
	a, _ := g.Link(Alice, Router)
	b, _ := g.Link(Bob, Router)
	if a.FreqOffset == b.FreqOffset {
		t.Error("Alice and Bob share an oscillator")
	}
}

func TestLinkMissing(t *testing.T) {
	g := AliceBob(DefaultConfig(), rand.New(rand.NewSource(5)))
	if _, ok := g.Link(Alice, Bob); ok {
		t.Error("out-of-range link returned")
	}
}

func TestGainsVaryAcrossRealizations(t *testing.T) {
	g1 := AliceBob(DefaultConfig(), rand.New(rand.NewSource(6)))
	g2 := AliceBob(DefaultConfig(), rand.New(rand.NewSource(7)))
	l1, _ := g1.Link(Alice, Router)
	l2, _ := g2.Link(Alice, Router)
	if l1.Gain == l2.Gain && l1.Phase == l2.Phase {
		t.Error("different seeds produced identical channels")
	}
}

func TestOverhearStrongerThanCross(t *testing.T) {
	cfg := DefaultConfig()
	g := X(cfg, rand.New(rand.NewSource(8)))
	over, _ := g.Link(X1, X2)
	cross, _ := g.Link(X3, X2)
	// Overhearing must dominate cross interference on average; with 2 dB
	// jitter around means 0.5 vs 0.02 this holds for every realization.
	if over.PowerGain() <= cross.PowerGain() {
		t.Errorf("overhear gain %v not above cross gain %v", over.PowerGain(), cross.PowerGain())
	}
}

func TestNames(t *testing.T) {
	g := Chain(DefaultConfig(), rand.New(rand.NewSource(9)))
	if g.Name(ChainN1) != "n1" || g.Name(ChainN4) != "n4" {
		t.Error("names wrong")
	}
	if g.Name(99) != "node99" {
		t.Errorf("out-of-range name = %q", g.Name(99))
	}
}

func TestParallelPairsConnectivity(t *testing.T) {
	g := ParallelPairs(3)(DefaultConfig(), rand.New(rand.NewSource(2)))
	if g.N != 9 {
		t.Fatalf("N = %d, want 9", g.N)
	}
	for p := 0; p < 3; p++ {
		base := PairBase(p)
		for _, pair := range [][2]int{{base, base + 1}, {base + 2, base + 1}} {
			if !g.InRange(pair[0], pair[1]) || !g.InRange(pair[1], pair[0]) {
				t.Errorf("pair %d: missing link %v", p, pair)
			}
		}
		// Cells are isolated: no link into the next cell.
		if p < 2 && (g.InRange(base, base+3) || g.InRange(base+1, base+4)) {
			t.Errorf("pair %d leaks into pair %d", p, p+1)
		}
	}
}

func TestXCrossConnectivity(t *testing.T) {
	g := XCross(DefaultConfig(), rand.New(rand.NewSource(3)))
	if g.N != 7 {
		t.Fatalf("N = %d, want 7", g.N)
	}
	// The X core is intact (overhearing and cross links included).
	for _, l := range [][2]int{{X1, XRouter}, {X3, XRouter}, {X1, X2}, {X3, X4}, {X3, X2}, {X1, X4}} {
		if !g.InRange(l[0], l[1]) {
			t.Errorf("missing X link %v", l)
		}
	}
	// The cross-traffic pair reaches the shared router but not the X edge.
	for _, l := range [][2]int{{XCrossAlice, XRouter}, {XCrossBob, XRouter}} {
		if !g.InRange(l[0], l[1]) || !g.InRange(l[1], l[0]) {
			t.Errorf("missing cross-pair link %v", l)
		}
	}
	if g.InRange(XCrossAlice, X1) || g.InRange(XCrossAlice, XCrossBob) {
		t.Error("cross-traffic pair has spurious links")
	}
}

// TestFadingConfigRealizesTimeVaryingLinks: a fading spec in the config
// must make every link evolve over slots, reachable both through the
// explicit LinkAt and through the cursor-following Link.
func TestFadingConfigRealizesTimeVaryingLinks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fading = channel.FadingSpec{Kind: channel.FadingRayleigh, BlockSlots: 1}
	g := AliceBob(cfg, rand.New(rand.NewSource(10)))
	a, ok := g.LinkAt(Alice, Router, 0)
	if !ok {
		t.Fatal("link missing")
	}
	b, _ := g.LinkAt(Alice, Router, 1)
	if a == b {
		t.Error("rayleigh link identical across adjacent slots")
	}
	g.SetSlot(1)
	if got, _ := g.Link(Alice, Router); got != b {
		t.Errorf("cursor Link %+v != LinkAt(1) %+v", got, b)
	}
	if g.Slot() != 1 {
		t.Errorf("Slot() = %d", g.Slot())
	}
	// The CFO stays a per-node property, applied on top of any model.
	up, _ := g.LinkAt(Alice, Router, 3)
	down, _ := g.LinkAt(Router, Alice, 3)
	if math.Abs(up.FreqOffset+down.FreqOffset) > 1e-15 {
		t.Error("CFO antisymmetry lost under fading")
	}
}

// TestStaticGraphSlotInvariant pins the golden-compatibility contract:
// without a fading spec, moving the slot cursor never changes a link.
func TestStaticGraphSlotInvariant(t *testing.T) {
	g := AliceBob(DefaultConfig(), rand.New(rand.NewSource(12)))
	want, _ := g.Link(Alice, Router)
	for _, s := range []int{1, 5, 1000} {
		g.SetSlot(s)
		if got, _ := g.Link(Alice, Router); got != want {
			t.Fatalf("slot %d changed a static link: %+v != %+v", s, got, want)
		}
	}
}

// TestConnectModel: custom scenarios can attach an explicit model to one
// edge, bypassing the graph-wide spec.
func TestConnectModel(t *testing.T) {
	g := New(2, []string{"a", "b"}, DefaultConfig(), rand.New(rand.NewSource(1)))
	g.ConnectModel(0, 1, channel.Mobility{
		Base: channel.Link{Gain: 0.9}, PeriodSlots: 4, SwingDB: 6,
	})
	if _, ok := g.Model(0, 1); !ok {
		t.Fatal("model accessor missing the edge")
	}
	l0, _ := g.LinkAt(0, 1, 0)
	l1, _ := g.LinkAt(0, 1, 1)
	if l0.Gain == l1.Gain {
		t.Error("mobility edge did not swing")
	}
	if _, ok := g.Model(1, 0); ok {
		t.Error("reverse edge exists without Connect")
	}
}

func TestCustomBuilderDeterministic(t *testing.T) {
	build := func(seed int64) *Graph {
		rng := rand.New(rand.NewSource(seed))
		g := New(2, []string{"a", "b"}, DefaultConfig(), rng)
		g.ConnectBoth(0, 1, 0.4, 2, rng)
		return g
	}
	a, _ := build(5).Link(0, 1)
	b, _ := build(5).Link(0, 1)
	if a != b {
		t.Error("same seed produced different custom links")
	}
}
