// Package topology constructs the paper's three canonical networks — the
// Alice–Bob two-way relay (Fig. 1), the unidirectional chain (Fig. 2),
// and the "X" topology (Fig. 11) — as directed link graphs with per-run
// random channel realizations: every link gets an attenuation drawn
// around its mean, a uniform phase, and a residual carrier offset from
// the oscillator mismatch of its endpoints.
//
// Every edge is a time-varying channel.Model, not a bare gain: the
// Config's FadingSpec chooses how each link evolves over the schedule
// slots of a run (static, Rayleigh/Rician block fading, or a
// deterministic mobility trace). The graph keeps a current-slot cursor
// (SetSlot) so schedule code written against Link sees the evolving
// channel without changing a call site; Static models make every slot
// identical, preserving the pre-fading behavior bit for bit.
package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/channel"
)

// Graph is a set of nodes with directed links. Absent links model nodes
// out of radio range (the chain's N1→N4, for example).
//
// A Graph is one run's channel realization and is not safe for
// concurrent use: SetSlot advances its time cursor in place.
type Graph struct {
	N      int
	names  []string
	links  map[[2]int]channel.Model
	cfo    []float64 // per-node oscillator offset, rad/sample
	fading channel.FadingSpec
	slot   int // current schedule slot, set by the engine
}

// Config controls the channel realizations.
type Config struct {
	// MeanPowerGain is the average power attenuation of an in-range link.
	MeanPowerGain float64
	// GainJitterDB spreads per-link gains uniformly in dB around the mean
	// — the run-to-run variation behind the CDF spread of Figs. 9–12.
	GainJitterDB float64
	// CFORange bounds each node's oscillator offset, drawn uniformly
	// from (−CFORange, +CFORange) rad/sample. Relative CFO between
	// concurrent senders is what decorrelates the inter-signal phase
	// (see internal/core's amplitude estimator).
	CFORange float64
	// OverhearPowerGain is the mean power gain of the "X" topology's
	// overhearing links (N1→N2, N3→N4).
	OverhearPowerGain float64
	// CrossPowerGain is the mean power gain of the weak interference
	// paths in the "X" topology (N3→N2, N1→N4) that corrupt overhearing.
	CrossPowerGain float64
	// Fading selects the time-varying model realized on every link. The
	// zero value is static — one realization per run, the behavior every
	// golden campaign is pinned to.
	Fading channel.FadingSpec
}

// DefaultConfig returns the channel parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		MeanPowerGain:     0.5,
		GainJitterDB:      2,
		CFORange:          0.012,
		OverhearPowerGain: 0.5,
		CrossPowerGain:    0.02,
	}
}

// New builds an empty graph of n nodes: each node draws its oscillator
// offset, no links yet. Together with Connect/ConnectBoth this is the
// generic builder custom scenarios use to realize arbitrary networks with
// the same per-run channel randomization as the canonical topologies.
func New(n int, names []string, cfg Config, rng *rand.Rand) *Graph {
	g := &Graph{
		N:      n,
		names:  names,
		links:  make(map[[2]int]channel.Model),
		cfo:    make([]float64, n),
		fading: cfg.Fading,
	}
	for i := range g.cfo {
		g.cfo[i] = (rng.Float64()*2 - 1) * cfg.CFORange
	}
	return g
}

// Connect adds a directed link i→j with the given mean power gain,
// wrapped in the graph's fading model: the static realization is drawn
// exactly as before (same RNG stream), then handed to the FadingSpec to
// evolve over slots.
func (g *Graph) Connect(i, j int, mean, jitterDB float64, rng *rand.Rand) {
	g.links[[2]int{i, j}] = g.fading.Realize(channel.RandomLink(rng, mean, jitterDB), rng)
}

// ConnectBoth adds links in both directions (independent realizations —
// the paper assumes similar, not identical, channels).
func (g *Graph) ConnectBoth(i, j int, mean, jitterDB float64, rng *rand.Rand) {
	g.Connect(i, j, mean, jitterDB, rng)
	g.Connect(j, i, mean, jitterDB, rng)
}

// ConnectModel adds a directed link i→j backed by an explicit channel
// model, bypassing the graph's FadingSpec — how custom scenarios mix
// static and time-varying edges in one network.
func (g *Graph) ConnectModel(i, j int, m channel.Model) {
	g.links[[2]int{i, j}] = m
}

// Link returns the directed channel i→j realized at the graph's current
// slot, with the relative carrier offset of the endpoints applied, and
// whether the nodes are in range.
func (g *Graph) Link(i, j int) (channel.Link, bool) {
	return g.LinkAt(i, j, g.slot)
}

// LinkAt is Link at an explicit slot, independent of the cursor.
func (g *Graph) LinkAt(i, j, slot int) (channel.Link, bool) {
	m, ok := g.links[[2]int{i, j}]
	if !ok {
		return channel.Link{}, false
	}
	l := m.LinkAt(slot)
	l.FreqOffset = g.cfo[i] - g.cfo[j]
	return l, true
}

// Model returns the channel model backing the directed link i→j.
func (g *Graph) Model(i, j int) (channel.Model, bool) {
	m, ok := g.links[[2]int{i, j}]
	return m, ok
}

// VisitLinkStates reports every directed edge's realized power gain at
// slot s to fn — the per-slot channel-state observation hook the engine
// feeds into a run's Recorder. Edge order is unspecified (map
// iteration); consumers must key by (from, to). The walk allocates
// nothing: models realize links on demand and fn is called with plain
// scalars.
func (g *Graph) VisitLinkStates(s int, fn func(slot, from, to int, powerGain float64)) {
	for key, m := range g.links {
		fn(s, key[0], key[1], m.LinkAt(s).PowerGain())
	}
}

// SetSlot moves the graph's time cursor: subsequent Link calls realize
// every edge at slot s. The engine advances it once per schedule cycle;
// a graph that is never advanced behaves statically.
func (g *Graph) SetSlot(s int) { g.slot = s }

// Slot returns the current time cursor.
func (g *Graph) Slot() int { return g.slot }

// InRange reports whether i can be heard by j.
func (g *Graph) InRange(i, j int) bool {
	_, ok := g.links[[2]int{i, j}]
	return ok
}

// Name returns a node's human-readable role.
func (g *Graph) Name(i int) string {
	if i < 0 || i >= len(g.names) {
		return fmt.Sprintf("node%d", i)
	}
	return g.names[i]
}

// Node indices for the Alice–Bob topology (Fig. 1).
const (
	Alice  = 0
	Router = 1
	Bob    = 2
)

// AliceBob builds the two-way relay of Fig. 1: Alice and Bob each reach
// the router but not each other.
func AliceBob(cfg Config, rng *rand.Rand) *Graph {
	g := New(3, []string{"alice", "router", "bob"}, cfg, rng)
	g.ConnectBoth(Alice, Router, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
	g.ConnectBoth(Bob, Router, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
	return g
}

// Node indices for the chain topology (Fig. 2): N1 → N2 → N3 → N4.
const (
	ChainN1 = 0
	ChainN2 = 1
	ChainN3 = 2
	ChainN4 = 3
)

// Chain builds the 3-hop chain of Fig. 2. Adjacent nodes are connected;
// nodes two hops apart interfere weakly (N3's transmission reaches N2 at
// full strength — they are adjacent — while N1 and N4 are out of range of
// each other).
func Chain(cfg Config, rng *rand.Rand) *Graph {
	g := New(4, []string{"n1", "n2", "n3", "n4"}, cfg, rng)
	g.ConnectBoth(ChainN1, ChainN2, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
	g.ConnectBoth(ChainN2, ChainN3, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
	g.ConnectBoth(ChainN3, ChainN4, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
	return g
}

// Node indices for the "X" topology (Fig. 11): N1→N4 and N3→N2 cross at
// the center router N5.
const (
	X1      = 0
	X2      = 1
	X3      = 2
	X4      = 3
	XRouter = 4
)

// X builds Fig. 11: four edge nodes around a center router. N2 overhears
// N1 and N4 overhears N3 (that is what replaces Alice's "I sent it
// myself" knowledge), while the opposite-corner cross paths are weak
// interference that occasionally corrupts the overhearing (§11.5).
func X(cfg Config, rng *rand.Rand) *Graph {
	g := New(5, []string{"n1", "n2", "n3", "n4", "router"}, cfg, rng)
	connectXLinks(g, cfg, rng)
	return g
}

// connectXLinks realizes the Fig. 11 link set on a graph whose first five
// indices follow the X1..X4, XRouter layout.
func connectXLinks(g *Graph, cfg Config, rng *rand.Rand) {
	for _, edge := range []int{X1, X2, X3, X4} {
		g.ConnectBoth(edge, XRouter, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
	}
	// Overhearing links.
	g.Connect(X1, X2, cfg.OverhearPowerGain, cfg.GainJitterDB, rng)
	g.Connect(X3, X4, cfg.OverhearPowerGain, cfg.GainJitterDB, rng)
	// Weak cross interference.
	g.Connect(X3, X2, cfg.CrossPowerGain, cfg.GainJitterDB, rng)
	g.Connect(X1, X4, cfg.CrossPowerGain, cfg.GainJitterDB, rng)
}

// PairBase returns the node index of pair p's first node in a
// ParallelPairs graph; p's alice, router and bob sit at PairBase(p),
// PairBase(p)+1 and PairBase(p)+2.
func PairBase(p int) int { return 3 * p }

// ParallelPairs returns a builder for k disjoint Alice–Bob relay cells
// sharing one band: pair p occupies indices 3p (alice), 3p+1 (router) and
// 3p+2 (bob), with no links between cells — the cells only compete for
// air time, which the scenario's schedule divides among them.
func ParallelPairs(k int) func(Config, *rand.Rand) *Graph {
	if k < 1 {
		panic(fmt.Sprintf("topology: ParallelPairs needs k ≥ 1, got %d", k))
	}
	return func(cfg Config, rng *rand.Rand) *Graph {
		names := make([]string, 0, 3*k)
		for p := 0; p < k; p++ {
			names = append(names,
				fmt.Sprintf("alice%d", p), fmt.Sprintf("router%d", p), fmt.Sprintf("bob%d", p))
		}
		g := New(3*k, names, cfg, rng)
		for p := 0; p < k; p++ {
			base := PairBase(p)
			g.ConnectBoth(base, base+1, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
			g.ConnectBoth(base+2, base+1, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
		}
		return g
	}
}

// Node indices for the cross-traffic "X" variant: the first five match
// the X topology so the X schedules apply unchanged, and an Alice–Bob
// pair hangs off the same center router as cross traffic.
const (
	XCrossAlice = 5
	XCrossBob   = 6
)

// XCross builds the Fig. 11 "X" with an additional two-way exchange
// through the same center router: five X nodes plus alice and bob, all
// competing for the router's air time.
func XCross(cfg Config, rng *rand.Rand) *Graph {
	g := New(7, []string{"n1", "n2", "n3", "n4", "router", "alice", "bob"}, cfg, rng)
	connectXLinks(g, cfg, rng)
	g.ConnectBoth(XCrossAlice, XRouter, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
	g.ConnectBoth(XCrossBob, XRouter, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
	return g
}
