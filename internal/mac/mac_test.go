package mac

import (
	"math/rand"
	"testing"

	"repro/internal/frame"
)

func TestDrawRange(t *testing.T) {
	cfg := DelayConfig{MinSeparation: 100, Slots: 32, SlotSamples: 10}
	rng := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		d := cfg.Draw(rng)
		if d < 100 || d > cfg.MaxDelay() {
			t.Fatalf("delay %d outside [100, %d]", d, cfg.MaxDelay())
		}
		if (d-100)%10 != 0 {
			t.Fatalf("delay %d not slot aligned", d)
		}
		seen[d] = true
	}
	if len(seen) != 32 {
		t.Errorf("saw %d distinct delays, want 32", len(seen))
	}
}

func TestMeanDelay(t *testing.T) {
	cfg := DelayConfig{MinSeparation: 100, Slots: 32, SlotSamples: 10}
	if got, want := cfg.MeanDelay(), 100+15.5*10; got != want {
		t.Errorf("MeanDelay = %v, want %v", got, want)
	}
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(cfg.Draw(rng))
	}
	if avg := sum / n; avg < 250 || avg > 260 {
		t.Errorf("empirical mean %v, want ≈ 255", avg)
	}
}

func TestValidate(t *testing.T) {
	good := DelayConfig{MinSeparation: 0, Slots: 1, SlotSamples: 0}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, bad := range []DelayConfig{
		{MinSeparation: -1, Slots: 1},
		{Slots: 0},
		{Slots: 1, SlotSamples: -5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}

func TestOverlapFraction(t *testing.T) {
	if got := OverlapFraction(1000, 200); got != 0.8 {
		t.Errorf("overlap = %v, want 0.8", got)
	}
	if got := OverlapFraction(1000, 1500); got != 0 {
		t.Errorf("overlap = %v, want 0 (no overlap)", got)
	}
	if got := OverlapFraction(0, 10); got != 0 {
		t.Errorf("overlap of empty frame = %v", got)
	}
}

func TestTriggerFlag(t *testing.T) {
	var h frame.Header
	if IsTrigger(h) {
		t.Error("fresh header marked as trigger")
	}
	MarkTrigger(&h)
	if !IsTrigger(h) {
		t.Error("trigger flag not set")
	}
}

func TestGuard(t *testing.T) {
	if got := Guard(0.08, 1000); got != 80 {
		t.Errorf("Guard = %d, want 80", got)
	}
	if got := Guard(-1, 1000); got != 0 {
		t.Errorf("negative fraction guard = %d, want 0", got)
	}
}

func TestSlotConstants(t *testing.T) {
	// Fig. 1 and Fig. 2's slot counts: the analytical core of the paper.
	if SlotsTraditionalAliceBob != 4 || SlotsCOPEAliceBob != 3 || SlotsANCAliceBob != 2 {
		t.Error("Alice–Bob slot counts wrong")
	}
	if SlotsTraditionalChain != 3 || SlotsANCChain != 2 {
		t.Error("chain slot counts wrong")
	}
}
