// Package mac implements the medium-access pieces of §7.2 and §7.6: the
// slotted random delay that enforces incomplete packet overlap, the
// trigger marking that stimulates strategically-picked neighbors to
// transmit simultaneously, and the idealized "optimal MAC" accounting the
// paper grants all three compared schemes (§11.1).
package mac

import (
	"fmt"
	"math/rand"

	"repro/internal/frame"
)

// DelayConfig describes the random start delay of §7.2. The paper's nodes
// pick a slot number between 1 and 32; the slot size depends on rate and
// packet size. The enforced minimum separation guarantees the pilot and
// header at the start (and, mirrored, the end) of the first packet stay
// interference free — the paper "enforces this incomplete overlap".
type DelayConfig struct {
	// MinSeparation is the guaranteed offset, in samples, between the two
	// triggered transmissions (≥ pilot+header duration plus detector
	// margin).
	MinSeparation int
	// Slots is the number of random slots (paper: 32).
	Slots int
	// SlotSamples is the slot granularity in samples.
	SlotSamples int
}

// Validate reports configuration errors early.
func (c DelayConfig) Validate() error {
	if c.MinSeparation < 0 || c.Slots <= 0 || c.SlotSamples < 0 {
		return fmt.Errorf("mac: invalid delay config %+v", c)
	}
	return nil
}

// Draw returns the relative start offset of the second of two triggered
// transmissions, in samples.
func (c DelayConfig) Draw(rng *rand.Rand) int {
	return c.MinSeparation + rng.Intn(c.Slots)*c.SlotSamples
}

// MaxDelay returns the largest offset Draw can produce.
func (c DelayConfig) MaxDelay() int {
	return c.MinSeparation + (c.Slots-1)*c.SlotSamples
}

// MeanDelay returns the expected offset.
func (c DelayConfig) MeanDelay() float64 {
	return float64(c.MinSeparation) + float64(c.Slots-1)/2*float64(c.SlotSamples)
}

// OverlapFraction returns the fraction of a frame of the given length that
// overlaps its interferer when the second transmission starts delta
// samples late — the statistic §11.4 reports as "80% of the two packets
// interfere on average".
func OverlapFraction(frameSamples, delta int) float64 {
	if frameSamples <= 0 {
		return 0
	}
	ovl := 1 - float64(delta)/float64(frameSamples)
	if ovl < 0 {
		return 0
	}
	return ovl
}

// MarkTrigger sets the §7.6 trigger flag on a header: the node appends a
// trigger to its transmission, stimulating the marked neighbors to
// transmit simultaneously right after it ends.
func MarkTrigger(h *frame.Header) { h.Flags |= frame.FlagTrigger }

// IsTrigger reports whether a header carries the trigger flag.
func IsTrigger(h frame.Header) bool { return h.Flags&frame.FlagTrigger != 0 }

// Guard returns the per-transmission turnaround overhead in samples: the
// fixed cost (preamble, RF turnaround, processing) every transmission
// pays regardless of scheme. The optimal MAC of §11.1 has no contention
// or backoff, but physical turnaround remains; because ANC halves the
// number of transmissions per delivered packet pair, this constant is one
// of the two knobs (with the random delay) that separate practical from
// theoretical gains.
func Guard(frac float64, frameSamples int) int {
	if frac < 0 {
		return 0
	}
	return int(frac * float64(frameSamples))
}

// Slot accounting for the oracle-scheduled baselines (§11.1): the number
// of transmissions each scheme uses to deliver one packet pair (Alice–Bob
// and "X") or one packet (chain). These are Fig. 1 and Fig. 2's slot
// counts.
const (
	SlotsTraditionalAliceBob = 4
	SlotsCOPEAliceBob        = 3
	SlotsANCAliceBob         = 2
	SlotsTraditionalChain    = 3
	SlotsANCChain            = 2
)
