package core

import (
	"sync"
	"testing"

	"repro/internal/channel"
	"repro/internal/dqpsk"
	"repro/internal/dsp"
	"repro/internal/frame"
	"repro/internal/msk"
)

// fuzzEnv holds the deterministic two-signal receptions the fuzzer
// mutates: genuine relay collisions (so mild corruption exercises the
// deep decode paths, not just early detector bail-outs) plus the sent
// buffers that cancel the known packet. The MSK environment knows the
// first-starting packet (a forward interference decode); the dqpsk
// environment knows the second-starting one, so an uncorrupted decode
// runs the backward pipeline of the symbol-wise frame mirror.
var fuzzEnv struct {
	once sync.Once
	base dsp.Signal
	buf  *frame.SentBuffer
	cfg  Config

	dqBase dsp.Signal
	dqBuf  *frame.SentBuffer
	dqCfg  Config
}

func fuzzCollision(m PhyModem, bitsA, bitsB []byte) (sigA, sigB, rx dsp.Signal) {
	sigA = m.Modulate(bitsA)
	sigB = m.Modulate(bitsB)
	rx = channel.Receive(dsp.NewNoiseSource(1e-3, 17), 400,
		channel.Transmission{Signal: sigA, Link: channel.Link{Gain: 0.8, Phase: 0.6, FreqOffset: 0.005}},
		channel.Transmission{Signal: sigB, Link: channel.Link{Gain: 0.7, Phase: -0.9, FreqOffset: -0.007}, Delay: 1100},
	)
	return sigA, sigB, rx
}

func fuzzSetup() {
	payloadA := make([]byte, 96)
	payloadB := make([]byte, 96)
	for i := range payloadA {
		payloadA[i] = byte(i * 37)
		payloadB[i] = byte(i*59 + 11)
	}
	pktA := frame.NewPacket(1, 2, 7, payloadA)
	pktB := frame.NewPacket(2, 1, 9, payloadB)

	m := msk.New()
	bitsA := frame.Marshal(pktA)
	sigA, _, rx := fuzzCollision(m, bitsA, frame.Marshal(pktB))
	buf := frame.NewSentBuffer(0)
	buf.Put(frame.SentRecord{Packet: pktA, Bits: bitsA, Samples: sigA})
	cfg := DefaultConfig(m, 1e-3)
	cfg.FallbackFrameBits = frame.FrameBits(96)
	fuzzEnv.base, fuzzEnv.buf, fuzzEnv.cfg = rx, buf, cfg

	dm := dqpsk.New()
	dqBitsA := frame.MarshalFor(pktA, dm.BitsPerSymbol())
	dqBitsB := frame.MarshalFor(pktB, dm.BitsPerSymbol())
	_, dqSigB, dqRx := fuzzCollision(dm, dqBitsA, dqBitsB)
	dqBuf := frame.NewSentBuffer(0)
	dqBuf.Put(frame.SentRecord{Packet: pktB, Bits: dqBitsB, Samples: dqSigB})
	dqCfg := DefaultConfig(dm, 1e-3)
	dqCfg.FallbackFrameBits = frame.FrameBits(96)
	fuzzEnv.dqBase, fuzzEnv.dqBuf, fuzzEnv.dqCfg = dqRx, dqBuf, dqCfg
}

// checkResult asserts the structural invariants every non-error decode
// must satisfy, whatever garbage went in.
func checkResult(t *testing.T, rx dsp.Signal, res *Result, err error) {
	t.Helper()
	if err != nil {
		return
	}
	if res == nil {
		t.Fatal("nil Result without error")
	}
	d := res.Detection
	if d.Start < 0 || d.End > len(rx) || d.Start > d.End {
		t.Fatalf("detection bounds [%d,%d) outside reception of %d samples", d.Start, d.End, len(rx))
	}
	// Touch every recovered byte: an out-of-range view into the reused
	// workspace buffers would fault or trip -race here.
	var sum int
	for _, b := range res.WantedBits {
		sum += int(b)
	}
	for _, b := range res.Packet.Payload {
		sum += int(b)
	}
	_ = sum
}

// FuzzDecoderNoPanic drives truncated, corrupted, rescaled and arbitrary
// receptions through every decoder entry point. The decoder may return
// any error, but it must never panic, index out of range, or hand back a
// Result that violates the bounds invariants — in particular along the
// non-cloning slice-view paths of the workspace pipeline.
func FuzzDecoderNoPanic(f *testing.F) {
	fuzzEnv.once.Do(fuzzSetup)
	f.Add(uint16(0), uint8(0), []byte{})
	f.Add(uint16(1), uint8(1), []byte{0xff})
	f.Add(uint16(900), uint8(0), []byte("flip some samples around"))
	f.Add(uint16(6000), uint8(0), []byte{1, 2, 3, 4})  // truncate into the head
	f.Add(uint16(65535), uint8(2), []byte{7})          // truncate to nothing
	f.Add(uint16(0), uint8(2), []byte{0x10, 0x20})     // zero-power reception
	f.Add(uint16(0), uint8(3), []byte{9, 9, 9, 9, 9})  // near-noise-floor power
	f.Add(uint16(40), uint8(4), []byte("raw samples")) // raw bytes as samples
	// The 0x80 bit selects the dqpsk backward environment: the same
	// corruption repertoire against a multi-bit modem whose uncorrupted
	// decode runs the conjugate time-reversed pipeline.
	f.Add(uint16(0), uint8(0x80), []byte{})
	f.Add(uint16(0), uint8(0x80), []byte("flip some samples around"))
	f.Add(uint16(5000), uint8(0x80|1), []byte{0xaa, 0x55})
	f.Add(uint16(0), uint8(0x80|3), []byte{9, 9, 9})

	dec := NewDecoder(fuzzEnv.cfg)
	dec.SetWorkspace(NewWorkspace())
	dqDec := NewDecoder(fuzzEnv.dqCfg)
	dqDec.SetWorkspace(NewWorkspace())
	f.Fuzz(func(t *testing.T, cut uint16, mode uint8, raw []byte) {
		dec, base, lookup := dec, fuzzEnv.base, fuzzEnv.buf.Get
		if mode&0x80 != 0 {
			dec, base, lookup = dqDec, fuzzEnv.dqBase, fuzzEnv.dqBuf.Get
		}
		rx := append(dsp.Signal(nil), base...)
		if int(cut) >= len(rx) {
			rx = rx[:0]
		} else {
			rx = rx[:len(rx)-int(cut)]
		}
		switch mode % 5 {
		case 1: // corrupt harder: every raw byte rewrites a sample run
			for i, b := range raw {
				if len(rx) == 0 {
					break
				}
				idx := (i*7919 + int(b)*131) % len(rx)
				rx[idx] = complex(float64(b)/16-8, float64(b%32)/4-4)
			}
		case 2: // zero power
			for i := range rx {
				rx[i] = 0
			}
		case 3: // scale to the noise floor, starving the detectors
			rx.ScaleInPlace(complex(1e-3, 0))
		case 4: // forget the fixture entirely: raw bytes become samples
			rx = rx[:0]
			for i := 0; i+1 < len(raw); i += 2 {
				rx = append(rx, complex(float64(raw[i])/32-4, float64(raw[i+1])/32-4))
			}
		default: // light corruption at byte-derived positions
			for i, b := range raw {
				if len(rx) == 0 {
					break
				}
				idx := (i*2654435761 + int(b)) % len(rx)
				rx[idx] += complex(float64(b)/64-2, -float64(b)/128)
			}
		}

		res, err := dec.Decode(rx, lookup)
		checkResult(t, rx, res, err)
		res, err = dec.TryClean(rx)
		checkResult(t, rx, res, err)
		res, err = dec.TryCleanBackward(rx)
		checkResult(t, rx, res, err)
		dec.PeekHeaders(rx)
	})
}
