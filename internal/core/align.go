package core

import (
	"math"

	"repro/internal/bits"
	"repro/internal/dsp"
)

// DefaultPilotMaxErrors is how many of the 64 pilot bits may disagree and
// still count as a match. The pilot is pseudo-random, so a false match at
// this tolerance is vanishingly unlikely (P < 1e-9 per offset).
const DefaultPilotMaxErrors = 6

// FindPilot scans a decoded bit stream for the network pilot sequence,
// tolerating up to maxErrors bit errors, and returns the bit index where
// the pilot begins, or -1. This is the matching process of Fig. 5: "she
// tries to match the known pilot sequence with every sequence of 64 bits."
func FindPilot(stream []byte, maxErrors int) int {
	return FindPattern(stream, bits.Pilot(bits.PilotLength), maxErrors)
}

// FindPattern returns the first index where pattern occurs in stream with
// at most maxErrors mismatches, or -1.
func FindPattern(stream, pattern []byte, maxErrors int) int {
	idx, _ := FindPatternScored(stream, pattern, maxErrors)
	return idx
}

// FindPatternScored is FindPattern returning also the number of mismatched
// bits at the match (meaningless when the index is -1). The decoder uses
// the score to choose among competing sub-symbol alignments.
func FindPatternScored(stream, pattern []byte, maxErrors int) (int, int) {
	if len(pattern) == 0 || len(pattern) > len(stream) {
		return -1, 0
	}
	for i := 0; i+len(pattern) <= len(stream); i++ {
		errs := 0
		for j, p := range pattern {
			if stream[i+j] != p {
				errs++
				if errs > maxErrors {
					break
				}
			}
		}
		if errs <= maxErrors {
			return i, errs
		}
	}
	return -1, 0
}

// FindDiffAlignment locates an expected per-sample phase-difference
// pattern inside a stream of recovered ∆φ estimates over [lo, hi)
// candidate start offsets. The score at offset o is the normalized
// correlation
//
//	Σ_m sin(diffs[o+m])·sin(exp[m]) / Σ_m sin²(exp[m])
//
// which is ≈1 at the true alignment, ≈0 at random offsets, and works for
// any phase modulation: transitions whose expected difference is 0 (as
// most of a π/4-DQPSK symbol's are) simply do not contribute. Callers
// should require a score comfortably above 0 before trusting the result.
//
// This is how Alice detects the beginning of Bob's packet (§7.2): once
// her decoder starts emitting ∆φ estimates, the estimates are noise until
// Bob's signal begins, at which point they correlate with Bob's pilot.
func FindDiffAlignment(diffs []float64, exp []float64, lo, hi int) (offset int, score float64) {
	if len(exp) == 0 {
		return -1, -2
	}
	expSin := make([]float64, len(exp))
	var norm float64
	for m, e := range exp {
		expSin[m] = math.Sin(e)
		norm += expSin[m] * expSin[m]
	}
	if norm == 0 {
		return -1, -2
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(diffs)-len(exp)+1 {
		hi = len(diffs) - len(exp) + 1
	}
	bestOff, bestScore := -1, -2.0
	for o := lo; o < hi; o++ {
		var s float64
		for m, es := range expSin {
			if es != 0 {
				s += math.Sin(diffs[o+m]) * es
			}
		}
		s /= norm
		if s > bestScore {
			bestOff, bestScore = o, s
		}
	}
	return bestOff, bestScore
}

// ConjReverse returns the conjugated, time-reversed copy of a signal. The
// transformation has the property that per-sample phase differences of the
// output equal the input's differences in reverse order *without* sign
// flip, so standard MSK demodulation of ConjReverse(s) yields the frame's
// bits in reverse order. Backward decoding (§7.4) is therefore the forward
// pipeline applied to ConjReverse of the reception.
func ConjReverse(s dsp.Signal) dsp.Signal {
	return ConjReverseInto(nil, s)
}

// ConjReverseInto is ConjReverse writing into dst's storage (grown when
// too small). dst must not alias s.
func ConjReverseInto(dst dsp.Signal, s dsp.Signal) dsp.Signal {
	dst = growSignal(&dst, len(s))
	for i, v := range s {
		dst[len(s)-1-i] = complex(real(v), -imag(v))
	}
	return dst
}
