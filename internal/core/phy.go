package core

import "repro/internal/dsp"

// PhyModem is the modulation contract the interference decoder needs. §4
// of the paper argues the technique applies to any phase-shift-keying
// modulation; this interface is that claim made concrete. The repository
// ships two implementations: MSK (internal/msk, the paper's choice) and
// π/4-DQPSK (internal/dqpsk, the §4 generality demonstration).
//
// The requirements on an implementation are exactly the properties §6
// exploits:
//
//   - constant envelope (the §7.1 interference detector and the §6.2
//     amplitude estimator both assume it), and
//   - all information carried in phase *differences* between consecutive
//     samples (channel attenuation and phase shift cancel, Eq. 1).
type PhyModem interface {
	// SamplesPerSymbol is the oversampling factor S.
	SamplesPerSymbol() int
	// BitsPerSymbol is the number of bits one symbol carries.
	BitsPerSymbol() int
	// NumSamples returns the signal length Modulate produces for n bits.
	NumSamples(nbits int) int
	// NumBits returns how many whole bits fit in a signal of n samples.
	NumBits(nsamples int) int
	// Modulate maps bits to complex baseband samples, beginning with one
	// phase-reference sample.
	Modulate(bs []byte) dsp.Signal
	// Demodulate recovers bits from a clean (single-signal) reception.
	Demodulate(s dsp.Signal) []byte
	// DemodulateInto is Demodulate writing the recovered bits into dst's
	// storage (grown when too small) and drawing any internal working
	// buffers from scratch (nil for a private one-shot arena). The
	// returned bits are identical to Demodulate's; the slice is valid
	// until the next call reusing dst or scratch. The decoder's clean-head
	// search calls it once per sub-symbol offset per reception, so this is
	// the allocation-free path of the hot loop.
	DemodulateInto(scratch *dsp.Scratch, dst []byte, s dsp.Signal) []byte
	// DemodulateBatchInto demodulates a batch of signal views in one
	// call, writing view i's bits into dsts[i]'s storage (the slot slice
	// grown to len(sigs), retained slot buffers reused). The views share
	// scratch's internal working buffers while every dst slot keeps its
	// own storage, so all results of one batch stay valid simultaneously
	// — the contract the clean-head sub-symbol search needs to score
	// every offset after a single demodulation burst. Bit values must be
	// identical to per-view DemodulateInto calls.
	DemodulateBatchInto(scratch *dsp.Scratch, dsts [][]byte, sigs []dsp.Signal) [][]byte
	// PhaseDiffs returns the transmitted per-sample phase differences
	// for a bit stream: entry m is the phase change from sample m to
	// m+1. The interference matcher compares candidates against these
	// (Eq. 8).
	PhaseDiffs(bs []byte) []float64
	// PhaseDiffsInto is PhaseDiffs writing into dst's storage (grown when
	// too small).
	PhaseDiffsInto(dst []float64, bs []byte) []float64
	// DecideDiffs maps a stream of recovered per-sample phase-difference
	// estimates (aligned to a frame reference, with per-estimate
	// confidence weights in [0,1]) back to bits (§6.4).
	DecideDiffs(diffs, weights []float64) []byte
	// DecideDiffsInto is DecideDiffs writing into dst's storage (grown
	// when too small).
	DecideDiffsInto(dst []byte, diffs, weights []float64) []byte
	// StepPrior returns the wrapped distance from dphi to the nearest
	// phase difference the modulation can legally produce between two
	// consecutive samples. The matcher uses it to reject mirror-branch
	// artifacts; it must be symmetric under sign change of the
	// underlying data so it cannot bias decisions.
	StepPrior(dphi float64) float64
	// BackwardRefOffset is where the demodulator locks onto a conjugate
	// time-reversed stream, in samples past the origin of the reversed
	// per-sample difference sequence (§7.4). A continuous-phase modem
	// (MSK) locks exactly on the origin: 0. A constant-phase-per-symbol
	// modem (π/4-DQPSK) sees the reversed stream's symbol runs shifted
	// one sample early, so its demod-aligned reference sits
	// SamplesPerSymbol−1 samples late. The interference decoder
	// subtracts this when anchoring the known signal's reversed
	// difference sequence at the backward frame reference.
	BackwardRefOffset() int
}
