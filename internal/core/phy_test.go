package core

import (
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/dqpsk"
	"repro/internal/dsp"
	"repro/internal/frame"
	"repro/internal/msk"
)

// Both shipped modems satisfy the decoder's contract.
var (
	_ PhyModem = (*msk.Modem)(nil)
	_ PhyModem = (*dqpsk.Modem)(nil)
)

// TestDQPSKCleanDecode runs the full clean receive pipeline over π/4-DQPSK.
func TestDQPSKCleanDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := dqpsk.New()
	payload := make([]byte, 48)
	rng.Read(payload)
	pkt := frame.NewPacket(1, 2, 3, payload)
	sig := m.Modulate(frame.Marshal(pkt))
	floor := 1e-3
	rx := channel.Receive(dsp.NewNoiseSource(floor, 2), 400,
		channel.Transmission{Signal: sig, Link: channel.Link{Gain: 0.8, Phase: 1.3}, Delay: 200})
	d := NewDecoder(DefaultConfig(m, floor))
	res, err := d.Decode(rx, nil)
	if err != nil {
		t.Fatalf("clean DQPSK decode: %v", err)
	}
	if !res.Clean || !res.BodyOK {
		t.Fatalf("clean=%v bodyOK=%v", res.Clean, res.BodyOK)
	}
	if string(res.Packet.Payload) != string(payload) {
		t.Error("payload mismatch")
	}
}

// TestDQPSKInterferenceDecode is the §4 generality claim end to end: the
// full Algorithm 1 pipeline — detection, pilot alignment, Eq. 5/6
// amplitude estimation, Lemma 6.1 phase pairs, matching, symbol decisions
// — over a modulation the paper never implemented. Forward decoding only
// (the known packet starts first); see the dqpsk package comment for the
// mirroring limitation that reserves backward decoding to MSK.
func TestDQPSKInterferenceDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := dqpsk.New()
	payloadA := make([]byte, 64)
	payloadB := make([]byte, 64)
	rng.Read(payloadA)
	rng.Read(payloadB)
	pktA := frame.NewPacket(1, 2, 10, payloadA) // known (starts first)
	pktB := frame.NewPacket(2, 1, 20, payloadB) // wanted
	bitsA := frame.Marshal(pktA)
	bitsB := frame.Marshal(pktB)
	sigA := m.Modulate(bitsA)
	sigB := m.Modulate(bitsB)

	floor := 1e-3
	routerRx := channel.Receive(dsp.NewNoiseSource(floor, 4), 300,
		channel.Transmission{Signal: sigA, Link: channel.Link{Gain: 0.8, Phase: 0.5, FreqOffset: 0.007}},
		channel.Transmission{Signal: sigB, Link: channel.Link{Gain: 0.75, Phase: -1.0, FreqOffset: -0.006}, Delay: 1100},
	)
	relayed := channel.AmplifyTo(routerRx, 1)
	rx := channel.Receive(dsp.NewNoiseSource(floor, 5), 400,
		channel.Transmission{Signal: relayed, Link: channel.Link{Gain: 0.7, Phase: 2.0}, Delay: 50})

	buf := frame.NewSentBuffer(0)
	buf.Put(frame.SentRecord{Packet: pktA, Bits: bitsA, Samples: sigA})
	d := NewDecoder(DefaultConfig(m, 2*floor))
	res, err := d.Decode(rx, buf.Get)
	if err != nil {
		t.Fatalf("DQPSK interference decode: %v", err)
	}
	if res.Backward {
		t.Error("expected forward decode")
	}
	if res.KnownHeader != pktA.Header {
		t.Errorf("known header = %v", res.KnownHeader)
	}
	if ber := bits.BER(bitsB, res.WantedBits); ber > 0.03 {
		t.Errorf("DQPSK ANC frame BER = %.4f, want ≤ 0.03", ber)
	}
	if res.HeaderOK && res.Packet.Header != pktB.Header {
		t.Errorf("recovered header = %v, want Bob's", res.Packet.Header)
	}
}

// TestDQPSKInterferenceAcrossSeeds checks the DQPSK path is not a
// single-seed fluke.
func TestDQPSKInterferenceAcrossSeeds(t *testing.T) {
	m := dqpsk.New()
	floor := 1e-3
	var totalBER float64
	const trials = 4
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		payloadA := make([]byte, 64)
		payloadB := make([]byte, 64)
		rng.Read(payloadA)
		rng.Read(payloadB)
		pktA := frame.NewPacket(1, 2, uint32(seed), payloadA)
		pktB := frame.NewPacket(2, 1, uint32(seed), payloadB)
		bitsA := frame.Marshal(pktA)
		bitsB := frame.Marshal(pktB)
		sigA := m.Modulate(bitsA)
		sigB := m.Modulate(bitsB)
		routerRx := channel.Receive(dsp.NewNoiseSource(floor, 200+seed), 300,
			channel.Transmission{Signal: sigA, Link: channel.Link{Gain: 0.82, Phase: rng.Float64(), FreqOffset: 0.008}},
			channel.Transmission{Signal: sigB, Link: channel.Link{Gain: 0.7, Phase: -rng.Float64(), FreqOffset: -0.005}, Delay: 1000 + int(seed)*64},
		)
		relayed := channel.AmplifyTo(routerRx, 1)
		rx := channel.Receive(dsp.NewNoiseSource(floor, 300+seed), 400,
			channel.Transmission{Signal: relayed, Link: channel.Link{Gain: 0.72, Phase: 1.1}, Delay: 40})
		buf := frame.NewSentBuffer(0)
		buf.Put(frame.SentRecord{Packet: pktA, Bits: bitsA})
		d := NewDecoder(DefaultConfig(m, 2*floor))
		res, err := d.Decode(rx, buf.Get)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		totalBER += bits.BER(bitsB, res.WantedBits)
	}
	if avg := totalBER / trials; avg > 0.03 {
		t.Errorf("mean DQPSK ANC BER = %.4f over %d seeds", avg, trials)
	}
}
