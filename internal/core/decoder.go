package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/frame"
)

// Config parameterizes a Decoder.
type Config struct {
	// Modem is the phase-shift-keying modem used for all (de)modulation
	// (MSK in the paper; any PhyModem works, per §4).
	Modem PhyModem
	// Detector holds the §7.1 thresholds.
	Detector DetectorConfig
	// NoiseFloor is the receiver's known noise power (linear). Real
	// receivers calibrate it from idle air time; the simulator passes it
	// in directly.
	NoiseFloor float64
	// PilotMaxErrors tolerated when matching the pilot in decoded bits.
	PilotMaxErrors int
	// FallbackFrameBits, when positive, is the network's fixed frame
	// size. If the wanted packet's header fails its CRC, the recovered
	// bit stream is still trimmed (and, for backward decodes, flipped
	// back to forward orientation) to this length so FEC or the
	// evaluation harness can work with it — residual bit errors in the
	// header are corrected the same way payload errors are. Zero means
	// no fallback: a failed header leaves the raw stream untouched.
	FallbackFrameBits int

	// Ablation switches (all default off = full decoder). They disable
	// the refinements this implementation adds on top of the paper's
	// per-sample matcher; the matcher ablation benchmark quantifies each
	// one's contribution.
	NoConditioningWeights bool // weight all per-sample ∆φ equally
	NoMSKPrior            bool // drop the ±π/(2S) prior on ∆φ candidates
	NoBranchContinuity    bool // choose solution branches independently
}

// DefaultConfig returns the configuration used across the repository for
// the given modem and noise floor.
func DefaultConfig(m PhyModem, noiseFloor float64) Config {
	return Config{
		Modem:          m,
		Detector:       DefaultDetectorConfig(4 * m.SamplesPerSymbol() * 8),
		NoiseFloor:     noiseFloor,
		PilotMaxErrors: DefaultPilotMaxErrors,
	}
}

// KnownLookup resolves a header key to the sent (or overheard) packet that
// can cancel the interference — the Sent Packet Buffer access of §7.3.
type KnownLookup func(frame.Key) (frame.SentRecord, bool)

// Result is the outcome of decoding one reception.
type Result struct {
	// Detection reports what the §7.1 detectors saw.
	Detection Detection
	// Clean is true when the reception carried a single signal and was
	// decoded with standard MSK demodulation.
	Clean bool
	// Backward is true when the packet was recovered by running the
	// pipeline over the conjugated time-reversed stream (§7.4).
	Backward bool
	// KnownHeader identifies the packet that was cancelled out (unset for
	// clean receptions).
	KnownHeader frame.Header
	// Packet is the recovered packet. Header is valid when HeaderOK;
	// Payload when BodyOK.
	Packet frame.Packet
	// WantedBits is the recovered on-air frame bit stream of the wanted
	// signal in forward orientation, for bit-error accounting. When
	// HeaderOK is false the stream is untrimmed and may carry garbage
	// bits past the true frame end. The slice is owned by the Result —
	// never a view into decoder scratch — so it stays valid across later
	// decodes.
	WantedBits []byte
	HeaderOK   bool
	BodyOK     bool
	// Amplitudes holds the Eq. 5/6 estimates (interfered decodes only).
	Amplitudes AmplitudeEstimate
}

// Decoder errors.
var (
	ErrNoPacket     = errors.New("core: no packet detected")
	ErrNoPilot      = errors.New("core: pilot sequence not found")
	ErrUnknown      = errors.New("core: interfered signal matches no known packet")
	ErrNoAlignment  = errors.New("core: wanted signal alignment failed")
	ErrShortOverlap = errors.New("core: interfered region too short to estimate amplitudes")
)

// Decoder runs Algorithm 1 over reception windows.
//
// A Decoder owns (or shares, see SetWorkspace) a Workspace of reusable
// buffers, so it is NOT safe for concurrent use; give each goroutine its
// own decoder and workspace.
type Decoder struct {
	cfg Config
	// pilot and pilotDiffs cache the network pilot and its transmitted
	// per-sample difference profile — both fixed protocol constants —
	// so the head search and alignment refinement never recompute them.
	pilot      []byte
	pilotDiffs []float64
	ws         *Workspace
}

// NewDecoder returns a decoder for the given configuration.
func NewDecoder(cfg Config) *Decoder {
	if cfg.Modem == nil {
		panic("core: Config.Modem is nil")
	}
	if cfg.PilotMaxErrors <= 0 {
		cfg.PilotMaxErrors = DefaultPilotMaxErrors
	}
	if bps := cfg.Modem.BitsPerSymbol(); cfg.FallbackFrameBits > 0 && cfg.FallbackFrameBits%bps != 0 {
		// A backward fallback trim reverses the stream in symbol groups;
		// a frame size that splits a symbol is a configuration bug.
		panic(fmt.Sprintf("core: FallbackFrameBits %d is not a multiple of %d bits per symbol", cfg.FallbackFrameBits, bps))
	}
	pilot := bits.Pilot(bits.PilotLength)
	return &Decoder{
		cfg:        cfg,
		pilot:      pilot,
		pilotDiffs: cfg.Modem.PhaseDiffs(pilot),
	}
}

// SetWorkspace attaches a caller-owned workspace, sharing its buffers with
// every other decoder the caller points at it (one workspace per worker
// goroutine, see Workspace). A nil workspace reverts the decoder to a
// lazily allocated private one.
func (d *Decoder) SetWorkspace(ws *Workspace) { d.ws = ws }

// workspace returns the attached workspace, lazily creating a private one.
func (d *Decoder) workspace() *Workspace {
	if d.ws == nil {
		d.ws = NewWorkspace()
	}
	return d.ws
}

// Decode processes one reception window: it detects the packet, classifies
// interference, and runs either the standard demodulator or the
// interference decoder (forward, then backward) as Algorithm 1 prescribes.
//
// Decode is a DecodeBatch of one — the single-reception and burst paths
// are the same code, which is what keeps them bit-identical by
// construction.
//
//anc:hotpath
func (d *Decoder) Decode(rx dsp.Signal, lookup KnownLookup) (*Result, error) {
	ws := d.workspace()
	ws.oneItem[0] = BatchItem{Decoder: d, Rx: rx, Lookup: lookup}
	out := DecodeBatch(ws.oneItem[:], ws.oneOut[:])
	res, err := out[0].Result, out[0].Err
	// Drop the references so the workspace does not pin the reception
	// buffer or the result past this decode.
	ws.oneItem[0] = BatchItem{}
	ws.oneOut[0] = BatchResult{}
	return res, err
}

// decodeOne is the Algorithm 1 body shared by Decode and DecodeBatch; the
// caller has already prepared ws for at least len(rx) samples.
func (d *Decoder) decodeOne(ws *Workspace, rx dsp.Signal, lookup KnownLookup) (*Result, error) {
	det := DetectWith(ws, rx, d.cfg.NoiseFloor, d.cfg.Detector)
	if !det.Present {
		return nil, ErrNoPacket
	}
	if !det.Interfered {
		return d.decodeClean(ws, rx, det, false)
	}
	if lookup == nil {
		return nil, ErrUnknown
	}
	res, errFwd := d.decodeInterfered(ws, rx, det, lookup, false)
	if errFwd == nil {
		return res, nil
	}
	rxb := ConjReverseInto(ws.conj, rx)
	ws.conj = rxb
	detb := DetectWith(ws, rxb, d.cfg.NoiseFloor, d.cfg.Detector)
	if !detb.Present || !detb.Interfered {
		return nil, errFwd
	}
	res, errBwd := d.decodeInterfered(ws, rxb, detb, lookup, true)
	if errBwd != nil {
		return nil, fmt.Errorf("forward: %w; backward: %v", errFwd, errBwd)
	}
	return res, nil
}

// TryClean attempts a standard (single-signal) decode regardless of the
// interference classification. The "X" topology's destinations use it for
// opportunistic overhearing: a weak concurrent transmitter may corrupt the
// overheard packet, and the CRC flags (HeaderOK/BodyOK) report whether the
// snoop succeeded (§11.5).
func (d *Decoder) TryClean(rx dsp.Signal) (*Result, error) {
	ws := d.workspace()
	ws.prepareBatch(len(rx))
	det := DetectWith(ws, rx, d.cfg.NoiseFloor, d.cfg.Detector)
	if !det.Present {
		return nil, ErrNoPacket
	}
	return d.decodeClean(ws, rx, det, false)
}

// TryCleanBackward is TryClean over the conjugated time-reversed stream:
// it decodes the *last-ending* transmission in the window instead of the
// first-starting one. A snooping node uses it when the packet it wants to
// overhear started second in a collision.
func (d *Decoder) TryCleanBackward(rx dsp.Signal) (*Result, error) {
	ws := d.workspace()
	ws.prepareBatch(len(rx))
	rxb := ConjReverseInto(ws.conj, rx)
	ws.conj = rxb
	det := DetectWith(ws, rxb, d.cfg.NoiseFloor, d.cfg.Detector)
	if !det.Present {
		return nil, ErrNoPacket
	}
	return d.decodeClean(ws, rxb, det, true)
}

// PeekHeaders decodes the headers reachable without interference
// cancellation: the one at the head of the stream (first-starting packet)
// and the one at the tail (last-ending packet, read backward). Routers use
// the pair to choose between decode, amplify-and-forward, and drop (§7.5).
// Either pointer may be nil if that header did not decode.
func (d *Decoder) PeekHeaders(rx dsp.Signal) (first, last *frame.Header) {
	ws := d.workspace()
	ws.prepareBatch(len(rx))
	det := DetectWith(ws, rx, d.cfg.NoiseFloor, d.cfg.Detector)
	if !det.Present {
		return nil, nil
	}
	if h, _, _, err := d.findHead(ws, rx, det.Start, headLimit(det, len(rx))); err == nil {
		first = &h
	}
	rxb := ConjReverseInto(ws.conj, rx)
	ws.conj = rxb
	detb := DetectWith(ws, rxb, d.cfg.NoiseFloor, d.cfg.Detector)
	if detb.Present {
		if h, _, _, err := d.findHead(ws, rxb, detb.Start, headLimit(detb, len(rxb))); err == nil {
			last = &h
		}
	}
	return first, last
}

// headLimit bounds how far into the stream the clean-head search may read:
// up to the interference onset (plus a margin) for interfered receptions,
// or the packet end for clean ones.
func headLimit(det Detection, n int) int {
	lim := det.End
	if det.Interfered {
		lim = det.IStart
	}
	if lim > n {
		lim = n
	}
	return lim
}

// findHead locates the pilot and decodes the header in the clean head of a
// stream. It searches all sub-symbol sample offsets because the energy
// detector's start estimate is only window-accurate. It returns the
// decoded header, the sample index of the frame's reference sample, and
// the demodulated head bits from the frame start onward. The bits are a
// view into workspace buffers, valid until the next decode.
func (d *Decoder) findHead(ws *Workspace, rx dsp.Signal, start, limit int) (frame.Header, int, []byte, error) {
	m := d.cfg.Modem
	sps := m.SamplesPerSymbol()
	if limit > len(rx) {
		limit = len(rx)
	}
	// Every sub-symbol offset is scored by pilot bit errors and the best
	// one wins: a half-symbol misalignment often still demodulates the
	// pilot, but would skew the phase-difference matcher downstream. All
	// offsets' views are demodulated as one batch — they share the modem's
	// internal scratch while each keeps its own bit storage, so scoring
	// needs no double buffering.
	views := dsp.GrowSignals(ws.headViews, sps)[:0]
	for off := 0; off < sps; off++ {
		lo := start + off
		if lo >= limit {
			break
		}
		views = append(views, rx[lo:limit])
	}
	ws.headViews = views
	if len(views) == 0 {
		return frame.Header{}, 0, nil, ErrNoPilot
	}
	// The per-offset bit destinations are equal-stride views into one
	// retained flat buffer: each slot's capacity is clamped to its stride,
	// so DemodulateInto writes in place (views[0] is the longest view, so
	// the stride bounds every slot) and one buffer serves the whole batch.
	stride := m.NumBits(len(views[0]))
	flat := dsp.GrowBytes(ws.headFlat, len(views)*stride)
	ws.headFlat = flat
	dsts := dsp.GrowByteSlices(ws.headBatch, len(views))
	for i := range dsts {
		dsts[i] = flat[i*stride : i*stride : (i+1)*stride]
	}
	ws.headBatch = m.DemodulateBatchInto(&ws.modem, dsts, views)
	type candidate struct {
		h        frame.Header
		frameRef int
		bits     []byte
		errs     int
	}
	best := candidate{errs: 1 << 30}
	for off, bs := range ws.headBatch {
		k, errs := FindPatternScored(bs, d.pilot, d.cfg.PilotMaxErrors)
		if k < 0 || errs >= best.errs {
			continue
		}
		h, err := frame.DecodeHeader(bs[k+bits.PilotLength:])
		if err != nil {
			continue
		}
		// k is a bit index; the frame reference sits k/bitsPerSymbol
		// symbols into the stream (a non-symbol-aligned k is a false
		// match whose header would have failed above).
		ref := start + off + k/m.BitsPerSymbol()*sps
		best = candidate{h: h, frameRef: ref, bits: bs[k:], errs: errs}
	}
	for i := range views {
		views[i] = nil // don't pin the reception past this call
	}
	if best.errs == 1<<30 {
		return frame.Header{}, 0, nil, ErrNoPilot
	}
	// Bit-level pilot matching can succeed at half-symbol misalignments
	// when the SNR is high, so refine the reference at sample resolution:
	// slide within ±1 symbol and keep the shift whose per-sample phase
	// differences best correlate with the pilot's known differences.
	ref := d.refineRef(rx, best.frameRef, limit)
	if ref != best.frameRef {
		best.frameRef = ref
		bs := m.DemodulateInto(&ws.modem, ws.headBits, rx[ref:limit])
		ws.headBits = bs
		if len(bs) > 0 {
			best.bits = bs
		}
	}
	return best.h, best.frameRef, best.bits, nil
}

// refineRef returns the sample shift of ref (within ±1 symbol) that
// maximizes Σ cos(observed ∆ − expected ∆) over the pilot region.
func (d *Decoder) refineRef(rx dsp.Signal, ref, limit int) int {
	sps := d.cfg.Modem.SamplesPerSymbol()
	best, _ := dsp.BestSignalCorrelation(rx, d.pilotDiffs, ref-sps+1, ref+sps, limit, ref)
	return best
}

// alignWanted locates the wanted frame's reference sample in the
// recovered ∆φ stream: at every candidate offset it decodes one pilot's
// worth of symbols with the modem's decision rule and Hamming-matches the
// known pilot — the §7.2 matching process ("she tries to match the known
// pilot sequence with every sequence of 64 bits"), applied to the
// interference-decoded stream. The decoded-bit criterion discriminates
// far more sharply than any soft correlation: a random offset produces
// ≈32 of 64 wrong bits, the true one a handful.
//
// The search pattern is the forward pilot in either orientation: what
// leads a backward stream is the frame's mirrored tail read in reverse,
// and the mirror is laid out in symbol units (frame.MarshalFor) precisely
// so that under reversal it decodes to the forward pilot for every
// registered modem, not just one-bit-per-symbol ones.
func (d *Decoder) alignWanted(ws *Workspace, diffs []float64, lo, hi int) (int, int) {
	m := d.cfg.Modem
	pilot := d.pilot
	sps := m.SamplesPerSymbol()
	need := len(pilot) / m.BitsPerSymbol() * sps
	if lo < 0 {
		lo = 0
	}
	// The pilot sits right at the interference onset — the stretch where
	// the amplitude estimates are weakest — so the alignment tolerance is
	// looser than the clean-head pilot search's. Even at 12 of 64 errors
	// a false match costs P(Binom(64,½) ≤ 12) ≈ 4e−8 per offset.
	maxErrs := 2 * d.cfg.PilotMaxErrors
	best, bestErrs := -1, maxErrs+1
	for o := lo; o < hi && o+need <= len(diffs); o++ {
		got := m.DecideDiffsInto(ws.alignLog, diffs[o:o+need], nil)
		ws.alignLog = got
		errs := 0
		for i, p := range pilot {
			if i >= len(got) || got[i] != p {
				errs++
				if errs >= bestErrs {
					break
				}
			}
		}
		if errs < bestErrs {
			best, bestErrs = o, errs
		}
	}
	if best < 0 {
		return best, bestErrs
	}
	// Sub-symbol refinement: the bit-level match tolerates ±1-sample
	// misalignments that would corrupt the rest of the frame. Slide
	// within one symbol maximizing the soft agreement with the pilot's
	// known difference profile.
	// In both orientations the stream's leading wanted region decodes to
	// the forward pilot (that is what the coarse match above verified),
	// so the soft profile is the pilot's forward difference sequence.
	bestRef, _ := dsp.BestDiffsCorrelation(diffs, d.pilotDiffs, best-sps+1, best+sps, best)
	return bestRef, bestErrs
}

// decodeClean demodulates a single-signal reception. With backward set,
// the caller passed a conjugate-reversed stream; the frame is flipped to
// forward orientation before body extraction, exactly as in the
// interfered backward path.
func (d *Decoder) decodeClean(ws *Workspace, rx dsp.Signal, det Detection, backward bool) (*Result, error) {
	h, _, frameBits, err := d.findHead(ws, rx, det.Start, det.End)
	if err != nil {
		return nil, err
	}
	exact := ownedFrame(frameBits, frame.FrameBits(int(h.Len)), d.cfg.Modem.BitsPerSymbol(), backward)
	res := &Result{Detection: det, Clean: true, Backward: backward, HeaderOK: true, WantedBits: exact}
	res.Packet.Header = h
	payload, err := frame.UnmarshalBody(h, exact)
	if err == nil {
		res.BodyOK = true
		res.Packet.Payload = payload
	}
	return res, nil
}

// decodeInterfered runs the §6 algorithm over a stream whose known packet
// starts first in the given orientation. The backward flag only controls
// how the known record's bits are oriented and how the recovered frame is
// flipped back; the caller passes the already conjugate-reversed stream.
func (d *Decoder) decodeInterfered(ws *Workspace, rx dsp.Signal, det Detection, lookup KnownLookup, backward bool) (*Result, error) {
	m := d.cfg.Modem
	sps := m.SamplesPerSymbol()
	w := d.cfg.Detector.Window

	// 1. Clean-head decode: our own pilot and header (§7.2, Fig. 5).
	hdr, frameRef, _, err := d.findHead(ws, rx, det.Start, headLimit(det, len(rx))+4*sps)
	if err != nil {
		return nil, err
	}
	rec, ok := lookup(hdr.Key())
	if !ok {
		return nil, fmt.Errorf("%w: header %v", ErrUnknown, hdr)
	}
	knownDiffs := m.PhaseDiffsInto(ws.known, rec.Bits)
	ws.known = knownDiffs
	if backward {
		// Conjugate time reversal reverses the per-sample difference
		// sequence without negating it (see ConjReverse).
		reverseFloats(knownDiffs)
		// findHead locked where the reversed stream demodulates — for a
		// constant-phase-per-symbol modem that is BackwardRefOffset
		// samples past the origin of the reversed difference sequence.
		// The known diffs anchor at the origin, so shift back.
		frameRef -= m.BackwardRefOffset()
		if frameRef < 0 {
			frameRef = 0
		}
	}
	knownEnd := frameRef + 1 + len(knownDiffs) // one past the known signal

	// 2. Amplitude estimation (§6.2) over the doubly-occupied region,
	// with a window-sized guard against edge bias, and assignment of the
	// known amplitude from the interference-free head power.
	lo, hi := det.IStart, det.IEnd
	if lo < frameRef {
		lo = frameRef
	}
	if hi > knownEnd {
		hi = knownEnd
	}
	if hi-lo > 4*w {
		lo += w
		hi -= w
	}
	if hi-lo < 64 {
		return nil, ErrShortOverlap
	}
	est, err := estimateAmplitudesWith(ws, rx[lo:hi])
	if err != nil {
		return nil, err
	}
	headHi := det.IStart
	if headHi > knownEnd {
		headHi = knownEnd
	}
	headPower := rx.View(frameRef, headHi).Power() - d.cfg.NoiseFloor
	if headPower < 0 {
		headPower = 0
	}
	est = AssignAmplitudes(est, headPower)

	// 3. Per-transition ∆φ estimates. Inside the known signal's span the
	// Lemma 6.1 candidates are disambiguated by the known phase
	// differences (Eqs. 7–8); past its end only the wanted signal
	// remains and plain differential phases apply. When the two
	// amplitudes are too close for the head-power assignment to be
	// trustworthy, both assignments are tried and the one whose known
	// signal matches better (lower mean residual) wins — a wrong
	// assignment mirrors the solution geometry and shows up as a large
	// matching residual.
	end := det.End
	if end > len(rx) {
		end = len(rx)
	}
	diffs, weights, residual := d.extractDiffs(ws, false, rx, est, knownDiffs, frameRef, knownEnd, end)
	if gap := math.Abs(est.A-est.B) / math.Max(est.A, est.B); gap < 0.15 {
		swapped := est
		swapped.A, swapped.B = est.B, est.A
		d2, w2, r2 := d.extractDiffs(ws, true, rx, swapped, knownDiffs, frameRef, knownEnd, end)
		if r2 < residual {
			diffs, weights, est = d2, w2, swapped
		}
	}

	// 4. Locate the wanted frame's start in the ∆φ stream by pilot
	// correlation (§7.2: "Once Bob's signal starts, the estimated phase
	// differences will correspond to the pilot sequence").
	searchLo := det.IStart - 3*w
	if searchLo < frameRef {
		searchLo = frameRef
	}
	searchHi := det.IStart + 3*w
	r0, errs := d.alignWanted(ws, diffs, searchLo, searchHi)
	if r0 < 0 {
		return nil, fmt.Errorf("%w: best pilot match %d errors", ErrNoAlignment, errs)
	}

	// 5. Per-symbol decision: sum the S per-sample differences of each
	// symbol; non-negative means 1 (§6.4).
	wanted := m.DecideDiffsInto(ws.wanted, diffs[r0:], weights[r0:])
	ws.wanted = wanted

	res := &Result{
		Detection:   det,
		Backward:    backward,
		KnownHeader: hdr,
		Amplitudes:  est,
	}

	// 6. Parse the wanted frame. In backward orientation the recovered
	// stream is the true frame reversed; its mirrored tail presents
	// pilot+header first, so header decoding is identical, and the full
	// frame is flipped before body extraction.
	wh, err := frame.DecodeHeader(wanted[bits.PilotLength:])
	if err != nil {
		// Header unusable; with a configured fixed frame size the bit
		// stream is still normalized for downstream error correction.
		if d.cfg.FallbackFrameBits > 0 {
			res.WantedBits = ownedFrame(wanted, d.cfg.FallbackFrameBits, m.BitsPerSymbol(), backward)
		} else {
			res.WantedBits = append([]byte(nil), wanted...)
		}
		return res, nil
	}
	res.HeaderOK = true
	res.Packet.Header = wh
	exact := ownedFrame(wanted, frame.FrameBits(int(wh.Len)), m.BitsPerSymbol(), backward)
	res.WantedBits = exact
	if payload, err := frame.UnmarshalBody(wh, exact); err == nil {
		res.BodyOK = true
		res.Packet.Payload = payload
	}
	return res, nil
}

// reverseFloats reverses a float slice in place.
func reverseFloats(xs []float64) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// ownedFrame copies a recovered bit stream into a fresh slice trimmed or
// zero-padded to the frame length, flipping backward-oriented streams to
// forward order. Trimming happens before the flip because the garbage is
// at the decode-order tail. The flip reverses in symbol units: a
// time-reversed signal hands a multi-bit modem its symbols in reverse
// order, but each symbol still decodes to its bits in transmit order.
// The copy is what lets Result.WantedBits outlive the decoder's reused
// scratch buffers.
func ownedFrame(stream []byte, frameBits, bitsPerSymbol int, backward bool) []byte {
	exact := make([]byte, frameBits)
	copy(exact, stream) // shorter streams leave zero padding in place
	if backward {
		bits.ReverseGroupsInPlace(exact, bitsPerSymbol)
	}
	return exact
}

// branchContinuityPenalty is the matcher's cost for switching solution
// branches between consecutive samples. Tuned empirically: large enough to
// suppress noise-driven flips in ill-conditioned stretches, small enough
// (≪ π/4) never to override a clear phase-difference match.
const branchContinuityPenalty = 0.3

// extractDiffs runs the Eq. 7–8 matching loop over [frameRef, end),
// returning the per-transition ∆φ estimates of the wanted signal, their
// conditioning weights, and the mean matching residual of the known
// signal (the quantity an amplitude mis-assignment inflates). The diffs
// and weights live in the workspace (the alt pair when alt is set, so the
// swapped-assignment trial never clobbers the primary estimates); entries
// before frameRef are zeroed because the alignment refinement may read
// slightly below the frame reference.
func (d *Decoder) extractDiffs(ws *Workspace, alt bool, rx dsp.Signal, est AmplitudeEstimate, knownDiffs []float64, frameRef, knownEnd, end int) ([]float64, []float64, float64) {
	m := d.cfg.Modem
	diffsBuf, weightsBuf := &ws.diffs, &ws.weights
	if alt {
		diffsBuf, weightsBuf = &ws.altDiffs, &ws.altWts
	}
	diffs := growFloats(diffsBuf, end-1)
	weights := growFloats(weightsBuf, end-1)
	for n := 0; n < frameRef && n < end-1; n++ {
		diffs[n] = 0
		weights[n] = 0
	}
	var prev [2]PhasePair
	prevCond := 0.0
	prevChoice := 0
	havePrev := false
	var residualSum float64
	var residualN int
	for n := frameRef; n+1 < end; n++ {
		if n+1 >= knownEnd {
			diffs[n] = dsp.PhaseDiff(rx[n], rx[n+1])
			weights[n] = 1
			continue
		}
		if !havePrev {
			prev = SolvePhases(rx[n], est.A, est.B)
			prevCond = conditioning(rx[n], est.A, est.B)
			havePrev = true
		}
		cur := SolvePhases(rx[n+1], est.A, est.B)
		curCond := conditioning(rx[n+1], est.A, est.B)
		kd := knownDiffs[n-frameRef]
		bestCost := math.Inf(1)
		bestErr := 0.0
		bestX := 0
		var bestDiff float64
		for x := 0; x < 2; x++ {
			for y := 0; y < 2; y++ {
				dphi := dsp.WrapPhase(cur[x].Phi - prev[y].Phi)
				// Cost: mismatch of the known signal's phase difference
				// (Eq. 8), plus a prior that the wanted difference must
				// itself be a legal per-sample step of the modulation.
				// The prior is symmetric in sign so it cannot bias the
				// bit decision; it only rejects mirror-branch artifacts.
				// A small continuity bonus prefers re-selecting the
				// previous sample's solution branch: the physical
				// configuration (which side of y the known vector lies)
				// evolves continuously, so branch flips should be rare.
				e := math.Abs(dsp.WrapPhase(cur[x].Theta - prev[y].Theta - kd))
				cost := e
				if !d.cfg.NoMSKPrior {
					cost += 0.5 * m.StepPrior(dphi)
				}
				if y != prevChoice && !d.cfg.NoBranchContinuity {
					cost += branchContinuityPenalty
				}
				if cost < bestCost {
					bestCost = cost
					bestErr = e
					bestDiff = dphi
					bestX = x
				}
			}
		}
		prevChoice = bestX
		diffs[n] = bestDiff
		residualSum += bestErr
		residualN++
		// Where the circles of Fig. 4 are nearly tangent (|sin(θ−φ)|
		// small) the φ estimate is ill-conditioned; its contribution to
		// the symbol decision is weighted down accordingly.
		if d.cfg.NoConditioningWeights {
			weights[n] = 1
		} else {
			weights[n] = math.Min(prevCond, curCond) + 0.05
		}
		prev, prevCond = cur, curCond
	}
	if residualN == 0 {
		return diffs, weights, math.Inf(1)
	}
	return diffs, weights, residualSum / float64(residualN)
}
