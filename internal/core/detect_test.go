package core

import (
	"math/rand"
	"testing"

	"repro/internal/dsp"
	"repro/internal/msk"
)

func TestDetectNothingInNoise(t *testing.T) {
	ns := dsp.NewNoiseSource(0.001, 1)
	det := Detect(ns.Samples(2000), 0.001, DefaultDetectorConfig(64))
	if det.Present {
		t.Error("packet detected in pure noise")
	}
}

func TestDetectCleanPacket(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := msk.New()
	sig := m.Modulate(randomBits(rng, 300)).Delay(500).PadTo(2500)
	noise := dsp.NewNoiseSource(0.001, 3)
	rx := noise.AddTo(sig)
	det := Detect(rx, 0.001, DefaultDetectorConfig(64))
	if !det.Present {
		t.Fatal("packet not detected")
	}
	if det.Interfered {
		t.Error("clean packet classified as interfered")
	}
	// True extent: samples [500, 500+1201).
	if det.Start > 520 || det.Start < 380 {
		t.Errorf("Start = %d, want ≈ 500", det.Start)
	}
	if det.End < 1690 || det.End > 1790 {
		t.Errorf("End = %d, want ≈ 1701", det.End)
	}
}

func TestDetectInterferedRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := msk.New()
	a := m.Modulate(randomBits(rng, 600))             // samples [0, 2401)
	b := m.Modulate(randomBits(rng, 600)).Delay(1000) // samples [1000, 3401)
	rx := dsp.NewNoiseSource(0.0005, 5).AddTo(a.Add(b).PadTo(3600))
	det := Detect(rx, 0.0005, DefaultDetectorConfig(64))
	if !det.Present || !det.Interfered {
		t.Fatalf("detection = %+v, want present and interfered", det)
	}
	// Interference spans ≈ [1000, 2401).
	if det.IStart < 850 || det.IStart > 1100 {
		t.Errorf("IStart = %d, want ≈ 1000", det.IStart)
	}
	if det.IEnd < 2300 || det.IEnd > 2550 {
		t.Errorf("IEnd = %d, want ≈ 2401", det.IEnd)
	}
}

func TestDetectCleanAtOperatingSNR(t *testing.T) {
	// At 25 dB SNR (the paper's practical regime) a clean MSK packet must
	// not be misclassified as interfered by noise-driven energy variance.
	rng := rand.New(rand.NewSource(6))
	m := msk.New()
	sig := m.Modulate(randomBits(rng, 1000)).Delay(300)
	floor := dsp.FromDB(-25)
	rx := dsp.NewNoiseSource(floor, 7).AddTo(sig.PadTo(len(sig) + 600))
	det := Detect(rx, floor, DefaultDetectorConfig(128))
	if !det.Present {
		t.Fatal("packet not detected")
	}
	if det.Interfered {
		t.Error("clean packet at 25 dB classified as interfered")
	}
}

func TestDetectAsymmetricInterference(t *testing.T) {
	// SIR −3 dB (wanted twice the power of known) must still trip the
	// variance detector — the paper's Fig. 13 operating range.
	rng := rand.New(rand.NewSource(8))
	a := msk.New(WithA(1)).Modulate(randomBits(rng, 500))
	b := msk.New(WithA(1.41)).Modulate(randomBits(rng, 500)).Delay(700)
	floor := 0.001
	rx := dsp.NewNoiseSource(floor, 9).AddTo(a.Add(b).PadTo(3100))
	det := Detect(rx, floor, DefaultDetectorConfig(64))
	if !det.Interfered {
		t.Error("−3 dB SIR interference not detected")
	}
}

func TestDetectZeroNoiseFloor(t *testing.T) {
	m := msk.New()
	sig := m.Modulate(randomBits(rand.New(rand.NewSource(10)), 200)).Delay(100).PadTo(1200)
	det := Detect(sig, 0, DefaultDetectorConfig(64))
	if !det.Present {
		t.Error("noiseless packet not detected")
	}
}

func TestDetectDegenerateInputs(t *testing.T) {
	cfg := DefaultDetectorConfig(64)
	if det := Detect(make(dsp.Signal, 10), 0.1, cfg); det.Present {
		t.Error("window longer than signal should detect nothing")
	}
	if det := Detect(nil, 0.1, cfg); det.Present {
		t.Error("empty signal detected a packet")
	}
	if det := Detect(make(dsp.Signal, 100), 0.1, DetectorConfig{}); det.Present {
		t.Error("zero window config detected a packet")
	}
}
