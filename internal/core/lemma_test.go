package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

// phaseClose reports whether two angles agree modulo 2π.
func phaseClose(a, b, tol float64) bool {
	return math.Abs(dsp.WrapPhase(a-b)) <= tol
}

func TestSolvePhasesRecoversTruth(t *testing.T) {
	// For any mixture y = A·e^{iθ} + B·e^{iφ}, one of the two returned
	// pairs must be (θ, φ) itself.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		a := 0.1 + rng.Float64()*3
		b := 0.1 + rng.Float64()*3
		theta := rng.Float64()*2*math.Pi - math.Pi
		phi := rng.Float64()*2*math.Pi - math.Pi
		y := complex(a, 0)*cmplx.Exp(complex(0, theta)) + complex(b, 0)*cmplx.Exp(complex(0, phi))
		sols := SolvePhases(y, a, b)
		found := false
		for _, s := range sols {
			if phaseClose(s.Theta, theta, 1e-6) && phaseClose(s.Phi, phi, 1e-6) {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: truth (%.4f, %.4f) not among %v", trial, theta, phi, sols)
		}
	}
}

func TestSolvePhasesBothSolutionsReconstruct(t *testing.T) {
	// Both candidate pairs must reproduce the observed sample — they are
	// the two intersection points of the circles in Fig. 4.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		a := 0.1 + rng.Float64()*2
		b := 0.1 + rng.Float64()*2
		y := complex(a, 0)*cmplx.Exp(complex(0, rng.Float64()*7)) +
			complex(b, 0)*cmplx.Exp(complex(0, rng.Float64()*7))
		for i, s := range SolvePhases(y, a, b) {
			if cmplx.Abs(Reconstruct(s, a, b)-y) > 1e-6 {
				t.Fatalf("trial %d: solution %d does not reconstruct y", trial, i)
			}
		}
	}
}

func TestSolvePhasesPairingConvention(t *testing.T) {
	// Lemma 6.1: for each θ solution there is a *unique* matching φ. The
	// + root of θ pairs with the − root of φ. Verify the cross pairing
	// does NOT reconstruct (except in degenerate tangency).
	a, b := 1.0, 0.7
	theta, phi := 0.4, -1.3
	y := complex(a, 0)*cmplx.Exp(complex(0, theta)) + complex(b, 0)*cmplx.Exp(complex(0, phi))
	sols := SolvePhases(y, a, b)
	cross := PhasePair{Theta: sols[0].Theta, Phi: sols[1].Phi}
	if cmplx.Abs(Reconstruct(cross, a, b)-y) < 1e-6 {
		t.Error("cross-paired solution unexpectedly reconstructs y")
	}
}

func TestSolvePhasesClampsD(t *testing.T) {
	// |y| slightly outside [|A−B|, A+B] (noise) must not produce NaNs.
	a, b := 1.0, 0.5
	for _, mag := range []float64{a + b + 0.01, a - b - 0.01} {
		y := complex(mag, 0) * cmplx.Exp(complex(0, 0.3))
		for _, s := range SolvePhases(y, a, b) {
			if math.IsNaN(s.Theta) || math.IsNaN(s.Phi) {
				t.Fatalf("NaN solution for |y|=%v", mag)
			}
		}
	}
}

func TestSolvePhasesDegenerate(t *testing.T) {
	// B = 0: both phases collapse to arg(y).
	y := cmplx.Exp(complex(0, 1.1))
	sols := SolvePhases(y, 1, 0)
	for _, s := range sols {
		if !phaseClose(s.Theta, 1.1, 1e-9) || !phaseClose(s.Phi, 1.1, 1e-9) {
			t.Errorf("degenerate solution %v, want collapse to 1.1", s)
		}
	}
}

func TestSolvePhasesTangency(t *testing.T) {
	// |y| = A+B exactly: the circles are tangent and both solutions
	// coincide with θ = φ = arg(y).
	a, b := 1.2, 0.8
	y := complex(a+b, 0) * cmplx.Exp(complex(0, -0.7))
	// |y|² = (a+b)² only up to rounding, so D = 1−ε and the residual root
	// √(1−D²) ≈ √(2ε) is far larger than ε; tolerances must reflect that.
	sols := SolvePhases(y, a, b)
	if !phaseClose(sols[0].Theta, sols[1].Theta, 1e-3) {
		t.Error("tangent solutions differ")
	}
	if !phaseClose(sols[0].Theta, -0.7, 1e-3) {
		t.Errorf("tangent θ = %v, want −0.7", sols[0].Theta)
	}
}

func TestSolvePhasesProperty(t *testing.T) {
	f := func(aRaw, bRaw, thetaRaw, phiRaw float64) bool {
		a := 0.05 + math.Abs(math.Mod(aRaw, 5))
		b := 0.05 + math.Abs(math.Mod(bRaw, 5))
		theta := math.Mod(thetaRaw, math.Pi)
		phi := math.Mod(phiRaw, math.Pi)
		y := complex(a, 0)*cmplx.Exp(complex(0, theta)) + complex(b, 0)*cmplx.Exp(complex(0, phi))
		for _, s := range SolvePhases(y, a, b) {
			if cmplx.Abs(Reconstruct(s, a, b)-y) > 1e-6*(a+b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
