package core

import "repro/internal/dsp"

// BatchItem is one reception of a burst: the decoder that receives it,
// the reception window, and the sent-buffer lookup that resolves its
// known packet (nil when the receiver knows nothing, exactly as in
// Decoder.Decode).
type BatchItem struct {
	Decoder *Decoder
	Rx      dsp.Signal
	Lookup  KnownLookup
}

// BatchResult is the outcome of one batch item, carrying exactly what the
// corresponding Decoder.Decode call would have returned.
type BatchResult struct {
	Result *Result
	Err    error
}

// DecodeBatch decodes a burst of receptions in one pass — the batch entry
// point of the decode pipeline. Items decode strictly in order, each
// through the full Algorithm 1 (detect, clean or interfered, forward then
// backward), so out[i] is bit-identical to items[i].Decoder.Decode(...);
// what the batch amortizes is the per-reception setup: each distinct
// workspace is prepared once at the batch's largest reception length
// (profile and decision-bit scratch carved contiguously from its arena,
// see Workspace.prepareBatch) and the detector's moving window is re-wound
// once and only reset between receptions.
//
// The typical burst — one simulation slot's receptions decoded by nodes
// sharing a worker's workspace — prepares exactly once. Items with
// distinct workspaces still decode correctly; they just re-prepare at
// each workspace switch.
//
// out is reused when its capacity suffices and returned resized to
// len(items). A nil item Decoder panics, matching a nil-receiver Decode.
//
//anc:hotpath
func DecodeBatch(items []BatchItem, out []BatchResult) []BatchResult {
	if cap(out) < len(items) {
		out = make([]BatchResult, len(items))
	}
	out = out[:len(items)]
	if len(items) == 0 {
		return out
	}
	maxLen := 0
	for i := range items {
		if n := len(items[i].Rx); n > maxLen {
			maxLen = n
		}
	}
	var prepared *Workspace
	for i := range items {
		it := &items[i]
		ws := it.Decoder.workspace()
		if ws != prepared {
			ws.prepareBatch(maxLen)
			prepared = ws
		}
		out[i].Result, out[i].Err = it.Decoder.decodeOne(ws, it.Rx, it.Lookup)
	}
	return out
}
