package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/frame"
	"repro/internal/msk"
)

// abExchange synthesizes one full Alice–Bob ANC exchange (Fig. 1d): both
// transmit simultaneously (with Bob offset by bobDelay samples), the relay
// receives the superposition plus its own noise, re-amplifies to unit
// power, and both endpoints receive the broadcast through their own links
// plus their own noise.
type abExchange struct {
	modem        *msk.Modem
	pktA, pktB   frame.Packet
	bitsA, bitsB []byte
	rxA, rxB     dsp.Signal
	floorA       float64
	floorB       float64
	bufA, bufB   *frame.SentBuffer
}

// abConfig returns the decoder configuration the exchange tests use: the
// defaults plus the fixed frame size, so a header hit by residual bit
// errors still yields forward-oriented, frame-aligned bits for BER
// accounting (exactly how the simulator configures its nodes).
func abConfig(m PhyModem, floor float64) Config {
	cfg := DefaultConfig(m, floor)
	cfg.FallbackFrameBits = frame.FrameBits(64)
	return cfg
}

func makeABExchange(t *testing.T, seed int64, bobDelay int, ampA, ampB float64) *abExchange {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := msk.New()

	payloadA := make([]byte, 64)
	payloadB := make([]byte, 64)
	rng.Read(payloadA)
	rng.Read(payloadB)
	pktA := frame.NewPacket(1, 2, 100, payloadA) // Alice → Bob
	pktB := frame.NewPacket(2, 1, 200, payloadB) // Bob → Alice
	bitsA := frame.Marshal(pktA)
	bitsB := frame.Marshal(pktB)

	modA := msk.New(msk.WithAmplitude(ampA))
	modB := msk.New(msk.WithAmplitude(ampB))
	sigA := modA.Modulate(bitsA)
	sigB := modB.Modulate(bitsB)

	// Uplink: both signals interfere at the router.
	routerNoise := dsp.NewNoiseSource(1e-3, seed+1)
	// The two uplinks carry distinct residual carrier offsets, as any two
	// physical oscillators do. The relative CFO sweeps the inter-signal
	// phase across the packet, which the Eq. 5/6 amplitude estimator
	// depends on (see mixedMSK in amplitude_test.go).
	routerRx := channel.Receive(routerNoise, 200,
		channel.Transmission{Signal: sigA, Link: channel.Link{Gain: 0.8, Phase: 0.7, FreqOffset: 0.006}},
		channel.Transmission{Signal: sigB, Link: channel.Link{Gain: 0.75, Phase: -1.1, FreqOffset: -0.008}, Delay: bobDelay},
	)
	// The router amplifies the interfered signal to unit transmit power
	// and broadcasts (§2) — noise and all.
	relayed := channel.AmplifyTo(routerRx, 1)

	// Downlink to each endpoint.
	floorA, floorB := 1e-3, 1e-3
	rxA := channel.Receive(dsp.NewNoiseSource(floorA, seed+2), 300,
		channel.Transmission{Signal: relayed, Link: channel.Link{Gain: 0.7, Phase: 2.2}, Delay: 50})
	rxB := channel.Receive(dsp.NewNoiseSource(floorB, seed+3), 300,
		channel.Transmission{Signal: relayed, Link: channel.Link{Gain: 0.72, Phase: 0.4}, Delay: 80})

	bufA := frame.NewSentBuffer(0)
	bufA.Put(frame.SentRecord{Packet: pktA, Bits: bitsA, Samples: sigA})
	bufB := frame.NewSentBuffer(0)
	bufB.Put(frame.SentRecord{Packet: pktB, Bits: bitsB, Samples: sigB})

	return &abExchange{
		modem: m, pktA: pktA, pktB: pktB, bitsA: bitsA, bitsB: bitsB,
		rxA: rxA, rxB: rxB, floorA: floorA, floorB: floorB,
		bufA: bufA, bufB: bufB,
	}
}

func TestDecodeAliceRecoversBob(t *testing.T) {
	ex := makeABExchange(t, 1, 900, 1, 1)
	d := NewDecoder(abConfig(ex.modem, ex.floorA*2)) // floor: own + relayed noise
	res, err := d.Decode(ex.rxA, ex.bufA.Get)
	if err != nil {
		t.Fatalf("Alice decode: %v", err)
	}
	if res.Clean {
		t.Fatal("interfered reception decoded as clean")
	}
	if res.Backward {
		t.Error("Alice (first transmitter) should decode forward")
	}
	if res.KnownHeader != ex.pktA.Header {
		t.Errorf("known header = %v, want Alice's", res.KnownHeader)
	}
	if !res.HeaderOK {
		t.Fatal("wanted header failed")
	}
	if res.Packet.Header != ex.pktB.Header {
		t.Errorf("recovered header = %v, want Bob's %v", res.Packet.Header, ex.pktB.Header)
	}
	// The paper's system delivers ANC packets with a residual 2–4% BER
	// and corrects them with FEC (§11.2); the raw decode is judged by
	// BER, and payload equality only when the CRC happened to pass.
	if ber := bits.BER(ex.bitsB, res.WantedBits); ber > 0.02 {
		t.Errorf("frame BER = %.4f, want ≤ 0.02", ber)
	}
	if res.BodyOK && string(res.Packet.Payload) != string(ex.pktB.Payload) {
		t.Error("payload mismatch despite CRC pass")
	}
}

func TestDecodeBobRecoversAliceBackward(t *testing.T) {
	ex := makeABExchange(t, 2, 900, 1, 1)
	d := NewDecoder(abConfig(ex.modem, ex.floorB*2))
	res, err := d.Decode(ex.rxB, ex.bufB.Get)
	if err != nil {
		t.Fatalf("Bob decode: %v", err)
	}
	if !res.Backward {
		t.Error("Bob (second transmitter) should decode backward")
	}
	if res.KnownHeader != ex.pktB.Header {
		t.Errorf("known header = %v, want Bob's", res.KnownHeader)
	}
	if res.HeaderOK && res.Packet.Header != ex.pktA.Header {
		t.Fatalf("recovered header = %v, want Alice's", res.Packet.Header)
	}
	if ber := bits.BER(ex.bitsA, res.WantedBits); ber > 0.02 {
		t.Errorf("frame BER = %.4f, want ≤ 0.02", ber)
	}
	if res.BodyOK && string(res.Packet.Payload) != string(ex.pktA.Payload) {
		t.Error("payload mismatch despite CRC pass")
	}
}

func TestDecodeFrameBERLow(t *testing.T) {
	// The recovered frame bits should have BER in the paper's 2–4% range
	// or better at these SNRs.
	var total, count float64
	for seed := int64(10); seed < 16; seed++ {
		ex := makeABExchange(t, seed, 1000, 1, 1)
		d := NewDecoder(abConfig(ex.modem, ex.floorA*2))
		res, err := d.Decode(ex.rxA, ex.bufA.Get)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total += bits.BER(ex.bitsB, res.WantedBits)
		count++
	}
	if avg := total / count; avg > 0.04 {
		t.Errorf("average frame BER = %.4f, want ≤ 0.04", avg)
	}
}

func TestDecodeAsymmetricAmplitudes(t *testing.T) {
	// SIR −3 dB at the composite: Bob's signal twice Alice's power. The
	// paper reports ANC decodes down to −3 dB SIR (§11.7).
	ex := makeABExchange(t, 3, 950, 1, 1.41)
	d := NewDecoder(abConfig(ex.modem, ex.floorA*2))
	res, err := d.Decode(ex.rxA, ex.bufA.Get)
	if err != nil {
		t.Fatalf("decode at −3 dB SIR: %v", err)
	}
	if ber := bits.BER(ex.bitsB, res.WantedBits); ber > 0.05 {
		t.Errorf("BER at −3 dB SIR = %.3f, want ≤ 0.05 (Fig. 13)", ber)
	}
}

func TestDecodeCleanPath(t *testing.T) {
	// A single transmission must route through standard demodulation.
	rng := rand.New(rand.NewSource(4))
	m := msk.New()
	payload := make([]byte, 32)
	rng.Read(payload)
	pkt := frame.NewPacket(5, 6, 7, payload)
	sig := m.Modulate(frame.Marshal(pkt))
	floor := 1e-3
	rx := channel.Receive(dsp.NewNoiseSource(floor, 5), 300,
		channel.Transmission{Signal: sig, Link: channel.Link{Gain: 0.8, Phase: 1.0}, Delay: 120})
	d := NewDecoder(DefaultConfig(m, floor))
	res, err := d.Decode(rx, nil)
	if err != nil {
		t.Fatalf("clean decode: %v", err)
	}
	if !res.Clean || !res.BodyOK {
		t.Fatalf("clean=%v bodyOK=%v", res.Clean, res.BodyOK)
	}
	if string(res.Packet.Payload) != string(payload) {
		t.Error("payload mismatch")
	}
}

func TestDecodeUnknownInterference(t *testing.T) {
	// A node that knows neither packet cannot decode the mixture.
	ex := makeABExchange(t, 6, 900, 1, 1)
	d := NewDecoder(abConfig(ex.modem, ex.floorA*2))
	empty := frame.NewSentBuffer(0)
	if _, err := d.Decode(ex.rxA, empty.Get); !errors.Is(err, ErrUnknown) {
		t.Errorf("err = %v, want ErrUnknown", err)
	}
	if _, err := d.Decode(ex.rxA, nil); !errors.Is(err, ErrUnknown) {
		t.Errorf("nil lookup err = %v, want ErrUnknown", err)
	}
}

func TestDecodeNoPacket(t *testing.T) {
	d := NewDecoder(DefaultConfig(msk.New(), 1e-3))
	rx := dsp.NewNoiseSource(1e-3, 7).Samples(4000)
	if _, err := d.Decode(rx, nil); !errors.Is(err, ErrNoPacket) {
		t.Errorf("err = %v, want ErrNoPacket", err)
	}
}

func TestPeekHeaders(t *testing.T) {
	ex := makeABExchange(t, 8, 900, 1, 1)
	d := NewDecoder(abConfig(ex.modem, ex.floorA*2))
	first, last := d.PeekHeaders(ex.rxA)
	if first == nil || *first != ex.pktA.Header {
		t.Errorf("first header = %v, want Alice's", first)
	}
	if last == nil || *last != ex.pktB.Header {
		t.Errorf("last header = %v, want Bob's", last)
	}
}

func TestTryCleanOnInterferedReception(t *testing.T) {
	// Opportunistic overhearing: a strong wanted signal with a weak
	// interferer still decodes via the clean path; CRC reports success.
	rng := rand.New(rand.NewSource(9))
	m := msk.New()
	payload := make([]byte, 48)
	rng.Read(payload)
	pkt := frame.NewPacket(1, 4, 1, payload)
	want := m.Modulate(frame.Marshal(pkt))
	other := msk.New(msk.WithAmplitude(1)).Modulate(frame.Marshal(frame.NewPacket(3, 2, 1, payload)))
	floor := 1e-4
	rx := channel.Receive(dsp.NewNoiseSource(floor, 10), 300,
		channel.Transmission{Signal: want, Link: channel.Link{Gain: 0.9}},
		// Far-away interferer: 22 dB below the wanted signal.
		channel.Transmission{Signal: other, Link: channel.Link{Gain: 0.07, Phase: 1.3}, Delay: 700},
	)
	d := NewDecoder(DefaultConfig(m, floor))
	res, err := d.TryClean(rx)
	if err != nil {
		t.Fatalf("TryClean: %v", err)
	}
	if !res.BodyOK {
		t.Error("strong overheard packet failed CRC")
	}
}

func TestDecodeOverheardKnown(t *testing.T) {
	// "X" topology: the canceller knows the packet only as overheard bits
	// (no sample record). Decoding must not depend on Samples.
	ex := makeABExchange(t, 11, 900, 1, 1)
	buf := frame.NewSentBuffer(0)
	buf.Put(frame.SentRecord{Packet: ex.pktA, Bits: ex.bitsA}) // no Samples
	d := NewDecoder(abConfig(ex.modem, ex.floorA*2))
	res, err := d.Decode(ex.rxA, buf.Get)
	if err != nil {
		t.Fatalf("decode with overheard record: %v", err)
	}
	if ber := bits.BER(ex.bitsB, res.WantedBits); ber > 0.02 {
		t.Errorf("overheard-known decode BER = %.4f", ber)
	}
}

func TestDecodeVariedDelays(t *testing.T) {
	// Robustness across the random-delay range, including offsets that
	// are not multiples of the symbol length.
	for _, delay := range []int{800, 901, 1002, 1203, 1500} {
		ex := makeABExchange(t, int64(20+delay), delay, 1, 1)
		d := NewDecoder(abConfig(ex.modem, ex.floorA*2))
		res, err := d.Decode(ex.rxA, ex.bufA.Get)
		if err != nil {
			t.Fatalf("delay %d: %v", delay, err)
		}
		if ber := bits.BER(ex.bitsB, res.WantedBits); ber > 0.05 {
			t.Errorf("delay %d: BER %.3f", delay, ber)
		}
	}
}

func TestNewDecoderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil modem did not panic")
		}
	}()
	NewDecoder(Config{})
}

func TestDecodeRobustToTruncation(t *testing.T) {
	// Receptions cut off mid-packet (receiver stopped listening, buffer
	// overrun) must produce errors, never panics or hangs.
	ex := makeABExchange(t, 30, 900, 1, 1)
	d := NewDecoder(abConfig(ex.modem, ex.floorA*2))
	for _, frac := range []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95} {
		n := int(float64(len(ex.rxA)) * frac)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at frac %v: %v", frac, r)
				}
			}()
			d.Decode(ex.rxA[:n], ex.bufA.Get) // errors are acceptable
		}()
	}
}

func TestDecodeWithCorruptedKnownRecord(t *testing.T) {
	// A stale or corrupted sent-packet buffer entry (wrong bits under the
	// right key) must not panic; the decode degrades to garbage or error.
	ex := makeABExchange(t, 31, 900, 1, 1)
	bad := frame.NewSentBuffer(0)
	corrupt := append([]byte(nil), ex.bitsA...)
	for i := 200; i < 400; i++ {
		corrupt[i] ^= 1
	}
	bad.Put(frame.SentRecord{Packet: ex.pktA, Bits: corrupt})
	d := NewDecoder(abConfig(ex.modem, ex.floorA*2))
	res, err := d.Decode(ex.rxA, bad.Get)
	if err == nil && res.BodyOK {
		// With 200 flipped reference bits the cancellation reference is
		// wrong for a quarter of the frame; a clean CRC pass would mean
		// the corruption had no effect, which cannot happen.
		t.Error("decode claimed success with a corrupted cancellation reference")
	}
}

func TestDecodeShortOverlap(t *testing.T) {
	// Nearly disjoint packets: the doubly-occupied region is too short to
	// estimate amplitudes and the decode must fail cleanly.
	ex := makeABExchange(t, 32, 3400, 1, 1) // frame is 3457 samples
	d := NewDecoder(abConfig(ex.modem, ex.floorA*2))
	if _, err := d.Decode(ex.rxA, ex.bufA.Get); err == nil {
		t.Error("near-zero overlap decoded successfully")
	}
}
