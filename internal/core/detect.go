package core

import (
	"repro/internal/dsp"
)

// DetectorConfig holds the §7.1 detection thresholds. The paper states its
// packet detector fires when energy exceeds the noise floor by 20 dB and
// its interference detector when the energy variance exceeds its threshold;
// both are expressed here relative to measurable baselines so they work at
// any absolute power level.
type DetectorConfig struct {
	// Window is the moving-window length in samples for energy and
	// variance profiles.
	Window int
	// PacketSNRdB: a packet is present where windowed energy exceeds the
	// noise floor by this many dB. The paper quotes 20 dB; we default to
	// 12 dB because the relay's power renormalization pushes the weaker
	// of two constituent signals toward ~19 dB at the edges of the
	// Fig. 13 SIR sweep, and a 12 dB threshold over a window of ≥128
	// samples still has a negligible false-trigger probability.
	PacketSNRdB float64
	// InterferenceRatio: interference is declared where the windowed
	// energy variance exceeds this fraction of the squared mean energy.
	// A clean MSK signal at operating SNR has normalized variance
	// ≈ 2/SNR (≪ 0.1); two interfering MSK signals have
	// 2A²B²/(A²+B²)², which is ≥ 0.1 for any SIR within ±12 dB.
	InterferenceRatio float64
}

// DefaultDetectorConfig returns the thresholds used throughout the
// repository.
func DefaultDetectorConfig(window int) DetectorConfig {
	return DetectorConfig{Window: window, PacketSNRdB: 12, InterferenceRatio: 0.1}
}

// Detection describes what the receiver found in a reception window.
type Detection struct {
	Present    bool // a packet is present
	Interfered bool // more than one signal overlaps somewhere
	// Start and End delimit the samples where a packet is present
	// (half-open interval).
	Start, End int
	// IStart and IEnd delimit the interfered region, valid only when
	// Interfered is true.
	IStart, IEnd int
}

// Detect scans a reception window against a known noise floor (linear
// power). It returns packet bounds from the energy profile and, if the
// energy-variance criterion fires anywhere inside the packet, the bounds of
// the interfered region.
func Detect(rx dsp.Signal, noiseFloor float64, cfg DetectorConfig) Detection {
	return DetectWith(nil, rx, noiseFloor, cfg)
}

// DetectWith is Detect drawing its moving-window state and energy/variance
// profiles from a workspace (nil for fresh allocations). Both profiles are
// filled in one pass over the reception; the resulting Detection is
// identical to Detect's.
func DetectWith(ws *Workspace, rx dsp.Signal, noiseFloor float64, cfg DetectorConfig) Detection {
	if cfg.Window <= 0 || len(rx) < cfg.Window {
		return Detection{}
	}
	energyThresh := noiseFloor * dsp.FromDB(cfg.PacketSNRdB)
	if noiseFloor == 0 {
		// A zero noise floor makes any energy infinite SNR; use a tiny
		// absolute floor so detection still functions in noiseless tests.
		energyThresh = 1e-12
	}

	var stats *dsp.MovingStats
	var energy, variance []float64
	if ws == nil {
		stats = dsp.NewMovingStats(cfg.Window)
		energy = make([]float64, len(rx))
		variance = make([]float64, len(rx))
	} else {
		stats = ws.detectStats(cfg.Window)
		energy = growFloats(&ws.energy, len(rx))
		variance = growFloats(&ws.variance, len(rx))
	}
	stats.ProfileInto(energy, variance, rx)

	start, end := -1, -1
	for i, e := range energy {
		if e > energyThresh {
			if start == -1 {
				start = i
			}
			end = i + 1
		}
	}
	if start == -1 {
		return Detection{}
	}
	// The trailing profile lags the true edge by up to a window; pull the
	// start back so the first energetic samples are included.
	start -= cfg.Window - 1
	if start < 0 {
		start = 0
	}

	det := Detection{Present: true, Start: start, End: end}

	// Evaluate the variance criterion only in the packet interior: a
	// window straddling a packet edge is half noise, half signal, and its
	// energy variance is enormous regardless of interference. The margin
	// is two windows because the detected Start/End are themselves only
	// window-accurate. The true interference boundaries are interior by
	// construction (§7.2 enforces clean head and tail regions).
	iStart, iEnd := -1, -1
	for i := start + 2*cfg.Window; i < end-2*cfg.Window; i++ {
		e := energy[i]
		if e <= energyThresh {
			continue
		}
		if variance[i] > cfg.InterferenceRatio*e*e {
			if iStart == -1 {
				iStart = i
			}
			iEnd = i + 1
		}
	}
	// Sub-window flickers are noise artifacts, not collisions.
	if iStart != -1 && iEnd-iStart < cfg.Window {
		iStart = -1
	}
	if iStart != -1 {
		iStart -= cfg.Window - 1
		if iStart < start {
			iStart = start
		}
		det.Interfered = true
		det.IStart, det.IEnd = iStart, iEnd
	}
	return det
}
