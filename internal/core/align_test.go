package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/dsp"
	"repro/internal/msk"
)

func TestFindPilotExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	stream := append(randomBits(rng, 200), bits.Pilot(bits.PilotLength)...)
	stream = append(stream, randomBits(rng, 100)...)
	if got := FindPilot(stream, 0); got != 200 {
		t.Errorf("pilot at %d, want 200", got)
	}
}

func TestFindPilotWithErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pilot := bits.Pilot(bits.PilotLength)
	noisy := append([]byte(nil), pilot...)
	for _, i := range []int{3, 17, 42, 60} {
		noisy[i] ^= 1
	}
	stream := append(randomBits(rng, 150), noisy...)
	if got := FindPilot(stream, DefaultPilotMaxErrors); got != 150 {
		t.Errorf("pilot with 4 errors at %d, want 150", got)
	}
	if got := FindPilot(stream, 2); got != -1 {
		t.Errorf("pilot found at %d despite tight tolerance", got)
	}
}

func TestFindPilotNoFalsePositives(t *testing.T) {
	// 10k random bits should not contain a 64-bit pilot match at ≤6
	// errors (probability < 1e-5).
	rng := rand.New(rand.NewSource(3))
	if got := FindPilot(randomBits(rng, 10000), DefaultPilotMaxErrors); got != -1 {
		t.Errorf("false pilot match at %d", got)
	}
}

func TestFindPatternDegenerate(t *testing.T) {
	if got := FindPattern([]byte{1, 0}, nil, 0); got != -1 {
		t.Errorf("empty pattern matched at %d", got)
	}
	if got := FindPattern([]byte{1}, []byte{1, 0}, 0); got != -1 {
		t.Errorf("oversized pattern matched at %d", got)
	}
}

func TestFindDiffAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := msk.New()
	// Construct a diff stream: noise, then the pilot's expected per-sample
	// differences with some jitter, then noise.
	exp := m.PhaseDiffs(bits.Pilot(bits.PilotLength))
	diffs := make([]float64, 3000)
	for i := range diffs {
		diffs[i] = rng.NormFloat64() * 0.5
	}
	const at = 1234
	for i, e := range exp {
		diffs[at+i] = e + rng.NormFloat64()*0.1
	}
	off, score := FindDiffAlignment(diffs, exp, 0, len(diffs))
	if off != at {
		t.Errorf("alignment at %d (score %.2f), want %d", off, score, at)
	}
	if score < 0.8 {
		t.Errorf("score = %v, want high confidence", score)
	}
}

func TestFindDiffAlignmentRespectsRange(t *testing.T) {
	m := msk.New(msk.WithSamplesPerSymbol(2))
	pattern := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1}
	exp := m.PhaseDiffs(pattern)
	diffs := make([]float64, 500)
	copy(diffs[100:], exp)
	off, _ := FindDiffAlignment(diffs, exp, 200, 400)
	if off == 100 {
		t.Error("alignment found outside the search range")
	}
	off, score := FindDiffAlignment(diffs, exp, 50, 150)
	if off != 100 || score < 0.99 {
		t.Errorf("alignment = %d score %.2f, want 100 / 1.0", off, score)
	}
}

func TestFindDiffAlignmentDegenerate(t *testing.T) {
	if off, _ := FindDiffAlignment(make([]float64, 10), nil, 0, 10); off != -1 {
		t.Errorf("empty pattern aligned at %d", off)
	}
	// An all-zero expected pattern (no phase transitions at all) carries
	// no alignment information and must be rejected.
	if off, _ := FindDiffAlignment(make([]float64, 10), make([]float64, 4), 0, 10); off != -1 {
		t.Errorf("zero pattern aligned at %d", off)
	}
}

func TestConjReverseDiffProperty(t *testing.T) {
	// The per-sample phase differences of ConjReverse(s) must equal the
	// forward differences reversed, with no sign flip — the property
	// backward decoding (§7.4) rests on.
	m := msk.New()
	rng := rand.New(rand.NewSource(5))
	in := randomBits(rng, 64)
	s := m.Modulate(in)
	fwd := make([]float64, len(s)-1)
	for i := range fwd {
		fwd[i] = dsp.PhaseDiff(s[i], s[i+1])
	}
	cr := ConjReverse(s)
	for i := 0; i < len(cr)-1; i++ {
		want := fwd[len(fwd)-1-i]
		got := dsp.PhaseDiff(cr[i], cr[i+1])
		if math.Abs(dsp.WrapPhase(got-want)) > 1e-9 {
			t.Fatalf("diff %d = %v, want %v", i, got, want)
		}
	}
}

func TestConjReverseDemodulatesReversedBits(t *testing.T) {
	m := msk.New()
	rng := rand.New(rand.NewSource(6))
	in := randomBits(rng, 128)
	got := m.Demodulate(ConjReverse(m.Modulate(in)))
	if !bits.Equal(got, bits.Reverse(in)) {
		t.Error("ConjReverse demodulation is not the reversed bit stream")
	}
}

func TestConjReverseInvolution(t *testing.T) {
	s := dsp.Signal{1 + 2i, -3i, 0.5}
	got := ConjReverse(ConjReverse(s))
	for i := range s {
		if got[i] != s[i] {
			t.Error("ConjReverse is not an involution")
		}
	}
}
