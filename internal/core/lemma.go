// Package core implements the paper's primary contribution: decoding MSK
// signals that interfered, given network-layer knowledge of one of them
// (§6–§7). The pipeline mirrors Algorithm 1:
//
//  1. detect a reception and classify it as clean or interfered (§7.1),
//  2. locate the known signal via the pilot sequence (§7.2),
//  3. estimate the two amplitudes from energy statistics (§6.2),
//  4. per sample, compute the two candidate phase pairs of Lemma 6.1,
//  5. pick the pair whose known-signal phase difference matches the
//     transmitted one (Eqs. 7–8), keeping the other signal's difference,
//  6. map the recovered phase differences to bits (§6.4),
//
// with the whole pipeline run forward by the node whose packet started
// first and backward (on the conjugated, time-reversed stream) by the node
// whose packet started second (§7.4).
package core

import (
	"math"
	"math/cmplx"
)

// PhasePair is one candidate solution (θ[n], φ[n]) for the phases of the
// two interfering signals at a sample, per Lemma 6.1.
type PhasePair struct {
	Theta float64 // phase of the signal with amplitude A (the known one)
	Phi   float64 // phase of the signal with amplitude B (the wanted one)
}

// SolvePhases returns the two candidate phase pairs for a received sample
// y = A·e^{iθ} + B·e^{iφ} (Lemma 6.1):
//
//	θ = arg(y·(A + B·D ± i·B·√(1−D²)))
//	φ = arg(y·(B + A·D ∓ i·A·√(1−D²)))
//
// where D = (|y|²−A²−B²)/(2AB). The ± pairing is fixed: the first
// solution's θ uses +, and its φ uses −. Noise can push D outside [−1, 1];
// it is clamped, in which case the two solutions coincide (the circles of
// Fig. 4 are tangent).
func SolvePhases(y complex128, a, b float64) [2]PhasePair {
	const tiny = 1e-30
	ab := a * b
	if ab < tiny {
		// One signal is (numerically) absent: the composite is the other
		// signal alone and both phases collapse to arg(y).
		p := cmplx.Phase(y)
		return [2]PhasePair{{p, p}, {p, p}}
	}
	mag2 := real(y)*real(y) + imag(y)*imag(y)
	d := (mag2 - a*a - b*b) / (2 * ab)
	if d > 1 {
		d = 1
	} else if d < -1 {
		d = -1
	}
	root := math.Sqrt(1 - d*d)

	t1 := cmplx.Phase(y * complex(a+b*d, b*root))
	t2 := cmplx.Phase(y * complex(a+b*d, -b*root))
	p1 := cmplx.Phase(y * complex(b+a*d, -a*root))
	p2 := cmplx.Phase(y * complex(b+a*d, a*root))
	return [2]PhasePair{{Theta: t1, Phi: p1}, {Theta: t2, Phi: p2}}
}

// conditioning returns |sin(θ−φ)| implied by a received sample: the
// geometric separation of the two Lemma 6.1 solutions. Near 0 the circles
// of Fig. 4 are tangent and the wanted phase is poorly determined; the
// decoder weights per-sample estimates by this quantity.
func conditioning(y complex128, a, b float64) float64 {
	ab := a * b
	if ab < 1e-30 {
		return 0
	}
	mag2 := real(y)*real(y) + imag(y)*imag(y)
	d := (mag2 - a*a - b*b) / (2 * ab)
	if d > 1 || d < -1 {
		return 0
	}
	return math.Sqrt(1 - d*d)
}

// Reconstruct returns A·e^{iθ} + B·e^{iφ} for a candidate pair — the
// inverse of SolvePhases, used by tests and diagnostics to confirm a
// solution actually reproduces the observed sample.
func Reconstruct(p PhasePair, a, b float64) complex128 {
	return complex(a, 0)*cmplx.Exp(complex(0, p.Theta)) +
		complex(b, 0)*cmplx.Exp(complex(0, p.Phi))
}
