package core

import (
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/dqpsk"
	"repro/internal/dsp"
	"repro/internal/frame"
)

// dqpskExchange synthesizes one full Alice–Bob ANC exchange under
// π/4-DQPSK — the same relay topology as makeABExchange, with frames
// marshalled in symbol units (frame.MarshalFor) so both decode
// directions work for the two-bit modem.
type dqpskExchange struct {
	modem          *dqpsk.Modem
	pktA, pktB     frame.Packet
	bitsA, bitsB   []byte
	rxA, rxB       dsp.Signal
	floorA, floorB float64
	bufA, bufB     *frame.SentBuffer
}

func makeDQPSKExchange(t *testing.T, seed int64, bobDelay int) *dqpskExchange {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := dqpsk.New()

	payloadA := make([]byte, 64)
	payloadB := make([]byte, 64)
	rng.Read(payloadA)
	rng.Read(payloadB)
	pktA := frame.NewPacket(1, 2, 100, payloadA) // Alice → Bob
	pktB := frame.NewPacket(2, 1, 200, payloadB) // Bob → Alice
	bitsA := frame.MarshalFor(pktA, m.BitsPerSymbol())
	bitsB := frame.MarshalFor(pktB, m.BitsPerSymbol())
	sigA := m.Modulate(bitsA)
	sigB := dqpsk.New(dqpsk.WithAmplitude(0.9)).Modulate(bitsB)

	routerRx := channel.Receive(dsp.NewNoiseSource(1e-3, seed+1), 200,
		channel.Transmission{Signal: sigA, Link: channel.Link{Gain: 0.8, Phase: 0.7, FreqOffset: 0.006}},
		channel.Transmission{Signal: sigB, Link: channel.Link{Gain: 0.75, Phase: -1.1, FreqOffset: -0.008}, Delay: bobDelay},
	)
	relayed := channel.AmplifyTo(routerRx, 1)

	floorA, floorB := 1e-3, 1e-3
	rxA := channel.Receive(dsp.NewNoiseSource(floorA, seed+2), 300,
		channel.Transmission{Signal: relayed, Link: channel.Link{Gain: 0.7, Phase: 2.2}, Delay: 50})
	rxB := channel.Receive(dsp.NewNoiseSource(floorB, seed+3), 300,
		channel.Transmission{Signal: relayed, Link: channel.Link{Gain: 0.72, Phase: 0.4}, Delay: 80})

	bufA := frame.NewSentBuffer(0)
	bufA.Put(frame.SentRecord{Packet: pktA, Bits: bitsA, Samples: sigA})
	bufB := frame.NewSentBuffer(0)
	bufB.Put(frame.SentRecord{Packet: pktB, Bits: bitsB, Samples: sigB})

	return &dqpskExchange{
		modem: m, pktA: pktA, pktB: pktB, bitsA: bitsA, bitsB: bitsB,
		rxA: rxA, rxB: rxB, floorA: floorA, floorB: floorB,
		bufA: bufA, bufB: bufB,
	}
}

func TestDQPSKDecodeAliceRecoversBob(t *testing.T) {
	ex := makeDQPSKExchange(t, 1, 900)
	d := NewDecoder(abConfig(ex.modem, ex.floorA*2))
	res, err := d.Decode(ex.rxA, ex.bufA.Get)
	if err != nil {
		t.Fatalf("Alice decode: %v", err)
	}
	if res.Backward {
		t.Error("Alice (first transmitter) should decode forward")
	}
	if ber := bits.BER(ex.bitsB, res.WantedBits); ber > 0.02 {
		t.Errorf("frame BER = %.4f, want ≤ 0.02", ber)
	}
}

// TestDQPSKDecodeBobRecoversAliceBackward is the tentpole regression:
// with the symbol-wise mirror, the second-starting endpoint decodes the
// conjugate time-reversed stream for a two-bit modem exactly as for MSK
// (§7.4 generalized).
func TestDQPSKDecodeBobRecoversAliceBackward(t *testing.T) {
	ex := makeDQPSKExchange(t, 2, 900)
	d := NewDecoder(abConfig(ex.modem, ex.floorB*2))
	res, err := d.Decode(ex.rxB, ex.bufB.Get)
	if err != nil {
		t.Fatalf("Bob decode: %v", err)
	}
	if !res.Backward {
		t.Error("Bob (second transmitter) should decode backward")
	}
	if res.KnownHeader != ex.pktB.Header {
		t.Errorf("known header = %v, want Bob's", res.KnownHeader)
	}
	if res.HeaderOK && res.Packet.Header != ex.pktA.Header {
		t.Fatalf("recovered header = %v, want Alice's", res.Packet.Header)
	}
	if ber := bits.BER(ex.bitsA, res.WantedBits); ber > 0.02 {
		t.Errorf("frame BER = %.4f, want ≤ 0.02", ber)
	}
}

// TestDQPSKBackwardVariedDelays sweeps Bob's offset, including values
// that are not multiples of the symbol length, so the backward reference
// convention (BackwardRefOffset) is exercised at every sub-symbol
// alignment.
func TestDQPSKBackwardVariedDelays(t *testing.T) {
	for _, delay := range []int{800, 901, 1002, 1203, 1500} {
		ex := makeDQPSKExchange(t, int64(40+delay), delay)
		d := NewDecoder(abConfig(ex.modem, ex.floorB*2))
		res, err := d.Decode(ex.rxB, ex.bufB.Get)
		if err != nil {
			t.Fatalf("delay %d: %v", delay, err)
		}
		if !res.Backward {
			t.Errorf("delay %d: expected a backward decode", delay)
		}
		if ber := bits.BER(ex.bitsA, res.WantedBits); ber > 0.05 {
			t.Errorf("delay %d: BER %.3f", delay, ber)
		}
	}
}
