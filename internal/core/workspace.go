package core

import "repro/internal/dsp"

// Workspace holds every reusable buffer one decoding pipeline needs: the
// detector's moving-window state and energy/variance profiles, the
// conjugate-reversed stream for backward decodes, the known signal's phase
// differences, the matcher's ∆φ/weight streams (plus the pair for the
// swapped amplitude-assignment trial), demodulation and decision bit
// buffers, and the amplitude estimator's magnitude scratch. With a
// Workspace attached (see Decoder.SetWorkspace) a decoder performs no
// steady-state allocation per reception beyond the Result it hands back —
// the discipline sim.Scratch applies to reception synthesis, extended down
// the decode stack.
//
// Ownership rule: one Workspace per worker goroutine, shared freely among
// that worker's decoders/nodes but never between goroutines — decoding
// mutates it. Buffers grow to the largest reception seen and are retained.
//
// Everything a decode returns (Result, WantedBits, payloads) is copied out
// of the workspace before returning, so results stay valid across later
// decodes that reuse the same buffers.
type Workspace struct {
	modem    dsp.Scratch      // modem-internal demod scratch (MLSE filter + back-pointers)
	stats    *dsp.MovingStats // detector moving window
	energy   []float64        // windowed energy profile
	variance []float64        // windowed energy-variance profile
	conj     dsp.Signal       // conjugate time-reversed reception (§7.4)
	known    []float64        // known signal's per-sample phase differences
	diffs    []float64        // recovered ∆φ stream
	weights  []float64        // conditioning weights of diffs
	altDiffs []float64        // ∆φ stream of the swapped-assignment trial
	altWts   []float64        // weights of the swapped-assignment trial
	headBits []byte           // clean-head demodulation, current candidate
	bestBits []byte           // clean-head demodulation, best candidate so far
	alignLog []byte           // per-offset pilot decisions in alignWanted
	wanted   []byte           // final symbol decisions before the owned copy
	mag2     []float64        // |y|² scratch of the moment estimator
	mags     []float64        // |y| scratch of the envelope estimator (sorted)
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// detectStats returns the workspace's moving-window detector reset to the
// given window length.
func (ws *Workspace) detectStats(window int) *dsp.MovingStats {
	if ws.stats == nil {
		ws.stats = dsp.NewMovingStats(window)
		return ws.stats
	}
	ws.stats.Rewindow(window)
	return ws.stats
}

// growFloats resizes *buf to n elements (contents undefined), reallocating
// only when its capacity is too small, and returns it.
func growFloats(buf *[]float64, n int) []float64 {
	*buf = dsp.GrowFloats(*buf, n)
	return *buf
}

// growSignal resizes *buf to n samples (contents undefined), reallocating
// only when its capacity is too small, and returns it.
func growSignal(buf *dsp.Signal, n int) dsp.Signal {
	if cap(*buf) < n {
		*buf = make(dsp.Signal, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
