package core

import "repro/internal/dsp"

// Workspace holds every reusable buffer one decoding pipeline needs: the
// detector's moving-window state and energy/variance profiles, the
// conjugate-reversed stream for backward decodes, the known signal's phase
// differences, the matcher's ∆φ/weight streams (plus the pair for the
// swapped amplitude-assignment trial), demodulation and decision bit
// buffers, and the amplitude estimator's magnitude scratch. With a
// Workspace attached (see Decoder.SetWorkspace) a decoder performs no
// steady-state allocation per reception beyond the Result it hands back —
// the discipline sim.Scratch applies to reception synthesis, extended down
// the decode stack.
//
// The buffers whose size is the reception length itself — the detector
// profiles and the decision-bit scratch — are carved from one
// bump-allocator Arena (prepareBatch), so the memory a decode sweeps over
// sits contiguously; DecodeBatch re-carves once per batch at the batch's
// largest reception length. The remaining buffers (the frame-sized ∆φ and
// magnitude scratch, the backward-only conjugate stream) grow on demand at
// their use sites and are retained, so they too stop allocating after the
// first decode of their size — and a forward-only workload never pays for
// the backward path's buffers at all.
//
// Ownership rule: one Workspace per worker goroutine, shared freely among
// that worker's decoders/nodes but never between goroutines — decoding
// mutates it. Buffers grow to the largest reception seen and are retained.
//
// Everything a decode returns (Result, WantedBits, payloads) is copied out
// of the workspace before returning, so results stay valid across later
// decodes that reuse the same buffers.
type Workspace struct {
	modem    dsp.Scratch      // modem-internal demod scratch (MLSE filter + back-pointers)
	stats    *dsp.MovingStats // detector moving window
	energy   []float64        // windowed energy profile
	variance []float64        // windowed energy-variance profile
	conj     dsp.Signal       // conjugate time-reversed reception (§7.4)
	known    []float64        // known signal's per-sample phase differences
	diffs    []float64        // recovered ∆φ stream
	weights  []float64        // conditioning weights of diffs
	altDiffs []float64        // ∆φ stream of the swapped-assignment trial
	altWts   []float64        // weights of the swapped-assignment trial
	headBits []byte           // clean-head demodulation at the refined reference
	alignLog []byte           // per-offset pilot decisions in alignWanted
	wanted   []byte           // final symbol decisions before the owned copy
	mag2     []float64        // |y|² scratch of the moment estimator
	mags     []float64        // |y| scratch of the envelope estimator (sorted)

	// arena backs every buffer above (except the modem scratch and the
	// moving window); batchCap is the reception length the current
	// carving supports.
	arena    dsp.Arena
	batchCap int

	// headViews/headBatch hold the clean-head search's per-sub-symbol
	// signal views and their batch-demodulated bits; the bit slots are
	// equal-stride views into the retained headFlat buffer.
	headViews []dsp.Signal
	headBatch [][]byte
	headFlat  []byte

	// oneItem/oneOut let Decoder.Decode run as a DecodeBatch of one
	// without allocating the batch slices.
	oneItem [1]BatchItem
	oneOut  [1]BatchResult
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// prepareBatch carves the reception-length buffers for receptions up to n
// samples from the workspace arena: the detector's energy/variance
// profiles and the decision-bit scratch, laid out contiguously. It
// re-carves only when n grows, so the batch-of-one path (Decoder.Decode)
// pays a single comparison in steady state. Only buffers sized by the
// reception length itself are carved — over-reserving the frame-sized and
// backward-only buffers at n would roughly double a worker's cold-start
// footprint for nothing (they reach their true size on the first decode
// and never grow again). Individual decodes may still Grow* past the
// carving in rare cases (correct, just no longer contiguous).
func (ws *Workspace) prepareBatch(n int) {
	if n <= ws.batchCap {
		return
	}
	ws.batchCap = n
	// 2 profile float blocks and 3 bit blocks, each of n elements.
	ws.arena.Reserve(2*n, 3*n, 0)
	ws.energy = ws.arena.Floats(n)
	ws.variance = ws.arena.Floats(n)
	ws.headBits = ws.arena.Bytes(n)
	ws.alignLog = ws.arena.Bytes(n)
	ws.wanted = ws.arena.Bytes(n)
}

// detectStats returns the workspace's moving-window detector reset to the
// given window length. Re-requesting the current length only rewinds the
// running sums — the amortization that makes a batch of same-config
// detections pay the window setup once.
func (ws *Workspace) detectStats(window int) *dsp.MovingStats {
	if ws.stats == nil {
		ws.stats = dsp.NewMovingStats(window)
		return ws.stats
	}
	if ws.stats.Window() == window {
		ws.stats.Reset()
		return ws.stats
	}
	ws.stats.Rewindow(window)
	return ws.stats
}

// growFloats resizes *buf to n elements (contents undefined), reallocating
// only when its capacity is too small, and returns it.
func growFloats(buf *[]float64, n int) []float64 {
	*buf = dsp.GrowFloats(*buf, n)
	return *buf
}

// growSignal resizes *buf to n samples (contents undefined), reallocating
// only when its capacity is too small, and returns it.
func growSignal(buf *dsp.Signal, n int) dsp.Signal {
	if cap(*buf) < n {
		*buf = make(dsp.Signal, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
