package core

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/msk"
)

// mixedMSK returns the sum of two independent random-payload MSK signals
// with the given amplitudes. The second signal carries a small carrier
// frequency offset, as any two physical transmitters do: without it the
// relative phase θ−φ sits on a π/4 lattice (both modulators share the
// sample clock) and the paper's random-phase assumption behind Eq. 6
// fails. The CFO sweeps the relative phase across the window, which is
// precisely what makes the σ statistic valid on real radios.
func mixedMSK(rng *rand.Rand, a, b float64, nbits int) dsp.Signal {
	m := msk.New(WithA(a))
	mb := msk.New(WithA(b))
	sa := m.Modulate(randomBits(rng, nbits))
	sb := mb.Modulate(randomBits(rng, nbits))
	cfo := channel.Link{Gain: 1, Phase: rng.Float64() * 2 * math.Pi, FreqOffset: 0.011}
	return sa.Add(cfo.Apply(sb))
}

// WithA is shorthand for the amplitude option.
func WithA(a float64) msk.Option { return msk.WithAmplitude(a) }

func randomBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

func TestEstimateAmplitudesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ a, b float64 }{
		{1, 1},
		{1, 0.7},
		{1, 0.5},
		{2, 0.9},
		{0.5, 0.45},
	}
	for _, c := range cases {
		mix := mixedMSK(rng, c.a, c.b, 3000)
		est, err := EstimateAmplitudes(mix)
		if err != nil {
			t.Fatalf("a=%v b=%v: %v", c.a, c.b, err)
		}
		hi, lo := math.Max(c.a, c.b), math.Min(c.a, c.b)
		if math.Abs(est.A-hi)/hi > 0.1 {
			t.Errorf("a=%v b=%v: est.A = %v, want ≈ %v", c.a, c.b, est.A, hi)
		}
		if math.Abs(est.B-lo)/lo > 0.15 {
			t.Errorf("a=%v b=%v: est.B = %v, want ≈ %v", c.a, c.b, est.B, lo)
		}
	}
}

func TestEstimateAmplitudesMuIsTotalPower(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mix := mixedMSK(rng, 1.2, 0.8, 4000)
	est, err := EstimateAmplitudes(mix)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.2*1.2 + 0.8*0.8
	if math.Abs(est.Mu-want)/want > 0.05 {
		t.Errorf("µ = %v, want ≈ %v (Eq. 5)", est.Mu, want)
	}
	// Eq. 6: σ = A²+B²+4AB/π.
	wantSig := want + 4*1.2*0.8/math.Pi
	if math.Abs(est.Sig-wantSig)/wantSig > 0.05 {
		t.Errorf("σ = %v, want ≈ %v (Eq. 6)", est.Sig, wantSig)
	}
}

func TestEstimateAmplitudesUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mix := mixedMSK(rng, 1, 0.6, 3000)
	ns := dsp.NewNoiseSource(dsp.FromDB(-20)*mix.Power(), 4)
	est, err := EstimateAmplitudes(ns.AddTo(mix))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.A-1) > 0.12 || math.Abs(est.B-0.6) > 0.12 {
		t.Errorf("noisy estimates A=%v B=%v, want ≈ 1, 0.6", est.A, est.B)
	}
}

func TestEstimateAmplitudesSingleSignalFails(t *testing.T) {
	// A single constant-envelope signal has σ ≈ µ, so AB ≈ 0 and the
	// estimator must report failure rather than invent a second signal.
	m := msk.New()
	s := m.Modulate(randomBits(rand.New(rand.NewSource(5)), 2000))
	_, err := EstimateAmplitudes(s)
	if !errors.Is(err, ErrAmplitude) {
		t.Errorf("err = %v, want ErrAmplitude", err)
	}
}

func TestEstimateAmplitudesShortWindow(t *testing.T) {
	if _, err := EstimateAmplitudes(make(dsp.Signal, 4)); !errors.Is(err, ErrAmplitude) {
		t.Errorf("err = %v, want ErrAmplitude", err)
	}
}

func TestEstimateAmplitudesEqualAmplitudes(t *testing.T) {
	// A = B is the discriminant's boundary; must still return sane values.
	rng := rand.New(rand.NewSource(6))
	mix := mixedMSK(rng, 1, 1, 5000)
	est, err := EstimateAmplitudes(mix)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.A-1) > 0.2 || math.Abs(est.B-1) > 0.2 {
		t.Errorf("A=%v B=%v, want ≈ 1, 1", est.A, est.B)
	}
}

func TestAssignAmplitudes(t *testing.T) {
	est := AmplitudeEstimate{A: 2, B: 1}
	// Known power ≈ 1² → B side is the known signal → swap.
	got := AssignAmplitudes(est, 1.1)
	if got.A != 1 || got.B != 2 {
		t.Errorf("assign = (%v, %v), want (1, 2)", got.A, got.B)
	}
	// Known power ≈ 2² → keep.
	got = AssignAmplitudes(est, 3.9)
	if got.A != 2 || got.B != 1 {
		t.Errorf("assign = (%v, %v), want (2, 1)", got.A, got.B)
	}
}

func TestEstimatorConditionalMean(t *testing.T) {
	// Appendix B: E[cos(θ−φ) | cos > 0] = 2/π. Validate the statistic the
	// σ equation rests on, directly from random phases.
	rng := rand.New(rand.NewSource(7))
	var sum float64
	var count int
	for i := 0; i < 200000; i++ {
		c := math.Cos(rng.Float64() * 2 * math.Pi)
		if c > 0 {
			sum += c
			count++
		}
	}
	got := sum / float64(count)
	if math.Abs(got-2/math.Pi) > 0.01 {
		t.Errorf("E[cos|cos>0] = %v, want 2/π ≈ %v", got, 2/math.Pi)
	}
}

func TestEstimateAmplitudesOrderInvariance(t *testing.T) {
	// Which signal is "first" in the sum must not matter.
	rng := rand.New(rand.NewSource(8))
	bitsA := randomBits(rng, 2000)
	bitsB := randomBits(rng, 2000)
	sa := msk.New(WithA(1.5)).Modulate(bitsA)
	sb := msk.New(WithA(0.5)).Modulate(bitsB)
	e1, err1 := EstimateAmplitudes(sa.Add(sb))
	e2, err2 := EstimateAmplitudes(sb.Add(sa))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(e1.A-e2.A) > 1e-9 || math.Abs(e1.B-e2.B) > 1e-9 {
		t.Error("estimates depend on summation order")
	}
}

func TestReconstructMatchesDefinition(t *testing.T) {
	p := PhasePair{Theta: 0.5, Phi: -1.2}
	got := Reconstruct(p, 2, 3)
	want := complex(2, 0)*cmplx.Exp(complex(0, 0.5)) + complex(3, 0)*cmplx.Exp(complex(0, -1.2))
	if cmplx.Abs(got-want) > 1e-12 {
		t.Errorf("Reconstruct = %v, want %v", got, want)
	}
}

func TestEnvelopeEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, c := range []struct{ a, b float64 }{{1, 0.5}, {0.8, 0.4}, {1, 1}} {
		mix := mixedMSK(rng, c.a, c.b, 3000)
		est, err := EstimateAmplitudesEnvelope(mix)
		if err != nil {
			t.Fatalf("a=%v b=%v: %v", c.a, c.b, err)
		}
		hi, lo := math.Max(c.a, c.b), math.Min(c.a, c.b)
		if math.Abs(est.A-hi)/hi > 0.1 || (lo > 0 && math.Abs(est.B-lo)/lo > 0.2) {
			t.Errorf("a=%v b=%v: envelope estimate (%v, %v)", c.a, c.b, est.A, est.B)
		}
	}
}

func TestEnvelopeEstimatorRobustToPhaseLattice(t *testing.T) {
	// The failure mode that motivates the fallback: zero relative CFO
	// keeps θ−φ on a π/4 lattice. The envelope method must still work.
	rng := rand.New(rand.NewSource(10))
	sa := msk.New(WithA(0.4)).Modulate(randomBits(rng, 3000))
	sb := msk.New(WithA(0.8)).Modulate(randomBits(rng, 3000))
	est, err := EstimateAmplitudesEnvelope(sa.Add(sb))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.A-0.8) > 0.08 || math.Abs(est.B-0.4) > 0.08 {
		t.Errorf("lattice-phase estimate (%v, %v), want (0.8, 0.4)", est.A, est.B)
	}
}

func TestEnvelopeEstimatorRejectsSingleSignal(t *testing.T) {
	s := msk.New().Modulate(randomBits(rand.New(rand.NewSource(11)), 2000))
	if _, err := EstimateAmplitudesEnvelope(s); !errors.Is(err, ErrAmplitude) {
		t.Errorf("err = %v, want ErrAmplitude", err)
	}
	if _, err := EstimateAmplitudesEnvelope(make(dsp.Signal, 10)); !errors.Is(err, ErrAmplitude) {
		t.Errorf("short window err = %v, want ErrAmplitude", err)
	}
}
