package core

import (
	"testing"

	"repro/internal/dqpsk"
	"repro/internal/dsp"
	"repro/internal/frame"
	"repro/internal/msk"
)

// Steady-state allocation budgets for the decode pipeline with an attached
// Workspace. Once the workspace buffers have grown to the reception size,
// the only remaining allocations are the ones a caller keeps: the Result,
// its owned WantedBits copy, and the parsed header/payload. The budgets
// below leave a little headroom over the measured counts (small enough
// that reintroducing even one per-sample or per-offset allocation — a
// Demodulate clone, a per-candidate DecideDiffs, a profile rebuild —
// blows the budget by orders of magnitude).
const (
	maxInterferedDecodeAllocs = 24  // measured ~8
	maxCleanDecodeAllocs      = 24  // measured ~10
	maxBackwardDecodeAllocs   = 40  // forward attempt + backward pass
	maxModemIntoAllocs        = 0.5 // DemodulateInto/DecideDiffsInto: none
)

// decodeAllocs reports AllocsPerRun of one Decode against a warmed-up
// workspace-carrying decoder.
func decodeAllocs(t *testing.T, dec *Decoder, rx dsp.Signal, lookup KnownLookup) float64 {
	t.Helper()
	for i := 0; i < 2; i++ {
		if _, err := dec.Decode(rx, lookup); err != nil {
			t.Fatalf("warmup decode: %v", err)
		}
	}
	return testing.AllocsPerRun(10, func() {
		if _, err := dec.Decode(rx, lookup); err != nil {
			t.Errorf("decode: %v", err)
		}
	})
}

func TestDecodeInterferedSteadyStateAllocs(t *testing.T) {
	ex := makeABExchange(t, 42, 1200, 1, 1)
	dec := NewDecoder(abConfig(ex.modem, ex.floorA))
	dec.SetWorkspace(NewWorkspace())
	if allocs := decodeAllocs(t, dec, ex.rxA, ex.bufA.Get); allocs > maxInterferedDecodeAllocs {
		t.Errorf("interfered Decode allocates %.1f objects/op in steady state, budget %d", allocs, maxInterferedDecodeAllocs)
	}
}

func TestDecodeBackwardSteadyStateAllocs(t *testing.T) {
	// Bob's packet starts second, so his decode runs the forward pipeline
	// to failure and then the conjugate-reversed pass — the worst case.
	ex := makeABExchange(t, 42, 1200, 1, 1)
	dec := NewDecoder(abConfig(ex.modem, ex.floorB))
	dec.SetWorkspace(NewWorkspace())
	if allocs := decodeAllocs(t, dec, ex.rxB, ex.bufB.Get); allocs > maxBackwardDecodeAllocs {
		t.Errorf("backward Decode allocates %.1f objects/op in steady state, budget %d", allocs, maxBackwardDecodeAllocs)
	}
}

// TestSharedWorkspaceAcrossDecoders pins the node-lifecycle contract: many
// decoders (one per node) attached to one workspace stay within the same
// steady-state budget, because the buffers are shared rather than
// re-grown per decoder.
func TestSharedWorkspaceAcrossDecoders(t *testing.T) {
	ex := makeABExchange(t, 7, 1100, 1, 1)
	ws := NewWorkspace()
	warm := NewDecoder(abConfig(ex.modem, ex.floorA))
	warm.SetWorkspace(ws)
	if a := decodeAllocs(t, warm, ex.rxA, ex.bufA.Get); a > maxInterferedDecodeAllocs {
		t.Fatalf("warm decoder allocates %.1f objects/op", a)
	}
	fresh := NewDecoder(abConfig(ex.modem, ex.floorA))
	fresh.SetWorkspace(ws)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := fresh.Decode(ex.rxA, ex.bufA.Get); err != nil {
			t.Errorf("decode: %v", err)
		}
	})
	if allocs > maxInterferedDecodeAllocs {
		t.Errorf("fresh decoder on shared workspace allocates %.1f objects/op, budget %d", allocs, maxInterferedDecodeAllocs)
	}
}

func TestTryCleanSteadyStateAllocs(t *testing.T) {
	m := msk.New()
	pkt := frame.NewPacket(3, 4, 9, []byte("clean-path payload for the allocation budget test"))
	rec := frame.SentRecord{Packet: pkt, Bits: frame.Marshal(pkt)}
	sig := m.Modulate(rec.Bits)
	rx := dsp.NewNoiseSource(1e-3, 5).AddTo(sig.Delay(150).PadTo(len(sig) + 500))
	dec := NewDecoder(DefaultConfig(m, 1e-3))
	dec.SetWorkspace(NewWorkspace())
	for i := 0; i < 2; i++ {
		if _, err := dec.TryClean(rx); err != nil {
			t.Fatalf("warmup TryClean: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := dec.TryClean(rx)
		if err != nil || !res.BodyOK {
			t.Errorf("TryClean err=%v", err)
		}
	})
	if allocs > maxCleanDecodeAllocs {
		t.Errorf("TryClean allocates %.1f objects/op in steady state, budget %d", allocs, maxCleanDecodeAllocs)
	}
}

// TestDQPSKDecodeInterferedSteadyStateAllocs holds the second modem to
// the same zero-steady-state-allocation contract as MSK: once the
// shared workspace has grown, a forward interference decode allocates
// only what the caller keeps.
func TestDQPSKDecodeInterferedSteadyStateAllocs(t *testing.T) {
	ex := makeDQPSKExchange(t, 21, 700)
	dec := NewDecoder(abConfig(ex.modem, ex.floorA*2))
	dec.SetWorkspace(NewWorkspace())
	if allocs := decodeAllocs(t, dec, ex.rxA, ex.bufA.Get); allocs > maxInterferedDecodeAllocs {
		t.Errorf("dqpsk interfered Decode allocates %.1f objects/op in steady state, budget %d", allocs, maxInterferedDecodeAllocs)
	}
}

// TestDQPSKDecodeBackwardSteadyStateAllocs pins the symbol-wise-mirror
// backward path to the same budget as MSK's: the group reverse and the
// reference-offset shift add no allocations.
func TestDQPSKDecodeBackwardSteadyStateAllocs(t *testing.T) {
	ex := makeDQPSKExchange(t, 21, 900)
	dec := NewDecoder(abConfig(ex.modem, ex.floorB*2))
	dec.SetWorkspace(NewWorkspace())
	if allocs := decodeAllocs(t, dec, ex.rxB, ex.bufB.Get); allocs > maxBackwardDecodeAllocs {
		t.Errorf("dqpsk backward Decode allocates %.1f objects/op in steady state, budget %d", allocs, maxBackwardDecodeAllocs)
	}
}

func TestDQPSKTryCleanSteadyStateAllocs(t *testing.T) {
	m := dqpsk.New()
	pkt := frame.NewPacket(3, 4, 9, []byte("clean-path payload for the dqpsk allocation budget test"))
	rec := frame.SentRecord{Packet: pkt, Bits: frame.Marshal(pkt)}
	sig := m.Modulate(rec.Bits)
	rx := dsp.NewNoiseSource(1e-3, 5).AddTo(sig.Delay(150).PadTo(len(sig) + 500))
	dec := NewDecoder(DefaultConfig(m, 1e-3))
	dec.SetWorkspace(NewWorkspace())
	for i := 0; i < 2; i++ {
		if _, err := dec.TryClean(rx); err != nil {
			t.Fatalf("warmup TryClean: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := dec.TryClean(rx)
		if err != nil || !res.BodyOK {
			t.Errorf("TryClean err=%v", err)
		}
	})
	if allocs > maxCleanDecodeAllocs {
		t.Errorf("dqpsk TryClean allocates %.1f objects/op in steady state, budget %d", allocs, maxCleanDecodeAllocs)
	}
}

// TestResultOutlivesWorkspaceReuse guards the ownership contract the
// zero-allocation path depends on: WantedBits and Payload must be copies,
// not views into workspace buffers, so an earlier Result survives later
// decodes bit-for-bit.
func TestResultOutlivesWorkspaceReuse(t *testing.T) {
	ex := makeABExchange(t, 42, 1200, 1, 1)
	dec := NewDecoder(abConfig(ex.modem, ex.floorA))
	dec.SetWorkspace(NewWorkspace())
	first, err := dec.Decode(ex.rxA, ex.bufA.Get)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	snapshot := append([]byte(nil), first.WantedBits...)
	other := makeABExchange(t, 99, 900, 1, 0.8)
	decB := NewDecoder(abConfig(other.modem, other.floorA))
	decB.SetWorkspace(dec.ws)
	if _, err := decB.Decode(other.rxA, other.bufA.Get); err != nil {
		t.Fatalf("second decode: %v", err)
	}
	for i, b := range snapshot {
		if first.WantedBits[i] != b {
			t.Fatalf("WantedBits[%d] changed after workspace reuse: %d != %d", i, first.WantedBits[i], b)
		}
	}
}
