package core

import (
	"errors"
	"math"
	"sort"

	"repro/internal/dsp"
)

// AmplitudeEstimate holds the two recovered signal amplitudes. A is the
// amplitude of the receiver's known signal, B of the wanted one; the raw
// µ/σ statistics cannot distinguish the two, so assignment happens
// separately (see AssignAmplitudes).
type AmplitudeEstimate struct {
	A, B float64
	Mu   float64 // µ = E[|y|²] = A² + B² (Eq. 5)
	Sig  float64 // σ = A² + B² + 4AB/π (Eq. 6)
}

// ErrAmplitude is returned when the energy statistics are inconsistent
// with a two-signal mixture (e.g. the window was actually noise).
var ErrAmplitude = errors.New("core: amplitude estimation failed")

// EstimateAmplitudes recovers the two amplitudes from an interfered window
// using the paper's two moments (§6.2):
//
//	µ = (1/N)·Σ|y[n]|²                    = A² + B²        (Eq. 5)
//	σ = (2/N)·Σ_{|y[n]|²>µ} |y[n]|²       = A² + B² + 4AB/π (Eq. 6)
//
// giving AB = π(σ−µ)/4 and then A², B² as the roots of
// z² − µ·z + (AB)² = 0. The convention that whitening makes the bit
// streams random (so E[cos(θ−φ)] = 0) is what makes Eq. 5 exact.
//
// The returned estimate has A ≥ B; callers resolve which physical signal
// each belongs to with AssignAmplitudes.
func EstimateAmplitudes(window dsp.Signal) (AmplitudeEstimate, error) {
	return estimateAmplitudesWith(nil, window)
}

// estimateAmplitudesWith is EstimateAmplitudes drawing its magnitude
// scratch from a workspace (nil for fresh allocations).
func estimateAmplitudesWith(ws *Workspace, window dsp.Signal) (AmplitudeEstimate, error) {
	n := len(window)
	if n < 8 {
		return AmplitudeEstimate{}, ErrAmplitude
	}
	var mu float64
	var mag2 []float64
	if ws == nil {
		mag2 = make([]float64, n)
	} else {
		mag2 = growFloats(&ws.mag2, n)
	}
	for i, v := range window {
		m := real(v)*real(v) + imag(v)*imag(v)
		mag2[i] = m
		mu += m
	}
	mu /= float64(n)

	var sig float64
	for _, m := range mag2 {
		if m > mu {
			sig += m
		}
	}
	sig *= 2 / float64(n)

	ab := math.Pi * (sig - mu) / 4
	if ab <= 0 {
		// σ ≤ µ happens for pure noise or a constant-envelope (single)
		// signal; there is no second amplitude to recover.
		return AmplitudeEstimate{Mu: mu, Sig: sig}, ErrAmplitude
	}
	disc := mu*mu - 4*ab*ab
	if disc < 0 {
		// The σ statistic assumes the inter-signal phase sweeps its full
		// range across the window (which a relative carrier offset
		// normally guarantees). When two senders' oscillators happen to
		// nearly match, θ−φ sits on a sparse lattice, σ biases, and the
		// quadratic loses its real roots. The envelope estimator below
		// is immune to the phase distribution; fall back to it.
		if env, err := estimateEnvelopeWith(ws, window); err == nil {
			env.Mu, env.Sig = mu, sig
			return env, nil
		}
		eq := math.Sqrt(mu / 2)
		return AmplitudeEstimate{A: eq, B: eq, Mu: mu, Sig: sig}, nil
	}
	root := math.Sqrt(disc)
	a2 := (mu + root) / 2
	b2 := (mu - root) / 2
	if b2 < 0 {
		b2 = 0
	}
	est := AmplitudeEstimate{A: math.Sqrt(a2), B: math.Sqrt(b2), Mu: mu, Sig: sig}
	// Hybrid refinement: µ = A²+B² is a low-variance scale anchor, but
	// the σ-derived A/B split is the noisiest part of the moment method —
	// especially for modulations whose phase holds still within a symbol
	// (π/4-DQPSK), where sample correlation cuts the effective N. The
	// envelope quantiles measure the A/B *ratio* far more directly, so
	// when they are available the split comes from them, rescaled to µ.
	if env, err := estimateEnvelopeWith(ws, window); err == nil && env.A > 0 {
		r := env.B / env.A
		a := math.Sqrt(mu / (1 + r*r))
		est.A, est.B = a, r*a
	}
	return est, nil
}

// EstimateAmplitudesEnvelope recovers the two amplitudes from the
// envelope extremes of the mixture: |y| ranges over [|A−B|, A+B] as the
// inter-signal phase varies, so robust quantiles of |y| give
//
//	A = (q_hi + q_lo)/2,  B = (q_hi − q_lo)/2   (A ≥ B)
//
// Unlike the Eq. 5/6 moments this needs no assumption about the phase
// distribution beyond both extremes being visited — which MSK guarantees
// whenever the two bit streams differ anywhere in the window. It is used
// as a fallback (see EstimateAmplitudes) and by the estimator ablation.
func EstimateAmplitudesEnvelope(window dsp.Signal) (AmplitudeEstimate, error) {
	return estimateEnvelopeWith(nil, window)
}

// estimateEnvelopeWith is EstimateAmplitudesEnvelope drawing its magnitude
// scratch from a workspace (nil for a fresh allocation).
func estimateEnvelopeWith(ws *Workspace, window dsp.Signal) (AmplitudeEstimate, error) {
	n := len(window)
	if n < 64 {
		return AmplitudeEstimate{}, ErrAmplitude
	}
	var mags []float64
	if ws == nil {
		mags = make([]float64, n)
	} else {
		mags = growFloats(&ws.mags, n)
	}
	for i, v := range window {
		mags[i] = math.Hypot(real(v), imag(v))
	}
	sort.Float64s(mags)
	// 0.5% guard quantiles reject additive-noise outliers.
	lo := mags[n/200]
	hi := mags[n-1-n/200]
	a := (hi + lo) / 2
	b := (hi - lo) / 2
	// A near-degenerate spread means there is no resolvable second
	// signal (single carrier plus noise).
	if b < 0.05*a || a <= 0 {
		return AmplitudeEstimate{}, ErrAmplitude
	}
	return AmplitudeEstimate{A: a, B: b}, nil
}

// AssignAmplitudes orders an estimate so that A matches the known signal.
// knownPower is an independent measurement of the known signal's received
// power — in practice the mean energy of the interference-free head of the
// stream, where only the known signal is present (§7.2 guarantees such a
// region exists). The estimate whose square is closer to knownPower
// becomes A.
func AssignAmplitudes(est AmplitudeEstimate, knownPower float64) AmplitudeEstimate {
	da := math.Abs(est.A*est.A - knownPower)
	db := math.Abs(est.B*est.B - knownPower)
	if db < da {
		est.A, est.B = est.B, est.A
	}
	return est
}
