package core

import (
	"reflect"
	"testing"
)

// batchFixture builds n distinct relayed Alice–Bob collisions and wraps
// each as a BatchItem whose decoder shares the given workspace — the
// shape of one simulation slot's burst.
func batchFixture(t *testing.T, ws *Workspace, n int) []BatchItem {
	t.Helper()
	items := make([]BatchItem, 0, 2*n)
	for i := 0; i < n; i++ {
		ex := makeABExchange(t, int64(40+i), 1100+60*i, 1, 0.9)
		decA := NewDecoder(abConfig(ex.modem, ex.floorA))
		decA.SetWorkspace(ws)
		decB := NewDecoder(abConfig(ex.modem, ex.floorB))
		decB.SetWorkspace(ws)
		items = append(items,
			BatchItem{Decoder: decA, Rx: ex.rxA, Lookup: ex.bufA.Get},
			BatchItem{Decoder: decB, Rx: ex.rxB, Lookup: ex.bufB.Get},
		)
	}
	return items
}

// TestDecodeBatchMatchesSequential pins the batch entry point's contract:
// out[i] is bit-identical to items[i].Decoder.Decode(...), whatever the
// batch's composition — forward and backward decodes, mixed reception
// lengths, every decoder sharing one workspace.
func TestDecodeBatchMatchesSequential(t *testing.T) {
	ws := NewWorkspace()
	items := batchFixture(t, ws, 3)

	// Sequential reference first: decoders with private fresh workspaces,
	// so batch-side workspace sharing cannot mask a divergence.
	want := make([]BatchResult, len(items))
	for i, it := range items {
		ref := NewDecoder(it.Decoder.cfg)
		ref.SetWorkspace(NewWorkspace())
		want[i].Result, want[i].Err = ref.Decode(it.Rx, it.Lookup)
	}

	out := DecodeBatch(items, nil)
	if len(out) != len(items) {
		t.Fatalf("DecodeBatch returned %d results for %d items", len(out), len(items))
	}
	for i := range out {
		if !reflect.DeepEqual(out[i].Err, want[i].Err) {
			t.Errorf("item %d: batch err %v, sequential err %v", i, out[i].Err, want[i].Err)
			continue
		}
		if !reflect.DeepEqual(out[i].Result, want[i].Result) {
			t.Errorf("item %d: batch result diverges from sequential Decode:\nbatch:      %+v\nsequential: %+v",
				i, out[i].Result, want[i].Result)
		}
	}
}

// TestDecodeBatchReusesOut pins the output-slice contract: a caller-owned
// slice with sufficient capacity is resized and reused, not reallocated.
func TestDecodeBatchReusesOut(t *testing.T) {
	ws := NewWorkspace()
	items := batchFixture(t, ws, 1)
	out := make([]BatchResult, 0, len(items))
	got := DecodeBatch(items, out)
	if &got[0] != &out[:1][0] {
		t.Errorf("DecodeBatch reallocated an out slice with capacity %d for %d items", cap(out), len(items))
	}
	if empty := DecodeBatch(nil, got); len(empty) != 0 {
		t.Errorf("DecodeBatch(nil, out) returned %d results", len(empty))
	}
}

// TestDecodeBatchSteadyStateAllocs extends the per-decode allocation
// budget to the batch path: once the shared workspace has grown, a burst
// allocates only what the callers keep (each item's Result and owned
// copies) — the batch machinery itself adds nothing per reception.
func TestDecodeBatchSteadyStateAllocs(t *testing.T) {
	ws := NewWorkspace()
	items := batchFixture(t, ws, 2)
	out := make([]BatchResult, len(items))
	for i := 0; i < 2; i++ {
		out = DecodeBatch(items, out)
		for j := range out {
			if out[j].Err != nil {
				t.Fatalf("warmup batch item %d: %v", j, out[j].Err)
			}
		}
	}
	budget := float64(len(items) * maxBackwardDecodeAllocs)
	allocs := testing.AllocsPerRun(10, func() {
		out = DecodeBatch(items, out)
	})
	if allocs > budget {
		t.Errorf("DecodeBatch of %d items allocates %.1f objects/op in steady state, budget %.0f",
			len(items), allocs, budget)
	}
}
