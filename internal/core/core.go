package core
