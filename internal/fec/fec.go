// Package fec provides forward error correction for the ANC stack.
//
// The paper reports that ANC's 2–4% residual BER is compensated by "8% of
// extra redundancy (i.e., error correction codes)" without naming the
// code (§11.4). This package supplies:
//
//   - a real, tested codec — Hamming(7,4) with a block interleaver — so
//     the repository has a working coded path end to end, and
//   - a RedundancyModel that charges throughput the paper's BER-dependent
//     overhead, which the experiment harness uses for its accounting
//     (matching the paper's methodology rather than the specific code).
//
// The two are deliberately separate: Hamming(7,4) costs 75% overhead and
// corrects one error per 7-bit block, far more protection (and cost) than
// the paper's 8%; a production system would use a high-rate LDPC or RS
// code. The accounting model captures what the evaluation actually did.
package fec

import "fmt"

// hammingEncode maps 4 data bits to a 7-bit codeword (positions 1..7,
// parity at 1, 2, 4).
func hammingEncode(d [4]byte) [7]byte {
	d1, d2, d3, d4 := d[0]&1, d[1]&1, d[2]&1, d[3]&1
	p1 := d1 ^ d2 ^ d4
	p2 := d1 ^ d3 ^ d4
	p3 := d2 ^ d3 ^ d4
	return [7]byte{p1, p2, d1, p3, d2, d3, d4}
}

// hammingDecode corrects up to one bit error in a 7-bit codeword and
// returns the 4 data bits plus whether a correction was applied.
func hammingDecode(c [7]byte) ([4]byte, bool) {
	s1 := c[0] ^ c[2] ^ c[4] ^ c[6]
	s2 := c[1] ^ c[2] ^ c[5] ^ c[6]
	s3 := c[3] ^ c[4] ^ c[5] ^ c[6]
	syndrome := int(s1) | int(s2)<<1 | int(s3)<<2
	corrected := false
	if syndrome != 0 {
		c[syndrome-1] ^= 1
		corrected = true
	}
	return [4]byte{c[2], c[4], c[5], c[6]}, corrected
}

// Encode Hamming(7,4)-encodes a bit slice. The input is zero-padded to a
// multiple of 4; callers that need exact framing carry the original length
// out of band (the frame header's Len field serves that role).
func Encode(data []byte) []byte {
	n := (len(data) + 3) / 4
	out := make([]byte, 0, n*7)
	var block [4]byte
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			k := i*4 + j
			if k < len(data) {
				block[j] = data[k] & 1
			} else {
				block[j] = 0
			}
		}
		cw := hammingEncode(block)
		out = append(out, cw[:]...)
	}
	return out
}

// Decode corrects and strips Hamming(7,4) coding. It returns the decoded
// bits and the number of blocks in which a correction was applied. The
// input length must be a multiple of 7.
func Decode(coded []byte) ([]byte, int, error) {
	if len(coded)%7 != 0 {
		return nil, 0, fmt.Errorf("fec: coded length %d is not a multiple of 7", len(coded))
	}
	out := make([]byte, 0, len(coded)/7*4)
	corrections := 0
	var cw [7]byte
	for i := 0; i < len(coded); i += 7 {
		copy(cw[:], coded[i:i+7])
		for j := range cw {
			cw[j] &= 1
		}
		d, fixed := hammingDecode(cw)
		if fixed {
			corrections++
		}
		out = append(out, d[:]...)
	}
	return out, corrections, nil
}

// Overhead is the coding expansion factor of the codec (7/4).
const Overhead = 7.0 / 4.0

// Interleave reorders bits by writing row-wise into a depth×width matrix
// and reading column-wise, spreading a burst of up to `depth` adjacent
// errors across distinct codewords. The input is padded to a full matrix;
// Deinterleave with the same depth and the original length inverts it.
func Interleave(data []byte, depth int) []byte {
	if depth <= 1 {
		return append([]byte(nil), data...)
	}
	width := (len(data) + depth - 1) / depth
	out := make([]byte, 0, width*depth)
	for col := 0; col < width; col++ {
		for row := 0; row < depth; row++ {
			k := row*width + col
			if k < len(data) {
				out = append(out, data[k])
			} else {
				out = append(out, 0)
			}
		}
	}
	return out
}

// Deinterleave inverts Interleave, recovering origLen bits.
func Deinterleave(data []byte, depth, origLen int) []byte {
	if depth <= 1 {
		out := append([]byte(nil), data...)
		if len(out) > origLen {
			out = out[:origLen]
		}
		return out
	}
	width := (origLen + depth - 1) / depth
	out := make([]byte, origLen)
	i := 0
	for col := 0; col < width; col++ {
		for row := 0; row < depth; row++ {
			if i >= len(data) {
				return out
			}
			k := row*width + col
			if k < origLen {
				out[k] = data[i]
			}
			i++
		}
	}
	return out
}
