package fec

import "math"

// RedundancyModel charges throughput the error-correction overhead the
// paper's evaluation applied: "To compensate for this bit-error rate we
// have to add 8% of extra redundancy ... compared to the traditional
// approach" at the observed ≈4% BER (§11.4). The model scales the paper's
// operating point by the information-theoretic cost of the measured BER:
// the minimum redundancy to correct a BSC with crossover p is H₂(p), so we
// charge overhead = κ·H₂(p), with κ calibrated so that p = 4% costs 8%,
// the paper's number (κ ≈ 0.33, i.e. a code running at about 3× the
// Shannon-minimum redundancy — typical of practical high-rate codes).
type RedundancyModel struct {
	// Kappa multiplies the binary entropy of the BER.
	Kappa float64
	// MaxBER is the residual error rate beyond which the packet is
	// considered uncorrectable and counts as lost. The paper's CDFs show
	// decodes up to ~35% BER that clearly did not contribute goodput.
	MaxBER float64
}

// DefaultRedundancy returns the model calibrated to the paper: 8%
// overhead at 4% BER, packets beyond 10% BER lost.
func DefaultRedundancy() RedundancyModel {
	p := 0.04
	return RedundancyModel{Kappa: 0.08 / binaryEntropy(p), MaxBER: 0.10}
}

// binaryEntropy returns H₂(p) in bits.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Overhead returns the fractional redundancy charged for a packet with
// the given residual BER (0.08 at the paper's 4% operating point).
func (m RedundancyModel) Overhead(ber float64) float64 {
	if ber <= 0 {
		return 0
	}
	if ber > 0.5 {
		ber = 0.5
	}
	return m.Kappa * binaryEntropy(ber)
}

// Goodput returns the useful fraction of a delivered packet's bits after
// paying redundancy: 1/(1+overhead), or 0 if the BER exceeds MaxBER
// (uncorrectable — the packet is lost).
func (m RedundancyModel) Goodput(ber float64) float64 {
	if ber > m.MaxBER {
		return 0
	}
	return 1 / (1 + m.Overhead(ber))
}
