package fec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bits"
)

func randomBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 4 * (1 + rng.Intn(100))
		data := randomBits(rng, n)
		got, corrections, err := Decode(Encode(data))
		if err != nil {
			t.Fatal(err)
		}
		if corrections != 0 {
			t.Errorf("clean round trip applied %d corrections", corrections)
		}
		if !bits.Equal(got, data) {
			t.Fatalf("trial %d: round trip failed", trial)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		data := make([]byte, (len(raw)/4)*4)
		for i := range data {
			data[i] = raw[i] & 1
		}
		got, _, err := Decode(Encode(data))
		return err == nil && bits.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodePadsTo4(t *testing.T) {
	data := []byte{1, 0, 1} // padded with one 0
	coded := Encode(data)
	if len(coded) != 7 {
		t.Fatalf("coded length %d, want 7", len(coded))
	}
	got, _, err := Decode(coded)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(got[:3], data) || got[3] != 0 {
		t.Errorf("decoded %v", got)
	}
}

func TestSingleErrorPerBlockCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randomBits(rng, 200)
	coded := Encode(data)
	// Flip one bit in every 7-bit block.
	for i := 0; i < len(coded); i += 7 {
		coded[i+rng.Intn(7)] ^= 1
	}
	got, corrections, err := Decode(coded)
	if err != nil {
		t.Fatal(err)
	}
	if corrections != len(coded)/7 {
		t.Errorf("corrections = %d, want %d", corrections, len(coded)/7)
	}
	if !bits.Equal(got, data) {
		t.Error("single errors per block not all corrected")
	}
}

func TestDoubleErrorNotCorrectable(t *testing.T) {
	data := []byte{1, 0, 1, 1}
	coded := Encode(data)
	coded[0] ^= 1
	coded[3] ^= 1
	got, _, err := Decode(coded)
	if err != nil {
		t.Fatal(err)
	}
	if bits.Equal(got, data) {
		t.Error("double error unexpectedly corrected (Hamming distance 3 code)")
	}
}

func TestDecodeRejectsBadLength(t *testing.T) {
	if _, _, err := Decode(make([]byte, 8)); err == nil {
		t.Error("length 8 accepted")
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, depth := range []int{1, 2, 7, 16} {
		for trial := 0; trial < 10; trial++ {
			n := 1 + rng.Intn(300)
			data := randomBits(rng, n)
			got := Deinterleave(Interleave(data, depth), depth, n)
			if !bits.Equal(got, data) {
				t.Fatalf("depth %d n %d: round trip failed", depth, n)
			}
		}
	}
}

func TestInterleaveSpreadsBursts(t *testing.T) {
	// A burst of `depth` adjacent errors in the interleaved domain must
	// land in `depth` distinct codewords after deinterleaving, so
	// interleaved Hamming corrects bursts the bare code cannot.
	rng := rand.New(rand.NewSource(4))
	const depth = 7
	data := randomBits(rng, 280) // 70 codewords
	coded := Encode(data)
	tx := Interleave(coded, depth)
	// One burst of 7 adjacent flips.
	at := 100
	for i := 0; i < depth; i++ {
		tx[at+i] ^= 1
	}
	rxCoded := Deinterleave(tx, depth, len(coded))
	got, _, err := Decode(rxCoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(got, data) {
		t.Error("interleaved code failed to correct a depth-length burst")
	}
	// Control: without interleaving the same burst is uncorrectable.
	coded2 := Encode(data)
	for i := 0; i < depth; i++ {
		coded2[at+i] ^= 1
	}
	got2, _, _ := Decode(coded2)
	if bits.Equal(got2, data) {
		t.Error("bare code unexpectedly corrected a burst (test is vacuous)")
	}
}

func TestCodedBERImprovement(t *testing.T) {
	// At 1% channel BER, Hamming(7,4) should cut residual BER by an
	// order of magnitude.
	rng := rand.New(rand.NewSource(5))
	data := randomBits(rng, 40000)
	coded := Encode(data)
	for i := range coded {
		if rng.Float64() < 0.01 {
			coded[i] ^= 1
		}
	}
	got, _, err := Decode(coded)
	if err != nil {
		t.Fatal(err)
	}
	residual := bits.BER(data, got)
	if residual > 0.002 {
		t.Errorf("residual BER %v at 1%% channel BER, want < 0.002", residual)
	}
}

func TestOverheadConstant(t *testing.T) {
	if Overhead != 1.75 {
		t.Errorf("Overhead = %v", Overhead)
	}
	data := make([]byte, 400)
	if got := float64(len(Encode(data))) / float64(len(data)); got != Overhead {
		t.Errorf("actual expansion %v", got)
	}
}

func TestRedundancyModelCalibration(t *testing.T) {
	m := DefaultRedundancy()
	// The paper's operating point: 4% BER costs 8% redundancy.
	if got := m.Overhead(0.04); math.Abs(got-0.08) > 1e-9 {
		t.Errorf("Overhead(0.04) = %v, want 0.08", got)
	}
	if got := m.Overhead(0); got != 0 {
		t.Errorf("Overhead(0) = %v", got)
	}
	// Monotone in BER up to 0.5.
	prev := -1.0
	for _, p := range []float64{0.001, 0.01, 0.04, 0.1, 0.3, 0.5} {
		o := m.Overhead(p)
		if o <= prev {
			t.Errorf("overhead not increasing at %v", p)
		}
		prev = o
	}
	if m.Overhead(0.9) != m.Overhead(0.5) {
		t.Error("BER beyond 0.5 not clamped")
	}
}

func TestRedundancyGoodput(t *testing.T) {
	m := DefaultRedundancy()
	if got := m.Goodput(0); got != 1 {
		t.Errorf("Goodput(0) = %v", got)
	}
	if got := m.Goodput(0.04); math.Abs(got-1/1.08) > 1e-9 {
		t.Errorf("Goodput(0.04) = %v, want %v", got, 1/1.08)
	}
	if got := m.Goodput(0.2); got != 0 {
		t.Errorf("Goodput above MaxBER = %v, want 0 (lost)", got)
	}
}
