package radio

import (
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/frame"
	"repro/internal/msk"
)

const floor = 1e-3

func mkNode(id uint16) *Node {
	return NewNode(id, msk.New(), floor)
}

func mkPayload(rng *rand.Rand, n int) []byte {
	p := make([]byte, n)
	rng.Read(p)
	return p
}

// transmitClean sends one frame over a fresh link and returns the
// reception at the far end.
func transmitClean(rec frame.SentRecord, gain float64, seed int64) dsp.Signal {
	return channel.Receive(dsp.NewNoiseSource(floor, seed), 300,
		channel.Transmission{Signal: rec.Samples, Link: channel.Link{Gain: gain, Phase: 1.1}, Delay: 150})
}

func TestBuildFrameStoresRecord(t *testing.T) {
	n := mkNode(1)
	pkt := frame.NewPacket(1, 2, n.NextSeq(), []byte("data"))
	rec := n.BuildFrame(pkt)
	if len(rec.Bits) != frame.FrameBits(4) {
		t.Errorf("frame bits = %d", len(rec.Bits))
	}
	if len(rec.Samples) != n.Modem.NumSamples(len(rec.Bits)) {
		t.Errorf("samples = %d", len(rec.Samples))
	}
	if !n.Knows(pkt.Header) {
		t.Error("sent packet not in buffer")
	}
}

func TestNextSeqMonotone(t *testing.T) {
	n := mkNode(1)
	a, b, c := n.NextSeq(), n.NextSeq(), n.NextSeq()
	if !(a < b && b < c) {
		t.Errorf("sequence numbers %d %d %d not increasing", a, b, c)
	}
}

func TestCleanReceive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tx := mkNode(1)
	rxNode := mkNode(2)
	pkt := frame.NewPacket(1, 2, tx.NextSeq(), mkPayload(rng, 48))
	rec := tx.BuildFrame(pkt)
	res, err := rxNode.Receive(transmitClean(rec, 0.8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || !res.BodyOK {
		t.Fatalf("clean=%v bodyOK=%v", res.Clean, res.BodyOK)
	}
	if string(res.Packet.Payload) != string(pkt.Payload) {
		t.Error("payload mismatch")
	}
}

func TestOverhearRemembers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tx := mkNode(1)
	snoop := mkNode(4)
	pkt := frame.NewPacket(1, 9, tx.NextSeq(), mkPayload(rng, 48))
	rec := tx.BuildFrame(pkt)
	res, err := snoop.Overhear(transmitClean(rec, 0.7, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.HeaderOK {
		t.Fatal("overheard header failed")
	}
	if !snoop.Knows(pkt.Header) {
		t.Error("overheard packet not remembered")
	}
}

// aliceBobReception synthesizes the relayed interfered reception at Alice.
func aliceBobReception(t *testing.T, alice, bob *Node, pktA, pktB frame.Packet, seed int64) dsp.Signal {
	t.Helper()
	recA := alice.BuildFrame(pktA)
	recB := bob.BuildFrame(pktB)
	routerRx := channel.Receive(dsp.NewNoiseSource(floor, seed), 200,
		channel.Transmission{Signal: recA.Samples, Link: channel.Link{Gain: 0.8, Phase: 0.5, FreqOffset: 0.007}},
		channel.Transmission{Signal: recB.Samples, Link: channel.Link{Gain: 0.75, Phase: -0.9, FreqOffset: -0.006}, Delay: 900},
	)
	relayed := channel.AmplifyTo(routerRx, 1)
	return channel.Receive(dsp.NewNoiseSource(floor, seed+1), 300,
		channel.Transmission{Signal: relayed, Link: channel.Link{Gain: 0.7, Phase: 1.8}, Delay: 60})
}

func TestInterferedReceiveViaNode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alice, bob := mkNode(1), mkNode(2)
	pktA := frame.NewPacket(1, 2, alice.NextSeq(), mkPayload(rng, 64))
	pktB := frame.NewPacket(2, 1, bob.NextSeq(), mkPayload(rng, 64))
	rx := aliceBobReception(t, alice, bob, pktA, pktB, 6)
	res, err := alice.Receive(rx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HeaderOK || res.Packet.Header != pktB.Header {
		t.Fatalf("recovered %v, want Bob's header", res.Packet.Header)
	}
}

func TestDecideRouterKnown(t *testing.T) {
	// A router that knows one of the colliding packets decodes (chain
	// topology, §7.5).
	rng := rand.New(rand.NewSource(7))
	alice, bob := mkNode(1), mkNode(2)
	pktA := frame.NewPacket(1, 2, alice.NextSeq(), mkPayload(rng, 64))
	pktB := frame.NewPacket(2, 1, bob.NextSeq(), mkPayload(rng, 64))
	rx := aliceBobReception(t, alice, bob, pktA, pktB, 8)

	router := mkNode(9)
	router.Remember(frame.SentRecord{Packet: pktA, Bits: frame.Marshal(pktA)})
	if got := router.DecideRouter(rx, nil); got != ActionDecode {
		t.Errorf("action = %v, want ActionDecode", got)
	}
}

func TestDecideRouterAmplifyForward(t *testing.T) {
	// A router that knows neither packet but sees opposite flows
	// amplifies and forwards (Alice–Bob, §7.5).
	rng := rand.New(rand.NewSource(9))
	alice, bob := mkNode(1), mkNode(2)
	pktA := frame.NewPacket(1, 2, alice.NextSeq(), mkPayload(rng, 64))
	pktB := frame.NewPacket(2, 1, bob.NextSeq(), mkPayload(rng, 64))
	rx := aliceBobReception(t, alice, bob, pktA, pktB, 10)

	router := mkNode(9)
	opposite := func(a, b frame.Header) bool {
		return a.Src == b.Dst && a.Dst == b.Src
	}
	if got := router.DecideRouter(rx, opposite); got != ActionAmplifyForward {
		t.Errorf("action = %v, want ActionAmplifyForward", got)
	}
}

func TestDecideRouterDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alice, bob := mkNode(1), mkNode(2)
	pktA := frame.NewPacket(1, 2, alice.NextSeq(), mkPayload(rng, 64))
	pktB := frame.NewPacket(2, 1, bob.NextSeq(), mkPayload(rng, 64))
	rx := aliceBobReception(t, alice, bob, pktA, pktB, 12)

	router := mkNode(9)
	notOpposite := func(a, b frame.Header) bool { return false }
	if got := router.DecideRouter(rx, notOpposite); got != ActionDrop {
		t.Errorf("action = %v, want ActionDrop", got)
	}
	if got := router.DecideRouter(rx, nil); got != ActionDrop {
		t.Errorf("nil predicate action = %v, want ActionDrop", got)
	}
}

func TestOverhearSkipsOwnTraffic(t *testing.T) {
	// A packet addressed to the snooping node is its own traffic — not an
	// overhearing target (it will arrive via the relay).
	rng := rand.New(rand.NewSource(13))
	tx := mkNode(1)
	snoop := mkNode(2)
	pkt := frame.NewPacket(1, 2, tx.NextSeq(), mkPayload(rng, 48)) // dst == snoop
	rec := tx.BuildFrame(pkt)
	snoop.Overhear(transmitClean(rec, 0.7, 14))
	if snoop.Knows(pkt.Header) {
		t.Error("node remembered its own inbound traffic as an overheard reference")
	}
}

func TestOverhearBackwardCapture(t *testing.T) {
	// When the wanted overhearing target starts second in a collision,
	// the snoop must capture it via the time-reversed pass.
	rng := rand.New(rand.NewSource(15))
	n1, n3 := mkNode(1), mkNode(3)
	snoop := mkNode(2)
	target := frame.NewPacket(1, 4, n1.NextSeq(), mkPayload(rng, 64))  // want this
	ownFlow := frame.NewPacket(3, 2, n3.NextSeq(), mkPayload(rng, 64)) // dst == snoop
	recT := n1.BuildFrame(target)
	recO := n3.BuildFrame(ownFlow)
	// ownFlow starts first and is strong enough to be detected, so the
	// forward TryClean decodes it — and must skip it (dst == self),
	// retrying on the reversed stream to capture the late target.
	rx := channel.Receive(dsp.NewNoiseSource(floor, 16), 400,
		channel.Transmission{Signal: recO.Samples, Link: channel.Link{Gain: 0.3, Phase: 0.4}},
		channel.Transmission{Signal: recT.Samples, Link: channel.Link{Gain: 0.6, Phase: 1.2}, Delay: 1100},
	)
	res, err := snoop.Overhear(rx)
	if err != nil {
		t.Fatalf("overhear: %v", err)
	}
	if !res.Backward {
		t.Error("expected backward capture of the late-starting target")
	}
	if !snoop.Knows(target.Header) {
		t.Error("late-starting target not remembered")
	}
	if snoop.Knows(ownFlow.Header) {
		t.Error("own traffic remembered")
	}
}
