// Package radio assembles the per-node transceiver of Fig. 8: framer and
// modulator on the send side; packet detector, interference detector,
// header decoder, phase-difference matcher, ANC decoder and deframer on
// the receive side — all provided by internal/core and internal/frame and
// glued here behind a network-interface-like Node API. It also implements
// the router decision procedure of §7.5.
package radio

import (
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/frame"
)

// Node is one radio: it builds frames (remembering them for later
// interference cancellation), receives signals through the full Fig. 8
// pipeline, and can snoop on the medium (overhearing, §11.5).
type Node struct {
	ID         uint16
	Modem      core.PhyModem
	NoiseFloor float64

	buffer  *frame.SentBuffer
	decoder *core.Decoder
	// lookup is the buffer's Get bound once at construction, so Receive
	// and BatchItem never re-create the method-value closure.
	lookup core.KnownLookup
	seq    uint32
}

// NewNode builds a node with the repository-default decoder configuration
// for the given modem and noise floor. Options may adjust the decoder
// configuration before it is built (e.g. setting the network's fixed
// frame size for header-error resilience).
func NewNode(id uint16, m core.PhyModem, noiseFloor float64, opts ...func(*core.Config)) *Node {
	cfg := core.DefaultConfig(m, noiseFloor)
	for _, o := range opts {
		o(&cfg)
	}
	n := &Node{
		ID:         id,
		Modem:      m,
		NoiseFloor: noiseFloor,
		buffer:     frame.NewSentBuffer(0),
		decoder:    core.NewDecoder(cfg),
	}
	n.lookup = n.buffer.Get
	return n
}

// Reset clears the node's per-run state — the Sent Packet Buffer and the
// sequence counter — so a pooled node starts its next run exactly like a
// freshly built one. The decoder and its cached protocol constants are
// run-independent and stay.
func (n *Node) Reset() {
	n.buffer.Reset()
	n.seq = 0
}

// NextSeq allocates the next sequence number for an outgoing packet.
func (n *Node) NextSeq() uint32 {
	n.seq++
	return n.seq
}

// BuildFrame marshals and modulates a packet and stores the sent record
// in the node's Sent Packet Buffer (§7.3).
func (n *Node) BuildFrame(pkt frame.Packet) frame.SentRecord {
	bs := frame.MarshalFor(pkt, n.Modem.BitsPerSymbol())
	rec := frame.SentRecord{Packet: pkt, Bits: bs, Samples: n.Modem.Modulate(bs)}
	n.buffer.Put(rec)
	return rec
}

// Remember stores an externally obtained record (a forwarded packet in
// the chain, an overheard packet in the "X" topology) so it can later
// cancel interference.
func (n *Node) Remember(rec frame.SentRecord) { n.buffer.Put(rec) }

// SetWorkspace points the node's decoder at a caller-owned workspace so
// many nodes (and runs) share one set of decode buffers. One workspace per
// worker goroutine — sharing across goroutines races. A nil workspace
// reverts to a private one.
func (n *Node) SetWorkspace(ws *core.Workspace) { n.decoder.SetWorkspace(ws) }

// Knows reports whether the buffer holds the packet for a header.
func (n *Node) Knows(h frame.Header) bool {
	_, ok := n.buffer.Get(h.Key())
	return ok
}

// Receive runs the full receive pipeline (Alg. 1) on a reception window.
func (n *Node) Receive(rx dsp.Signal) (*core.Result, error) {
	return n.decoder.Decode(rx, n.lookup)
}

// BatchItem packages a reception for core.DecodeBatch: decoding the item
// is exactly this node's Receive, deferred so a slot's receptions can be
// decoded as one burst.
func (n *Node) BatchItem(rx dsp.Signal) core.BatchItem {
	return core.BatchItem{Decoder: n.decoder, Rx: rx, Lookup: n.lookup}
}

// Overhear attempts an opportunistic single-signal decode of a snooped
// reception and, when it recovers a packet worth remembering, stores the
// recovered bits — even with payload errors. Using an imperfectly
// overheard packet as the cancellation reference is exactly what produces
// the elevated BER tail of Fig. 10(b).
//
// Two rules make snooping useful rather than self-defeating:
//
//   - A packet addressed to this node is not an overhearing target — it
//     is this node's own traffic, which will arrive via the relay; storing
//     a weak direct copy as a "known packet" would poison later
//     interference cancellation.
//   - If the first-starting transmission in the window is not a target
//     (or does not decode), the snoop retries on the time-reversed stream,
//     which captures the last-ending transmission instead.
func (n *Node) Overhear(rx dsp.Signal) (*core.Result, error) {
	res, err := n.decoder.TryClean(rx)
	if err == nil && res.HeaderOK && res.Packet.Header.Dst != n.ID {
		n.Remember(frame.SentRecord{Packet: res.Packet, Bits: res.WantedBits})
		return res, nil
	}
	resBwd, errBwd := n.decoder.TryCleanBackward(rx)
	if errBwd == nil && resBwd.HeaderOK && resBwd.Packet.Header.Dst != n.ID {
		n.Remember(frame.SentRecord{Packet: resBwd.Packet, Bits: resBwd.WantedBits})
		return resBwd, nil
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RouterAction is the §7.5 decision.
type RouterAction int

const (
	// ActionDrop discards the reception.
	ActionDrop RouterAction = iota
	// ActionDecode recovers the unknown packet (the router knows one of
	// the two colliding packets, as N2 does in the chain).
	ActionDecode
	// ActionAmplifyForward re-amplifies and re-broadcasts the interfered
	// signal without decoding (the Alice–Bob router).
	ActionAmplifyForward
)

// OppositeFlows reports whether two headers describe packets heading in
// opposite directions through a relay — the §7.5 condition for
// amplify-and-forward. The router checks that the two packets come from
// different sources and are destined to different nodes, each being a
// neighbor the router can reach.
type OppositeFlows func(a, b frame.Header) bool

// DecideRouter classifies an interfered reception per §7.5: "If either of
// the headers corresponds to a packet it already has, it will decode the
// interfered signal. If none of the headers correspond to packets it
// knows, it checks if the two packets ... are headed in opposite
// directions to its neighbors. If so, it amplifies ... If none of the
// above conditions is met, it simply drops the received signal."
func (n *Node) DecideRouter(rx dsp.Signal, opposite OppositeFlows) RouterAction {
	first, last := n.decoder.PeekHeaders(rx)
	if first != nil && n.Knows(*first) {
		return ActionDecode
	}
	if last != nil && n.Knows(*last) {
		return ActionDecode
	}
	if first != nil && last != nil && opposite != nil && opposite(*first, *last) {
		return ActionAmplifyForward
	}
	return ActionDrop
}
