// Package dqpsk implements a π/4 differential QPSK modem — the §4
// generality demonstration: "the ideas we develop in this paper,
// especially §6.1, are applicable to any phase shift keying modulation."
//
// π/4-DQPSK (used by TETRA, PDC and the US TDMA cellular standard) maps
// two bits per symbol to a phase *jump* from the set {±π/4, ±3π/4}. Like
// MSK it has a constant envelope and carries all information in phase
// differences — the two properties the interference decoder depends on —
// but unlike MSK its per-sample difference profile is bursty: the whole
// jump happens on the first sample transition of each symbol and the
// remaining transitions are flat. The decoder handles both through the
// core.PhyModem interface.
//
// Because every symbol's jump is non-zero, the pilot remains locatable in
// a recovered phase-difference stream (a plain DQPSK alphabet, with its 0
// jump, would make some pilot symbols invisible to the correlator).
//
// Backward decoding (§7.4) works exactly as for MSK: frames for a
// multi-bit modem are mirrored in *symbol* units (frame.MarshalFor), so a
// conjugate time-reversed stream presents a valid pilot+header at its
// head. The only DQPSK-specific convention is where the demodulator locks
// on the reversed stream — see BackwardRefOffset.
package dqpsk

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dsp"
)

// jumps maps 2-bit Gray-coded symbols to phase jumps.
// 00→+π/4, 01→+3π/4, 11→−3π/4, 10→−π/4.
var jumps = [4]float64{
	0b00: math.Pi / 4,
	0b01: 3 * math.Pi / 4,
	0b11: -3 * math.Pi / 4,
	0b10: -math.Pi / 4,
}

// Modem is a π/4-DQPSK modulator/demodulator. Stateless and safe for
// concurrent use.
type Modem struct {
	sps       int
	amplitude float64
}

// Option configures a Modem.
type Option func(*Modem)

// WithSamplesPerSymbol sets the oversampling factor (≥ 1).
func WithSamplesPerSymbol(s int) Option {
	return func(m *Modem) { m.sps = s }
}

// WithAmplitude sets the constant transmit amplitude.
func WithAmplitude(a float64) Option {
	return func(m *Modem) { m.amplitude = a }
}

// New returns a modem (defaults: 4 samples/symbol, unit amplitude).
func New(opts ...Option) *Modem {
	m := &Modem{sps: 4, amplitude: 1}
	for _, o := range opts {
		o(m)
	}
	if m.sps < 1 {
		panic(fmt.Sprintf("dqpsk: samples per symbol %d < 1", m.sps))
	}
	if m.amplitude <= 0 {
		panic(fmt.Sprintf("dqpsk: non-positive amplitude %v", m.amplitude))
	}
	return m
}

// SamplesPerSymbol returns the oversampling factor.
func (m *Modem) SamplesPerSymbol() int { return m.sps }

// BitsPerSymbol returns 2.
func (m *Modem) BitsPerSymbol() int { return 2 }

// NumSamples returns the signal length for n bits (n must be even; odd
// lengths are rounded up to a whole symbol, matching Modulate).
func (m *Modem) NumSamples(nbits int) int { return 1 + (nbits+1)/2*m.sps }

// NumBits returns how many whole bits fit in a signal of n samples.
func (m *Modem) NumBits(nsamples int) int {
	if nsamples <= 1 {
		return 0
	}
	return (nsamples - 1) / m.sps * 2
}

// symbolOf converts a bit pair to the symbol index.
func symbolOf(b1, b2 byte) int { return int(b1&1)<<1 | int(b2&1) }

// bitsOf converts a symbol index back to its bit pair.
func bitsOf(sym int) (byte, byte) { return byte(sym >> 1), byte(sym & 1) }

// Modulate maps bits (padded to a whole symbol with a 0) to the baseband
// signal: one reference sample at phase 0, then per symbol an immediate
// phase jump held constant for S samples.
func (m *Modem) Modulate(bs []byte) dsp.Signal {
	if len(bs)%2 == 1 {
		bs = append(append([]byte(nil), bs...), 0)
	}
	out := make(dsp.Signal, 0, 1+len(bs)/2*m.sps)
	out = append(out, complex(m.amplitude, 0))
	phase := 0.0
	for i := 0; i+1 < len(bs); i += 2 {
		phase = dsp.WrapPhase(phase + jumps[symbolOf(bs[i], bs[i+1])])
		v := complex(m.amplitude, 0) * cmplx.Exp(complex(0, phase))
		for k := 0; k < m.sps; k++ {
			out = append(out, v)
		}
	}
	return out
}

// Demodulate recovers bits by averaging each symbol's samples (the phase
// is constant within a symbol, so the boxcar is a true matched filter)
// and mapping the inter-symbol phase change to the nearest jump.
func (m *Modem) Demodulate(s dsp.Signal) []byte {
	return m.DemodulateInto(nil, nil, s)
}

// DemodulateInto is Demodulate writing the recovered bits into dst's
// storage (grown when too small). The π/4-DQPSK demodulator needs no
// internal working buffers, so scratch is accepted only to satisfy the
// shared modem contract and may be nil. Bit values are identical to
// Demodulate's.
//
//anc:hotpath
func (m *Modem) DemodulateInto(scratch *dsp.Scratch, dst []byte, s dsp.Signal) []byte {
	nsym := m.NumBits(len(s)) / 2
	if nsym == 0 {
		// Empty result, but keep dst's storage (see the MSK modem): a nil
		// return would leak a caller's retained reuse buffer.
		return dst[:0]
	}
	out := dsp.GrowBytes(dst, nsym*2)
	prev := s[0] // reference sample
	for i := 0; i < nsym; i++ {
		var acc complex128
		base := 1 + i*m.sps
		for k := 0; k < m.sps; k++ {
			acc += s[base+k]
		}
		d := dsp.PhaseDiff(prev, acc)
		sym := nearestJump(d)
		out[2*i], out[2*i+1] = bitsOf(sym)
		prev = acc
	}
	return out
}

// DemodulateBatchInto demodulates a batch of signal views in one call,
// writing view i's recovered bits into dsts[i]'s storage (the slot slice
// is grown to len(sigs), retained slot buffers are reused). The π/4-DQPSK
// demodulator needs no internal working buffers, so scratch may be nil;
// every dst slot keeps its own storage and the whole batch of results
// remains valid simultaneously. Bit values are identical to per-view
// DemodulateInto calls.
//
//anc:hotpath
func (m *Modem) DemodulateBatchInto(scratch *dsp.Scratch, dsts [][]byte, sigs []dsp.Signal) [][]byte {
	dsts = dsp.GrowByteSlices(dsts, len(sigs))
	for i, s := range sigs {
		dsts[i] = m.DemodulateInto(scratch, dsts[i], s)
	}
	return dsts
}

// nearestJump returns the symbol whose jump is closest (wrapped) to d.
func nearestJump(d float64) int {
	best, bestErr := 0, math.Inf(1)
	for sym, j := range jumps {
		e := math.Abs(dsp.WrapPhase(d - j))
		if e < bestErr {
			best, bestErr = sym, e
		}
	}
	return best
}

// PhaseDiffs returns the per-sample transmitted phase differences: the
// whole jump on each symbol's first transition, zero elsewhere.
func (m *Modem) PhaseDiffs(bs []byte) []float64 {
	return m.PhaseDiffsInto(nil, bs)
}

// PhaseDiffsInto is PhaseDiffs writing into dst's storage (grown when too
// small). An odd trailing bit is paired with an implicit 0, matching
// Modulate's padding, without copying the input.
//
//anc:hotpath
func (m *Modem) PhaseDiffsInto(dst []float64, bs []byte) []float64 {
	nsym := (len(bs) + 1) / 2
	dst = dsp.GrowFloats(dst, nsym*m.sps)
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < nsym; i++ {
		b1 := bs[2*i]
		var b2 byte
		if 2*i+1 < len(bs) {
			b2 = bs[2*i+1]
		}
		dst[i*m.sps] = jumps[symbolOf(b1, b2)]
	}
	return dst
}

// DecideDiffs maps recovered per-sample phase-difference estimates to
// bits: each symbol's S estimates are summed (the true profile is one
// jump plus zeros, so the sum estimates the jump) and snapped to the
// nearest constellation jump. Confidence weights are ignored: the jump is
// localized to a single unknown transition within the symbol, so
// down-weighting individual samples would bias the total.
func (m *Modem) DecideDiffs(diffs, weights []float64) []byte {
	return m.DecideDiffsInto(nil, diffs, weights)
}

// DecideDiffsInto is DecideDiffs writing into dst's storage (grown when
// too small).
//
//anc:hotpath
func (m *Modem) DecideDiffsInto(dst []byte, diffs, weights []float64) []byte {
	nsym := len(diffs) / m.sps
	out := dsp.GrowBytes(dst, nsym*2)
	for j := 0; j < nsym; j++ {
		var acc float64
		for k := 0; k < m.sps; k++ {
			acc += diffs[j*m.sps+k]
		}
		out[2*j], out[2*j+1] = bitsOf(nearestJump(acc))
	}
	return out
}

// BackwardRefOffset returns S−1, the π/4-DQPSK reverse-stream decision
// convention. A forward symbol is one jump followed by S−1 flat
// transitions; conjugate time reversal turns that into S−1 flat
// transitions followed by the jump, so the constant-phase runs of the
// reversed stream start one sample after each reversed-sequence symbol
// boundary. The demodulator therefore locks S−1 samples past the origin
// of the reversed difference sequence — and, conveniently, at that lock
// position every observed jump lands on the *first* transition of its
// symbol group, the forward convention DecideDiffs and the pilot
// difference profile already assume.
func (m *Modem) BackwardRefOffset() int { return m.sps - 1 }

// StepPrior returns the wrapped distance from dphi to the nearest legal
// per-sample difference: 0 (within a symbol) or one of the four jumps.
func (m *Modem) StepPrior(dphi float64) float64 {
	best := math.Abs(dsp.WrapPhase(dphi))
	for _, j := range jumps {
		if e := math.Abs(dsp.WrapPhase(dphi - j)); e < best {
			best = e
		}
	}
	return best
}
