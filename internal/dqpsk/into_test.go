package dqpsk

import (
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

// Mirror of the MSK Into-variant contract tests: bit-identical to the
// allocating twins, allocation free once buffers have grown. Odd bit
// counts exercise the implicit-zero padding PhaseDiffsInto performs
// without copying the input.

func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New()
	for _, n := range []int{64, 301} {
		in := randomBits(rng, n)
		sig := m.Modulate(in)
		noisy := dsp.NewNoiseSource(1e-2, int64(n)).AddTo(sig)

		got := m.DemodulateInto(nil, nil, noisy)
		want := m.Demodulate(noisy)
		if len(got) != len(want) {
			t.Fatalf("n=%d: DemodulateInto returned %d bits, Demodulate %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: DemodulateInto bit %d = %d, Demodulate %d", n, i, got[i], want[i])
			}
		}

		diffs := m.PhaseDiffs(in)
		diffsInto := m.PhaseDiffsInto(nil, in)
		if len(diffs) != len(diffsInto) {
			t.Fatalf("n=%d: PhaseDiffsInto length %d != %d", n, len(diffsInto), len(diffs))
		}
		for i := range diffs {
			if diffs[i] != diffsInto[i] {
				t.Fatalf("n=%d: PhaseDiffsInto[%d] = %v != %v", n, i, diffsInto[i], diffs[i])
			}
		}

		dec := m.DecideDiffs(diffs, nil)
		decInto := m.DecideDiffsInto(nil, diffs, nil)
		if len(dec) != len(decInto) {
			t.Fatalf("n=%d: DecideDiffsInto length %d != %d", n, len(decInto), len(dec))
		}
		for i := range dec {
			if dec[i] != decInto[i] {
				t.Fatalf("n=%d: DecideDiffsInto[%d] = %d != %d", n, i, decInto[i], dec[i])
			}
		}
	}
}

func TestIntoVariantsSteadyStateAllocFree(t *testing.T) {
	m := New()
	in := randomBits(rand.New(rand.NewSource(9)), 512)
	sig := m.Modulate(in)

	dst := m.DemodulateInto(nil, nil, sig)
	if allocs := testing.AllocsPerRun(20, func() {
		dst = m.DemodulateInto(nil, dst, sig)
	}); allocs != 0 {
		t.Errorf("DemodulateInto allocates %.1f objects/op after warmup", allocs)
	}

	diffs := m.PhaseDiffsInto(nil, in)
	if allocs := testing.AllocsPerRun(20, func() {
		diffs = m.PhaseDiffsInto(diffs, in)
	}); allocs != 0 {
		t.Errorf("PhaseDiffsInto allocates %.1f objects/op after warmup", allocs)
	}

	bitsOut := m.DecideDiffsInto(nil, diffs, nil)
	if allocs := testing.AllocsPerRun(20, func() {
		bitsOut = m.DecideDiffsInto(bitsOut, diffs, nil)
	}); allocs != 0 {
		t.Errorf("DecideDiffsInto allocates %.1f objects/op after warmup", allocs)
	}
}
