package dqpsk

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/dsp"
)

// The modem must satisfy the interference decoder's contract.
var _ core.PhyModem = (*Modem)(nil)

func randomBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sps := range []int{1, 2, 4, 8} {
		m := New(WithSamplesPerSymbol(sps))
		for trial := 0; trial < 20; trial++ {
			in := randomBits(rng, 2*(1+rng.Intn(300)))
			got := m.Demodulate(m.Modulate(in))
			if !bits.Equal(in, got) {
				t.Fatalf("sps=%d trial=%d round trip failed", sps, trial)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	m := New()
	f := func(data []byte) bool {
		in := make([]byte, len(data)/2*2)
		for i := range in {
			in[i] = data[i] & 1
		}
		return bits.Equal(in, m.Demodulate(m.Modulate(in)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOddLengthPads(t *testing.T) {
	m := New()
	got := m.Demodulate(m.Modulate([]byte{1, 0, 1}))
	if len(got) != 4 || got[0] != 1 || got[1] != 0 || got[2] != 1 || got[3] != 0 {
		t.Errorf("odd-length modulation decoded to %v", got)
	}
}

func TestConstantEnvelope(t *testing.T) {
	m := New(WithAmplitude(1.7))
	s := m.Modulate(randomBits(rand.New(rand.NewSource(2)), 400))
	for i, v := range s {
		if math.Abs(cmplx.Abs(v)-1.7) > 1e-9 {
			t.Fatalf("sample %d magnitude %v", i, cmplx.Abs(v))
		}
	}
}

func TestChannelInvariance(t *testing.T) {
	m := New()
	in := randomBits(rand.New(rand.NewSource(3)), 256)
	rx := m.Modulate(in).Scale(complex(0.21, 0) * cmplx.Exp(complex(0, 2.9)))
	if !bits.Equal(in, m.Demodulate(rx)) {
		t.Error("demodulation not invariant to channel gain/phase")
	}
}

func TestDemodulateUnderNoise(t *testing.T) {
	m := New()
	in := randomBits(rand.New(rand.NewSource(4)), 2000)
	tx := m.Modulate(in)
	ns := dsp.NewNoiseSource(dsp.FromDB(-18), 5)
	if ber := bits.BER(in, m.Demodulate(ns.AddTo(tx))); ber > 0.001 {
		t.Errorf("BER at 18 dB = %v", ber)
	}
}

func TestPhaseDiffsProfile(t *testing.T) {
	m := New(WithSamplesPerSymbol(4))
	// Symbols: 00 → +π/4, 11 → −3π/4.
	diffs := m.PhaseDiffs([]byte{0, 0, 1, 1})
	if len(diffs) != 8 {
		t.Fatalf("len = %d", len(diffs))
	}
	if math.Abs(diffs[0]-math.Pi/4) > 1e-12 || math.Abs(diffs[4]+3*math.Pi/4) > 1e-12 {
		t.Errorf("jump positions wrong: %v", diffs)
	}
	for _, i := range []int{1, 2, 3, 5, 6, 7} {
		if diffs[i] != 0 {
			t.Errorf("intra-symbol diff %d = %v, want 0", i, diffs[i])
		}
	}
}

func TestPhaseDiffsMatchSignal(t *testing.T) {
	m := New(WithSamplesPerSymbol(3))
	in := randomBits(rand.New(rand.NewSource(6)), 40)
	s := m.Modulate(in)
	want := m.PhaseDiffs(in)
	for n := 0; n+1 < len(s); n++ {
		got := dsp.PhaseDiff(s[n], s[n+1])
		if math.Abs(dsp.WrapPhase(got-want[n])) > 1e-9 {
			t.Fatalf("diff %d = %v, want %v", n, got, want[n])
		}
	}
}

func TestDecideDiffsRecoversBits(t *testing.T) {
	m := New()
	in := randomBits(rand.New(rand.NewSource(7)), 128)
	diffs := m.PhaseDiffs(in)
	got := m.DecideDiffs(diffs, nil)
	if !bits.Equal(in, got) {
		t.Error("DecideDiffs on clean diffs failed")
	}
	// Robust to per-sample noise on the diff estimates.
	rng := rand.New(rand.NewSource(8))
	noisy := make([]float64, len(diffs))
	for i, d := range diffs {
		noisy[i] = d + rng.NormFloat64()*0.08
	}
	if !bits.Equal(in, m.DecideDiffs(noisy, nil)) {
		t.Error("DecideDiffs under mild noise failed")
	}
}

func TestStepPrior(t *testing.T) {
	m := New()
	for _, legal := range []float64{0, math.Pi / 4, -math.Pi / 4, 3 * math.Pi / 4, -3 * math.Pi / 4} {
		if got := m.StepPrior(legal); got > 1e-12 {
			t.Errorf("StepPrior(%v) = %v, want 0", legal, got)
		}
	}
	if got := m.StepPrior(math.Pi / 8); math.Abs(got-math.Pi/8) > 1e-12 {
		t.Errorf("StepPrior(π/8) = %v, want π/8", got)
	}
	// π is equidistant from ±3π/4: distance π/4.
	if got := m.StepPrior(math.Pi); math.Abs(got-math.Pi/4) > 1e-12 {
		t.Errorf("StepPrior(π) = %v, want π/4", got)
	}
}

func TestGrayMapping(t *testing.T) {
	// Adjacent jumps differ in exactly one bit (Gray property): the most
	// likely demodulation error costs one bit, not two.
	order := []int{0b00, 0b01, 0b11, 0b10} // +π/4, +3π/4, −3π/4, −π/4
	for i := range order {
		a, b := order[i], order[(i+1)%len(order)]
		if popcount2(a^b) != 1 {
			t.Errorf("symbols %02b and %02b differ in %d bits", a, b, popcount2(a^b))
		}
	}
}

func popcount2(x int) int { return x&1 + x>>1&1 }

func TestNumSamplesNumBits(t *testing.T) {
	m := New(WithSamplesPerSymbol(4))
	if got := m.NumSamples(10); got != 21 {
		t.Errorf("NumSamples(10) = %d, want 21", got)
	}
	if got := m.NumBits(21); got != 10 {
		t.Errorf("NumBits(21) = %d, want 10", got)
	}
	if got := m.NumSamples(9); got != 21 { // padded to 5 symbols
		t.Errorf("NumSamples(9) = %d, want 21", got)
	}
	if m.NumBits(0) != 0 || m.NumBits(1) != 0 {
		t.Error("degenerate NumBits not 0")
	}
}

func TestNewValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"sps 0":       func() { New(WithSamplesPerSymbol(0)) },
		"amplitude 0": func() { New(WithAmplitude(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
