// Package channel models the wireless medium at complex-baseband sample
// level. It is the substitute for the paper's USRP radios (see DESIGN.md):
// everything the paper's receivers see — attenuation, phase shift, start
// offsets between interfering transmissions, additive white Gaussian
// noise, and the relay's re-amplification — is produced here with the same
// mathematical model the paper states in §5.3, §6 and Eq. 22–23.
package channel

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/dsp"
)

// Link is a point-to-point channel: y[n] = h·e^{iγ}·x[n−delay] + noise.
// The paper approximates every channel by an attenuation and a phase shift
// (§5.3, citing [28]); Link additionally supports a small carrier-frequency
// offset for robustness experiments.
type Link struct {
	Gain       float64 // amplitude attenuation h (0 < h ≤ 1 typically)
	Phase      float64 // phase shift γ in radians
	FreqOffset float64 // residual CFO in radians/sample (0 = ideal)
}

// Apply passes a transmitted signal through the link (without noise or
// delay — the Medium owns those, because noise is per-receiver and delay
// is per-transmission).
func (l Link) Apply(s dsp.Signal) dsp.Signal {
	g := complex(l.Gain, 0) * cmplx.Exp(complex(0, l.Phase))
	if l.FreqOffset == 0 {
		return s.Scale(g)
	}
	out := make(dsp.Signal, len(s))
	for i, v := range s {
		rot := cmplx.Exp(complex(0, l.FreqOffset*float64(i)))
		out[i] = v * g * rot
	}
	return out
}

// PowerGain returns the link's power attenuation h².
func (l Link) PowerGain() float64 { return l.Gain * l.Gain }

// Transmission is one sender's contribution to a reception: its baseband
// samples, the link it traverses, and its start delay in samples relative
// to the reception window.
type Transmission struct {
	Signal dsp.Signal
	Link   Link
	Delay  int
}

// Receive superposes any number of concurrent transmissions as seen by one
// receiver and adds that receiver's thermal noise: the channel "naturally
// mixes these signals" (§1). The returned window is padded with tail
// samples of pure noise so detectors can observe the energy drop at packet
// end (§7.4: Bob buffers until energy falls to the noise floor).
func Receive(noise *dsp.NoiseSource, tailPad int, txs ...Transmission) dsp.Signal {
	return ReceiveInto(nil, noise, tailPad, txs...)
}

// ReceiveLen returns the reception window length Receive would produce:
// the union of the delayed transmissions plus the tail pad.
func ReceiveLen(tailPad int, txs ...Transmission) int {
	n := 0
	for _, tx := range txs {
		if tx.Delay < 0 {
			panic(fmt.Sprintf("channel: negative delay %d", tx.Delay))
		}
		if end := tx.Delay + len(tx.Signal); end > n {
			n = end
		}
	}
	return n + tailPad
}

// ReceiveInto is Receive synthesizing the reception into buf's storage
// (grown when too small): link gain, phase, carrier offset and delay are
// applied while accumulating, and noise is added in place, so a reused
// buffer makes a reception allocation free. The sample values are
// identical to Receive's.
func ReceiveInto(buf dsp.Signal, noise *dsp.NoiseSource, tailPad int, txs ...Transmission) dsp.Signal {
	n := ReceiveLen(tailPad, txs...)
	if cap(buf) < n {
		buf = make(dsp.Signal, n)
	} else {
		buf = buf[:n]
		for i := range buf {
			buf[i] = 0
		}
	}
	for _, tx := range txs {
		g := complex(tx.Link.Gain, 0) * cmplx.Exp(complex(0, tx.Link.Phase))
		out := buf[tx.Delay:]
		if tx.Link.FreqOffset == 0 {
			for i, v := range tx.Signal {
				out[i] += v * g
			}
			continue
		}
		for i, v := range tx.Signal {
			rot := cmplx.Exp(complex(0, tx.Link.FreqOffset*float64(i)))
			out[i] += v * g * rot
		}
	}
	if noise != nil {
		noise.AddInPlace(buf)
	}
	return buf
}

// AmplifyFactor returns the relay's amplification A of Theorem 8.1's inner
// bound (Eq. 23): the relay rescales so its transmit power equals P given
// that it received two signals with power gains h1², h2² plus unit-power
// noise:
//
//	A = sqrt(P / (P·h1² + P·h2² + N))
//
// where N is the relay's noise power. The same normalization applies when
// only one signal was received (set h2 = 0).
func AmplifyFactor(p, h1, h2, noisePower float64) float64 {
	if p <= 0 {
		panic(fmt.Sprintf("channel: non-positive power %v", p))
	}
	return math.Sqrt(p / (p*h1*h1 + p*h2*h2 + noisePower))
}

// AmplifyTo rescales a received signal to average power p — what the
// paper's router does before broadcasting an interfered signal (§2, §7.5).
// Unlike AmplifyFactor it needs no channel knowledge: the relay measures
// the power it received (signal plus noise) and normalizes it, amplifying
// the embedded noise along with the signals, which is exactly the low-SNR
// penalty §8 discusses.
func AmplifyTo(s dsp.Signal, p float64) dsp.Signal {
	return s.ScaleTo(p)
}

// AmplifyToInPlace is AmplifyTo overwriting s's samples instead of
// allocating a copy, for relays whose received buffer is no longer needed
// once the amplified broadcast is built. A zero signal is returned
// unchanged. Sample values equal AmplifyTo's.
func AmplifyToInPlace(s dsp.Signal, p float64) dsp.Signal {
	cur := s.Power()
	if cur == 0 {
		return s
	}
	return s.ScaleInPlace(complex(math.Sqrt(p/cur), 0))
}

// RandomLink draws a link with log-normal-ish gain jitter around a target
// mean power gain and a uniform random phase. Experiments use it to give
// every run an independent channel realization, which is what spreads the
// CDFs in Figs. 9, 10 and 12.
func RandomLink(rng *rand.Rand, meanPowerGain, gainJitterDB float64) Link {
	jitter := dsp.FromDB((rng.Float64()*2 - 1) * gainJitterDB)
	return Link{
		Gain:  math.Sqrt(meanPowerGain * jitter),
		Phase: rng.Float64() * 2 * math.Pi,
	}
}
