package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

func TestLinkApplyGainAndPhase(t *testing.T) {
	l := Link{Gain: 0.5, Phase: math.Pi / 3}
	s := dsp.Signal{1, 1i}
	out := l.Apply(s)
	want0 := complex(0.5, 0) * cmplx.Exp(complex(0, math.Pi/3))
	if cmplx.Abs(out[0]-want0) > 1e-12 {
		t.Errorf("out[0] = %v, want %v", out[0], want0)
	}
	// Power scales by Gain².
	if math.Abs(out.Power()-0.25*s.Power()) > 1e-12 {
		t.Errorf("power = %v, want %v", out.Power(), 0.25*s.Power())
	}
	if math.Abs(l.PowerGain()-0.25) > 1e-15 {
		t.Errorf("PowerGain = %v", l.PowerGain())
	}
}

func TestLinkFrequencyOffsetRotates(t *testing.T) {
	l := Link{Gain: 1, FreqOffset: 0.01}
	s := make(dsp.Signal, 100)
	for i := range s {
		s[i] = 1
	}
	out := l.Apply(s)
	// Sample n is rotated by n·0.01 radians.
	if got := cmplx.Phase(out[50]); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("phase at 50 = %v, want 0.5", got)
	}
	// Constant envelope preserved.
	for i, v := range out {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatalf("magnitude at %d = %v", i, cmplx.Abs(v))
		}
	}
}

func TestReceiveSuperposition(t *testing.T) {
	a := dsp.Signal{1, 1, 1}
	b := dsp.Signal{1i, 1i}
	got := Receive(nil, 0,
		Transmission{Signal: a, Link: Link{Gain: 1}},
		Transmission{Signal: b, Link: Link{Gain: 1}, Delay: 1},
	)
	want := dsp.Signal{1, 1 + 1i, 1 + 1i}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReceiveTailPadIsNoise(t *testing.T) {
	ns := dsp.NewNoiseSource(0.01, 1)
	s := dsp.Signal{1, 1}
	got := Receive(ns, 50, Transmission{Signal: s, Link: Link{Gain: 1}})
	if len(got) != 52 {
		t.Fatalf("len = %d, want 52", len(got))
	}
	tail := got.Slice(2, 52)
	if p := tail.Power(); p > 0.05 {
		t.Errorf("tail power = %v, want ~noise floor 0.01", p)
	}
}

func TestReceiveNoNoiseSource(t *testing.T) {
	got := Receive(nil, 3, Transmission{Signal: dsp.Signal{2}, Link: Link{Gain: 1}})
	if len(got) != 4 || got[0] != 2 || got[3] != 0 {
		t.Errorf("got = %v", got)
	}
}

func TestReceiveNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	Receive(nil, 0, Transmission{Signal: dsp.Signal{1}, Delay: -1})
}

func TestReceiveEnergyAdds(t *testing.T) {
	// Two independent random-phase unit signals: expected combined power
	// is the sum of the individual powers (the §6.2 energy relation).
	rng := rand.New(rand.NewSource(2))
	n := 20000
	mk := func() dsp.Signal {
		s := make(dsp.Signal, n)
		for i := range s {
			s[i] = cmplx.Exp(complex(0, rng.Float64()*2*math.Pi))
		}
		return s
	}
	a, b := mk(), mk()
	got := Receive(nil, 0,
		Transmission{Signal: a, Link: Link{Gain: 0.8}},
		Transmission{Signal: b, Link: Link{Gain: 0.5}},
	).Power()
	want := 0.64 + 0.25
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("combined power = %v, want ~%v", got, want)
	}
}

func TestAmplifyFactorTheorem81(t *testing.T) {
	// With unit power, symmetric unit-gain links and unit noise:
	// A = sqrt(1/(1+1+1)) = 1/sqrt(3).
	got := AmplifyFactor(1, 1, 1, 1)
	if math.Abs(got-1/math.Sqrt(3)) > 1e-12 {
		t.Errorf("A = %v, want 1/sqrt(3)", got)
	}
	// Single-signal case.
	got = AmplifyFactor(4, 0.5, 0, 0)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("A = %v, want 2", got)
	}
}

func TestAmplifyFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive power did not panic")
		}
	}()
	AmplifyFactor(0, 1, 1, 1)
}

func TestAmplifyToRestoresPower(t *testing.T) {
	s := dsp.Signal{0.1, 0.1i, -0.1}
	out := AmplifyTo(s, 2)
	if math.Abs(out.Power()-2) > 1e-12 {
		t.Errorf("power = %v, want 2", out.Power())
	}
}

func TestAmplifyToAmplifiesNoiseToo(t *testing.T) {
	// The §8 low-SNR effect: re-amplification boosts embedded noise.
	ns := dsp.NewNoiseSource(0.1, 3)
	clean := make(dsp.Signal, 10000)
	for i := range clean {
		clean[i] = complex(0.3, 0)
	}
	rx := ns.AddTo(clean)         // power ≈ 0.09 + 0.1
	amplified := AmplifyTo(rx, 1) // scale ≈ sqrt(1/0.19) ≈ 2.29
	scale := amplified[0] / rx[0] // uniform complex scale
	noiseGain := real(scale * cmplx.Conj(scale))
	if noiseGain < 3 { // noise power multiplied ≈ 5.26
		t.Errorf("noise power gain = %v, expected amplification > 3", noiseGain)
	}
}

func TestRandomLinkStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const mean = 0.25
	var sumPower float64
	const n = 5000
	for i := 0; i < n; i++ {
		l := RandomLink(rng, mean, 3)
		sumPower += l.PowerGain()
		if l.Phase < 0 || l.Phase >= 2*math.Pi {
			t.Fatalf("phase %v out of range", l.Phase)
		}
	}
	avg := sumPower / n
	// Mean power within ~15% of target (uniform-in-dB jitter skews it up).
	if avg < mean*0.85 || avg > mean*1.3 {
		t.Errorf("mean power gain = %v, want ≈ %v", avg, mean)
	}
}

func TestRandomLinkDeterministic(t *testing.T) {
	a := RandomLink(rand.New(rand.NewSource(5)), 1, 3)
	b := RandomLink(rand.New(rand.NewSource(5)), 1, 3)
	if a != b {
		t.Error("same seed produced different links")
	}
}

func TestReceiveIntoMatchesReceive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func(n int) dsp.Signal {
		s := make(dsp.Signal, n)
		for i := range s {
			s[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return s
	}
	txs := []Transmission{
		{Signal: mk(300), Link: Link{Gain: 0.8, Phase: 0.7}},
		{Signal: mk(250), Link: Link{Gain: 0.6, Phase: -1.1, FreqOffset: 0.004}, Delay: 120},
	}
	want := Receive(dsp.NewNoiseSource(1e-3, 3), 50, txs...)
	got := ReceiveInto(nil, dsp.NewNoiseSource(1e-3, 3), 50, txs...)
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], want[i])
		}
	}
	if n := ReceiveLen(50, txs...); n != len(want) {
		t.Errorf("ReceiveLen = %d, want %d", n, len(want))
	}

	// Reusing a dirty oversized buffer must not leak stale samples.
	dirty := mk(1000)
	reused := ReceiveInto(dirty, dsp.NewNoiseSource(1e-3, 3), 50, txs...)
	for i := range want {
		if reused[i] != want[i] {
			t.Fatalf("reused buffer sample %d: %v != %v", i, reused[i], want[i])
		}
	}
}

func TestNoiseReseedMatchesFresh(t *testing.T) {
	ns := dsp.NewNoiseSource(1e-2, 1)
	ns.Samples(37) // advance the stream
	ns.Reseed(99)
	got := ns.Samples(16)
	want := dsp.NewNoiseSource(1e-2, 99).Samples(16)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], want[i])
		}
	}
}
