package channel

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/dsp"
)

// Model is a time-varying channel: the point-to-point realization a link
// presents during one schedule slot. The paper measures its gains on real
// radios whose channels drift between runs and within a run; a Model is
// that drift, made explicit and reproducible.
//
// Implementations must be pure functions of (model state, slot): random
// access in any order returns the same realization, so campaign workers,
// per-scheme reruns and resumed sweeps all see the identical channel. They
// must also be allocation free — LinkAt sits inside the per-slot hot path
// of every scenario schedule, and the engine's zero-allocation discipline
// (see sim.Scratch) extends to channel evolution.
type Model interface {
	// LinkAt returns the link realization (gain and phase; no carrier
	// offset — the topology layer owns per-node oscillators) for slot s.
	LinkAt(s int) Link
	// MeanPowerGain is the process's average power gain E[|h|²], the
	// quantity SNR budgets and amplification factors are stated against.
	MeanPowerGain() float64
}

// Static is the degenerate Model: the single per-run realization the
// repository used before channel dynamics existed. Every slot sees the
// identical Link, bit for bit, which is what keeps the pre-fading golden
// campaigns byte-identical.
type Static struct {
	L Link
}

// LinkAt implements Model: the same realization at every slot.
func (m Static) LinkAt(int) Link { return m.L }

// MeanPowerGain implements Model with the realization's own power gain.
func (m Static) MeanPowerGain() float64 { return m.L.PowerGain() }

// BlockFading is Rician (K > 0) or Rayleigh (K = 0) block fading: the
// channel holds one complex-Gaussian draw for BlockSlots consecutive
// slots, then jumps to an independent one — the standard coherence-time
// abstraction of a mobile channel. The specular (line-of-sight) component
// carries K/(K+1) of the mean power at a fixed phase; the scattered
// component is circularly-symmetric complex Gaussian with the rest.
//
// Block realizations are derived by hashing (Seed, block index), not by
// advancing a generator, so LinkAt is random access: slot 700 fades the
// same whether or not slot 699 was ever queried, and two models with one
// Seed produce identical traces.
type BlockFading struct {
	// Mean is the mean power gain E[|h|²] of the process.
	Mean float64
	// K is the Rician K-factor, the linear power ratio of the specular
	// component to the scattered one. 0 is Rayleigh fading.
	K float64
	// LOSPhase is the phase of the specular component, radians.
	LOSPhase float64
	// BlockSlots is the coherence time in slots; values below 1 mean 1
	// (an independent draw every slot).
	BlockSlots int
	// Seed identifies this edge's fading process.
	Seed uint64
}

// LinkAt implements Model: the Rician draw of the slot's block.
func (m BlockFading) LinkAt(s int) Link {
	bs := m.BlockSlots
	if bs < 1 {
		bs = 1
	}
	x, y := gaussPair(m.Seed, uint64(s/bs))
	scatter := complex(x, y) * complex(1/math.Sqrt2, 0)
	h := cmplx.Rect(math.Sqrt(m.K/(m.K+1)), m.LOSPhase) +
		scatter*complex(math.Sqrt(1/(m.K+1)), 0)
	h *= complex(math.Sqrt(m.Mean), 0)
	return Link{Gain: cmplx.Abs(h), Phase: cmplx.Phase(h)}
}

// MeanPowerGain implements Model.
func (m BlockFading) MeanPowerGain() float64 { return m.Mean }

// Mobility is a deterministic mobility trace: the endpoint drives toward
// and away from its peer on a periodic path, so the power gain swings
// sinusoidally in dB around the base realization while the carrier phase
// advances at a constant Doppler rate. Unlike BlockFading nothing is
// random — the trace is the per-edge (Base, StartSlot) realization played
// forward, which makes it the model of choice for debugging slot-aligned
// effects.
type Mobility struct {
	// Base is the trace's reference realization (the gain and phase at a
	// zero-crossing of the swing).
	Base Link
	// PeriodSlots is the length of one approach–retreat cycle in slots;
	// values below 1 mean 1.
	PeriodSlots int
	// SwingDB is the peak-to-peak power-gain swing in dB.
	SwingDB float64
	// DopplerRad is the per-slot carrier phase advance in radians.
	DopplerRad float64
	// StartSlot offsets the trace, de-phasing the swings of different
	// edges.
	StartSlot int
}

// LinkAt implements Model: the trace realization at slot s.
func (m Mobility) LinkAt(s int) Link {
	period := m.PeriodSlots
	if period < 1 {
		period = 1
	}
	t := float64(s + m.StartSlot)
	db := 0.5 * m.SwingDB * math.Sin(2*math.Pi*t/float64(period))
	return Link{
		Gain:  m.Base.Gain * math.Sqrt(dsp.FromDB(db)),
		Phase: math.Mod(m.Base.Phase+m.DopplerRad*t, 2*math.Pi),
	}
}

// MeanPowerGain implements Model. The dB-sinusoid swing is symmetric in
// log domain, so the base realization's power is the geometric — and to
// first order the arithmetic — mean of the process.
func (m Mobility) MeanPowerGain() float64 { return m.Base.PowerGain() }

// FadingKind selects a Model family for FadingSpec.
type FadingKind uint8

// The model families a topology can realize on its links.
const (
	// FadingStatic is today's single per-run realization (the zero value,
	// so existing configurations keep their exact behavior).
	FadingStatic FadingKind = iota
	// FadingRayleigh is block fading with no specular component.
	FadingRayleigh
	// FadingRician is block fading with a line-of-sight component of
	// K-factor FadingSpec.RicianK.
	FadingRician
	// FadingMobility is the deterministic mobility trace.
	FadingMobility
)

// String renders the kind the way the ancsim -fading flag spells it.
func (k FadingKind) String() string {
	switch k {
	case FadingStatic:
		return "static"
	case FadingRayleigh:
		return "rayleigh"
	case FadingRician:
		return "rician"
	case FadingMobility:
		return "mobility"
	}
	return fmt.Sprintf("FadingKind(%d)", uint8(k))
}

// ParseFadingKind parses a -fading flag value.
func ParseFadingKind(s string) (FadingKind, error) {
	for _, k := range []FadingKind{FadingStatic, FadingRayleigh, FadingRician, FadingMobility} {
		if s == k.String() {
			return k, nil
		}
	}
	return FadingStatic, fmt.Errorf("channel: unknown fading kind %q (static|rayleigh|rician|mobility)", s)
}

// Default process parameters a zero FadingSpec field falls back to.
const (
	// DefaultRicianK is the K-factor of a FadingRician spec that leaves
	// RicianK zero: a moderate line-of-sight indoor channel.
	DefaultRicianK = 4.0
	// DefaultMobilityPeriod is the approach–retreat cycle, in slots, of a
	// FadingMobility spec that leaves PeriodSlots zero.
	DefaultMobilityPeriod = 16
	// DefaultMobilitySwingDB is the peak-to-peak power swing of a
	// FadingMobility spec that leaves SwingDB zero.
	DefaultMobilitySwingDB = 6.0
)

// FadingSpec selects the time-varying model a topology realizes on every
// link. The zero value is static — the pre-fading behavior — and the
// struct is comparable so configurations embedding it stay comparable.
type FadingSpec struct {
	// Kind selects the model family.
	Kind FadingKind
	// RicianK is the K-factor for FadingRician (0 = DefaultRicianK).
	RicianK float64
	// BlockSlots is the block-fading coherence time in slots (0 = 1).
	BlockSlots int
	// PeriodSlots is the mobility cycle length (0 = DefaultMobilityPeriod).
	PeriodSlots int
	// SwingDB is the mobility peak-to-peak power swing
	// (0 = DefaultMobilitySwingDB).
	SwingDB float64
	// DopplerRad is the mobility per-slot phase advance (rad).
	DopplerRad float64
}

// Realize wraps one edge's drawn static realization in the spec's model,
// drawing any per-edge process identity (fading seed, trace offset) from
// rng. A static spec consumes no randomness at all, which is what keeps
// the RNG stream — and therefore every golden campaign — byte-identical
// when fading is off.
func (spec FadingSpec) Realize(base Link, rng *rand.Rand) Model {
	switch spec.Kind {
	case FadingStatic:
		return Static{L: base}
	case FadingRayleigh, FadingRician:
		k := 0.0
		if spec.Kind == FadingRician {
			k = spec.RicianK
			if k == 0 {
				k = DefaultRicianK
			}
		}
		bs := spec.BlockSlots
		if bs < 1 {
			bs = 1
		}
		return BlockFading{
			Mean:       base.PowerGain(),
			K:          k,
			LOSPhase:   base.Phase,
			BlockSlots: bs,
			Seed:       rng.Uint64(),
		}
	case FadingMobility:
		period := spec.PeriodSlots
		if period < 1 {
			period = DefaultMobilityPeriod
		}
		swing := spec.SwingDB
		if swing == 0 {
			swing = DefaultMobilitySwingDB
		}
		return Mobility{
			Base:        base,
			PeriodSlots: period,
			SwingDB:     swing,
			DopplerRad:  spec.DopplerRad,
			StartSlot:   rng.Intn(period),
		}
	}
	panic(fmt.Sprintf("channel: unknown fading kind %v", spec.Kind))
}

// splitmix64 is the SplitMix64 finalizer: a full-avalanche 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// gaussPair derives a standard-normal pair from (seed, block) by hashing
// into two uniforms and applying the Box–Muller transform. Pure function:
// this is what gives BlockFading its random-access determinism.
func gaussPair(seed, block uint64) (float64, float64) {
	a := splitmix64(seed ^ splitmix64(block))
	b := splitmix64(a)
	u1 := (float64(a>>11) + 1) / (1 << 53) // (0, 1]: keeps the log finite
	u2 := float64(b>>11) / (1 << 53)       // [0, 1)
	r := math.Sqrt(-2 * math.Log(u1))
	sin, cos := math.Sincos(2 * math.Pi * u2)
	return r * cos, r * sin
}
