package channel

import (
	"math"
	"math/rand"
	"testing"
)

func TestStaticModelIsBitIdentical(t *testing.T) {
	l := Link{Gain: 0.7071, Phase: 1.234}
	m := Static{L: l}
	for _, s := range []int{0, 1, 17, 1 << 20} {
		if got := m.LinkAt(s); got != l {
			t.Fatalf("slot %d: %+v != %+v", s, got, l)
		}
	}
	if m.MeanPowerGain() != l.PowerGain() {
		t.Errorf("MeanPowerGain = %v, want %v", m.MeanPowerGain(), l.PowerGain())
	}
}

// TestBlockFadingMeanPower: the empirical power gain of the process must
// match the requested mean within tolerance, for Rayleigh and for a
// range of Rician K-factors.
func TestBlockFadingMeanPower(t *testing.T) {
	for _, k := range []float64{0, 1, 4, 16} {
		m := BlockFading{Mean: 0.5, K: k, LOSPhase: 0.3, BlockSlots: 1, Seed: 77}
		var sum float64
		const n = 20000
		for s := 0; s < n; s++ {
			sum += m.LinkAt(s).PowerGain()
		}
		avg := sum / n
		if math.Abs(avg-0.5)/0.5 > 0.05 {
			t.Errorf("K=%v: empirical mean power %v, want 0.5 ± 5%%", k, avg)
		}
	}
}

// TestBlockFadingKFactor verifies the specular/scattered power split: the
// estimated K — specular power over scattered power, with the specular
// component recovered as the mean of the complex gains — must match the
// requested K-factor within tolerance.
func TestBlockFadingKFactor(t *testing.T) {
	for _, k := range []float64{1, 4, 10} {
		m := BlockFading{Mean: 1, K: k, LOSPhase: 0.9, BlockSlots: 1, Seed: 5}
		const n = 40000
		var sumRe, sumIm, sumPow float64
		for s := 0; s < n; s++ {
			l := m.LinkAt(s)
			sumRe += l.Gain * math.Cos(l.Phase)
			sumIm += l.Gain * math.Sin(l.Phase)
			sumPow += l.PowerGain()
		}
		meanRe, meanIm := sumRe/n, sumIm/n
		specular := meanRe*meanRe + meanIm*meanIm
		scattered := sumPow/n - specular
		got := specular / scattered
		if math.Abs(got-k)/k > 0.1 {
			t.Errorf("K=%v: estimated K-factor %v, want within 10%%", k, got)
		}
	}
}

// TestBlockFadingRayleighPhaseUniform: with no specular component the
// phase must be uniform — the circular mean of many draws vanishes.
func TestBlockFadingRayleighPhaseUniform(t *testing.T) {
	m := BlockFading{Mean: 1, K: 0, BlockSlots: 1, Seed: 9}
	const n = 20000
	var sumRe, sumIm float64
	for s := 0; s < n; s++ {
		l := m.LinkAt(s)
		sumRe += math.Cos(l.Phase)
		sumIm += math.Sin(l.Phase)
	}
	if r := math.Hypot(sumRe/n, sumIm/n); r > 0.03 {
		t.Errorf("circular mean magnitude %v, want ≈ 0 (uniform phase)", r)
	}
}

// TestBlockFadingCoherence: within a block the realization is constant;
// across a block boundary it changes.
func TestBlockFadingCoherence(t *testing.T) {
	m := BlockFading{Mean: 1, K: 2, BlockSlots: 5, Seed: 3}
	for s := 1; s < 5; s++ {
		if m.LinkAt(s) != m.LinkAt(0) {
			t.Errorf("slot %d left the first coherence block", s)
		}
	}
	if m.LinkAt(5) == m.LinkAt(0) {
		t.Error("block boundary did not re-realize the channel")
	}
}

// TestBlockFadingRandomAccessDeterminism: LinkAt must be a pure function
// of (model, slot) — any query order, and any reconstruction with the
// same seed, reproduces the identical trace.
func TestBlockFadingRandomAccessDeterminism(t *testing.T) {
	mk := func() BlockFading { return BlockFading{Mean: 0.3, K: 4, LOSPhase: 1, BlockSlots: 2, Seed: 42} }
	a, b := mk(), mk()
	// Walk a forward, b backward.
	const n = 64
	fwd := make([]Link, n)
	for s := 0; s < n; s++ {
		fwd[s] = a.LinkAt(s)
	}
	for s := n - 1; s >= 0; s-- {
		if got := b.LinkAt(s); got != fwd[s] {
			t.Fatalf("slot %d: backward walk %+v != forward walk %+v", s, got, fwd[s])
		}
	}
	// A different seed is a different process.
	c := mk()
	c.Seed = 43
	same := 0
	for s := 0; s < n; s++ {
		if c.LinkAt(s) == fwd[s] {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical traces")
	}
}

func TestMobilityTrace(t *testing.T) {
	m := Mobility{
		Base:        Link{Gain: 0.5, Phase: 0.25},
		PeriodSlots: 8,
		SwingDB:     6,
		DopplerRad:  0.01,
	}
	// Slot 0 sits at a zero-crossing of the swing: the base realization.
	if l := m.LinkAt(0); math.Abs(l.Gain-0.5) > 1e-12 || math.Abs(l.Phase-0.25) > 1e-12 {
		t.Errorf("slot 0 = %+v, want the base link", l)
	}
	// The quarter-period peak carries +3 dB of power, the
	// three-quarter trough −3 dB.
	peak := m.LinkAt(2).PowerGain() / m.Base.PowerGain()
	trough := m.LinkAt(6).PowerGain() / m.Base.PowerGain()
	if math.Abs(10*math.Log10(peak)-3) > 1e-9 || math.Abs(10*math.Log10(trough)+3) > 1e-9 {
		t.Errorf("swing peak %v dB / trough %v dB, want ±3 dB",
			10*math.Log10(peak), 10*math.Log10(trough))
	}
	// One full period returns to the base gain, with the phase advanced
	// by 8 Doppler steps.
	l := m.LinkAt(8)
	if math.Abs(l.Gain-0.5) > 1e-12 {
		t.Errorf("gain after one period = %v, want 0.5", l.Gain)
	}
	if math.Abs(l.Phase-(0.25+8*0.01)) > 1e-12 {
		t.Errorf("phase after one period = %v, want %v", l.Phase, 0.25+8*0.01)
	}
	// The trace is deterministic: same model, same slot, same value.
	if m.LinkAt(13) != m.LinkAt(13) {
		t.Error("mobility trace not deterministic")
	}
}

// TestRealizeStaticConsumesNoRandomness pins the golden-compatibility
// guarantee: a static spec must leave the RNG stream untouched, so
// campaigns without fading draw the exact pre-fading sequence.
func TestRealizeStaticConsumesNoRandomness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	want := rand.New(rand.NewSource(1)).Int63()
	m := FadingSpec{}.Realize(Link{Gain: 1}, rng)
	if _, ok := m.(Static); !ok {
		t.Fatalf("zero spec realized %T, want Static", m)
	}
	if got := rng.Int63(); got != want {
		t.Error("static Realize consumed randomness")
	}
}

// TestRealizeSeedsFromRNG: fading realizations draw their process
// identity from the run RNG, so reseeding reproduces identical traces
// and different streams produce different ones.
func TestRealizeSeedsFromRNG(t *testing.T) {
	spec := FadingSpec{Kind: FadingRician, RicianK: 2, BlockSlots: 3}
	base := Link{Gain: 0.8, Phase: 0.1}
	a := spec.Realize(base, rand.New(rand.NewSource(7)))
	b := spec.Realize(base, rand.New(rand.NewSource(7)))
	for s := 0; s < 32; s++ {
		if a.LinkAt(s) != b.LinkAt(s) {
			t.Fatalf("same RNG seed diverged at slot %d", s)
		}
	}
	c := spec.Realize(base, rand.New(rand.NewSource(8)))
	diff := false
	for s := 0; s < 32; s++ {
		if c.LinkAt(s) != a.LinkAt(s) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different RNG seeds produced identical fading traces")
	}
}

// TestRealizeDefaults: zero spec fields fall back to the documented
// process parameters.
func TestRealizeDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if m := (FadingSpec{Kind: FadingRician}).Realize(Link{Gain: 1}, rng).(BlockFading); m.K != DefaultRicianK {
		t.Errorf("rician default K = %v, want %v", m.K, DefaultRicianK)
	}
	if m := (FadingSpec{Kind: FadingRayleigh}).Realize(Link{Gain: 1}, rng).(BlockFading); m.K != 0 || m.BlockSlots != 1 {
		t.Errorf("rayleigh defaults: K=%v BlockSlots=%d", m.K, m.BlockSlots)
	}
	m := (FadingSpec{Kind: FadingMobility}).Realize(Link{Gain: 1}, rng).(Mobility)
	if m.PeriodSlots != DefaultMobilityPeriod || m.SwingDB != DefaultMobilitySwingDB {
		t.Errorf("mobility defaults: period=%d swing=%v", m.PeriodSlots, m.SwingDB)
	}
}

func TestParseFadingKind(t *testing.T) {
	for _, k := range []FadingKind{FadingStatic, FadingRayleigh, FadingRician, FadingMobility} {
		got, err := ParseFadingKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v: got %v, err %v", k, got, err)
		}
	}
	if _, err := ParseFadingKind("warp"); err == nil {
		t.Error("unknown kind parsed without error")
	}
}

// TestModelsDoNotAllocate pins the per-slot hot path: realizing a link
// at a slot must be allocation free for every model kind.
func TestModelsDoNotAllocate(t *testing.T) {
	models := map[string]Model{
		"static":   Static{L: Link{Gain: 0.5, Phase: 1}},
		"rayleigh": BlockFading{Mean: 0.5, BlockSlots: 1, Seed: 1},
		"rician":   BlockFading{Mean: 0.5, K: 4, BlockSlots: 2, Seed: 2},
		"mobility": Mobility{Base: Link{Gain: 0.5}, PeriodSlots: 8, SwingDB: 6, DopplerRad: 0.01},
	}
	for name, m := range models {
		s := 0
		allocs := testing.AllocsPerRun(200, func() {
			_ = m.LinkAt(s)
			s++
		})
		if allocs != 0 {
			t.Errorf("%s: LinkAt allocates %.1f objects per slot", name, allocs)
		}
	}
}
