package capacity

import (
	"math"
	"testing"
)

func TestGainApproachesTwo(t *testing.T) {
	// Theorem 8.1: the capacity gain asymptotically approaches 2.
	for _, db := range []float64{30, 40, 50, 60, 80} {
		snr := math.Pow(10, db/10)
		g := Gain(snr)
		if g >= 2 {
			t.Errorf("%v dB: gain %v ≥ 2 (must approach from below)", db, g)
		}
	}
	// Convergence is logarithmic (the ratio behaves like
	// 2·(1 − c/log SNR)), so only extreme SNR gets close to 2.
	if g := Gain(math.Pow(10, 13)); g < 1.9 {
		t.Errorf("130 dB: gain %v, want ≥ 1.9", g)
	}
	// Monotone approach over the high-SNR region.
	prev := Gain(math.Pow(10, 2))
	for db := 25.0; db <= 80; db += 5 {
		g := Gain(math.Pow(10, db/10))
		if g < prev {
			t.Errorf("gain not increasing at %v dB: %v < %v", db, g, prev)
		}
		prev = g
	}
}

func TestLowSNRRoutingWins(t *testing.T) {
	// Fig. 7: at 0–8 dB the ANC lower bound sits below the routing upper
	// bound (amplified noise), crossing in the vicinity of 8 dB.
	for _, db := range []float64{0, 2, 4, 6} {
		snr := math.Pow(10, db/10)
		if ANC(snr) >= Traditional(snr) {
			t.Errorf("%v dB: ANC %v ≥ routing %v, want routing ahead", db, ANC(snr), Traditional(snr))
		}
	}
	for _, db := range []float64{12, 20, 30} {
		snr := math.Pow(10, db/10)
		if ANC(snr) <= Traditional(snr) {
			t.Errorf("%v dB: ANC %v ≤ routing %v, want ANC ahead", db, ANC(snr), Traditional(snr))
		}
	}
}

func TestCrossoverNearEightDB(t *testing.T) {
	x := CrossoverDB(0, 55)
	if math.IsNaN(x) {
		t.Fatal("no crossover found")
	}
	if x < 5 || x > 11 {
		t.Errorf("crossover at %.2f dB, paper places it around 8 dB", x)
	}
}

func TestCrossoverNoCrossing(t *testing.T) {
	if !math.IsNaN(CrossoverDB(20, 30)) {
		t.Error("crossover reported in a range with none")
	}
}

func TestFig7Endpoints(t *testing.T) {
	// Fig. 7 tops out near 9 b/s/Hz for the ANC lower bound at 55 dB,
	// with the routing upper bound at roughly half that.
	snr := math.Pow(10, 5.5)
	if tr := Traditional(snr); tr < 4 || tr > 5.5 {
		t.Errorf("Traditional(55 dB) = %v, want ≈ 4.7", tr)
	}
	if a := ANC(snr); a < 7.5 || a > 9.5 {
		t.Errorf("ANC(55 dB) = %v, Fig. 7 shows ≈ 8.5–9", a)
	}
	if Traditional(0) != 0 || ANC(0) != 0 {
		t.Error("zero SNR must give zero capacity")
	}
}

func TestEffectiveANCSNR(t *testing.T) {
	// P²/(3P+1) at P=10: 100/31.
	if got, want := EffectiveANCSNR(10), 100.0/31.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("EffectiveANCSNR(10) = %v, want %v", got, want)
	}
	if EffectiveANCSNR(0) != 0 || EffectiveANCSNR(-5) != 0 {
		t.Error("non-positive SNR must map to 0")
	}
	// Effective SNR always below the raw link SNR (relay amplifies noise).
	for _, p := range []float64{0.1, 1, 10, 1000} {
		if EffectiveANCSNR(p) >= p {
			t.Errorf("effective SNR %v ≥ link SNR %v", EffectiveANCSNR(p), p)
		}
	}
}

func TestSweepShape(t *testing.T) {
	pts := Sweep(0, 55, 5)
	if len(pts) != 12 {
		t.Fatalf("sweep length %d, want 12", len(pts))
	}
	if pts[0].SNRdB != 0 || pts[11].SNRdB != 55 {
		t.Errorf("sweep ends %v..%v", pts[0].SNRdB, pts[11].SNRdB)
	}
	// Both curves are nondecreasing in SNR.
	for i := 1; i < len(pts); i++ {
		if pts[i].Traditional < pts[i-1].Traditional || pts[i].ANC < pts[i-1].ANC {
			t.Errorf("capacity decreased at %v dB", pts[i].SNRdB)
		}
	}
}

func TestSweepPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero step did not panic")
		}
	}()
	Sweep(0, 10, 0)
}

func TestNegativeSNRClamped(t *testing.T) {
	if Traditional(-1) != 0 || ANC(-1) != 0 {
		t.Error("negative SNR not clamped to 0")
	}
}
