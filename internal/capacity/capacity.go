// Package capacity implements the Theorem 8.1 analysis of §8: an upper
// (cut-set) bound on the Alice–Bob 2-way relay capacity under traditional
// routing, and an achievable lower bound under analog network coding with
// an amplify-and-forward relay, both for half-duplex nodes over AWGN
// channels. It regenerates Fig. 7 and the asymptotic 2× gain claim.
package capacity

import "math"

// log2 of (1+x), the AWGN capacity kernel in bits/s/Hz.
func c(x float64) float64 { return math.Log2(1 + x) }

// Alpha is the paper's time-sharing constant α. Theorem 8.1 leaves it
// unspecified (it cancels in the gain ratio); we fix α = 1/8 — fair time
// sharing between the two flows on top of the 1/4 slot factors of Eq. 21 —
// which reproduces Fig. 7's absolute scale (ANC lower bound ≈ 8–9 b/s/Hz
// at 55 dB).
const Alpha = 0.125

// Traditional returns the upper bound on the sum capacity of the Alice–Bob
// network under routing (Theorem 8.1):
//
//	C_traditional = α·(log(1+2·SNR) + log(1+SNR))
//
// The 2·SNR term is the multiple-access cut into the relay (both
// endpoints' signals reach it), the SNR term the broadcast cut out of it.
func Traditional(snr float64) float64 {
	if snr < 0 {
		snr = 0
	}
	return Alpha * (c(2*snr) + c(snr))
}

// ANC returns the achievable lower bound under analog network coding
// (Theorem 8.1):
//
//	C_anc = 4·α·log(1 + SNR²/(3·SNR+1))
//
// The effective SNR²/(3·SNR+1) term is the end-to-end SNR after the relay
// re-amplifies signal and noise together (Eqs. 22–26 with symmetric unit
// channel gains): A² = P/(2P+1), and the received SNR at each endpoint is
// A²P/(A²+1) = P²/(3P+1).
func ANC(snr float64) float64 {
	if snr < 0 {
		snr = 0
	}
	return 4 * Alpha * c(snr*snr/(3*snr+1))
}

// EffectiveANCSNR returns the post-relay SNR an endpoint sees for a given
// link SNR: SNR²/(3·SNR+1). Exposed for tests and the low-SNR discussion.
func EffectiveANCSNR(snr float64) float64 {
	if snr <= 0 {
		return 0
	}
	return snr * snr / (3*snr + 1)
}

// Gain returns C_anc / C_traditional at the given SNR (0 if the
// traditional bound is 0, i.e. at SNR 0).
func Gain(snr float64) float64 {
	t := Traditional(snr)
	if t == 0 {
		return 0
	}
	return ANC(snr) / t
}

// CrossoverDB returns the SNR (in dB) above which the ANC lower bound
// exceeds the traditional upper bound — the boundary of the low-SNR region
// of Fig. 7 where amplified noise makes ANC worse. Found by bisection over
// [lo, hi] dB; returns NaN if there is no crossing in the range.
func CrossoverDB(loDB, hiDB float64) float64 {
	f := func(db float64) float64 {
		snr := math.Pow(10, db/10)
		return ANC(snr) - Traditional(snr)
	}
	lo, hi := loDB, hiDB
	if f(lo) >= 0 || f(hi) <= 0 {
		return math.NaN()
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Point is one row of the Fig. 7 series.
type Point struct {
	SNRdB       float64
	Traditional float64 // b/s/Hz, upper bound for routing
	ANC         float64 // b/s/Hz, lower bound for ANC
	Gain        float64 // ANC / Traditional
}

// Sweep evaluates both bounds over an SNR range in dB (inclusive ends,
// fixed step). This regenerates the Fig. 7 series.
func Sweep(fromDB, toDB, stepDB float64) []Point {
	if stepDB <= 0 {
		panic("capacity: non-positive step")
	}
	var out []Point
	for db := fromDB; db <= toDB+1e-9; db += stepDB {
		snr := math.Pow(10, db/10)
		out = append(out, Point{
			SNRdB:       db,
			Traditional: Traditional(snr),
			ANC:         ANC(snr),
			Gain:        Gain(snr),
		})
	}
	return out
}
