// Package stats provides the empirical statistics the evaluation section
// reports: CDFs over experiment runs (Figs. 9, 10, 12), means, quantiles,
// and gain ratios.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Sample is a collection of scalar observations (e.g. per-run throughput
// gains or per-packet BERs). Observations are buffered as they arrive
// and sorted lazily on the first order-dependent read, so a streamed
// campaign feeding a Sample pays O(n log n) total instead of the O(n²)
// an insertion-sorted Add would cost.
//
// All methods are safe for concurrent use. The lazy sort makes every
// order-dependent reader (Min, Max, Quantile, CDF, CDFAt, OutageBelow)
// a mutator under the hood, so reads take the same lock writes do —
// without it, two concurrent readers would race on the deferred sort.
// Each method — including FormatCDF, which renders under one lock — is
// individually consistent.
type Sample struct {
	mu       sync.Mutex
	xs       []float64
	unsorted bool
	// cdf caches the empirical CDF across repeated reads (nil = stale):
	// campaign reporting renders the same distribution several times,
	// and rebuilding one point per observation on every call made every
	// re-read an O(n) allocation. Add invalidates it.
	cdf []CDFPoint
	// fmtCache caches the last FormatCDF rendering the same way.
	fmtCache struct {
		label   string
		maxRows int
		out     string
		valid   bool
	}
}

// NewSample returns a sample over a copy of xs.
func NewSample(xs []float64) *Sample {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	return &Sample{xs: cp, unsorted: true}
}

// Add appends an observation. The cost is amortized O(1); ordering is
// deferred to the next order-dependent read (Min, Max, Quantile, CDF).
func (s *Sample) Add(x float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.xs = append(s.xs, x)
	s.unsorted = true
	s.cdf = nil
	s.fmtCache.valid = false
}

// ensureSorted establishes the sorted order every order-dependent
// accessor reads. Cheap when nothing was added since the last read.
// Callers must hold s.mu.
func (s *Sample) ensureSorted() {
	if s.unsorted {
		sort.Float64s(s.xs)
		s.unsorted = false
	}
}

// Len returns the number of observations.
func (s *Sample) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.xs)
}

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meanLocked()
}

func (s *Sample) meanLocked() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation (0 for empty).
func (s *Sample) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation (0 for empty).
func (s *Sample) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quantileLocked(q)
}

func (s *Sample) quantileLocked(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s.xs[n-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// CDFPoint is one point of an empirical CDF: fraction of observations ≤ X.
type CDFPoint struct {
	X    float64
	Frac float64
}

// CDF returns the full empirical CDF, one point per observation. The
// returned slice is cached and shared across calls — it is valid until
// the next Add and must not be modified by the caller. Repeated reads
// allocate nothing (pinned by TestCDFRepeatedReadsDoNotAllocate).
func (s *Sample) CDF() []CDFPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cdfLocked()
}

func (s *Sample) cdfLocked() []CDFPoint {
	if s.cdf != nil {
		return s.cdf
	}
	s.ensureSorted()
	out := make([]CDFPoint, len(s.xs))
	for i, x := range s.xs {
		out[i] = CDFPoint{X: x, Frac: float64(i+1) / float64(len(s.xs))}
	}
	s.cdf = out
	return out
}

// CDFAt returns the empirical CDF evaluated at x: the fraction of
// observations ≤ x.
func (s *Sample) CDFAt(x float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.Search(len(s.xs), func(i int) bool { return s.xs[i] > x })
	return float64(i) / float64(len(s.xs))
}

// OutageBelow returns the fraction of observations strictly below x —
// the empirical outage probability of a power-gain (or SNR) trace
// against a threshold: P[g < x].
func (s *Sample) OutageBelow(x float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.xs, x) // first index with xs[i] >= x
	return float64(i) / float64(len(s.xs))
}

// FadeMarginDB returns how many dB the q-quantile observation sits below
// the sample mean: 10·log10(mean / Quantile(q)). For a power-gain trace
// this is the fade margin a link budget must reserve to keep (1−q) of
// the slots above threshold. Returns 0 for empty samples or when either
// term is non-positive (margins are only meaningful over powers).
func (s *Sample) FadeMarginDB(q float64) float64 {
	m := s.Mean()
	v := s.Quantile(q)
	if m <= 0 || v <= 0 {
		return 0
	}
	return 10 * math.Log10(m/v)
}

// FormatCDF renders the CDF as the two-column text series the paper's
// figures plot, sampled at up to maxRows evenly spaced observations.
// The rendering is cached: repeating the call with the same label and
// maxRows on an unchanged sample returns the cached string without
// allocating (the per-figure reporting paths re-render the same pools).
func (s *Sample) FormatCDF(label string, maxRows int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := &s.fmtCache; c.valid && c.label == label && c.maxRows == maxRows {
		return c.out
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: n=%d mean=%.4f median=%.4f min=%.4f max=%.4f\n",
		label, len(s.xs), s.meanLocked(), s.quantileLocked(0.5), s.quantileLocked(0), s.quantileLocked(1))
	fmt.Fprintf(&b, "# %-12s %s\n", "value", "cum.fraction")
	cdf := s.cdfLocked()
	step := 1
	if maxRows > 0 && len(cdf) > maxRows {
		step = (len(cdf) + maxRows - 1) / maxRows
	}
	for i := 0; i < len(cdf); i += step {
		fmt.Fprintf(&b, "%-14.4f %.4f\n", cdf[i].X, cdf[i].Frac)
	}
	if step > 1 && (len(cdf)-1)%step != 0 {
		last := cdf[len(cdf)-1]
		fmt.Fprintf(&b, "%-14.4f %.4f\n", last.X, last.Frac)
	}
	s.fmtCache.label = label
	s.fmtCache.maxRows = maxRows
	s.fmtCache.out = b.String()
	s.fmtCache.valid = true
	return s.fmtCache.out
}

// GainRatio returns a/b, guarding against a zero denominator (returns 0
// so a broken baseline run shows up as an obviously-wrong gain, not a
// panic deep inside an experiment sweep).
func GainRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
