package sketch

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzSketchMerge drives arbitrary bytes through Decode → Merge →
// Encode: no input may panic, anything Decode accepts must re-encode to
// the identical bytes (the encoding is canonical), and merges of decoded
// sketches must stay bit-for-bit commutative. The CI fuzz smoke step
// runs this alongside FuzzDecoderNoPanic.
func FuzzSketchMerge(f *testing.F) {
	seed := func(build func(*Sketch)) []byte {
		s := NewDefault()
		build(s)
		return s.Encode()
	}
	f.Add([]byte{}, []byte{})
	f.Add(seed(func(*Sketch) {}), seed(func(s *Sketch) { s.Add(1) }))
	a := seed(func(s *Sketch) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 200; i++ {
			s.Add(rng.NormFloat64())
		}
	})
	b := seed(func(s *Sketch) {
		s.Add(0)
		s.Add(-3.5)
		s.Add(1e-9)
		s.Add(4e17)
	})
	f.Add(a, b)
	f.Add(a[:len(a)-3], append([]byte{}, append(b, 0xfe)...))
	f.Add([]byte("qsk1garbage-after-the-magic-number......"), a)

	f.Fuzz(func(t *testing.T, da, db []byte) {
		sa, errA := Decode(da)
		sb, errB := Decode(db)
		// Round-trip stability: accepted bytes are canonical.
		if errA == nil && !bytes.Equal(sa.Encode(), da) {
			t.Fatalf("Encode(Decode(a)) != a")
		}
		if errB == nil && !bytes.Equal(sb.Encode(), db) {
			t.Fatalf("Encode(Decode(b)) != b")
		}
		// Reads never panic on anything Decode accepted.
		for _, s := range []*Sketch{sa, sb} {
			if s == nil {
				continue
			}
			_ = s.Mean()
			_ = s.Quantile(0.5)
			_ = s.CDFAt(1)
			_ = s.OutageBelow(0.5)
			_ = s.FadeMarginDB(0.05)
		}
		if errA != nil || errB != nil {
			return
		}
		ab := sa.Clone()
		errAB := ab.Merge(sb)
		ba := sb.Clone()
		errBA := ba.Merge(sa)
		if (errAB == nil) != (errBA == nil) {
			t.Fatal("merge error asymmetric")
		}
		if errAB != nil {
			// Only a mismatched alpha may refuse a merge of two valid
			// sketches.
			if sa.Alpha() == sb.Alpha() {
				t.Fatalf("same-alpha merge failed: %v", errAB)
			}
			return
		}
		if !bytes.Equal(ab.Encode(), ba.Encode()) {
			t.Fatal("merge(a,b) != merge(b,a)")
		}
		// A merged sketch stays canonical.
		if _, err := Decode(ab.Encode()); err != nil {
			t.Fatalf("merged sketch does not re-decode: %v", err)
		}
	})
}
