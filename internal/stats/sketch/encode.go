package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// The wire format is the canonical serialization of a sketch — the
// shard-summary payload of the distributed-campaign pipeline. It is
// strictly canonical: every accepted byte string is the encoding of
// exactly one sketch state, and Encode(Decode(b)) == b for every b that
// Decode accepts. That is what lets the shard-merge equivalence harness
// compare summaries byte for byte, and what FuzzSketchMerge pins.
//
// Layout (all integers little endian, floats as IEEE-754 bits):
//
//	magic   "qsk1"                        4 bytes
//	alpha   float64                       8
//	count   int64                         8
//	zero    int64                         8
//	min     float64                       8   (+Inf when empty)
//	max     float64                       8   (-Inf when empty)
//	nneg    uint32                        4
//	npos    uint32                        4
//	neg     nneg × (key int32, n int64)  12 each, keys strictly ascending
//	pos     npos × (key int32, n int64)  12 each, keys strictly ascending

var magic = [4]byte{'q', 's', 'k', '1'}

const headerSize = 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4

var (
	errAlphaMismatch = errors.New("sketch: cannot merge sketches with different alpha")
	errCorrupt       = errors.New("sketch: corrupt encoding")
)

// Encode serializes the sketch to its canonical byte form.
func (s *Sketch) Encode() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, headerSize, headerSize+12*(len(s.neg)+len(s.pos)))
	copy(out, magic[:])
	binary.LittleEndian.PutUint64(out[4:], math.Float64bits(s.alpha))
	binary.LittleEndian.PutUint64(out[12:], uint64(s.count))
	binary.LittleEndian.PutUint64(out[20:], uint64(s.zero))
	binary.LittleEndian.PutUint64(out[28:], math.Float64bits(s.min))
	binary.LittleEndian.PutUint64(out[36:], math.Float64bits(s.max))
	binary.LittleEndian.PutUint32(out[44:], uint32(len(s.neg)))
	binary.LittleEndian.PutUint32(out[48:], uint32(len(s.pos)))
	var cell [12]byte
	emit := func(m map[int32]int64) {
		keys := make([]int32, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			binary.LittleEndian.PutUint32(cell[0:], uint32(k))
			binary.LittleEndian.PutUint64(cell[4:], uint64(m[k]))
			out = append(out, cell[:]...)
		}
	}
	emit(s.neg)
	emit(s.pos)
	return out
}

// Decode parses a canonical sketch encoding. Every structural invariant
// is validated — magic, alpha range, strictly ascending keys, positive
// bucket counts, count totals, extreme sentinels — so corrupt or
// adversarial bytes fail with an error, never a panic, and anything
// accepted re-encodes to the identical bytes.
func Decode(data []byte) (*Sketch, error) {
	if len(data) < headerSize || [4]byte(data[:4]) != magic {
		return nil, errCorrupt
	}
	alpha := math.Float64frombits(binary.LittleEndian.Uint64(data[4:]))
	if !(alpha >= MinAlpha && alpha <= MaxAlpha) {
		return nil, fmt.Errorf("%w: alpha out of range", errCorrupt)
	}
	count := int64(binary.LittleEndian.Uint64(data[12:]))
	zero := int64(binary.LittleEndian.Uint64(data[20:]))
	min := math.Float64frombits(binary.LittleEndian.Uint64(data[28:]))
	max := math.Float64frombits(binary.LittleEndian.Uint64(data[36:]))
	nneg := int(binary.LittleEndian.Uint32(data[44:]))
	npos := int(binary.LittleEndian.Uint32(data[48:]))
	if count < 0 || zero < 0 {
		return nil, fmt.Errorf("%w: negative count", errCorrupt)
	}
	if len(data) != headerSize+12*(nneg+npos) {
		return nil, fmt.Errorf("%w: truncated or oversized", errCorrupt)
	}
	s := New(alpha)
	s.count = count
	s.zero = zero
	s.min = min
	s.max = max
	total := zero
	off := headerSize
	read := func(m map[int32]int64, cells int) error {
		lastKey := int64(math.MinInt64)
		for i := 0; i < cells; i++ {
			k := int32(binary.LittleEndian.Uint32(data[off:]))
			n := int64(binary.LittleEndian.Uint64(data[off+4:]))
			off += 12
			if int64(k) <= lastKey {
				return fmt.Errorf("%w: bucket keys not strictly ascending", errCorrupt)
			}
			lastKey = int64(k)
			if n <= 0 {
				return fmt.Errorf("%w: non-positive bucket count", errCorrupt)
			}
			total += n
			if total < 0 {
				return fmt.Errorf("%w: count overflow", errCorrupt)
			}
			m[k] = n
		}
		return nil
	}
	if err := read(s.neg, nneg); err != nil {
		return nil, err
	}
	if err := read(s.pos, npos); err != nil {
		return nil, err
	}
	if total != count {
		return nil, fmt.Errorf("%w: bucket counts do not sum to count", errCorrupt)
	}
	if count == 0 {
		if zero != 0 || !math.IsInf(min, 1) || !math.IsInf(max, -1) {
			return nil, fmt.Errorf("%w: empty sketch with non-sentinel extremes", errCorrupt)
		}
		return s, nil
	}
	if math.IsNaN(min) || math.IsNaN(max) || math.IsInf(min, 0) || math.IsInf(max, 0) || min > max {
		return nil, fmt.Errorf("%w: invalid extremes", errCorrupt)
	}
	// Sign consistency: bucket mass on a side requires the matching
	// extreme's sign, so a decoded sketch's clamped reads stay sane.
	if len(s.neg) > 0 && min >= 0 {
		return nil, fmt.Errorf("%w: negative mass with non-negative min", errCorrupt)
	}
	if len(s.pos) > 0 && max <= 0 {
		return nil, fmt.Errorf("%w: positive mass with non-positive max", errCorrupt)
	}
	if len(s.neg) == 0 && len(s.pos) == 0 && (min != 0 || max != 0) {
		return nil, fmt.Errorf("%w: zero-only sketch with nonzero extremes", errCorrupt)
	}
	return s, nil
}
