package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// distributions are the shapes the property suite sweeps: the issue's
// uniform/normal/bimodal/heavy-tail set, covering negative mass, exact
// zeros, and multi-decade dynamic range.
var distributions = []struct {
	name string
	draw func(rng *rand.Rand) float64
}{
	{"uniform", func(rng *rand.Rand) float64 { return 0.5 + 1.5*rng.Float64() }},
	{"normal", func(rng *rand.Rand) float64 { return rng.NormFloat64() }},
	{"bimodal", func(rng *rand.Rand) float64 {
		if rng.Intn(2) == 0 {
			return 1 + 0.05*rng.NormFloat64()
		}
		return 3 + 0.05*rng.NormFloat64()
	}},
	{"heavy-tail", func(rng *rand.Rand) float64 { return math.Exp(2 * rng.NormFloat64()) }},
	{"zero-inflated", func(rng *rand.Rand) float64 {
		if rng.Intn(4) == 0 {
			return 0
		}
		return rng.Float64()
	}},
}

func fill(s *Sketch, draw func(*rand.Rand) float64, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = draw(rng)
		s.Add(xs[i])
	}
	return xs
}

// TestMergeCommutativeAssociative is the headline property: merges are
// bit-for-bit order independent. merge(A,B) == merge(B,A) and
// merge(merge(A,B),C) == merge(A,merge(B,C)), compared on the canonical
// encoding.
func TestMergeCommutativeAssociative(t *testing.T) {
	for _, d := range distributions {
		t.Run(d.name, func(t *testing.T) {
			a, b, c := NewDefault(), NewDefault(), NewDefault()
			fill(a, d.draw, 500, 1)
			fill(b, d.draw, 1200, 2)
			fill(c, d.draw, 7, 3)

			ab := a.Clone()
			if err := ab.Merge(b); err != nil {
				t.Fatal(err)
			}
			ba := b.Clone()
			if err := ba.Merge(a); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ab.Encode(), ba.Encode()) {
				t.Error("merge(A,B) != merge(B,A)")
			}

			abc1 := ab.Clone()
			if err := abc1.Merge(c); err != nil {
				t.Fatal(err)
			}
			bc := b.Clone()
			if err := bc.Merge(c); err != nil {
				t.Fatal(err)
			}
			abc2 := a.Clone()
			if err := abc2.Merge(bc); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(abc1.Encode(), abc2.Encode()) {
				t.Error("merge(merge(A,B),C) != merge(A,merge(B,C))")
			}

			// Sharding equivalence in miniature: adding the observations
			// one by one builds the same bits merging ever could.
			whole := NewDefault()
			fill(whole, d.draw, 500, 1)
			fill(whole, d.draw, 1200, 2)
			fill(whole, d.draw, 7, 3)
			if !bytes.Equal(whole.Encode(), abc1.Encode()) {
				t.Error("merged shards != direct accumulation")
			}
		})
	}
}

// TestQuantileAccuracy pins the accuracy contract against the exact
// stats.Sample: each order statistic resolves within relative α, so the
// interpolated quantile sits within α of the interpolation of the two
// exact order statistics.
func TestQuantileAccuracy(t *testing.T) {
	const n = 20000
	for _, d := range distributions {
		t.Run(d.name, func(t *testing.T) {
			sk := NewDefault()
			xs := fill(sk, d.draw, n, 42)
			exact := stats.NewSample(xs)
			for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
				got := sk.Quantile(q)
				want := exact.Quantile(q)
				// The bound is α times the larger magnitude of the two
				// order statistics the interpolation touches.
				pos := q * float64(n-1)
				lo := int(math.Floor(pos))
				hi := lo
				if pos != math.Floor(pos) && lo+1 < n {
					hi = lo + 1
				}
				bound := DefaultAlpha*math.Max(math.Abs(exact.Quantile(float64(lo)/(n-1))), math.Abs(exact.Quantile(float64(hi)/(n-1)))) + 1e-12
				if math.Abs(got-want) > bound {
					t.Errorf("q=%.2f: sketch %v vs exact %v (bound %v)", q, got, want, bound)
				}
			}
			if sk.Min() != exact.Min() || sk.Max() != exact.Max() {
				t.Errorf("extremes not exact: [%v,%v] vs [%v,%v]", sk.Min(), sk.Max(), exact.Min(), exact.Max())
			}
			if sk.Len() != exact.Len() {
				t.Errorf("count %d != %d", sk.Len(), exact.Len())
			}
			// Mean within α of the exact mean, scaled by mean magnitude.
			var meanAbs float64
			for _, x := range xs {
				meanAbs += math.Abs(x)
			}
			meanAbs /= n
			if math.Abs(sk.Mean()-exact.Mean()) > DefaultAlpha*meanAbs+1e-12 {
				t.Errorf("mean %v vs exact %v (|x| mean %v)", sk.Mean(), exact.Mean(), meanAbs)
			}
		})
	}
}

// TestCDFAndOutage checks the threshold reads away from bucket
// boundaries, where the α-resolution attribution is unambiguous.
func TestCDFAndOutage(t *testing.T) {
	s := NewDefault()
	for _, x := range []float64{1, 2, 3} {
		s.Add(x)
	}
	if got := s.CDFAt(2.5); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("CDFAt(2.5) = %v, want 2/3", got)
	}
	if got := s.CDFAt(0.5); got != 0 {
		t.Errorf("CDFAt(0.5) = %v, want 0", got)
	}
	if got := s.CDFAt(4); got != 1 {
		t.Errorf("CDFAt(4) = %v, want 1", got)
	}
	if got := s.OutageBelow(2.5); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("OutageBelow(2.5) = %v, want 2/3", got)
	}
	if got := s.OutageBelow(0.5); got != 0 {
		t.Errorf("OutageBelow(0.5) = %v, want 0", got)
	}
	// FadeMarginDB mirrors the Sample helper's guardrails.
	if got := NewDefault().FadeMarginDB(0.05); got != 0 {
		t.Errorf("empty FadeMarginDB = %v", got)
	}
	if s.FadeMarginDB(0.05) <= 0 {
		t.Error("positive-valued sketch has no fade margin")
	}
}

// TestEdgeCases covers empty, single-element, constant, and NaN/Inf
// rejection.
func TestEdgeCases(t *testing.T) {
	empty := NewDefault()
	if empty.Mean() != 0 || empty.Min() != 0 || empty.Max() != 0 ||
		empty.Quantile(0.5) != 0 || empty.CDFAt(1) != 0 || empty.OutageBelow(1) != 0 {
		t.Error("empty sketch reads are not all zero")
	}

	one := NewDefault()
	one.Add(3.7)
	for _, q := range []float64{0, 0.3, 0.5, 1} {
		if got := one.Quantile(q); got != 3.7 {
			t.Errorf("single-element Quantile(%v) = %v, want exactly 3.7", q, got)
		}
	}
	if one.Mean() != 3.7 || one.Min() != 3.7 || one.Max() != 3.7 {
		t.Error("single-element sketch not exact")
	}

	constant := NewDefault()
	for i := 0; i < 100; i++ {
		constant.Add(-2.25)
	}
	if constant.Mean() != -2.25 || constant.Quantile(0.5) != -2.25 {
		t.Errorf("constant sketch drifted: mean %v median %v", constant.Mean(), constant.Quantile(0.5))
	}

	nan := NewDefault()
	nan.Add(1)
	before := nan.Encode()
	nan.Add(math.NaN())
	nan.Add(math.Inf(1))
	nan.Add(math.Inf(-1))
	if nan.Count() != 1 {
		t.Errorf("NaN/Inf changed the count: %d", nan.Count())
	}
	if !bytes.Equal(before, nan.Encode()) {
		t.Error("NaN/Inf mutated the sketch state")
	}
}

func TestMergeAlphaMismatchAndEmpty(t *testing.T) {
	a := New(0.005)
	b := New(0.01)
	if err := a.Merge(b); err == nil {
		t.Error("cross-alpha merge did not fail")
	}

	filled := NewDefault()
	fill(filled, distributions[0].draw, 100, 9)
	before := filled.Encode()
	if err := filled.Merge(NewDefault()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, filled.Encode()) {
		t.Error("merging an empty sketch changed the state")
	}
	emptyInto := NewDefault()
	if err := emptyInto.Merge(filled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, emptyInto.Encode()) {
		t.Error("merging into an empty sketch lost state")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, d := range distributions {
		t.Run(d.name, func(t *testing.T) {
			s := NewDefault()
			fill(s, d.draw, 3000, 7)
			enc := s.Encode()
			dec, err := Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, dec.Encode()) {
				t.Error("Decode∘Encode is not the identity")
			}
			if dec.Mean() != s.Mean() || dec.Quantile(0.9) != s.Quantile(0.9) {
				t.Error("decoded sketch reads differ")
			}
		})
	}
	if _, err := Decode(NewDefault().Encode()); err != nil {
		t.Errorf("empty sketch does not round-trip: %v", err)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	valid := func() []byte {
		s := NewDefault()
		s.Add(1)
		s.Add(-2)
		s.Add(0)
		return s.Encode()
	}()
	cases := map[string][]byte{
		"empty input": {},
		"bad magic":   append([]byte("nope"), valid[4:]...),
		"truncated":   valid[:len(valid)-1],
		"trailing":    append(append([]byte{}, valid...), 0),
	}
	// Field-level corruptions: alpha, counts, extremes.
	badAlpha := append([]byte{}, valid...)
	for i := 4; i < 12; i++ {
		badAlpha[i] = 0xff
	}
	cases["NaN alpha"] = badAlpha
	badCount := append([]byte{}, valid...)
	badCount[12] ^= 0x01
	cases["count mismatch"] = badCount
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

// TestFootprintFlat is the O(sketch) memory pin: 100× the observations
// must not grow the sketch — bucket occupancy saturates with the value
// range, not the count. (The campaign-level assertion rides on this via
// the SketchRecorder pin in internal/sim.)
func TestFootprintFlat(t *testing.T) {
	size := func(n int) (buckets, encoded int) {
		s := NewDefault()
		fill(s, distributions[0].draw, n, 11)
		return s.Buckets(), len(s.Encode())
	}
	b1k, e1k := size(1_000)
	b100k, e100k := size(100_000)
	if b100k > b1k+b1k/5 {
		t.Errorf("buckets grew with n: %d at 1k vs %d at 100k", b1k, b100k)
	}
	if e100k > e1k+e1k/5 {
		t.Errorf("encoding grew with n: %dB at 1k vs %dB at 100k", e1k, e100k)
	}
}
