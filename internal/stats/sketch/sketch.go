// Package sketch provides a mergeable quantile sketch for campaign-scale
// distributions: the Fig. 9/10/12-style gain, BER and overlap pools held
// in O(sketch) memory instead of one float per observation, with a merge
// that is *exact* — two shards' sketches combine into byte-for-byte the
// same state the unsharded campaign would have built.
//
// # Determinism contract
//
// A t-digest keeps data-adaptive centroids, so its merged state depends
// on arrival and merge order — "approximately equal" summaries are the
// best it can promise across shards. This sketch instead pins its
// centroids to a deterministic γ-indexed grid (a DDSketch-style layout):
// bucket k covers the value interval (γ^(k-1), γ^k] with γ = (1+α)/(1-α),
// and the bucket's centroid is the interval's midpoint estimate
// 2γ^k/(γ+1), a function of k alone. The sketch state is therefore a
// pure function of the observation *multiset*:
//
//   - Add increments an integer bucket count (integer addition is exact,
//     commutative and associative);
//   - Merge adds per-bucket counts and takes elementwise min/max of the
//     exact extremes;
//   - every order-dependent read iterates buckets in one canonical value
//     order, so even the floating-point folds (Mean, Quantile) are
//     deterministic functions of the state.
//
// Consequently Merge(A, B) == Merge(B, A) and Merge(Merge(A, B), C) ==
// Merge(A, Merge(B, C)) bit for bit, however the observations were
// partitioned — the property the sharded-campaign equivalence harness
// (internal/experiments) proves end to end.
//
// # Accuracy contract
//
// Count, Min and Max are exact. Quantile returns a value within relative
// error α of the exact order statistic at the queried rank (clamped to
// [Min, Max], so single-element and constant sketches are exact). Mean
// folds bucket centroids, so it is within relative α of the exact mean
// of |observations|. CDFAt and OutageBelow attribute each bucket's mass
// to its centroid, so thresholds are resolved to bucket (α) resolution.
package sketch

import (
	"math"
	"sort"
	"sync"
)

// DefaultAlpha is the relative-accuracy parameter campaign summaries
// use: quantile estimates within 0.5% of the exact order statistic.
const DefaultAlpha = 0.005

// Alpha bounds accepted by New and Decode. The lower bound keeps bucket
// keys comfortably inside int32 for the full float64 range; the upper
// bound keeps γ meaningful (α → 0.5 makes γ → 3, one bucket per ~half
// decade — coarser than any caller should want).
const (
	MinAlpha = 1e-4
	MaxAlpha = 0.25
)

// Sketch is a mergeable quantile sketch over float64 observations. The
// zero value is not usable; construct with New or NewDefault, or Decode.
//
// All methods are safe for concurrent use (one mutex, like
// stats.Sample). Merge locks the two sketches in sequence, never
// simultaneously, so any lock order is deadlock free.
type Sketch struct {
	mu    sync.Mutex
	alpha float64 // relative accuracy, in [MinAlpha, MaxAlpha]
	gamma float64 // (1+α)/(1-α)
	lnG   float64 // ln γ
	// Buckets: pos[k] counts observations in (γ^(k-1), γ^k]; neg[k]
	// counts observations in [-γ^k, -γ^(k-1)); zero counts exact zeros.
	pos, neg map[int32]int64
	zero     int64
	count    int64
	// Exact extremes; +Inf/-Inf when empty so Merge is identity-friendly.
	min, max float64
}

// New returns an empty sketch with the given relative accuracy α.
// Panics when α is outside [MinAlpha, MaxAlpha]: the accuracy is a
// compile-time-style configuration, and two sketches only merge when
// their α match exactly.
func New(alpha float64) *Sketch {
	if !(alpha >= MinAlpha && alpha <= MaxAlpha) { // rejects NaN too
		panic("sketch: alpha out of range")
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha: alpha,
		gamma: gamma,
		lnG:   math.Log(gamma),
		pos:   make(map[int32]int64),
		neg:   make(map[int32]int64),
		min:   math.Inf(1),
		max:   math.Inf(-1),
	}
}

// NewDefault returns an empty sketch at DefaultAlpha.
func NewDefault() *Sketch { return New(DefaultAlpha) }

// Alpha returns the sketch's relative-accuracy parameter.
func (s *Sketch) Alpha() float64 { return s.alpha }

// key maps a positive magnitude to its bucket index: the smallest k with
// γ^k ≥ v. math.Log is a pure-Go deterministic function, so the mapping
// is reproducible across runs and shards.
func (s *Sketch) key(v float64) int32 {
	return int32(math.Ceil(math.Log(v) / s.lnG))
}

// centroid returns bucket k's representative magnitude, the midpoint
// estimate 2γ^k/(γ+1). A function of k alone — never of the data —
// which is what makes every read order-independent.
func (s *Sketch) centroid(k int32) float64 {
	return math.Exp(float64(k)*s.lnG) * 2 / (s.gamma + 1)
}

// Add records one observation. NaN and ±Inf are rejected (dropped
// without touching the state): campaign observations are finite by
// construction, and a stray NaN must not poison a mergeable summary.
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case x == 0:
		s.zero++
	case x > 0:
		s.pos[s.key(x)]++
	default:
		s.neg[s.key(-x)]++
	}
	s.count++
	s.min = math.Min(s.min, x)
	s.max = math.Max(s.max, x)
}

// Count returns the number of recorded observations (exact).
func (s *Sketch) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Len is Count as an int, mirroring stats.Sample.Len.
func (s *Sketch) Len() int { return int(s.Count()) }

// Min returns the smallest observation, exactly (0 for empty, matching
// stats.Sample).
func (s *Sketch) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, exactly (0 for empty).
func (s *Sketch) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	return s.max
}

// bucket is one occupied cell in canonical value order.
type bucket struct {
	value float64
	n     int64
}

// clampLocked bounds a centroid by the exact extremes, so estimates
// never step outside the observed range (and a single-element sketch
// reads back exactly). Callers must hold s.mu.
func (s *Sketch) clampLocked(v float64) float64 {
	return math.Min(math.Max(v, s.min), s.max)
}

// orderedLocked returns the occupied buckets in canonical ascending
// value order: negative buckets from most to least negative, the zero
// bucket, then positive buckets ascending. Every order-dependent read
// folds over this one order, which is what makes the floating-point
// arithmetic a deterministic function of the sketch state. Callers must
// hold s.mu.
func (s *Sketch) orderedLocked() []bucket {
	out := make([]bucket, 0, len(s.neg)+len(s.pos)+1)
	nk := make([]int32, 0, len(s.neg))
	for k := range s.neg {
		nk = append(nk, k)
	}
	sort.Slice(nk, func(i, j int) bool { return nk[i] > nk[j] })
	for _, k := range nk {
		out = append(out, bucket{value: s.clampLocked(-s.centroid(k)), n: s.neg[k]})
	}
	if s.zero > 0 {
		out = append(out, bucket{value: 0, n: s.zero})
	}
	pk := make([]int32, 0, len(s.pos))
	for k := range s.pos {
		pk = append(pk, k)
	}
	sort.Slice(pk, func(i, j int) bool { return pk[i] < pk[j] })
	for _, k := range pk {
		out = append(out, bucket{value: s.clampLocked(s.centroid(k)), n: s.pos[k]})
	}
	return out
}

// Mean returns the estimated arithmetic mean (0 for empty): bucket
// centroids folded in canonical order, so the same multiset of
// observations yields the same bits however it was sharded.
func (s *Sketch) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	var sum float64
	for _, b := range s.orderedLocked() {
		sum += b.value * float64(b.n)
	}
	return sum / float64(s.count)
}

// valueAtRank returns the estimated value of the rank-th order statistic
// (0-based) given the canonical bucket fold.
func valueAtRank(bs []bucket, rank int64) float64 {
	var cum int64
	for _, b := range bs {
		cum += b.n
		if cum > rank {
			return b.value
		}
	}
	return bs[len(bs)-1].value
}

// Quantile returns the estimated q-quantile (0 ≤ q ≤ 1) with the same
// linear interpolation between adjacent order statistics that
// stats.Sample.Quantile uses; each order statistic is resolved to its
// bucket centroid, hence the α relative-error contract.
func (s *Sketch) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	bs := s.orderedLocked()
	pos := q * float64(s.count-1)
	lo := int64(math.Floor(pos))
	frac := pos - float64(lo)
	vlo := valueAtRank(bs, lo)
	if frac == 0 || lo+1 >= s.count {
		return s.clampLocked(vlo)
	}
	vhi := valueAtRank(bs, lo+1)
	return s.clampLocked(vlo*(1-frac) + vhi*frac)
}

// Median returns the 0.5 quantile.
func (s *Sketch) Median() float64 { return s.Quantile(0.5) }

// CDFAt returns the estimated fraction of observations ≤ x: each
// bucket's mass sits at its centroid, so the threshold resolves at
// bucket (α) resolution.
func (s *Sketch) CDFAt(x float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	var cum int64
	for _, b := range s.orderedLocked() {
		if b.value > x {
			break
		}
		cum += b.n
	}
	return float64(cum) / float64(s.count)
}

// OutageBelow returns the estimated fraction of observations strictly
// below x — P[g < x], the outage probability against a threshold,
// mirroring stats.Sample.OutageBelow.
func (s *Sketch) OutageBelow(x float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	var cum int64
	for _, b := range s.orderedLocked() {
		if b.value >= x {
			break
		}
		cum += b.n
	}
	return float64(cum) / float64(s.count)
}

// FadeMarginDB returns how many dB the q-quantile observation sits below
// the mean: 10·log10(mean / Quantile(q)), 0 when either term is
// non-positive — the stats.Sample.FadeMarginDB contract over sketch
// estimates.
func (s *Sketch) FadeMarginDB(q float64) float64 {
	m := s.Mean()
	v := s.Quantile(q)
	if m <= 0 || v <= 0 {
		return 0
	}
	return 10 * math.Log10(m/v)
}

// Buckets returns the number of occupied buckets — the sketch's memory
// footprint in cells. Bounded by the value range and α, never by the
// observation count: the O(sketch) guarantee campaign pools rely on.
func (s *Sketch) Buckets() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.pos) + len(s.neg)
	if s.zero > 0 {
		n++
	}
	return n
}

// snapshot returns a deep copy of the sketch state under its own lock,
// so Merge never holds two locks at once.
func (s *Sketch) snapshot() *Sketch {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := &Sketch{
		alpha: s.alpha, gamma: s.gamma, lnG: s.lnG,
		pos: make(map[int32]int64, len(s.pos)), neg: make(map[int32]int64, len(s.neg)),
		zero: s.zero, count: s.count, min: s.min, max: s.max,
	}
	for k, n := range s.pos {
		cp.pos[k] = n
	}
	for k, n := range s.neg {
		cp.neg[k] = n
	}
	return cp
}

// Clone returns an independent copy of the sketch.
func (s *Sketch) Clone() *Sketch { return s.snapshot() }

// Merge folds o into s: per-bucket integer counts add, extremes combine
// by min/max — all exact, so merging is associative and commutative bit
// for bit, and merging a shard's sketch is indistinguishable from having
// Added its observations directly. o is unchanged (merging a sketch with
// itself doubles it). The accuracies must match exactly: the γ grids of
// different α do not align, so cross-α merges are refused rather than
// approximated.
func (s *Sketch) Merge(o *Sketch) error {
	if o.alpha != s.alpha {
		return errAlphaMismatch
	}
	snap := o.snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, n := range snap.pos {
		s.pos[k] += n
	}
	for k, n := range snap.neg {
		s.neg[k] += n
	}
	s.zero += snap.zero
	s.count += snap.count
	s.min = math.Min(s.min, snap.min)
	s.max = math.Max(s.max, snap.max)
	return nil
}
