package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanMedianMinMax(t *testing.T) {
	s := NewSample([]float64{3, 1, 4, 1, 5})
	if got := s.Mean(); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Median(); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestEmptySample(t *testing.T) {
	s := NewSample(nil)
	if s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 || s.CDFAt(1) != 0 {
		t.Error("empty sample statistics not zero")
	}
	if len(s.CDF()) != 0 {
		t.Error("empty sample CDF not empty")
	}
}

func TestAddKeepsSorted(t *testing.T) {
	s := NewSample([]float64{2, 4})
	s.Add(3)
	s.Add(1)
	s.Add(5)
	want := []float64{1, 2, 3, 4, 5}
	cdf := s.CDF()
	for i, p := range cdf {
		if p.X != want[i] {
			t.Fatalf("CDF[%d].X = %v, want %v", i, p.X, want[i])
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := NewSample([]float64{0, 10})
	if got := s.Quantile(0.25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Quantile(0.25) = %v, want 2.5", got)
	}
	if s.Quantile(-1) != 0 || s.Quantile(2) != 10 {
		t.Error("quantile clamping broken")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		s := NewSample(xs)
		cdf := s.CDF()
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X < cdf[i-1].X || cdf[i].Frac < cdf[i-1].Frac {
				return false
			}
		}
		return len(cdf) == 0 || cdf[len(cdf)-1].Frac == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAt(t *testing.T) {
	s := NewSample([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := s.CDFAt(c.x); got != c.want {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFAtMatchesDirectCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	s := NewSample(xs)
	sort.Float64s(xs)
	for _, probe := range []float64{-2, -0.5, 0, 0.5, 2} {
		count := 0
		for _, x := range xs {
			if x <= probe {
				count++
			}
		}
		want := float64(count) / float64(len(xs))
		if got := s.CDFAt(probe); math.Abs(got-want) > 1e-12 {
			t.Errorf("CDFAt(%v) = %v, want %v", probe, got, want)
		}
	}
}

func TestFormatCDF(t *testing.T) {
	s := NewSample([]float64{1, 2, 3, 4})
	out := s.FormatCDF("gain", 0)
	if !strings.Contains(out, "# gain: n=4") {
		t.Errorf("header missing: %q", out)
	}
	if !strings.Contains(out, "1.0000") || !strings.Contains(out, "0.2500") {
		t.Errorf("rows missing: %q", out)
	}
}

func TestFormatCDFDownsamples(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	out := NewSample(xs).FormatCDF("big", 10)
	lines := strings.Count(out, "\n")
	if lines > 15 {
		t.Errorf("%d lines, want ≤ 15 (downsampled)", lines)
	}
	// The final point (frac = 1) must survive downsampling.
	if !strings.Contains(out, "1.0000\n") {
		t.Errorf("last CDF point missing:\n%s", out)
	}
}

func TestGainRatio(t *testing.T) {
	if got := GainRatio(3, 2); got != 1.5 {
		t.Errorf("GainRatio = %v", got)
	}
	if got := GainRatio(3, 0); got != 0 {
		t.Errorf("GainRatio/0 = %v, want 0", got)
	}
}
