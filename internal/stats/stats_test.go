package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestMeanMedianMinMax(t *testing.T) {
	s := NewSample([]float64{3, 1, 4, 1, 5})
	if got := s.Mean(); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Median(); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestEmptySample(t *testing.T) {
	s := NewSample(nil)
	if s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 || s.CDFAt(1) != 0 {
		t.Error("empty sample statistics not zero")
	}
	if len(s.CDF()) != 0 {
		t.Error("empty sample CDF not empty")
	}
}

func TestAddKeepsSorted(t *testing.T) {
	s := NewSample([]float64{2, 4})
	s.Add(3)
	s.Add(1)
	s.Add(5)
	want := []float64{1, 2, 3, 4, 5}
	cdf := s.CDF()
	for i, p := range cdf {
		if p.X != want[i] {
			t.Fatalf("CDF[%d].X = %v, want %v", i, p.X, want[i])
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := NewSample([]float64{0, 10})
	if got := s.Quantile(0.25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Quantile(0.25) = %v, want 2.5", got)
	}
	if s.Quantile(-1) != 0 || s.Quantile(2) != 10 {
		t.Error("quantile clamping broken")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		s := NewSample(xs)
		cdf := s.CDF()
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X < cdf[i-1].X || cdf[i].Frac < cdf[i-1].Frac {
				return false
			}
		}
		return len(cdf) == 0 || cdf[len(cdf)-1].Frac == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAt(t *testing.T) {
	s := NewSample([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := s.CDFAt(c.x); got != c.want {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFAtMatchesDirectCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	s := NewSample(xs)
	sort.Float64s(xs)
	for _, probe := range []float64{-2, -0.5, 0, 0.5, 2} {
		count := 0
		for _, x := range xs {
			if x <= probe {
				count++
			}
		}
		want := float64(count) / float64(len(xs))
		if got := s.CDFAt(probe); math.Abs(got-want) > 1e-12 {
			t.Errorf("CDFAt(%v) = %v, want %v", probe, got, want)
		}
	}
}

func TestFormatCDF(t *testing.T) {
	s := NewSample([]float64{1, 2, 3, 4})
	out := s.FormatCDF("gain", 0)
	if !strings.Contains(out, "# gain: n=4") {
		t.Errorf("header missing: %q", out)
	}
	if !strings.Contains(out, "1.0000") || !strings.Contains(out, "0.2500") {
		t.Errorf("rows missing: %q", out)
	}
}

func TestFormatCDFDownsamples(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	out := NewSample(xs).FormatCDF("big", 10)
	lines := strings.Count(out, "\n")
	if lines > 15 {
		t.Errorf("%d lines, want ≤ 15 (downsampled)", lines)
	}
	// The final point (frac = 1) must survive downsampling.
	if !strings.Contains(out, "1.0000\n") {
		t.Errorf("last CDF point missing:\n%s", out)
	}
}

func TestOutageBelow(t *testing.T) {
	s := NewSample([]float64{0.1, 0.2, 0.5, 1.0})
	cases := []struct{ x, want float64 }{
		{0.05, 0}, {0.1, 0}, {0.15, 0.25}, {0.2, 0.25}, {0.6, 0.75}, {2, 1},
	}
	for _, c := range cases {
		if got := s.OutageBelow(c.x); got != c.want {
			t.Errorf("OutageBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := NewSample(nil).OutageBelow(1); got != 0 {
		t.Errorf("empty OutageBelow = %v", got)
	}
}

func TestFadeMarginDB(t *testing.T) {
	// Constant sample: every quantile equals the mean, margin 0 dB.
	flat := NewSample([]float64{0.5, 0.5, 0.5})
	if got := flat.FadeMarginDB(0.05); math.Abs(got) > 1e-12 {
		t.Errorf("flat FadeMarginDB = %v, want 0", got)
	}
	// Mean 10× the low quantile → 10 dB margin.
	s := NewSample([]float64{0.1, 1.9})
	if got := s.FadeMarginDB(0); math.Abs(got-10) > 1e-9 {
		t.Errorf("FadeMarginDB(0) = %v, want 10", got)
	}
	if got := NewSample(nil).FadeMarginDB(0.05); got != 0 {
		t.Errorf("empty FadeMarginDB = %v", got)
	}
	if got := NewSample([]float64{-1, 1}).FadeMarginDB(0); got != 0 {
		t.Errorf("non-positive quantile FadeMarginDB = %v, want 0 guard", got)
	}
}

// TestAddAfterReadResorts covers the lazy-sort edge the insertion-sorted
// implementation never had: reads interleaved with appends must always
// see the fully sorted sample.
func TestAddAfterReadResorts(t *testing.T) {
	s := NewSample([]float64{5, 1})
	if s.Min() != 1 {
		t.Fatalf("Min = %v", s.Min())
	}
	s.Add(0) // below the current minimum, after a read
	if s.Min() != 0 || s.Max() != 5 {
		t.Errorf("Min/Max after post-read Add = %v/%v, want 0/5", s.Min(), s.Max())
	}
	s.Add(9)
	if got := s.CDF(); got[len(got)-1].X != 9 {
		t.Errorf("CDF tail = %v, want 9", got[len(got)-1].X)
	}
}

// BenchmarkSampleStream measures the streamed-campaign pattern the lazy
// sort exists for: N appends followed by one quantile read. The
// insertion-sorted Add this replaced cost O(n) per append — O(n²) for
// the stream — where buffering with one deferred sort is O(n log n).
func BenchmarkSampleStream(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.Float64()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewSample(nil)
				for _, x := range xs {
					s.Add(x)
				}
				_ = s.Quantile(0.9)
			}
		})
	}
}

// BenchmarkSampleAddSortedInsertion is the pre-lazy-sort behavior,
// reconstructed, so benchdiff keeps the contrast visible: run it against
// BenchmarkSampleStream to see the O(n²) → O(n log n) win.
func BenchmarkSampleAddSortedInsertion(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.Float64()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sorted := make([]float64, 0, n)
				for _, x := range xs {
					j := sort.SearchFloat64s(sorted, x)
					sorted = append(sorted, 0)
					copy(sorted[j+1:], sorted[j:])
					sorted[j] = x
				}
			}
		})
	}
}

func TestGainRatio(t *testing.T) {
	if got := GainRatio(3, 2); got != 1.5 {
		t.Errorf("GainRatio = %v", got)
	}
	if got := GainRatio(3, 0); got != 0 {
		t.Errorf("GainRatio/0 = %v, want 0", got)
	}
}

// TestConcurrentReadersAndWriters pins the Sample locking contract under
// the race detector: order-dependent reads trigger the deferred sort, so
// before the mutex two concurrent *readers* already raced. Every method
// runs from several goroutines against one Sample; the assertions only
// need the values to be sane (each method is individually consistent,
// not a snapshot across calls).
func TestConcurrentReadersAndWriters(t *testing.T) {
	s := NewSample([]float64{5, 1, 3})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch g {
				case 0:
					s.Add(float64(i))
				case 1:
					if min, max := s.Min(), s.Max(); min > max {
						t.Errorf("min %v > max %v", min, max)
					}
				case 2:
					if q := s.Quantile(0.5); math.IsNaN(q) {
						t.Error("NaN median")
					}
					s.CDFAt(2.5)
					s.OutageBelow(2.5)
				default:
					if got := s.CDF(); len(got) < 3 {
						t.Errorf("CDF shrank to %d points", len(got))
					}
					s.Mean()
					s.Len()
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 3+200 {
		t.Errorf("Len = %d after 200 concurrent Adds to 3 seeds", s.Len())
	}
}

// TestCDFRepeatedReadsDoNotAllocate is the alloc pin for the CDF cache:
// campaign reporting re-reads the same pools, and before the cache every
// CDF() rebuilt one point per observation and every FormatCDF re-rendered
// the whole series. Repeated reads of an unchanged sample must now be
// allocation free, and an Add must invalidate both caches.
func TestCDFRepeatedReadsDoNotAllocate(t *testing.T) {
	s := NewSample(nil)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i%97) / 9.7)
	}
	s.CDF()                   // warm the CDF cache
	s.FormatCDF("pinned", 25) // warm the format cache
	if allocs := testing.AllocsPerRun(50, func() { _ = s.CDF() }); allocs != 0 {
		t.Errorf("repeated CDF() allocates %.1f per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { _ = s.FormatCDF("pinned", 25) }); allocs != 0 {
		t.Errorf("repeated FormatCDF allocates %.1f per call, want 0", allocs)
	}

	// Different rendering parameters are not served from the stale cache.
	wide := s.FormatCDF("pinned", 50)
	if wide == s.FormatCDF("pinned", 25) {
		t.Error("FormatCDF ignored a maxRows change")
	}

	// Adding invalidates: the cached views must grow with the sample.
	before := len(s.CDF())
	s.Add(123.456)
	after := s.CDF()
	if len(after) != before+1 {
		t.Fatalf("CDF cache stale after Add: %d points, want %d", len(after), before+1)
	}
	if !strings.Contains(s.FormatCDF("pinned", 0), "123.4560") {
		t.Error("FormatCDF cache stale after Add")
	}
}
