// Package mesh runs the Alice–Bob relay network closed-loop: instead of
// an experiment script orchestrating who transmits when, the §7.6 trigger
// protocol does. The router ends each broadcast with a trigger; both
// endpoints respond after their §7.2 random delays; the router classifies
// what it received with the §7.5 decision procedure (peeking at the head
// and tail headers — no oracle knowledge) and amplifies-and-forwards only
// when it actually observes two opposite flows. Endpoints decode against
// their sent-packet buffers and acknowledge implicitly by sending their
// next packet.
//
// The package exists to show the protocol machinery *running*, not to
// generate the paper's figures (internal/sim owns those): its tests
// verify that triggers, router decisions, and decoding compose into a
// working network without any experiment-side cheating.
package mesh

import (
	"fmt"
	"math/rand"

	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config parameterizes a closed-loop session.
type Config struct {
	// Modem names the registered PHY the session runs under (phy.Names;
	// empty means the registry default, MSK). An unknown name panics in
	// NewSession — a typo'd session must fail loudly, never silently run
	// the default PHY.
	Modem string
	// SamplesPerSymbol for the modem (default 4).
	SamplesPerSymbol int
	// PayloadBytes per packet (default 96).
	PayloadBytes int
	// SNRdB per link. nil means the default 25 dB; set it with Ptr —
	// Ptr(0) is a legitimate 0 dB session, not a request for the default.
	SNRdB *float64
	// Cycles is the number of trigger rounds to run (default 10).
	Cycles int
	// Seed drives all randomness.
	Seed int64
}

// Ptr wraps a value for the Config fields whose zero is meaningful: nil
// means "use the default", Ptr(v) means exactly v — including v = 0.
func Ptr(v float64) *float64 { return &v }

func (c Config) withDefaults() Config {
	if c.Modem == "" {
		c.Modem = phy.Default
	}
	if c.SamplesPerSymbol == 0 {
		c.SamplesPerSymbol = 4
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 96
	}
	if c.SNRdB == nil {
		c.SNRdB = Ptr(25)
	}
	if c.Cycles == 0 {
		c.Cycles = 10
	}
	return c
}

// Stats summarizes a session.
type Stats struct {
	// Cycles completed.
	Cycles int
	// Triggered counts trigger rounds in which both endpoints responded.
	Triggered int
	// RouterForwards counts §7.5 amplify-and-forward decisions.
	RouterForwards int
	// RouterDrops counts receptions the router refused to forward.
	RouterDrops int
	// Delivered counts packets decoded end-to-end with tolerable BER.
	Delivered int
	// Lost counts packets that failed to decode.
	Lost int
	// TotalBER accumulates payload BER over delivered packets.
	TotalBER float64
}

// MeanBER returns the average BER of delivered packets.
func (s Stats) MeanBER() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return s.TotalBER / float64(s.Delivered)
}

// Stats speaks the sim.Recorder vocabulary: the session's accounting
// emits the same typed observations the scenario engine's schedules do
// (a delivery, a loss, an interference-decode BER) and Stats folds them
// into its counters. Protocol-level events (triggers, router decisions)
// stay outside the vocabulary — they are mesh-specific counters, not
// results.

// RecordDelivered implements sim.Recorder. The closed loop counts
// packets, not goodput bits.
func (s *Stats) RecordDelivered(bits float64) { s.Delivered++ }

// RecordLost implements sim.Recorder.
func (s *Stats) RecordLost(n int) { s.Lost += n }

// RecordANCDecode implements sim.Recorder; the session emits it only for
// delivered packets, so MeanBER keeps its delivered-only denominator.
func (s *Stats) RecordANCDecode(ber float64) { s.TotalBER += ber }

// RecordCollision implements sim.Recorder as a no-op: the session's
// relative delays are protocol-enforced, not measured.
func (s *Stats) RecordCollision(overlap float64) {}

// RecordAirTime implements sim.Recorder as a no-op: the closed loop has
// no air-time accounting (internal/sim owns throughput figures).
func (s *Stats) RecordAirTime(samples float64) {}

// RecordLinkState implements sim.Recorder as a no-op.
func (s *Stats) RecordLinkState(slot, from, to int, powerGain float64) {}

// teeRecorder forwards every observation to both recorders: the
// session's own Stats and a caller-supplied stream.
type teeRecorder struct {
	a, b sim.Recorder
}

func (t teeRecorder) RecordDelivered(bits float64) {
	t.a.RecordDelivered(bits)
	t.b.RecordDelivered(bits)
}
func (t teeRecorder) RecordLost(n int) {
	t.a.RecordLost(n)
	t.b.RecordLost(n)
}
func (t teeRecorder) RecordANCDecode(ber float64) {
	t.a.RecordANCDecode(ber)
	t.b.RecordANCDecode(ber)
}
func (t teeRecorder) RecordCollision(overlap float64) {
	t.a.RecordCollision(overlap)
	t.b.RecordCollision(overlap)
}
func (t teeRecorder) RecordAirTime(samples float64) {
	t.a.RecordAirTime(samples)
	t.b.RecordAirTime(samples)
}
func (t teeRecorder) RecordLinkState(slot, from, to int, powerGain float64) {
	t.a.RecordLinkState(slot, from, to, powerGain)
	t.b.RecordLinkState(slot, from, to, powerGain)
}

// Session is a running closed-loop Alice–Bob network.
type Session struct {
	cfg    Config
	rng    *rand.Rand
	modem  phy.Modem
	graph  *topology.Graph
	alice  *radio.Node
	bob    *radio.Node
	router *radio.Node
	floor  float64
	delay  mac.DelayConfig
	tail   int

	// Application queues: payloads awaiting transmission.
	queueA, queueB [][]byte
	// Ground truth for delivery verification, keyed by header.
	truth map[frame.Key][]byte
}

// NewSession builds the network with a fresh channel realization.
func NewSession(cfg Config) *Session {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	modem := phy.MustNew(cfg.Modem, cfg.SamplesPerSymbol)
	tc := topology.DefaultConfig()
	g := topology.AliceBob(tc, rng)
	floor := tc.MeanPowerGain / dsp.FromDB(*cfg.SNRdB)
	mk := func(id uint16) *radio.Node {
		return radio.NewNode(id, modem, floor, func(c *core.Config) {
			c.FallbackFrameBits = frame.FrameBits(cfg.PayloadBytes)
		})
	}
	L := modem.NumSamples(frame.FrameBits(cfg.PayloadBytes))
	window := 4 * cfg.SamplesPerSymbol * 8
	// The two endpoints' frames must start far enough apart that each
	// frame's pilot+header clears the other's onset: the on-air span of
	// the mirror region in the session's modem, plus detector slack.
	minSep := modem.NumSamples(frame.MirrorBits) - 1 + 3*window
	slot := L / 640
	if slot < 2 {
		slot = 2
	}
	return &Session{
		cfg:    cfg,
		rng:    rng,
		modem:  modem,
		graph:  g,
		alice:  mk(1),
		bob:    mk(2),
		router: mk(3),
		floor:  floor,
		delay:  mac.DelayConfig{MinSeparation: minSep, Slots: 32, SlotSamples: slot},
		tail:   4 * window,
		truth:  make(map[frame.Key][]byte),
	}
}

// Enqueue adds application payloads to both endpoints' queues.
func (s *Session) Enqueue(toBob, toAlice [][]byte) {
	s.queueA = append(s.queueA, toBob...)
	s.queueB = append(s.queueB, toAlice...)
}

// opposite is the router's §7.5 flow test for this 3-node network: two
// packets whose source and destination are each other's endpoints.
func opposite(a, b frame.Header) bool {
	return a.Src == b.Dst && a.Dst == b.Src && a.Src != b.Src
}

// Run executes trigger rounds until the configured cycle count or both
// queues drain.
func (s *Session) Run() Stats { return s.RunWith(nil) }

// RunWith is Run additionally streaming every delivery observation into
// rec (a sim.Metrics, a trace, a live accumulator — any sim.Recorder).
// The returned Stats is always complete; rec, when non-nil, sees the
// identical event stream.
func (s *Session) RunWith(rec sim.Recorder) Stats {
	var st Stats
	var r sim.Recorder = &st
	if rec != nil {
		r = teeRecorder{a: &st, b: rec}
	}
	for cycle := 0; cycle < s.cfg.Cycles; cycle++ {
		if len(s.queueA) == 0 && len(s.queueB) == 0 {
			break
		}
		st.Cycles++
		s.runCycle(&st, r)
	}
	return st
}

// runCycle is one trigger round: endpoints transmit simultaneously, the
// router classifies and (usually) forwards, endpoints decode. Protocol
// counters go to st; delivery observations to r.
func (s *Session) runCycle(st *Stats, r sim.Recorder) {
	// The router's previous broadcast carried the trigger (§7.6); both
	// endpoints respond, each after its own random delay. The relative
	// offset is the difference of the two draws.
	dA := s.delay.Draw(s.rng)
	dB := s.delay.Draw(s.rng)
	// Enforce the protocol's minimum separation between the two (§7.2):
	// if the draws landed too close, the later slot number backs off by
	// the minimum separation (a deterministic tie-break stands in for
	// the carrier-sense the paper assumes).
	if diff := dA - dB; diff > -s.delay.MinSeparation && diff < s.delay.MinSeparation {
		if dA <= dB {
			dB = dA + s.delay.MinSeparation
		} else {
			dA = dB + s.delay.MinSeparation
		}
	}

	var txs []channel.Transmission
	recA, okA := s.nextFrame(s.alice, s.bob.ID, &s.queueA)
	recB, okB := s.nextFrame(s.bob, s.alice.ID, &s.queueB)
	if okA {
		link, _ := s.graph.Link(topology.Alice, topology.Router)
		txs = append(txs, channel.Transmission{Signal: recA.Samples, Link: link, Delay: dA})
	}
	if okB {
		link, _ := s.graph.Link(topology.Bob, topology.Router)
		txs = append(txs, channel.Transmission{Signal: recB.Samples, Link: link, Delay: dB})
	}
	if len(txs) == 0 {
		return
	}
	if len(txs) == 2 {
		st.Triggered++
	}
	routerRx := channel.Receive(s.noise(), s.tail, txs...)

	// §7.5: the router peeks at the reachable headers and decides.
	switch s.router.DecideRouter(routerRx, opposite) {
	case radio.ActionAmplifyForward:
		st.RouterForwards++
		relayed := channel.AmplifyTo(routerRx, 1)
		s.deliver(r, s.alice, relayed, okB, recB)
		s.deliver(r, s.bob, relayed, okA, recA)
	case radio.ActionDecode:
		// Not expected in this topology (the router never knows either
		// packet); counted as a drop for accounting.
		st.RouterDrops++
		s.countLost(r, okA, okB)
	default:
		// A single transmission (starved queue) is routed traditionally:
		// decode and re-send. For simplicity the cycle just counts it
		// dropped if the router cannot identify two flows.
		if len(txs) == 1 {
			s.forwardSingle(st, r, routerRx, okA, recA, okB, recB)
		} else {
			st.RouterDrops++
			s.countLost(r, okA, okB)
		}
	}
}

// nextFrame pops a payload and builds its frame, remembering ground truth.
func (s *Session) nextFrame(n *radio.Node, dst uint16, queue *[][]byte) (frame.SentRecord, bool) {
	if len(*queue) == 0 {
		return frame.SentRecord{}, false
	}
	payload := (*queue)[0]
	*queue = (*queue)[1:]
	pkt := frame.NewPacket(n.ID, dst, n.NextSeq(), payload)
	mac.MarkTrigger(&pkt.Header)
	rec := n.BuildFrame(pkt)
	s.truth[pkt.Header.Key()] = rec.Bits
	return rec, true
}

// deliver runs one endpoint's decode of the relayed broadcast and scores
// it against ground truth.
func (s *Session) deliver(r sim.Recorder, n *radio.Node, relayed dsp.Signal, wantedSent bool, wanted frame.SentRecord) {
	if !wantedSent {
		return
	}
	var from, to int
	if n.ID == s.alice.ID {
		from, to = topology.Router, topology.Alice
	} else {
		from, to = topology.Router, topology.Bob
	}
	link, _ := s.graph.Link(from, to)
	rx := channel.Receive(s.noise(), s.tail,
		channel.Transmission{Signal: relayed, Link: link})
	res, err := n.Receive(rx)
	if err != nil {
		r.RecordLost(1)
		return
	}
	ber := bits.BER(wanted.Bits, res.WantedBits)
	if ber > 0.1 {
		r.RecordLost(1)
		return
	}
	r.RecordANCDecode(ber)
	r.RecordDelivered(float64(len(wanted.Packet.Payload) * 8))
}

// forwardSingle is the traditional path for a lone uplink packet: the
// router decodes it and retransmits a regenerated copy to its destination.
func (s *Session) forwardSingle(st *Stats, r sim.Recorder, routerRx dsp.Signal, okA bool, recA frame.SentRecord, okB bool, recB frame.SentRecord) {
	res, err := s.router.Receive(routerRx)
	if err != nil || !res.BodyOK {
		st.RouterDrops++
		s.countLost(r, okA, okB)
		return
	}
	fwd := s.router.BuildFrame(frame.Packet{Header: res.Packet.Header, Payload: res.Packet.Payload})
	var to int
	var n *radio.Node
	var wanted frame.SentRecord
	if res.Packet.Header.Dst == s.alice.ID {
		to, n = topology.Alice, s.alice
		wanted = recB
	} else {
		to, n = topology.Bob, s.bob
		wanted = recA
	}
	link, _ := s.graph.Link(topology.Router, to)
	rx := channel.Receive(s.noise(), s.tail,
		channel.Transmission{Signal: fwd.Samples, Link: link, Delay: 100})
	got, err := n.Receive(rx)
	if err != nil || !got.BodyOK {
		r.RecordLost(1)
		return
	}
	if !bits.Equal(got.WantedBits, wanted.Bits) {
		// Regeneration changes nothing observable; any mismatch is a
		// decode error downstream. This is a traditional (regenerated)
		// forward, not an ANC interference decode, so the BER goes to the
		// session's own tally, not the RecordANCDecode stream.
		st.TotalBER += bits.BER(wanted.Bits, got.WantedBits)
	}
	r.RecordDelivered(float64(len(wanted.Packet.Payload) * 8))
}

func (s *Session) countLost(r sim.Recorder, okA, okB bool) {
	if okA {
		r.RecordLost(1)
	}
	if okB {
		r.RecordLost(1)
	}
}

func (s *Session) noise() *dsp.NoiseSource {
	return dsp.NewNoiseSource(s.floor, s.rng.Int63())
}

// String implements fmt.Stringer for quick inspection.
func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d triggered=%d forwards=%d drops=%d delivered=%d lost=%d meanBER=%.4f",
		s.Cycles, s.Triggered, s.RouterForwards, s.RouterDrops, s.Delivered, s.Lost, s.MeanBER())
}
