package mesh

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
)

func payloads(rng *rand.Rand, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestClosedLoopDeliversBothDirections(t *testing.T) {
	s := NewSession(Config{Cycles: 6, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	s.Enqueue(payloads(rng, 6, 96), payloads(rng, 6, 96))
	st := s.Run()
	if st.Cycles != 6 {
		t.Errorf("cycles = %d, want 6", st.Cycles)
	}
	if st.Triggered != 6 {
		t.Errorf("triggered rounds = %d, want 6 (both queues full)", st.Triggered)
	}
	// The router must reach its forwarding decision from the signals
	// alone — this is the §7.5 procedure under test.
	if st.RouterForwards < 5 {
		t.Errorf("router forwarded %d of 6 rounds", st.RouterForwards)
	}
	// Two packets per successful round.
	if st.Delivered < 10 {
		t.Errorf("delivered = %d of 12", st.Delivered)
	}
	if st.MeanBER() > 0.04 {
		t.Errorf("mean BER = %.4f", st.MeanBER())
	}
}

func TestClosedLoopAsymmetricTraffic(t *testing.T) {
	// Bob runs out of traffic: the remaining rounds degrade to single
	// uplinks, which the router must route traditionally (decode and
	// regenerate) rather than amplify-forward.
	s := NewSession(Config{Cycles: 8, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	s.Enqueue(payloads(rng, 8, 96), payloads(rng, 2, 96))
	st := s.Run()
	if st.Triggered != 2 {
		t.Errorf("triggered rounds = %d, want 2", st.Triggered)
	}
	if st.Delivered < 8 {
		t.Errorf("delivered = %d of 10", st.Delivered)
	}
}

func TestClosedLoopStopsWhenDrained(t *testing.T) {
	s := NewSession(Config{Cycles: 50, Seed: 5})
	rng := rand.New(rand.NewSource(6))
	s.Enqueue(payloads(rng, 3, 96), payloads(rng, 3, 96))
	st := s.Run()
	if st.Cycles > 4 {
		t.Errorf("session ran %d cycles for 3 packet pairs", st.Cycles)
	}
}

func TestClosedLoopDeterministic(t *testing.T) {
	run := func() Stats {
		s := NewSession(Config{Cycles: 4, Seed: 7})
		rng := rand.New(rand.NewSource(8))
		s.Enqueue(payloads(rng, 4, 96), payloads(rng, 4, 96))
		return s.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

// TestRunWithStreamsRecorder verifies the session speaks the
// sim.Recorder vocabulary: an external recorder sees the identical
// delivery stream the session's own Stats folds up.
func TestRunWithStreamsRecorder(t *testing.T) {
	mk := func() *Session {
		s := NewSession(Config{Cycles: 6, Seed: 11})
		var toBob, toAlice [][]byte
		for i := 0; i < 5; i++ {
			toBob = append(toBob, []byte{byte(i), 1, 2, 3})
			toAlice = append(toAlice, []byte{byte(i), 9, 8, 7})
		}
		s.Enqueue(toBob, toAlice)
		return s
	}
	var m sim.Metrics
	st := mk().RunWith(&m)
	if m.Delivered != st.Delivered || m.Lost != st.Lost {
		t.Errorf("streamed delivered/lost %d/%d != stats %d/%d", m.Delivered, m.Lost, st.Delivered, st.Lost)
	}
	// With this seed every delivery is an amplify-forward ANC decode, so
	// the streamed ANC pool sums to the session's whole BER tally. (A
	// traditional regenerated forward would count in TotalBER only — the
	// RecordANCDecode stream is ANC decodes by contract.)
	var berSum float64
	for _, b := range m.BERs {
		berSum += b
	}
	if berSum != st.TotalBER {
		t.Errorf("streamed BER sum %v != stats TotalBER %v", berSum, st.TotalBER)
	}
	// And streaming must not perturb the session itself.
	plain := mk().Run()
	if plain != st {
		t.Errorf("RunWith stats %+v != Run stats %+v", st, plain)
	}
}

// TestClosedLoopUnderDQPSK runs the whole trigger protocol — router
// decisions, amplify-and-forward, two-sided interference decoding —
// under the second registered modem. Both directions must deliver:
// each triggered round decodes one packet forward and one backward, so
// any asymmetry here would mean the multi-bit backward path regressed.
func TestClosedLoopUnderDQPSK(t *testing.T) {
	s := NewSession(Config{Modem: "dqpsk", Cycles: 6, Seed: 1})
	if got := s.modem.Name(); got != "dqpsk" {
		t.Fatalf("session modem = %q, want dqpsk", got)
	}
	rng := rand.New(rand.NewSource(2))
	s.Enqueue(payloads(rng, 6, 96), payloads(rng, 6, 96))
	st := s.Run()
	if st.Triggered != 6 {
		t.Errorf("triggered rounds = %d, want 6 (both queues full)", st.Triggered)
	}
	if st.RouterForwards < 5 {
		t.Errorf("router forwarded %d of 6 rounds", st.RouterForwards)
	}
	if st.Delivered < 10 {
		t.Errorf("delivered = %d of 12", st.Delivered)
	}
	if st.MeanBER() > 0.04 {
		t.Errorf("mean BER = %.4f", st.MeanBER())
	}
}

// TestUnknownModemPanics pins the Config.Modem failure mode: a typo'd
// name must fail loudly at session construction.
func TestUnknownModemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSession with unknown modem did not panic")
		}
	}()
	NewSession(Config{Modem: "warp", Seed: 1})
}

func TestStatsString(t *testing.T) {
	st := Stats{Cycles: 3, Delivered: 5, TotalBER: 0.01}
	out := st.String()
	for _, want := range []string{"cycles=3", "delivered=5", "meanBER=0.0020"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() missing %q: %s", want, out)
		}
	}
}

func TestDefaults(t *testing.T) {
	s := NewSession(Config{Seed: 9})
	if s.cfg.PayloadBytes != 96 || s.cfg.Cycles != 10 || *s.cfg.SNRdB != 25 {
		t.Errorf("defaults: %+v", s.cfg)
	}
	if s.cfg.Modem != "msk" || s.modem.Name() != "msk" {
		t.Errorf("default modem = %q (session %q), want msk", s.cfg.Modem, s.modem.Name())
	}
	if s.cfg.SamplesPerSymbol != 4 {
		t.Errorf("default samples/symbol = %d, want 4", s.cfg.SamplesPerSymbol)
	}
}

// TestZeroSNRIsRespected is the regression test for the withDefaults
// zero-value trap: an explicit 0 dB session must keep its 0 dB — the
// receiver noise floor rises to the mean channel power instead of being
// silently recalibrated to the 25 dB default.
func TestZeroSNRIsRespected(t *testing.T) {
	quiet := NewSession(Config{Seed: 9, SNRdB: Ptr(0)})
	if *quiet.cfg.SNRdB != 0 {
		t.Fatalf("withDefaults rewrote explicit 0 dB to %v", *quiet.cfg.SNRdB)
	}
	loud := NewSession(Config{Seed: 9})
	if quiet.floor <= loud.floor {
		t.Errorf("0 dB noise floor %v not above default-SNR floor %v", quiet.floor, loud.floor)
	}
}
