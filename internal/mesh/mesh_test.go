package mesh

import (
	"math/rand"
	"strings"
	"testing"
)

func payloads(rng *rand.Rand, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestClosedLoopDeliversBothDirections(t *testing.T) {
	s := NewSession(Config{Cycles: 6, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	s.Enqueue(payloads(rng, 6, 96), payloads(rng, 6, 96))
	st := s.Run()
	if st.Cycles != 6 {
		t.Errorf("cycles = %d, want 6", st.Cycles)
	}
	if st.Triggered != 6 {
		t.Errorf("triggered rounds = %d, want 6 (both queues full)", st.Triggered)
	}
	// The router must reach its forwarding decision from the signals
	// alone — this is the §7.5 procedure under test.
	if st.RouterForwards < 5 {
		t.Errorf("router forwarded %d of 6 rounds", st.RouterForwards)
	}
	// Two packets per successful round.
	if st.Delivered < 10 {
		t.Errorf("delivered = %d of 12", st.Delivered)
	}
	if st.MeanBER() > 0.04 {
		t.Errorf("mean BER = %.4f", st.MeanBER())
	}
}

func TestClosedLoopAsymmetricTraffic(t *testing.T) {
	// Bob runs out of traffic: the remaining rounds degrade to single
	// uplinks, which the router must route traditionally (decode and
	// regenerate) rather than amplify-forward.
	s := NewSession(Config{Cycles: 8, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	s.Enqueue(payloads(rng, 8, 96), payloads(rng, 2, 96))
	st := s.Run()
	if st.Triggered != 2 {
		t.Errorf("triggered rounds = %d, want 2", st.Triggered)
	}
	if st.Delivered < 8 {
		t.Errorf("delivered = %d of 10", st.Delivered)
	}
}

func TestClosedLoopStopsWhenDrained(t *testing.T) {
	s := NewSession(Config{Cycles: 50, Seed: 5})
	rng := rand.New(rand.NewSource(6))
	s.Enqueue(payloads(rng, 3, 96), payloads(rng, 3, 96))
	st := s.Run()
	if st.Cycles > 4 {
		t.Errorf("session ran %d cycles for 3 packet pairs", st.Cycles)
	}
}

func TestClosedLoopDeterministic(t *testing.T) {
	run := func() Stats {
		s := NewSession(Config{Cycles: 4, Seed: 7})
		rng := rand.New(rand.NewSource(8))
		s.Enqueue(payloads(rng, 4, 96), payloads(rng, 4, 96))
		return s.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

func TestStatsString(t *testing.T) {
	st := Stats{Cycles: 3, Delivered: 5, TotalBER: 0.01}
	out := st.String()
	for _, want := range []string{"cycles=3", "delivered=5", "meanBER=0.0020"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() missing %q: %s", want, out)
		}
	}
}

func TestDefaults(t *testing.T) {
	s := NewSession(Config{Seed: 9})
	if s.cfg.PayloadBytes != 96 || s.cfg.Cycles != 10 || *s.cfg.SNRdB != 25 {
		t.Errorf("defaults: %+v", s.cfg)
	}
}

// TestZeroSNRIsRespected is the regression test for the withDefaults
// zero-value trap: an explicit 0 dB session must keep its 0 dB — the
// receiver noise floor rises to the mean channel power instead of being
// silently recalibrated to the 25 dB default.
func TestZeroSNRIsRespected(t *testing.T) {
	quiet := NewSession(Config{Seed: 9, SNRdB: Ptr(0)})
	if *quiet.cfg.SNRdB != 0 {
		t.Fatalf("withDefaults rewrote explicit 0 dB to %v", *quiet.cfg.SNRdB)
	}
	loud := NewSession(Config{Seed: 9})
	if quiet.floor <= loud.floor {
		t.Errorf("0 dB noise floor %v not above default-SNR floor %v", quiet.floor, loud.floor)
	}
}
