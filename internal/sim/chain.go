package sim

import (
	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/topology"
)

// chain is the unidirectional 3-hop chain of Fig. 2, where digital
// network coding cannot help but ANC can.
var chain = &simpleScenario{
	name:  "chain",
	desc:  "Fig. 2 chain: one flow over three hops; ANC overlaps N1 and N3",
	build: topology.Chain,
	order: []Scheme{SchemeANC, SchemeRouting},
	start: map[Scheme]func(*Env) StepFunc{
		SchemeANC:     func(e *Env) StepFunc { return func(i int, r Recorder) { stepChainANC(e, r, i) } },
		SchemeRouting: func(e *Env) StepFunc { return func(i int, r Recorder) { stepChainTraditional(e, r) } },
	},
}

func init() { Register(chain) }

// Chain returns the registered Fig. 2 scenario.
func Chain() Scenario { return chain }

// stepChainANC runs one steady-state cycle of Fig. 2(c): N1 transmits the
// next packet p_{i+1} while N3 simultaneously forwards p_i to N4 (both
// triggered by N2's preceding transmission). N2 receives the collision,
// cancels p_i — which it forwarded to N3 one slot earlier and therefore
// knows — and decodes p_{i+1}. N4 is out of N1's range and receives p_i
// cleanly. The second slot of the cycle is N2's own forward of p_{i+1} to
// N3.
//
// Per delivered packet: one collision slot (offset + frame + guard) and
// one clean slot (frame + guard), versus three clean slots for routing —
// the 3 → 2 reduction of §2(b).
func stepChainANC(e *Env, r Recorder, i int) {
	n1, n2, n3, n4 := e.nodes[0], e.nodes[1], e.nodes[2], e.nodes[3]
	// p_i: the packet N2 already forwarded to N3 (steady state). N2
	// knows its bits; N3 retransmits the same frame.
	pktOld := frame.NewPacket(n1.ID, n4.ID, uint32(1000+i*2), e.payload())
	recOld := n3.BuildFrame(pktOld)
	n2.Remember(recOld)
	// p_{i+1}: N1's fresh packet.
	pktNew := frame.NewPacket(n1.ID, n4.ID, uint32(1000+i*2+1), e.payload())
	recNew := n1.BuildFrame(pktNew)

	// Collision slot: N1→N2 and N3→N4 simultaneously; N2 hears both
	// (N3 is adjacent), N4 hears only N3.
	delta := e.cfg.Delay.Draw(e.rng)
	dNew, dOld := 0, delta
	if e.rng.Intn(2) == 1 {
		dNew, dOld = delta, 0
	}
	link12, _ := e.graph.Link(topology.ChainN1, topology.ChainN2)
	link32, _ := e.graph.Link(topology.ChainN3, topology.ChainN2)
	rxN2 := e.receive(
		channel.Transmission{Signal: recNew.Samples, Link: link12, Delay: dNew},
		channel.Transmission{Signal: recOld.Samples, Link: link32, Delay: dOld},
	)

	// One packet traverses the chain per cycle. Its quality is set by
	// the ANC decode it went through at N2 (measured here on the
	// statistically identical decode of p_{i+1}) and it reaches the
	// sink only if N4's clean reception of p_i succeeds. Both receptions
	// are synthesized first (reception synthesis is where the RNG draws
	// happen), then decoded as one burst; the accounting below reads the
	// batch results in queue order.
	e.queueANCDecode(n2, rxN2, frame.SentRecord{})
	link34, _ := e.graph.Link(topology.ChainN3, topology.ChainN4)
	rxN4 := e.receive(channel.Transmission{Signal: recOld.Samples, Link: link34, Delay: dOld})
	e.queueANCDecode(n4, rxN4, frame.SentRecord{})
	out := e.flushBatch()
	resN2, errN2 := out[0].Result, out[0].Err
	resN4, errN4 := out[1].Result, out[1].Err
	e.finishBatch()
	sinkOK := errN4 == nil && resN4.BodyOK

	if errN2 != nil {
		r.RecordLost(1)
	} else {
		ber := payloadBER(recNew.Bits, resN2.WantedBits, int(pktNew.Header.Len))
		r.RecordANCDecode(ber)
		good := e.cfg.Redundancy.Goodput(ber)
		if good == 0 || !sinkOK {
			r.RecordLost(1)
		} else {
			r.RecordDelivered(float64(int(pktNew.Header.Len)*8) * good)
		}
	}

	r.RecordCollision(mac.OverlapFraction(e.frameLen, delta))
	// Collision slot plus N2's forwarding slot.
	r.RecordAirTime(float64((delta + e.frameLen + e.guard) + (e.frameLen + e.guard)))
}

// stepChainTraditional runs one packet of Fig. 2(b): three sequential
// clean hops under the optimal MAC.
func stepChainTraditional(e *Env, r Recorder) {
	n1, n2, n3, n4 := e.nodes[0], e.nodes[1], e.nodes[2], e.nodes[3]
	pkt := frame.NewPacket(n1.ID, n4.ID, n1.NextSeq(), e.payload())
	r.RecordAirTime(float64(3 * (e.frameLen + e.guard)))

	ok, payload := e.cleanHop(n1.BuildFrame(pkt), topology.ChainN1, topology.ChainN2)
	if !ok {
		r.RecordLost(1)
		return
	}
	ok, payload = e.cleanHop(n2.BuildFrame(frame.Packet{Header: pkt.Header, Payload: payload}), topology.ChainN2, topology.ChainN3)
	if !ok {
		r.RecordLost(1)
		return
	}
	ok, payload = e.cleanHop(n3.BuildFrame(frame.Packet{Header: pkt.Header, Payload: payload}), topology.ChainN3, topology.ChainN4)
	if !ok {
		r.RecordLost(1)
		return
	}
	r.RecordDelivered(float64(len(payload) * 8))
}

// RunChainANC simulates one run of the steady state of Fig. 2(c).
func RunChainANC(cfg Config, seed int64) Metrics {
	return mustRun(chain, SchemeANC, cfg, seed)
}

// RunChainTraditional simulates one run of Fig. 2(b).
func RunChainTraditional(cfg Config, seed int64) Metrics {
	return mustRun(chain, SchemeRouting, cfg, seed)
}
