package sim

import (
	"testing"

	"repro/internal/mac"
)

// testCfg keeps unit-test runs quick; the benchmark harness uses the
// full defaults.
func testCfg() Config {
	return Config{Packets: 8}
}

// runPair runs ANC and a baseline on the same seed (same channel
// realization — the paper's "two consecutive runs in the same topology").
func gainOver(t *testing.T, anc, base func(Config, int64) Metrics, seed int64) float64 {
	t.Helper()
	a := anc(testCfg(), seed)
	b := base(testCfg(), seed)
	if a.TimeSamples == 0 || b.TimeSamples == 0 {
		t.Fatal("degenerate run")
	}
	return a.Throughput() / b.Throughput()
}

func TestAliceBobOrdering(t *testing.T) {
	// §11.3: ANC > COPE > traditional for two-way relay traffic.
	cfg := testCfg()
	anc := RunAliceBobANC(cfg, 42)
	cope := RunAliceBobCOPE(cfg, 42)
	trad := RunAliceBobTraditional(cfg, 42)
	if !(anc.Throughput() > cope.Throughput() && cope.Throughput() > trad.Throughput()) {
		t.Errorf("ordering violated: anc=%v cope=%v trad=%v",
			anc.Throughput(), cope.Throughput(), trad.Throughput())
	}
}

func TestAliceBobGainRange(t *testing.T) {
	// The paper reports ≈1.70× over routing and ≈1.30× over COPE; our
	// time model lands in the same region (see EXPERIMENTS.md). Assert a
	// band wide enough for run-to-run noise but tight enough to catch
	// accounting regressions.
	var gTrad, gCope float64
	const runs = 3
	for s := int64(0); s < runs; s++ {
		gTrad += gainOver(t, RunAliceBobANC, RunAliceBobTraditional, 100+s)
		gCope += gainOver(t, RunAliceBobANC, RunAliceBobCOPE, 100+s)
	}
	gTrad /= runs
	gCope /= runs
	if gTrad < 1.4 || gTrad > 1.9 {
		t.Errorf("gain over traditional = %.3f, want ≈ 1.6 (paper: 1.70)", gTrad)
	}
	if gCope < 1.05 || gCope > 1.45 {
		t.Errorf("gain over COPE = %.3f, want ≈ 1.2 (paper: 1.30)", gCope)
	}
}

func TestAliceBobOverlapCalibration(t *testing.T) {
	// §11.4: mean packet overlap ≈ 80%.
	m := RunAliceBobANC(Config{Packets: 40}, 7)
	if ovl := m.MeanOverlap(); ovl < 0.72 || ovl > 0.88 {
		t.Errorf("mean overlap = %.3f, want ≈ 0.80", ovl)
	}
}

func TestAliceBobBER(t *testing.T) {
	// §11.3/§11.4: ANC decodes with average BER in the low percent range
	// (paper: 2–4% on USRPs; our cleaner channel sits at or below that).
	m := RunAliceBobANC(Config{Packets: 12}, 8)
	if len(m.BERs) == 0 {
		t.Fatal("no BER samples")
	}
	if ber := m.MeanBER(); ber > 0.04 {
		t.Errorf("mean BER = %.4f, want ≤ 0.04", ber)
	}
}

func TestChainGain(t *testing.T) {
	// §11.6: ≈36% gain for unidirectional chain traffic, close to the
	// theoretical 1.5 because only the collision slot pays the random
	// delay.
	var g float64
	const runs = 3
	for s := int64(0); s < runs; s++ {
		g += gainOver(t, RunChainANC, RunChainTraditional, 200+s)
	}
	g /= runs
	if g < 1.15 || g > 1.5 {
		t.Errorf("chain gain = %.3f, want ≈ 1.35 (paper: 1.36)", g)
	}
}

func TestChainBERLowerThanAliceBob(t *testing.T) {
	// §11.6: the chain decodes at the node that first receives the
	// interfered signal — no re-amplified noise — so its BER undercuts
	// the Alice–Bob topology's.
	var chain, ab float64
	const runs = 3
	for s := int64(0); s < runs; s++ {
		chain += RunChainANC(Config{Packets: 10}, 300+s).MeanBER()
		ab += RunAliceBobANC(Config{Packets: 10}, 300+s).MeanBER()
	}
	if chain >= ab {
		t.Errorf("chain BER %.4f not below Alice–Bob BER %.4f", chain/runs, ab/runs)
	}
}

func TestXOrderingAndGain(t *testing.T) {
	cfg := testCfg()
	anc := RunXANC(cfg, 9)
	cope := RunXCOPE(cfg, 9)
	trad := RunXTraditional(cfg, 9)
	if !(anc.Throughput() > cope.Throughput() && cope.Throughput() > trad.Throughput()) {
		t.Errorf("X ordering violated: anc=%v cope=%v trad=%v",
			anc.Throughput(), cope.Throughput(), trad.Throughput())
	}
	g := anc.Throughput() / trad.Throughput()
	if g < 1.3 || g > 1.9 {
		t.Errorf("X gain over traditional = %.3f, want ≈ 1.6 (paper: 1.65)", g)
	}
}

func TestSIRSweepShape(t *testing.T) {
	// Fig. 13: BER ≤ 5% at −3 dB SIR and → 0 at +3..4 dB.
	pts := SIRSweep(Config{Packets: 10}, 11, -3, 4, 1)
	if len(pts) != 8 {
		t.Fatalf("%d points, want 8", len(pts))
	}
	if pts[0].MeanBER > 0.05 {
		t.Errorf("BER at −3 dB = %.4f, want ≤ 0.05", pts[0].MeanBER)
	}
	last := pts[len(pts)-1]
	if last.MeanBER > 0.01 {
		t.Errorf("BER at +4 dB = %.4f, want ≈ 0", last.MeanBER)
	}
	// Coarse monotonicity: the mean over the low-SIR half is at least
	// the mean over the high-SIR half.
	var lo, hi float64
	for _, p := range pts[:4] {
		lo += p.MeanBER
	}
	for _, p := range pts[4:] {
		hi += p.MeanBER
	}
	if hi > lo+1e-9 {
		t.Errorf("BER grows with SIR: low half %.5f, high half %.5f", lo/4, hi/4)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := RunAliceBobANC(testCfg(), 77)
	b := RunAliceBobANC(testCfg(), 77)
	if a.Throughput() != b.Throughput() || a.MeanBER() != b.MeanBER() {
		t.Error("same seed produced different metrics")
	}
	c := RunAliceBobANC(testCfg(), 78)
	if a.Throughput() == c.Throughput() {
		t.Error("different seeds produced identical metrics")
	}
}

func TestDefaultsDerived(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.PayloadBytes != 128 || cfg.SamplesPerSymbol != 4 || *cfg.SNRdB != 25 || *cfg.GuardFrac != 0.08 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if err := cfg.Delay.Validate(); err != nil {
		t.Errorf("derived delay config invalid: %v", err)
	}
	// The derived delay keeps the pilot+header clean (minimum
	// separation covers them plus detector jitter).
	if cfg.Delay.MinSeparation < (64+104)*cfg.SamplesPerSymbol {
		t.Errorf("MinSeparation %d too small", cfg.Delay.MinSeparation)
	}
}

func TestMetricsHelpers(t *testing.T) {
	var m Metrics
	if m.Throughput() != 0 || m.MeanBER() != 0 || m.MeanOverlap() != 0 {
		t.Error("zero Metrics helpers not zero")
	}
	m = Metrics{DeliveredBits: 100, TimeSamples: 50, BERs: []float64{0.02, 0.04}, Overlaps: []float64{0.8, 0.9}}
	if m.Throughput() != 2 {
		t.Errorf("Throughput = %v", m.Throughput())
	}
	if m.MeanBER() != 0.03 {
		t.Errorf("MeanBER = %v", m.MeanBER())
	}
	if d := m.MeanOverlap() - 0.85; d > 1e-12 || d < -1e-12 {
		t.Errorf("MeanOverlap = %v", m.MeanOverlap())
	}
}

func TestTimeAccounting(t *testing.T) {
	// Traditional: exactly 4 transmissions of (frame+guard) per exchange.
	cfg := Config{Packets: 3}
	m := RunAliceBobTraditional(cfg, 5)
	e := newEnvForTest(cfg, 5)
	want := float64(3 * mac.SlotsTraditionalAliceBob * (e.frameLen + e.guard))
	if m.TimeSamples != want {
		t.Errorf("traditional time = %v, want %v", m.TimeSamples, want)
	}
	// COPE: 3 slots per exchange.
	m = RunAliceBobCOPE(cfg, 5)
	want = float64(3 * mac.SlotsCOPEAliceBob * (e.frameLen + e.guard))
	if m.TimeSamples != want {
		t.Errorf("COPE time = %v, want %v", m.TimeSamples, want)
	}
}
