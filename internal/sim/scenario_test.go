package sim

import (
	"testing"
)

// engineCfg keeps engine tests quick: a tiny packet budget per run.
func engineCfg() Config {
	return Config{Packets: 3}
}

func TestRegistryHasPaperAndNewScenarios(t *testing.T) {
	for _, name := range []string{"alice-bob", "x", "chain", "pairs", "pairs4", "x-cross", "near-far", "fading", "chain-5", "dqpsk"} {
		if _, ok := LookupScenario(name); !ok {
			t.Errorf("scenario %q not registered", name)
		}
	}
	if _, ok := LookupScenario("no-such"); ok {
		t.Error("lookup of unknown scenario succeeded")
	}
	names := make(map[string]bool)
	for _, sc := range Scenarios() {
		if names[sc.Name()] {
			t.Errorf("duplicate scenario name %q", sc.Name())
		}
		names[sc.Name()] = true
		if sc.Description() == "" {
			t.Errorf("scenario %q has no description", sc.Name())
		}
	}
}

func TestEngineRejectsUnsupportedScheme(t *testing.T) {
	eng := NewEngine(engineCfg())
	if _, err := eng.Run(Chain(), SchemeCOPE, 1); err == nil {
		t.Error("chain accepted COPE; COPE does not apply to unidirectional flows")
	}
	if _, err := eng.Campaign(Chain(), []Scheme{SchemeANC, SchemeCOPE}, []int64{1, 2}); err == nil {
		t.Error("campaign accepted an unsupported scheme")
	}
}

// TestScenariosTable runs every registered scenario under every scheme it
// supports with a tiny packet budget, asserting determinism (same seed ⇒
// identical throughput and BER) and seed sensitivity.
func TestScenariosTable(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			eng := NewEngine(engineCfg())
			if len(sc.Schemes()) == 0 {
				t.Fatal("scenario supports no schemes")
			}
			for _, scheme := range sc.Schemes() {
				m1, err := eng.Run(sc, scheme, 42)
				if err != nil {
					t.Fatalf("%s: %v", scheme, err)
				}
				if m1.TimeSamples <= 0 {
					t.Errorf("%s: no air time charged", scheme)
				}
				if m1.Delivered+m1.Lost == 0 {
					t.Errorf("%s: no packets accounted", scheme)
				}
				if m1.Throughput() <= 0 {
					t.Errorf("%s: zero throughput", scheme)
				}
				m2, err := eng.Run(sc, scheme, 42)
				if err != nil {
					t.Fatalf("%s rerun: %v", scheme, err)
				}
				if m1.Throughput() != m2.Throughput() || m1.MeanBER() != m2.MeanBER() {
					t.Errorf("%s: same seed produced different metrics (%v/%v vs %v/%v)",
						scheme, m1.Throughput(), m1.MeanBER(), m2.Throughput(), m2.MeanBER())
				}
			}
			// Different seeds must see different channel realizations.
			a, _ := eng.Run(sc, SchemeANC, 42)
			b, _ := eng.Run(sc, SchemeANC, 43)
			if a.Throughput() == b.Throughput() {
				t.Error("different seeds produced identical ANC throughput")
			}
		})
	}
}

// TestScenariosANCBeatsRouting asserts the paper's headline ordering on
// the paper topologies — and that the new scenarios preserve it. Every
// registered modem supports the full §7.4 decode set (symbol-wise frame
// mirroring), so the ordering holds unconditionally, dqpsk cells
// included.
func TestScenariosANCBeatsRouting(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			eng := NewEngine(Config{Packets: 4})
			anc, err := eng.Run(sc, SchemeANC, 9)
			if err != nil {
				t.Fatal(err)
			}
			routing, err := eng.Run(sc, SchemeRouting, 9)
			if err != nil {
				t.Fatal(err)
			}
			if anc.Throughput() <= routing.Throughput() {
				t.Errorf("ANC throughput %v not above routing %v",
					anc.Throughput(), routing.Throughput())
			}
		})
	}
}

// TestCampaignMatchesSequentialRuns pins the worker pool to the
// single-goroutine path: the campaign matrix must equal run-by-run
// results, independent of scheduling and scratch reuse. The sweep
// includes the time-varying scenarios, so per-slot channel evolution is
// covered by the equivalence too.
func TestCampaignMatchesSequentialRuns(t *testing.T) {
	for _, tc := range []struct {
		sc    Scenario
		seeds []int64
	}{
		{AliceBob(), []int64{5, 17, 101, 4242}},
		{MustScenario("near-far"), []int64{5, 17}},
		{MustScenario("fading"), []int64{5, 17}},
		{MustScenario("chain-5"), []int64{5, 17}},
	} {
		sc := tc.sc
		seeds := tc.seeds
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			eng := NewEngine(engineCfg())
			schemes := sc.Schemes()
			rows, err := eng.Campaign(sc, schemes, seeds)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != len(seeds) {
				t.Fatalf("%d rows, want %d", len(rows), len(seeds))
			}
			for i, seed := range seeds {
				for j, scheme := range schemes {
					want, err := eng.Run(sc, scheme, seed)
					if err != nil {
						t.Fatal(err)
					}
					got := rows[i][j]
					if got.Throughput() != want.Throughput() || got.MeanBER() != want.MeanBER() ||
						got.Delivered != want.Delivered || got.Lost != want.Lost {
						t.Errorf("seed %d scheme %s: campaign %+v != sequential %+v", seed, scheme, got, want)
					}
				}
			}
		})
	}
}

// TestLegacyWrappersMatchEngine pins the compatibility helpers to the
// engine path.
func TestLegacyWrappersMatchEngine(t *testing.T) {
	cfg := engineCfg()
	eng := NewEngine(cfg)
	fromEngine, err := eng.Run(AliceBob(), SchemeANC, 7)
	if err != nil {
		t.Fatal(err)
	}
	fromWrapper := RunAliceBobANC(cfg, 7)
	if fromEngine.Throughput() != fromWrapper.Throughput() {
		t.Errorf("wrapper %v != engine %v", fromWrapper.Throughput(), fromEngine.Throughput())
	}
}

// TestScratchReuseDoesNotChangeResults runs two seeds back to back on one
// Scratch and checks each against a fresh-scratch run: reception buffers
// carrying stale samples from a previous run must not leak into results.
func TestScratchReuseDoesNotChangeResults(t *testing.T) {
	cfg := engineCfg()
	eng := NewEngine(cfg)
	scratch := NewScratch()
	for _, seed := range []int64{3, 11, 19} {
		reused, err := eng.RunReusing(AliceBob(), SchemeANC, seed, scratch)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := eng.Run(AliceBob(), SchemeANC, seed)
		if err != nil {
			t.Fatal(err)
		}
		if reused.Throughput() != fresh.Throughput() || reused.MeanBER() != fresh.MeanBER() {
			t.Errorf("seed %d: reused scratch %v/%v != fresh %v/%v",
				seed, reused.Throughput(), reused.MeanBER(), fresh.Throughput(), fresh.MeanBER())
		}
	}
}

// TestParallelPairsAggregates checks the pairs scenario accounts k cells:
// k times the packets, k times the air time of a single pair.
func TestParallelPairsAggregates(t *testing.T) {
	cfg := Config{Packets: 2}
	pair, err := NewEngine(cfg).Run(AliceBob(), SchemeRouting, 3)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := NewEngine(cfg).Run(MustScenario("pairs"), SchemeRouting, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pairs.Delivered != 2*pair.Delivered {
		t.Errorf("2 cells delivered %d, single pair %d", pairs.Delivered, pair.Delivered)
	}
	if pairs.TimeSamples != 2*pair.TimeSamples {
		t.Errorf("2 cells charged %v samples, single pair %v", pairs.TimeSamples, pair.TimeSamples)
	}
}
