package sim

import (
	"reflect"
	"testing"
)

// TestWorkspaceReuseMatchesFreshAllocation sweeps every registered
// scenario and scheme, comparing the workspace-reusing decode path (one
// Scratch — and therefore one core.Workspace — carried across many runs,
// exactly what a campaign worker does) against fresh per-run allocation.
// The two must produce identical Metrics for identical seeds: buffer
// reuse is an optimization, never an observable behavior change.
func TestWorkspaceReuseMatchesFreshAllocation(t *testing.T) {
	eng := NewEngine(Config{Packets: 2})
	seeds := []int64{3, 44}
	if testing.Short() {
		seeds = seeds[:1]
	}
	shared := NewScratch()
	for _, sc := range Scenarios() {
		for _, scheme := range sc.Schemes() {
			for _, seed := range seeds {
				fresh, err := eng.Run(sc, scheme, seed)
				if err != nil {
					t.Fatalf("%s/%s seed %d: fresh run: %v", sc.Name(), scheme, seed, err)
				}
				reused, err := eng.RunReusing(sc, scheme, seed, shared)
				if err != nil {
					t.Fatalf("%s/%s seed %d: reusing run: %v", sc.Name(), scheme, seed, err)
				}
				if !reflect.DeepEqual(fresh, reused) {
					t.Errorf("%s/%s seed %d: workspace-reusing metrics diverge from fresh allocation:\nfresh:  %+v\nreused: %+v",
						sc.Name(), scheme, seed, fresh, reused)
				}
			}
		}
	}
}
