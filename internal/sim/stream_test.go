package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/topology"
)

// failSeedThreshold is where the registered-for-test scenario starts
// failing: seeds below it behave exactly like alice-bob, so the
// package's registry-wide sweeps (which use small seeds) pass, while the
// campaign error-path tests drive it with seeds at or above the
// threshold.
const failSeedThreshold = 100

// failStart is a registered-for-test scenario whose Start fails for
// seeds ≥ failSeedThreshold — the mid-campaign failure injection the
// error-path tests need. It is registered only in this package's test
// binary, so the experiments goldens and the CLI never see it.
type failStart struct{}

func (failStart) Name() string        { return "fail-start" }
func (failStart) Description() string { return "test-only: Start fails for seeds ≥ 100" }
func (failStart) Schemes() []Scheme   { return aliceBob.Schemes() }
func (failStart) Build(cfg topology.Config, rng *rand.Rand) *topology.Graph {
	return aliceBob.Build(cfg, rng)
}
func (failStart) Start(e *Env, scheme Scheme) (Stepper, error) {
	if e.Seed() >= failSeedThreshold {
		return nil, fmt.Errorf("fail-start: injected failure for seed %d", e.Seed())
	}
	return aliceBob.Start(e, scheme)
}

func init() { Register(failStart{}) }

// TestCampaignStreamMatchesCampaign pins the streamed rows to the
// materialized matrix for every registered scenario and scheme: the two
// surfaces are one campaign, delivered differently.
func TestCampaignStreamMatchesCampaign(t *testing.T) {
	seeds := []int64{5, 17, 23}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			eng := NewEngine(Config{Packets: 2})
			schemes := sc.Schemes()
			matrix, err := eng.Campaign(sc, schemes, seeds)
			if err != nil {
				t.Fatal(err)
			}
			streamed := make([][]Metrics, len(seeds))
			err = eng.CampaignStream(sc, schemes, seeds, SinkFunc(func(r Row) error {
				if r.Seed != seeds[r.Index] {
					t.Errorf("row %d carries seed %d, want %d", r.Index, r.Seed, seeds[r.Index])
				}
				streamed[r.Index] = r.Metrics
				return nil
			}))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(matrix, streamed) {
				t.Errorf("streamed rows diverge from campaign matrix:\nmatrix:   %+v\nstreamed: %+v", matrix, streamed)
			}
		})
	}
}

// cheapScenario is a non-registered scenario with a trivial schedule, so
// large-seed-count campaign mechanics can be tested without paying for
// DSP. Metrics are a deterministic function of the seed, which the sink
// checks.
type cheapScenario struct {
	starts *atomic.Int64 // optional Start counter
}

func (cheapScenario) Name() string        { return "cheap" }
func (cheapScenario) Description() string { return "test-only: trivial deterministic schedule" }
func (cheapScenario) Schemes() []Scheme   { return []Scheme{SchemeANC} }
func (cheapScenario) Build(cfg topology.Config, rng *rand.Rand) *topology.Graph {
	return topology.AliceBob(cfg, rng)
}
func (s cheapScenario) Start(e *Env, scheme Scheme) (Stepper, error) {
	if s.starts != nil {
		s.starts.Add(1)
	}
	seed := e.Seed()
	return StepFunc(func(i int, r Recorder) {
		r.RecordAirTime(float64(1 + i))
		r.RecordDelivered(float64(seed % 97))
	}), nil
}

func cheapMetrics(seed int64, packets int) Metrics {
	var m Metrics
	for i := 0; i < packets; i++ {
		m.RecordAirTime(float64(1 + i))
		m.RecordDelivered(float64(seed % 97))
	}
	return m
}

// TestCampaignStreamInOrderThousandSeeds runs a 1000-seed streaming
// campaign and verifies every row arrives exactly once, in seed order,
// carrying the metrics of its seed — the constant-memory path delivering
// the identical results a materialized matrix would.
func TestCampaignStreamInOrderThousandSeeds(t *testing.T) {
	const packets = 2
	seeds := make([]int64, 1000)
	for i := range seeds {
		seeds[i] = int64(i*13 + 1)
	}
	eng := NewEngine(Config{Packets: packets})
	next := 0
	err := eng.CampaignStream(cheapScenario{}, []Scheme{SchemeANC}, seeds, SinkFunc(func(r Row) error {
		if r.Index != next {
			return fmt.Errorf("row index %d arrived, want %d (out of order)", r.Index, next)
		}
		if r.Seed != seeds[r.Index] {
			return fmt.Errorf("row %d carries seed %d, want %d", r.Index, r.Seed, seeds[r.Index])
		}
		if want := cheapMetrics(r.Seed, packets); !reflect.DeepEqual(r.Metrics[0], want) {
			return fmt.Errorf("row %d metrics %+v, want %+v", r.Index, r.Metrics[0], want)
		}
		next++
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if next != len(seeds) {
		t.Fatalf("sink consumed %d rows, want %d", next, len(seeds))
	}
}

// TestCampaignStreamBoundedRunAhead verifies the O(workers) in-flight
// guarantee: with the sink blocked on the first row, the workers may run
// ahead only as far as the admission window — they must not race
// through the whole seed list materializing rows.
func TestCampaignStreamBoundedRunAhead(t *testing.T) {
	var starts atomic.Int64
	sc := cheapScenario{starts: &starts}
	workers := runtime.GOMAXPROCS(0)
	window := campaignWindow(workers)
	seeds := make([]int64, 20*window)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	release := make(chan struct{})
	eng := NewEngine(Config{Packets: 1})
	got := 0
	done := make(chan error, 1)
	go func() {
		done <- eng.CampaignStream(sc, []Scheme{SchemeANC}, seeds, SinkFunc(func(r Row) error {
			if got == 0 {
				<-release // hold the emitter: workers keep running ahead
			}
			got++
			return nil
		}))
	}()

	// Wait until the run-ahead stalls: the start counter stops moving.
	last := int64(-1)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		cur := starts.Load()
		if cur == last && cur > 0 {
			break
		}
		last = cur
		time.Sleep(20 * time.Millisecond)
	}
	if stalled := starts.Load(); stalled > int64(window) {
		t.Errorf("workers started %d runs with the sink blocked; admission window is %d", stalled, window)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got != len(seeds) {
		t.Fatalf("sink consumed %d rows, want %d", got, len(seeds))
	}
	if total := starts.Load(); total != int64(len(seeds)) {
		t.Errorf("%d runs started, want %d", total, len(seeds))
	}
}

// TestCampaignErrorPaths drives the registered-for-test fail-start
// scenario through both campaign surfaces with a failure mid-seed-list:
// both must return the first (lowest-index) error without deadlocking,
// and the stream must have delivered exactly the rows before the
// failure.
func TestCampaignErrorPaths(t *testing.T) {
	sc := MustScenario("fail-start")
	schemes := []Scheme{SchemeANC, SchemeRouting}
	seeds := []int64{1, 7, failSeedThreshold + 5, failSeedThreshold + 6, 9, 11}
	eng := NewEngine(Config{Packets: 1})

	rows, err := eng.Campaign(sc, schemes, seeds)
	if err == nil {
		t.Fatal("Campaign returned nil error with a failing seed")
	}
	if rows != nil {
		t.Errorf("Campaign returned rows alongside error: %+v", rows)
	}
	wantMsg := fmt.Sprintf("seed %d", failSeedThreshold+5)
	if !strings.Contains(err.Error(), wantMsg) {
		t.Errorf("Campaign error %q does not name the first failing seed (%s)", err, wantMsg)
	}

	var delivered []int
	err = eng.CampaignStream(sc, schemes, seeds, SinkFunc(func(r Row) error {
		delivered = append(delivered, r.Index)
		return nil
	}))
	if err == nil {
		t.Fatal("CampaignStream returned nil error with a failing seed")
	}
	if !strings.Contains(err.Error(), wantMsg) {
		t.Errorf("CampaignStream error %q does not name the first failing seed (%s)", err, wantMsg)
	}
	if want := []int{0, 1}; !reflect.DeepEqual(delivered, want) {
		t.Errorf("rows delivered before the failure: %v, want %v", delivered, want)
	}
}

// TestCampaignStreamSinkError verifies a sink error stops the campaign
// and surfaces as the return value.
func TestCampaignStreamSinkError(t *testing.T) {
	seeds := make([]int64, 64)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	eng := NewEngine(Config{Packets: 1})
	sinkErr := errors.New("sink full")
	got := 0
	err := eng.CampaignStream(cheapScenario{}, []Scheme{SchemeANC}, seeds, SinkFunc(func(r Row) error {
		got++
		if got == 3 {
			return sinkErr
		}
		return nil
	}))
	if !errors.Is(err, sinkErr) {
		t.Fatalf("CampaignStream error = %v, want the sink's", err)
	}
	if got != 3 {
		t.Errorf("sink consumed %d rows after erroring at 3", got)
	}
}

// TestCampaignStreamRejectsUnsupportedScheme mirrors the Campaign check.
func TestCampaignStreamRejectsUnsupportedScheme(t *testing.T) {
	eng := NewEngine(Config{Packets: 1})
	err := eng.CampaignStream(Chain(), []Scheme{SchemeANC, SchemeCOPE}, []int64{1},
		SinkFunc(func(Row) error { return nil }))
	if err == nil {
		t.Fatal("stream accepted an unsupported scheme")
	}
}

// TestCampaignStreamPreCanceledContext verifies an already-canceled
// context starts nothing: no runs, no sink calls, ctx.Err() returned.
func TestCampaignStreamPreCanceledContext(t *testing.T) {
	var starts atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := NewEngine(Config{Packets: 1})
	err := eng.CampaignStream(cheapScenario{starts: &starts}, []Scheme{SchemeANC}, []int64{1, 2, 3},
		SinkFunc(func(Row) error { return fmt.Errorf("sink must not be called") }),
		WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CampaignStream error = %v, want context.Canceled", err)
	}
	if n := starts.Load(); n != 0 {
		t.Errorf("%d runs started under a pre-canceled context", n)
	}
}

// TestCampaignStreamContextCancelMidStream cancels the campaign from the
// sink a few rows in: the stream must stop promptly with
// context.Canceled — a clean error, not a deadlock — after delivering
// only in-order rows.
func TestCampaignStreamContextCancelMidStream(t *testing.T) {
	seeds := make([]int64, 512)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := NewEngine(Config{Packets: 1})
	got := 0
	err := eng.CampaignStream(cheapScenario{}, []Scheme{SchemeANC}, seeds, SinkFunc(func(r Row) error {
		if r.Index != got {
			return fmt.Errorf("row %d arrived, want %d", r.Index, got)
		}
		got++
		if got == 3 {
			cancel()
		}
		return nil
	}), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CampaignStream error = %v, want context.Canceled", err)
	}
	if got < 3 || got == len(seeds) {
		t.Errorf("sink consumed %d rows; want ≥ 3 (cancel point) and < %d (full campaign)", got, len(seeds))
	}
}

// TestCampaignStreamContextCancelAfterLastRow pins the completion
// semantics: a context canceled while the final row is at the sink does
// not turn a fully delivered campaign into an error.
func TestCampaignStreamContextCancelAfterLastRow(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := NewEngine(Config{Packets: 1})
	got := 0
	err := eng.CampaignStream(cheapScenario{}, []Scheme{SchemeANC}, seeds, SinkFunc(func(r Row) error {
		got++
		if got == len(seeds) {
			cancel()
		}
		return nil
	}), WithContext(ctx))
	if err != nil {
		t.Fatalf("fully delivered campaign returned %v, want nil", err)
	}
	if got != len(seeds) {
		t.Fatalf("sink consumed %d rows, want %d", got, len(seeds))
	}
}

// gateScenario blocks its first schedule slot until released, so a test
// can cancel a context while a run is provably in flight.
type gateScenario struct {
	started chan struct{} // closed when the first slot begins
	release chan struct{} // the first slot waits for this
}

func (gateScenario) Name() string        { return "gate" }
func (gateScenario) Description() string { return "test-only: first slot blocks until released" }
func (gateScenario) Schemes() []Scheme   { return []Scheme{SchemeANC} }
func (gateScenario) Build(cfg topology.Config, rng *rand.Rand) *topology.Graph {
	return topology.AliceBob(cfg, rng)
}
func (g gateScenario) Start(e *Env, scheme Scheme) (Stepper, error) {
	return StepFunc(func(i int, r Recorder) {
		if i == 0 {
			close(g.started)
			<-g.release
		}
	}), nil
}

// TestRunRecordingContextCancelMidRun cancels a context while a run is
// inside its schedule: the run must abort at the next slot boundary with
// ctx.Err(), however many packets remain.
func TestRunRecordingContextCancelMidRun(t *testing.T) {
	g := gateScenario{started: make(chan struct{}), release: make(chan struct{})}
	eng := NewEngine(Config{Packets: 100000})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		var m Metrics
		done <- eng.RunRecordingContext(ctx, g, SchemeANC, 1, &m, nil)
	}()
	<-g.started // the run is mid-slot now
	cancel()
	close(g.release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunRecordingContext error = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled run did not return within 10s (deadlock)")
	}
}

// TestCampaignStreamContextCancelMidRun is the same guarantee one layer
// up: cancellation reaches a worker's in-flight run through the stream
// option and the campaign returns promptly.
func TestCampaignStreamContextCancelMidRun(t *testing.T) {
	g := gateScenario{started: make(chan struct{}), release: make(chan struct{})}
	eng := NewEngine(Config{Packets: 100000})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- eng.CampaignStream(g, []Scheme{SchemeANC}, []int64{1},
			SinkFunc(func(Row) error { return nil }), WithContext(ctx))
	}()
	<-g.started
	cancel()
	close(g.release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("CampaignStream error = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled campaign did not return within 10s (deadlock)")
	}
}

// TestTraceRecorderRetainsLinkStates runs alice-bob once under a
// TraceRecorder and checks the channel observations: every directed edge
// traced, one gain per schedule slot, static realizations constant
// across slots — and the embedded Metrics identical to a plain run.
func TestTraceRecorderRetainsLinkStates(t *testing.T) {
	cfg := Config{Packets: 3}
	eng := NewEngine(cfg)
	tr := NewTraceRecorder()
	if err := eng.RunRecording(AliceBob(), SchemeANC, 7, tr, nil); err != nil {
		t.Fatal(err)
	}
	plain, err := eng.Run(AliceBob(), SchemeANC, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Metrics, plain) {
		t.Errorf("trace recorder metrics %+v diverge from plain run %+v", tr.Metrics, plain)
	}
	traces := tr.Traces()
	if len(traces) != 4 { // alice↔router, bob↔router
		t.Fatalf("%d link traces, want 4: %+v", len(traces), traces)
	}
	for _, lt := range traces {
		if len(lt.Gains) != 3 {
			t.Errorf("edge %d→%d traced %d slots, want 3", lt.From, lt.To, len(lt.Gains))
		}
		for _, g := range lt.Gains {
			if g <= 0 {
				t.Errorf("edge %d→%d has non-positive gain %v", lt.From, lt.To, g)
			}
			if g != lt.Gains[0] {
				t.Errorf("static channel drifted within a run: edge %d→%d gains %v", lt.From, lt.To, lt.Gains)
			}
		}
	}

	// Under block fading with one-slot coherence, the trace must vary.
	fadingTr := NewTraceRecorder()
	if err := eng.RunRecording(MustScenario("fading"), SchemeANC, 7, fadingTr, nil); err != nil {
		t.Fatal(err)
	}
	varied := false
	for _, lt := range fadingTr.Traces() {
		for _, g := range lt.Gains {
			if g != lt.Gains[0] {
				varied = true
			}
		}
	}
	if !varied {
		t.Error("fading scenario produced constant link traces")
	}
}

// TestMetricsRecorder pins the default Recorder's folding rules: the
// typed observations land in exactly the fields the old field-poking
// steppers mutated.
func TestMetricsRecorder(t *testing.T) {
	var m Metrics
	m.RecordDelivered(100)
	m.RecordDelivered(50)
	m.RecordLost(2)
	m.RecordLost(0)
	m.RecordANCDecode(0.01)
	m.RecordCollision(0.8)
	m.RecordAirTime(10)
	m.RecordAirTime(5)
	m.RecordLinkState(0, 0, 1, 0.5) // must be a no-op
	want := Metrics{
		DeliveredBits: 150, TimeSamples: 15,
		BERs: []float64{0.01}, Overlaps: []float64{0.8},
		Delivered: 2, Lost: 2,
	}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("metrics after recording: %+v, want %+v", m, want)
	}
}

// TestCampaignStreamWithLinkTraces checks the traced streaming path:
// every row carries one TraceRecorder per scheme whose Metrics equal the
// row's.
func TestCampaignStreamWithLinkTraces(t *testing.T) {
	seeds := []int64{3, 9}
	eng := NewEngine(Config{Packets: 2})
	sc := AliceBob()
	schemes := sc.Schemes()
	rows := 0
	err := eng.CampaignStream(sc, schemes, seeds, SinkFunc(func(r Row) error {
		rows++
		if len(r.Traces) != len(schemes) {
			return fmt.Errorf("row %d has %d traces, want %d", r.Index, len(r.Traces), len(schemes))
		}
		for j, tr := range r.Traces {
			if !reflect.DeepEqual(tr.Metrics, r.Metrics[j]) {
				return fmt.Errorf("row %d scheme %d: trace metrics diverge from row metrics", r.Index, j)
			}
			if len(tr.Traces()) == 0 {
				return fmt.Errorf("row %d scheme %d: no link traces", r.Index, j)
			}
		}
		return nil
	}), WithLinkTraces())
	if err != nil {
		t.Fatal(err)
	}
	if rows != len(seeds) {
		t.Fatalf("%d rows, want %d", rows, len(seeds))
	}
}
