package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/topology"
)

// NewChainN generalizes the Fig. 2 chain to an arbitrary hop count: a
// line of hops+1 nodes, one unidirectional flow from the head to the
// sink. Under ANC the steady state alternates even- and odd-indexed
// transmitters, so every interior node receives its next packet as a
// collision with the downstream forward it already knows — one packet
// delivered per two slots regardless of length, versus one per hops
// slots for sequential routing: the 3→2 reduction of §2(b) becomes
// hops→2, and the gain grows with the chain.
//
// hops = 3 is the registered "chain" scenario's structure (kept separate
// so the Fig. 12 goldens stay untouched); the registry ships chain-5.
func NewChainN(hops int) Scenario {
	if hops < 3 {
		panic(fmt.Sprintf("sim: NewChainN needs hops ≥ 3, got %d", hops))
	}
	n := hops + 1
	return &simpleScenario{
		name:  fmt.Sprintf("chain-%d", hops),
		desc:  fmt.Sprintf("Fig. 2 generalized to %d hops: ANC pipelines the whole chain into 2 slots/packet", hops),
		build: chainNBuild(n),
		order: []Scheme{SchemeANC, SchemeRouting},
		start: map[Scheme]func(*Env) StepFunc{
			SchemeANC:     func(e *Env) StepFunc { return func(i int, r Recorder) { stepChainNANC(e, r, n, i) } },
			SchemeRouting: func(e *Env) StepFunc { return func(i int, r Recorder) { stepChainNTraditional(e, r, n) } },
		},
	}
}

// chainNBuild connects n nodes in a line, adjacent pairs only — like
// topology.Chain, nodes two hops apart are out of range.
func chainNBuild(n int) func(topology.Config, *rand.Rand) *topology.Graph {
	return func(cfg topology.Config, rng *rand.Rand) *topology.Graph {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("n%d", i+1)
		}
		g := topology.New(n, names, cfg, rng)
		for i := 0; i+1 < n; i++ {
			g.ConnectBoth(i, i+1, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
		}
		return g
	}
}

// stepChainNANC runs one steady-state cycle of the alternating schedule:
// even-indexed nodes transmit in slot A, odd-indexed in slot B, and one
// packet reaches the sink per cycle. Each interior node j ≤ n−3 receives
// its upstream neighbor's fresh packet superposed with the downstream
// neighbor's simultaneous forward of a packet j itself forwarded one
// cycle earlier — the known signal it cancels (the Fig. 2(c) trick at
// every pipeline stage at once). The last interior node and the sink
// have no transmitting downstream neighbor, so their receptions are
// clean; as in the 3-hop scenario, only the sink's clean hop is
// simulated.
//
// Delivery is the conjunction of the whole pipeline: the delivered
// packet's goodput is discounted by the FEC charge of every interference
// decode it traversed, and any failed stage loses it.
func stepChainNANC(e *Env, r Recorder, n, i int) {
	sink := n - 1
	src := e.nodes[0]
	good := 1.0
	ok := true
	// Every packet in the pipeline carries the flow's (src, sink)
	// addresses, so sequence numbers are what tells a receiver's
	// sent-buffer lookup the known packet from the wanted one. Assign
	// them explicitly per cycle and pipeline stage — per-node counters
	// collide across stages.
	seq := func(k int) uint32 { return uint32(1000 + i*2*n + k) }
	// Largest start offset among each slot's concurrent transmissions:
	// that is the span a receiver-side throughput measurement charges.
	maxDeltaA, maxDeltaB := -1, -1
	for j := 1; j <= n-3; j++ {
		fresh := frame.NewPacket(src.ID, e.nodes[sink].ID, seq(2*j), e.payload())
		recFresh := e.nodes[j-1].BuildFrame(fresh)
		known := frame.NewPacket(src.ID, e.nodes[sink].ID, seq(2*j+1), e.payload())
		recKnown := e.nodes[j+1].BuildFrame(known)
		e.nodes[j].Remember(recKnown)

		delta := e.cfg.Delay.Draw(e.rng)
		dFresh, dKnown := 0, delta
		if e.rng.Intn(2) == 1 {
			dFresh, dKnown = delta, 0
		}
		linkUp, _ := e.graph.Link(j-1, j)
		linkDown, _ := e.graph.Link(j+1, j)
		rx := e.receive(
			channel.Transmission{Signal: recFresh.Samples, Link: linkUp, Delay: dFresh},
			channel.Transmission{Signal: recKnown.Samples, Link: linkDown, Delay: dKnown},
		)
		e.queueANCDecode(e.nodes[j], rx, recFresh)
		r.RecordCollision(mac.OverlapFraction(e.frameLen, delta))
		// Collisions at odd j happen while the even nodes transmit
		// (slot A); at even j, while the odd nodes do (slot B).
		if j%2 == 1 {
			maxDeltaA = max(maxDeltaA, delta)
		} else {
			maxDeltaB = max(maxDeltaB, delta)
		}
	}

	// Flush the whole pipeline's decode burst — every stage's collision
	// decodes in one pass — before the sink packet below draws from the
	// run RNG. Decodes consume no randomness, so the flush position does
	// not move any draw relative to the sequential schedule.
	out := e.flushBatch()
	b := &e.scratch.batch
	for k := range out {
		res, err := out[k].Result, out[k].Err
		if err != nil {
			ok = false
			continue
		}
		wanted := b.wanted[k]
		ber := payloadBER(wanted.Bits, res.WantedBits, int(wanted.Packet.Header.Len))
		r.RecordANCDecode(ber)
		good *= e.cfg.Redundancy.Goodput(ber)
	}
	e.finishBatch()

	// The sink's reception: its upstream neighbor transmits with no one
	// downstream to collide with.
	last := frame.NewPacket(src.ID, e.nodes[sink].ID, seq(0), e.payload())
	sinkOK, _ := e.cleanHop(e.nodes[n-2].BuildFrame(last), n-2, sink)

	if !ok || good == 0 || !sinkOK {
		r.RecordLost(1)
	} else {
		r.RecordDelivered(float64(int(last.Header.Len)*8) * good)
	}

	// Two slots per delivered packet, however long the chain. A slot
	// with a collision spans its largest start offset plus the frame; a
	// collision-free slot (slot B of the 3-hop chain) is one clean
	// transmission.
	spanA, spanB := e.frameLen+e.guard, e.frameLen+e.guard
	if maxDeltaA >= 0 {
		spanA += maxDeltaA
	}
	if maxDeltaB >= 0 {
		spanB += maxDeltaB
	}
	r.RecordAirTime(float64(spanA + spanB))
}

// stepChainNTraditional delivers one packet over n−1 sequential clean
// hops under the optimal MAC, the Fig. 2(b) schedule at any length.
func stepChainNTraditional(e *Env, r Recorder, n int) {
	src, sink := e.nodes[0], e.nodes[n-1]
	pkt := frame.NewPacket(src.ID, sink.ID, src.NextSeq(), e.payload())
	r.RecordAirTime(float64((n - 1) * (e.frameLen + e.guard)))

	payload := pkt.Payload
	rec := src.BuildFrame(pkt)
	for hop := 0; hop+1 < n; hop++ {
		ok, p := e.cleanHop(rec, hop, hop+1)
		if !ok {
			r.RecordLost(1)
			return
		}
		payload = p
		if hop+2 < n {
			rec = e.nodes[hop+1].BuildFrame(frame.Packet{Header: pkt.Header, Payload: payload})
		}
	}
	r.RecordDelivered(float64(len(payload) * 8))
}

func init() { Register(NewChainN(5)) }
