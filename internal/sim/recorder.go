package sim

import (
	"sort"

	"repro/internal/stats"
)

// Recorder consumes the typed observations a scenario schedule emits.
// Steppers do not mutate result storage directly: they report what
// happened — a delivery, a loss, an interference decode, a collision, air
// time — and the Recorder decides what to keep. Metrics is the default
// Recorder, accumulating exactly the aggregates the paper's figures need;
// TraceRecorder additionally retains per-slot channel state; custom
// implementations can stream observations anywhere (a file, a histogram,
// a live dashboard) without touching the schedules.
//
// Implementations must be cheap: every method sits inside the per-slot
// hot path of a run, and the engine's zero-allocation discipline extends
// to recording (Metrics' methods allocate nothing beyond the amortized
// growth of its BER/overlap pools).
//
// A Recorder is owned by one run on one goroutine; the engine never
// shares one across concurrent runs.
type Recorder interface {
	// RecordDelivered accounts one packet delivered end to end carrying
	// the given goodput payload bits (already discounted by the FEC
	// redundancy charge for ANC decodes).
	RecordDelivered(bits float64)
	// RecordLost accounts n packets lost. n may be zero (a schedule
	// charging "whatever did not make it" of a batch).
	RecordLost(n int)
	// RecordANCDecode reports the payload bit error rate of one ANC
	// interference decode — the per-packet observation behind the
	// Fig. 9b/10b/12b BER CDFs.
	RecordANCDecode(ber float64)
	// RecordCollision reports the overlap fraction of one collision slot
	// (§11.4).
	RecordCollision(overlap float64)
	// RecordAirTime charges air time consumed, in samples.
	RecordAirTime(samples float64)
	// RecordLinkState reports one directed edge's realized power gain at
	// a schedule slot. The engine emits it for every edge of the topology
	// once per slot, before the slot's schedule step runs, sourced from
	// the channel-model cursor. Edge order within a slot is unspecified;
	// implementations must key by (from, to).
	RecordLinkState(slot, from, to int, powerGain float64)
}

// --- Metrics as the default Recorder ---

// RecordDelivered implements Recorder: one more delivered packet, its
// goodput bits added.
//
//anc:hotpath
func (m *Metrics) RecordDelivered(bits float64) {
	m.Delivered++
	m.DeliveredBits += bits
}

// RecordLost implements Recorder.
//
//anc:hotpath
func (m *Metrics) RecordLost(n int) { m.Lost += n }

// RecordANCDecode implements Recorder: the BER joins the run's pool.
//
//anc:hotpath
func (m *Metrics) RecordANCDecode(ber float64) { m.BERs = append(m.BERs, ber) }

// RecordCollision implements Recorder: the overlap joins the run's pool.
//
//anc:hotpath
func (m *Metrics) RecordCollision(overlap float64) { m.Overlaps = append(m.Overlaps, overlap) }

// RecordAirTime implements Recorder.
//
//anc:hotpath
func (m *Metrics) RecordAirTime(samples float64) { m.TimeSamples += samples }

// RecordLinkState implements Recorder as a no-op: the aggregate metrics
// do not retain channel state. TraceRecorder does.
//
//anc:hotpath
func (m *Metrics) RecordLinkState(slot, from, to int, powerGain float64) {}

// --- TraceRecorder ---

// LinkTrace is one directed edge's per-slot power-gain trace, in slot
// order.
type LinkTrace struct {
	From, To int
	Gains    []float64
}

// GainSample returns the trace's gains as a stats.Sample, the input the
// outage/fade-margin helpers consume.
func (t LinkTrace) GainSample() *stats.Sample { return stats.NewSample(t.Gains) }

// TraceRecorder is a Recorder that accumulates the usual Metrics and
// additionally retains every edge's per-slot power gain — the raw
// material of outage statistics (stats.Sample.OutageBelow,
// stats.Sample.FadeMarginDB). Use it where channel dynamics are the
// point: fading and mobility campaigns whose per-run aggregate hides the
// deep fades.
type TraceRecorder struct {
	Metrics
	traces map[[2]int]*LinkTrace
}

// NewTraceRecorder returns an empty trace recorder.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{traces: make(map[[2]int]*LinkTrace)}
}

// RecordLinkState implements Recorder: the gain joins the edge's trace.
// The engine emits slots in increasing order, so each trace is in slot
// order.
func (t *TraceRecorder) RecordLinkState(slot, from, to int, powerGain float64) {
	key := [2]int{from, to}
	tr := t.traces[key]
	if tr == nil {
		tr = &LinkTrace{From: from, To: to}
		t.traces[key] = tr
	}
	tr.Gains = append(tr.Gains, powerGain)
}

// Traces returns every edge's trace, sorted by (From, To) so output is
// deterministic regardless of emission order.
func (t *TraceRecorder) Traces() []LinkTrace {
	out := make([]LinkTrace, 0, len(t.traces))
	for _, tr := range t.traces {
		out = append(out, *tr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
