package sim

import (
	"sort"

	"repro/internal/stats/sketch"
)

// SketchRecorder is a Recorder whose distribution pools are mergeable
// quantile sketches instead of observation buffers: the per-decode BER
// pool, the per-collision overlap pool, and one per-edge link-gain
// sketch (the O(sketch) alternative to TraceRecorder's full per-slot
// traces). Unlike Metrics — one per run — a single SketchRecorder is
// meant to accumulate a whole campaign's observations: feed it many
// sequential runs, or give each shard its own and Merge them. Sketch
// merges are exact (bit-for-bit order independent, see
// internal/stats/sketch), so campaign-level statistics come out
// identical however the seed range was partitioned.
//
// The integer tallies (Delivered, Lost) merge exactly too. The float
// accumulators (DeliveredBits, TimeSamples) are left folds in call
// order, so across shard merges they are subject to floating-point
// reassociation — they are throughput bookkeeping, not part of the
// bit-identical summary guarantee the sketches carry.
//
// A SketchRecorder is owned by one goroutine while recording, like
// every Recorder; the sketches themselves are individually
// concurrency safe.
type SketchRecorder struct {
	Delivered     int64
	Lost          int64
	DeliveredBits float64
	TimeSamples   float64

	ber     *sketch.Sketch
	overlap *sketch.Sketch
	links   map[[2]int]*sketch.Sketch
	alpha   float64
}

// NewSketchRecorder returns an empty recorder with sketch accuracy
// sketch.DefaultAlpha.
func NewSketchRecorder() *SketchRecorder { return NewSketchRecorderAlpha(sketch.DefaultAlpha) }

// NewSketchRecorderAlpha returns an empty recorder with the given
// sketch accuracy (recorders only merge when their alphas match).
func NewSketchRecorderAlpha(alpha float64) *SketchRecorder {
	return &SketchRecorder{
		ber:     sketch.New(alpha),
		overlap: sketch.New(alpha),
		links:   make(map[[2]int]*sketch.Sketch),
		alpha:   alpha,
	}
}

// RecordDelivered implements Recorder.
func (r *SketchRecorder) RecordDelivered(bits float64) {
	r.Delivered++
	r.DeliveredBits += bits
}

// RecordLost implements Recorder.
func (r *SketchRecorder) RecordLost(n int) { r.Lost += int64(n) }

// RecordANCDecode implements Recorder: the BER joins the pool sketch.
func (r *SketchRecorder) RecordANCDecode(ber float64) { r.ber.Add(ber) }

// RecordCollision implements Recorder: the overlap joins the pool sketch.
func (r *SketchRecorder) RecordCollision(overlap float64) { r.overlap.Add(overlap) }

// RecordAirTime implements Recorder.
func (r *SketchRecorder) RecordAirTime(samples float64) { r.TimeSamples += samples }

// RecordLinkState implements Recorder: the gain joins the edge's sketch.
func (r *SketchRecorder) RecordLinkState(slot, from, to int, powerGain float64) {
	key := [2]int{from, to}
	s := r.links[key]
	if s == nil {
		s = sketch.New(r.alpha)
		r.links[key] = s
	}
	s.Add(powerGain)
}

// BER returns the pooled per-decode bit-error-rate sketch.
func (r *SketchRecorder) BER() *sketch.Sketch { return r.ber }

// Overlap returns the pooled per-collision overlap-fraction sketch.
func (r *SketchRecorder) Overlap() *sketch.Sketch { return r.overlap }

// Link returns the gain sketch of one directed edge, or nil when the
// edge was never observed.
func (r *SketchRecorder) Link(from, to int) *sketch.Sketch {
	return r.links[[2]int{from, to}]
}

// LinkSketch is one directed edge's pooled gain sketch.
type LinkSketch struct {
	From, To int
	Gains    *sketch.Sketch
}

// Links returns every observed edge's gain sketch sorted by (From, To),
// mirroring TraceRecorder.Traces.
func (r *SketchRecorder) Links() []LinkSketch {
	out := make([]LinkSketch, 0, len(r.links))
	for key, s := range r.links {
		out = append(out, LinkSketch{From: key[0], To: key[1], Gains: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Merge folds another recorder's state into r: tallies add, sketches
// merge exactly. The other recorder is unchanged. Fails when the sketch
// accuracies differ.
func (r *SketchRecorder) Merge(o *SketchRecorder) error {
	if err := r.ber.Merge(o.ber); err != nil {
		return err
	}
	if err := r.overlap.Merge(o.overlap); err != nil {
		return err
	}
	for key, s := range o.links {
		dst := r.links[key]
		if dst == nil {
			dst = sketch.New(r.alpha)
			r.links[key] = dst
		}
		if err := dst.Merge(s); err != nil {
			return err
		}
	}
	r.Delivered += o.Delivered
	r.Lost += o.Lost
	r.DeliveredBits += o.DeliveredBits
	r.TimeSamples += o.TimeSamples
	return nil
}
