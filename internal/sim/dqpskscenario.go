package sim

import "repro/internal/topology"

// dqpskScenario is the Fig. 1 exchange under the π/4-DQPSK modem — the
// ROADMAP's π/4-DQPSK open item, closed through the modem axis rather
// than a one-off stepper: the schedules, the topology and the accounting
// are alice-bob's verbatim; only the PHY differs (ModemChooser).
//
// Frames are mirrored in symbol units (frame.MarshalFor), so the modem
// gets the full §7.4 decode set: both endpoints of each triggered
// exchange cancel and decode, one forward and one off the conjugate
// time-reversed stream, exactly as under MSK. Expect alice-bob's ≈2×
// gain over routing, pinned by the dqpsk golden.
var dqpskScenario = &simpleScenario{
	name:  "dqpsk",
	desc:  "Fig. 1 exchange under π/4-DQPSK (§7.2): two-sided interference decoding at 2 bits/symbol",
	build: topology.AliceBob,
	modem: "dqpsk",
	order: []Scheme{SchemeANC, SchemeRouting, SchemeCOPE},
	start: aliceBobSchedules(),
}

func init() { Register(dqpskScenario) }

// DQPSK returns the registered π/4-DQPSK Alice–Bob scenario.
func DQPSK() Scenario { return dqpskScenario }
