package sim

import "repro/internal/topology"

// dqpskScenario is the Fig. 1 exchange under the π/4-DQPSK modem — the
// ROADMAP's π/4-DQPSK open item, closed through the modem axis rather
// than a one-off stepper: the schedules, the topology and the accounting
// are alice-bob's verbatim; only the PHY differs (ModemChooser).
//
// The cell is also the registry's living example of a forward-only
// modem: DQPSK frames cannot be decoded from a conjugate time-reversed
// stream (the frame format mirrors its tail bit-wise, which lines up
// with symbols only at one bit per symbol), so in each triggered
// exchange only the endpoint whose own packet started first can cancel
// and decode. Expect roughly half of alice-bob's ANC deliveries and a
// gain over routing near or below 1 — the measured cost of losing §7.4,
// pinned by the dqpsk golden.
var dqpskScenario = &simpleScenario{
	name:  "dqpsk",
	desc:  "Fig. 1 exchange under π/4-DQPSK (§7.2): forward-only interference decoding",
	build: topology.AliceBob,
	modem: "dqpsk",
	order: []Scheme{SchemeANC, SchemeRouting, SchemeCOPE},
	start: aliceBobSchedules(),
}

func init() { Register(dqpskScenario) }

// DQPSK returns the registered π/4-DQPSK Alice–Bob scenario.
func DQPSK() Scenario { return dqpskScenario }
