package sim

import (
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/frame"
	"repro/internal/radio"
)

// slotBatch gathers one schedule slot's receptions so they decode as a
// single core.DecodeBatch burst: the batch items, the reception buffers to
// release afterwards, and each reception's wanted frame for BER
// accounting. It lives in the worker's Scratch and is reused across every
// slot of every run the worker executes, so queueing and flushing allocate
// nothing in steady state.
type slotBatch struct {
	items  []core.BatchItem
	out    []core.BatchResult
	rxs    []dsp.Signal
	wanted []frame.SentRecord
}

// queueANCDecode enqueues one reception for the slot's decode burst:
// node n will decode rx, and the result will be accounted against the
// wanted frame at flush time. The reception buffer is released by the
// flush, so the caller must not release it.
func (e *Env) queueANCDecode(n *radio.Node, rx dsp.Signal, wanted frame.SentRecord) {
	b := &e.scratch.batch
	b.items = append(b.items, n.BatchItem(rx))
	b.rxs = append(b.rxs, rx)
	b.wanted = append(b.wanted, wanted)
}

// flushBatch decodes every queued reception, in queue order, and returns
// the results (owned by the batch until finishBatch). The batched and
// sequential paths are bit-identical — decodes consume no RNG and each
// item runs the full Algorithm 1 against its own reception — which the
// sequentialDecodes test hook verifies by forcing per-item Decode calls.
func (e *Env) flushBatch() []core.BatchResult {
	b := &e.scratch.batch
	if e.scratch.sequentialDecodes {
		if cap(b.out) < len(b.items) {
			b.out = make([]core.BatchResult, len(b.items))
		}
		b.out = b.out[:len(b.items)]
		for i := range b.items {
			it := &b.items[i]
			b.out[i].Result, b.out[i].Err = it.Decoder.Decode(it.Rx, it.Lookup)
		}
		return b.out
	}
	b.out = core.DecodeBatch(b.items, b.out)
	return b.out
}

// finishBatch releases the queued reception buffers and clears every
// reference the batch holds, truncating it for the next slot.
func (e *Env) finishBatch() {
	b := &e.scratch.batch
	for i := range b.rxs {
		e.release(b.rxs[i])
		b.rxs[i] = nil
	}
	for i := range b.items {
		b.items[i] = core.BatchItem{}
	}
	for i := range b.out {
		b.out[i] = core.BatchResult{}
	}
	for i := range b.wanted {
		b.wanted[i] = frame.SentRecord{}
	}
	b.items = b.items[:0]
	b.out = b.out[:0]
	b.rxs = b.rxs[:0]
	b.wanted = b.wanted[:0]
}

// flushANCDecodes decodes the queued slot as one burst and applies the
// standard ANC goodput/loss accounting to every result, in queue order —
// the batched form of calling accountANCDecode per reception.
func (e *Env) flushANCDecodes(r Recorder) {
	out := e.flushBatch()
	b := &e.scratch.batch
	for i := range out {
		e.accountANCResult(r, out[i].Result, out[i].Err, b.wanted[i])
	}
	e.finishBatch()
}
