package sim

import (
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/topology"
)

// TestFadingScenarioEvolvesChannel pins the tentpole threading: the
// fading scenario's links re-realize across schedule slots, while the
// static scenarios see one realization at every slot.
func TestFadingScenarioEvolvesChannel(t *testing.T) {
	cfg := topology.DefaultConfig()
	faded := fadingBuild(cfg, rand.New(rand.NewSource(11)))
	a, _ := faded.LinkAt(topology.Alice, topology.Router, 0)
	b, _ := faded.LinkAt(topology.Alice, topology.Router, 100)
	if a == b {
		t.Error("fading link identical at slots 0 and 100")
	}
	static := topology.AliceBob(cfg, rand.New(rand.NewSource(11)))
	for _, slot := range []int{0, 1, 100} {
		static.SetSlot(slot)
		l, _ := static.Link(topology.Alice, topology.Router)
		first, _ := static.LinkAt(topology.Alice, topology.Router, 0)
		if l != first {
			t.Errorf("static link drifted at slot %d: %+v != %+v", slot, l, first)
		}
	}
}

// TestFadingScenarioIgnoresStrayProcessParams: a spec that sets process
// parameters without selecting a model (ancsim -doppler without
// -fading) must not turn the fading scenario static — only an explicit
// non-static Kind overrides its default.
func TestFadingScenarioIgnoresStrayProcessParams(t *testing.T) {
	cfg := topology.DefaultConfig()
	cfg.Fading = channel.FadingSpec{Kind: channel.FadingStatic, DopplerRad: 0.02}
	g := fadingBuild(cfg, rand.New(rand.NewSource(11)))
	a, _ := g.LinkAt(topology.Alice, topology.Router, 0)
	b, _ := g.LinkAt(topology.Alice, topology.Router, 100)
	if a == b {
		t.Error("stray DopplerRad made the fading scenario static")
	}
}

// TestFadingRunDiffersFromStatic: the same schedule over the same seed
// must produce different metrics once the channel evolves — otherwise
// the per-slot realization is not actually reaching the receptions.
func TestFadingRunDiffersFromStatic(t *testing.T) {
	eng := NewEngine(Config{Packets: 4})
	staticRun, err := eng.Run(AliceBob(), SchemeANC, 21)
	if err != nil {
		t.Fatal(err)
	}
	fadedRun, err := eng.Run(Fading(), SchemeANC, 21)
	if err != nil {
		t.Fatal(err)
	}
	if staticRun.Throughput() == fadedRun.Throughput() && staticRun.MeanBER() == fadedRun.MeanBER() {
		t.Error("fading scenario produced metrics identical to the static one")
	}
}

// TestFadingConfigThreadsThroughEngine: a fading spec set on the engine
// configuration (the ancsim -fading path) must reach every scenario's
// links, not only the fading scenario's.
func TestFadingConfigThreadsThroughEngine(t *testing.T) {
	cfg := Config{Packets: 3}
	cfg.Topology = topology.DefaultConfig()
	cfg.Topology.Fading = channel.FadingSpec{Kind: channel.FadingRayleigh}
	faded, err := NewEngine(cfg).Run(AliceBob(), SchemeANC, 8)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewEngine(Config{Packets: 3}).Run(AliceBob(), SchemeANC, 8)
	if err != nil {
		t.Fatal(err)
	}
	if faded.Throughput() == plain.Throughput() && faded.MeanBER() == plain.MeanBER() {
		t.Error("engine-level fading config did not change the alice-bob run")
	}
}

// TestNearFarAsymmetry: the cell-edge handicap must be visible — Bob's
// weak uplink raises the ANC BER pool above the symmetric cell's on the
// same seeds.
func TestNearFarAsymmetry(t *testing.T) {
	eng := NewEngine(Config{Packets: 4})
	var sym, asym float64
	for seed := int64(1); seed <= 3; seed++ {
		s, err := eng.Run(AliceBob(), SchemeANC, seed)
		if err != nil {
			t.Fatal(err)
		}
		a, err := eng.Run(NearFar(), SchemeANC, seed)
		if err != nil {
			t.Fatal(err)
		}
		sym += s.MeanBER()
		asym += a.MeanBER()
	}
	if asym <= sym {
		t.Errorf("near-far mean BER %v not above symmetric %v", asym/3, sym/3)
	}
}

// TestChainNGainGrowsWithLength: the point of the generalized chain —
// ANC pipelines any length into two slots per packet, so the gain over
// sequential routing grows with the hop count (Fig. 2's 3→2 becomes
// hops→2).
func TestChainNGainGrowsWithLength(t *testing.T) {
	eng := NewEngine(Config{Packets: 4})
	gain := func(sc Scenario, seed int64) float64 {
		a, err := eng.Run(sc, SchemeANC, seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := eng.Run(sc, SchemeRouting, seed)
		if err != nil {
			t.Fatal(err)
		}
		return a.Throughput() / r.Throughput()
	}
	var short, long float64
	for seed := int64(1); seed <= 3; seed++ {
		short += gain(Chain(), seed)
		long += gain(MustScenario("chain-5"), seed)
	}
	if long <= short {
		t.Errorf("chain-5 mean gain %v not above 3-hop chain %v", long/3, short/3)
	}
}

// TestGraphLinkAtDoesNotAllocate pins the zero-allocation discipline on
// the per-slot hot path: realizing any model kind at a slot — what every
// schedule does through Graph.Link — must not allocate.
func TestGraphLinkAtDoesNotAllocate(t *testing.T) {
	for _, spec := range []channel.FadingSpec{
		{},
		{Kind: channel.FadingRayleigh, BlockSlots: 2},
		{Kind: channel.FadingRician, RicianK: 8},
		{Kind: channel.FadingMobility, DopplerRad: 0.01},
	} {
		cfg := topology.DefaultConfig()
		cfg.Fading = spec
		g := topology.AliceBob(cfg, rand.New(rand.NewSource(3)))
		slot := 0
		allocs := testing.AllocsPerRun(100, func() {
			g.SetSlot(slot)
			slot++
			if _, ok := g.Link(topology.Alice, topology.Router); !ok {
				t.Fatal("link missing")
			}
		})
		if allocs != 0 {
			t.Errorf("%v: per-slot link realization allocates %.1f objects", spec.Kind, allocs)
		}
	}
}
