package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/phy"
)

// TestCrossModemMatrix is the table-driven sweep over every registered
// scenario × scheme × modem cell. Every cell must be deterministic
// (same seed ⇒ identical Metrics), must agree between the campaign
// worker pool and sequential runs, and must account air time and
// packets. The paper's ANC ≥ routing ordering is asserted for every
// modem unconditionally: symbol-wise frame mirroring gives each of them
// the full §7.4 decode set.
func TestCrossModemMatrix(t *testing.T) {
	// One seed keeps the sweep affordable under -race; the multi-seed
	// reorder path of the campaign surface has its own dedicated tests
	// (stream_test.go), so a second seed here would only re-cover them.
	seeds := []int64{7}
	for _, modemName := range phy.Names() {
		modemName := modemName
		t.Run(modemName, func(t *testing.T) {
			for _, sc := range Scenarios() {
				sc := sc
				t.Run(sc.Name(), func(t *testing.T) {
					t.Parallel()
					eng := NewEngine(Config{Packets: 3, Modem: modemName})
					schemes := sc.Schemes()
					rows, err := eng.Campaign(sc, schemes, seeds)
					if err != nil {
						t.Fatalf("campaign: %v", err)
					}
					for j, scheme := range schemes {
						for i, seed := range seeds {
							m1, err := eng.Run(sc, scheme, seed)
							if err != nil {
								t.Fatalf("%s seed %d: %v", scheme, seed, err)
							}
							if !reflect.DeepEqual(rows[i][j], m1) {
								t.Errorf("%s seed %d: campaign %+v != sequential %+v", scheme, seed, rows[i][j], m1)
							}
							m2, err := eng.Run(sc, scheme, seed)
							if err != nil {
								t.Fatalf("%s seed %d rerun: %v", scheme, seed, err)
							}
							if !reflect.DeepEqual(m1, m2) {
								t.Errorf("%s seed %d: same seed produced different metrics", scheme, seed)
							}
							if m1.TimeSamples <= 0 || m1.Delivered+m1.Lost == 0 {
								t.Errorf("%s seed %d: degenerate run %+v", scheme, seed, m1)
							}
						}
					}
					if !HasScheme(sc, SchemeANC) || !HasScheme(sc, SchemeRouting) {
						return
					}
					if modemName == EffectiveModemName(sc, Config{}) {
						// This is the scenario's default cell;
						// TestScenariosANCBeatsRouting already asserts the
						// ordering there — no need to run it twice.
						return
					}
					anc, err := eng.Run(sc, SchemeANC, 9)
					if err != nil {
						t.Fatal(err)
					}
					routing, err := eng.Run(sc, SchemeRouting, 9)
					if err != nil {
						t.Fatal(err)
					}
					if anc.Throughput() <= routing.Throughput() {
						t.Errorf("ANC throughput %v not above routing %v",
							anc.Throughput(), routing.Throughput())
					}
				})
			}
		})
	}
}

// TestScenarioModemPreferenceMatchesExplicit pins the modem resolution
// order: a scenario's ModemChooser preference must produce runs
// bit-identical to the same schedules under an explicit Config.Modem
// (including the re-derived delay distribution), and an explicit name
// must override the preference.
func TestScenarioModemPreferenceMatchesExplicit(t *testing.T) {
	preferred, err := NewEngine(Config{Packets: 3}).Run(DQPSK(), SchemeANC, 11)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := NewEngine(Config{Packets: 3, Modem: "dqpsk"}).Run(AliceBob(), SchemeANC, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(preferred, explicit) {
		t.Errorf("dqpsk scenario %+v != alice-bob under explicit dqpsk modem %+v", preferred, explicit)
	}

	overridden, err := NewEngine(Config{Packets: 3, Modem: "msk"}).Run(DQPSK(), SchemeANC, 11)
	if err != nil {
		t.Fatal(err)
	}
	mskRun, err := NewEngine(Config{Packets: 3}).Run(AliceBob(), SchemeANC, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(overridden, mskRun) {
		t.Errorf("explicit msk did not override the scenario preference: %+v != %+v", overridden, mskRun)
	}
}

// TestDirectSurfacesRejectUnknownModem pins the failure mode of the
// construction surfaces that bypass the Engine (RunSIRPoint,
// FrameSamples): a typo'd Config.Modem must fail loudly, never
// silently run the default PHY.
func TestDirectSurfacesRejectUnknownModem(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s with unknown modem did not panic", name)
			}
		}()
		f()
	}
	mustPanic("RunSIRPoint", func() { RunSIRPoint(Config{Packets: 1, Modem: "warp"}, 1, 0) })
	mustPanic("FrameSamples", func() { Config{Modem: "warp"}.FrameSamples() })
}

// TestUnknownModemFails pins the failure mode of a bad Config.Modem on
// both run surfaces: an error (not a panic), enumerating the registry.
func TestUnknownModemFails(t *testing.T) {
	eng := NewEngine(Config{Packets: 1, Modem: "warp"})
	if _, err := eng.Run(AliceBob(), SchemeANC, 1); err == nil {
		t.Error("Run with unknown modem succeeded")
	} else if !strings.Contains(err.Error(), "msk") || !strings.Contains(err.Error(), "dqpsk") {
		t.Errorf("error does not enumerate registered modems: %v", err)
	}
	err := eng.CampaignStream(AliceBob(), []Scheme{SchemeANC}, []int64{1}, SinkFunc(func(Row) error { return nil }))
	if err == nil {
		t.Error("CampaignStream with unknown modem succeeded")
	}
}
