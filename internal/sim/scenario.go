package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/phy"
	"repro/internal/topology"
)

// Scheme identifies one of the compared transmission schemes: analog
// network coding, traditional routing, or digital network coding (COPE).
type Scheme string

const (
	SchemeANC     Scheme = "anc"
	SchemeRouting Scheme = "routing"
	SchemeCOPE    Scheme = "cope"
)

// Scenario is one simulated workload: a topology, the set of schemes
// that apply to it, and — per scheme — the per-slot schedule that moves
// packets through the network and charges the Metrics. The Engine owns
// everything else (seeded RNG fan-out, channel realization, node
// lifecycle, reception buffers, the campaign worker pool), so a Scenario
// is exactly the part that differs between workloads.
//
// Implementations must be stateless across runs: all per-run state lives
// in the Stepper that Start returns, so one Scenario value can serve many
// concurrent campaign workers.
type Scenario interface {
	// Name is the registry key (ancsim -scenario=<name>).
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// Schemes lists the schemes the scenario supports, ANC first.
	Schemes() []Scheme
	// Build realizes the scenario's topology for one run.
	Build(cfg topology.Config, rng *rand.Rand) *topology.Graph
	// Start binds a scheme's schedule to one run's environment. The
	// returned Stepper is invoked Config().Packets times.
	Start(e *Env, scheme Scheme) (Stepper, error)
}

// ModemChooser is optionally implemented by scenarios that prefer a
// non-default PHY modem — scenarios whose point is the modem itself,
// like the registered "dqpsk" scenario. DefaultModem returns a
// registered modem name, or "" for no preference. An explicit
// Config.Modem always wins over the preference, so every scenario still
// runs as a full topology × scheme × modem cell.
type ModemChooser interface {
	DefaultModem() string
}

// EffectiveModemName resolves the modem a run of sc under cfg uses: an
// explicit Config.Modem wins, else the scenario's preference
// (ModemChooser), else phy.Default. The name is resolved the same way
// everywhere — engine runs, campaign output headers, the CLI — so what
// a header reports is what the run modulated with.
func EffectiveModemName(sc Scenario, cfg Config) string {
	if cfg.Modem != "" {
		return cfg.Modem
	}
	if mc, ok := sc.(ModemChooser); ok {
		if name := mc.DefaultModem(); name != "" {
			return name
		}
	}
	return phy.Default
}

// Stepper advances one run by one schedule cycle (one exchange, one
// delivered packet, one round over the parallel pairs — whatever the
// scenario's unit of progress is), emitting its observations into the
// run's Recorder.
type Stepper interface {
	Step(i int, r Recorder)
}

// StepFunc adapts a function to the Stepper interface.
type StepFunc func(i int, r Recorder)

// Step implements Stepper.
func (f StepFunc) Step(i int, r Recorder) { f(i, r) }

// simpleScenario implements Scenario from a builder plus one schedule
// constructor per scheme. All scenarios in this package are built from
// it. A non-empty modem field makes it a ModemChooser preferring that
// registered PHY.
type simpleScenario struct {
	name  string
	desc  string
	build func(topology.Config, *rand.Rand) *topology.Graph
	modem string
	order []Scheme
	start map[Scheme]func(*Env) StepFunc
}

func (s *simpleScenario) Name() string         { return s.name }
func (s *simpleScenario) Description() string  { return s.desc }
func (s *simpleScenario) DefaultModem() string { return s.modem }

func (s *simpleScenario) Schemes() []Scheme {
	out := make([]Scheme, len(s.order))
	copy(out, s.order)
	return out
}

func (s *simpleScenario) Build(cfg topology.Config, rng *rand.Rand) *topology.Graph {
	return s.build(cfg, rng)
}

func (s *simpleScenario) Start(e *Env, scheme Scheme) (Stepper, error) {
	mk, ok := s.start[scheme]
	if !ok {
		return nil, fmt.Errorf("sim: scenario %q does not support scheme %q", s.name, scheme)
	}
	return mk(e), nil
}

// ParseScheme parses a Scheme from its flag spelling (anc|routing|cope).
func ParseScheme(s string) (Scheme, error) {
	switch Scheme(s) {
	case SchemeANC, SchemeRouting, SchemeCOPE:
		return Scheme(s), nil
	}
	return "", fmt.Errorf("sim: unknown scheme %q (anc|routing|cope)", s)
}

// HasScheme reports whether a scenario supports a scheme.
func HasScheme(sc Scenario, scheme Scheme) bool {
	for _, s := range sc.Schemes() {
		if s == scheme {
			return true
		}
	}
	return false
}

// --- registry ---

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Scenario)
)

// Register adds a scenario to the registry under its name. Registering a
// duplicate name panics: scenario names are CLI-facing identifiers and a
// silent overwrite would make `ancsim -scenario=<name>` ambiguous.
func Register(sc Scenario) {
	registryMu.Lock()
	defer registryMu.Unlock()
	name := sc.Name()
	if name == "" {
		panic("sim: scenario with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sim: duplicate scenario %q", name))
	}
	registry[name] = sc
}

// LookupScenario returns the registered scenario with the given name.
func LookupScenario(name string) (Scenario, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	sc, ok := registry[name]
	return sc, ok
}

// MustScenario returns a registered scenario or panics; for the paper
// scenarios this package registers itself.
func MustScenario(name string) Scenario {
	sc, ok := LookupScenario(name)
	if !ok {
		panic(fmt.Sprintf("sim: unknown scenario %q", name))
	}
	return sc
}

// Scenarios returns every registered scenario sorted by name.
func Scenarios() []Scenario {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Scenario, 0, len(registry))
	for _, sc := range registry {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
