package sim

import (
	"repro/internal/channel"
	"repro/internal/cope"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/radio"
	"repro/internal/topology"
)

// aliceBobSchedules returns the Fig. 1 schedule constructors bound to
// the endpoints at the canonical alice/router/bob indices — the schedule
// set the alice-bob, near-far, fading and dqpsk scenarios all drive
// (they differ only in topology, channel model, or modem).
func aliceBobSchedules() map[Scheme]func(*Env) StepFunc {
	return map[Scheme]func(*Env) StepFunc{
		SchemeANC: func(e *Env) StepFunc {
			return func(i int, r Recorder) {
				stepAliceBobANC(e, r, topology.Alice, topology.Router, topology.Bob)
			}
		},
		SchemeRouting: func(e *Env) StepFunc {
			return func(i int, r Recorder) {
				stepAliceBobTraditional(e, r, topology.Alice, topology.Router, topology.Bob)
			}
		},
		SchemeCOPE: func(e *Env) StepFunc {
			pool := cope.NewPool()
			return func(i int, r Recorder) {
				stepAliceBobCOPE(e, r, pool, topology.Alice, topology.Router, topology.Bob)
			}
		},
	}
}

// aliceBob is the Fig. 1 two-way relay, the paper's headline scenario.
var aliceBob = &simpleScenario{
	name:  "alice-bob",
	desc:  "Fig. 1 two-way relay: Alice and Bob exchange packets through a router",
	build: topology.AliceBob,
	order: []Scheme{SchemeANC, SchemeRouting, SchemeCOPE},
	start: aliceBobSchedules(),
}

func init() { Register(aliceBob) }

// AliceBob returns the registered Fig. 1 scenario.
func AliceBob() Scenario { return aliceBob }

// stepAliceBobANC runs one exchange of the Fig. 1(d) schedule between the
// endpoints at indices ai and bi relaying through ri: both endpoints
// transmit simultaneously (the router's trigger stimulates both; the
// second starts after the §7.2 random delay), the router amplifies and
// broadcasts the interfered signal, and each endpoint cancels its own
// packet to decode the other's.
func stepAliceBobANC(e *Env, r Recorder, ai, ri, bi int) {
	alice, bob := e.nodes[ai], e.nodes[bi]
	pktA := frame.NewPacket(alice.ID, bob.ID, alice.NextSeq(), e.payload())
	pktB := frame.NewPacket(bob.ID, alice.ID, bob.NextSeq(), e.payload())
	mac.MarkTrigger(&pktA.Header)
	recA := alice.BuildFrame(pktA)
	recB := bob.BuildFrame(pktB)

	// Slot 1: simultaneous uplinks; one of the two (random) starts after
	// the drawn delay.
	delta := e.cfg.Delay.Draw(e.rng)
	dA, dB := 0, delta
	if e.rng.Intn(2) == 1 {
		dA, dB = delta, 0
	}
	linkAR, _ := e.graph.Link(ai, ri)
	linkBR, _ := e.graph.Link(bi, ri)
	routerRx := e.receive(
		channel.Transmission{Signal: recA.Samples, Link: linkAR, Delay: dA},
		channel.Transmission{Signal: recB.Samples, Link: linkBR, Delay: dB},
	)
	// Slot 2: the router re-amplifies to its transmit power and
	// broadcasts, noise and all (§2, §8). The amplification reuses the
	// reception buffer in place; it goes back to the pool once the
	// downlink receptions are synthesized.
	relayed := channel.AmplifyToInPlace(routerRx, 1)
	linkRA, _ := e.graph.Link(ri, ai)
	linkRB, _ := e.graph.Link(ri, bi)
	rxA := e.receive(channel.Transmission{Signal: relayed, Link: linkRA})
	rxB := e.receive(channel.Transmission{Signal: relayed, Link: linkRB})
	e.release(relayed)

	// Both downlink receptions decode as one burst: queue order matches
	// the old sequential call order, so accounting is bit-identical.
	e.queueANCDecode(alice, rxA, recB)
	e.queueANCDecode(bob, rxB, recA)
	e.flushANCDecodes(r)

	r.RecordCollision(mac.OverlapFraction(e.frameLen, delta))
	r.RecordAirTime(float64(2 * (delta + e.frameLen + e.guard)))
}

// accountANCDecode decodes an interfered reception at a node, measures the
// payload BER against the wanted frame, and charges goodput/loss.
func (e *Env) accountANCDecode(r Recorder, n *radio.Node, rx dsp.Signal, wanted frame.SentRecord) {
	res, err := n.Receive(rx)
	e.accountANCResult(r, res, err, wanted)
}

// accountANCResult applies the ANC accounting rule to one decode outcome:
// a failed decode (or one whose BER exceeds what FEC can repair) loses the
// wanted packet; otherwise its payload bits are delivered, discounted by
// the BER-dependent redundancy charge.
func (e *Env) accountANCResult(r Recorder, res *core.Result, err error, wanted frame.SentRecord) {
	if err != nil {
		r.RecordLost(1)
		return
	}
	// Delivery is BER-gated, not header-CRC-gated: with the fixed frame
	// size configured, header bit errors are repaired by the same FEC
	// whose overhead the redundancy model charges (paper §11.2, §11.4).
	ber := payloadBER(wanted.Bits, res.WantedBits, int(wanted.Packet.Header.Len))
	r.RecordANCDecode(ber)
	good := e.cfg.Redundancy.Goodput(ber)
	if good == 0 {
		r.RecordLost(1)
		return
	}
	r.RecordDelivered(float64(int(wanted.Packet.Header.Len)*8) * good)
}

// stepAliceBobTraditional runs one exchange of the Fig. 1(b) schedule
// under the optimal MAC: four sequential single-signal transmissions,
// with the router decoding and re-modulating (digital regeneration) at
// each relay hop.
func stepAliceBobTraditional(e *Env, r Recorder, ai, ri, bi int) {
	alice, router, bob := e.nodes[ai], e.nodes[ri], e.nodes[bi]
	pktA := frame.NewPacket(alice.ID, bob.ID, alice.NextSeq(), e.payload())
	pktB := frame.NewPacket(bob.ID, alice.ID, bob.NextSeq(), e.payload())
	e.traditionalRelay(r, alice, router, bob, pktA, ai, ri, bi)
	e.traditionalRelay(r, bob, router, alice, pktB, bi, ri, ai)
}

// traditionalRelay delivers one packet src→relay→dst with two clean hops.
func (e *Env) traditionalRelay(r Recorder, src, relay, dst *radio.Node, pkt frame.Packet, si, ri, di int) {
	rec := src.BuildFrame(pkt)
	r.RecordAirTime(float64(2 * (e.frameLen + e.guard)))
	ok, payload := e.cleanHop(rec, si, ri)
	if !ok {
		r.RecordLost(1)
		return
	}
	fwd := relay.BuildFrame(frame.Packet{Header: pkt.Header, Payload: payload})
	ok, payload = e.cleanHop(fwd, ri, di)
	if !ok {
		r.RecordLost(1)
		return
	}
	r.RecordDelivered(float64(len(payload) * 8))
}

// stepAliceBobCOPE runs one exchange of the Fig. 1(c) schedule:
// sequential uplinks, then a single XOR-coded broadcast that both
// endpoints decode with their own packet (digital network coding, [17]).
func stepAliceBobCOPE(e *Env, r Recorder, pool *cope.Pool, ai, ri, bi int) {
	alice, router, bob := e.nodes[ai], e.nodes[ri], e.nodes[bi]
	pktA := frame.NewPacket(alice.ID, bob.ID, alice.NextSeq(), e.payload())
	pktB := frame.NewPacket(bob.ID, alice.ID, bob.NextSeq(), e.payload())

	// Slots 1 and 2: the two uplinks.
	r.RecordAirTime(float64(2 * (e.frameLen + e.guard)))
	okA, gotA := e.cleanHop(alice.BuildFrame(pktA), ai, ri)
	okB, gotB := e.cleanHop(bob.BuildFrame(pktB), bi, ri)
	if okA {
		pool.Put(frame.Packet{Header: pktA.Header, Payload: gotA})
	}
	if okB {
		pool.Put(frame.Packet{Header: pktB.Header, Payload: gotB})
	}

	// Slot 3: coded broadcast whenever the pool has a pair.
	a, b, have := pool.TakePair(alice.ID, bob.ID, bob.ID, alice.ID)
	if !have {
		// An uplink loss starves the coding opportunity; the missing
		// counterpart is lost outright (no retransmission modeling,
		// matching the other schemes).
		r.RecordLost(2 - boolToInt(okA) - boolToInt(okB))
		return
	}
	coded, err := cope.Encode(router.ID, router.NextSeq(), a, b)
	if err != nil {
		r.RecordLost(2)
		return
	}
	r.RecordAirTime(float64(e.frameLen + e.guard))
	rec := router.BuildFrame(coded)
	okToA, codedAtA := e.cleanHop(rec, ri, ai)
	okToB, codedAtB := e.cleanHop(rec, ri, bi)
	e.accountCOPEDecode(r, okToA, codedAtA, coded.Header, a.Payload, b.Payload)
	e.accountCOPEDecode(r, okToB, codedAtB, coded.Header, b.Payload, a.Payload)
}

// accountCOPEDecode XORs a received coded payload with the endpoint's own
// native payload and checks the result against the counterpart.
func (e *Env) accountCOPEDecode(r Recorder, ok bool, codedPayload []byte, h frame.Header, own, want []byte) {
	if !ok {
		r.RecordLost(1)
		return
	}
	got, err := cope.Decode(frame.Packet{Header: h, Payload: codedPayload}, own)
	if err != nil || string(got) != string(want) {
		r.RecordLost(1)
		return
	}
	r.RecordDelivered(float64(len(want) * 8))
}

// AccountCOPEDecode exposes the COPE accounting rule to out-of-package
// scenarios.
func (e *Env) AccountCOPEDecode(r Recorder, ok bool, codedPayload []byte, h frame.Header, own, want []byte) {
	e.accountCOPEDecode(r, ok, codedPayload, h, own, want)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// RunAliceBobANC simulates one run of the Fig. 1(d) schedule.
func RunAliceBobANC(cfg Config, seed int64) Metrics {
	return mustRun(aliceBob, SchemeANC, cfg, seed)
}

// RunAliceBobTraditional simulates one run of the Fig. 1(b) schedule
// under the optimal MAC.
func RunAliceBobTraditional(cfg Config, seed int64) Metrics {
	return mustRun(aliceBob, SchemeRouting, cfg, seed)
}

// RunAliceBobCOPE simulates one run of the Fig. 1(c) schedule.
func RunAliceBobCOPE(cfg Config, seed int64) Metrics {
	return mustRun(aliceBob, SchemeCOPE, cfg, seed)
}

// mustRun backs the fixed-scenario Run* helpers, whose scheme is known to
// be supported.
func mustRun(sc Scenario, scheme Scheme, cfg Config, seed int64) Metrics {
	m, err := NewEngine(cfg).Run(sc, scheme, seed)
	if err != nil {
		panic(err)
	}
	return m
}
