package sim

import (
	"repro/internal/channel"
	"repro/internal/cope"
	"repro/internal/dsp"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/radio"
	"repro/internal/topology"
)

// chanReceive synthesizes a single-transmission reception with a small
// random lead-in (the receiver starts listening before the packet).
func chanReceive(e *env, link channel.Link, rec frame.SentRecord, lead int) dsp.Signal {
	if lead < 0 {
		lead = 0
	}
	return channel.Receive(e.noise(), e.tailPad,
		channel.Transmission{Signal: rec.Samples, Link: link, Delay: lead})
}

// RunAliceBobANC simulates one run of the Fig. 1(d) schedule: in every
// exchange Alice and Bob transmit simultaneously (the router's trigger
// stimulates both; the second starts after the §7.2 random delay), the
// router amplifies and broadcasts the interfered signal, and each
// endpoint cancels its own packet to decode the other's.
func RunAliceBobANC(cfg Config, seed int64) Metrics {
	e := newEnv(cfg, seed, topology.AliceBob)
	var m Metrics
	alice, bob := e.nodes[0], e.nodes[2]
	for i := 0; i < e.cfg.Packets; i++ {
		pktA := frame.NewPacket(alice.ID, bob.ID, alice.NextSeq(), e.payload())
		pktB := frame.NewPacket(bob.ID, alice.ID, bob.NextSeq(), e.payload())
		mac.MarkTrigger(&pktA.Header)
		recA := alice.BuildFrame(pktA)
		recB := bob.BuildFrame(pktB)

		// Slot 1: simultaneous uplinks; one of the two (random) starts
		// after the drawn delay.
		delta := e.cfg.Delay.Draw(e.rng)
		dA, dB := 0, delta
		if e.rng.Intn(2) == 1 {
			dA, dB = delta, 0
		}
		linkAR, _ := e.graph.Link(0, 1)
		linkBR, _ := e.graph.Link(2, 1)
		routerRx := channel.Receive(e.noise(), e.tailPad,
			channel.Transmission{Signal: recA.Samples, Link: linkAR, Delay: dA},
			channel.Transmission{Signal: recB.Samples, Link: linkBR, Delay: dB},
		)
		// Slot 2: the router re-amplifies to its transmit power and
		// broadcasts, noise and all (§2, §8).
		relayed := channel.AmplifyTo(routerRx, 1)
		linkRA, _ := e.graph.Link(1, 0)
		linkRB, _ := e.graph.Link(1, 2)
		rxA := channel.Receive(e.noise(), e.tailPad,
			channel.Transmission{Signal: relayed, Link: linkRA})
		rxB := channel.Receive(e.noise(), e.tailPad,
			channel.Transmission{Signal: relayed, Link: linkRB})

		e.accountANCDecode(&m, alice, rxA, recB)
		e.accountANCDecode(&m, bob, rxB, recA)

		m.Overlaps = append(m.Overlaps, mac.OverlapFraction(e.frameLen, delta))
		m.TimeSamples += float64(2 * (delta + e.frameLen + e.guard))
	}
	return m
}

// accountANCDecode decodes an interfered reception at a node, measures the
// payload BER against the wanted frame, and charges goodput/loss.
func (e *env) accountANCDecode(m *Metrics, n *radio.Node, rx dsp.Signal, wanted frame.SentRecord) {
	res, err := n.Receive(rx)
	if err != nil {
		m.Lost++
		return
	}
	// Delivery is BER-gated, not header-CRC-gated: with the fixed frame
	// size configured, header bit errors are repaired by the same FEC
	// whose overhead the redundancy model charges (paper §11.2, §11.4).
	ber := payloadBER(wanted.Bits, res.WantedBits, int(wanted.Packet.Header.Len))
	m.BERs = append(m.BERs, ber)
	good := e.cfg.Redundancy.Goodput(ber)
	if good == 0 {
		m.Lost++
		return
	}
	m.Delivered++
	m.DeliveredBits += float64(int(wanted.Packet.Header.Len)*8) * good
}

// RunAliceBobTraditional simulates the Fig. 1(b) schedule under the
// optimal MAC: four sequential single-signal transmissions per exchange,
// with the router decoding and re-modulating (digital regeneration) at
// each relay hop.
func RunAliceBobTraditional(cfg Config, seed int64) Metrics {
	e := newEnv(cfg, seed, topology.AliceBob)
	var m Metrics
	alice, router, bob := e.nodes[0], e.nodes[1], e.nodes[2]
	for i := 0; i < e.cfg.Packets; i++ {
		pktA := frame.NewPacket(alice.ID, bob.ID, alice.NextSeq(), e.payload())
		pktB := frame.NewPacket(bob.ID, alice.ID, bob.NextSeq(), e.payload())
		e.traditionalRelay(&m, alice, router, bob, pktA, 0, 1, 2)
		e.traditionalRelay(&m, bob, router, alice, pktB, 2, 1, 0)
	}
	return m
}

// traditionalRelay delivers one packet src→relay→dst with two clean hops.
func (e *env) traditionalRelay(m *Metrics, src, relay, dst *radio.Node, pkt frame.Packet, si, ri, di int) {
	rec := src.BuildFrame(pkt)
	m.TimeSamples += float64(2 * (e.frameLen + e.guard))
	ok, payload := e.cleanHop(rec, si, ri)
	if !ok {
		m.Lost++
		return
	}
	fwd := relay.BuildFrame(frame.Packet{Header: pkt.Header, Payload: payload})
	ok, payload = e.cleanHop(fwd, ri, di)
	if !ok {
		m.Lost++
		return
	}
	m.Delivered++
	m.DeliveredBits += float64(len(payload) * 8)
}

// RunAliceBobCOPE simulates the Fig. 1(c) schedule: sequential uplinks,
// then a single XOR-coded broadcast that both endpoints decode with their
// own packet (digital network coding, [17]).
func RunAliceBobCOPE(cfg Config, seed int64) Metrics {
	e := newEnv(cfg, seed, topology.AliceBob)
	var m Metrics
	alice, router, bob := e.nodes[0], e.nodes[1], e.nodes[2]
	pool := cope.NewPool()
	for i := 0; i < e.cfg.Packets; i++ {
		pktA := frame.NewPacket(alice.ID, bob.ID, alice.NextSeq(), e.payload())
		pktB := frame.NewPacket(bob.ID, alice.ID, bob.NextSeq(), e.payload())

		// Slots 1 and 2: the two uplinks.
		m.TimeSamples += float64(2 * (e.frameLen + e.guard))
		okA, gotA := e.cleanHop(alice.BuildFrame(pktA), 0, 1)
		okB, gotB := e.cleanHop(bob.BuildFrame(pktB), 2, 1)
		if okA {
			pool.Put(frame.Packet{Header: pktA.Header, Payload: gotA})
		}
		if okB {
			pool.Put(frame.Packet{Header: pktB.Header, Payload: gotB})
		}

		// Slot 3: coded broadcast whenever the pool has a pair.
		a, b, have := pool.TakePair(alice.ID, bob.ID, bob.ID, alice.ID)
		if !have {
			// An uplink loss starves the coding opportunity; the missing
			// counterpart is lost outright (no retransmission modeling,
			// matching the other schemes).
			m.Lost += 2 - boolToInt(okA) - boolToInt(okB)
			continue
		}
		coded, err := cope.Encode(router.ID, router.NextSeq(), a, b)
		if err != nil {
			m.Lost += 2
			continue
		}
		m.TimeSamples += float64(e.frameLen + e.guard)
		rec := router.BuildFrame(coded)
		okToA, codedAtA := e.cleanHop(rec, 1, 0)
		okToB, codedAtB := e.cleanHop(rec, 1, 2)
		e.accountCOPEDecode(&m, okToA, codedAtA, coded.Header, a.Payload, b.Payload)
		e.accountCOPEDecode(&m, okToB, codedAtB, coded.Header, b.Payload, a.Payload)
	}
	return m
}

// accountCOPEDecode XORs a received coded payload with the endpoint's own
// native payload and checks the result against the counterpart.
func (e *env) accountCOPEDecode(m *Metrics, ok bool, codedPayload []byte, h frame.Header, own, want []byte) {
	if !ok {
		m.Lost++
		return
	}
	got, err := cope.Decode(frame.Packet{Header: h, Payload: codedPayload}, own)
	if err != nil || string(got) != string(want) {
		m.Lost++
		return
	}
	m.Delivered++
	m.DeliveredBits += float64(len(want) * 8)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
