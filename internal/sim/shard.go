package sim

import "fmt"

// SeedRange is a half-open index range [Lo, Hi) into a campaign's seed
// slice — one shard's share of the runs.
type SeedRange struct {
	Lo, Hi int
}

// Len returns the number of seeds in the range.
func (r SeedRange) Len() int { return r.Hi - r.Lo }

// SplitSeeds partitions a campaign of n seeds into the given number of
// contiguous shards: shard i covers [i·n/k, (i+1)·n/k), so the ranges
// are disjoint, cover [0, n) exactly, and differ in size by at most one.
// The split is a pure function of (n, shards) — every coordinator and
// worker computes the identical partition, which is what lets shard
// outputs merge back into the unsharded campaign document byte for byte
// (experiments.MergeSummaries). Shards beyond n are empty ranges, not an
// error: a fixed worker fleet may outnumber a small campaign.
//
// Panics when shards < 1 or n < 0 — a programming error, not a runtime
// condition (CLI surfaces validate their -shard flag before calling).
func SplitSeeds(n, shards int) []SeedRange {
	if shards < 1 {
		panic(fmt.Sprintf("sim: SplitSeeds with %d shards", shards))
	}
	if n < 0 {
		panic(fmt.Sprintf("sim: SplitSeeds with negative n %d", n))
	}
	out := make([]SeedRange, shards)
	for i := range out {
		out[i] = SeedRange{Lo: i * n / shards, Hi: (i + 1) * n / shards}
	}
	return out
}
