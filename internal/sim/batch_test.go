package sim

import (
	"reflect"
	"testing"
)

// TestBatchedDecodeMatchesSequential sweeps every registered scenario ×
// supported scheme × registered modem, comparing the burst decode path
// (each slot's receptions gathered and run through core.DecodeBatch, the
// campaign default) against per-reception sequential Decode calls (the
// Scratch.sequentialDecodes escape hatch). Identical seeds must produce
// identical Metrics bit for bit: batching amortizes setup, it never
// changes a decode. Subtests are grouped by modem name so the CI modem
// matrix can race exactly its own cells.
func TestBatchedDecodeMatchesSequential(t *testing.T) {
	seeds := []int64{3, 44}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, modem := range []string{"msk", "dqpsk"} {
		t.Run(modem, func(t *testing.T) {
			eng := NewEngine(Config{Packets: 2, Modem: modem})
			batched := NewScratch()
			sequential := NewScratch()
			sequential.sequentialDecodes = true
			for _, sc := range Scenarios() {
				for _, scheme := range sc.Schemes() {
					for _, seed := range seeds {
						b, err := eng.RunReusing(sc, scheme, seed, batched)
						if err != nil {
							t.Fatalf("%s/%s seed %d: batched run: %v", sc.Name(), scheme, seed, err)
						}
						s, err := eng.RunReusing(sc, scheme, seed, sequential)
						if err != nil {
							t.Fatalf("%s/%s seed %d: sequential run: %v", sc.Name(), scheme, seed, err)
						}
						if !reflect.DeepEqual(b, s) {
							t.Errorf("%s/%s seed %d: batched metrics diverge from sequential decodes:\nbatched:    %+v\nsequential: %+v",
								sc.Name(), scheme, seed, b, s)
						}
					}
				}
			}
		})
	}
}

// TestPooledRunConstructionAllocs pins the per-run construction pooling:
// a warmed campaign worker re-running a scenario must allocate well under
// half of what fresh-Scratch runs do, because the nodes, decoders, RNG,
// noise source, Env shell and all sample/decode buffers come from the
// worker's pool — only the topology graph (whose construction draws from
// the run RNG) and the per-packet synthesis remain per-run.
func TestPooledRunConstructionAllocs(t *testing.T) {
	eng := NewEngine(Config{Packets: 2})
	sc := MustScenario("alice-bob")
	run := func(scratch *Scratch, seed int64) {
		if _, err := eng.RunReusing(sc, SchemeANC, seed, scratch); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	fresh := testing.AllocsPerRun(5, func() { run(NewScratch(), 9) })
	pooled := NewScratch()
	for i := 0; i < 2; i++ {
		run(pooled, 9)
	}
	warm := testing.AllocsPerRun(5, func() { run(pooled, 9) })
	t.Logf("allocs/run: fresh scratch %.0f, warmed pool %.0f", fresh, warm)
	if warm > fresh/2 {
		t.Errorf("warmed-pool run allocates %.0f objects, fresh scratch %.0f — pooling regressed (want < half)", warm, fresh)
	}
}
