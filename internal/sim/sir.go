package sim

import (
	"math"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/topology"
)

// SIRPoint is one row of the Fig. 13 series: the mean BER of Alice's
// decode of Bob's packet when the received signal-to-interference ratio
// at Alice is SIR = 10·log10(P_Bob/P_Alice) (Eq. 9 — Alice's own signal
// counts as the interference because Bob's is the one she wants).
type SIRPoint struct {
	SIRdB   float64
	MeanBER float64
	Decoded int // packets that reached the BER measurement
	Lost    int // alignment/header failures
}

// RunSIRPoint measures the BER at Alice for one SIR value by scaling
// Bob's transmit power while Alice's stays fixed (§11.7). Both uplink
// channels use the same mean gain so the transmit-power ratio equals the
// received-power ratio.
func RunSIRPoint(cfg Config, seed int64, sirDB float64) SIRPoint {
	e := newEnv(cfg, seed, topology.AliceBob, nil)
	alice, bob := e.nodes[0], e.nodes[2]
	// Equalize the uplink gains: Fig. 13 varies only transmit power.
	upA, _ := e.graph.Link(topology.Alice, topology.Router)
	upB, _ := e.graph.Link(topology.Bob, topology.Router)
	upB.Gain = upA.Gain
	bobScale := math.Pow(10, sirDB/20) // amplitude ratio

	pt := SIRPoint{SIRdB: sirDB}
	var sum float64
	for i := 0; i < e.cfg.Packets; i++ {
		pktA := frame.NewPacket(alice.ID, bob.ID, alice.NextSeq(), e.payload())
		pktB := frame.NewPacket(bob.ID, alice.ID, bob.NextSeq(), e.payload())
		recA := alice.BuildFrame(pktA)
		recB := bob.BuildFrame(pktB)
		scaledB := recB.Samples.Scale(complex(bobScale, 0))

		delta := e.cfg.Delay.Draw(e.rng)
		routerRx := channel.Receive(e.noise(), e.tailPad,
			channel.Transmission{Signal: recA.Samples, Link: upA},
			channel.Transmission{Signal: scaledB, Link: upB, Delay: delta},
		)
		relayed := channel.AmplifyTo(routerRx, 1)
		downA, _ := e.graph.Link(topology.Router, topology.Alice)
		rxA := channel.Receive(e.noise(), e.tailPad,
			channel.Transmission{Signal: relayed, Link: downA})

		res, err := alice.Receive(rxA)
		if err != nil {
			pt.Lost++
			continue
		}
		sum += payloadBER(recB.Bits, res.WantedBits, int(pktB.Header.Len))
		pt.Decoded++
	}
	if pt.Decoded > 0 {
		pt.MeanBER = sum / float64(pt.Decoded)
	}
	return pt
}

// SIRSweep evaluates Fig. 13 over a range of SIR values.
func SIRSweep(cfg Config, seed int64, fromDB, toDB, stepDB float64) []SIRPoint {
	if stepDB <= 0 {
		panic("sim: non-positive SIR step")
	}
	var out []SIRPoint
	i := int64(0)
	for db := fromDB; db <= toDB+1e-9; db += stepDB {
		out = append(out, RunSIRPoint(cfg, seed+i, db))
		i++
	}
	return out
}
