package sim

import (
	"repro/internal/channel"
	"repro/internal/cope"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/topology"
)

// xTopo is the Fig. 11 "X": two flows crossing at a center router, with
// the destinations learning the interfering packet by overhearing.
var xTopo = &simpleScenario{
	name:  "x",
	desc:  "Fig. 11 X topology: two flows cross at a router; destinations overhear",
	build: topology.X,
	order: []Scheme{SchemeANC, SchemeRouting, SchemeCOPE},
	start: map[Scheme]func(*Env) StepFunc{
		SchemeANC:     func(e *Env) StepFunc { return func(i int, r Recorder) { stepXANC(e, r) } },
		SchemeRouting: func(e *Env) StepFunc { return func(i int, r Recorder) { stepXTraditional(e, r) } },
		SchemeCOPE:    func(e *Env) StepFunc { return func(i int, r Recorder) { stepXCOPE(e, r) } },
	},
}

func init() { Register(xTopo) }

// XTopo returns the registered Fig. 11 scenario.
func XTopo() Scenario { return xTopo }

// stepXANC runs one cycle of the "X" under ANC: N1→N4 and N3→N2 transmit
// simultaneously; N2 overhears N1 (through a good side link, but
// corrupted by N3's concurrent weak cross-path signal) and N4 overhears
// N3 symmetrically. The center router N5 amplifies and broadcasts the
// interfered signal; each destination cancels the overheard packet to
// recover the one it wants.
//
// Overhearing is best-effort: if the overheard header decodes, the
// recovered bits are used for cancellation even when the payload carried
// errors — which is what produces the elevated-BER tail of Fig. 10(b).
// If the overheard header fails, the destination cannot decode at all and
// its packet is lost (§11.5's "packet losses in overhearing"). The
// schedule addresses nodes through the topology.X* indices, so it applies
// to any graph whose first five nodes follow that layout (topology.XCross
// reuses it).
func stepXANC(e *Env, r Recorder) {
	n1, n2, n3, n4 := e.nodes[topology.X1], e.nodes[topology.X2], e.nodes[topology.X3], e.nodes[topology.X4]
	pkt1 := frame.NewPacket(n1.ID, n4.ID, n1.NextSeq(), e.payload()) // N1 → N4
	pkt3 := frame.NewPacket(n3.ID, n2.ID, n3.NextSeq(), e.payload()) // N3 → N2
	rec1 := n1.BuildFrame(pkt1)
	rec3 := n3.BuildFrame(pkt3)

	delta := e.cfg.Delay.Draw(e.rng)
	d1, d3 := 0, delta
	if e.rng.Intn(2) == 1 {
		d1, d3 = delta, 0
	}

	// Slot 1: simultaneous uplinks. The router hears both strongly;
	// each destination overhears its neighbor plus the weak cross
	// interference from the other sender.
	up1, _ := e.graph.Link(topology.X1, topology.XRouter)
	up3, _ := e.graph.Link(topology.X3, topology.XRouter)
	routerRx := e.receive(
		channel.Transmission{Signal: rec1.Samples, Link: up1, Delay: d1},
		channel.Transmission{Signal: rec3.Samples, Link: up3, Delay: d3},
	)

	over12, _ := e.graph.Link(topology.X1, topology.X2)
	cross32, _ := e.graph.Link(topology.X3, topology.X2)
	snoopN2 := e.receive(
		channel.Transmission{Signal: rec1.Samples, Link: over12, Delay: d1},
		channel.Transmission{Signal: rec3.Samples, Link: cross32, Delay: d3},
	)
	over34, _ := e.graph.Link(topology.X3, topology.X4)
	cross14, _ := e.graph.Link(topology.X1, topology.X4)
	snoopN4 := e.receive(
		channel.Transmission{Signal: rec3.Samples, Link: over34, Delay: d3},
		channel.Transmission{Signal: rec1.Samples, Link: cross14, Delay: d1},
	)
	n2.Overhear(snoopN2)
	n4.Overhear(snoopN4)
	e.release(snoopN2)
	e.release(snoopN4)

	// Slot 2: the router amplifies and broadcasts; destinations
	// cancel what they overheard. The amplification reuses the reception
	// buffer in place.
	relayed := channel.AmplifyToInPlace(routerRx, 1)
	downTo2, _ := e.graph.Link(topology.XRouter, topology.X2)
	downTo4, _ := e.graph.Link(topology.XRouter, topology.X4)
	rxN2 := e.receive(channel.Transmission{Signal: relayed, Link: downTo2})
	rxN4 := e.receive(channel.Transmission{Signal: relayed, Link: downTo4})
	e.release(relayed)

	// Both destinations' decodes run as one burst (the overhears above
	// already stored their cancellation references).
	e.queueANCDecode(n2, rxN2, rec3)
	e.queueANCDecode(n4, rxN4, rec1)
	e.flushANCDecodes(r)

	r.RecordCollision(mac.OverlapFraction(e.frameLen, delta))
	r.RecordAirTime(float64(2 * (delta + e.frameLen + e.guard)))
}

// stepXTraditional routes both flows through the center router with four
// sequential transmissions per packet pair.
func stepXTraditional(e *Env, r Recorder) {
	n1, n2, n3, n4, router := e.nodes[topology.X1], e.nodes[topology.X2], e.nodes[topology.X3], e.nodes[topology.X4], e.nodes[topology.XRouter]
	pkt1 := frame.NewPacket(n1.ID, n4.ID, n1.NextSeq(), e.payload())
	pkt3 := frame.NewPacket(n3.ID, n2.ID, n3.NextSeq(), e.payload())
	e.traditionalRelay(r, n1, router, n4, pkt1, topology.X1, topology.XRouter, topology.X4)
	e.traditionalRelay(r, n3, router, n2, pkt3, topology.X3, topology.XRouter, topology.X2)
}

// stepXCOPE runs one cycle of digital network coding over the "X":
// sequential uplinks (so overhearing is interference free — the
// idealization the paper grants COPE), then one XOR broadcast decoded
// against the overheard packets.
func stepXCOPE(e *Env, r Recorder) {
	n1, n2, n3, n4, router := e.nodes[topology.X1], e.nodes[topology.X2], e.nodes[topology.X3], e.nodes[topology.X4], e.nodes[topology.XRouter]
	pkt1 := frame.NewPacket(n1.ID, n4.ID, n1.NextSeq(), e.payload())
	pkt3 := frame.NewPacket(n3.ID, n2.ID, n3.NextSeq(), e.payload())
	rec1 := n1.BuildFrame(pkt1)
	rec3 := n3.BuildFrame(pkt3)

	// Slot 1: N1's uplink; N2 snoops it cleanly.
	r.RecordAirTime(float64(e.frameLen + e.guard))
	ok1, got1 := e.cleanHop(rec1, topology.X1, topology.XRouter)
	over12, _ := e.graph.Link(topology.X1, topology.X2)
	snoopRx2 := e.receive(channel.Transmission{Signal: rec1.Samples, Link: over12, Delay: cleanLead})
	resSnoop2, errSnoop2 := n2.Overhear(snoopRx2)
	e.release(snoopRx2)
	snoop2OK := errSnoop2 == nil && resSnoop2.BodyOK

	// Slot 2: N3's uplink; N4 snoops.
	r.RecordAirTime(float64(e.frameLen + e.guard))
	ok3, got3 := e.cleanHop(rec3, topology.X3, topology.XRouter)
	over34, _ := e.graph.Link(topology.X3, topology.X4)
	snoopRx4 := e.receive(channel.Transmission{Signal: rec3.Samples, Link: over34, Delay: cleanLead})
	resSnoop4, errSnoop4 := n4.Overhear(snoopRx4)
	e.release(snoopRx4)
	snoop4OK := errSnoop4 == nil && resSnoop4.BodyOK

	if !ok1 || !ok3 {
		r.RecordLost(2)
		return
	}
	coded, err := cope.Encode(router.ID, router.NextSeq(), frame.Packet{Header: pkt1.Header, Payload: got1}, frame.Packet{Header: pkt3.Header, Payload: got3})
	if err != nil {
		r.RecordLost(2)
		return
	}

	// Slot 3: XOR broadcast.
	r.RecordAirTime(float64(e.frameLen + e.guard))
	rec := router.BuildFrame(coded)
	okTo2, codedAt2 := e.cleanHop(rec, topology.XRouter, topology.X2)
	okTo4, codedAt4 := e.cleanHop(rec, topology.XRouter, topology.X4)
	var known2, known4 []byte
	if snoop2OK {
		known2 = resSnoop2.Packet.Payload
	}
	if snoop4OK {
		known4 = resSnoop4.Packet.Payload
	}
	e.accountCOPEDecode(r, okTo2 && snoop2OK, codedAt2, coded.Header, known2, pkt3.Payload)
	e.accountCOPEDecode(r, okTo4 && snoop4OK, codedAt4, coded.Header, known4, pkt1.Payload)
}

// RunXANC simulates one run of the "X" topology of Fig. 11 under ANC.
func RunXANC(cfg Config, seed int64) Metrics {
	return mustRun(xTopo, SchemeANC, cfg, seed)
}

// RunXTraditional simulates one run of the "X" under traditional routing.
func RunXTraditional(cfg Config, seed int64) Metrics {
	return mustRun(xTopo, SchemeRouting, cfg, seed)
}

// RunXCOPE simulates one run of the "X" under digital network coding.
func RunXCOPE(cfg Config, seed int64) Metrics {
	return mustRun(xTopo, SchemeCOPE, cfg, seed)
}
