package sim

import (
	"fmt"

	"repro/internal/cope"
	"repro/internal/topology"
)

// NewParallelPairs builds the scenario the scenario engine unlocks first:
// k independent Alice–Bob relay cells sharing one band. The cells do not
// hear each other; they compete only for air time, which the schedule
// divides round-robin — every step runs one exchange in each cell, so the
// per-cell throughput is the single-pair number divided by k while the
// aggregate (what Metrics reports) stays at the single-pair level. The
// ANC-over-routing gain is therefore preserved under spatial reuse
// pressure, which is the point: the relative gains of Fig. 9 are
// insensitive to how many cells share the band.
//
// Pair p's alice, router and bob sit at topology.PairBase(p)+0, +1, +2.
func NewParallelPairs(k int) Scenario {
	name := "pairs"
	if k != 2 {
		name = fmt.Sprintf("pairs%d", k)
	}
	return &simpleScenario{
		name:  name,
		desc:  fmt.Sprintf("%d parallel Alice–Bob relay cells time-sharing one band", k),
		build: topology.ParallelPairs(k),
		order: []Scheme{SchemeANC, SchemeRouting, SchemeCOPE},
		start: map[Scheme]func(*Env) StepFunc{
			SchemeANC: func(e *Env) StepFunc {
				return func(i int, r Recorder) {
					for p := 0; p < k; p++ {
						base := topology.PairBase(p)
						stepAliceBobANC(e, r, base, base+1, base+2)
					}
				}
			},
			SchemeRouting: func(e *Env) StepFunc {
				return func(i int, r Recorder) {
					for p := 0; p < k; p++ {
						base := topology.PairBase(p)
						stepAliceBobTraditional(e, r, base, base+1, base+2)
					}
				}
			},
			SchemeCOPE: func(e *Env) StepFunc {
				pools := make([]*cope.Pool, k)
				for p := range pools {
					pools[p] = cope.NewPool()
				}
				return func(i int, r Recorder) {
					for p := 0; p < k; p++ {
						base := topology.PairBase(p)
						stepAliceBobCOPE(e, r, pools[p], base, base+1, base+2)
					}
				}
			},
		},
	}
}

func init() {
	Register(NewParallelPairs(2))
	Register(NewParallelPairs(4))
}
