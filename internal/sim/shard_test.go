package sim

import "testing"

// TestSplitSeedsPartition pins the coordinator/worker contract: the
// shard ranges are a disjoint, contiguous, balanced cover of [0, n),
// identical for every caller.
func TestSplitSeedsPartition(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{0, 1}, {1, 1}, {7, 1}, {7, 2}, {7, 7}, {3, 7}, {100, 3}, {100000, 17},
	} {
		ranges := SplitSeeds(tc.n, tc.shards)
		if len(ranges) != tc.shards {
			t.Fatalf("SplitSeeds(%d,%d): %d ranges", tc.n, tc.shards, len(ranges))
		}
		next := 0
		minLen, maxLen := tc.n, 0
		for i, r := range ranges {
			if r.Lo != next || r.Hi < r.Lo {
				t.Errorf("SplitSeeds(%d,%d): shard %d = %+v not contiguous from %d", tc.n, tc.shards, i, r, next)
			}
			next = r.Hi
			if r.Len() < minLen {
				minLen = r.Len()
			}
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
		}
		if next != tc.n {
			t.Errorf("SplitSeeds(%d,%d): covers [0,%d)", tc.n, tc.shards, next)
		}
		if maxLen-minLen > 1 {
			t.Errorf("SplitSeeds(%d,%d): unbalanced (sizes %d..%d)", tc.n, tc.shards, minLen, maxLen)
		}
	}
}

func TestSplitSeedsPanicsOnBadArgs(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero shards", func() { SplitSeeds(10, 0) })
	mustPanic("negative shards", func() { SplitSeeds(10, -1) })
	mustPanic("negative n", func() { SplitSeeds(-1, 2) })
}
