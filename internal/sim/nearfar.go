package sim

import (
	"math/rand"

	"repro/internal/topology"
)

// nearFarPowerRatio is the far endpoint's power handicap: Bob's links
// carry half of Alice's power (−3 dB), the cell-edge client of an
// asymmetric-SNR cell — the examples/scenarios sketch, promoted. The
// Lemma 6.1 phase solver feeds on exactly this amplitude gap, while the
// weak uplink raises Bob-side BER; past about 6 dB of asymmetry the
// interference decode degrades faster than the clean hops and the ANC
// gain inverts, which is the regime boundary the scenario probes.
const nearFarPowerRatio = 0.5

// nearFarBuild lays out alice(0) — router(1) — bob(2) with Bob's links
// drawn around the handicapped mean. This promotes the
// examples/scenarios sketch into the registry.
func nearFarBuild(cfg topology.Config, rng *rand.Rand) *topology.Graph {
	g := topology.New(3, []string{"alice", "router", "bob"}, cfg, rng)
	g.ConnectBoth(topology.Alice, topology.Router, cfg.MeanPowerGain, cfg.GainJitterDB, rng)
	g.ConnectBoth(topology.Bob, topology.Router, cfg.MeanPowerGain*nearFarPowerRatio, cfg.GainJitterDB, rng)
	return g
}

// nearFar is the asymmetric-SNR Alice–Bob cell: the Fig. 1 schedules
// verbatim, over a topology where Bob sits at the cell edge.
var nearFar = &simpleScenario{
	name:  "near-far",
	desc:  "Alice–Bob cell with Bob at the cell edge: his links carry 3 dB less power",
	build: nearFarBuild,
	order: []Scheme{SchemeANC, SchemeRouting, SchemeCOPE},
	start: aliceBobSchedules(),
}

func init() { Register(nearFar) }

// NearFar returns the registered asymmetric-SNR cell scenario.
func NearFar() Scenario { return nearFar }
