package sim

import (
	"repro/internal/cope"
	"repro/internal/topology"
)

// xCross drives the X schedules over an arbitrary topology graph: the
// Fig. 11 "X" with an Alice–Bob exchange hanging off the same center
// router as cross traffic. Each cycle runs one X round (two crossing
// unidirectional flows, overhearing and all) followed by one two-way
// exchange, so the router alternates between relaying strangers' crossing
// packets and triggering a bidirectional pair — the mixed workload a real
// mesh router sees. Works because stepXANC/COPE/Traditional address nodes
// through the topology.X* indices, which topology.XCross preserves.
var xCross = &simpleScenario{
	name:  "x-cross",
	desc:  "Fig. 11 X plus an Alice–Bob pair as cross traffic at the same router",
	build: topology.XCross,
	order: []Scheme{SchemeANC, SchemeRouting, SchemeCOPE},
	start: map[Scheme]func(*Env) StepFunc{
		SchemeANC: func(e *Env) StepFunc {
			return func(i int, r Recorder) {
				stepXANC(e, r)
				stepAliceBobANC(e, r, topology.XCrossAlice, topology.XRouter, topology.XCrossBob)
			}
		},
		SchemeRouting: func(e *Env) StepFunc {
			return func(i int, r Recorder) {
				stepXTraditional(e, r)
				stepAliceBobTraditional(e, r, topology.XCrossAlice, topology.XRouter, topology.XCrossBob)
			}
		},
		SchemeCOPE: func(e *Env) StepFunc {
			pool := cope.NewPool()
			return func(i int, r Recorder) {
				stepXCOPE(e, r)
				stepAliceBobCOPE(e, r, pool, topology.XCrossAlice, topology.XRouter, topology.XCrossBob)
			}
		},
	},
}

func init() { Register(xCross) }

// XCross returns the registered cross-traffic X scenario.
func XCross() Scenario { return xCross }
