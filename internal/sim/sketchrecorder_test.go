package sim

import (
	"bytes"
	"math"
	"testing"
)

// TestSketchRecorderMatchesMetrics runs the same seeds under the default
// Metrics recorder and under one campaign-wide SketchRecorder: the
// integer tallies must agree exactly, the pooled sketches must hold
// every observation with exact extremes, and the pooled means must sit
// within the sketch accuracy of the exact pools.
func TestSketchRecorderMatchesMetrics(t *testing.T) {
	eng := NewEngine(Config{Packets: 3})
	sc := MustScenario("alice-bob")
	seeds := []int64{1, 2, 3, 4, 5}

	rec := NewSketchRecorder()
	var ms []Metrics
	scratch := NewScratch()
	for _, seed := range seeds {
		var m Metrics
		if err := eng.RunRecording(sc, SchemeANC, seed, &m, scratch); err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
		if err := eng.RunRecording(sc, SchemeANC, seed, rec, scratch); err != nil {
			t.Fatal(err)
		}
	}

	var delivered, lost int64
	var bers []float64
	for _, m := range ms {
		delivered += int64(m.Delivered)
		lost += int64(m.Lost)
		bers = append(bers, m.BERs...)
	}
	if rec.Delivered != delivered || rec.Lost != lost {
		t.Errorf("tallies: got %d/%d, want %d/%d", rec.Delivered, rec.Lost, delivered, lost)
	}
	if rec.BER().Len() != len(bers) {
		t.Fatalf("BER pool holds %d observations, want %d", rec.BER().Len(), len(bers))
	}
	min, max, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, b := range bers {
		min, max, sum = math.Min(min, b), math.Max(max, b), sum+b
	}
	if rec.BER().Min() != min || rec.BER().Max() != max {
		t.Errorf("BER extremes [%v,%v], want exact [%v,%v]", rec.BER().Min(), rec.BER().Max(), min, max)
	}
	exactMean := sum / float64(len(bers))
	if diff := math.Abs(rec.BER().Mean() - exactMean); diff > rec.BER().Alpha()*exactMean+1e-12 {
		t.Errorf("BER mean %v vs exact %v", rec.BER().Mean(), exactMean)
	}

	// Per-edge gain sketches: every topology edge observed every slot.
	links := rec.Links()
	if len(links) == 0 {
		t.Fatal("no link sketches recorded")
	}
	wantSlots := int64(len(seeds) * 3) // Packets=3 slots per run
	for _, l := range links {
		if l.Gains.Count() != wantSlots {
			t.Errorf("link %d->%d pooled %d slots, want %d", l.From, l.To, l.Gains.Count(), wantSlots)
		}
		if rec.Link(l.From, l.To) != l.Gains {
			t.Errorf("Link(%d,%d) does not return the pooled sketch", l.From, l.To)
		}
	}
}

// TestSketchRecorderMergeEqualsSequential is the sharding property one
// level below the campaign document: recording seeds 1..6 into one
// recorder builds bit-identical sketches to recording 1..3 and 4..6
// into two recorders and merging — in either order.
func TestSketchRecorderMergeEqualsSequential(t *testing.T) {
	sc := MustScenario("x-cross")
	run := func(rec *SketchRecorder, seeds []int64) {
		eng := NewEngine(Config{Packets: 2})
		scratch := NewScratch()
		for _, seed := range seeds {
			for _, scheme := range sc.Schemes() {
				if err := eng.RunRecording(sc, scheme, seed, rec, scratch); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	whole := NewSketchRecorder()
	run(whole, []int64{1, 2, 3, 4, 5, 6})
	a, b := NewSketchRecorder(), NewSketchRecorder()
	run(a, []int64{1, 2, 3})
	run(b, []int64{4, 5, 6})

	for _, order := range []struct {
		name   string
		lo, hi *SketchRecorder
	}{{"a+b", a, b}, {"b+a", b, a}} {
		merged := NewSketchRecorder()
		if err := merged.Merge(order.lo); err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(order.hi); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(merged.BER().Encode(), whole.BER().Encode()) {
			t.Errorf("%s: merged BER sketch != sequential", order.name)
		}
		if !bytes.Equal(merged.Overlap().Encode(), whole.Overlap().Encode()) {
			t.Errorf("%s: merged overlap sketch != sequential", order.name)
		}
		wantLinks, gotLinks := whole.Links(), merged.Links()
		if len(wantLinks) != len(gotLinks) {
			t.Fatalf("%s: %d merged link sketches, want %d", order.name, len(gotLinks), len(wantLinks))
		}
		for i := range wantLinks {
			if !bytes.Equal(gotLinks[i].Gains.Encode(), wantLinks[i].Gains.Encode()) {
				t.Errorf("%s: link %d->%d sketch differs", order.name, wantLinks[i].From, wantLinks[i].To)
			}
		}
		if merged.Delivered != whole.Delivered || merged.Lost != whole.Lost {
			t.Errorf("%s: tallies differ", order.name)
		}
	}

	if err := NewSketchRecorder().Merge(NewSketchRecorderAlpha(0.01)); err == nil {
		t.Error("cross-alpha recorder merge did not fail")
	}
}

// TestSketchRecorderFootprintFlat is the campaign-scale memory pin the
// acceptance criteria name: a 100×-longer campaign's recorder encodes to
// essentially the same footprint — the pools are O(sketch), never
// O(observations).
func TestSketchRecorderFootprintFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("footprint pin feeds 100k synthetic runs")
	}
	footprint := func(runs int) int {
		rec := NewSketchRecorder()
		// Synthesized observation stream shaped like a campaign: one
		// decode BER, one collision overlap and three link states per
		// run, values drawn from a deterministic spread.
		for i := 0; i < runs; i++ {
			f := float64(i%997) / 997
			rec.RecordANCDecode(0.04 * f)
			rec.RecordCollision(0.6 + 0.4*f)
			rec.RecordDelivered(1024)
			rec.RecordAirTime(4096)
			for e := 0; e < 3; e++ {
				rec.RecordLinkState(i, e, e+1, 0.5+f)
			}
		}
		total := len(rec.BER().Encode()) + len(rec.Overlap().Encode())
		for _, l := range rec.Links() {
			total += len(l.Gains.Encode())
		}
		return total
	}
	small, large := footprint(1_000), footprint(100_000)
	if large > small+small/5 {
		t.Errorf("recorder footprint grew with campaign length: %dB at 1k runs vs %dB at 100k", small, large)
	}
}
