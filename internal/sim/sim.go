// Package sim runs the paper's evaluation (§11) in simulation: it builds
// the canonical topologies, schedules transmissions the way each compared
// scheme would (ANC with triggered simultaneous senders, traditional
// routing and COPE under the optimal MAC of §11.1), synthesizes every
// reception at complex-baseband sample level, runs the full receiver
// pipelines, and accounts throughput, overlap, and bit error rates.
//
// The evaluation is organized as a pluggable scenario engine: a Scenario
// contributes a topology and per-slot schedules, the Engine owns the
// shared machinery (seeded RNG fan-out, channel realization, node
// lifecycle, reusable reception buffers, the campaign worker pool), and
// the registry makes scenarios selectable by name. The paper's three
// topologies are Scenario implementations like any other; see Scenario,
// Engine and Register.
//
// Results flow through the Recorder interface: schedules emit typed
// observations (deliveries, losses, decode BERs, collision overlaps,
// air time, per-slot link states) and the recorder decides what to
// keep — Metrics accumulates the paper's aggregates, TraceRecorder
// retains channel traces, and Engine.CampaignStream delivers per-seed
// rows to a Sink in seed order at constant memory. See Recorder.
//
// Two calibration constants connect simulated time accounting to the
// paper's testbed (see DESIGN.md and EXPERIMENTS.md):
//
//   - the random-delay distribution is sized so the mean packet overlap is
//     ≈ 80%, the figure §11.4 reports; and
//   - every transmission pays a fixed turnaround guard (GuardFrac·frame),
//     the per-transmission cost that remains even under an optimal MAC.
//
// Collision slots are charged from the first transmission's start to the
// last sample of the union (their duration is offset + frame), which is
// how a receiver-side throughput measurement sees them.
package sim

import (
	"math/rand"

	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/fec"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/topology"
)

// cleanLead is the small lead-in of a single-transmission reception: the
// receiver starts listening this many samples before the packet.
const cleanLead = 100

// Config parameterizes one experiment run.
type Config struct {
	// SamplesPerSymbol for the modem (default 4).
	SamplesPerSymbol int
	// Modem names the registered PHY layer every node of the run
	// modulates with (see internal/phy): "msk", "dqpsk", or any name
	// added via phy.Register. Empty means "the scenario's preferred
	// modem, else MSK" — scenarios that exist to demonstrate a modem
	// (the dqpsk scenario) implement ModemChooser, and an explicit name
	// here always wins over their preference.
	Modem string
	// PayloadBytes per packet (default 128).
	PayloadBytes int
	// SNRdB is the nominal per-link SNR at the mean channel gain. nil
	// means the default 25 dB (the paper: "WLANs operate at SNR around
	// 25-40dB"); set it with Ptr — Ptr(0) is a legitimate 0 dB run, not
	// a request for the default.
	SNRdB *float64
	// Topology holds the channel realization parameters.
	Topology topology.Config
	// Delay is the §7.2 random-delay configuration; derived from the
	// frame length when zero (mean overlap ≈ 80%).
	Delay mac.DelayConfig
	// GuardFrac is the per-transmission turnaround overhead as a fraction
	// of the frame duration. nil means the default 0.08; Ptr(0) disables
	// the guard entirely.
	GuardFrac *float64
	// Packets is the number of exchanges (or delivered packets, for the
	// chain) per run (default 25; the paper used 1000 — the statistic is
	// a mean, so the run count matters more than the per-run count).
	Packets int
	// Redundancy charges FEC overhead against ANC goodput.
	Redundancy fec.RedundancyModel
	// DecoderTweak, if set, adjusts every node's decoder configuration
	// (used by the matcher ablations).
	DecoderTweak func(*core.Config)
}

// Ptr wraps a value for the Config fields whose zero is meaningful
// (SNRdB, GuardFrac): nil means "use the default", Ptr(v) means exactly
// v — including v = 0.
func Ptr(v float64) *float64 { return &v }

// DefaultConfig returns the repository-default experiment parameters.
func DefaultConfig() Config {
	return Config{}.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.SamplesPerSymbol == 0 {
		c.SamplesPerSymbol = 4
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 128
	}
	if c.SNRdB == nil {
		c.SNRdB = Ptr(25)
	}
	// The topology default applies when no channel parameters were set —
	// including when only a fading model was chosen (the README's
	// "campaign-wide fading" path), which must not zero out every gain.
	sansFading := c.Topology
	sansFading.Fading = channel.FadingSpec{}
	if sansFading == (topology.Config{}) {
		fading := c.Topology.Fading
		c.Topology = topology.DefaultConfig()
		c.Topology.Fading = fading
	}
	if c.GuardFrac == nil {
		c.GuardFrac = Ptr(0.08)
	}
	if c.Packets == 0 {
		c.Packets = 25
	}
	if c.Redundancy == (fec.RedundancyModel{}) {
		c.Redundancy = fec.DefaultRedundancy()
	}
	if c.Delay == (mac.DelayConfig{}) {
		m := c.delayModem()
		L := m.NumSamples(frame.FrameBits(c.PayloadBytes))
		// Minimum separation: pilot+header must clear interference even
		// after detector jitter (about one detection window each way).
		// NumSamples-1 is the pilot+header span in samples for any
		// bits-per-symbol (for MSK it is exactly bits·S, the pre-registry
		// derivation).
		window := 4 * c.SamplesPerSymbol * 8
		minSep := m.NumSamples(bits.PilotLength+frame.HeaderBits) - 1 + 3*window
		slot := L / 640
		if slot < 2 {
			slot = 2
		}
		c.Delay = mac.DelayConfig{MinSeparation: minSep, Slots: 32, SlotSamples: slot}
	}
	return c
}

// modem resolves the configured modem name ("" = phy.Default) to an
// instance. Unregistered names panic with the registry enumerated: the
// Engine and the CLI validate up front and turn this into a proper
// error, and the direct construction surfaces (RunSIRPoint,
// FrameSamples, newEnv) must fail loudly rather than silently run the
// default PHY under a typo'd name.
func (c Config) modem() phy.Modem {
	name := c.Modem
	if name == "" {
		name = phy.Default
	}
	return phy.MustNew(name, c.SamplesPerSymbol)
}

// delayModem is modem() falling back to the default PHY on an
// unregistered name: withDefaults must stay total (NewEngine cannot
// return an error), and the bad name is rejected with a proper error
// before any run starts (Engine.runConfig).
func (c Config) delayModem() phy.Modem {
	if name := c.Modem; name != "" {
		if m, err := phy.New(name, c.SamplesPerSymbol); err == nil {
			return m
		}
	}
	return phy.MustNew(phy.Default, c.SamplesPerSymbol)
}

// Metrics aggregates one run's outcome. It is the default Recorder: the
// schedules emit typed observations (see Recorder) and Metrics folds them
// into exactly these aggregates, which keeps the accounting bit-identical
// to the era when steppers mutated the fields directly.
type Metrics struct {
	// DeliveredBits is goodput: payload bits delivered, discounted by the
	// BER-dependent redundancy charge for ANC decodes.
	DeliveredBits float64
	// TimeSamples is the air time consumed, in samples.
	TimeSamples float64
	// BERs holds the payload bit error rate of every ANC-decoded packet
	// (the Fig. 9b/10b/12b data). Empty for the baselines.
	BERs []float64
	// Overlaps holds the per-collision overlap fractions (§11.4).
	Overlaps []float64
	// Delivered and Lost count packets.
	Delivered, Lost int
}

// Throughput returns delivered payload bits per sample of air time.
func (m Metrics) Throughput() float64 {
	if m.TimeSamples == 0 {
		return 0
	}
	return m.DeliveredBits / m.TimeSamples
}

// MeanBER returns the average ANC-decode BER of the run.
func (m Metrics) MeanBER() float64 {
	if len(m.BERs) == 0 {
		return 0
	}
	var s float64
	for _, b := range m.BERs {
		s += b
	}
	return s / float64(len(m.BERs))
}

// MeanOverlap returns the average collision overlap of the run.
func (m Metrics) MeanOverlap() float64 {
	if len(m.Overlaps) == 0 {
		return 0
	}
	var s float64
	for _, o := range m.Overlaps {
		s += o
	}
	return s / float64(len(m.Overlaps))
}

// Env is the assembled machinery for one run: the modem, the per-run
// channel realization, the node transceivers and the shared reception
// scratch buffers. Scenario schedules run against it — the exported
// methods below are the vocabulary a Scenario's Stepper composes its
// per-slot schedule from.
type Env struct {
	cfg        Config
	seed       int64
	rng        *rand.Rand
	modem      phy.Modem
	graph      *topology.Graph
	nodes      []*radio.Node
	noiseFloor float64
	frameLen   int // samples per frame
	guard      int
	tailPad    int
	scratch    *Scratch
	noiseSrc   *dsp.NoiseSource
}

// newEnv builds nodes and a fresh channel realization for one run,
// drawing reception buffers from scratch (nil for a private pool). The
// node IDs are their topology indices plus one (ID 0 is reserved).
func newEnv(cfg Config, seed int64, build func(topology.Config, *rand.Rand) *topology.Graph, scratch *Scratch) *Env {
	if scratch == nil {
		scratch = NewScratch()
	}
	cfg = cfg.withDefaults()
	rng := scratch.runRNG(seed)
	name := cfg.Modem
	if name == "" {
		name = phy.Default
	}
	modem := scratch.modemFor(name, cfg.SamplesPerSymbol)
	g := build(cfg.Topology, rng)
	floor := cfg.Topology.MeanPowerGain / dsp.FromDB(*cfg.SNRdB)
	fixedFrame := frame.FrameBits(cfg.PayloadBytes)
	nodes := scratch.nodesFor(cfg, name, modem, floor, fixedFrame, g.N)
	ws := scratch.Workspace()
	for i := range nodes {
		// All of a run's nodes decode on one goroutine, so they share the
		// worker's decode workspace and steady-state decodes allocate
		// nothing.
		nodes[i].SetWorkspace(ws)
	}
	L := modem.NumSamples(frame.FrameBits(cfg.PayloadBytes))
	window := 4 * cfg.SamplesPerSymbol * 8
	e := scratch.envShell()
	*e = Env{
		cfg:        cfg,
		seed:       seed,
		rng:        rng,
		modem:      modem,
		graph:      g,
		nodes:      nodes,
		noiseFloor: floor,
		frameLen:   L,
		guard:      mac.Guard(*cfg.GuardFrac, L),
		tailPad:    4 * window,
		scratch:    scratch,
		noiseSrc:   scratch.noiseSourceFor(floor),
	}
	return e
}

// noise returns a deterministic noise source for one reception. The
// underlying generator is reused across receptions; every call rewinds it
// onto a fresh stream drawn from the run RNG, so the samples match what a
// newly allocated source would produce.
func (e *Env) noise() *dsp.NoiseSource {
	e.noiseSrc.Reseed(e.rng.Int63())
	return e.noiseSrc
}

// payload draws a random payload.
func (e *Env) payload() []byte {
	p := make([]byte, e.cfg.PayloadBytes)
	e.rng.Read(p)
	return p
}

// receive synthesizes one reception into a scratch buffer: the delayed
// union of the transmissions, tail padding, and this receiver's thermal
// noise. Release the returned signal once it has been decoded.
func (e *Env) receive(txs ...channel.Transmission) dsp.Signal {
	buf := e.scratch.take(channel.ReceiveLen(e.tailPad, txs...))
	return channel.ReceiveInto(buf, e.noise(), e.tailPad, txs...)
}

// release returns a reception buffer to the scratch pool. The decoder
// does not retain reception samples past Decode, so releasing after the
// slot's decodes is safe.
func (e *Env) release(sig dsp.Signal) { e.scratch.give(sig) }

// --- the exported scenario-facing surface ---

// Config returns the run configuration with defaults applied.
func (e *Env) Config() Config { return e.cfg }

// Seed returns the run's seed — the identity of this run's channel
// realization, shared by every scheme compared against it.
func (e *Env) Seed() int64 { return e.seed }

// RNG returns the run's random source. Every random choice a schedule
// makes must come from it (or from streams seeded by it) to keep runs
// reproducible and channel realizations identical across compared schemes.
func (e *Env) RNG() *rand.Rand { return e.rng }

// Modem returns the run's PHY modem — the instance every node of the
// run modulates and decodes with (shared; modems are stateless).
func (e *Env) Modem() phy.Modem { return e.modem }

// Graph returns the run's channel realization.
func (e *Env) Graph() *topology.Graph { return e.graph }

// Node returns the transceiver at a topology index.
func (e *Env) Node(i int) *radio.Node { return e.nodes[i] }

// NumNodes returns the node count.
func (e *Env) NumNodes() int { return len(e.nodes) }

// FrameLen returns the on-air sample count of one frame.
func (e *Env) FrameLen() int { return e.frameLen }

// GuardSamples returns the per-transmission turnaround overhead in samples.
func (e *Env) GuardSamples() int { return e.guard }

// Payload draws a fresh random payload from the run RNG.
func (e *Env) Payload() []byte { return e.payload() }

// DrawDelay draws the §7.2 random start offset of the second of two
// triggered transmissions.
func (e *Env) DrawDelay() int { return e.cfg.Delay.Draw(e.rng) }

// Receive synthesizes one reception (see receive). Pass it to a node's
// Receive/Overhear and then Release it.
func (e *Env) Receive(txs ...channel.Transmission) dsp.Signal { return e.receive(txs...) }

// Release returns a Receive buffer to the scratch pool.
func (e *Env) Release(sig dsp.Signal) { e.release(sig) }

// CleanHop transmits a frame over one link and decodes it at the far end.
func (e *Env) CleanHop(rec frame.SentRecord, from, to int) (ok bool, payload []byte) {
	return e.cleanHop(rec, from, to)
}

// AccountANCDecode decodes an interfered reception at a node and charges
// goodput/loss against the wanted frame (see accountANCDecode).
func (e *Env) AccountANCDecode(r Recorder, n *radio.Node, rx dsp.Signal, wanted frame.SentRecord) {
	e.accountANCDecode(r, n, rx, wanted)
}

// RecordOverlap reports the §11.4 overlap fraction of a collision with
// the drawn start offset delta.
func (e *Env) RecordOverlap(r Recorder, delta int) {
	r.RecordCollision(mac.OverlapFraction(e.frameLen, delta))
}

// ChargeCleanSlots charges air time for k sequential single-signal
// transmissions (frame plus turnaround guard each).
func (e *Env) ChargeCleanSlots(r Recorder, k int) {
	r.RecordAirTime(float64(k * (e.frameLen + e.guard)))
}

// ChargeCollisionSlots charges air time for k slots that each carry the
// union of a collision whose second transmission started delta late.
func (e *Env) ChargeCollisionSlots(r Recorder, k, delta int) {
	r.RecordAirTime(float64(k * (delta + e.frameLen + e.guard)))
}

// payloadBER compares the payload section (payload bits + CRC) of a
// recovered frame bit stream against the transmitted one; missing bits
// count as errors. This is the paper's BER metric: errors in the decoded
// packet relative to the payload that was sent.
func payloadBER(truth, got []byte, payloadBytes int) float64 {
	lo := bits.PilotLength + frame.HeaderBits
	hi := lo + frame.PayloadSectionBits(payloadBytes)
	if hi > len(truth) {
		hi = len(truth)
	}
	t := truth[lo:hi]
	var g []byte
	if lo < len(got) {
		end := hi
		if end > len(got) {
			end = len(got)
		}
		g = got[lo:end]
	}
	return bits.BER(t, g)
}

// newEnvForTest exposes derived run parameters to tests.
func newEnvForTest(cfg Config, seed int64) *Env {
	return newEnv(cfg, seed, topology.AliceBob, nil)
}

// cleanHop transmits a frame over one link and decodes it at the far end.
func (e *Env) cleanHop(rec frame.SentRecord, from, to int) (ok bool, payload []byte) {
	link, inRange := e.graph.Link(from, to)
	if !inRange {
		return false, nil
	}
	rx := e.receive(channel.Transmission{Signal: rec.Samples, Link: link, Delay: cleanLead})
	res, err := e.nodes[to].Receive(rx)
	e.release(rx)
	if err != nil || !res.BodyOK {
		return false, nil
	}
	return true, res.Packet.Payload
}

// WithDefaults returns the configuration with every zero field replaced
// by its default, exposing the derived values (delay distribution, packet
// counts) to callers that need to reason about them.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// FrameSamples returns the on-air sample count of one frame under the
// configuration (the configured modem's, so a dqpsk frame is about half
// an MSK frame at equal payload).
func (c Config) FrameSamples() int {
	c = c.withDefaults()
	return c.modem().NumSamples(frame.FrameBits(c.PayloadBytes))
}
