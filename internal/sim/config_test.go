package sim

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/topology"
)

// TestZeroSNRIsRespected is the regression test for the withDefaults
// zero-value trap: an explicit 0 dB configuration must actually run at
// 0 dB instead of being silently rewritten to the 25 dB default.
func TestZeroSNRIsRespected(t *testing.T) {
	cfg := Config{SNRdB: Ptr(0)}.withDefaults()
	if *cfg.SNRdB != 0 {
		t.Fatalf("withDefaults rewrote explicit 0 dB to %v", *cfg.SNRdB)
	}
	// At 0 dB the noise floor equals the mean channel power
	// (FromDB(0) = 1): the derived receiver calibration must reflect the
	// requested SNR, not the default.
	e := newEnv(cfg, 1, topology.AliceBob, nil)
	if e.noiseFloor != cfg.Topology.MeanPowerGain {
		t.Errorf("0 dB noise floor = %v, want MeanPowerGain %v",
			e.noiseFloor, cfg.Topology.MeanPowerGain)
	}
	// And the run must behave like a 0 dB channel: against the 25 dB
	// default on the same seed, deliveries collapse or BER climbs.
	loud := RunAliceBobANC(Config{Packets: 2}, 3)
	quiet := RunAliceBobANC(Config{Packets: 2, SNRdB: Ptr(0)}, 3)
	if quiet.Delivered >= loud.Delivered && quiet.MeanBER() <= loud.MeanBER() {
		t.Errorf("0 dB run (delivered %d, BER %v) indistinguishable from 25 dB default (delivered %d, BER %v)",
			quiet.Delivered, quiet.MeanBER(), loud.Delivered, loud.MeanBER())
	}
}

// TestZeroGuardIsRespected pins the same fix for GuardFrac: an explicit
// zero guard must charge no turnaround overhead.
func TestZeroGuardIsRespected(t *testing.T) {
	cfg := Config{GuardFrac: Ptr(0)}.withDefaults()
	if *cfg.GuardFrac != 0 {
		t.Fatalf("withDefaults rewrote explicit zero guard to %v", *cfg.GuardFrac)
	}
	e := newEnv(cfg, 1, topology.AliceBob, nil)
	if e.guard != 0 {
		t.Errorf("zero GuardFrac derived %d guard samples", e.guard)
	}
	// Traditional accounting is purely slot-counting, so the zero-guard
	// run charges exactly frameLen per transmission.
	m := RunAliceBobTraditional(Config{Packets: 1, GuardFrac: Ptr(0)}, 5)
	if want := float64(4 * e.frameLen); m.TimeSamples != want {
		t.Errorf("zero-guard traditional time = %v, want %v", m.TimeSamples, want)
	}
}

// TestNilConfigFieldsStillDefault pins the other side of the fix: a
// zero-value Config keeps today's defaults.
func TestNilConfigFieldsStillDefault(t *testing.T) {
	cfg := Config{}.withDefaults()
	if *cfg.SNRdB != 25 || *cfg.GuardFrac != 0.08 {
		t.Errorf("defaults drifted: SNRdB %v GuardFrac %v", *cfg.SNRdB, *cfg.GuardFrac)
	}
}

// TestFadingOnlyTopologyKeepsChannelDefaults guards the README's
// campaign-wide fading path: selecting only a fading model on an
// otherwise-zero topology config must not zero out every channel gain.
func TestFadingOnlyTopologyKeepsChannelDefaults(t *testing.T) {
	cfg := Config{Topology: topology.Config{
		Fading: channel.FadingSpec{Kind: channel.FadingRayleigh},
	}}.withDefaults()
	want := topology.DefaultConfig()
	if cfg.Topology.MeanPowerGain != want.MeanPowerGain || cfg.Topology.CFORange != want.CFORange {
		t.Errorf("fading-only topology lost channel defaults: %+v", cfg.Topology)
	}
	if cfg.Topology.Fading.Kind != channel.FadingRayleigh {
		t.Errorf("fading spec lost: %+v", cfg.Topology.Fading)
	}
	// A partially-set topology (user really configured channels) still
	// wins over the defaults, as before.
	custom := Config{Topology: topology.Config{MeanPowerGain: 0.3}}.withDefaults()
	if custom.Topology.MeanPowerGain != 0.3 || custom.Topology.GainJitterDB != 0 {
		t.Errorf("explicit topology overwritten: %+v", custom.Topology)
	}
}

// TestZeroScalarConfigsMeanDefault closes the zero-value audit for the
// remaining scalar fields. Unlike SNRdB and GuardFrac — where zero is a
// legitimate run and the field is a *float64 with Ptr — a zero
// SamplesPerSymbol, PayloadBytes or Packets is degenerate (no signal, no
// runs), so for these the zero value unambiguously means "default" and
// must keep meaning that. mesh.Config mirrors the same contract
// (TestDefaults there); channel.FadingSpec.BlockSlots documents 0 → 1
// and is pinned by the channel package's TestRealizeDefaults.
func TestZeroScalarConfigsMeanDefault(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.SamplesPerSymbol != 4 {
		t.Errorf("SamplesPerSymbol default = %d, want 4", cfg.SamplesPerSymbol)
	}
	if cfg.PayloadBytes != 128 {
		t.Errorf("PayloadBytes default = %d, want 128", cfg.PayloadBytes)
	}
	if cfg.Packets != 25 {
		t.Errorf("Packets default = %d, want 25", cfg.Packets)
	}
	// Explicit non-zero values always win.
	cfg = Config{SamplesPerSymbol: 2, PayloadBytes: 32, Packets: 3}.withDefaults()
	if cfg.SamplesPerSymbol != 2 || cfg.PayloadBytes != 32 || cfg.Packets != 3 {
		t.Errorf("explicit scalars rewritten: %+v", cfg)
	}
	// The derived delay distribution follows the effective (defaulted)
	// modem and oversampling, so a zero-value config still yields a
	// usable MAC: a positive minimum separation and slot size.
	d := Config{}.withDefaults().Delay
	if d.MinSeparation <= 0 || d.SlotSamples <= 0 || d.Slots <= 0 {
		t.Errorf("derived delay config degenerate: %+v", d)
	}
}
