package sim

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/topology"
)

// TestZeroSNRIsRespected is the regression test for the withDefaults
// zero-value trap: an explicit 0 dB configuration must actually run at
// 0 dB instead of being silently rewritten to the 25 dB default.
func TestZeroSNRIsRespected(t *testing.T) {
	cfg := Config{SNRdB: Ptr(0)}.withDefaults()
	if *cfg.SNRdB != 0 {
		t.Fatalf("withDefaults rewrote explicit 0 dB to %v", *cfg.SNRdB)
	}
	// At 0 dB the noise floor equals the mean channel power
	// (FromDB(0) = 1): the derived receiver calibration must reflect the
	// requested SNR, not the default.
	e := newEnv(cfg, 1, topology.AliceBob, nil)
	if e.noiseFloor != cfg.Topology.MeanPowerGain {
		t.Errorf("0 dB noise floor = %v, want MeanPowerGain %v",
			e.noiseFloor, cfg.Topology.MeanPowerGain)
	}
	// And the run must behave like a 0 dB channel: against the 25 dB
	// default on the same seed, deliveries collapse or BER climbs.
	loud := RunAliceBobANC(Config{Packets: 2}, 3)
	quiet := RunAliceBobANC(Config{Packets: 2, SNRdB: Ptr(0)}, 3)
	if quiet.Delivered >= loud.Delivered && quiet.MeanBER() <= loud.MeanBER() {
		t.Errorf("0 dB run (delivered %d, BER %v) indistinguishable from 25 dB default (delivered %d, BER %v)",
			quiet.Delivered, quiet.MeanBER(), loud.Delivered, loud.MeanBER())
	}
}

// TestZeroGuardIsRespected pins the same fix for GuardFrac: an explicit
// zero guard must charge no turnaround overhead.
func TestZeroGuardIsRespected(t *testing.T) {
	cfg := Config{GuardFrac: Ptr(0)}.withDefaults()
	if *cfg.GuardFrac != 0 {
		t.Fatalf("withDefaults rewrote explicit zero guard to %v", *cfg.GuardFrac)
	}
	e := newEnv(cfg, 1, topology.AliceBob, nil)
	if e.guard != 0 {
		t.Errorf("zero GuardFrac derived %d guard samples", e.guard)
	}
	// Traditional accounting is purely slot-counting, so the zero-guard
	// run charges exactly frameLen per transmission.
	m := RunAliceBobTraditional(Config{Packets: 1, GuardFrac: Ptr(0)}, 5)
	if want := float64(4 * e.frameLen); m.TimeSamples != want {
		t.Errorf("zero-guard traditional time = %v, want %v", m.TimeSamples, want)
	}
}

// TestNilConfigFieldsStillDefault pins the other side of the fix: a
// zero-value Config keeps today's defaults.
func TestNilConfigFieldsStillDefault(t *testing.T) {
	cfg := Config{}.withDefaults()
	if *cfg.SNRdB != 25 || *cfg.GuardFrac != 0.08 {
		t.Errorf("defaults drifted: SNRdB %v GuardFrac %v", *cfg.SNRdB, *cfg.GuardFrac)
	}
}

// TestFadingOnlyTopologyKeepsChannelDefaults guards the README's
// campaign-wide fading path: selecting only a fading model on an
// otherwise-zero topology config must not zero out every channel gain.
func TestFadingOnlyTopologyKeepsChannelDefaults(t *testing.T) {
	cfg := Config{Topology: topology.Config{
		Fading: channel.FadingSpec{Kind: channel.FadingRayleigh},
	}}.withDefaults()
	want := topology.DefaultConfig()
	if cfg.Topology.MeanPowerGain != want.MeanPowerGain || cfg.Topology.CFORange != want.CFORange {
		t.Errorf("fading-only topology lost channel defaults: %+v", cfg.Topology)
	}
	if cfg.Topology.Fading.Kind != channel.FadingRayleigh {
		t.Errorf("fading spec lost: %+v", cfg.Topology.Fading)
	}
	// A partially-set topology (user really configured channels) still
	// wins over the defaults, as before.
	custom := Config{Topology: topology.Config{MeanPowerGain: 0.3}}.withDefaults()
	if custom.Topology.MeanPowerGain != 0.3 || custom.Topology.GainJitterDB != 0 {
		t.Errorf("explicit topology overwritten: %+v", custom.Topology)
	}
}
