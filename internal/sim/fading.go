package sim

import (
	"math/rand"

	"repro/internal/channel"
	"repro/internal/topology"
)

// fadingDefaultSpec is the channel evolution the fading scenario applies
// when the caller's topology config does not choose one itself: Rician
// block fading with the default K-factor, holding each draw for two
// schedule cycles — a line-of-sight link under pedestrian mobility.
// Rician rather than Rayleigh because the paper's testbed is
// line-of-sight lab space; -fading rayleigh on the CLI overrides it.
var fadingDefaultSpec = channel.FadingSpec{Kind: channel.FadingRician, BlockSlots: 2}

// fadingBuild is topology.AliceBob under the scenario's fading default.
// A non-static spec in the incoming config (the ancsim -fading flag)
// wins, so the scenario composes with CLI-selected channel models. The
// test is on Kind, not the whole spec: stray process parameters with no
// model selected (say -doppler without -fading mobility) must not turn
// the fading scenario static.
func fadingBuild(cfg topology.Config, rng *rand.Rand) *topology.Graph {
	if cfg.Fading.Kind == channel.FadingStatic {
		cfg.Fading = fadingDefaultSpec
	}
	return topology.AliceBob(cfg, rng)
}

// fadingScenario is the Fig. 9 exchange under time-varying channels: the
// same schedules, but every link re-realizes per block, so the BER pool
// (the Fig. 10-style CDF) mixes deep-fade and strong-channel decodes
// instead of sampling one realization per run.
var fadingScenario = &simpleScenario{
	name:  "fading",
	desc:  "Alice–Bob under Rician block fading: links re-realize every two cycles",
	build: fadingBuild,
	order: []Scheme{SchemeANC, SchemeRouting, SchemeCOPE},
	start: aliceBobSchedules(),
}

func init() { Register(fadingScenario) }

// Fading returns the registered block-fading Alice–Bob scenario.
func Fading() Scenario { return fadingScenario }
