package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/dsp"
)

// Scratch is the per-worker reusable storage of a campaign: a free list of
// reception sample buffers plus one decoder Workspace shared by every node
// of every run the worker executes. One run of the Alice–Bob exchange
// synthesizes three receptions of ~frame-length complex-baseband samples
// per packet; without reuse a multi-run campaign re-allocates (and
// re-zeroes via GC) hundreds of megabytes of slices, and without the
// shared workspace every decode re-allocates its profile/∆φ/bit buffers.
// Each campaign worker owns one Scratch and reuses it across every run it
// executes, so the steady state allocates no sample or decode buffers at
// all.
//
// A Scratch is not safe for concurrent use; the Engine gives each worker
// its own.
type Scratch struct {
	free []dsp.Signal
	ws   *core.Workspace
}

// NewScratch returns an empty buffer pool.
func NewScratch() *Scratch { return &Scratch{} }

// Workspace returns the scratch's decoder workspace, created on first use.
// newEnv attaches it to every node of a run, extending the buffer-reuse
// discipline from reception synthesis down through the decode stack.
func (s *Scratch) Workspace() *core.Workspace {
	if s.ws == nil {
		s.ws = core.NewWorkspace()
	}
	return s.ws
}

// take returns a buffer with capacity at least n (contents undefined; the
// users overwrite every sample).
func (s *Scratch) take(n int) dsp.Signal {
	for i, b := range s.free {
		if cap(b) >= n {
			last := len(s.free) - 1
			s.free[i] = s.free[last]
			s.free[last] = nil
			s.free = s.free[:last]
			return b[:n]
		}
	}
	return make(dsp.Signal, n)
}

// give returns a buffer to the pool.
func (s *Scratch) give(b dsp.Signal) {
	if cap(b) == 0 {
		return
	}
	s.free = append(s.free, b[:cap(b)])
}

// Engine runs scenarios: it owns the shared machinery every workload
// needs — per-run seeding, channel realization and node construction
// (via newEnv), reusable reception buffers, and the campaign worker pool
// — while the Scenario contributes only its topology and per-slot
// schedules.
type Engine struct {
	cfg Config
}

// NewEngine returns an engine running every scenario under the given
// configuration (zero fields take the repository defaults).
func NewEngine(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// Config returns the engine's configuration with defaults applied.
func (eng *Engine) Config() Config { return eng.cfg }

// Run executes one seeded run of a scenario under one scheme. Runs with
// the same seed see the identical channel realization regardless of
// scheme — the paper's "two consecutive runs in the same topology" — so
// pairing schemes by seed is what makes gain ratios meaningful.
func (eng *Engine) Run(sc Scenario, scheme Scheme, seed int64) (Metrics, error) {
	return eng.RunReusing(sc, scheme, seed, NewScratch())
}

// RunReusing is Run drawing reception buffers from a caller-owned
// Scratch, for callers that execute many runs on one goroutine.
func (eng *Engine) RunReusing(sc Scenario, scheme Scheme, seed int64, scratch *Scratch) (Metrics, error) {
	e := newEnv(eng.cfg, seed, sc.Build, scratch)
	st, err := sc.Start(e, scheme)
	if err != nil {
		return Metrics{}, err
	}
	var m Metrics
	for i := 0; i < e.cfg.Packets; i++ {
		// One schedule cycle is one channel-model slot: every link the
		// step observes is realized at slot i. Static models make this a
		// no-op; fading and mobility models evolve in place (no per-slot
		// allocation — the realization is computed on demand).
		e.graph.SetSlot(i)
		st.Step(i, &m)
	}
	return m, nil
}

// Campaign executes runs[seed][scheme] for every seed and scheme: each
// seed is one independent run whose channel realization is shared by all
// schemes. Runs are distributed over a worker pool (each worker reusing
// its own Scratch) and the result matrix is indexed [seed][scheme], fully
// deterministic regardless of scheduling.
func (eng *Engine) Campaign(sc Scenario, schemes []Scheme, seeds []int64) ([][]Metrics, error) {
	for _, scheme := range schemes {
		if !HasScheme(sc, scheme) {
			return nil, fmt.Errorf("sim: scenario %q does not support scheme %q", sc.Name(), scheme)
		}
	}
	out := make([][]Metrics, len(seeds))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := NewScratch()
			failed := false
			for idx := range next {
				if failed {
					continue // keep draining so the feeder never blocks
				}
				row := make([]Metrics, len(schemes))
				for j, scheme := range schemes {
					m, err := eng.RunReusing(sc, scheme, seeds[idx], scratch)
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						failed = true
						break
					}
					row[j] = m
				}
				if !failed {
					out[idx] = row
				}
			}
		}()
	}
	for idx := range seeds {
		next <- idx
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
