package sim

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/phy"
	"repro/internal/radio"
)

// Scratch is the per-worker reusable storage of a campaign: a free list of
// reception sample buffers plus one decoder Workspace shared by every node
// of every run the worker executes. One run of the Alice–Bob exchange
// synthesizes three receptions of ~frame-length complex-baseband samples
// per packet; without reuse a multi-run campaign re-allocates (and
// re-zeroes via GC) hundreds of megabytes of slices, and without the
// shared workspace every decode re-allocates its profile/∆φ/bit buffers.
// Each campaign worker owns one Scratch and reuses it across every run it
// executes, so the steady state allocates no sample or decode buffers at
// all.
//
// A Scratch is not safe for concurrent use; the Engine gives each worker
// its own.
type Scratch struct {
	free []dsp.Signal
	ws   *core.Workspace

	// batch is the slot decode burst (see slotBatch). sequentialDecodes
	// forces the flush to call Decode per item instead of DecodeBatch —
	// the hook the batched==sequential equivalence tests flip.
	batch             slotBatch
	sequentialDecodes bool

	// Per-run construction pool (see newEnv): the run RNG is reseeded,
	// pooled nodes are Reset, the noise source is rewound and the Env
	// shell is overwritten, so a campaign worker's steady state builds
	// nothing per run except the topology graph — whose construction
	// draws from the run RNG and is therefore inherently per-run.
	rng      *rand.Rand
	noiseSrc *dsp.NoiseSource
	env      *Env
	modem    phy.Modem
	modemKey modemKey
	nodes    []*radio.Node
	nodesKey nodesKey
}

// modemKey identifies a pooled modem instance.
type modemKey struct {
	name string
	sps  int
}

// nodesKey identifies the decoder configuration a pooled node set was
// built for; any mismatch rebuilds the set.
type nodesKey struct {
	name      string
	sps       int
	floor     float64
	frameBits int
}

// runRNG returns the worker's run RNG reseeded to seed. Seed fully resets
// a rand.Rand (including its Read state), so the pooled generator's draws
// are bit-identical to a fresh rand.New(rand.NewSource(seed)).
func (s *Scratch) runRNG(seed int64) *rand.Rand {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(seed))
		return s.rng
	}
	s.rng.Seed(seed)
	return s.rng
}

// modemFor returns a pooled modem instance for (name, sps). Modems are
// stateless, so one instance per configuration serves every run.
func (s *Scratch) modemFor(name string, sps int) phy.Modem {
	key := modemKey{name: name, sps: sps}
	if s.modem == nil || s.modemKey != key {
		s.modem = phy.MustNew(name, sps)
		s.modemKey = key
	}
	return s.modem
}

// noiseSourceFor returns the worker's pooled noise source set to the given
// power. Env.noise reseeds the generator before every reception, so state
// carried over from a previous run never leaks into this one's samples.
func (s *Scratch) noiseSourceFor(power float64) *dsp.NoiseSource {
	if s.noiseSrc == nil {
		s.noiseSrc = dsp.NewNoiseSource(power, 0)
		return s.noiseSrc
	}
	s.noiseSrc.SetPower(power)
	return s.noiseSrc
}

// nodesFor returns n run-ready nodes for the given decoder parameters,
// reusing the pooled set (each node Reset to a fresh-run state) when the
// configuration matches the previous run's. Runs with a DecoderTweak
// always build fresh nodes: two distinct closures can share one function
// pointer (parameterized tweaks from the same literal), so no key can
// safely establish a tweak's identity.
func (s *Scratch) nodesFor(cfg Config, name string, modem phy.Modem, floor float64, frameBits, n int) []*radio.Node {
	opt := func(c *core.Config) {
		c.FallbackFrameBits = frameBits
		if cfg.DecoderTweak != nil {
			cfg.DecoderTweak(c)
		}
	}
	if cfg.DecoderTweak != nil {
		nodes := make([]*radio.Node, n)
		for i := range nodes {
			nodes[i] = radio.NewNode(uint16(i+1), modem, floor, opt)
		}
		return nodes
	}
	key := nodesKey{name: name, sps: modem.SamplesPerSymbol(), floor: floor, frameBits: frameBits}
	if s.nodesKey != key {
		s.nodes = s.nodes[:0]
		s.nodesKey = key
	}
	for len(s.nodes) < n {
		s.nodes = append(s.nodes, radio.NewNode(uint16(len(s.nodes)+1), modem, floor, opt))
	}
	nodes := s.nodes[:n]
	for _, nd := range nodes {
		nd.Reset()
	}
	return nodes
}

// envShell returns the worker's reusable Env allocation; newEnv overwrites
// every field per run.
func (s *Scratch) envShell() *Env {
	if s.env == nil {
		s.env = &Env{}
	}
	return s.env
}

// NewScratch returns an empty buffer pool.
func NewScratch() *Scratch { return &Scratch{} }

// Workspace returns the scratch's decoder workspace, created on first use.
// newEnv attaches it to every node of a run, extending the buffer-reuse
// discipline from reception synthesis down through the decode stack.
func (s *Scratch) Workspace() *core.Workspace {
	if s.ws == nil {
		s.ws = core.NewWorkspace()
	}
	return s.ws
}

// takeQuantum is the capacity granularity of fresh take allocations:
// 4096 samples (64 KiB of complex128).
const takeQuantum = 1 << 12

// take returns a buffer with capacity at least n (contents undefined; the
// users overwrite every sample). Fresh allocations round their capacity up
// to the next takeQuantum multiple: reception lengths creep upward as the
// per-packet delay draw varies, and slot batching keeps every reception of
// a slot live at once, so without rounding each concurrently live buffer
// would reallocate at every new maximum instead of converging on one
// pooled allocation.
func (s *Scratch) take(n int) dsp.Signal {
	for i, b := range s.free {
		if cap(b) >= n {
			last := len(s.free) - 1
			s.free[i] = s.free[last]
			s.free[last] = nil
			s.free = s.free[:last]
			return b[:n]
		}
	}
	return make(dsp.Signal, n, (n+takeQuantum-1)&^(takeQuantum-1))
}

// give returns a buffer to the pool.
func (s *Scratch) give(b dsp.Signal) {
	if cap(b) == 0 {
		return
	}
	s.free = append(s.free, b[:cap(b)])
}

// Engine runs scenarios: it owns the shared machinery every workload
// needs — per-run seeding, channel realization and node construction
// (via newEnv), reusable reception buffers, and the campaign worker pool
// — while the Scenario contributes only its topology and per-slot
// schedules.
type Engine struct {
	cfg Config
	// orig is the configuration as given, before defaults: a run's
	// derived parameters (the delay distribution scales with the frame
	// length, which depends on the modem) are re-derived per scenario
	// once the effective modem is known, so a scenario-preferred modem
	// (ModemChooser) and an explicit Config.Modem produce identical runs.
	orig Config
	// resolved caches the defaulted run configuration per effective
	// modem name (at most one entry per distinct scenario preference),
	// so campaign workers do not re-derive defaults — and construct a
	// throwaway modem for the delay derivation — on every seed.
	mu       sync.Mutex
	resolved map[string]Config
}

// NewEngine returns an engine running every scenario under the given
// configuration (zero fields take the repository defaults).
func NewEngine(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), orig: cfg, resolved: make(map[string]Config)}
}

// Config returns the engine's configuration with defaults applied,
// derived scenario-independently: when Config.Modem is empty the
// modem-dependent fields (the Delay distribution) are derived for the
// default modem, so runs of a ModemChooser scenario — which re-derive
// them from the scenario's effective modem (see runConfig) — may use a
// different Delay than this accessor reports.
func (eng *Engine) Config() Config { return eng.cfg }

// runConfig resolves the modem a run of sc uses (explicit Config.Modem,
// else the scenario's preference, else the default) into the raw
// configuration, validating the name against the phy registry so an
// unknown modem fails before any run starts — with the valid spellings
// in the error, matching the unknown-scenario contract.
func (eng *Engine) runConfig(sc Scenario) (Config, error) {
	name := EffectiveModemName(sc, eng.orig)
	eng.mu.Lock()
	cfg, ok := eng.resolved[name]
	eng.mu.Unlock()
	if ok {
		return cfg, nil
	}
	if _, ok := phy.Get(name); !ok {
		return Config{}, fmt.Errorf("sim: unknown modem %q (registered: %s)",
			name, strings.Join(phy.Names(), ", "))
	}
	cfg = eng.orig
	cfg.Modem = name
	cfg = cfg.withDefaults()
	eng.mu.Lock()
	eng.resolved[name] = cfg
	eng.mu.Unlock()
	return cfg, nil
}

// Run executes one seeded run of a scenario under one scheme. Runs with
// the same seed see the identical channel realization regardless of
// scheme — the paper's "two consecutive runs in the same topology" — so
// pairing schemes by seed is what makes gain ratios meaningful.
func (eng *Engine) Run(sc Scenario, scheme Scheme, seed int64) (Metrics, error) {
	return eng.RunReusing(sc, scheme, seed, NewScratch())
}

// RunReusing is Run drawing reception buffers from a caller-owned
// Scratch, for callers that execute many runs on one goroutine.
func (eng *Engine) RunReusing(sc Scenario, scheme Scheme, seed int64, scratch *Scratch) (Metrics, error) {
	var m Metrics
	err := eng.RunRecording(sc, scheme, seed, &m, scratch)
	if err != nil {
		return Metrics{}, err
	}
	return m, nil
}

// RunRecording executes one seeded run emitting every observation into a
// caller-supplied Recorder — the primitive Run and the campaigns are
// built on. Custom recorders (a TraceRecorder, a streaming accumulator)
// see the same typed events the default Metrics folds into aggregates.
// A nil scratch uses a private buffer pool.
func (eng *Engine) RunRecording(sc Scenario, scheme Scheme, seed int64, rec Recorder, scratch *Scratch) error {
	return eng.runRecording(nil, sc, scheme, seed, rec, scratch)
}

// RunRecordingContext is RunRecording under a cancellation context: the
// run checks ctx between schedule slots and aborts with ctx.Err() — at
// most one slot batch after cancellation, however long the run is. The
// cancellation point sits between slots, never inside one, so a run
// either observes a slot completely or not at all; an aborted run's
// Recorder holds a prefix of the full run's observations.
func (eng *Engine) RunRecordingContext(ctx context.Context, sc Scenario, scheme Scheme, seed int64, rec Recorder, scratch *Scratch) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return eng.runRecording(ctx, sc, scheme, seed, rec, scratch)
}

// runRecording is the shared run loop; a nil ctx skips the per-slot
// cancellation checks entirely (the zero-overhead path RunRecording and
// ctx-free campaigns take).
func (eng *Engine) runRecording(ctx context.Context, sc Scenario, scheme Scheme, seed int64, rec Recorder, scratch *Scratch) error {
	cfg, err := eng.runConfig(sc)
	if err != nil {
		return err
	}
	e := newEnv(cfg, seed, sc.Build, scratch)
	st, err := sc.Start(e, scheme)
	if err != nil {
		return err
	}
	// Bind the link-state method once so the per-slot edge walk below
	// allocates nothing.
	emit := rec.RecordLinkState
	for i := 0; i < e.cfg.Packets; i++ {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		// One schedule cycle is one channel-model slot: every link the
		// step observes is realized at slot i. Static models make this a
		// no-op; fading and mobility models evolve in place (no per-slot
		// allocation — the realization is computed on demand). The slot's
		// channel state is reported before the step runs, so a trace
		// records exactly what the schedule saw.
		e.graph.SetSlot(i)
		e.graph.VisitLinkStates(i, emit)
		st.Step(i, rec)
	}
	return nil
}

// Row is one seed's campaign outcome: the per-scheme metrics of the runs
// that shared that seed's channel realization. Rows are built fresh per
// seed and never reused, so a Sink may retain them.
type Row struct {
	// Index is the seed's position in the campaign's seed slice; sinks
	// receive rows in strictly increasing Index order.
	Index int
	// Seed is seeds[Index].
	Seed int64
	// Metrics is indexed by the campaign's scheme slice.
	Metrics []Metrics
	// Traces holds the per-scheme trace recorders when the campaign ran
	// with WithLinkTraces; nil otherwise. All schemes of one seed see the
	// identical channel realization, so Traces[0] usually suffices.
	Traces []*TraceRecorder
}

// Sink consumes streamed campaign rows, in seed order. Returning an
// error stops the campaign; CampaignStream returns that error.
type Sink interface {
	Consume(Row) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Row) error

// Consume implements Sink.
func (f SinkFunc) Consume(r Row) error { return f(r) }

// StreamOption adjusts a streaming campaign.
type StreamOption func(*streamConfig)

type streamConfig struct {
	trace   bool
	workers int
	ctx     context.Context
}

// WithLinkTraces runs every scheme's run under a TraceRecorder, so each
// Row carries per-slot link-gain traces alongside its Metrics.
func WithLinkTraces() StreamOption {
	return func(c *streamConfig) { c.trace = true }
}

// WithContext runs the campaign under a cancellation context. When ctx
// is canceled the campaign stops cleanly: the feeder admits no further
// seeds, idle workers take no further runs, in-flight runs abort at
// their next schedule slot (see RunRecordingContext), and
// CampaignStream returns ctx.Err() — unless every row had already been
// emitted, in which case the campaign completed and returns nil. Rows
// emitted before cancellation are valid and have been delivered in
// order; cancellation never deadlocks the sink or leaks workers.
func WithContext(ctx context.Context) StreamOption {
	return func(c *streamConfig) { c.ctx = ctx }
}

// WithWorkers sets the campaign's worker-goroutine count. Values ≤ 0 keep
// the default (GOMAXPROCS); the pool never exceeds the seed count. Rows
// are emitted in seed order and are bit-identical at any worker count —
// each seed's run is self-contained — so this only trades parallelism
// against memory (each worker owns a Scratch).
func WithWorkers(n int) StreamOption {
	return func(c *streamConfig) { c.workers = n }
}

// campaignWindow bounds the rows in flight — executing, queued, or
// awaiting in-order emission — of one streaming campaign: enough slack
// that workers never idle waiting for the emitter, small enough that a
// million-seed campaign holds O(workers) rows, not the matrix.
func campaignWindow(workers int) int { return 2 * workers }

// CampaignStream executes runs[seed][scheme] for every seed and scheme
// and delivers each seed's Row to the sink in seed order, holding at most
// O(workers) rows in memory: workers run ahead of the sink only as far as
// the admission window allows. Each seed is one independent run whose
// channel realization is shared by all schemes; runs are distributed over
// a worker pool (each worker reusing its own Scratch) and the streamed
// rows are fully deterministic regardless of scheduling.
//
// On a run error the campaign stops and returns the error of the
// earliest-index failing seed; rows before it have already been emitted.
func (eng *Engine) CampaignStream(sc Scenario, schemes []Scheme, seeds []int64, sink Sink, opts ...StreamOption) error {
	var cfg streamConfig
	for _, o := range opts {
		o(&cfg)
	}
	for _, scheme := range schemes {
		if !HasScheme(sc, scheme) {
			return fmt.Errorf("sim: scenario %q does not support scheme %q", sc.Name(), scheme)
		}
	}
	// Validate the modem before spawning workers: every run would fail
	// identically, so fail once, up front.
	if _, err := eng.runConfig(sc); err != nil {
		return err
	}
	// An already-canceled context never starts a run.
	if cfg.ctx != nil {
		if err := cfg.ctx.Err(); err != nil {
			return err
		}
	}
	if len(seeds) == 0 {
		return nil
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	window := campaignWindow(workers)

	type result struct {
		row Row
		err error
	}
	next := make(chan int)
	results := make(chan result, window)
	admit := make(chan struct{}, window)
	done := make(chan struct{})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := NewScratch()
			for idx := range next {
				res := result{row: Row{Index: idx, Seed: seeds[idx], Metrics: make([]Metrics, len(schemes))}}
				if cfg.trace {
					res.row.Traces = make([]*TraceRecorder, len(schemes))
				}
				for j, scheme := range schemes {
					// A canceled campaign takes no further runs; the
					// in-flight run below also aborts at its next slot.
					if cfg.ctx != nil {
						if res.err = cfg.ctx.Err(); res.err != nil {
							break
						}
					}
					var rec Recorder = &res.row.Metrics[j]
					if cfg.trace {
						tr := NewTraceRecorder()
						res.row.Traces[j] = tr
						rec = tr
					}
					if res.err = eng.runRecording(cfg.ctx, sc, scheme, seeds[idx], rec, scratch); res.err != nil {
						break
					}
					if cfg.trace {
						res.row.Metrics[j] = res.row.Traces[j].Metrics
					}
				}
				results <- res
			}
		}()
	}

	// Feeder: admission is token-gated, so at most `window` seeds are in
	// flight at any moment; tokens are released as rows are emitted (or
	// discarded after a failure). `done` aborts it without deadlocking;
	// a canceled context stops admission the same way.
	var cancelCh <-chan struct{}
	if cfg.ctx != nil {
		cancelCh = cfg.ctx.Done()
	}
	go func() {
		defer close(next)
		for idx := range seeds {
			select {
			case admit <- struct{}{}:
			case <-done:
				return
			case <-cancelCh:
				return
			}
			select {
			case next <- idx:
			case <-done:
				return
			case <-cancelCh:
				return
			}
		}
	}()
	go func() { wg.Wait(); close(results) }()

	// Reorder and emit in seed order on the caller's goroutine. After a
	// failure the loop keeps draining so no worker blocks on a full
	// results channel.
	pending := make(map[int]result, window)
	nextEmit := 0
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			close(done)
		}
	}
	for res := range results {
		if firstErr != nil {
			<-admit
			continue
		}
		pending[res.row.Index] = res
		for {
			r, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			if r.err != nil {
				<-admit
				fail(r.err)
				break
			}
			err := sink.Consume(r.row)
			// The row's admission token is held until the sink returns: a
			// row at the sink is still in flight, so a blocked sink caps
			// the workers' run-ahead at exactly the window.
			<-admit
			if err != nil {
				fail(err)
				break
			}
			nextEmit++
		}
	}
	if firstErr == nil && cfg.ctx != nil && nextEmit != len(seeds) {
		// Cancellation stopped the feeder between runs, so no worker
		// carried the error into a result row: the campaign is short of
		// rows only because the context fired.
		firstErr = cfg.ctx.Err()
	}
	return firstErr
}

// Campaign executes runs[seed][scheme] for every seed and scheme and
// materializes the result matrix, indexed [seed][scheme]. It is a thin
// wrapper over CampaignStream — use the stream directly when the
// campaign is too large to hold, or when rows should feed analysis as
// they arrive.
func (eng *Engine) Campaign(sc Scenario, schemes []Scheme, seeds []int64, opts ...StreamOption) ([][]Metrics, error) {
	out := make([][]Metrics, len(seeds))
	err := eng.CampaignStream(sc, schemes, seeds, SinkFunc(func(r Row) error {
		out[r.Index] = r.Metrics
		return nil
	}), opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}
