package serve

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func mustResolve(t *testing.T, req Request) *Campaign {
	t.Helper()
	c, err := req.Resolve(0)
	if err != nil {
		t.Fatalf("Resolve(%+v): %v", req, err)
	}
	return c
}

// TestHashCanonicalization pins the content-address semantics: spelling
// differences that resolve to the same campaign collide; any semantic
// one-field change diverges.
func TestHashCanonicalization(t *testing.T) {
	base := Request{Scenario: "alice-bob", Runs: 4, Packets: 1}
	ref := mustResolve(t, base)

	// The resolved default scheme set spelled explicitly is the same
	// campaign, and must be the same hash.
	explicit := base
	for _, s := range ref.Schemes {
		explicit.Schemes = append(explicit.Schemes, string(s))
	}
	if got := mustResolve(t, explicit); got.Hash != ref.Hash {
		t.Errorf("explicit default schemes changed the hash: %s vs %s", got.Hash, ref.Hash)
	}

	// Likewise the resolved modem spelled explicitly.
	modem := base
	modem.Modem = ref.Modem
	if got := mustResolve(t, modem); got.Hash != ref.Hash {
		t.Errorf("explicit default modem changed the hash: %s vs %s", got.Hash, ref.Hash)
	}

	// Defaults spelled explicitly: {runs:40,seed:1,snr:25} is the
	// normalized form of the empty request.
	min := Request{Scenario: "alice-bob"}
	full := Request{Scenario: "alice-bob", Runs: 40, Seed: 1, SNRdB: sim.Ptr(25), Fading: "static"}
	if a, b := mustResolve(t, min), mustResolve(t, full); a.Hash != b.Hash {
		t.Errorf("explicit defaults changed the hash: %s vs %s", a.Hash, b.Hash)
	}

	// Every one-field semantic change is a different campaign.
	changes := map[string]Request{
		"runs":    {Scenario: "alice-bob", Runs: 5, Packets: 1},
		"seed":    {Scenario: "alice-bob", Runs: 4, Packets: 1, Seed: 2},
		"snr":     {Scenario: "alice-bob", Runs: 4, Packets: 1, SNRdB: sim.Ptr(10)},
		"packets": {Scenario: "alice-bob", Runs: 4, Packets: 2},
		"fading":  {Scenario: "alice-bob", Runs: 4, Packets: 1, Fading: "rayleigh"},
		"trace":   {Scenario: "alice-bob", Runs: 4, Packets: 1, Trace: true},
		"schemes": {Scenario: "alice-bob", Runs: 4, Packets: 1, Schemes: []string{"anc", "routing"}},
	}
	for field, req := range changes {
		if got := mustResolve(t, req); got.Hash == ref.Hash {
			t.Errorf("changing %s did not change the hash", field)
		}
	}

	// The worker count is scheduling, not identity.
	w1, err := base.Resolve(1)
	if err != nil {
		t.Fatal(err)
	}
	w8, err := base.Resolve(8)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Hash != w8.Hash {
		t.Errorf("worker count changed the hash: %s vs %s", w1.Hash, w8.Hash)
	}
}

// TestResolveValidation rejects malformed requests up front with
// messages naming the offending field.
func TestResolveValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"no scenario", Request{}, "no scenario"},
		{"unknown scenario", Request{Scenario: "no-such"}, "unknown scenario"},
		{"negative runs", Request{Scenario: "alice-bob", Runs: -1}, "runs"},
		{"negative packets", Request{Scenario: "alice-bob", Packets: -1}, "packets"},
		{"bad fading", Request{Scenario: "alice-bob", Fading: "sunny"}, "fading"},
		{"bad modem", Request{Scenario: "alice-bob", Modem: "fm"}, "modem"},
		{"bad scheme", Request{Scenario: "alice-bob", Schemes: []string{"carrier-pigeon"}}, "scheme"},
		{"unsupported scheme", Request{Scenario: "serve-cheap", Schemes: []string{"cope"}}, "cope"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.req.Resolve(0)
			if err == nil {
				t.Fatalf("Resolve accepted %+v", c.req)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestCampaignResolution pins the resolved metadata the status API
// reports.
func TestCampaignResolution(t *testing.T) {
	c := mustResolve(t, Request{Scenario: "serve-cheap", Runs: 6, Packets: 1})
	if c.Rows != 6 {
		t.Errorf("Rows = %d, want 6", c.Rows)
	}
	if len(c.Schemes) != 2 || c.Schemes[0] != sim.SchemeANC || c.Schemes[1] != sim.SchemeRouting {
		t.Errorf("Schemes = %v, want [anc routing]", c.Schemes)
	}
	if c.Modem != "msk" {
		t.Errorf("Modem = %q, want msk", c.Modem)
	}
	if c.Req.Runs != 6 || c.Req.Seed != 1 || *c.Req.SNRdB != 25 || c.Req.Fading != "static" {
		t.Errorf("normalized request %+v lost its defaults", c.Req)
	}
	if len(c.Hash) != 64 {
		t.Errorf("hash %q is not hex sha-256", c.Hash)
	}
}
