package serve

import (
	"context"
	"errors"
	"io"
	"os"
	"time"
)

// lineWriter is one subscriber's transport: an NDJSON HTTP response or
// a WebSocket connection. WriteLine must deliver one line framed for
// the transport (newline, text frame) and must respect the deadline —
// a subscriber that cannot keep up fails the deadline and is evicted,
// which is what keeps one stalled TCP window from pinning a session
// goroutine forever. The engine itself is never waiting on any
// subscriber (Job.append is buffered), so eviction here is purely about
// reclaiming the session.
type lineWriter interface {
	WriteLine(deadline time.Time, line []byte) error
}

// errEvicted marks a session dropped for missing its write deadline.
var errEvicted = errors.New("serve: subscriber evicted: write deadline exceeded")

// pump drains a subscription into a lineWriter until the stream ends,
// the subscriber's ctx is done, or a write misses the deadline. It
// returns nil on a fully delivered stream, errEvicted on a deadline
// miss, the job's error if the campaign failed or was canceled, or
// ctx.Err() when the subscriber went away. Session accounting
// (active/evicted gauges) is recorded here so every transport shares it.
func (s *Server) pump(ctx context.Context, sub *Subscription, w lineWriter) error {
	s.metrics.ActiveSessions.Add(1)
	defer s.metrics.ActiveSessions.Add(-1)
	// A canceled subscriber context must wake a Next blocked on the
	// job's cond, not wait for the next row to notice.
	stop := context.AfterFunc(ctx, sub.Wake)
	defer stop()
	for {
		line, err := sub.Next(ctx)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		err = w.WriteLine(time.Now().Add(s.cfg.WriteTimeout), line)
		if err == nil {
			continue
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			s.metrics.SessionsEvicted.Add(1)
			return errEvicted
		}
		return err
	}
}
