package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"testing"
	"time"
)

// TestWSAcceptKey pins the handshake token to the RFC 6455 §1.3 example.
func TestWSAcceptKey(t *testing.T) {
	got := wsAccept("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Errorf("wsAccept = %q, want %q", got, want)
	}
}

// wsHandshake dials the test server and performs the client side of the
// opening handshake over a raw TCP connection.
func wsHandshake(t *testing.T, addr string) *wsConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	key := "dGhlIHNhbXBsZSBub25jZQ=="
	fmt.Fprintf(conn, "GET /v1/ws HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n", addr, key)
	c := newWSClient(conn)
	// Read the 101 response through the buffered reader so no frame
	// bytes are lost to a separate reader.
	status, err := c.rw.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(status), []byte("101")) {
		t.Fatalf("handshake status line %q, want 101", status)
	}
	sawAccept := false
	for {
		line, err := c.rw.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break
		}
		if bytes.HasPrefix([]byte(line), []byte("Sec-WebSocket-Accept: "+wsAccept(key))) {
			sawAccept = true
		}
	}
	if !sawAccept {
		t.Fatal("handshake response missing the expected Sec-WebSocket-Accept")
	}
	return c
}

// TestWSStreamEndToEnd runs the full protocol over real TCP: handshake,
// request frame, one text frame per campaign line (byte-identical to
// the CLI stream), ping answered mid-stream, then a 1000 close.
func TestWSStreamEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := Request{Scenario: "serve-cheap", Runs: 4, Packets: 1, Seed: 7}
	want := expectStream(t, req)

	c := wsHandshake(t, ts.Listener.Addr().String())
	body, _ := json.Marshal(req)
	if err := c.writeFrame(time.Now().Add(5*time.Second), opText, body); err != nil {
		t.Fatal(err)
	}
	if err := c.writeFrame(time.Now().Add(5*time.Second), opPing, []byte("hello")); err != nil {
		t.Fatal(err)
	}

	var lines bytes.Buffer
	sawPong := false
	closeCode := uint16(0)
	if err := c.conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for closeCode == 0 {
		op, payload, err := c.readFrame()
		if err != nil {
			t.Fatalf("reading frame: %v", err)
		}
		switch op {
		case opText:
			lines.Write(payload)
			lines.WriteByte('\n')
		case opPong:
			sawPong = true
			if string(payload) != "hello" {
				t.Errorf("pong payload %q, want the ping's", payload)
			}
		case opClose:
			if len(payload) < 2 {
				t.Fatalf("close frame without status code")
			}
			closeCode = binary.BigEndian.Uint16(payload[:2])
		default:
			t.Fatalf("unexpected opcode %#x", op)
		}
	}
	if closeCode != 1000 {
		t.Errorf("close code %d, want 1000", closeCode)
	}
	if !sawPong {
		t.Errorf("ping was never answered")
	}
	if !bytes.Equal(lines.Bytes(), want) {
		t.Errorf("websocket stream diverges from the CLI bytes:\nws:  %s\ncli: %s", lines.Bytes(), want)
	}
}

// TestWSBadRequestCloses sends an invalid request and expects a policy
// close (1008), not a hang.
func TestWSBadRequestCloses(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	c := wsHandshake(t, ts.Listener.Addr().String())
	if err := c.writeFrame(time.Now().Add(5*time.Second), opText, []byte(`{"scenario":"no-such"}`)); err != nil {
		t.Fatal(err)
	}
	if err := c.conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	op, payload, err := c.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if op != opClose {
		t.Fatalf("opcode %#x, want close", op)
	}
	if code := binary.BigEndian.Uint16(payload[:2]); code != 1008 {
		t.Errorf("close code %d, want 1008", code)
	}
}

// TestWSRejectsPlainGET pins the handshake validation: a non-upgrade
// request gets an HTTP error, not a hijacked connection.
func TestWSRejectsPlainGET(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("plain GET /v1/ws status %d, want 400", resp.StatusCode)
	}
}
