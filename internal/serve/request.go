// Package serve is the simulation-as-a-service layer: an HTTP +
// WebSocket daemon (cmd/ancserve) that accepts campaign requests,
// runs them on a bounded job queue backed by the same streaming
// engine the CLI uses, and fans each campaign's NDJSON stream out to
// any number of concurrent subscribers.
//
// The load-bearing property is byte identity: a campaign served over
// the wire is streamed through experiments.Streamer — the exact seam
// `ancsim -format ndjson` writes through — so a served stream is
// byte-for-byte the CLI's output for the same request. That is what
// makes the content-addressed job cache sound: two requests with the
// same canonical hash observe the same bytes whether they share one
// live run, replay a finished one, or run it themselves.
//
// serve is a sanctioned package under the determinism analyzer
// (see internal/analysis/determinism): it reads wall clocks for job
// latency metrics and write deadlines, which is legitimate here
// because no simulation output depends on this package — it sits
// strictly downstream of the engine, transporting its bytes.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/experiments"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Request is the wire form of one campaign request: the scenario ×
// schemes × modem × seed-range × config cell a client wants streamed.
// Zero-valued fields take the campaign defaults (the same defaults the
// ancsim flags have), so the minimal request is {"scenario": "alice-bob"}.
type Request struct {
	// Scenario names a registered scenario (GET /v1/scenarios lists them).
	Scenario string `json:"scenario"`
	// Schemes optionally restricts the campaign to a subset of the
	// scenario's schemes (anc|routing|cope). Empty keeps the default
	// framing: ANC and routing, plus COPE where supported.
	Schemes []string `json:"schemes,omitempty"`
	// Modem names a registered PHY modem; empty means the scenario's
	// preference, else msk.
	Modem string `json:"modem,omitempty"`
	// Runs is the number of independent runs (0 = 40, the paper's count).
	Runs int `json:"runs,omitempty"`
	// Seed derives all per-run seeds (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// SNRdB is the nominal per-link SNR; absent means 25 dB. An explicit
	// 0 is a legitimate 0 dB campaign, which is why this is a pointer.
	SNRdB *float64 `json:"snr_db,omitempty"`
	// Fading selects the per-link channel model:
	// static|rayleigh|rician|mobility ("" = static).
	Fading string `json:"fading,omitempty"`
	// DopplerRad is the mobility-model phase advance in rad/slot.
	DopplerRad float64 `json:"doppler_rad,omitempty"`
	// Packets per run (0 = the simulator default).
	Packets int `json:"packets,omitempty"`
	// Trace retains per-slot link gains and attaches outage statistics.
	Trace bool `json:"trace,omitempty"`
}

// Campaign is a resolved, validated Request: the normalized request,
// its canonical content hash, and a single-use Streamer ready to run.
// Resolution performs every validation a run could fail up front, so an
// invalid request is rejected at submission, never inside the queue.
type Campaign struct {
	// Req is the request with defaults filled in.
	Req Request
	// Hash is the canonical content address (hex SHA-256; see Request.Hash).
	Hash string
	// Rows is the number of row lines the stream will emit; the trailing
	// summary record is one more line.
	Rows int
	// Schemes is the resolved scheme plan, in row order.
	Schemes []sim.Scheme
	// Modem is the effective PHY the campaign runs under.
	Modem string

	streamer *experiments.Streamer
}

// normalize fills defaults into a copy of the request and validates the
// fields serve can check without the simulator (shape, spellings).
func (r Request) normalize() (Request, error) {
	if r.Scenario == "" {
		return r, fmt.Errorf("serve: request has no scenario")
	}
	if r.Runs < 0 {
		return r, fmt.Errorf("serve: runs must be ≥ 0 (0 = default), got %d", r.Runs)
	}
	if r.Runs == 0 {
		r.Runs = 40
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.SNRdB == nil {
		r.SNRdB = sim.Ptr(25)
	}
	if math.IsNaN(*r.SNRdB) || math.IsInf(*r.SNRdB, 0) {
		return r, fmt.Errorf("serve: snr_db must be finite, got %v", *r.SNRdB)
	}
	if r.Fading == "" {
		r.Fading = channel.FadingStatic.String()
	}
	if _, err := channel.ParseFadingKind(r.Fading); err != nil {
		return r, err
	}
	if r.Packets < 0 {
		return r, fmt.Errorf("serve: packets must be ≥ 0 (0 = default), got %d", r.Packets)
	}
	if r.Modem != "" {
		if _, ok := phy.Get(r.Modem); !ok {
			return r, fmt.Errorf("serve: unknown modem %q (registered: %s)",
				r.Modem, strings.Join(phy.Names(), ", "))
		}
	}
	return r, nil
}

// options maps a normalized request to the CLI's campaign options. The
// worker count is the server's to choose — results are bit-identical at
// any count, so it is deliberately not a request field and not hashed.
func (r Request) options(workers int) (experiments.StreamOptions, error) {
	var schemes []sim.Scheme
	for _, tok := range r.Schemes {
		s, err := sim.ParseScheme(strings.TrimSpace(tok))
		if err != nil {
			return experiments.StreamOptions{}, err
		}
		schemes = append(schemes, s)
	}
	kind, err := channel.ParseFadingKind(r.Fading)
	if err != nil {
		return experiments.StreamOptions{}, err
	}
	var cfg sim.Config
	cfg.SNRdB = sim.Ptr(*r.SNRdB)
	cfg.Modem = r.Modem
	cfg.Topology.Fading = channel.FadingSpec{Kind: kind, DopplerRad: r.DopplerRad}
	cfg.Packets = r.Packets
	return experiments.StreamOptions{
		Options: experiments.Options{Runs: r.Runs, Sim: cfg, Seed: r.Seed, Schemes: schemes, Workers: workers},
		Trace:   r.Trace,
	}, nil
}

// Resolve validates the request end to end and returns the Campaign
// ready to submit: normalized request, canonical hash, and a single-use
// Streamer. workers sets the engine worker count (≤ 0 = GOMAXPROCS); it
// affects scheduling only, never the bytes, and never the hash.
func (r Request) Resolve(workers int) (*Campaign, error) {
	req, err := r.normalize()
	if err != nil {
		return nil, err
	}
	opts, err := req.options(workers)
	if err != nil {
		return nil, err
	}
	s, err := experiments.NewStreamer(opts, req.Scenario, 1, 1)
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		Req:      req,
		Rows:     s.Rows(),
		Schemes:  s.Schemes(),
		Modem:    s.Modem(),
		streamer: s,
	}
	c.Hash = req.hash(c.Schemes, c.Modem)
	return c, nil
}

// hash is the canonical content address of a normalized request: the
// hex SHA-256 of a versioned, fixed-order field encoding. Two requests
// hash equal exactly when they describe the same campaign bytes —
// scheme filters and modems are hashed in *resolved* form, so
// {"schemes": null} and the explicit default set collide (they stream
// identical bytes), while any one-field config change diverges.
func (r Request) hash(schemes []sim.Scheme, modem string) string {
	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = string(s)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	canonical := strings.Join([]string{
		"ancserve/v1",
		"scenario=" + r.Scenario,
		"schemes=" + strings.Join(names, ","),
		"modem=" + modem,
		"runs=" + strconv.Itoa(r.Runs),
		"seed=" + strconv.FormatInt(r.Seed, 10),
		"snr_db=" + f(*r.SNRdB),
		"fading=" + r.Fading,
		"doppler_rad=" + f(r.DopplerRad),
		"packets=" + strconv.Itoa(r.Packets),
		"trace=" + strconv.FormatBool(r.Trace),
	}, "\n")
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}
