package serve

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestMetricsExposition pins the Prometheus text rendering: every
// metric present, fixed order, and byte-stable across scrapes of the
// same state — the same discipline the repo's other encoders hold.
func TestMetricsExposition(t *testing.T) {
	var m Metrics
	m.JobsAccepted.Store(3)
	m.JobsCompleted.Store(2)
	m.CacheHits.Store(5)
	m.RowsStreamed.Store(120)
	m.ActiveSessions.Store(1)
	m.QueueDepth.Store(4)
	m.CacheBytes.Store(1 << 20)
	m.ObserveJob(1500 * time.Millisecond)
	m.ObserveJob(500 * time.Millisecond)

	var a, b bytes.Buffer
	if _, err := m.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two scrapes of the same state differ:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}

	out := a.String()
	for _, want := range []string{
		"ancserve_jobs_accepted_total 3\n",
		"ancserve_jobs_completed_total 2\n",
		"ancserve_jobs_failed_total 0\n",
		"ancserve_jobs_canceled_total 0\n",
		"ancserve_cache_hits_total 5\n",
		"ancserve_cache_misses_total 0\n",
		"ancserve_rows_streamed_total 120\n",
		"ancserve_sessions_evicted_total 0\n",
		"ancserve_active_sessions 1\n",
		"ancserve_queue_depth 4\n",
		"ancserve_running_jobs 0\n",
		"ancserve_cache_bytes 1048576\n",
		"ancserve_job_duration_seconds_sum 2\n",
		"ancserve_job_duration_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Counters precede gauges precede the duration summary, in catalog
	// order — a scrape diff should only ever show value changes.
	if strings.Index(out, "ancserve_jobs_accepted_total") > strings.Index(out, "ancserve_active_sessions") ||
		strings.Index(out, "ancserve_active_sessions") > strings.Index(out, "ancserve_job_duration_seconds_sum") {
		t.Errorf("exposition order broke:\n%s", out)
	}
	// Each metric carries HELP and TYPE lines.
	if !strings.Contains(out, "# TYPE ancserve_jobs_accepted_total counter") ||
		!strings.Contains(out, "# TYPE ancserve_queue_depth gauge") ||
		!strings.Contains(out, "# TYPE ancserve_job_duration_seconds summary") {
		t.Errorf("exposition missing TYPE lines:\n%s", out)
	}
}
