package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics is the daemon's instrumentation: plain atomics rendered as
// Prometheus text exposition (stdlib only, no client library). The
// catalog is a fixed-order slice, never a map, so /metrics output is
// byte-stable across scrapes of the same state — the same rendering
// discipline the rest of the repository holds its encoders to.
type Metrics struct {
	JobsAccepted    atomic.Int64 // jobs admitted to the queue
	JobsCompleted   atomic.Int64 // jobs that streamed to the end
	JobsFailed      atomic.Int64 // jobs that returned a non-cancellation error
	JobsCanceled    atomic.Int64 // jobs aborted by DELETE or drain
	CacheHits       atomic.Int64 // submissions coalesced onto an existing job
	CacheMisses     atomic.Int64 // submissions that created a new job
	RowsStreamed    atomic.Int64 // campaign rows produced by the engine
	SessionsEvicted atomic.Int64 // subscribers dropped for missing the write deadline
	ActiveSessions  atomic.Int64 // currently attached subscribers
	QueueDepth      atomic.Int64 // jobs admitted but not yet running
	RunningJobs     atomic.Int64 // jobs currently on a runner
	CacheBytes      atomic.Int64 // retained bytes of completed campaign streams
	JobMicros       atomic.Int64 // summed wall-clock job duration, microseconds
	JobCount        atomic.Int64 // observations in JobMicros
}

// ObserveJob records one finished job's wall-clock duration.
func (m *Metrics) ObserveJob(d time.Duration) {
	m.JobMicros.Add(d.Microseconds())
	m.JobCount.Add(1)
}

// WriteTo renders the Prometheus text exposition format. The catalog
// order is fixed by construction.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	counters := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"ancserve_jobs_accepted_total", "Campaign jobs admitted to the queue.", &m.JobsAccepted},
		{"ancserve_jobs_completed_total", "Campaign jobs that streamed to completion.", &m.JobsCompleted},
		{"ancserve_jobs_failed_total", "Campaign jobs that failed with an error.", &m.JobsFailed},
		{"ancserve_jobs_canceled_total", "Campaign jobs canceled before completion.", &m.JobsCanceled},
		{"ancserve_cache_hits_total", "Submissions served by an existing job (shared run or replay).", &m.CacheHits},
		{"ancserve_cache_misses_total", "Submissions that started a new engine run.", &m.CacheMisses},
		{"ancserve_rows_streamed_total", "Campaign rows produced by the engine across all jobs.", &m.RowsStreamed},
		{"ancserve_sessions_evicted_total", "Subscriber sessions dropped for missing the write deadline.", &m.SessionsEvicted},
	}
	gauges := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"ancserve_active_sessions", "Currently attached streaming subscribers.", &m.ActiveSessions},
		{"ancserve_queue_depth", "Jobs admitted but not yet running.", &m.QueueDepth},
		{"ancserve_running_jobs", "Jobs currently executing on a runner.", &m.RunningJobs},
		{"ancserve_cache_bytes", "Retained bytes of completed campaign streams.", &m.CacheBytes},
	}
	var n int64
	emit := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	for _, c := range counters {
		if err := emit("# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v.Load()); err != nil {
			return n, err
		}
	}
	for _, g := range gauges {
		if err := emit("# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v.Load()); err != nil {
			return n, err
		}
	}
	err := emit("# HELP ancserve_job_duration_seconds Wall-clock duration of finished jobs.\n"+
		"# TYPE ancserve_job_duration_seconds summary\n"+
		"ancserve_job_duration_seconds_sum %g\n"+
		"ancserve_job_duration_seconds_count %d\n",
		float64(m.JobMicros.Load())/1e6, m.JobCount.Load())
	return n, err
}
