package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The test scenarios are registered only in this package's test binary.
// Both support anc and routing with trivial deterministic schedules, so
// the default campaign framing (ANC + routing) applies and rows render
// with finite gains — but no DSP runs, keeping campaigns instant.

// trivialStart returns the shared stepper: deterministic metrics as a
// function of the seed, strictly positive so every ratio is finite.
func trivialStart(e *sim.Env) sim.StepFunc {
	seed := e.Seed()
	return func(i int, r sim.Recorder) {
		r.RecordAirTime(float64(2 + i))
		r.RecordDelivered(float64(1 + seed%97))
	}
}

type serveCheap struct{}

func (serveCheap) Name() string        { return "serve-cheap" }
func (serveCheap) Description() string { return "test-only: instant deterministic campaign" }
func (serveCheap) Schemes() []sim.Scheme {
	return []sim.Scheme{sim.SchemeANC, sim.SchemeRouting}
}
func (serveCheap) Build(cfg topology.Config, rng *rand.Rand) *topology.Graph {
	return topology.AliceBob(cfg, rng)
}
func (serveCheap) Start(e *sim.Env, scheme sim.Scheme) (sim.Stepper, error) {
	return trivialStart(e), nil
}

// campaignGate arms the serve-gate scenario: each run's first ANC step
// signals started and then blocks until release is closed, so tests can
// hold a job mid-run deterministically.
type campaignGate struct {
	started chan struct{}
	release chan struct{}
}

var gateCtl atomic.Pointer[campaignGate]

// armGate installs a fresh gate and returns it, disarming at cleanup.
func armGate(t *testing.T) *campaignGate {
	t.Helper()
	g := &campaignGate{started: make(chan struct{}, 64), release: make(chan struct{})}
	gateCtl.Store(g)
	t.Cleanup(func() { gateCtl.Store(nil) })
	return g
}

type serveGate struct{}

func (serveGate) Name() string        { return "serve-gate" }
func (serveGate) Description() string { return "test-only: blocks mid-run on the package gate" }
func (serveGate) Schemes() []sim.Scheme {
	return []sim.Scheme{sim.SchemeANC, sim.SchemeRouting}
}
func (serveGate) Build(cfg topology.Config, rng *rand.Rand) *topology.Graph {
	return topology.AliceBob(cfg, rng)
}
func (serveGate) Start(e *sim.Env, scheme sim.Scheme) (sim.Stepper, error) {
	inner := trivialStart(e)
	gateScheme := scheme
	return sim.StepFunc(func(i int, r sim.Recorder) {
		if g := gateCtl.Load(); g != nil && gateScheme == sim.SchemeANC && i == 0 {
			select {
			case g.started <- struct{}{}:
			default:
			}
			<-g.release
		}
		inner(i, r)
	}), nil
}

func init() {
	sim.Register(serveCheap{})
	sim.Register(serveGate{})
}

// expectStream renders the reference bytes for a request: the CLI's
// NDJSON writer over the identical campaign. Served streams must match
// byte for byte.
func expectStream(t *testing.T, req Request) []byte {
	t.Helper()
	norm, err := req.normalize()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := norm.options(0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := experiments.WriteCampaignNDJSON(&buf, opts, norm.Scenario, 1, 1); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSharedRunByteIdentity is the fan-out acceptance test: two
// concurrent identical submissions share one engine run and receive
// byte-identical streams, each equal to the CLI's NDJSON output.
func TestSharedRunByteIdentity(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := Request{Scenario: "serve-cheap", Runs: 8, Packets: 2, Seed: 3}
	want := expectStream(t, req)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	bodies := make([][]byte, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if h := resp.Header.Get("X-Ancserve-Hash"); h == "" {
				errs[i] = fmt.Errorf("missing X-Ancserve-Hash header")
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("subscriber %d: %v", i, err)
		}
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("concurrent subscribers saw different bytes:\nA: %s\nB: %s", bodies[0], bodies[1])
	}
	if !bytes.Equal(bodies[0], want) {
		t.Errorf("served stream diverges from ancsim NDJSON output:\nserved: %s\ncli:    %s", bodies[0], want)
	}
	if got := s.metrics.JobsAccepted.Load(); got != 1 {
		t.Errorf("jobs accepted = %d, want 1 (the identical submissions must coalesce)", got)
	}
	if got := s.metrics.CacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
}

// TestCacheMissOnConfigChange pins the other half of content
// addressing: any one-field config change is a different campaign.
func TestCacheMissOnConfigChange(t *testing.T) {
	s := newTestServer(t, Config{})
	base := Request{Scenario: "serve-cheap", Runs: 4, Packets: 1, Seed: 3}
	if _, hit, err := s.Submit(base); err != nil || hit {
		t.Fatalf("first submit: hit=%v err=%v", hit, err)
	}
	changed := base
	changed.Seed = 4
	if _, hit, err := s.Submit(changed); err != nil || hit {
		t.Fatalf("changed submit: hit=%v err=%v, want a cache miss", hit, err)
	}
	if got := s.metrics.JobsAccepted.Load(); got != 2 {
		t.Errorf("jobs accepted = %d, want 2", got)
	}
	if _, hit, err := s.Submit(base); err != nil || !hit {
		t.Fatalf("repeat submit: hit=%v err=%v, want a cache hit", hit, err)
	}
}

// TestLateSubscriberReplay completes a campaign with no subscribers,
// then streams it from the cache: the replay is the full byte-exact
// stream, with no second engine run.
func TestLateSubscriberReplay(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := Request{Scenario: "serve-cheap", Runs: 5, Packets: 1, Seed: 9}
	want := expectStream(t, req)
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	waitFor(t, "job completion", func() bool { return s.metrics.JobsCompleted.Load() == 1 })

	resp, err = http.Get(ts.URL + "/v1/campaigns/" + st.Hash + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("replayed stream diverges from the CLI bytes:\nreplay: %s\ncli:    %s", got, want)
	}
	if n := s.metrics.JobsAccepted.Load(); n != 1 {
		t.Errorf("replay started a second job (accepted=%d)", n)
	}
}

// TestSlowSubscriberEvicted is the isolation acceptance test: a
// subscriber that stops reading is evicted at the write deadline while
// the engine and a healthy subscriber stream to completion. Run under
// -race, this also proves the hub's synchronization.
func TestSlowSubscriberEvicted(t *testing.T) {
	s := newTestServer(t, Config{WriteTimeout: 50 * time.Millisecond})
	j, _, err := s.Submit(Request{Scenario: "serve-cheap", Runs: 48, Packets: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wantLines := j.Campaign.Rows + 1

	// The blocked subscriber: a WebSocket over a synchronous in-memory
	// pipe whose peer never reads — every write blocks until the
	// deadline, the deterministic worst case of a stalled TCP window.
	server, client := net.Pipe()
	defer client.Close()
	defer server.Close()
	ws := &wsConn{conn: server, rw: bufio.NewReadWriter(bufio.NewReader(server), bufio.NewWriter(server))}
	evicted := make(chan error, 1)
	go func() {
		evicted <- s.pump(context.Background(), j.Subscribe(), ws)
	}()

	healthy := &collectLines{}
	if err := s.pump(context.Background(), j.Subscribe(), healthy); err != nil {
		t.Fatalf("healthy subscriber: %v", err)
	}
	if got := len(healthy.get()); got != wantLines {
		t.Errorf("healthy subscriber got %d lines, want %d", got, wantLines)
	}
	if err := <-evicted; !errors.Is(err, errEvicted) {
		t.Errorf("blocked subscriber returned %v, want errEvicted", err)
	}
	if got := s.metrics.SessionsEvicted.Load(); got != 1 {
		t.Errorf("sessions evicted = %d, want 1", got)
	}
	if got := s.metrics.JobsCompleted.Load(); got != 1 {
		t.Errorf("jobs completed = %d, want 1 — the engine must not block on a stalled subscriber", got)
	}
	if got := s.metrics.ActiveSessions.Load(); got != 0 {
		t.Errorf("active sessions = %d after both detached, want 0", got)
	}
}

type collectLines struct {
	mu    sync.Mutex
	lines [][]byte
}

func (c *collectLines) WriteLine(_ time.Time, line []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lines = append(c.lines, line)
	return nil
}

func (c *collectLines) get() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lines
}

// TestCancelReleasesWorkers holds a job mid-run on the gate, cancels it
// over HTTP, and verifies the job lands in the canceled state and
// leaves no cache entry behind.
func TestCancelReleasesWorkers(t *testing.T) {
	g := armGate(t)
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	j, _, err := s.Submit(Request{Scenario: "serve-gate", Runs: 3, Packets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started // a worker is now blocked inside run 0

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+j.Campaign.Hash, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d, want 202", resp.StatusCode)
	}
	close(g.release) // let the blocked step return; the engine aborts at the next slot
	waitFor(t, "job cancellation", func() bool { return s.metrics.JobsCanceled.Load() == 1 })

	state, _, jerr := j.Snapshot()
	if state != JobCanceled {
		t.Errorf("job state = %v, want canceled", state)
	}
	if jerr == nil || !errors.Is(jerr, context.Canceled) {
		t.Errorf("job error = %v, want context.Canceled", jerr)
	}
	if _, ok := s.Lookup(j.Campaign.Hash); ok {
		t.Errorf("canceled job still answers lookups; a partial stream must never be cached")
	}
}

// TestQueueBackpressureAndDrain pins the admission contract: a full
// queue rejects with ErrQueueFull, a draining server with ErrDraining,
// and Drain completes the admitted jobs before returning.
func TestQueueBackpressureAndDrain(t *testing.T) {
	g := armGate(t)
	s := New(Config{Runners: 1, QueueDepth: 1})
	gated, _, err := s.Submit(Request{Scenario: "serve-gate", Runs: 1, Packets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started // the single runner is now occupied

	queued, _, err := s.Submit(Request{Scenario: "serve-cheap", Runs: 2, Packets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(Request{Scenario: "serve-cheap", Runs: 2, Packets: 1, Seed: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit error = %v, want ErrQueueFull", err)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, "draining flag", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})
	if _, _, err := s.Submit(Request{Scenario: "serve-cheap", Runs: 2, Packets: 1, Seed: 4}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining error = %v, want ErrDraining", err)
	}
	close(g.release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range []*Job{gated, queued} {
		if state, _, _ := j.Snapshot(); state != JobDone {
			t.Errorf("after drain, job %s state = %v, want done", j.Campaign.Hash[:8], state)
		}
	}
}

// TestDrainTimeoutCancels proves the other drain arm: when the drain
// context expires, running jobs are canceled and released rather than
// held forever.
func TestDrainTimeoutCancels(t *testing.T) {
	g := armGate(t)
	s := New(Config{Runners: 1})
	j, _, err := s.Submit(Request{Scenario: "serve-gate", Runs: 1, Packets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired drain deadline: cancel everything immediately
	done := make(chan error, 1)
	go func() { done <- s.Drain(ctx) }()
	// Hold the gate until the drain has actually canceled the job —
	// releasing earlier would let this tiny campaign finish first.
	<-j.Context().Done()
	// The blocked step must still return before the engine can abort.
	close(g.release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("drain returned %v, want context.Canceled", err)
	}
	if got := s.metrics.JobsCanceled.Load(); got != 1 {
		t.Errorf("jobs canceled = %d, want 1", got)
	}
}

// TestStatusAndScenarioEndpoints smoke-tests the read-only surface.
func TestStatusAndScenarioEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var scenarios []struct {
		Name    string   `json:"name"`
		Schemes []string `json:"schemes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scenarios); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, sc := range scenarios {
		if sc.Name == "alice-bob" {
			found = true
			if len(sc.Schemes) == 0 {
				t.Errorf("alice-bob lists no schemes")
			}
		}
	}
	if !found {
		t.Errorf("scenario listing omits alice-bob: %+v", scenarios)
	}

	if resp, err = http.Get(ts.URL + "/v1/campaigns/deadbeef"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown hash status %d, want 404", resp.StatusCode)
	}

	if resp, err = http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader([]byte(`{"scenario":"no-such"}`))); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad scenario status %d, want 400", resp.StatusCode)
	}

	if resp, err = http.Get(ts.URL + "/metrics"); err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics, []byte("ancserve_jobs_accepted_total")) {
		t.Errorf("metrics exposition missing job counter:\n%s", metrics)
	}
}
