package serve

import (
	"context"
	"io"
	"sync"
)

// JobState is a job's lifecycle position.
type JobState int

const (
	// JobQueued: admitted, waiting for a runner.
	JobQueued JobState = iota
	// JobRunning: a runner is executing the campaign.
	JobRunning
	// JobDone: every line streamed; the retained lines are the complete,
	// replayable campaign.
	JobDone
	// JobFailed: the campaign returned an error; retained lines are a
	// prefix only and the job is evicted from the cache.
	JobFailed
	// JobCanceled: aborted by DELETE or server drain.
	JobCanceled
)

// String renders the state for status responses.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	}
	return "unknown"
}

// Job is one campaign execution shared by every subscriber that asked
// for the same canonical hash: the engine runs once, each appended line
// is retained, and subscribers read at their own cursors — a late
// subscriber replays the buffer and then joins the live tail; a slow
// one never applies backpressure to the engine, because appends never
// wait on readers. After completion the retained lines double as the
// cache entry that replays the campaign without re-running it.
type Job struct {
	// Campaign is the resolved request this job executes.
	Campaign *Campaign

	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	cond  *sync.Cond
	lines [][]byte
	bytes int64
	state JobState
	err   error
}

func newJob(c *Campaign) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{Campaign: c, ctx: ctx, cancel: cancel}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Context returns the job's cancellation context; the runner threads it
// into the engine via sim.WithContext.
func (j *Job) Context() context.Context { return j.ctx }

// Cancel aborts the job: the engine stops within one slot batch and
// blocked subscribers wake with the job's terminal state.
func (j *Job) Cancel() { j.cancel() }

// setState transitions the lifecycle and wakes every waiting subscriber.
func (j *Job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
	j.cond.Broadcast()
}

// append retains one emitted line (owned by the job; the Streamer
// allocates each line fresh) and wakes subscribers waiting for it.
func (j *Job) append(line []byte) {
	j.mu.Lock()
	j.lines = append(j.lines, line)
	j.bytes += int64(len(line))
	j.mu.Unlock()
	j.cond.Broadcast()
}

// finish records the campaign result and wakes all subscribers. A nil
// err means the full stream was emitted; context cancellation maps to
// JobCanceled, anything else to JobFailed.
func (j *Job) finish(err error) JobState {
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = JobDone
	case j.ctx.Err() != nil:
		j.state, j.err = JobCanceled, err
	default:
		j.state, j.err = JobFailed, err
	}
	s := j.state
	j.mu.Unlock()
	j.cond.Broadcast()
	return s
}

// Snapshot returns the job's current lifecycle state, retained line
// count, and error (nil unless failed or canceled).
func (j *Job) Snapshot() (JobState, int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, len(j.lines), j.err
}

// size returns the retained byte total (line payloads).
func (j *Job) size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

// Subscribe attaches a new reader at the start of the stream. Every
// subscriber observes the identical line sequence regardless of when it
// attached: first the retained replay, then the live tail.
func (j *Job) Subscribe() *Subscription {
	return &Subscription{job: j}
}

// Subscription is one reader's cursor into a job's line sequence.
type Subscription struct {
	job    *Job
	cursor int
}

// Next blocks until the next line is available and returns it, or
// io.EOF once the stream completed and the cursor drained it, or the
// job's error if it failed or was canceled (after draining the retained
// prefix, so a subscriber sees everything the engine produced). A done
// ctx aborts the wait with ctx.Err(); pair it with context.AfterFunc
// wired to s.Wake so cancellation actually wakes the wait.
//
// The returned slice is owned by the job and must not be modified.
func (s *Subscription) Next(ctx context.Context) ([]byte, error) {
	j := s.job
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if s.cursor < len(j.lines) {
			line := j.lines[s.cursor]
			s.cursor++
			return line, nil
		}
		switch j.state {
		case JobDone:
			return nil, io.EOF
		case JobFailed, JobCanceled:
			return nil, j.err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		j.cond.Wait()
	}
}

// Wake unblocks a pending Next; meant for context.AfterFunc so a
// disconnecting subscriber does not wait for the next broadcast.
func (s *Subscription) Wake() { s.job.cond.Broadcast() }
