package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// Config parameterizes the daemon. The zero value serves with sensible
// defaults (see withDefaults).
type Config struct {
	// Workers is the engine worker-goroutine count per job; ≤ 0 means
	// GOMAXPROCS. Scheduling only — the bytes are identical at any count.
	Workers int
	// QueueDepth bounds admitted-but-not-running jobs; a submission
	// beyond it is rejected with ErrQueueFull (HTTP 503), which is the
	// backpressure contract: reject loudly, never buffer unboundedly.
	QueueDepth int
	// Runners is the number of concurrently executing jobs.
	Runners int
	// CacheBytes budgets the retained bytes of completed campaign
	// streams (LRU-evicted; see cache).
	CacheBytes int64
	// WriteTimeout is the per-line write deadline after which a slow
	// subscriber is evicted.
	WriteTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Runners <= 0 {
		c.Runners = 2
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	return c
}

// Submission rejections the HTTP layer maps to 503 Service Unavailable.
var (
	// ErrQueueFull: the bounded job queue is at capacity.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining: the server is shutting down and accepts no new jobs.
	ErrDraining = errors.New("serve: server is draining")
)

// Server is the campaign daemon: a bounded job queue executing each
// distinct campaign once, a content-addressed cache fanning the stream
// out to every subscriber asking for the same canonical hash, and the
// HTTP/WebSocket surface over both. It implements http.Handler.
type Server struct {
	cfg     Config
	metrics Metrics
	mux     *http.ServeMux

	mu       sync.Mutex
	cache    *cache
	draining bool

	pending chan *Job
	jobs    sync.WaitGroup // admitted jobs not yet finished
	runners sync.WaitGroup // runner goroutines
	quit    chan struct{}
	once    sync.Once
}

// New builds a Server and starts its runner pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newCache(cfg.CacheBytes),
		pending: make(chan *Job, cfg.QueueDepth),
		quit:    make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < cfg.Runners; i++ {
		s.runners.Add(1)
		go s.runner()
	}
	return s
}

// Metrics exposes the server's instrumentation (shared, read with the
// atomics' Load).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Submit resolves and admits a campaign request. A request whose
// canonical hash matches a queued, running, or completed job attaches
// to that job — one engine run, many subscribers — reported by
// hit=true. Misses create and enqueue a new job. Admission is atomic:
// a full queue rejects with ErrQueueFull and leaves no trace.
func (s *Server) Submit(req Request) (job *Job, hit bool, err error) {
	camp, err := req.Resolve(s.cfg.Workers)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	if j, ok := s.cache.lookup(camp.Hash); ok {
		s.metrics.CacheHits.Add(1)
		return j, true, nil
	}
	j := newJob(camp)
	select {
	case s.pending <- j:
	default:
		return nil, false, ErrQueueFull
	}
	s.cache.insert(camp.Hash, j)
	s.metrics.CacheMisses.Add(1)
	s.metrics.JobsAccepted.Add(1)
	s.metrics.QueueDepth.Add(1)
	s.jobs.Add(1)
	return j, false, nil
}

// Lookup returns the job for a canonical hash, if live.
func (s *Server) Lookup(hash string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.lookup(hash)
}

// Cancel aborts the job with the given hash. The engine releases its
// workers within one slot batch; subscribers wake with the job error.
func (s *Server) Cancel(hash string) bool {
	j, ok := s.Lookup(hash)
	if !ok {
		return false
	}
	j.Cancel()
	return true
}

func (s *Server) runner() {
	defer s.runners.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.pending:
			s.runJob(j)
		}
	}
}

func (s *Server) runJob(j *Job) {
	defer s.jobs.Done()
	s.metrics.QueueDepth.Add(-1)
	s.metrics.RunningJobs.Add(1)
	defer s.metrics.RunningJobs.Add(-1)
	j.setState(JobRunning)
	start := time.Now()
	rows := j.Campaign.Rows
	emitted := 0
	err := j.Campaign.streamer.Stream(j.ctx, func(line []byte) error {
		j.append(line)
		if emitted < rows {
			s.metrics.RowsStreamed.Add(1)
		}
		emitted++
		return nil
	})
	state := j.finish(err)
	s.metrics.ObserveJob(time.Since(start))
	switch state {
	case JobDone:
		s.metrics.JobsCompleted.Add(1)
	case JobCanceled:
		s.metrics.JobsCanceled.Add(1)
	default:
		s.metrics.JobsFailed.Add(1)
	}
	s.mu.Lock()
	if state == JobDone {
		s.cache.finalize(j, j.Campaign.Hash)
	} else {
		// A failed or canceled job's lines are a prefix, never a
		// campaign; it must not answer later requests.
		s.cache.remove(j.Campaign.Hash)
	}
	s.metrics.CacheBytes.Store(s.cache.bytes)
	s.mu.Unlock()
}

// cancelAll aborts every unfinished job.
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.cache.jobs))
	for e := s.cache.lru.Front(); e != nil; e = e.Next() {
		jobs = append(jobs, e.Value.(*cacheEntry).job)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
}

// Drain shuts the server down gracefully: new submissions are rejected
// with ErrDraining immediately, admitted jobs run to completion, and
// the runner pool exits once the queue is empty. If ctx expires first,
// every unfinished job is canceled — the engine aborts within one slot
// batch — and Drain waits for the (now fast) completions. Safe to call
// once; Close is Drain with an expired context.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelAll()
		<-done
	}
	s.once.Do(func() { close(s.quit) })
	s.runners.Wait()
	return err
}

// Close shuts down immediately: cancels all jobs, waits for them.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx)
	return nil
}

// --- HTTP surface ---

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.WriteTo(w)
	})
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns/{hash}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/campaigns/{hash}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/campaigns/{hash}/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/stream", s.handleSubmitStream)
	s.mux.HandleFunc("GET /v1/ws", s.handleWS)
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// submitStatus maps a Submit error to its HTTP status.
func submitStatus(err error) int {
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func decodeRequest(r *http.Request) (Request, error) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("serve: decoding request: %v", err)
	}
	return req, nil
}

// jobStatus is the JSON shape of a job's externally visible state.
type jobStatus struct {
	Hash    string   `json:"hash"`
	State   string   `json:"state"`
	Rows    int      `json:"rows"`
	Lines   int      `json:"lines"`
	Runs    int      `json:"runs"`
	Schemes []string `json:"schemes"`
	Modem   string   `json:"modem"`
	Cached  bool     `json:"cached,omitempty"`
	Error   string   `json:"error,omitempty"`
}

func statusOf(j *Job, hit bool) jobStatus {
	state, lines, err := j.Snapshot()
	st := jobStatus{
		Hash:    j.Campaign.Hash,
		State:   state.String(),
		Rows:    j.Campaign.Rows,
		Lines:   lines,
		Runs:    j.Campaign.Req.Runs,
		Modem:   j.Campaign.Modem,
		Cached:  hit,
		Schemes: make([]string, len(j.Campaign.Schemes)),
	}
	for i, sc := range j.Campaign.Schemes {
		st.Schemes[i] = string(sc)
	}
	if err != nil {
		st.Error = err.Error()
	}
	return st
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name        string   `json:"name"`
		Description string   `json:"description"`
		Schemes     []string `json:"schemes"`
		Modem       string   `json:"modem"`
	}
	var out []entry
	for _, sc := range sim.Scenarios() { // sorted by name
		schemes, err := experiments.CampaignSchemes(sc.Name(), nil)
		if err != nil {
			continue // a scenario outside the default framing is not servable
		}
		e := entry{
			Name:        sc.Name(),
			Description: sc.Description(),
			Schemes:     make([]string, len(schemes)),
			Modem:       sim.EffectiveModemName(sc, sim.Config{}),
		}
		for i, sch := range schemes {
			e.Schemes[i] = string(sch)
		}
		out = append(out, e)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	j, hit, err := s.Submit(req)
	if err != nil {
		jsonError(w, submitStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !hit {
		w.WriteHeader(http.StatusAccepted)
	}
	json.NewEncoder(w).Encode(statusOf(j, hit))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Lookup(r.PathValue("hash"))
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Errorf("serve: unknown campaign %q", r.PathValue("hash")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statusOf(j, false))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !s.Cancel(hash) {
		jsonError(w, http.StatusNotFound, fmt.Errorf("serve: unknown campaign %q", hash))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"hash": hash, "state": "canceling"})
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Lookup(r.PathValue("hash"))
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Errorf("serve: unknown campaign %q", r.PathValue("hash")))
		return
	}
	s.streamNDJSON(w, r, j)
}

func (s *Server) handleSubmitStream(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	j, _, err := s.Submit(req)
	if err != nil {
		jsonError(w, submitStatus(err), err)
		return
	}
	s.streamNDJSON(w, r, j)
}

// ndjsonWriter frames lines for a chunked HTTP response, flushing each
// so subscribers observe rows as the engine produces them.
type ndjsonWriter struct {
	w  http.ResponseWriter
	rc *http.ResponseController
}

func (nw *ndjsonWriter) WriteLine(deadline time.Time, line []byte) error {
	if err := nw.rc.SetWriteDeadline(deadline); err != nil {
		return err
	}
	if _, err := nw.w.Write(line); err != nil {
		return err
	}
	if _, err := nw.w.Write([]byte{'\n'}); err != nil {
		return err
	}
	return nw.rc.Flush()
}

func (s *Server) streamNDJSON(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Ancserve-Hash", j.Campaign.Hash)
	w.WriteHeader(http.StatusOK)
	sub := j.Subscribe()
	// Errors past this point cannot change the status line; the stream
	// just ends early, which NDJSON consumers detect by the missing
	// trailing summary record.
	s.pump(r.Context(), sub, &ndjsonWriter{w: w, rc: http.NewResponseController(w)})
}

func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	c, err := wsUpgrade(w, r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	defer c.Close()
	payload, err := c.readText(time.Now().Add(30 * time.Second))
	if err != nil {
		return
	}
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		c.writeClose(time.Now().Add(s.cfg.WriteTimeout), 1008, fmt.Sprintf("bad request: %v", err))
		return
	}
	j, _, err := s.Submit(req)
	if err != nil {
		c.writeClose(time.Now().Add(s.cfg.WriteTimeout), 1008, err.Error())
		return
	}
	// The connection is hijacked, so the request context no longer
	// tracks the peer; a read pump detects the client going away (close
	// frame or error) and answers pings meanwhile.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		defer cancel()
		for {
			if _, err := c.readText(time.Time{}); err != nil {
				return
			}
		}
	}()
	sub := j.Subscribe()
	if err := s.pump(ctx, sub, c); err != nil {
		c.writeClose(time.Now().Add(s.cfg.WriteTimeout), 1011, err.Error())
		return
	}
	c.writeClose(time.Now().Add(s.cfg.WriteTimeout), 1000, "campaign complete")
}
