package serve

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Minimal RFC 6455 WebSocket server — just the subset a line-streaming
// daemon needs, built on net/http's hijacker so no dependency enters
// the module: the opening handshake, unfragmented text/binary frames,
// ping/pong, and clean closes. Frames from clients must be masked (the
// RFC requires it); frames to clients never are.

const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket opcodes (RFC 6455 §5.2).
const (
	opText   = 0x1
	opBinary = 0x2
	opClose  = 0x8
	opPing   = 0x9
	opPong   = 0xA
)

// wsMaxPayload bounds inbound frames: clients only ever send one small
// request object plus control frames, so anything larger is a protocol
// error, not a use case.
const wsMaxPayload = 1 << 20

// wsAccept computes the Sec-WebSocket-Accept token for a handshake key.
func wsAccept(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// wsConn is one upgraded connection. Writes are mutex-serialized so the
// streaming goroutine and control-frame replies (pong, close) never
// interleave partial frames.
type wsConn struct {
	conn net.Conn
	rw   *bufio.ReadWriter

	wmu sync.Mutex
	// maskWrites makes this endpoint mask its outgoing frames — false
	// for the server (RFC: server frames are never masked), true for
	// the in-package test client.
	maskWrites bool
	// maskSeed feeds deterministic masking keys for test clients; the
	// RFC only requires a mask to be present, not unpredictable, and a
	// fixed sequence keeps tests reproducible.
	maskSeed uint32
}

// wsUpgrade performs the opening handshake and hijacks the connection.
func wsUpgrade(w http.ResponseWriter, r *http.Request) (*wsConn, error) {
	if r.Method != http.MethodGet {
		return nil, fmt.Errorf("serve: websocket handshake requires GET, got %s", r.Method)
	}
	if !headerHasToken(r.Header, "Connection", "upgrade") || !headerHasToken(r.Header, "Upgrade", "websocket") {
		return nil, fmt.Errorf("serve: not a websocket upgrade request")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		return nil, fmt.Errorf("serve: unsupported websocket version %q", v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return nil, fmt.Errorf("serve: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		return nil, fmt.Errorf("serve: response writer does not support hijacking")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, err
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAccept(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		conn.Close()
		return nil, err
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return &wsConn{conn: conn, rw: rw}, nil
}

// headerHasToken reports whether a comma-separated header contains the
// token (case-insensitive) — "Connection: keep-alive, Upgrade" counts.
func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// writeFrame emits one unfragmented frame under the write mutex.
func (c *wsConn) writeFrame(deadline time.Time, opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.conn.SetWriteDeadline(deadline); err != nil {
		return err
	}
	var hdr [14]byte
	hdr[0] = 0x80 | opcode // FIN + opcode
	n := 2
	switch {
	case len(payload) < 126:
		hdr[1] = byte(len(payload))
	case len(payload) <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(payload)))
		n = 10
	}
	if c.maskWrites {
		hdr[1] |= 0x80
		var key [4]byte
		c.maskSeed = c.maskSeed*1664525 + 1013904223
		binary.BigEndian.PutUint32(key[:], c.maskSeed)
		copy(hdr[n:], key[:])
		n += 4
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ key[i&3]
		}
		payload = masked
	}
	if _, err := c.rw.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := c.rw.Write(payload); err != nil {
		return err
	}
	return c.rw.Flush()
}

// WriteLine implements lineWriter: one campaign line per text frame.
func (c *wsConn) WriteLine(deadline time.Time, line []byte) error {
	return c.writeFrame(deadline, opText, line)
}

// writeClose sends a close frame carrying a status code and reason.
func (c *wsConn) writeClose(deadline time.Time, code uint16, reason string) error {
	if len(reason) > 123 {
		reason = reason[:123] // control frames carry at most 125 payload bytes
	}
	payload := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(payload[:2], code)
	copy(payload[2:], reason)
	return c.writeFrame(deadline, opClose, payload)
}

// readFrame reads one frame, reassembling nothing: fragmented messages
// are rejected, which is fine for a protocol whose inbound traffic is
// one request object and control frames.
func (c *wsConn) readFrame() (opcode byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(c.rw, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0]&0x80 == 0 {
		return 0, nil, fmt.Errorf("serve: fragmented websocket frames not supported")
	}
	if hdr[0]&0x70 != 0 {
		return 0, nil, fmt.Errorf("serve: websocket reserved bits set")
	}
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.rw, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.rw, ext[:]); err != nil {
			return 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > wsMaxPayload {
		return 0, nil, fmt.Errorf("serve: websocket frame of %d bytes exceeds limit", length)
	}
	var key [4]byte
	if masked {
		if _, err = io.ReadFull(c.rw, key[:]); err != nil {
			return 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.rw, payload); err != nil {
		return 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= key[i&3]
		}
	}
	return opcode, payload, nil
}

// readText reads data frames until a text/binary payload arrives,
// answering pings and treating a close frame as io.EOF.
func (c *wsConn) readText(deadline time.Time) ([]byte, error) {
	if err := c.conn.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	for {
		op, payload, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch op {
		case opText, opBinary:
			return payload, nil
		case opPing:
			if err := c.writeFrame(time.Now().Add(5*time.Second), opPong, payload); err != nil {
				return nil, err
			}
		case opPong:
			// Unsolicited pong: ignore.
		case opClose:
			return nil, io.EOF
		default:
			return nil, fmt.Errorf("serve: unexpected websocket opcode %#x", op)
		}
	}
}

// Close tears the connection down.
func (c *wsConn) Close() error { return c.conn.Close() }

// newWSClient wraps an already-connected net.Conn (e.g. one end of a
// net.Pipe) as a masking endpoint — the in-package test client. It does
// not perform the HTTP handshake; pair it with a server-side wsUpgrade
// over the same pipe, or use it against a raw frame stream.
func newWSClient(conn net.Conn) *wsConn {
	return &wsConn{
		conn:       conn,
		rw:         bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn)),
		maskWrites: true,
		maskSeed:   0x9E3779B9,
	}
}
