package serve

import "container/list"

// cache is the content-addressed job index: canonical request hash →
// Job. It serves three roles at once —
//
//   - coalescing: a submission whose hash matches a queued or running
//     job attaches to it instead of starting a second engine run, so
//     concurrent identical requests compute once and fan out;
//   - replay: a completed job's retained lines answer later identical
//     requests without touching the engine;
//   - retention: completed jobs are bounded by a byte budget with LRU
//     eviction. Only completed jobs are ever evicted — queued and
//     running jobs have live subscribers and pin themselves.
//
// Failed and canceled jobs are removed on finalization: their retained
// lines are a prefix, not the campaign, and must never answer a request.
type cache struct {
	maxBytes int64
	bytes    int64
	jobs     map[string]*list.Element
	lru      list.List // completed jobs, front = most recently used
}

type cacheEntry struct {
	hash string
	job  *Job
	done bool // accounted into bytes and linked into lru
}

func newCache(maxBytes int64) *cache {
	c := &cache{maxBytes: maxBytes, jobs: make(map[string]*list.Element)}
	c.lru.Init()
	return c
}

// lookup returns the job for a hash in any live state, refreshing its
// recency if completed. Callers hold the server lock.
func (c *cache) lookup(hash string) (*Job, bool) {
	e, ok := c.jobs[hash]
	if !ok {
		return nil, false
	}
	ent := e.Value.(*cacheEntry)
	if ent.done {
		c.lru.MoveToFront(e)
	}
	return ent.job, true
}

// insert registers a freshly admitted job under its hash.
func (c *cache) insert(hash string, j *Job) {
	c.jobs[hash] = c.lru.PushFront(&cacheEntry{hash: hash, job: j})
}

// remove drops a job from the index (failed, canceled, or rejected by a
// full queue).
func (c *cache) remove(hash string) {
	e, ok := c.jobs[hash]
	if !ok {
		return
	}
	ent := e.Value.(*cacheEntry)
	if ent.done {
		c.bytes -= ent.job.size()
	}
	c.lru.Remove(e)
	delete(c.jobs, hash)
}

// finalize accounts a completed job into the byte budget and evicts
// least-recently-used completed jobs until the budget holds. The job
// that just completed is exempt from its own eviction pass — evicting
// the entry a subscriber is replaying right now would be absurd even
// when one campaign alone exceeds the budget.
func (c *cache) finalize(j *Job, hash string) {
	e, ok := c.jobs[hash]
	if !ok {
		return // canceled and removed while running
	}
	ent := e.Value.(*cacheEntry)
	ent.done = true
	c.bytes += j.size()
	c.lru.MoveToFront(e)
	for e := c.lru.Back(); e != nil && c.bytes > c.maxBytes; {
		prev := e.Prev()
		victim := e.Value.(*cacheEntry)
		// Queued/running entries are unevictable and may sit anywhere in
		// the list; skip rather than stop at them.
		if victim.done && victim.job != j {
			c.remove(victim.hash)
		}
		e = prev
	}
}
