// Package frame implements the ANC frame layout of Fig. 6 and §7.2–§7.4:
//
//	[pilot][header][payload+CRC][reversed header][reversed pilot]
//
// The 64-bit pseudo-random pilot appears at the start and, mirrored, at the
// end. A receiver whose packet starts first (Alice) locates the forward
// pilot in the interference-free head of the signal; a receiver whose
// packet starts second (Bob) time-reverses the received samples and finds
// the same pilot at the head of the reversed stream, because the mirrored
// tail reads forward under reversal. The mirror is laid out in units of
// the modem's symbol width (MarshalFor), since time reversal hands a
// multi-bit modem its symbols in reverse order but never reverses the
// bits inside one symbol. The header {Src, Dst, Seq, Len, Flags}
// likewise appears after the pilot at both ends so either decoding
// direction learns which sent packet cancels the interference (§7.3).
//
// Payload and header bits are whitened (XORed with a PRBS) per §6.2 so the
// amplitude estimator's randomness assumption E[cos(θ−φ)] ≈ 0 holds for
// arbitrary payloads. Pilots are never whitened — they are the known
// sequence being searched for.
package frame

import (
	"errors"
	"fmt"

	"repro/internal/bits"
)

// Header field widths in bits.
const (
	srcBits   = 16
	dstBits   = 16
	seqBits   = 32
	lenBits   = 16
	flagsBits = 8

	// HeaderBits is the whitened on-air header block size: the fields
	// plus a CRC-16 so a header decodes or fails independently of the
	// payload (§7.5 routers act on headers alone).
	HeaderBits = srcBits + dstBits + seqBits + lenBits + flagsBits + 16
)

// FlagTrigger marks a transmission whose end triggers the marked neighbors
// to transmit simultaneously (§7.6).
const FlagTrigger = 1 << 0

// headerWhitenSeed whitens header blocks; distinct from the payload stream
// so the two regions decode independently.
const headerWhitenSeed uint32 = 0x7F4A7C15

// Header identifies a packet: source, destination, sequence number, the
// payload length in bytes, and protocol flags.
type Header struct {
	Src   uint16
	Dst   uint16
	Seq   uint32
	Len   uint16
	Flags uint8
}

// Key identifies a packet uniquely for sent-packet-buffer lookup.
type Key struct {
	Src uint16
	Dst uint16
	Seq uint32
}

// Key returns the buffer lookup key for the header.
func (h Header) Key() Key { return Key{Src: h.Src, Dst: h.Dst, Seq: h.Seq} }

// String implements fmt.Stringer.
func (h Header) String() string {
	return fmt.Sprintf("src=%d dst=%d seq=%d len=%d flags=%#02x", h.Src, h.Dst, h.Seq, h.Len, h.Flags)
}

// marshalBits encodes the header fields (without CRC or whitening).
func (h Header) marshalBits() []byte {
	out := make([]byte, HeaderBits-16)
	h.putBits(out)
	return out
}

// putBits writes the header fields (without CRC) into dst's first
// HeaderBits−16 entries.
func (h Header) putBits(dst []byte) {
	bits.PutUint16(dst[0:], h.Src)
	bits.PutUint16(dst[16:], h.Dst)
	bits.PutUint32(dst[32:], h.Seq)
	bits.PutUint16(dst[64:], h.Len)
	for i := 0; i < flagsBits; i++ {
		dst[80+i] = (h.Flags >> uint(flagsBits-1-i)) & 1
	}
}

// unmarshalBits decodes header fields from the 88 field bits.
func unmarshalBits(bs []byte) Header {
	var flags byte
	for i := 0; i < flagsBits; i++ {
		flags = flags<<1 | bs[80+i]&1
	}
	return Header{
		Src:   bits.ToUint16(bs[0:16]),
		Dst:   bits.ToUint16(bs[16:32]),
		Seq:   bits.ToUint32(bs[32:64]),
		Len:   bits.ToUint16(bs[64:80]),
		Flags: flags,
	}
}

// EncodeHeader returns the whitened on-air header block (HeaderBits bits).
func EncodeHeader(h Header) []byte {
	out := make([]byte, HeaderBits)
	encodeHeaderInto(out, h)
	return out
}

// encodeHeaderInto writes the whitened header block (fields, CRC) into
// dst's first HeaderBits entries.
func encodeHeaderInto(dst []byte, h Header) {
	h.putBits(dst)
	bits.PutUint16(dst[HeaderBits-16:], bits.CRC16(dst[:HeaderBits-16]))
	bits.WhitenTo(dst[:HeaderBits], dst[:HeaderBits], headerWhitenSeed)
}

// ErrBadHeader is returned when a header block fails its CRC.
var ErrBadHeader = errors.New("frame: header CRC mismatch")

// DecodeHeader parses a whitened on-air header block.
func DecodeHeader(block []byte) (Header, error) {
	if len(block) < HeaderBits {
		return Header{}, fmt.Errorf("frame: header block %d bits, need %d", len(block), HeaderBits)
	}
	var buf [HeaderBits]byte
	raw, ok := bits.CheckCRC16(bits.WhitenTo(buf[:], block[:HeaderBits], headerWhitenSeed))
	if !ok {
		return Header{}, ErrBadHeader
	}
	return unmarshalBits(raw), nil
}

// Packet is a network-layer packet: a header plus payload bytes.
type Packet struct {
	Header  Header
	Payload []byte
}

// NewPacket builds a packet, filling in the header length field.
func NewPacket(src, dst uint16, seq uint32, payload []byte) Packet {
	return Packet{
		Header:  Header{Src: src, Dst: dst, Seq: seq, Len: uint16(len(payload))},
		Payload: append([]byte(nil), payload...),
	}
}

// PayloadSectionBits returns the on-air size of the whitened payload
// section (payload plus its CRC-16) for a payload of n bytes.
func PayloadSectionBits(n int) int { return n*8 + 16 }

// FrameBits returns the total on-air frame size in bits for a payload of
// n bytes: pilot + header + payload section + mirrored header + pilot.
func FrameBits(n int) int {
	return 2*bits.PilotLength + 2*HeaderBits + PayloadSectionBits(n)
}

// MirrorBits is the size of the mirrored region: the pilot plus the
// header, which the frame carries once at its head and once, reversed, at
// its tail.
const MirrorBits = bits.PilotLength + HeaderBits

// Marshal encodes the packet into its on-air bit representation for a
// one-bit-per-symbol modem (MSK, the paper's). Multi-bit modems must use
// MarshalFor so the mirrored tail reverses in symbol units.
func Marshal(p Packet) []byte { return MarshalFor(p, 1) }

// MarshalFor encodes the packet into its on-air bit representation for a
// modem carrying bitsPerSymbol bits per symbol.
//
// The mirrored tail is the head's pilot+header region laid out in reverse
// *symbol* order with the bit order inside each symbol preserved. Under
// conjugate time reversal a multi-bit modem recovers symbols (not bits)
// in reverse order, each symbol still decoding to its bits in transmit
// order — so only a symbol-wise mirror presents a valid pilot+header at
// the head of the reversed stream (§7.4 generalized beyond MSK). At one
// bit per symbol the layout degenerates to the classic bit-wise mirror:
// MarshalFor(p, 1) is byte-identical to the historical Marshal.
//
// Registration invariant: bitsPerSymbol must divide MirrorBits (the
// pilot+header region must be a whole number of symbols, or the mirror
// would split symbols across the fold). Both shipped modems (1 and
// 2 bits/symbol) and any power-of-two width up to 8 satisfy it.
func MarshalFor(p Packet, bitsPerSymbol int) []byte {
	if int(p.Header.Len) != len(p.Payload) {
		// Length disagreement is a construction bug, not a runtime
		// condition; fail loudly.
		panic(fmt.Sprintf("frame: header len %d != payload %d", p.Header.Len, len(p.Payload)))
	}
	if bitsPerSymbol < 1 || MirrorBits%bitsPerSymbol != 0 {
		panic(fmt.Sprintf("frame: bits per symbol %d does not divide the %d-bit mirror region", bitsPerSymbol, MirrorBits))
	}
	n := len(p.Payload)
	out := make([]byte, FrameBits(n))
	copy(out, pilotForward)
	hdr := out[bits.PilotLength:MirrorBits]
	encodeHeaderInto(hdr, p.Header)
	body := out[MirrorBits : MirrorBits+PayloadSectionBits(n)]
	bits.PutBytes(body, p.Payload)
	bits.PutUint16(body[n*8:], bits.CRC16(body[:n*8]))
	bits.WhitenTo(body, body, bits.WhitenSeed)
	// Mirror: tail symbol s is head symbol nsym−1−s of the pilot+header
	// region, bits within the symbol untouched.
	head := out[:MirrorBits]
	tail := out[MirrorBits+PayloadSectionBits(n):]
	nsym := MirrorBits / bitsPerSymbol
	for s := 0; s < nsym; s++ {
		copy(tail[s*bitsPerSymbol:(s+1)*bitsPerSymbol],
			head[(nsym-1-s)*bitsPerSymbol:(nsym-s)*bitsPerSymbol])
	}
	return out
}

// pilotForward caches the fixed network pilot so Marshal builds a frame
// with a single allocation.
var pilotForward = bits.Pilot(bits.PilotLength)

// Errors returned by Unmarshal.
var (
	ErrTooShort = errors.New("frame: too short")
	ErrBadCRC   = errors.New("frame: payload CRC mismatch")
)

// Unmarshal parses a full on-air frame back into a packet, verifying both
// CRCs. The input may carry trailing garbage (e.g. noise samples decoded
// past the frame end); only the region implied by the header length is
// read.
func Unmarshal(bs []byte) (Packet, error) {
	if len(bs) < 2*bits.PilotLength+2*HeaderBits+16 {
		return Packet{}, ErrTooShort
	}
	h, err := DecodeHeader(bs[bits.PilotLength:])
	if err != nil {
		return Packet{}, err
	}
	bodyStart := bits.PilotLength + HeaderBits
	bodyEnd := bodyStart + PayloadSectionBits(int(h.Len))
	if bodyEnd > len(bs) {
		return Packet{}, ErrTooShort
	}
	raw, ok := bits.CheckCRC16(bits.Whiten(bs[bodyStart:bodyEnd], bits.WhitenSeed))
	if !ok {
		return Packet{Header: h}, ErrBadCRC
	}
	payload, err := bits.ToBytes(raw)
	if err != nil {
		return Packet{Header: h}, err
	}
	return Packet{Header: h, Payload: payload}, nil
}

// ExtractBody returns the dewhitened payload bits of a recovered frame
// WITHOUT verifying the CRC. Error-correcting layers use it to reach the
// raw (possibly errored) payload bits that the CRC-gated Unmarshal path
// refuses to hand out.
func ExtractBody(bs []byte, payloadBytes int) ([]byte, error) {
	bodyStart := bits.PilotLength + HeaderBits
	bodyEnd := bodyStart + PayloadSectionBits(payloadBytes)
	if bodyEnd > len(bs) {
		return nil, ErrTooShort
	}
	raw := bits.Whiten(bs[bodyStart:bodyEnd], bits.WhitenSeed)
	return raw[:payloadBytes*8], nil
}

// UnmarshalBody extracts and verifies only the payload section given an
// already-decoded header. ANC decoding recovers header and body in
// separate steps; this entry point avoids re-parsing the header.
func UnmarshalBody(h Header, bs []byte) ([]byte, error) {
	bodyStart := bits.PilotLength + HeaderBits
	bodyEnd := bodyStart + PayloadSectionBits(int(h.Len))
	if bodyEnd > len(bs) {
		return nil, ErrTooShort
	}
	raw, ok := bits.CheckCRC16(bits.Whiten(bs[bodyStart:bodyEnd], bits.WhitenSeed))
	if !ok {
		return nil, ErrBadCRC
	}
	return bits.ToBytes(raw)
}
