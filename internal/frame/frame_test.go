package frame

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bits"
)

func TestHeaderRoundTrip(t *testing.T) {
	f := func(src, dst uint16, seq uint32, length uint16, flags uint8) bool {
		h := Header{Src: src, Dst: dst, Seq: seq, Len: length, Flags: flags}
		got, err := DecodeHeader(EncodeHeader(h))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderBlockSize(t *testing.T) {
	h := Header{Src: 1, Dst: 2, Seq: 3, Len: 4, Flags: FlagTrigger}
	if got := len(EncodeHeader(h)); got != HeaderBits {
		t.Errorf("header block = %d bits, want %d", got, HeaderBits)
	}
}

func TestHeaderCRCRejectsCorruption(t *testing.T) {
	block := EncodeHeader(Header{Src: 9, Dst: 8, Seq: 7, Len: 6})
	for i := 0; i < len(block); i += 7 {
		corrupt := append([]byte(nil), block...)
		corrupt[i] ^= 1
		if _, err := DecodeHeader(corrupt); !errors.Is(err, ErrBadHeader) {
			t.Fatalf("bit %d corruption: err = %v, want ErrBadHeader", i, err)
		}
	}
}

func TestDecodeHeaderShort(t *testing.T) {
	if _, err := DecodeHeader(make([]byte, HeaderBits-1)); err == nil {
		t.Error("short header accepted")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		payload := make([]byte, rng.Intn(300))
		rng.Read(payload)
		p := NewPacket(uint16(trial), uint16(trial+1), uint32(trial*7), payload)
		got, err := Unmarshal(Marshal(p))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Header != p.Header {
			t.Fatalf("trial %d: header %v != %v", trial, got.Header, p.Header)
		}
		if string(got.Payload) != string(p.Payload) {
			t.Fatalf("trial %d: payload mismatch", trial)
		}
	}
}

func TestFrameBitsMatchesMarshal(t *testing.T) {
	for _, n := range []int{0, 1, 64, 200} {
		p := NewPacket(1, 2, 3, make([]byte, n))
		if got := len(Marshal(p)); got != FrameBits(n) {
			t.Errorf("payload %d: marshal %d bits, FrameBits %d", n, got, FrameBits(n))
		}
	}
}

func TestFrameStructure(t *testing.T) {
	p := NewPacket(10, 20, 30, []byte("hello"))
	bs := Marshal(p)
	pilot := bits.Pilot(bits.PilotLength)

	// Leading pilot, forward.
	if !bits.Equal(bs[:bits.PilotLength], pilot) {
		t.Error("leading pilot missing")
	}
	// Trailing pilot, mirrored.
	tail := bs[len(bs)-bits.PilotLength:]
	if !bits.Equal(tail, bits.Reverse(pilot)) {
		t.Error("trailing mirrored pilot missing")
	}
	// A fully reversed frame re-exposes pilot and header at its head —
	// this is what lets Bob decode backward (§7.4).
	rev := bits.Reverse(bs)
	if !bits.Equal(rev[:bits.PilotLength], pilot) {
		t.Error("reversed frame does not start with forward pilot")
	}
	h, err := DecodeHeader(rev[bits.PilotLength:])
	if err != nil {
		t.Fatalf("reversed header: %v", err)
	}
	if h != p.Header {
		t.Errorf("reversed header = %v, want %v", h, p.Header)
	}
}

// TestMarshalForOneBitMatchesMarshal pins the degenerate case: at one
// bit per symbol the symbol-wise mirror IS the historical bit-wise
// mirror, so every MSK frame ever transmitted stays byte-identical.
func TestMarshalForOneBitMatchesMarshal(t *testing.T) {
	for _, n := range []int{0, 1, 5, 96} {
		p := NewPacket(3, 4, uint32(n), make([]byte, n))
		for i := range p.Payload {
			p.Payload[i] = byte(i*41 + 7)
		}
		if !bits.Equal(MarshalFor(p, 1), Marshal(p)) {
			t.Errorf("payload %d: MarshalFor(p, 1) differs from Marshal(p)", n)
		}
	}
}

// TestMarshalForSymbolMirror checks the multi-bit layout: the tail is
// the pilot+header region in reverse symbol order with bit order inside
// each symbol preserved, so a symbol-group reversal of the whole frame —
// the bit-domain image of conjugate time reversal through a 2-bit modem —
// re-exposes the forward pilot and a decodable header at its head.
func TestMarshalForSymbolMirror(t *testing.T) {
	p := NewPacket(10, 20, 30, []byte("hello"))
	bs := MarshalFor(p, 2)
	if len(bs) != FrameBits(len(p.Payload)) {
		t.Fatalf("frame is %d bits, want %d", len(bs), FrameBits(len(p.Payload)))
	}
	head := bs[:MirrorBits]
	tail := bs[len(bs)-MirrorBits:]
	nsym := MirrorBits / 2
	for s := 0; s < nsym; s++ {
		got := tail[s*2 : s*2+2]
		want := head[(nsym-1-s)*2 : (nsym-s)*2]
		if !bits.Equal(got, want) {
			t.Fatalf("tail symbol %d = %v, want head symbol %d = %v", s, got, nsym-1-s, want)
		}
	}
	// The decode-side identity: group-reversing the frame puts the
	// forward pilot+header first, exactly what the backward pipeline
	// demodulates off the time-reversed reception (§7.4).
	rev := bits.ReverseGroupsInPlace(append([]byte(nil), bs...), 2)
	if !bits.Equal(rev[:bits.PilotLength], bits.Pilot(bits.PilotLength)) {
		t.Error("group-reversed frame does not start with forward pilot")
	}
	h, err := DecodeHeader(rev[bits.PilotLength:])
	if err != nil {
		t.Fatalf("group-reversed header: %v", err)
	}
	if h != p.Header {
		t.Errorf("group-reversed header = %v, want %v", h, p.Header)
	}
}

// TestMarshalForPanicsOnNonDivisor pins the registration invariant: a
// symbol width that splits the pilot+header region mid-symbol is a
// construction bug and must fail loudly.
func TestMarshalForPanicsOnNonDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MarshalFor with 5 bits/symbol did not panic (MirrorBits=%d)", MirrorBits)
		}
	}()
	MarshalFor(NewPacket(1, 2, 3, []byte("x")), 5)
}

func TestUnmarshalDetectsPayloadCorruption(t *testing.T) {
	p := NewPacket(1, 2, 3, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	bs := Marshal(p)
	// Flip a payload-region bit.
	bs[bits.PilotLength+HeaderBits+5] ^= 1
	_, err := Unmarshal(bs)
	if !errors.Is(err, ErrBadCRC) {
		t.Errorf("err = %v, want ErrBadCRC", err)
	}
}

func TestUnmarshalTolerantOfTrailingGarbage(t *testing.T) {
	p := NewPacket(1, 2, 3, []byte("payload!"))
	bs := append(Marshal(p), 1, 0, 1, 1, 0, 0, 1, 0)
	got, err := Unmarshal(bs)
	if err != nil {
		t.Fatalf("unmarshal with garbage tail: %v", err)
	}
	if string(got.Payload) != "payload!" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestUnmarshalTooShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); !errors.Is(err, ErrTooShort) {
		t.Errorf("err = %v, want ErrTooShort", err)
	}
	// Header claims more payload than present.
	p := NewPacket(1, 2, 3, []byte("x"))
	bs := Marshal(p)
	if _, err := Unmarshal(bs[:bits.PilotLength+HeaderBits+4]); !errors.Is(err, ErrTooShort) {
		t.Errorf("truncated body err = %v, want ErrTooShort", err)
	}
}

func TestUnmarshalBody(t *testing.T) {
	p := NewPacket(4, 5, 6, []byte("separate header path"))
	bs := Marshal(p)
	got, err := UnmarshalBody(p.Header, bs)
	if err != nil {
		t.Fatalf("UnmarshalBody: %v", err)
	}
	if string(got) != "separate header path" {
		t.Errorf("payload = %q", got)
	}
	if _, err := UnmarshalBody(p.Header, bs[:20]); !errors.Is(err, ErrTooShort) {
		t.Errorf("short body err = %v", err)
	}
}

func TestMarshalPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Marshal(Packet{Header: Header{Len: 5}, Payload: []byte("four")})
}

func TestNewPacketCopiesPayload(t *testing.T) {
	buf := []byte("mutate me")
	p := NewPacket(1, 2, 3, buf)
	buf[0] = 'X'
	if p.Payload[0] == 'X' {
		t.Error("NewPacket aliases caller payload")
	}
}

func TestWhiteningRandomizesConstantPayload(t *testing.T) {
	// A zero payload must still produce a near-balanced on-air body
	// section (the §6.2 requirement).
	p := NewPacket(1, 2, 3, make([]byte, 256))
	bs := Marshal(p)
	body := bs[bits.PilotLength+HeaderBits : len(bs)-bits.PilotLength-HeaderBits]
	frac := float64(bits.OnesCount(body)) / float64(len(body))
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("on-air body ones fraction %v for zero payload", frac)
	}
}

func TestSentBufferPutGet(t *testing.T) {
	b := NewSentBuffer(4)
	p := NewPacket(1, 2, 3, []byte("abc"))
	b.Put(SentRecord{Packet: p, Bits: Marshal(p)})
	rec, ok := b.Get(Key{Src: 1, Dst: 2, Seq: 3})
	if !ok {
		t.Fatal("stored record not found")
	}
	if string(rec.Packet.Payload) != "abc" {
		t.Errorf("payload = %q", rec.Packet.Payload)
	}
	if _, ok := b.Get(Key{Src: 9, Dst: 9, Seq: 9}); ok {
		t.Error("missing key reported found")
	}
}

func TestSentBufferEviction(t *testing.T) {
	b := NewSentBuffer(2)
	for seq := uint32(0); seq < 3; seq++ {
		b.Put(SentRecord{Packet: NewPacket(1, 2, seq, nil)})
	}
	if _, ok := b.Get(Key{Src: 1, Dst: 2, Seq: 0}); ok {
		t.Error("oldest record not evicted")
	}
	if _, ok := b.Get(Key{Src: 1, Dst: 2, Seq: 2}); !ok {
		t.Error("newest record missing")
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
}

func TestSentBufferRefresh(t *testing.T) {
	b := NewSentBuffer(2)
	b.Put(SentRecord{Packet: NewPacket(1, 2, 1, []byte("old"))})
	b.Put(SentRecord{Packet: NewPacket(1, 2, 1, []byte("new"))})
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after refresh", b.Len())
	}
	rec, _ := b.Get(Key{Src: 1, Dst: 2, Seq: 1})
	if string(rec.Packet.Payload) != "new" {
		t.Errorf("refresh kept old payload %q", rec.Packet.Payload)
	}
}

func TestSentBufferDefaultCapacity(t *testing.T) {
	b := NewSentBuffer(0)
	for seq := uint32(0); seq < DefaultSentBufferSize+10; seq++ {
		b.Put(SentRecord{Packet: NewPacket(1, 2, seq, nil)})
	}
	if b.Len() != DefaultSentBufferSize {
		t.Errorf("Len = %d, want %d", b.Len(), DefaultSentBufferSize)
	}
}

func TestSentBufferConcurrency(t *testing.T) {
	b := NewSentBuffer(64)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				seq := uint32(w*1000 + i)
				b.Put(SentRecord{Packet: NewPacket(uint16(w), 2, seq, nil)})
				b.Get(Key{Src: uint16(w), Dst: 2, Seq: seq})
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestExtractBody(t *testing.T) {
	p := NewPacket(1, 2, 3, []byte("raw access path"))
	bs := Marshal(p)
	got, err := ExtractBody(bs, len(p.Payload))
	if err != nil {
		t.Fatal(err)
	}
	packed, err := bits.ToBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(packed) != "raw access path" {
		t.Errorf("payload = %q", packed)
	}
	// Unlike UnmarshalBody, corruption passes through un-gated — that is
	// the point (FEC repairs it downstream).
	bs[bits.PilotLength+HeaderBits+3] ^= 1
	got2, err := ExtractBody(bs, len(p.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if bits.HammingDistance(got, got2) != 1 {
		t.Error("single-bit corruption did not pass through as one bit")
	}
	if _, err := ExtractBody(bs[:40], len(p.Payload)); !errors.Is(err, ErrTooShort) {
		t.Errorf("short frame err = %v", err)
	}
}
