package frame

import (
	"sync"

	"repro/internal/dsp"
)

// SentRecord is what a node remembers about a transmission so it can later
// cancel that transmission out of an interfered signal: the packet, its
// on-air bits, and the modulated baseband samples.
type SentRecord struct {
	Packet  Packet
	Bits    []byte
	Samples dsp.Signal
}

// SentBuffer is the Sent Packet Buffer of §7.3: a bounded store of recent
// transmissions (and overheard packets, for the "X" topology of §11.5)
// keyed by (src, dst, seq). When full, the oldest record is evicted —
// interference decoding only ever needs packets from the recent past.
//
// SentBuffer is safe for concurrent use.
type SentBuffer struct {
	mu    sync.Mutex
	cap   int
	items map[Key]SentRecord
	order []Key // FIFO eviction order
}

// DefaultSentBufferSize bounds the buffer; a handful of round-trips of
// history is ample for the canonical topologies.
const DefaultSentBufferSize = 256

// NewSentBuffer returns a buffer holding at most capacity records.
// Non-positive capacities fall back to the default.
func NewSentBuffer(capacity int) *SentBuffer {
	if capacity <= 0 {
		capacity = DefaultSentBufferSize
	}
	return &SentBuffer{cap: capacity, items: make(map[Key]SentRecord)}
}

// Put stores a record, evicting the oldest if the buffer is full. Storing
// an existing key refreshes its content without changing eviction order.
func (b *SentBuffer) Put(rec SentRecord) {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := rec.Packet.Header.Key()
	if _, ok := b.items[k]; ok {
		b.items[k] = rec
		return
	}
	if len(b.order) >= b.cap {
		oldest := b.order[0]
		b.order = b.order[1:]
		delete(b.items, oldest)
	}
	b.items[k] = rec
	b.order = append(b.order, k)
}

// Reset empties the buffer, keeping its allocated storage so a pooled
// node can start a fresh run without rebuilding the map.
func (b *SentBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	clear(b.items)
	b.order = b.order[:0]
}

// Get looks up the record for a header key.
func (b *SentBuffer) Get(k Key) (SentRecord, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rec, ok := b.items[k]
	return rec, ok
}

// Len returns the number of stored records.
func (b *SentBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}
