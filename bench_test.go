// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation. One benchmark per figure: each iteration runs
// one paired experiment run (ANC plus its baselines on the same channel
// realization), so
//
//	go test -bench Fig9 -benchtime 40x
//
// reproduces the paper's 40-run campaign; the default -benchtime runs a
// smaller one. Aggregate results are attached as custom benchmark metrics
// (gain/traditional, gain/COPE, BER, overlap), and each figure's full
// series is printed once per process. Micro-benchmarks at the bottom
// profile the decoder's hot paths; Ablation* benchmarks print the design
// ablation tables from DESIGN.md §5.
package repro

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/capacity"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dqpsk"
	"repro/internal/dsp"
	"repro/internal/experiments"
	"repro/internal/frame"
	"repro/internal/mesh"
	"repro/internal/msk"
	"repro/internal/sim"
	"repro/internal/stats"
)

// benchSim is the per-iteration run size: large enough for stable
// statistics, small enough that default -benchtime finishes promptly.
func benchSim() sim.Config { return sim.Config{Packets: 10} }

// benchOpts sizes the printed series campaigns.
func benchOpts(b *testing.B) experiments.Options {
	runs := 10
	if testing.Short() {
		runs = 3
	}
	return experiments.Options{Runs: runs, Sim: sim.Config{Packets: 8}, Seed: 7}
}

var (
	printFig7    sync.Once
	printFig9    sync.Once
	printFig10   sync.Once
	printFig12   sync.Once
	printFig13   sync.Once
	printSummary sync.Once
	printAblMat  sync.Once
	printAblSub  sync.Once
	printAblEst  sync.Once
	printAblOvl  sync.Once
)

// BenchmarkFig7Capacity regenerates the capacity-bound series of Fig. 7.
func BenchmarkFig7Capacity(b *testing.B) {
	var pts []capacity.Point
	for i := 0; i < b.N; i++ {
		pts = capacity.Sweep(0, 55, 1)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Gain, "gain@55dB")
	b.ReportMetric(capacity.CrossoverDB(0, 55), "crossover-dB")
	printFig7.Do(func() { fmt.Print(experiments.Fig7(0, 55, 5)) })
}

// figureIteration is one paired campaign iteration: ANC plus its
// baselines on the same seed (the same channel realization), through the
// scenario engine with caller-owned reception buffers. Shared by the
// gain benchmarks and TestBenchSmoke.
func figureIteration(eng *sim.Engine, scratch *sim.Scratch, sc sim.Scenario, seed int64) (a, t, c sim.Metrics) {
	a = engineRun(eng, scratch, sc, sim.SchemeANC, seed)
	t = engineRun(eng, scratch, sc, sim.SchemeRouting, seed)
	if sim.HasScheme(sc, sim.SchemeCOPE) {
		c = engineRun(eng, scratch, sc, sim.SchemeCOPE, seed)
	}
	return a, t, c
}

func engineRun(eng *sim.Engine, scratch *sim.Scratch, sc sim.Scenario, scheme sim.Scheme, seed int64) sim.Metrics {
	m, err := eng.RunReusing(sc, scheme, seed, scratch)
	if err != nil {
		panic(err)
	}
	return m
}

// gainBench runs paired ANC/baseline runs, one pair per iteration.
func gainBench(b *testing.B, sc sim.Scenario) {
	eng := sim.NewEngine(benchSim())
	scratch := sim.NewScratch()
	hasCope := sim.HasScheme(sc, sim.SchemeCOPE)
	gTrad := stats.NewSample(nil)
	gCope := stats.NewSample(nil)
	ber := stats.NewSample(nil)
	ovl := stats.NewSample(nil)
	for i := 0; i < b.N; i++ {
		a, t, c := figureIteration(eng, scratch, sc, int64(1000+i))
		gTrad.Add(stats.GainRatio(a.Throughput(), t.Throughput()))
		if hasCope {
			gCope.Add(stats.GainRatio(a.Throughput(), c.Throughput()))
		}
		ber.Add(a.MeanBER())
		ovl.Add(a.MeanOverlap())
	}
	b.ReportMetric(gTrad.Mean(), "gain/traditional")
	if hasCope {
		b.ReportMetric(gCope.Mean(), "gain/COPE")
	}
	b.ReportMetric(ber.Mean(), "BER")
	b.ReportMetric(ovl.Mean(), "overlap")
}

// BenchmarkFig9aAliceBobGain regenerates the Fig. 9(a) gain CDFs.
func BenchmarkFig9aAliceBobGain(b *testing.B) {
	gainBench(b, sim.AliceBob())
	opts := benchOpts(b)
	printFig9.Do(func() { fmt.Print(experiments.Fig9(opts).FormatGain(15)) })
}

// berIteration is one ANC run contributing its per-packet BERs to the
// sample; shared by the BER benchmarks and TestBenchSmoke.
func berIteration(eng *sim.Engine, scratch *sim.Scratch, sc sim.Scenario, seed int64, ber *stats.Sample) sim.Metrics {
	m := engineRun(eng, scratch, sc, sim.SchemeANC, seed)
	for _, x := range m.BERs {
		ber.Add(x)
	}
	return m
}

// BenchmarkFig9bAliceBobBER regenerates the Fig. 9(b) BER CDF.
func BenchmarkFig9bAliceBobBER(b *testing.B) {
	eng := sim.NewEngine(benchSim())
	scratch := sim.NewScratch()
	ber := stats.NewSample(nil)
	for i := 0; i < b.N; i++ {
		berIteration(eng, scratch, sim.AliceBob(), int64(2000+i), ber)
	}
	b.ReportMetric(ber.Mean(), "BER-mean")
	b.ReportMetric(ber.Quantile(0.9), "BER-p90")
	opts := benchOpts(b)
	printFig9.Do(func() { fmt.Print(experiments.Fig9(opts).FormatBER(15)) })
}

// BenchmarkFig10aXGain regenerates the Fig. 10(a) gain CDFs for the "X".
func BenchmarkFig10aXGain(b *testing.B) {
	gainBench(b, sim.XTopo())
	opts := benchOpts(b)
	printFig10.Do(func() { fmt.Print(experiments.Fig10(opts).FormatGain(15)) })
}

// BenchmarkFig10bXBER regenerates the Fig. 10(b) BER CDF (including the
// elevated tail caused by imperfect overhearing).
func BenchmarkFig10bXBER(b *testing.B) {
	eng := sim.NewEngine(benchSim())
	scratch := sim.NewScratch()
	ber := stats.NewSample(nil)
	for i := 0; i < b.N; i++ {
		berIteration(eng, scratch, sim.XTopo(), int64(3000+i), ber)
	}
	b.ReportMetric(ber.Mean(), "BER-mean")
	b.ReportMetric(ber.Max(), "BER-max")
	opts := benchOpts(b)
	printFig10.Do(func() { fmt.Print(experiments.Fig10(opts).FormatBER(15)) })
}

// BenchmarkFig12aChainGain regenerates Fig. 12(a); COPE does not apply to
// the unidirectional chain.
func BenchmarkFig12aChainGain(b *testing.B) {
	gainBench(b, sim.Chain())
	opts := benchOpts(b)
	printFig12.Do(func() { fmt.Print(experiments.Fig12(opts).FormatGain(15)) })
}

// BenchmarkFig12bChainBER regenerates Fig. 12(b): the chain's BER sits
// below the Alice–Bob topology's because no relay re-amplifies the noise.
func BenchmarkFig12bChainBER(b *testing.B) {
	eng := sim.NewEngine(benchSim())
	scratch := sim.NewScratch()
	ber := stats.NewSample(nil)
	for i := 0; i < b.N; i++ {
		berIteration(eng, scratch, sim.Chain(), int64(4000+i), ber)
	}
	b.ReportMetric(ber.Mean(), "BER-mean")
	opts := benchOpts(b)
	printFig12.Do(func() { fmt.Print(experiments.Fig12(opts).FormatBER(15)) })
}

// BenchmarkScenarioCampaign runs one multi-run engine campaign per
// iteration over the cross-traffic scenario — the worker-pool path with
// per-worker buffer reuse.
func BenchmarkScenarioCampaign(b *testing.B) {
	eng := sim.NewEngine(sim.Config{Packets: 4})
	sc := sim.MustScenario("x-cross")
	seeds := []int64{1, 2, 3, 4, 5, 6}
	for i := 0; i < b.N; i++ {
		if _, err := eng.Campaign(sc, sc.Schemes(), seeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13BERvsSIR regenerates the Fig. 13 sweep. Each iteration is
// one full −3..+4 dB sweep.
func BenchmarkFig13BERvsSIR(b *testing.B) {
	cfg := sim.Config{Packets: 4}
	var worst float64
	for i := 0; i < b.N; i++ {
		pts := sim.SIRSweep(cfg, int64(5000+i*17), -3, 4, 1)
		worst = 0
		for _, p := range pts {
			if p.MeanBER > worst {
				worst = p.MeanBER
			}
		}
	}
	b.ReportMetric(worst, "BER-max-over-sweep")
	printFig13.Do(func() {
		fmt.Print(experiments.Fig13(experiments.Options{Runs: 1, Sim: sim.Config{Packets: 8}, Seed: 7}, -3, 4, 1))
	})
}

// BenchmarkSummaryTable regenerates the §11.3 headline table.
func BenchmarkSummaryTable(b *testing.B) {
	cfg := benchSim()
	for i := 0; i < b.N; i++ {
		_ = sim.RunAliceBobANC(cfg, int64(6000+i))
	}
	opts := benchOpts(b)
	printSummary.Do(func() { fmt.Print(experiments.Summary(opts)) })
}

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblationMatcher(b *testing.B) {
	cfg := benchSim()
	cfg.DecoderTweak = func(c *core.Config) {
		c.NoConditioningWeights = true
		c.NoMSKPrior = true
		c.NoBranchContinuity = true
	}
	literal := stats.NewSample(nil)
	for i := 0; i < b.N; i++ {
		literal.Add(sim.RunAliceBobANC(cfg, int64(7000+i)).MeanBER())
	}
	b.ReportMetric(literal.Mean(), "BER-paper-literal")
	printAblMat.Do(func() { fmt.Print(experiments.AblationMatcher(benchOpts(b))) })
}

func BenchmarkAblationSubtraction(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.AblationSubtraction(int64(8000 + i))
	}
	_ = out
	printAblSub.Do(func() { fmt.Print(experiments.AblationSubtraction(3)) })
}

func BenchmarkAblationEstimator(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.AblationEstimator(int64(9000 + i))
	}
	_ = out
	printAblEst.Do(func() { fmt.Print(experiments.AblationEstimator(4)) })
}

func BenchmarkAblationOverlap(b *testing.B) {
	cfg := benchSim()
	for i := 0; i < b.N; i++ {
		_ = sim.RunAliceBobANC(cfg, int64(9500+i))
	}
	printAblOvl.Do(func() {
		fmt.Print(experiments.AblationOverlap(experiments.Options{Runs: 3, Sim: sim.Config{Packets: 6}, Seed: 5}))
	})
}

// --- Micro-benchmarks: the decoder's hot paths ---

func benchBits(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

func BenchmarkModulate(b *testing.B) {
	m := msk.New()
	bs := benchBits(1024, 1)
	b.SetBytes(int64(len(bs)) / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Modulate(bs)
	}
}

func BenchmarkDemodulateMLSE(b *testing.B) {
	m := msk.New()
	s := m.Modulate(benchBits(1024, 2))
	b.SetBytes(1024 / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Demodulate(s)
	}
}

func BenchmarkSolvePhases(b *testing.B) {
	y := complex(0.7, -0.4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.SolvePhases(y, 1.0, 0.8)
	}
}

func BenchmarkEstimateAmplitudes(b *testing.B) {
	m1 := msk.New()
	m2 := msk.New(msk.WithAmplitude(0.7))
	mix := m1.Modulate(benchBits(1000, 3)).Add(m2.Modulate(benchBits(1000, 4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = core.EstimateAmplitudes(mix)
	}
}

// BenchmarkInterferenceDecode measures one full Algorithm 1 decode of a
// relayed Alice–Bob collision (detection, alignment, amplitude
// estimation, phase matching, deframing). The decoder persists across
// iterations, so this is the workspace-reusing steady state — the B/op
// and allocs/op columns are the numbers the core alloc-regression tests
// pin. BenchmarkInterferenceDecodeFresh below is the contrast case.
func BenchmarkInterferenceDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := msk.New()
	payloadA := make([]byte, 128)
	payloadB := make([]byte, 128)
	rng.Read(payloadA)
	rng.Read(payloadB)
	pktA := frame.NewPacket(1, 2, 1, payloadA)
	pktB := frame.NewPacket(2, 1, 1, payloadB)
	bitsA := frame.Marshal(pktA)
	sigA := m.Modulate(bitsA)
	sigB := m.Modulate(frame.Marshal(pktB))

	mix := sigA.Scale(complex(0.8, 0)).Add(applyCFO(sigB, 0.01).Delay(1200))
	rx := dsp.NewNoiseSource(1e-3, 6).AddTo(mix.PadTo(len(mix) + 500))

	buf := frame.NewSentBuffer(0)
	buf.Put(frame.SentRecord{Packet: pktA, Bits: bitsA, Samples: sigA})
	dec := core.NewDecoder(core.DefaultConfig(m, 1e-3))
	b.SetBytes(int64(len(rx) * 16)) // complex128 samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(rx, buf.Get); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterferenceDecodeBatch is BenchmarkInterferenceDecode through
// the burst entry point: four distinct relayed collisions decoded as one
// core.DecodeBatch call over decoders sharing a workspace — the shape of
// one simulation slot. Its per-reception B/op and allocs/op columns are
// what the batch pipeline buys over per-call setup; the benchdiff gate
// holds them alongside the single-decode budgets.
func BenchmarkInterferenceDecodeBatch(b *testing.B) {
	ws := core.NewWorkspace()
	items := make([]core.BatchItem, 0, 4)
	var total int
	for i := 0; i < 4; i++ {
		rng := rand.New(rand.NewSource(int64(5 + i)))
		m := msk.New()
		payloadA := make([]byte, 128)
		payloadB := make([]byte, 128)
		rng.Read(payloadA)
		rng.Read(payloadB)
		pktA := frame.NewPacket(1, 2, uint32(1+i), payloadA)
		pktB := frame.NewPacket(2, 1, uint32(1+i), payloadB)
		bitsA := frame.Marshal(pktA)
		sigA := m.Modulate(bitsA)
		sigB := m.Modulate(frame.Marshal(pktB))

		mix := sigA.Scale(complex(0.8, 0)).Add(applyCFO(sigB, 0.01).Delay(1100 + 50*i))
		rx := dsp.NewNoiseSource(1e-3, int64(6+i)).AddTo(mix.PadTo(len(mix) + 500))
		total += len(rx)

		buf := frame.NewSentBuffer(0)
		buf.Put(frame.SentRecord{Packet: pktA, Bits: bitsA, Samples: sigA})
		dec := core.NewDecoder(core.DefaultConfig(m, 1e-3))
		dec.SetWorkspace(ws)
		items = append(items, core.BatchItem{Decoder: dec, Rx: rx, Lookup: buf.Get})
	}
	out := make([]core.BatchResult, len(items))
	b.SetBytes(int64(total * 16)) // complex128 samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = core.DecodeBatch(items, out)
		for j := range out {
			if out[j].Err != nil {
				b.Fatal(out[j].Err)
			}
		}
	}
}

// BenchmarkInterferenceDecodeFresh is BenchmarkInterferenceDecode with a
// new decoder (and therefore a cold workspace) per iteration — what every
// decode paid before buffer reuse. The gap between the two benchmarks'
// B/op is the win the workspace discipline buys.
func BenchmarkInterferenceDecodeFresh(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := msk.New()
	payloadA := make([]byte, 128)
	payloadB := make([]byte, 128)
	rng.Read(payloadA)
	rng.Read(payloadB)
	pktA := frame.NewPacket(1, 2, 1, payloadA)
	pktB := frame.NewPacket(2, 1, 1, payloadB)
	bitsA := frame.Marshal(pktA)
	sigA := m.Modulate(bitsA)
	sigB := m.Modulate(frame.Marshal(pktB))

	mix := sigA.Scale(complex(0.8, 0)).Add(applyCFO(sigB, 0.01).Delay(1200))
	rx := dsp.NewNoiseSource(1e-3, 6).AddTo(mix.PadTo(len(mix) + 500))

	buf := frame.NewSentBuffer(0)
	buf.Put(frame.SentRecord{Packet: pktA, Bits: bitsA, Samples: sigA})
	cfg := core.DefaultConfig(m, 1e-3)
	b.SetBytes(int64(len(rx) * 16)) // complex128 samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := core.NewDecoder(cfg)
		if _, err := dec.Decode(rx, buf.Get); err != nil {
			b.Fatal(err)
		}
	}
}

func applyCFO(s dsp.Signal, cfo float64) dsp.Signal {
	return channel.Link{Gain: 1, Phase: 0.9, FreqOffset: cfo}.Apply(s)
}

// dqpskInterferenceFixture builds one π/4-DQPSK collision with
// symbol-wise mirrored frames (frame.MarshalFor). With backward=false
// the sent buffer holds the first-starting packet, so the decode runs
// forward; with backward=true it holds the second-starting one, so the
// decode runs off the conjugate time-reversed stream (§7.4).
func dqpskInterferenceFixture(backward bool) (core.Config, dsp.Signal, *frame.SentBuffer) {
	rng := rand.New(rand.NewSource(5))
	m := dqpsk.New()
	payloadA := make([]byte, 128)
	payloadB := make([]byte, 128)
	rng.Read(payloadA)
	rng.Read(payloadB)
	pktA := frame.NewPacket(1, 2, 1, payloadA)
	pktB := frame.NewPacket(2, 1, 1, payloadB)
	bitsA := frame.MarshalFor(pktA, m.BitsPerSymbol())
	bitsB := frame.MarshalFor(pktB, m.BitsPerSymbol())
	sigA := m.Modulate(bitsA)
	sigB := m.Modulate(bitsB)

	mix := sigA.Scale(complex(0.8, 0)).Add(applyCFO(sigB, 0.01).Delay(1200))
	rx := dsp.NewNoiseSource(1e-3, 6).AddTo(mix.PadTo(len(mix) + 500))

	buf := frame.NewSentBuffer(0)
	if backward {
		buf.Put(frame.SentRecord{Packet: pktB, Bits: bitsB, Samples: sigB})
	} else {
		buf.Put(frame.SentRecord{Packet: pktA, Bits: bitsA, Samples: sigA})
	}
	return core.DefaultConfig(m, 1e-3), rx, buf
}

// BenchmarkInterferenceDecodeDQPSK is BenchmarkInterferenceDecode under
// the second registered modem: the workspace-reusing steady state of a
// π/4-DQPSK forward interference decode. Its allocs/op column holds the
// dqpsk pipeline to the same zero-steady-state-allocation contract the
// core alloc-regression tests pin for MSK.
func BenchmarkInterferenceDecodeDQPSK(b *testing.B) {
	cfg, rx, buf := dqpskInterferenceFixture(false)
	dec := core.NewDecoder(cfg)
	b.SetBytes(int64(len(rx) * 16)) // complex128 samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(rx, buf.Get); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterferenceDecodeDQPSKBackward is the steady state of the
// path this repo's symbol-wise frame mirror enables: the known packet
// starts second, so the unknown one is recovered off the conjugate
// time-reversed stream. Its allocs/op column is what the benchdiff gate
// holds to the MSK budget — the backward pipeline's extra work (reversal
// into workspace scratch, symbol-group un-mirroring) must stay inside
// reused buffers.
func BenchmarkInterferenceDecodeDQPSKBackward(b *testing.B) {
	cfg, rx, buf := dqpskInterferenceFixture(true)
	dec := core.NewDecoder(cfg)
	b.SetBytes(int64(len(rx) * 16)) // complex128 samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dec.Decode(rx, buf.Get)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Backward {
			b.Fatal("decode did not take the backward path")
		}
	}
}

// BenchmarkInterferenceDecodeDQPSKFresh is the cold-workspace contrast
// case, mirroring BenchmarkInterferenceDecodeFresh.
func BenchmarkInterferenceDecodeDQPSKFresh(b *testing.B) {
	cfg, rx, buf := dqpskInterferenceFixture(false)
	b.SetBytes(int64(len(rx) * 16)) // complex128 samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := core.NewDecoder(cfg)
		if _, err := dec.Decode(rx, buf.Get); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModulationGenerality exercises §4's claim that the decoding
// technique applies to any phase-shift keying: one full forward
// interference decode per iteration over π/4-DQPSK instead of MSK.
func BenchmarkModulationGenerality(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	m := dqpsk.New()
	payloadA := make([]byte, 64)
	payloadB := make([]byte, 64)
	rng.Read(payloadA)
	rng.Read(payloadB)
	pktA := frame.NewPacket(1, 2, 1, payloadA)
	pktB := frame.NewPacket(2, 1, 1, payloadB)
	bitsA := frame.MarshalFor(pktA, m.BitsPerSymbol())
	bitsB := frame.MarshalFor(pktB, m.BitsPerSymbol())
	sigA := m.Modulate(bitsA)
	sigB := m.Modulate(bitsB)
	mix := sigA.Scale(complex(0.8, 0)).Add(applyCFO(sigB, 0.012).Scale(complex(0.75, 0)).Delay(1100))
	rx := dsp.NewNoiseSource(1e-3, 12).AddTo(mix.PadTo(len(mix) + 500))
	buf := frame.NewSentBuffer(0)
	buf.Put(frame.SentRecord{Packet: pktA, Bits: bitsA})
	dec := core.NewDecoder(core.DefaultConfig(m, 1e-3))
	var lastBER float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dec.Decode(rx, buf.Get)
		if err != nil {
			b.Fatal(err)
		}
		lastBER = berOf(bitsB, res.WantedBits)
	}
	b.ReportMetric(lastBER, "BER-dqpsk")
}

func berOf(sent, got []byte) float64 {
	if len(sent) == 0 {
		return 0
	}
	n := len(got)
	if n > len(sent) {
		n = len(sent)
	}
	errs := len(sent) - n
	for i := 0; i < n; i++ {
		if sent[i] != got[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(sent))
}

// BenchmarkClosedLoop runs one full trigger-protocol cycle pair per
// iteration — the §7.5/§7.6 machinery operating end to end.
func BenchmarkClosedLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := mesh.NewSession(mesh.Config{Cycles: 2, Seed: int64(13 + i)})
		rng := rand.New(rand.NewSource(int64(i)))
		pay := func() [][]byte {
			out := make([][]byte, 2)
			for j := range out {
				out[j] = make([]byte, 96)
				rng.Read(out[j])
			}
			return out
		}
		s.Enqueue(pay(), pay())
		st := s.Run()
		if st.Delivered == 0 {
			b.Fatal("closed loop delivered nothing")
		}
	}
}
