// Command anclint is the repository's static-analysis multichecker: it
// proves the simulator's runtime contracts — determinism, byte-stable
// encoders, *Into buffer ownership, the zero-allocation hot path, the
// Recorder results discipline — on every build instead of only on the
// configurations the tests exercise.
//
// Usage:
//
//	anclint [packages]     # default ./...
//	go tool anclint ./...  # via the go.mod tool directive
//
// Exit status: 0 when the analyzed packages are clean, 1 when any
// analyzer reported findings, 2 on usage or load errors.
//
// The determinism analyzer is scoped to the simulation packages (any
// package with a path segment in core, sim, dsp, channel, frame,
// topology, phy, msk, dqpsk, stats, experiments) and explicitly
// sanctions the service layer (serve, ancserve), which reads wall
// clocks for metrics but sits downstream of every simulation output —
// see determinism.InScope. The other analyzers run everywhere. The
// suite is built only on the standard library's go/ast and go/types —
// see internal/analysis.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/intoownership"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/recorderdiscipline"
)

// checks pairs each analyzer with the package filter that decides where
// it runs; a nil filter means everywhere. The determinism scope —
// simulation packages in, sanctioned service packages (serve, ancserve)
// out — lives with the analyzer itself, so tests and driver agree.
var checks = []struct {
	analyzer *analysis.Analyzer
	applies  func(importPath string) bool
}{
	{determinism.Analyzer, determinism.InScope},
	{maporder.Analyzer, nil},
	{intoownership.Analyzer, nil},
	{hotalloc.Analyzer, nil},
	{recorderdiscipline.Analyzer, nil},
}

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run analyzes the packages matched by args (resolved relative to dir)
// and returns the process exit code.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, a := range patterns {
		if len(a) > 0 && a[0] == '-' {
			fmt.Fprintf(stderr, "usage: anclint [packages]\nanclint takes go package patterns only (default ./...)\n")
			return 2
		}
	}
	pkgs, err := analysis.Load(dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "anclint: %v\n", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		if !pkg.Root {
			continue
		}
		for _, c := range checks {
			if c.applies != nil && !c.applies(pkg.ImportPath) {
				continue
			}
			diags, err := analysis.Run(c.analyzer, pkg)
			if err != nil {
				fmt.Fprintf(stderr, "anclint: %v\n", err)
				return 2
			}
			for _, d := range diags {
				fmt.Fprintf(stdout, "%s: %s\n", pkg.Fset.Position(d.Pos), d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "anclint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
