// Package sim is the deliberately-bad smoke-test module for cmd/anclint:
// one violation per analyzer. The directory is named sim so both the
// determinism scope filter and the recorderdiscipline Metrics match
// apply. CI runs anclint over this module and asserts it fails.
package sim

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"
)

// Seed breaks determinism three ways: environment read, global RNG,
// wall clock.
func Seed() int64 {
	if os.Getenv("ANC_SEED") != "" {
		return int64(rand.Int())
	}
	return time.Now().UnixNano()
}

// Dump breaks maporder: emission directly out of map iteration order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// CopyInto breaks the ownership contract: append reallocates the
// caller's destination behind its back.
func CopyInto(dst, src []byte) []byte {
	return append(dst, src...)
}

// Hot breaks the zero-allocation contract: fmt and string concat on an
// annotated hot path.
//
//anc:hotpath
func Hot(a, b string) string {
	fmt.Println("hot!")
	return a + b
}

// Metrics mimics the recorder aggregate; Step writes its field directly
// instead of going through an accessor.
type Metrics struct {
	Delivered int
}

func Step(m *Metrics) {
	m.Delivered++
}
