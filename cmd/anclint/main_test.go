package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestBadModule runs the multichecker over the deliberately-bad fixture
// module and asserts every analyzer fires and the exit code is 1 — the
// same contract the CI lint job relies on.
func TestBadModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run("testdata/badmod", []string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, name := range []string{"determinism", "maporder", "intoownership", "hotalloc", "recorderdiscipline"} {
		if !strings.Contains(out, name+":") {
			t.Errorf("no %s finding in output:\n%s", name, out)
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %q", stderr.String())
	}
}

// TestFlagArgsRejected pins the usage contract: anclint takes package
// patterns only, anything flag-shaped is exit 2.
func TestFlagArgsRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("stderr missing usage line: %q", stderr.String())
	}
}

// TestRepoClean asserts the zero-finding baseline over the repository
// itself — the acceptance bar for every PR.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint pass in -short mode")
	}
	var stdout, stderr bytes.Buffer
	if code := run("../..", []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("anclint over the repo: exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}
