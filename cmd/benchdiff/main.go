// Command benchdiff compares two Go benchmark result files and fails when
// the head results regress past a tolerance — the repository's CI gate
// against decode-path performance and allocation regressions.
//
// Inputs may be plain `go test -bench` text or the `go test -json` event
// stream the CI workflow publishes as BENCH_*.json; benchmark lines are
// extracted either way. For every benchmark present in both files the
// relative change of ns/op and B/op is computed, and any increase beyond
// -tol percent fails the run (exit 1). allocs/op changes are reported but
// gate only with -gate-allocs, since the byte budget already covers them.
// Regressions whose head value stays below the -min-ns / -min-bytes
// floors are exempt for the corresponding metric: single-iteration CI
// runs make tiny results too noisy to gate, but a small baseline that
// regresses past a floor (say, the zero-allocation steady state) still
// fails.
//
// Usage:
//
//	benchdiff -base BENCH_BASE.json -head BENCH_SMOKE.json -tol 10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult holds the standard metrics of one benchmark line.
type benchResult struct {
	name   string
	ns     float64
	bytes  float64
	allocs float64
	hasNs  bool
	hasB   bool
	hasA   bool
}

// testEvent is the subset of the `go test -json` event schema benchdiff
// needs.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// parseFile extracts benchmark results from a file of either plain
// benchmark text or test2json events. test2json splits one benchmark
// result across several output events (the name chunk ends without a
// newline, the metrics follow in the next event), so output text is
// reassembled into complete lines before parsing.
func parseFile(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]benchResult)
	var carry string
	flush := func(text string) {
		carry += text
		for {
			nl := strings.IndexByte(carry, '\n')
			if nl < 0 {
				return
			}
			if r, ok := parseBenchLine(carry[:nl]); ok {
				out[r.name] = r
			}
			carry = carry[nl+1:]
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if json.Unmarshal([]byte(line), &ev) == nil {
				if ev.Action == "output" {
					flush(ev.Output)
				}
				continue
			}
		}
		flush(line + "\n")
	}
	flush("\n") // terminate a trailing unterminated line
	return out, sc.Err()
}

// parseBenchLine parses one `BenchmarkName  N  value unit  value unit ...`
// line, returning false for anything else.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return benchResult{}, false
	}
	// Strip the -GOMAXPROCS suffix so runs from machines with different
	// core counts still pair up.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := benchResult{name: name}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.ns, r.hasNs = v, true
		case "B/op":
			r.bytes, r.hasB = v, true
		case "allocs/op":
			r.allocs, r.hasA = v, true
		}
	}
	if !r.hasNs && !r.hasB && !r.hasA {
		return benchResult{}, false
	}
	return r, true
}

// pctChange returns the relative change from base to head in percent.
func pctChange(base, head float64) float64 {
	if base == 0 {
		if head == 0 {
			return 0
		}
		return 100
	}
	return (head - base) / base * 100
}

// regression describes one gated metric that moved past its tolerance.
type regression struct {
	name, metric string
	base, head   float64
	pct          float64
	tol          float64
}

// compare gates head against base, returning the regressions, a
// human-readable report of every paired benchmark (in name order), and
// how many benchmarks were actually paired. tolNs ≤ 0 gates ns/op at the
// common tolerance.
func compare(base, head map[string]benchResult, tol, tolNs, minNs, minBytes float64, gateAllocs bool) ([]regression, string, int) {
	if tolNs <= 0 {
		tolNs = tol
	}
	names := make([]string, 0, len(head))
	for name := range head {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var regs []regression
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %14s %14s %8s\n", "benchmark", "base", "head", "delta")
	for _, name := range names {
		s, h := base[name], head[name]
		check := func(metric string, bv, hv float64, has bool, floor, tol float64, gated bool) {
			if !has {
				return
			}
			pct := pctChange(bv, hv)
			fmt.Fprintf(&b, "%-40s %14.1f %14.1f %+7.1f%%  (%s)\n", name, bv, hv, pct, metric)
			// The floor exempts only results that END small: a benchmark
			// whose base sits below the floor (e.g. the zero-alloc decode
			// steady state) must still gate when it regresses past it.
			if gated && pct > tol && hv >= floor {
				regs = append(regs, regression{name: name, metric: metric, base: bv, head: hv, pct: pct, tol: tol})
			}
		}
		check("ns/op", s.ns, h.ns, s.hasNs && h.hasNs, minNs, tolNs, true)
		check("B/op", s.bytes, h.bytes, s.hasB && h.hasB, minBytes, tol, true)
		check("allocs/op", s.allocs, h.allocs, s.hasA && h.hasA, 1, tol, gateAllocs)
	}
	return regs, b.String(), len(names)
}

func main() {
	basePath := flag.String("base", "", "benchmark results of the base branch (text or test2json)")
	headPath := flag.String("head", "", "benchmark results of the head branch (text or test2json)")
	tol := flag.Float64("tol", 10, "maximum tolerated regression in percent for ns/op and B/op")
	tolNs := flag.Float64("tol-ns", 0, "separate ns/op tolerance in percent (0 = use -tol); single-iteration wall clock on shared CI runners needs more slack than the deterministic B/op and allocs/op")
	minNs := flag.Float64("min-ns", 1e5, "exempt ns/op regressions whose head value stays below this floor (small results are too noisy to gate)")
	minBytes := flag.Float64("min-bytes", 4096, "exempt B/op regressions whose head value stays below this floor")
	gateAllocs := flag.Bool("gate-allocs", false, "also gate allocs/op at the same tolerance")
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -head are required")
		os.Exit(2)
	}
	base, err := parseFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	head, err := parseFile(*headPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 || len(head) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark lines parsed (base %d, head %d)\n", len(base), len(head))
		os.Exit(2)
	}
	regs, report, paired := compare(base, head, *tol, *tolNs, *minNs, *minBytes, *gateAllocs)
	fmt.Print(report)
	if len(regs) > 0 {
		fmt.Printf("\nFAIL: %d regression(s) past tolerance:\n", len(regs))
		for _, r := range regs {
			fmt.Printf("  %s %s: %.1f -> %.1f (%+.1f%%, tolerance %.0f%%)\n", r.name, r.metric, r.base, r.head, r.pct, r.tol)
		}
		os.Exit(1)
	}
	fmt.Printf("\nOK: no gated regression across %d paired benchmarks\n", paired)
}
