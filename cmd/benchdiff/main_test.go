package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkFig9aAliceBobGain-8  \t       3\t 161342142 ns/op\t         0.002 BER\t42737800 B/op\t   19802 allocs/op")
	if !ok {
		t.Fatal("line not recognized as a benchmark")
	}
	if r.name != "BenchmarkFig9aAliceBobGain" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", r.name)
	}
	if !r.hasNs || r.ns != 161342142 {
		t.Errorf("ns/op = %v has=%v", r.ns, r.hasNs)
	}
	if !r.hasB || r.bytes != 42737800 {
		t.Errorf("B/op = %v has=%v", r.bytes, r.hasB)
	}
	if !r.hasA || r.allocs != 19802 {
		t.Errorf("allocs/op = %v has=%v", r.allocs, r.hasA)
	}
	for _, line := range []string{
		"ok  \trepro\t1.2s",
		"BenchmarkBroken notanumber ns/op",
		"--- PASS: TestX",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q parsed as a benchmark", line)
		}
	}
}

func TestParseFileReassemblesTest2JSON(t *testing.T) {
	// test2json splits a benchmark result across output events: the name
	// chunk has no trailing newline, the metrics arrive in the next event.
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	content := `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkX","Output":"BenchmarkX\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkX","Output":"BenchmarkX \t"}
{"Action":"output","Package":"repro","Test":"BenchmarkX","Output":"       5\t   1000 ns/op\t   80012 B/op\t       7 allocs/op\n"}
{"Action":"pass","Package":"repro"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["BenchmarkX"]
	if !ok {
		t.Fatalf("BenchmarkX not parsed from split events: %+v", got)
	}
	if r.ns != 1000 || r.bytes != 80012 || r.allocs != 7 {
		t.Errorf("parsed %+v, want ns=1000 B=80012 allocs=7", r)
	}
}

func TestCompareGatesRegressions(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkA":    {name: "BenchmarkA", ns: 1e6, bytes: 1e6, allocs: 100, hasNs: true, hasB: true, hasA: true},
		"BenchmarkB":    {name: "BenchmarkB", ns: 1e6, bytes: 1e6, hasNs: true, hasB: true},
		"BenchmarkTiny": {name: "BenchmarkTiny", ns: 50, bytes: 64, hasNs: true, hasB: true},
	}
	head := map[string]benchResult{
		"BenchmarkA":    {name: "BenchmarkA", ns: 1.05e6, bytes: 1.3e6, allocs: 500, hasNs: true, hasB: true, hasA: true},
		"BenchmarkB":    {name: "BenchmarkB", ns: 0.5e6, bytes: 0.9e6, hasNs: true, hasB: true},
		"BenchmarkTiny": {name: "BenchmarkTiny", ns: 500, bytes: 640, hasNs: true, hasB: true},
		"BenchmarkNew":  {name: "BenchmarkNew", ns: 1e6, hasNs: true},
	}
	regs, _, _ := compare(base, head, 10, 0, 1e5, 4096, false)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	if regs[0].name != "BenchmarkA" || regs[0].metric != "B/op" {
		t.Errorf("regression = %+v, want BenchmarkA B/op", regs[0])
	}
	// allocs/op regressed 5x but gates only when asked.
	regs, _, _ = compare(base, head, 10, 0, 1e5, 4096, true)
	found := false
	for _, r := range regs {
		if r.metric == "allocs/op" {
			found = true
		}
	}
	if !found {
		t.Errorf("-gate-allocs did not gate the allocs/op regression: %+v", regs)
	}
}

func TestCompareToleratesWithinBudget(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkA": {name: "BenchmarkA", ns: 1e6, bytes: 1e6, hasNs: true, hasB: true},
	}
	head := map[string]benchResult{
		"BenchmarkA": {name: "BenchmarkA", ns: 1.09e6, bytes: 1.09e6, hasNs: true, hasB: true},
	}
	if regs, _, _ := compare(base, head, 10, 0, 1e5, 4096, false); len(regs) != 0 {
		t.Errorf("9%% change flagged at 10%% tolerance: %+v", regs)
	}
}

func TestCompareSeparateNsTolerance(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkA": {name: "BenchmarkA", ns: 1e8, bytes: 1e6, hasNs: true, hasB: true},
	}
	head := map[string]benchResult{
		// 20% slower wall clock (runner noise), bytes unchanged.
		"BenchmarkA": {name: "BenchmarkA", ns: 1.2e8, bytes: 1e6, hasNs: true, hasB: true},
	}
	if regs, _, _ := compare(base, head, 10, 0, 1e5, 4096, false); len(regs) != 1 {
		t.Errorf("default ns tolerance should gate the 20%% slowdown: %+v", regs)
	}
	if regs, _, _ := compare(base, head, 10, 35, 1e5, 4096, false); len(regs) != 0 {
		t.Errorf("-tol-ns 35 should absorb the 20%% slowdown: %+v", regs)
	}
}

func TestCompareGatesRegressionFromBelowFloor(t *testing.T) {
	// A zero/low baseline (the zero-alloc steady state) that regresses
	// past the floor must gate: the floor exempts small results, not
	// small starting points.
	base := map[string]benchResult{
		"BenchmarkLean": {name: "BenchmarkLean", bytes: 0, allocs: 0, hasB: true, hasA: true},
	}
	head := map[string]benchResult{
		"BenchmarkLean": {name: "BenchmarkLean", bytes: 5e8, allocs: 10000, hasB: true, hasA: true},
	}
	regs, _, _ := compare(base, head, 10, 0, 1e5, 4096, true)
	if len(regs) != 2 {
		t.Fatalf("zero-baseline regression not gated on both B/op and allocs/op: %+v", regs)
	}
}
