// Command anccapacity prints the Theorem 8.1 capacity bounds of Fig. 7:
// the routing upper bound and the ANC lower bound for the half-duplex
// two-way relay over AWGN, as functions of SNR.
package main

import (
	"flag"
	"fmt"

	"repro/internal/capacity"
)

func main() {
	var (
		from = flag.Float64("from", 0, "sweep start, dB")
		to   = flag.Float64("to", 55, "sweep end, dB")
		step = flag.Float64("step", 1, "sweep step, dB")
	)
	flag.Parse()

	fmt.Printf("# Fig 7 — capacity of the Alice–Bob 2-way relay (b/s/Hz)\n")
	fmt.Printf("# %-8s %-16s %-16s %s\n", "SNR(dB)", "routing upper", "ANC lower", "ANC/routing")
	for _, p := range capacity.Sweep(*from, *to, *step) {
		fmt.Printf("%-10.1f %-16.4f %-16.4f %.4f\n", p.SNRdB, p.Traditional, p.ANC, p.Gain)
	}
	if x := capacity.CrossoverDB(*from, *to); x == x {
		fmt.Printf("# ANC overtakes routing above %.2f dB (paper: ~8 dB; WLANs operate at 25–40 dB)\n", x)
	}
}
