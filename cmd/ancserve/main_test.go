package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// syncBuffer is a goroutine-safe writer for capturing daemon output
// while it runs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-queue", "0"},
		{"-jobs", "0"},
		{"-workers", "-1"},
		{"-write-timeout", "0s"},
		{"-drain-timeout", "-1s"},
		{"-nonsense"},
		{"stray-arg"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(context.Background(), args, &out, &errb); code != 2 {
				t.Errorf("run(%v) = %d, want exit 2\nstderr: %s", args, code, errb.String())
			}
		})
	}
}

func TestBadListenAddress(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out, &errb); code != 1 {
		t.Errorf("run with bad addr = %d, want 1", code)
	}
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// TestDaemonLifecycle boots the daemon on an ephemeral port, streams a
// campaign over HTTP, checks the bytes against the CLI writer and the
// metrics endpoint, then shuts down via context cancellation — the
// SIGTERM path — and expects a clean exit 0.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := &syncBuffer{}
	stderr := &syncBuffer{}
	exited := make(chan int, 1)
	go func() {
		exited <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"}, stdout, stderr)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()

	// The served stream must be byte-for-byte the CLI's NDJSON output
	// for the same campaign.
	resp, err = http.Post(base+"/v1/stream", "application/json",
		strings.NewReader(`{"scenario":"alice-bob","runs":3,"packets":2,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, got)
	}
	opts := experiments.StreamOptions{Options: experiments.Options{Runs: 3, Seed: 1}}
	opts.Sim.Packets = 2
	opts.Sim.SNRdB = sim.Ptr(25)
	var want bytes.Buffer
	if err := experiments.WriteCampaignNDJSON(&want, opts, "alice-bob", 1, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("served stream diverges from the CLI bytes:\nserved: %s\ncli:    %s", got, want.Bytes())
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics, []byte("ancserve_jobs_accepted_total 1")) {
		t.Errorf("metrics did not count the job:\n%s", metrics)
	}
	if !bytes.Contains(metrics, []byte("ancserve_rows_streamed_total 3")) {
		t.Errorf("metrics did not count the rows:\n%s", metrics)
	}

	cancel() // the SIGTERM path
	select {
	case code := <-exited:
		if code != 0 {
			t.Errorf("exit code %d, want 0\nstderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after shutdown")
	}
	if !strings.Contains(stdout.String(), "stopped") {
		t.Errorf("missing shutdown message in stdout: %s", stdout.String())
	}
}
