// Command ancserve is the simulation-as-a-service daemon: it exposes
// the campaign engine over HTTP and WebSocket, running each distinct
// campaign once on a bounded job queue and fanning the NDJSON stream
// out to every subscriber that asked for it (see internal/serve).
//
// Usage:
//
//	ancserve [-addr :8787] [-queue 16] [-jobs 2] [-workers N]
//	         [-cache-bytes 67108864] [-write-timeout 10s]
//	         [-drain-timeout 30s]
//
// Endpoints:
//
//	GET  /healthz                     liveness
//	GET  /metrics                     Prometheus text exposition
//	GET  /v1/scenarios                the scenario registry
//	POST /v1/campaigns                submit, returns the canonical hash
//	GET  /v1/campaigns/{hash}         job status
//	DELETE /v1/campaigns/{hash}       cancel a job
//	GET  /v1/campaigns/{hash}/stream  subscribe (replay + live tail)
//	POST /v1/stream                   submit and stream in one request
//	GET  /v1/ws                       WebSocket: send a request, receive lines
//
// A served stream is byte-for-byte the output of
// `ancsim -scenario <name> -format ndjson` for the same parameters.
//
// SIGTERM/SIGINT drain gracefully: new submissions are rejected,
// running jobs finish (or are canceled after -drain-timeout), then the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its process edges injected — context instead of
// signals, writers instead of the process streams — so the daemon
// lifecycle is testable end to end.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ancserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8787", "listen address (host:port; :0 picks a free port)")
		queue        = fs.Int("queue", 16, "max jobs admitted but not yet running")
		jobs         = fs.Int("jobs", 2, "concurrently executing jobs")
		workers      = fs.Int("workers", 0, "engine worker goroutines per job (0 = GOMAXPROCS); never changes the bytes")
		cacheBytes   = fs.Int64("cache-bytes", 64<<20, "byte budget for retained completed campaign streams")
		writeTimeout = fs.Duration("write-timeout", 10*time.Second, "per-line write deadline before a slow subscriber is evicted")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits before canceling jobs")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ancserve: unexpected arguments %q\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *queue < 1 || *jobs < 1 {
		fmt.Fprintf(stderr, "ancserve: -queue and -jobs must be ≥ 1, got %d and %d\n", *queue, *jobs)
		fs.Usage()
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "ancserve: -workers must be ≥ 0 (0 = GOMAXPROCS), got %d\n", *workers)
		fs.Usage()
		return 2
	}
	if *writeTimeout <= 0 || *drainTimeout <= 0 {
		fmt.Fprintf(stderr, "ancserve: -write-timeout and -drain-timeout must be positive\n")
		fs.Usage()
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "ancserve: %v\n", err)
		return 1
	}
	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		Runners:      *jobs,
		CacheBytes:   *cacheBytes,
		WriteTimeout: *writeTimeout,
	})
	httpSrv := &http.Server{Handler: srv}
	// The actual address matters with :0; print it so scripts can scrape it.
	fmt.Fprintf(stdout, "ancserve: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "ancserve: %v\n", err)
		srv.Close()
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "ancserve: draining (timeout %s)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(stdout, "ancserve: drain timeout, jobs canceled\n")
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		httpSrv.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	fmt.Fprintln(stdout, "ancserve: stopped")
	return 0
}
