// Command ancdemo walks through one Alice–Bob ANC exchange verbosely,
// printing what each stage of the Fig. 8 pipeline sees: the collision at
// the router, the §7.1 detector outputs, the amplitude estimates of §6.2,
// and the final decode at both endpoints. It is the §2 narrative, executed.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/anc"
)

func main() {
	var (
		seed    = flag.Int64("seed", 7, "exchange seed")
		payload = flag.Int("payload", 64, "payload bytes per packet")
		delay   = flag.Int("delay", 1100, "Bob's start offset in samples")
		snr     = flag.Float64("snr", 27, "link SNR in dB")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	modem := anc.NewModem()
	floor := 0.5 / pow10(*snr/10)
	alice := anc.NewNode(1, modem, 2*floor)
	bob := anc.NewNode(2, modem, 2*floor)

	payloadA := make([]byte, *payload)
	payloadB := make([]byte, *payload)
	rng.Read(payloadA)
	rng.Read(payloadB)
	pktA := anc.NewPacket(1, 2, 1, payloadA)
	pktB := anc.NewPacket(2, 1, 1, payloadB)
	recA := alice.BuildFrame(pktA)
	recB := bob.BuildFrame(pktB)
	fmt.Printf("Alice's packet: %v  (%d frame bits, %d samples)\n", pktA.Header, len(recA.Bits), len(recA.Samples))
	fmt.Printf("Bob's packet:   %v\n\n", pktB.Header)

	fmt.Printf("SLOT 1 — Alice and Bob transmit simultaneously (Bob %d samples late).\n", *delay)
	routerRx := anc.Receive(anc.NewNoiseSource(floor, *seed+1), 400,
		anc.Transmission{Signal: recA.Samples, Link: anc.Link{Gain: 0.8, Phase: 0.5, FreqOffset: 0.007}},
		anc.Transmission{Signal: recB.Samples, Link: anc.Link{Gain: 0.75, Phase: -1.0, FreqOffset: -0.006}, Delay: *delay},
	)
	fmt.Printf("  router receives %d samples of interfered signal (power %.3f)\n", len(routerRx), routerRx.Power())

	fmt.Println("\nSLOT 2 — the router amplifies and broadcasts; it does NOT decode.")
	relayed := anc.AmplifyForward(routerRx, 1)
	fmt.Printf("  re-amplified to unit power (%.3f)\n\n", relayed.Power())

	rxA := anc.Receive(anc.NewNoiseSource(floor, *seed+2), 400,
		anc.Transmission{Signal: relayed, Link: anc.Link{Gain: 0.7, Phase: 1.9}})
	rxB := anc.Receive(anc.NewNoiseSource(floor, *seed+3), 400,
		anc.Transmission{Signal: relayed, Link: anc.Link{Gain: 0.72, Phase: 0.2}})

	report("Alice", alice, rxA, pktB)
	report("Bob", bob, rxB, pktA)
}

func report(name string, n *anc.Node, rx anc.Signal, want anc.Packet) {
	fmt.Printf("%s decodes the broadcast (%d samples):\n", name, len(rx))
	res, err := n.Receive(rx)
	if err != nil {
		fmt.Printf("  decode failed: %v\n", err)
		os.Exit(1)
	}
	dir := "forward"
	if res.Backward {
		dir = "backward (conjugate time-reversed, §7.4)"
	}
	fmt.Printf("  detector: packet [%d, %d), interference [%d, %d)\n",
		res.Detection.Start, res.Detection.End, res.Detection.IStart, res.Detection.IEnd)
	fmt.Printf("  amplitudes (Eq. 5/6): known A=%.3f, wanted B=%.3f (µ=%.3f σ=%.3f)\n",
		res.Amplitudes.A, res.Amplitudes.B, res.Amplitudes.Mu, res.Amplitudes.Sig)
	fmt.Printf("  cancelled own packet %v, decoded %s\n", res.KnownHeader, dir)
	if res.HeaderOK {
		fmt.Printf("  recovered header: %v (want %v)\n", res.Packet.Header, want.Header)
	}
	ber := frameBER(anc.Marshal(want), res.WantedBits)
	fmt.Printf("  frame BER vs truth: %.4f   payload CRC ok: %v\n\n", ber, res.BodyOK)
}

func frameBER(sent, got []byte) float64 {
	if len(sent) == 0 {
		return 0
	}
	n := len(got)
	if n > len(sent) {
		n = len(sent)
	}
	errs := len(sent) - n
	for i := 0; i < n; i++ {
		if sent[i] != got[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(sent))
}

func pow10(x float64) float64 { return math.Pow(10, x) }
