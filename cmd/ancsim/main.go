// Command ancsim regenerates the paper's evaluation figures from the
// simulation campaigns and runs any registered scenario through the
// pluggable scenario engine.
//
// Usage:
//
//	ancsim -exp summary                 # §11.3 headline table
//	ancsim -exp fig9  -runs 40          # Alice–Bob gain + BER CDFs
//	ancsim -exp fig10                   # "X" topology
//	ancsim -exp fig12                   # chain topology
//	ancsim -exp fig13                   # BER vs SIR sweep
//	ancsim -exp fig7                    # capacity bounds (analysis)
//
//	ancsim -scenario list               # list registered scenarios
//	ancsim -scenario x-cross -runs 10   # ANC vs baselines on any scenario
//	ancsim -scenario alice-bob -fading rayleigh   # time-varying channels
//	ancsim -scenario near-far -fading mobility -doppler 0.02
//
//	ancsim -scenario alice-bob -format json        # machine-readable rows
//	ancsim -scenario fading -format json -trace    # + per-slot outage stats
//	ancsim -scenario pairs -format csv > rows.csv  # flat per-run table
//
// Every campaign is deterministic in -seed, including the fading and
// mobility channel evolutions. The JSON schema is documented in the
// README ("Results & output formats").
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/channel"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its process edges injected, so the CLI surface —
// flag parsing, exit codes, error messages — is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ancsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "summary", "experiment: fig7|fig9|fig10|fig12|fig13|summary|ablation")
		scenario = fs.String("scenario", "", "run a registered scenario campaign by name ('list' prints the registry); overrides -exp")
		runs     = fs.Int("runs", 40, "independent runs per campaign (paper: 40)")
		packets  = fs.Int("packets", 0, "packets per run (0 = default)")
		seed     = fs.Int64("seed", 1, "campaign seed")
		snr      = fs.Float64("snr", 25, "per-link SNR in dB")
		fading   = fs.String("fading", "static", "per-link channel model: static|rayleigh|rician|mobility")
		doppler  = fs.Float64("doppler", 0, "mobility-model phase advance in rad/slot (with -fading mobility)")
		maxRows  = fs.Int("rows", 25, "max CDF rows to print")
		format   = fs.String("format", "text", "scenario campaign output: text|json|csv")
		trace    = fs.Bool("trace", false, "retain per-slot link gains and report outage statistics (-format json)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	// Validate the numeric campaign parameters before any work: a
	// mistyped flag must fail loudly with usage, not run a zero-length
	// campaign whose empty output looks like a result.
	if *runs <= 0 {
		fmt.Fprintf(stderr, "ancsim: -runs must be positive, got %d\n", *runs)
		fs.Usage()
		return 2
	}
	if *packets < 0 {
		fmt.Fprintf(stderr, "ancsim: -packets must be ≥ 0 (0 = default), got %d\n", *packets)
		fs.Usage()
		return 2
	}
	if math.IsNaN(*snr) || math.IsInf(*snr, 0) {
		fmt.Fprintf(stderr, "ancsim: -snr must be a finite dB value, got %v\n", *snr)
		fs.Usage()
		return 2
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(stderr, "ancsim: unknown -format %q (text|json|csv)\n", *format)
		fs.Usage()
		return 2
	}
	if *trace && *format != "json" {
		fmt.Fprintf(stderr, "ancsim: -trace requires -format json (per-slot outage statistics do not fit %s output)\n", *format)
		fs.Usage()
		return 2
	}

	kind, err := channel.ParseFadingKind(*fading)
	if err != nil {
		fmt.Fprintf(stderr, "ancsim: %v\n", err)
		return 2
	}

	cfg := sim.DefaultConfig()
	cfg.SNRdB = sim.Ptr(*snr)
	cfg.Topology.Fading = channel.FadingSpec{Kind: kind, DopplerRad: *doppler}
	if *packets > 0 {
		cfg.Packets = *packets
	}
	opts := experiments.Options{Runs: *runs, Sim: cfg, Seed: *seed}

	if *scenario != "" {
		return runScenario(stdout, stderr, *scenario, opts, *maxRows, *format, *trace)
	}
	if *format != "text" {
		fmt.Fprintf(stderr, "ancsim: -format %s applies to -scenario campaigns; the -exp figures are text series\n", *format)
		return 2
	}

	switch *exp {
	case "fig7":
		fmt.Fprint(stdout, experiments.Fig7(0, 55, 2.5))
	case "fig9":
		res := experiments.Fig9(opts)
		fmt.Fprint(stdout, res.FormatGain(*maxRows))
		fmt.Fprint(stdout, res.FormatBER(*maxRows))
	case "fig10":
		res := experiments.Fig10(opts)
		fmt.Fprint(stdout, res.FormatGain(*maxRows))
		fmt.Fprint(stdout, res.FormatBER(*maxRows))
	case "fig12":
		res := experiments.Fig12(opts)
		fmt.Fprint(stdout, res.FormatGain(*maxRows))
		fmt.Fprint(stdout, res.FormatBER(*maxRows))
	case "fig13":
		fmt.Fprint(stdout, experiments.Fig13(opts, -3, 4, 1))
	case "summary":
		fmt.Fprint(stdout, experiments.Summary(opts))
	case "ablation":
		fmt.Fprint(stdout, experiments.AblationMatcher(opts))
		fmt.Fprint(stdout, experiments.AblationSubtraction(*seed))
		fmt.Fprint(stdout, experiments.AblationEstimator(*seed))
		fmt.Fprint(stdout, experiments.AblationOverlap(opts))
	default:
		fmt.Fprintf(stderr, "ancsim: unknown experiment %q\n", *exp)
		fs.Usage()
		return 2
	}
	return 0
}

// registeredNames returns every registered scenario name, sorted.
func registeredNames() []string {
	scs := sim.Scenarios()
	names := make([]string, 0, len(scs))
	for _, sc := range scs {
		names = append(names, sc.Name())
	}
	return names
}

// runScenario executes the ANC-versus-baselines campaign for one
// registered scenario, or lists the registry. An unknown name fails
// with the registry enumerated, so the fix is in the error message.
// format selects the output: the classic text CDF series, or the
// streamed machine-readable forms (json carries per-run pools and, with
// trace, per-link outage statistics; csv is a flat per-run table).
func runScenario(stdout, stderr io.Writer, name string, opts experiments.Options, maxRows int, format string, trace bool) int {
	if name == "list" {
		fmt.Fprintf(stdout, "%-10s %-22s %s\n", "name", "schemes", "description")
		for _, sc := range sim.Scenarios() {
			schemes := make([]string, 0, 3)
			for _, s := range sc.Schemes() {
				schemes = append(schemes, string(s))
			}
			fmt.Fprintf(stdout, "%-10s %-22s %s\n", sc.Name(), strings.Join(schemes, ","), sc.Description())
		}
		return 0
	}
	if _, ok := sim.LookupScenario(name); !ok {
		fmt.Fprintf(stderr, "ancsim: unknown scenario %q\nregistered scenarios: %s\n",
			name, strings.Join(registeredNames(), ", "))
		return 2
	}
	switch format {
	case "json":
		if err := experiments.WriteCampaignJSON(stdout, experiments.StreamOptions{Options: opts, Trace: trace}, name); err != nil {
			fmt.Fprintf(stderr, "ancsim: %v\n", err)
			return 2
		}
		return 0
	case "csv":
		if err := experiments.WriteCampaignCSV(stdout, experiments.StreamOptions{Options: opts, Trace: trace}, name); err != nil {
			fmt.Fprintf(stderr, "ancsim: %v\n", err)
			return 2
		}
		return 0
	}
	res, err := experiments.ScenarioCampaign(opts, name)
	if err != nil {
		fmt.Fprintf(stderr, "ancsim: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, res.FormatGain(maxRows))
	fmt.Fprint(stdout, res.FormatBER(maxRows))
	return 0
}
