// Command ancsim regenerates the paper's evaluation figures from the
// simulation campaigns and runs any registered scenario through the
// pluggable scenario engine.
//
// Usage:
//
//	ancsim -exp summary                 # §11.3 headline table
//	ancsim -exp fig9  -runs 40          # Alice–Bob gain + BER CDFs
//	ancsim -exp fig10                   # "X" topology
//	ancsim -exp fig12                   # chain topology
//	ancsim -exp fig13                   # BER vs SIR sweep
//	ancsim -exp fig7                    # capacity bounds (analysis)
//
//	ancsim -scenario list               # list registered scenarios
//	ancsim -scenario x-cross -runs 10   # ANC vs baselines on any scenario
//
// Every campaign is deterministic in -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	var (
		exp      = flag.String("exp", "summary", "experiment: fig7|fig9|fig10|fig12|fig13|summary|ablation")
		scenario = flag.String("scenario", "", "run a registered scenario campaign by name ('list' prints the registry); overrides -exp")
		runs     = flag.Int("runs", 40, "independent runs per campaign (paper: 40)")
		packets  = flag.Int("packets", 0, "packets per run (0 = default)")
		seed     = flag.Int64("seed", 1, "campaign seed")
		snr      = flag.Float64("snr", 25, "per-link SNR in dB")
		maxRows  = flag.Int("rows", 25, "max CDF rows to print")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.SNRdB = *snr
	if *packets > 0 {
		cfg.Packets = *packets
	}
	opts := experiments.Options{Runs: *runs, Sim: cfg, Seed: *seed}

	if *scenario != "" {
		runScenario(*scenario, opts, *maxRows)
		return
	}

	switch *exp {
	case "fig7":
		fmt.Print(experiments.Fig7(0, 55, 2.5))
	case "fig9":
		res := experiments.Fig9(opts)
		fmt.Print(res.FormatGain(*maxRows))
		fmt.Print(res.FormatBER(*maxRows))
	case "fig10":
		res := experiments.Fig10(opts)
		fmt.Print(res.FormatGain(*maxRows))
		fmt.Print(res.FormatBER(*maxRows))
	case "fig12":
		res := experiments.Fig12(opts)
		fmt.Print(res.FormatGain(*maxRows))
		fmt.Print(res.FormatBER(*maxRows))
	case "fig13":
		fmt.Print(experiments.Fig13(opts, -3, 4, 1))
	case "summary":
		fmt.Print(experiments.Summary(opts))
	case "ablation":
		fmt.Print(experiments.AblationMatcher(opts))
		fmt.Print(experiments.AblationSubtraction(*seed))
		fmt.Print(experiments.AblationEstimator(*seed))
		fmt.Print(experiments.AblationOverlap(opts))
	default:
		fmt.Fprintf(os.Stderr, "ancsim: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// runScenario executes the ANC-versus-baselines campaign for one
// registered scenario, or lists the registry.
func runScenario(name string, opts experiments.Options, maxRows int) {
	if name == "list" {
		fmt.Printf("%-10s %-22s %s\n", "name", "schemes", "description")
		for _, sc := range sim.Scenarios() {
			schemes := make([]string, 0, 3)
			for _, s := range sc.Schemes() {
				schemes = append(schemes, string(s))
			}
			fmt.Printf("%-10s %-22s %s\n", sc.Name(), strings.Join(schemes, ","), sc.Description())
		}
		return
	}
	res, err := experiments.ScenarioCampaign(opts, name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ancsim: %v (try -scenario list)\n", err)
		os.Exit(2)
	}
	fmt.Print(res.FormatGain(maxRows))
	fmt.Print(res.FormatBER(maxRows))
}
