// Command ancsim regenerates the paper's evaluation figures from the
// simulation campaigns and runs any registered scenario through the
// pluggable scenario engine.
//
// Usage:
//
//	ancsim -exp summary                 # §11.3 headline table
//	ancsim -exp fig9  -runs 40          # Alice–Bob gain + BER CDFs
//	ancsim -exp fig10                   # "X" topology
//	ancsim -exp fig12                   # chain topology
//	ancsim -exp fig13                   # BER vs SIR sweep
//	ancsim -exp fig7                    # capacity bounds (analysis)
//
//	ancsim -scenario list               # list registered scenarios
//	ancsim -scenario x-cross -runs 10   # ANC vs baselines on any scenario
//	ancsim -scenario alice-bob -fading rayleigh   # time-varying channels
//	ancsim -scenario near-far -fading mobility -doppler 0.02
//
//	ancsim -modem list                  # list registered PHY modems
//	ancsim -scenario x-cross -modem dqpsk         # any scenario × any modem
//	ancsim -scenario alice-bob -scheme anc,routing  # scheme subset
//
//	ancsim -scenario alice-bob -format json        # machine-readable rows
//	ancsim -scenario fading -format json -trace    # + per-slot outage stats
//	ancsim -scenario pairs -format csv > rows.csv  # flat per-run table
//
//	ancsim -scenario pairs -format ndjson -shard 1/4 > s1.ndjson   # worker 1 of 4
//	ancsim -scenario pairs -format ndjson -shard 2/4 > s2.ndjson   # ... and so on
//	ancsim -merge s1.ndjson,s2.ndjson,s3.ndjson,s4.ndjson          # == unsharded -format json
//
// Every campaign is deterministic in -seed, including the fading and
// mobility channel evolutions. Sharded workers merge back into the exact
// unsharded document, byte for byte (see README "Sharded campaigns").
// The JSON schema is documented in the README ("Results & output
// formats").
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/experiments"
	"repro/internal/phy"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its process edges injected, so the CLI surface —
// flag parsing, exit codes, error messages — is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ancsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "summary", "experiment: fig7|fig9|fig10|fig12|fig13|summary|ablation")
		scenario = fs.String("scenario", "", "run a registered scenario campaign by name ('list' prints the registry); overrides -exp")
		runs     = fs.Int("runs", 40, "independent runs per campaign (paper: 40)")
		packets  = fs.Int("packets", 0, "packets per run (0 = default)")
		seed     = fs.Int64("seed", 1, "campaign seed")
		snr      = fs.Float64("snr", 25, "per-link SNR in dB")
		fading   = fs.String("fading", "static", "per-link channel model: static|rayleigh|rician|mobility")
		doppler  = fs.Float64("doppler", 0, "mobility-model phase advance in rad/slot (with -fading mobility)")
		modem    = fs.String("modem", "", "PHY modem: msk|dqpsk ('list' prints the registry; default: the scenario's preference, else msk)")
		scheme   = fs.String("scheme", "", "comma-separated scheme subset for -scenario campaigns: anc,routing,cope (default: all the scenario supports)")
		maxRows  = fs.Int("rows", 25, "max CDF rows to print")
		format   = fs.String("format", "text", "scenario campaign output: text|json|csv|ndjson")
		trace    = fs.Bool("trace", false, "retain per-slot link gains and report outage statistics (-format json|ndjson)")
		shard    = fs.String("shard", "", "run one worker's slice of the campaign, as i/k (1-based; requires -scenario and -format ndjson)")
		merge    = fs.String("merge", "", "comma-separated worker NDJSON files to merge into the unsharded JSON document (excludes -scenario and -shard)")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "campaign worker goroutines; results are identical at any count")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	// Validate the numeric campaign parameters before any work: a
	// mistyped flag must fail loudly with usage, not run a zero-length
	// campaign whose empty output looks like a result.
	if *runs <= 0 {
		fmt.Fprintf(stderr, "ancsim: -runs must be positive, got %d\n", *runs)
		fs.Usage()
		return 2
	}
	if *packets < 0 {
		fmt.Fprintf(stderr, "ancsim: -packets must be ≥ 0 (0 = default), got %d\n", *packets)
		fs.Usage()
		return 2
	}
	if *workers < 1 {
		fmt.Fprintf(stderr, "ancsim: -workers must be ≥ 1, got %d\n", *workers)
		fs.Usage()
		return 2
	}
	if math.IsNaN(*snr) || math.IsInf(*snr, 0) {
		fmt.Fprintf(stderr, "ancsim: -snr must be a finite dB value, got %v\n", *snr)
		fs.Usage()
		return 2
	}
	switch *format {
	case "text", "json", "csv", "ndjson":
	default:
		fmt.Fprintf(stderr, "ancsim: unknown -format %q (text|json|csv|ndjson)\n", *format)
		fs.Usage()
		return 2
	}
	if *trace && *format != "json" && *format != "ndjson" {
		fmt.Fprintf(stderr, "ancsim: -trace requires -format json or ndjson (per-slot outage statistics do not fit %s output)\n", *format)
		fs.Usage()
		return 2
	}

	// Profiling wraps the whole command: the CPU profile runs until run()
	// returns and the heap profile snapshots the exit state.
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(stderr, "ancsim: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "ancsim: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintf(stderr, "ancsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "ancsim: -memprofile: %v\n", err)
			}
		}()
	}

	// Coordinator mode: merge worker outputs and exit. The merge reads
	// finished shard files, so the campaign flags do not apply.
	if *merge != "" {
		if *scenario != "" || *shard != "" {
			fmt.Fprintf(stderr, "ancsim: -merge excludes -scenario and -shard (it reads finished worker files)\n")
			return 2
		}
		return runMerge(stdout, stderr, *merge)
	}

	// Worker mode: -shard i/k picks this worker's slice. The NDJSON
	// format is required — only its trailing summary record carries the
	// mergeable sketches a coordinator needs.
	shardIdx, shardCnt := 1, 1
	if *shard != "" {
		var err error
		if shardIdx, shardCnt, err = parseShard(*shard); err != nil {
			fmt.Fprintf(stderr, "ancsim: %v\n", err)
			fs.Usage()
			return 2
		}
		if *scenario == "" || *format != "ndjson" {
			fmt.Fprintf(stderr, "ancsim: -shard requires -scenario and -format ndjson (worker mode)\n")
			fs.Usage()
			return 2
		}
	}

	kind, err := channel.ParseFadingKind(*fading)
	if err != nil {
		fmt.Fprintf(stderr, "ancsim: %v\n", err)
		return 2
	}

	// The modem axis mirrors the scenario registry's CLI contract: "list"
	// enumerates, an unknown name exits 2 with the valid spellings.
	if *modem == "list" {
		for _, name := range phy.Names() {
			fmt.Fprintf(stdout, "%-8s %s\n", name, phy.Description(name))
		}
		return 0
	}
	if *modem != "" {
		if _, ok := phy.Get(*modem); !ok {
			fmt.Fprintf(stderr, "ancsim: unknown modem %q\nregistered modems: %s\n",
				*modem, strings.Join(phy.Names(), ", "))
			return 2
		}
	}

	// The scheme filter parses up front (unknown spellings exit 2), but
	// is checked against the scenario's supported set after lookup.
	var schemes []sim.Scheme
	if *scheme != "" {
		if *scenario == "" {
			fmt.Fprintf(stderr, "ancsim: -scheme applies to -scenario campaigns; the -exp figures run their fixed scheme sets\n")
			return 2
		}
		for _, tok := range strings.Split(*scheme, ",") {
			s, err := sim.ParseScheme(strings.TrimSpace(tok))
			if err != nil {
				fmt.Fprintf(stderr, "ancsim: %v\n", err)
				return 2
			}
			schemes = append(schemes, s)
		}
	}

	// The config stays raw here: derived parameters (the delay
	// distribution scales with the modem's frame length) are filled in by
	// the engine once the effective modem — explicit, or the scenario's
	// preference — is known.
	var cfg sim.Config
	cfg.SNRdB = sim.Ptr(*snr)
	cfg.Modem = *modem
	cfg.Topology.Fading = channel.FadingSpec{Kind: kind, DopplerRad: *doppler}
	if *packets > 0 {
		cfg.Packets = *packets
	}
	opts := experiments.Options{Runs: *runs, Sim: cfg, Seed: *seed, Schemes: schemes, Workers: *workers}

	if *scenario != "" {
		return runScenario(stdout, stderr, *scenario, opts, *maxRows, *format, *trace, shardIdx, shardCnt)
	}
	if *format != "text" {
		fmt.Fprintf(stderr, "ancsim: -format %s applies to -scenario campaigns; the -exp figures are text series\n", *format)
		return 2
	}

	switch *exp {
	case "fig7":
		fmt.Fprint(stdout, experiments.Fig7(0, 55, 2.5))
	case "fig9":
		res := experiments.Fig9(opts)
		fmt.Fprint(stdout, res.FormatGain(*maxRows))
		fmt.Fprint(stdout, res.FormatBER(*maxRows))
	case "fig10":
		res := experiments.Fig10(opts)
		fmt.Fprint(stdout, res.FormatGain(*maxRows))
		fmt.Fprint(stdout, res.FormatBER(*maxRows))
	case "fig12":
		res := experiments.Fig12(opts)
		fmt.Fprint(stdout, res.FormatGain(*maxRows))
		fmt.Fprint(stdout, res.FormatBER(*maxRows))
	case "fig13":
		fmt.Fprint(stdout, experiments.Fig13(opts, -3, 4, 1))
	case "summary":
		fmt.Fprint(stdout, experiments.Summary(opts))
	case "ablation":
		fmt.Fprint(stdout, experiments.AblationMatcher(opts))
		fmt.Fprint(stdout, experiments.AblationSubtraction(*seed))
		fmt.Fprint(stdout, experiments.AblationEstimator(*seed))
		fmt.Fprint(stdout, experiments.AblationOverlap(opts))
	default:
		fmt.Fprintf(stderr, "ancsim: unknown experiment %q\n", *exp)
		fs.Usage()
		return 2
	}
	return 0
}

// registeredNames returns every registered scenario name, sorted.
func registeredNames() []string {
	scs := sim.Scenarios()
	names := make([]string, 0, len(scs))
	for _, sc := range scs {
		names = append(names, sc.Name())
	}
	return names
}

// parseShard parses the -shard flag's i/k form: 1-based worker index i
// of k total shards.
func parseShard(s string) (int, int, error) {
	is, ks, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard must be i/k (e.g. 2/4), got %q", s)
	}
	i, err := strconv.Atoi(is)
	if err != nil {
		return 0, 0, fmt.Errorf("-shard index %q is not an integer", is)
	}
	k, err := strconv.Atoi(ks)
	if err != nil {
		return 0, 0, fmt.Errorf("-shard count %q is not an integer", ks)
	}
	if k < 1 || i < 1 || i > k {
		return 0, 0, fmt.Errorf("-shard %d/%d out of range (want 1 ≤ i ≤ k)", i, k)
	}
	return i, k, nil
}

// runMerge is coordinator mode: fold finished worker NDJSON files back
// into the single campaign document an unsharded run would have written.
func runMerge(stdout, stderr io.Writer, files string) int {
	var readers []io.Reader
	for _, name := range strings.Split(files, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(stderr, "ancsim: %v\n", err)
			return 2
		}
		defer f.Close()
		readers = append(readers, f)
	}
	if err := experiments.MergeSummaries(stdout, readers...); err != nil {
		fmt.Fprintf(stderr, "ancsim: %v\n", err)
		return 2
	}
	return 0
}

// runScenario executes the ANC-versus-baselines campaign for one
// registered scenario, or lists the registry. An unknown name fails
// with the registry enumerated, so the fix is in the error message.
// format selects the output: the classic text CDF series, the streamed
// machine-readable forms (json carries per-run pools and, with trace,
// per-link outage statistics; csv is a flat per-run table), or the
// sharded-worker NDJSON stream (shardIdx/shardCnt select the slice).
func runScenario(stdout, stderr io.Writer, name string, opts experiments.Options, maxRows int, format string, trace bool, shardIdx, shardCnt int) int {
	if name == "list" {
		fmt.Fprintf(stdout, "%-10s %-22s %-7s %s\n", "name", "schemes", "modem", "description")
		for _, sc := range sim.Scenarios() {
			schemes := make([]string, 0, 3)
			for _, s := range sc.Schemes() {
				schemes = append(schemes, string(s))
			}
			fmt.Fprintf(stdout, "%-10s %-22s %-7s %s\n", sc.Name(), strings.Join(schemes, ","),
				sim.EffectiveModemName(sc, sim.Config{}), sc.Description())
		}
		return 0
	}
	if _, ok := sim.LookupScenario(name); !ok {
		fmt.Fprintf(stderr, "ancsim: unknown scenario %q\nregistered scenarios: %s\n",
			name, strings.Join(registeredNames(), ", "))
		return 2
	}
	// A scheme the scenario does not support fails inside planSchemes
	// (reached by every format below) with the supported set enumerated.
	switch format {
	case "json":
		if err := experiments.WriteCampaignJSON(stdout, experiments.StreamOptions{Options: opts, Trace: trace}, name); err != nil {
			fmt.Fprintf(stderr, "ancsim: %v\n", err)
			return 2
		}
		return 0
	case "csv":
		if err := experiments.WriteCampaignCSV(stdout, experiments.StreamOptions{Options: opts, Trace: trace}, name); err != nil {
			fmt.Fprintf(stderr, "ancsim: %v\n", err)
			return 2
		}
		return 0
	case "ndjson":
		if err := experiments.WriteCampaignNDJSON(stdout, experiments.StreamOptions{Options: opts, Trace: trace}, name, shardIdx, shardCnt); err != nil {
			fmt.Fprintf(stderr, "ancsim: %v\n", err)
			return 2
		}
		return 0
	}
	res, err := experiments.ScenarioCampaign(opts, name)
	if err != nil {
		fmt.Fprintf(stderr, "ancsim: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, res.FormatGain(maxRows))
	fmt.Fprint(stdout, res.FormatBER(maxRows))
	return 0
}
