package main

import (
	"strings"
	"testing"
)

// TestUnknownScenarioFailsAndEnumerates is the regression test for the
// CLI bugfix: an unknown -scenario must exit non-zero and print the
// registered scenario names, so the operator learns the valid spellings
// from the failure itself.
func TestUnknownScenarioFailsAndEnumerates(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-scenario", "no-such-scenario"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unknown scenario exited zero")
	}
	out := stderr.String()
	if !strings.Contains(out, `"no-such-scenario"`) {
		t.Errorf("error does not name the bad scenario: %s", out)
	}
	for _, name := range []string{"alice-bob", "chain", "x-cross", "near-far", "fading", "chain-5"} {
		if !strings.Contains(out, name) {
			t.Errorf("error does not enumerate registered scenario %q: %s", name, out)
		}
	}
}

func TestScenarioListSucceeds(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-scenario", "list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-scenario list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"alice-bob", "near-far", "fading", "chain-5"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("listing missing %q", name)
		}
	}
}

func TestUnknownFadingKindFails(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-fading", "warp"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown -fading value exited zero")
	}
	if !strings.Contains(stderr.String(), "rayleigh") {
		t.Errorf("error does not list valid kinds: %s", stderr.String())
	}
}

// TestHelpExitsZero preserves the pre-refactor flag.ExitOnError
// behavior: -h prints usage and succeeds.
func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h exited %d", code)
	}
	if !strings.Contains(stderr.String(), "-scenario") {
		t.Error("usage not printed")
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-exp", "fig99"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown experiment exited zero")
	}
}

// TestScenarioCampaignRunsWithFading drives a tiny real campaign through
// the flag surface, fading enabled — the zero→aha smoke of the new CLI.
func TestScenarioCampaignRunsWithFading(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-scenario", "alice-bob", "-runs", "2", "-packets", "2", "-fading", "rician"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("campaign exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "CDF of throughput gain") {
		t.Errorf("campaign output missing gain CDF: %s", stdout.String())
	}
}
