package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestUnknownScenarioFailsAndEnumerates is the regression test for the
// CLI bugfix: an unknown -scenario must exit non-zero and print the
// registered scenario names, so the operator learns the valid spellings
// from the failure itself.
func TestUnknownScenarioFailsAndEnumerates(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-scenario", "no-such-scenario"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unknown scenario exited zero")
	}
	out := stderr.String()
	if !strings.Contains(out, `"no-such-scenario"`) {
		t.Errorf("error does not name the bad scenario: %s", out)
	}
	for _, name := range []string{"alice-bob", "chain", "x-cross", "near-far", "fading", "chain-5"} {
		if !strings.Contains(out, name) {
			t.Errorf("error does not enumerate registered scenario %q: %s", name, out)
		}
	}
}

func TestScenarioListSucceeds(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-scenario", "list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-scenario list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"alice-bob", "near-far", "fading", "chain-5"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("listing missing %q", name)
		}
	}
}

// TestUnknownModemFailsAndEnumerates pins the modem axis to the same
// CLI contract as -scenario: an unknown -modem exits 2 and prints the
// registered names.
func TestUnknownModemFailsAndEnumerates(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-modem", "warp"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("unknown modem exited %d, want 2", code)
	}
	out := stderr.String()
	if !strings.Contains(out, `"warp"`) {
		t.Errorf("error does not name the bad modem: %s", out)
	}
	for _, name := range []string{"msk", "dqpsk"} {
		if !strings.Contains(out, name) {
			t.Errorf("error does not enumerate registered modem %q: %s", name, out)
		}
	}
}

func TestModemListSucceeds(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-modem", "list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-modem list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"msk", "dqpsk"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("listing missing %q", name)
		}
	}
}

// TestSchemeFilterValidation pins the -scheme contract: unknown
// spellings and schemes the scenario does not support exit 2, with the
// valid set in the error.
func TestSchemeFilterValidation(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-scenario", "alice-bob", "-scheme", "warp"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown scheme exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "anc|routing|cope") {
		t.Errorf("error does not list valid schemes: %s", stderr.String())
	}

	stderr.Reset()
	// chain supports no COPE: the filter must fail listing what it does.
	if code := run([]string{"-scenario", "chain", "-scheme", "cope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unsupported scheme exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "anc, routing") {
		t.Errorf("error does not enumerate supported schemes: %s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"-scheme", "anc"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-scheme without -scenario exited %d, want 2", code)
	}
}

// TestSchemeFilterRuns drives a filtered campaign through every format:
// the CSV has empty gain columns (no routing baseline) and the text
// output falls back to the per-scheme throughput summary.
func TestSchemeFilterRuns(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-scenario", "alice-bob", "-scheme", "anc", "-runs", "2", "-packets", "2", "-format", "csv"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("filtered campaign exited %d: %s", code, stderr.String())
	}
	recs, err := csv.NewReader(strings.NewReader(stdout.String())).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v\n%s", err, stdout.String())
	}
	if len(recs) != 3 {
		t.Fatalf("%d CSV records, want header + 2 rows", len(recs))
	}
	if recs[1][2] != "" || recs[1][3] != "" {
		t.Errorf("filtered row carries gains without baselines: %v", recs[1])
	}
	if recs[1][4] != "msk" {
		t.Errorf("modem column = %q, want msk", recs[1][4])
	}

	stdout.Reset()
	code = run([]string{"-scenario", "alice-bob", "-scheme", "routing,cope", "-runs", "2", "-packets", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("baseline-only campaign exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "per-scheme throughput") {
		t.Errorf("text output missing the filtered summary:\n%s", stdout.String())
	}
}

// TestDQPSKModemJSONHeader is the acceptance smoke for the modem axis:
// any scenario runs under -modem dqpsk and the machine-readable header
// names the modem.
func TestDQPSKModemJSONHeader(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-scenario", "x-cross", "-modem", "dqpsk", "-runs", "2", "-packets", "2", "-format", "json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("dqpsk campaign exited %d: %s", code, stderr.String())
	}
	var doc struct {
		Modem string `json:"modem"`
		Rows  []struct {
			Modem string `json:"modem"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if doc.Modem != "dqpsk" {
		t.Errorf("header modem = %q, want dqpsk", doc.Modem)
	}
	if len(doc.Rows) != 2 || doc.Rows[0].Modem != "dqpsk" {
		t.Errorf("rows do not carry the modem: %+v", doc.Rows)
	}
}

func TestUnknownFadingKindFails(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-fading", "warp"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown -fading value exited zero")
	}
	if !strings.Contains(stderr.String(), "rayleigh") {
		t.Errorf("error does not list valid kinds: %s", stderr.String())
	}
}

// TestHelpExitsZero preserves the pre-refactor flag.ExitOnError
// behavior: -h prints usage and succeeds.
func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h exited %d", code)
	}
	if !strings.Contains(stderr.String(), "-scenario") {
		t.Error("usage not printed")
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-exp", "fig99"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown experiment exited zero")
	}
}

// TestInvalidCampaignParameters pins the numeric-flag validation: a
// mistyped campaign size must exit 2 with a usage message naming the
// flag, mirroring the -scenario=<unknown> contract.
func TestInvalidCampaignParameters(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring the error must carry
	}{
		{"zero runs", []string{"-runs", "0"}, "-runs"},
		{"negative runs", []string{"-runs", "-3"}, "-runs"},
		{"negative packets", []string{"-packets", "-1"}, "-packets"},
		{"NaN snr", []string{"-snr", "NaN"}, "-snr"},
		{"infinite snr", []string{"-snr", "+Inf"}, "-snr"},
		{"unknown format", []string{"-format", "xml"}, "-format"},
		{"trace without json", []string{"-scenario", "fading", "-format", "csv", "-trace"}, "-trace"},
		{"format without scenario", []string{"-exp", "summary", "-format", "json"}, "-format"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("error does not name %s: %s", tc.want, stderr.String())
			}
			if tc.name != "format without scenario" && !strings.Contains(stderr.String(), "Usage") {
				t.Errorf("usage not printed: %s", stderr.String())
			}
		})
	}
}

// updateGolden regenerates the CLI's JSON golden. The campaigns are
// deterministic in -seed, so the machine-readable contract is pinned the
// same way the experiments text series are.
var updateGolden = flag.Bool("update", false, "rewrite the golden files")

// goldenJSONArgs is the pinned campaign: tiny, traced, deterministic.
var goldenJSONArgs = []string{"-scenario", "alice-bob", "-runs", "2", "-packets", "3", "-seed", "3", "-format", "json", "-trace"}

// TestGoldenJSON pins `ancsim -format json` output. Values are compared
// as parsed JSON with a relative tolerance, so last-digit libm drift
// across architectures does not break the pin while any schema or
// accounting change does.
func TestGoldenJSON(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(goldenJSONArgs, &stdout, &stderr); code != 0 {
		t.Fatalf("campaign exited %d: %s", code, stderr.String())
	}
	path := filepath.Join("testdata", "alice-bob.json.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(stdout.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var got, want any
	if err := json.Unmarshal([]byte(stdout.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if err := json.Unmarshal(wantBytes, &want); err != nil {
		t.Fatalf("golden is not valid JSON: %v", err)
	}
	compareJSON(t, "$", got, want)
}

// compareJSON walks two parsed JSON values, comparing numbers within a
// relative tolerance and everything else exactly.
func compareJSON(t *testing.T, path string, got, want any) {
	t.Helper()
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok || len(g) != len(w) {
			t.Errorf("%s: object mismatch: got %v, want %v", path, got, want)
			return
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				t.Errorf("%s.%s: missing", path, k)
				continue
			}
			compareJSON(t, path+"."+k, gv, wv)
		}
	case []any:
		g, ok := got.([]any)
		if !ok || len(g) != len(w) {
			t.Errorf("%s: array mismatch: got %v, want %v", path, got, want)
			return
		}
		for i := range w {
			compareJSON(t, fmt.Sprintf("%s[%d]", path, i), g[i], w[i])
		}
	case float64:
		g, ok := got.(float64)
		if !ok {
			t.Errorf("%s: got %v, want number %v", path, got, w)
			return
		}
		if g == w {
			return
		}
		if math.Abs(g-w) > 1e-6*math.Max(math.Abs(g), math.Abs(w)) {
			t.Errorf("%s: %v != golden %v", path, g, w)
		}
	default:
		if got != want {
			t.Errorf("%s: %v != golden %v", path, got, want)
		}
	}
}

// TestJSONRoundTrip is the machine-readable acceptance check: the traced
// JSON document round-trips through encoding/json and carries per-run
// gains, the BER/overlap pools, and per-slot outage statistics.
func TestJSONRoundTrip(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-scenario", "fading", "-runs", "2", "-packets", "3", "-seed", "5", "-format", "json", "-trace"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("campaign exited %d: %s", code, stderr.String())
	}
	var doc struct {
		Scenario string `json:"scenario"`
		Fading   string `json:"fading"`
		Schemes  []string
		Rows     []struct {
			Run             int      `json:"run"`
			Seed            int64    `json:"seed"`
			GainOverRouting float64  `json:"gain_over_routing"`
			GainOverCOPE    *float64 `json:"gain_over_cope"`
			Schemes         []struct {
				Scheme   string    `json:"scheme"`
				BERs     []float64 `json:"bers"`
				Overlaps []float64 `json:"overlaps"`
			} `json:"schemes"`
			Links []struct {
				Slots          int     `json:"slots"`
				OutageProb     float64 `json:"outage_prob"`
				FadeMarginP5DB float64 `json:"fade_margin_p5_db"`
			} `json:"links"`
		} `json:"rows"`
		Summary map[string]json.RawMessage `json:"summary"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &doc); err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, stdout.String())
	}
	if doc.Scenario != "fading" || len(doc.Rows) != 2 {
		t.Fatalf("document shape wrong: scenario %q, %d rows", doc.Scenario, len(doc.Rows))
	}
	// The header reports the model the campaign actually runs: the
	// fading scenario installs Rician block fading even though the CLI
	// config is static.
	if doc.Fading != "rician" {
		t.Errorf("fading = %q, want effective model \"rician\"", doc.Fading)
	}
	for _, row := range doc.Rows {
		if row.GainOverRouting <= 0 {
			t.Errorf("run %d: non-positive gain %v", row.Run, row.GainOverRouting)
		}
		if row.GainOverCOPE == nil {
			t.Errorf("run %d: missing COPE gain", row.Run)
		}
		if len(row.Schemes[0].BERs) == 0 || len(row.Schemes[0].Overlaps) == 0 {
			t.Errorf("run %d: ANC pools missing: %+v", row.Run, row.Schemes[0])
		}
		if len(row.Links) == 0 {
			t.Fatalf("run %d: no per-link outage statistics under -trace", row.Run)
		}
		for _, l := range row.Links {
			if l.Slots != 3 {
				t.Errorf("run %d: link traced %d slots, want 3", row.Run, l.Slots)
			}
			if l.OutageProb < 0 || l.OutageProb > 1 {
				t.Errorf("run %d: outage probability %v out of range", row.Run, l.OutageProb)
			}
		}
	}
	if _, ok := doc.Summary["gain_over_routing"]; !ok {
		t.Error("summary missing gain_over_routing")
	}
}

// TestFormatCSV parses the CSV surface: a header plus one record per
// run, with the gain column populated.
func TestFormatCSV(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-scenario", "chain", "-runs", "2", "-packets", "2", "-format", "csv"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("campaign exited %d: %s", code, stderr.String())
	}
	recs, err := csv.NewReader(strings.NewReader(stdout.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v\n%s", err, stdout.String())
	}
	if len(recs) != 3 {
		t.Fatalf("%d CSV records, want header + 2 rows", len(recs))
	}
	if recs[0][0] != "run" || recs[0][2] != "gain_over_routing" {
		t.Errorf("unexpected header: %v", recs[0])
	}
	// The chain has no COPE: the gain_over_cope column must be empty.
	if recs[1][3] != "" {
		t.Errorf("chain row has a COPE gain: %v", recs[1])
	}
}

// TestScenarioCampaignRunsWithFading drives a tiny real campaign through
// the flag surface, fading enabled — the zero→aha smoke of the new CLI.
func TestScenarioCampaignRunsWithFading(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-scenario", "alice-bob", "-runs", "2", "-packets", "2", "-fading", "rician"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("campaign exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "CDF of throughput gain") {
		t.Errorf("campaign output missing gain CDF: %s", stdout.String())
	}
}

// TestShardWorkerMergeCLI is the end-to-end CLI pass over the sharded
// campaign surface: two -shard workers stream NDJSON, -merge folds the
// files back together, and the merged document is byte-identical to the
// unsharded -format json run.
func TestShardWorkerMergeCLI(t *testing.T) {
	campaign := []string{"-scenario", "x-cross", "-runs", "5", "-packets", "2", "-seed", "3"}
	var unsharded, stderr strings.Builder
	if code := run(append(campaign, "-format", "json"), &unsharded, &stderr); code != 0 {
		t.Fatalf("unsharded run exited %d: %s", code, stderr.String())
	}

	dir := t.TempDir()
	files := make([]string, 2)
	for i := 1; i <= 2; i++ {
		var out strings.Builder
		stderr.Reset()
		args := append(campaign, "-format", "ndjson", "-shard", fmt.Sprintf("%d/2", i))
		if code := run(args, &out, &stderr); code != 0 {
			t.Fatalf("worker %d exited %d: %s", i, code, stderr.String())
		}
		lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
		for j, line := range lines {
			var obj map[string]any
			if err := json.Unmarshal([]byte(line), &obj); err != nil {
				t.Fatalf("worker %d line %d is not JSON: %v", i, j, err)
			}
			if last := j == len(lines)-1; last != (obj["record"] == "summary") {
				t.Fatalf("worker %d: summary record must be exactly the last line (line %d: %v)", i, j, obj["record"])
			}
		}
		files[i-1] = filepath.Join(dir, fmt.Sprintf("s%d.ndjson", i))
		if err := os.WriteFile(files[i-1], []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var merged strings.Builder
	stderr.Reset()
	if code := run([]string{"-merge", strings.Join(files, ",")}, &merged, &stderr); code != 0 {
		t.Fatalf("-merge exited %d: %s", code, stderr.String())
	}
	if merged.String() != unsharded.String() {
		t.Errorf("merged document differs from unsharded run:\n--- merged ---\n%s\n--- unsharded ---\n%s",
			merged.String(), unsharded.String())
	}
}

// TestShardFlagValidation pins the worker-mode flag contract: malformed
// or out-of-range -shard values, and -shard without its required
// companions, exit 2 before any simulation work.
func TestShardFlagValidation(t *testing.T) {
	base := []string{"-scenario", "alice-bob", "-format", "ndjson"}
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"zero index", append(base, "-shard", "0/2")},
		{"index beyond count", append(base, "-shard", "3/2")},
		{"non-numeric", append(base, "-shard", "a/b")},
		{"zero count", append(base, "-shard", "1/0")},
		{"missing slash", append(base, "-shard", "12")},
		{"shard without ndjson", []string{"-scenario", "alice-bob", "-format", "json", "-shard", "1/2"}},
		{"shard without scenario", []string{"-format", "ndjson", "-shard", "1/2"}},
		{"merge with scenario", []string{"-scenario", "alice-bob", "-merge", "x.ndjson"}},
		{"merge with shard", []string{"-shard", "1/2", "-merge", "x.ndjson"}},
		{"merge missing file", []string{"-merge", "does-not-exist.ndjson"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Errorf("exit code %d, want 2 (stderr: %s)", code, stderr.String())
			}
		})
	}
}
