package anc

import (
	"repro/internal/bits"
	"repro/internal/fec"
	"repro/internal/frame"
)

// The paper compensates ANC's residual 2–4% BER with error-correcting
// redundancy (§11.2, §11.4). These exports provide the coded path: a
// Hamming(7,4) codec with a block interleaver for burst resilience, raw
// access to a recovered frame's payload bits (bypassing the CRC gate), and
// the BER→overhead accounting model the evaluation charges.

// BitsFromBytes expands packed bytes into one-bit-per-element form.
func BitsFromBytes(data []byte) []byte { return bits.FromBytes(data) }

// BitsToBytes packs a bit slice (length must be a multiple of 8).
func BitsToBytes(bs []byte) ([]byte, error) { return bits.ToBytes(bs) }

// FECEncode applies Hamming(7,4) to a bit slice (zero-padded to a
// multiple of 4); the output is 7/4 the input length.
func FECEncode(data []byte) []byte { return fec.Encode(data) }

// FECDecode corrects up to one error per 7-bit block and strips the
// coding, returning the data bits and the number of corrected blocks.
func FECDecode(coded []byte) ([]byte, int, error) { return fec.Decode(coded) }

// Interleave spreads bursts of up to depth adjacent errors across
// distinct codewords; Deinterleave inverts it given the original length.
func Interleave(data []byte, depth int) []byte { return fec.Interleave(data, depth) }

// Deinterleave inverts Interleave.
func Deinterleave(data []byte, depth, origLen int) []byte {
	return fec.Deinterleave(data, depth, origLen)
}

// FECOverhead is the codec's expansion factor (7/4).
const FECOverhead = fec.Overhead

// ExtractPayloadBits returns the dewhitened payload bits of a recovered
// frame bit stream (Result.WantedBits) without CRC verification, so a
// coded payload can be error-corrected even when the frame CRC failed.
func ExtractPayloadBits(frameBits []byte, payloadBytes int) ([]byte, error) {
	return frame.ExtractBody(frameBits, payloadBytes)
}

// RedundancyModel charges throughput the BER-dependent FEC overhead the
// paper's evaluation applies (8% at the 4% BER operating point).
type RedundancyModel = fec.RedundancyModel

// DefaultRedundancy returns the paper-calibrated accounting model.
func DefaultRedundancy() RedundancyModel { return fec.DefaultRedundancy() }
