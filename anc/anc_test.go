package anc_test

import (
	"math/rand"
	"testing"

	"repro/anc"
)

// TestPublicAPIEndToEnd exercises the facade the way examples/alicebob
// does: two endpoints exchange packets through an amplify-and-forward
// relay in a single slot pair.
func TestPublicAPIEndToEnd(t *testing.T) {
	modem := anc.NewModem()
	const floor = 1e-3
	alice := anc.NewNode(1, modem, 2*floor)
	bob := anc.NewNode(2, modem, 2*floor)

	rng := rand.New(rand.NewSource(1))
	payloadA := make([]byte, 64)
	payloadB := make([]byte, 64)
	rng.Read(payloadA)
	rng.Read(payloadB)
	pktA := anc.NewPacket(1, 2, 1, payloadA)
	pktB := anc.NewPacket(2, 1, 1, payloadB)
	recA := alice.BuildFrame(pktA)
	recB := bob.BuildFrame(pktB)

	// Slot 1: simultaneous transmission; collision at the router.
	routerRx := anc.Receive(anc.NewNoiseSource(floor, 2), 400,
		anc.Transmission{Signal: recA.Samples, Link: anc.Link{Gain: 0.8, Phase: 0.4, FreqOffset: 0.006}},
		anc.Transmission{Signal: recB.Samples, Link: anc.Link{Gain: 0.75, Phase: -0.9, FreqOffset: -0.007}, Delay: 1100},
	)
	// Slot 2: amplify-and-forward broadcast.
	relayed := anc.AmplifyForward(routerRx, 1)
	rxA := anc.Receive(anc.NewNoiseSource(floor, 3), 400,
		anc.Transmission{Signal: relayed, Link: anc.Link{Gain: 0.7, Phase: 1.2}})
	rxB := anc.Receive(anc.NewNoiseSource(floor, 4), 400,
		anc.Transmission{Signal: relayed, Link: anc.Link{Gain: 0.72, Phase: 0.3}})

	resA, err := alice.Receive(rxA)
	if err != nil {
		t.Fatalf("alice: %v", err)
	}
	if ber := frameBER(anc.Marshal(pktB), resA.WantedBits); ber > 0.02 {
		t.Errorf("alice's recovered frame BER = %.4f", ber)
	}
	if resA.HeaderOK && resA.Packet.Header != pktB.Header {
		t.Errorf("alice recovered %v, want Bob's header", resA.Packet.Header)
	}
	resB, err := bob.Receive(rxB)
	if err != nil {
		t.Fatalf("bob: %v", err)
	}
	if !resB.Backward {
		t.Error("bob (second transmitter) should decode backward")
	}
	if ber := frameBER(anc.Marshal(pktA), resB.WantedBits); ber > 0.02 {
		t.Errorf("bob's recovered frame BER = %.4f", ber)
	}
}

// frameBER counts mismatches over the sent frame; missing bits count as
// errors (the same convention the evaluation uses).
func frameBER(sent, got []byte) float64 {
	if len(sent) == 0 {
		return 0
	}
	n := len(got)
	if n > len(sent) {
		n = len(sent)
	}
	errs := len(sent) - n
	for i := 0; i < n; i++ {
		if sent[i] != got[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(sent))
}

func TestPublicModemRoundTrip(t *testing.T) {
	m := anc.NewModem(anc.WithSamplesPerSymbol(2), anc.WithAmplitude(1.5))
	in := []byte{1, 0, 1, 1, 0, 0, 1}
	got := m.Demodulate(m.Modulate(in))
	for i := range in {
		if got[i] != in[i] {
			t.Fatal("modem round trip failed")
		}
	}
}

func TestPublicFrameRoundTrip(t *testing.T) {
	p := anc.NewPacket(3, 4, 9, []byte("public api"))
	got, err := anc.Unmarshal(anc.Marshal(p))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "public api" {
		t.Error("payload mismatch")
	}
	if anc.FrameBits(10) != len(anc.Marshal(p)) {
		t.Error("FrameBits disagrees with Marshal")
	}
}

func TestPublicCapacitySweep(t *testing.T) {
	pts := anc.CapacitySweep(0, 30, 10)
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[3].Gain <= 1 {
		t.Errorf("gain at 30 dB = %v, want > 1", pts[3].Gain)
	}
}

func TestPublicSimRunners(t *testing.T) {
	cfg := anc.SimConfig{Packets: 4}
	a := anc.RunAliceBobANC(cfg, 1)
	tr := anc.RunAliceBobTraditional(cfg, 1)
	if a.Throughput() <= tr.Throughput() {
		t.Errorf("ANC %.5f not above routing %.5f", a.Throughput(), tr.Throughput())
	}
}

func TestPublicTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := anc.DefaultSimConfig().Topology
	g := anc.NewAliceBobTopology(cfg, rng)
	if g.N != 3 {
		t.Errorf("alice-bob N = %d", g.N)
	}
	if anc.NewChainTopology(cfg, rng).N != 4 || anc.NewXTopology(cfg, rng).N != 5 {
		t.Error("topology sizes wrong")
	}
}

// TestPublicChannelModels exercises the time-varying channel surface:
// a FadingSpec on the topology config makes links evolve over slots,
// explicit models attach to single edges, and Ptr expresses a true
// 0 dB configuration.
func TestPublicChannelModels(t *testing.T) {
	cfg := anc.DefaultSimConfig().Topology
	cfg.Fading = anc.FadingSpec{Kind: anc.FadingRayleigh}
	g := anc.NewAliceBobTopology(cfg, rand.New(rand.NewSource(6)))
	a, _ := g.LinkAt(0, 1, 0)
	b, _ := g.LinkAt(0, 1, 1)
	if a == b {
		t.Error("rayleigh spec did not vary the link over slots")
	}

	custom := anc.NewTopology(2, []string{"a", "b"}, anc.DefaultSimConfig().Topology, rand.New(rand.NewSource(7)))
	custom.ConnectModel(0, 1, anc.Mobility{Base: anc.Link{Gain: 0.5}, PeriodSlots: 4, SwingDB: 6})
	l0, _ := custom.LinkAt(0, 1, 0)
	l1, _ := custom.LinkAt(0, 1, 1)
	if l0.Gain == l1.Gain {
		t.Error("mobility edge did not swing")
	}

	if kind, err := anc.ParseFadingKind("mobility"); err != nil || kind != anc.FadingMobility {
		t.Errorf("ParseFadingKind: %v, %v", kind, err)
	}
	if v := anc.Ptr(0); v == nil || *v != 0 {
		t.Error("Ptr(0) did not produce an explicit zero")
	}
	if sc, ok := anc.LookupScenario("chain-5"); !ok || sc.Name() != anc.NewChainN(5).Name() {
		t.Error("chain-5 not registered or NewChainN name mismatch")
	}
}

// TestPublicModemRegistry covers the PHY axis through the facade: the
// built-in modems resolve by name and SimConfig.Modem drives a whole
// campaign under the second modem.
func TestPublicModemRegistry(t *testing.T) {
	names := anc.Modems()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	if !have["msk"] || !have["dqpsk"] {
		t.Fatalf("built-in modems missing from registry: %v", names)
	}

	m, err := anc.NewModemByName("dqpsk", 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "dqpsk" || m.BitsPerSymbol() != 2 {
		t.Errorf("dqpsk modem wrong: name %q, %d bits/symbol", m.Name(), m.BitsPerSymbol())
	}
	if _, err := anc.NewModemByName("warp", 4); err == nil {
		t.Error("unknown modem name resolved")
	}

	sc, ok := anc.LookupScenario("alice-bob")
	if !ok {
		t.Fatal("alice-bob not registered")
	}
	cfg := anc.SimConfig{Packets: 2, Modem: "dqpsk"}
	metrics, err := anc.NewEngine(cfg).Run(sc, anc.SchemeANC, 3)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.TimeSamples <= 0 || len(metrics.BERs) == 0 {
		t.Errorf("dqpsk campaign degenerate: %+v", metrics)
	}
}
