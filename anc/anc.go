// Package anc is the public API of the analog network coding library, a
// reproduction of Katti, Gollakota and Katabi, "Embracing Wireless
// Interference: Analog Network Coding" (SIGCOMM 2007).
//
// The library decodes MSK transmissions that collided in the air, given
// network-layer knowledge of one of the colliding packets: the receiver
// solves for the two candidate phase pairs of each received sample
// (Lemma 6.1), picks the pair consistent with the known packet's phase
// differences, and reads the other packet out of what remains. Routers
// forward interfered *signals* (amplify-and-forward) instead of packets,
// halving the slot count of the canonical two-way relay.
//
// # Layers
//
//   - Modem: MSK modulation and demodulation over complex baseband
//     samples ([Signal]).
//   - Frames: [Packet] marshaling with the pilot/header layout that makes
//     both forward and backward interference decoding possible ([Marshal],
//     [Unmarshal]).
//   - Nodes: [Node] bundles a modem, a sent-packet buffer and the
//     interference decoder behind a network-interface-like API
//     (Send/Receive/Overhear), including the §7.5 router policy.
//   - Channels: [Link], [Receive] and [AmplifyForward] synthesize
//     receptions at sample level (the library's substitute for a radio
//     front end).
//   - Experiments: the Run* functions and [Fig7] … [Fig13] regenerate the
//     paper's evaluation.
//
// See examples/quickstart for a three-minute tour.
package anc

import (
	"math/rand"

	"repro/internal/capacity"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dqpsk"
	"repro/internal/dsp"
	"repro/internal/experiments"
	"repro/internal/frame"
	"repro/internal/mesh"
	"repro/internal/msk"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats/sketch"
	"repro/internal/topology"
)

// Signal is a stream of complex baseband samples.
type Signal = dsp.Signal

// PhyModem is the modulation contract the interference decoder needs —
// §4's "applicable to any phase shift keying modulation", as an
// interface. The library ships MSK ([NewModem], the paper's choice) and
// π/4-DQPSK ([NewDQPSKModem]).
type PhyModem = core.PhyModem

// Modem is the pluggable PHY contract: PhyModem plus the registry
// identity (Name). Registered modems are an experiment axis — every
// scenario campaign runs under any of them (SimConfig.Modem, ancsim
// -modem). Implementations must be stateless, safe for concurrent use,
// and keep the *Into ownership rules: results go into the caller's dst
// storage, internal working buffers come only from the caller's
// scratch, so steady-state decodes allocate nothing.
type Modem = phy.Modem

// RegisterModem adds a modem factory to the PHY registry under a
// CLI-facing name (duplicates panic). The factory builds an instance at
// a given oversampling factor.
var RegisterModem = phy.Register

// Modems returns the registered modem names, sorted ("msk" and "dqpsk"
// ship built in).
func Modems() []string { return phy.Names() }

// NewModemByName builds a registered modem at the given oversampling
// factor; unknown names fail with the registry enumerated.
func NewModemByName(name string, samplesPerSymbol int) (Modem, error) {
	return phy.New(name, samplesPerSymbol)
}

// MSKModem is the concrete MSK modulator/demodulator (§5).
type MSKModem = msk.Modem

// NewModem returns an MSK modem with the given options (defaults: 4
// samples per symbol, unit amplitude).
func NewModem(opts ...ModemOption) *MSKModem { return msk.New(opts...) }

// ModemOption configures an MSK Modem.
type ModemOption = msk.Option

// DQPSKModem is the π/4 differential QPSK modem — two bits per symbol,
// constant envelope, full forward and backward (§7.4) interference
// decoding: frames for multi-bit modems are mirrored in symbol units
// ([MarshalFor]).
type DQPSKModem = dqpsk.Modem

// NewDQPSKModem returns a π/4-DQPSK modem (defaults: 4 samples/symbol,
// unit amplitude).
func NewDQPSKModem(opts ...dqpsk.Option) *DQPSKModem { return dqpsk.New(opts...) }

// WithSamplesPerSymbol sets the modem oversampling factor.
func WithSamplesPerSymbol(s int) ModemOption { return msk.WithSamplesPerSymbol(s) }

// WithAmplitude sets the constant MSK transmit amplitude.
func WithAmplitude(a float64) ModemOption { return msk.WithAmplitude(a) }

// Packet is a network-layer packet (header plus payload).
type Packet = frame.Packet

// Header identifies a packet: source, destination, sequence, length, flags.
type Header = frame.Header

// NewPacket builds a packet with a filled-in header.
func NewPacket(src, dst uint16, seq uint32, payload []byte) Packet {
	return frame.NewPacket(src, dst, seq, payload)
}

// Marshal produces a packet's on-air bit stream for a one-bit-per-symbol
// modem: pilot, header, whitened payload with CRC, then the mirrored
// header and pilot (Fig. 6).
func Marshal(p Packet) []byte { return frame.Marshal(p) }

// MarshalFor is Marshal with the mirrored tail laid out in units of
// bitsPerSymbol, which is what lets a multi-bit modem decode the frame
// off a conjugate time-reversed stream (§7.4). Marshal is
// MarshalFor(p, 1). Nodes marshal through their modem's width
// automatically; use this only when framing by hand.
func MarshalFor(p Packet, bitsPerSymbol int) []byte { return frame.MarshalFor(p, bitsPerSymbol) }

// Unmarshal parses an on-air bit stream back into a packet, verifying
// both CRCs.
func Unmarshal(bs []byte) (Packet, error) { return frame.Unmarshal(bs) }

// FrameBits returns the on-air frame size in bits for a payload of n
// bytes.
func FrameBits(n int) int { return frame.FrameBits(n) }

// Node is a radio endpoint or router: it frames and modulates outgoing
// packets (remembering them for interference cancellation), runs the full
// receive pipeline of Algorithm 1, snoops the medium, and makes the §7.5
// router decision.
type Node = radio.Node

// Result is a receive-pipeline outcome: the recovered packet, its raw
// frame bits for error accounting, CRC flags, and whether decoding ran
// clean, forward, or backward.
type Result = core.Result

// RouterAction is a §7.5 router decision.
type RouterAction = radio.RouterAction

// Router decisions.
const (
	ActionDrop           = radio.ActionDrop
	ActionDecode         = radio.ActionDecode
	ActionAmplifyForward = radio.ActionAmplifyForward
)

// NodeOption adjusts a node's decoder configuration.
type NodeOption = func(*core.Config)

// WithFixedFrameSize tells the decoder the network's fixed frame size (in
// payload bytes): when a recovered frame's header fails its CRC, the bit
// stream is still normalized to that length so FEC can repair header and
// payload errors alike. Networks with a fixed MTU should set this.
func WithFixedFrameSize(payloadBytes int) NodeOption {
	return func(c *core.Config) { c.FallbackFrameBits = frame.FrameBits(payloadBytes) }
}

// NewNode builds a node. noiseFloor is the receiver's calibrated noise
// power (linear); it parameterizes the §7.1 detectors.
func NewNode(id uint16, m PhyModem, noiseFloor float64, opts ...NodeOption) *Node {
	return radio.NewNode(id, m, noiseFloor, opts...)
}

// Workspace holds the reusable buffers one decode pipeline needs. Attach
// one to every node a goroutine drives (Node.SetWorkspace) and its
// steady-state decodes allocate nothing beyond the returned Result. One
// workspace per goroutine — sharing across goroutines races.
type Workspace = core.Workspace

// NewWorkspace returns an empty decode workspace; buffers grow on first
// use and are retained.
func NewWorkspace() *Workspace { return core.NewWorkspace() }

// BatchItem is one reception of a decode burst; build it with
// Node.BatchItem so the item carries the node's decoder and sent-buffer
// lookup.
type BatchItem = core.BatchItem

// BatchResult is one burst item's outcome, exactly what the equivalent
// Node.Receive would have returned.
type BatchResult = core.BatchResult

// DecodeBatch decodes a burst of receptions in one pass, amortizing
// per-reception setup across the batch. Results are bit-identical to
// decoding each item individually; see core.DecodeBatch.
var DecodeBatch = core.DecodeBatch

// SentRecord is a transmission a node remembers so it can later cancel it
// out of an interfered reception.
type SentRecord = frame.SentRecord

// Link is a point-to-point channel: amplitude attenuation, phase shift,
// and residual carrier-frequency offset.
type Link = channel.Link

// ChannelModel is a time-varying channel: the Link realization an edge
// presents at each schedule slot. Implementations must be deterministic
// random-access functions of the slot and allocation free (the engine
// realizes links inside the per-slot hot path). The library ships
// [StaticChannel], [BlockFading] and [Mobility].
type ChannelModel = channel.Model

// StaticChannel is the degenerate ChannelModel: one realization for the
// whole run — the behavior of every pre-fading campaign, bit for bit.
type StaticChannel = channel.Static

// BlockFading is Rician (K > 0) or Rayleigh (K = 0) block fading: an
// independent complex-Gaussian draw held for BlockSlots consecutive
// slots, derived by hashing (Seed, block) so traces are random access
// and reproducible.
type BlockFading = channel.BlockFading

// Mobility is a deterministic mobility trace: a sinusoidal dB power
// swing around the base realization plus a constant-rate Doppler phase
// advance.
type Mobility = channel.Mobility

// FadingSpec selects the ChannelModel a topology realizes on every
// link; the zero value is static. Set it on TopologyConfig.Fading (or
// via the ancsim -fading flag) to make a whole campaign time varying.
type FadingSpec = channel.FadingSpec

// FadingKind selects a ChannelModel family for FadingSpec.
type FadingKind = channel.FadingKind

// The model families a FadingSpec can choose.
const (
	FadingStatic   = channel.FadingStatic
	FadingRayleigh = channel.FadingRayleigh
	FadingRician   = channel.FadingRician
	FadingMobility = channel.FadingMobility
)

// ParseFadingKind parses a FadingKind from its flag spelling
// (static|rayleigh|rician|mobility).
func ParseFadingKind(s string) (FadingKind, error) { return channel.ParseFadingKind(s) }

// Transmission is one sender's contribution to a reception.
type Transmission = channel.Transmission

// NoiseSource generates circularly-symmetric complex AWGN.
type NoiseSource = dsp.NoiseSource

// NewNoiseSource returns a deterministic noise source with the given
// average sample power.
func NewNoiseSource(power float64, seed int64) *NoiseSource {
	return dsp.NewNoiseSource(power, seed)
}

// Receive superposes concurrent transmissions as seen by one receiver,
// pads the window with trailing noise, and adds receiver noise — the
// library's wireless medium.
func Receive(noise *NoiseSource, tailPad int, txs ...Transmission) Signal {
	return channel.Receive(noise, tailPad, txs...)
}

// AmplifyForward rescales a received (possibly interfered) signal to the
// router's transmit power — the §2 relay operation. It amplifies the
// embedded noise along with the signals, which is the low-SNR penalty the
// capacity analysis quantifies.
func AmplifyForward(rx Signal, power float64) Signal {
	return channel.AmplifyTo(rx, power)
}

// AmplifyForwardInPlace is AmplifyForward overwriting rx instead of
// allocating, for relays that no longer need the raw reception.
func AmplifyForwardInPlace(rx Signal, power float64) Signal {
	return channel.AmplifyToInPlace(rx, power)
}

// RandomLink draws a channel realization: mean power gain with uniform
// dB jitter and a uniform random phase.
func RandomLink(rng *rand.Rand, meanPowerGain, jitterDB float64) Link {
	return channel.RandomLink(rng, meanPowerGain, jitterDB)
}

// CapacityPoint is one row of the Fig. 7 capacity series.
type CapacityPoint = capacity.Point

// CapacitySweep evaluates the Theorem 8.1 bounds (routing upper bound,
// ANC lower bound) over an SNR range in dB.
func CapacitySweep(fromDB, toDB, stepDB float64) []CapacityPoint {
	return capacity.Sweep(fromDB, toDB, stepDB)
}

// SimConfig parameterizes one simulated evaluation run.
type SimConfig = sim.Config

// Ptr wraps a value for the SimConfig fields whose zero is meaningful
// (SNRdB, GuardFrac): nil means "use the default", Ptr(v) means exactly
// v — including v = 0, so a true 0 dB run is expressible.
func Ptr(v float64) *float64 { return sim.Ptr(v) }

// Metrics aggregates a run's throughput, BER and overlap statistics.
type Metrics = sim.Metrics

// DefaultSimConfig returns the repository-default evaluation parameters
// (4 samples/symbol, 128-byte payloads, 25 dB SNR, ≈80% mean overlap).
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// The evaluation runners (§11). Each simulates one run of its schedule at
// complex-baseband sample level and returns throughput/BER metrics.
var (
	RunAliceBobANC         = sim.RunAliceBobANC
	RunAliceBobTraditional = sim.RunAliceBobTraditional
	RunAliceBobCOPE        = sim.RunAliceBobCOPE
	RunChainANC            = sim.RunChainANC
	RunChainTraditional    = sim.RunChainTraditional
	RunXANC                = sim.RunXANC
	RunXTraditional        = sim.RunXTraditional
	RunXCOPE               = sim.RunXCOPE
)

// Scenario is one simulated workload plugged into the scenario engine: a
// topology plus the per-slot schedule of every scheme it supports. The
// paper's three evaluation topologies and the engine-unlocked extras ship
// registered; register your own with RegisterScenario.
type Scenario = sim.Scenario

// Scheme identifies a compared transmission scheme.
type Scheme = sim.Scheme

// The compared schemes.
const (
	SchemeANC     = sim.SchemeANC
	SchemeRouting = sim.SchemeRouting
	SchemeCOPE    = sim.SchemeCOPE
)

// Engine runs scenarios: per-run seeding, channel realization, node
// lifecycle, reusable reception buffers and the campaign worker pool.
// Engine.CampaignStream delivers per-seed rows to a Sink in seed order
// while holding O(workers) rows in memory; Engine.Campaign materializes
// the matrix.
type Engine = sim.Engine

// NewEngine returns a scenario engine for the given configuration.
func NewEngine(cfg SimConfig) *Engine { return sim.NewEngine(cfg) }

// Env is the per-run environment a scenario's schedule runs against:
// nodes, the channel realization, the run RNG and the reception buffers.
type Env = sim.Env

// Stepper advances one run by one schedule cycle, emitting observations
// into the run's Recorder.
type Stepper = sim.Stepper

// StepFunc adapts a function to the Stepper interface.
type StepFunc = sim.StepFunc

// Recorder consumes the typed observations a schedule emits: deliveries,
// losses, interference-decode BERs, collision overlaps, air time, and
// per-slot link states. Metrics is the default accumulating Recorder;
// TraceRecorder additionally retains per-slot channel gains; custom
// implementations stream observations wherever analysis wants them.
type Recorder = sim.Recorder

// TraceRecorder is a Recorder that retains every edge's per-slot power
// gain alongside the usual Metrics — the raw material of outage
// statistics for fading and mobility campaigns.
type TraceRecorder = sim.TraceRecorder

// NewTraceRecorder returns an empty trace recorder.
func NewTraceRecorder() *TraceRecorder { return sim.NewTraceRecorder() }

// QuantileSketch is a mergeable quantile sketch: campaign-scale
// distribution pools in O(sketch) memory with the stats.Sample read API
// (Mean, Quantile, CDFAt, OutageBelow, FadeMarginDB) and an *exact*
// merge — two shards' sketches combine into byte-for-byte the state the
// unsharded campaign would have built, whatever the shard count or merge
// order. Serialize with Encode; DecodeSketch reverses it.
type QuantileSketch = sketch.Sketch

// DefaultSketchAlpha is the relative accuracy campaign summaries use.
const DefaultSketchAlpha = sketch.DefaultAlpha

// NewQuantileSketch returns an empty sketch with relative accuracy
// alpha; NewDefaultQuantileSketch uses DefaultSketchAlpha. Sketches only
// merge when their accuracies match exactly.
var (
	NewQuantileSketch        = sketch.New
	NewDefaultQuantileSketch = sketch.NewDefault
	// DecodeSketch parses a sketch from its canonical Encode form,
	// rejecting anything malformed.
	DecodeSketch = sketch.Decode
)

// SketchRecorder is a Recorder whose distribution pools are
// QuantileSketches instead of observation buffers: one recorder
// accumulates a whole campaign (or one shard of it) in O(sketch) memory,
// and shard recorders Merge into bit-identical campaign statistics.
type SketchRecorder = sim.SketchRecorder

// LinkSketch is one directed edge's pooled gain sketch.
type LinkSketch = sim.LinkSketch

// NewSketchRecorder returns an empty sketch recorder at
// DefaultSketchAlpha; NewSketchRecorderAlpha picks the accuracy.
var (
	NewSketchRecorder      = sim.NewSketchRecorder
	NewSketchRecorderAlpha = sim.NewSketchRecorderAlpha
)

// SeedRange is one shard's half-open share [Lo, Hi) of a campaign's
// seed slice.
type SeedRange = sim.SeedRange

// SplitSeeds partitions n campaign seeds into contiguous, balanced
// shard ranges — a pure function of (n, shards), so every coordinator
// and worker computes the identical partition.
var SplitSeeds = sim.SplitSeeds

// LinkTrace is one directed edge's per-slot power-gain trace.
type LinkTrace = sim.LinkTrace

// Row is one seed's streamed campaign outcome: per-scheme metrics (and,
// with WithLinkTraces, per-slot channel traces) delivered to a Sink in
// seed order.
type Row = sim.Row

// Sink consumes streamed campaign rows; see Engine.CampaignStream.
type Sink = sim.Sink

// SinkFunc adapts a function to the Sink interface.
type SinkFunc = sim.SinkFunc

// WithLinkTraces makes a streaming campaign run every scheme under a
// TraceRecorder, attaching per-slot link-gain traces to each Row.
var WithLinkTraces = sim.WithLinkTraces

// WithWorkers sets a streaming campaign's worker-goroutine count (≤ 0
// keeps the GOMAXPROCS default); rows are bit-identical at any count.
var WithWorkers = sim.WithWorkers

// Scenario registry access.
var (
	RegisterScenario = sim.Register
	LookupScenario   = sim.LookupScenario
	Scenarios        = sim.Scenarios
)

// NewChainN builds (without registering) the Fig. 2 chain generalized
// to an arbitrary hop count; the registry ships chain-5. Register other
// lengths with RegisterScenario.
func NewChainN(hops int) Scenario { return sim.NewChainN(hops) }

// ExperimentOptions configures a figure-regeneration campaign.
type ExperimentOptions = experiments.Options

// GainResult holds a topology campaign's gain and BER distributions.
type GainResult = experiments.GainResult

// Figure regeneration entry points (see DESIGN.md's experiment index).
var (
	Fig9    = experiments.Fig9
	Fig10   = experiments.Fig10
	Fig12   = experiments.Fig12
	Fig13   = experiments.Fig13
	Fig7    = experiments.Fig7
	Summary = experiments.Summary
	// ScenarioCampaign runs ANC versus baselines for any registered
	// scenario by name.
	ScenarioCampaign = experiments.ScenarioCampaign
)

// StreamOptions configures a machine-readable campaign (JSON, CSV or
// sharded NDJSON).
type StreamOptions = experiments.StreamOptions

// The machine-readable campaign writers. WriteCampaignJSON streams one
// document (header, per-seed rows, sketch-pooled summary);
// WriteCampaignCSV is the flat table. WriteCampaignNDJSON runs one
// worker's shard (1-based shard of shards) as row-per-line NDJSON plus a
// trailing summary record, and MergeSummaries folds worker outputs back
// into the exact unsharded document, byte for byte (README "Sharded
// campaigns").
var (
	WriteCampaignJSON   = experiments.WriteCampaignJSON
	WriteCampaignCSV    = experiments.WriteCampaignCSV
	WriteCampaignNDJSON = experiments.WriteCampaignNDJSON
	MergeSummaries      = experiments.MergeSummaries
)

// TopologyConfig controls channel realizations for the canonical
// topologies.
type TopologyConfig = topology.Config

// Topology is a directed link graph over nodes.
type Topology = topology.Graph

// Canonical topology builders (Figs. 1, 2, 11) plus the engine-unlocked
// variants.
var (
	NewAliceBobTopology      = topology.AliceBob
	NewChainTopology         = topology.Chain
	NewXTopology             = topology.X
	NewXCrossTopology        = topology.XCross
	NewParallelPairsTopology = topology.ParallelPairs
)

// NewTopology builds an empty custom graph of n nodes; Connect and
// ConnectBoth realize its links with the same per-run randomization as
// the canonical topologies. This is how custom scenarios describe
// arbitrary networks.
func NewTopology(n int, names []string, cfg TopologyConfig, rng *rand.Rand) *Topology {
	return topology.New(n, names, cfg, rng)
}

// MeshConfig parameterizes a closed-loop trigger-protocol session.
type MeshConfig = mesh.Config

// MeshStats summarizes a closed-loop session.
type MeshStats = mesh.Stats

// MeshSession is the Alice–Bob network run by its own protocol machinery:
// the §7.6 trigger schedules the simultaneous transmissions and the §7.5
// router decision procedure chooses between amplify-and-forward,
// decode-and-forward, and drop — no experiment-side orchestration.
type MeshSession = mesh.Session

// NewMeshSession builds a closed-loop session.
func NewMeshSession(cfg MeshConfig) *MeshSession { return mesh.NewSession(cfg) }
